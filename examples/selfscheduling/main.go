// Selfscheduling: the Ultracomputer operating-system idiom the paper's
// introduction motivates — "they can form the basis for a completely
// parallel, decentralized operating system".
//
// A parallel loop is scheduled with no central dispatcher: workers grab
// iteration indexes with fetch-and-add on a shared counter (combinable, so
// a burst of idle workers costs one memory access), push results through
// the fetch-and-add MPMC queue, and synchronize phases with the
// fetch-and-add barrier — all through a live combining network.
package main

import (
	"fmt"
	"sync"

	combining "combining"
)

func main() {
	const (
		workers    = 8
		iterations = 200
	)
	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: workers, Combining: true})
	defer net.Close()

	const (
		counterAddr = combining.Addr(0)
		barrierAddr = combining.Addr(10)
		queueAddr   = combining.Addr(20)
	)

	results := make([]int64, iterations)
	var grabbed [workers]int
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mem := combining.PortMemory{Port: net.Port(id)}
			ctr := combining.NewCounter(mem, counterAddr)
			bar := combining.NewBarrier(mem, barrierAddr, workers)

			// Phase 1: self-scheduled loop — each worker pulls the
			// next free iteration until the range is exhausted.
			for {
				i := ctr.Inc()
				if i >= iterations {
					break
				}
				results[i] = i * i // the loop body
				grabbed[id]++
			}
			bar.Await()

			// Phase 2: worker 0 validates while the others wait at
			// the next barrier.
			if id == 0 {
				for i := int64(0); i < iterations; i++ {
					if results[i] != i*i {
						fmt.Printf("iteration %d computed wrongly\n", i)
					}
				}
			}
			bar.Await()
		}(id)
	}
	wg.Wait()

	total := 0
	fmt.Println("iterations grabbed per worker (self-balanced, no dispatcher):")
	for id, g := range grabbed {
		fmt.Printf("  worker %d: %3d\n", id, g)
		total += g
	}
	fmt.Printf("total %d / %d, combining events in the network: %d\n",
		total, iterations, net.Combines())
	if total == iterations {
		fmt.Println("every iteration executed exactly once ✓")
	}
}
