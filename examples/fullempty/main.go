// Fullempty: HEP-style producer/consumer synchronization (Section 5.5).
//
// A shared cell carries a full/empty bit.  The producer writes with
// store-if-clear-and-set (fails on a full cell); the consumer reads with
// load-and-clear-if-set (fails on an empty cell).  Failed operations are
// busy-wait retried — the paper's busy-waiting model — and every datum
// crosses the cell exactly once, in order.
package main

import (
	"fmt"
	"sync"

	combining "combining"
)

func main() {
	const items = 20
	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: 4, Combining: true})
	defer net.Close()
	const cell = combining.Addr(2)

	var wg sync.WaitGroup
	wg.Add(2)

	go func() { // producer on port 0
		defer wg.Done()
		port := net.Port(0)
		for i := int64(1); i <= items; i++ {
			for {
				old := port.RMW(cell, combining.FEStoreIfClearSet(i*i))
				if old.Tag == combining.Empty {
					break // deposited
				}
				// Cell still full: the consumer has not taken the
				// previous item; retry.
			}
		}
	}()

	go func() { // consumer on port 3
		defer wg.Done()
		port := net.Port(3)
		got := 0
		for got < items {
			old := port.RMW(cell, combining.FELoadIfSetClear())
			if old.Tag != combining.Full {
				continue // empty: retry
			}
			got++
			fmt.Printf("item %2d: %4d\n", got, old.Val)
		}
	}()

	wg.Wait()
	if tag := net.Memory().Peek(cell).Tag; tag == combining.Empty {
		fmt.Println("cell empty at the end ✓")
	}
}
