// Quickstart: the Figure 1 walk-through.
//
// Two processors issue fetch-and-add requests to the same shared cell.
// They meet at a switch, combine into one message, visit memory once, and
// the reply decombines into the two replies a serial execution would have
// produced.  This is the whole mechanism of the paper in one page.
package main

import (
	"fmt"
	"log"

	combining "combining"
)

func main() {
	// Two requests to address 100: processor 0 adds 3, processor 1
	// adds 5.
	a := combining.NewRequest(1, 100, combining.FetchAdd(3), 0)
	b := combining.NewRequest(2, 100, combining.FetchAdd(5), 1)
	fmt.Printf("request A: %v\n", a)
	fmt.Printf("request B: %v\n", b)

	// They conflict at a switch output port and combine: the switch
	// forwards ⟨id_A, addr, f∘g⟩ and saves (id_A, id_B, f).
	comb, rec, ok := combining.Combine(a, b, combining.Policy{})
	if !ok {
		log.Fatal("requests to the same address must combine")
	}
	fmt.Printf("combined:  %v   (wait buffer saves id₁=%d, id₂=%d, f=%v)\n",
		comb, rec.ID1, rec.ID2, rec.F)

	// Memory executes the single combined request.
	cell := combining.W(10)
	fmt.Printf("memory before: %v\n", cell)
	reply := combining.Execute(&cell, comb)
	fmt.Printf("memory after:  %v   reply to combined request: %v\n", cell, reply)

	// The reply returns to the switch and decombines.
	ra, rb := combining.Decombine(rec, reply)
	fmt.Printf("reply to A: %v   (the old value)\n", ra)
	fmt.Printf("reply to B: %v   (f applied to the old value)\n", rb)

	// Exactly as if A then B had executed serially:
	serial, final := combining.SerialReplies(combining.W(10),
		[]combining.Mapping{a.Op, b.Op})
	fmt.Printf("serial reference: replies %v, final %v\n", serial, final)
	if ra.Val != serial[0] || rb.Val != serial[1] || cell != final {
		log.Fatal("combining diverged from the serial reference")
	}
	fmt.Println("combining is transparent ✓")
}
