// Barrier: the classic fetch-and-add barrier running through a live
// combining network.
//
// 32 goroutine "processors" synchronize over ten phases.  Each barrier
// episode is a burst of fetch-and-adds to one cell — the textbook hot spot
// — and the asynchronous combining switches merge most of them before they
// reach memory.
package main

import (
	"fmt"
	"sync"

	combining "combining"
)

func main() {
	const n = 32
	const phases = 10

	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: n, Combining: true})
	defer net.Close()

	// Each participant gets its own port and builds its own view of the
	// shared barrier cells at address 0.
	var wg sync.WaitGroup
	order := make([][]int, phases)
	var mu sync.Mutex
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mem := combining.PortMemory{Port: net.Port(id)}
			bar := combining.NewBarrier(mem, 0, n)
			ctr := combining.NewCounter(mem, 100)
			for ph := 0; ph < phases; ph++ {
				// Do some "work": grab a ticket on a phase-wide
				// counter, then wait for everyone.
				ticket := ctr.Inc()
				mu.Lock()
				order[ph] = append(order[ph], int(ticket))
				mu.Unlock()
				bar.Await()
			}
		}(id)
	}
	wg.Wait()

	for ph := 0; ph < phases; ph++ {
		lo, hi := order[ph][0], order[ph][0]
		for _, tk := range order[ph] {
			if tk < lo {
				lo = tk
			}
			if tk > hi {
				hi = tk
			}
		}
		// The barrier guarantees phase ph's tickets all precede phase
		// ph+1's: tickets of phase ph are exactly [ph·n, ph·n+n).
		fmt.Printf("phase %2d: %2d tickets in [%3d, %3d]\n", ph, len(order[ph]), lo, hi)
		if lo != ph*n || hi != ph*n+n-1 {
			fmt.Println("  ERROR: phases interleaved — barrier broken")
		}
	}
	fmt.Printf("\ncombining events inside the network: %d\n", net.Combines())
	fmt.Println("all phases separated ✓")
}
