// Histogram: parallel scatter-add through the combining network.
//
// Workers bin a data stream by fetch-and-adding into a shared bucket
// array.  Skewed data makes some buckets hot — the exact situation the
// paper's combining mechanism targets: concurrent increments of a popular
// bucket merge in the network instead of serializing at memory.
package main

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"

	combining "combining"
)

func main() {
	const (
		workers = 8
		items   = 4000
		buckets = 16
	)
	// A skewed (roughly geometric) distribution: bucket 0 is hot.
	data := make([]int, items)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range data {
		b := 0
		for b < buckets-1 && rng.IntN(2) == 0 {
			b++
		}
		data[i] = b
	}

	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: workers, Combining: true})
	defer net.Close()

	chunk := items / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			port := net.Port(w)
			for _, b := range data[w*chunk : (w+1)*chunk] {
				port.FetchAdd(combining.Addr(b), 1)
			}
		}(w)
	}
	wg.Wait()

	// Verify against a sequential count and display.
	want := make([]int64, buckets)
	for _, b := range data {
		want[b]++
	}
	fmt.Println("bucket  count")
	ok := true
	for b := 0; b < buckets; b++ {
		got := net.Memory().Peek(combining.Addr(b)).Val
		bar := strings.Repeat("█", int(got)/25)
		fmt.Printf("  %2d  %6d  %s\n", b, got, bar)
		ok = ok && got == want[b]
	}
	fmt.Printf("\nmatches the sequential histogram: %v\n", ok)
	fmt.Printf("combining events while binning: %d of %d increments\n",
		net.Combines(), items)
}
