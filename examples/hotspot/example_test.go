package main

import "fmt"

// Example_synclibTotals is the tier-1 hook for the library-side hot spot:
// the sharded combining counter and the mutex baseline run the identical
// workload and must agree on the total exactly.
func Example_synclibTotals() {
	counter, mutex := synclibTotals(256, 100)
	fmt.Println("counter total:", counter)
	fmt.Println("mutex total:", mutex)
	fmt.Println("agree:", counter == mutex)
	// Output:
	// counter total: 25600
	// mutex total: 25600
	// agree: true
}
