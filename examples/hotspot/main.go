// Hotspot: the Pfister–Norton experiment that motivates the paper.
//
// A 64-processor machine with an Omega network runs synthetic traffic in
// which a fraction h of references target one shared cell.  Without
// combining, delivered bandwidth collapses toward the single-module limit
// 1/(h + (1−h)/N) and even unrelated traffic slows (tree saturation);
// with combining, the machine behaves as if the hot spot were not there.
package main

import (
	"fmt"

	combining "combining"
)

func main() {
	const n = 64
	const rate = 0.6
	const cycles = 4000

	fmt.Printf("N=%d processors, issue rate %.2f, %d cycles per point\n\n", n, rate, cycles)
	fmt.Println("   h     | analytic |  bandwidth (ops/cycle) |  mean latency (cycles)")
	fmt.Println("         |  limit   |  no-comb    combining  |  no-comb    combining")
	fmt.Println("---------+----------+------------------------+----------------------")
	for _, h := range []float64{0, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2} {
		no := combining.RunHotspot(n, rate, h, false, cycles, 1)
		yes := combining.RunHotspot(n, rate, h, true, cycles, 1)
		fmt.Printf(" %6.4f  |  %6.2f  |  %7.2f    %7.2f    |  %7.1f    %7.1f\n",
			h, combining.AsymptoticHotBandwidth(n, h),
			no.Stats.Bandwidth(), yes.Stats.Bandwidth(),
			no.Stats.MeanLatency(), yes.Stats.MeanLatency())
	}

	fmt.Println("\nTree saturation: latency of traffic that never touches the hot cell")
	traffic := func(h float64) combining.TrafficConfig {
		return combining.TrafficConfig{Rate: 0.3, HotFraction: h, Window: 16}
	}
	base := combining.RunHotspotTraffic(n, traffic(0), false, cycles, 2)
	sat := combining.RunHotspotTraffic(n, traffic(0.25), false, cycles, 2)
	rel := combining.RunHotspotTraffic(n, traffic(0.25), true, cycles, 2)
	fmt.Printf("  no hot spot:                 %6.1f cycles\n", base.Stats.ColdMeanLatency())
	fmt.Printf("  h=0.25, no combining:        %6.1f cycles  (everyone suffers)\n", sat.Stats.ColdMeanLatency())
	fmt.Printf("  h=0.25, combining:           %6.1f cycles  (restored)\n", rel.Stats.ColdMeanLatency())

	synclibSection()
}
