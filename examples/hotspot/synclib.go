package main

import (
	"fmt"
	"sync"
	"time"

	csync "combining/pkg/sync"
)

// The library-side rendition of the same experiment: a real Go hot spot.
// Many goroutines hammer one shared tally; the pkg/sync sharded combining
// counter decomposes the hot cell the way the paper's network combines
// simultaneous fetch-and-adds, while the mutex-guarded integer is the
// serialized baseline every arrival queues behind.

// hotTally runs goroutines × opsPer increments of one shared tally through
// add and returns the wall-clock elapsed.  The workload is the software
// image of the h=1 column above: every reference targets the hot cell.
func hotTally(goroutines, opsPer int, add func(int64)) time.Duration {
	var wg sync.WaitGroup
	wg.Add(goroutines)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				add(1)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// synclibTotals runs the identical hot-spot workload against the sharded
// combining counter and a mutex-guarded integer and returns both finals.
// Both must equal goroutines × opsPer — the totals are the deterministic
// part; the timings are host-dependent and printed only by main.
func synclibTotals(goroutines, opsPer int) (counterTotal, mutexTotal int64) {
	c := csync.NewCounter()
	hotTally(goroutines, opsPer, c.Add)

	var mu sync.Mutex
	var v int64
	hotTally(goroutines, opsPer, func(d int64) {
		mu.Lock()
		v += d
		mu.Unlock()
	})
	return c.Read(), v
}

// synclibSection prints the pkg/sync comparison with timings.
func synclibSection() {
	const goroutines, opsPer = 1024, 1000
	fmt.Printf("\npkg/sync on the same hot spot: %d goroutines × %d adds to one tally\n", goroutines, opsPer)

	c := csync.NewCounter()
	dc := hotTally(goroutines, opsPer, c.Add)

	var mu sync.Mutex
	var v int64
	dm := hotTally(goroutines, opsPer, func(d int64) {
		mu.Lock()
		v += d
		mu.Unlock()
	})

	fmt.Printf("  combining counter (%d shards): total %d in %v\n", c.Shards(), c.Read(), dc.Round(time.Millisecond))
	fmt.Printf("  sync.Mutex + int64:            total %d in %v\n", v, dm.Round(time.Millisecond))
}
