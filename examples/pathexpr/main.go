// Pathexpr: data-level synchronization from a path expression
// (Section 5.6).
//
// The path expression "(open (read | write)* close)*" is compiled — regular
// expression → NFA → minimized DFA → state-table RMW mappings — and
// guards a shared object: each access atomically tests legality against
// the automaton and advances it.  Illegal accesses are refused with a
// negative acknowledgment (the old state in the reply).
package main

import (
	"fmt"
	"log"

	combining "combining"
)

func main() {
	guard, err := combining.CompilePath("(open (read | write)* close)*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path expression compiled to a %d-state automaton over %v\n\n",
		guard.States(), guard.Ops())

	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: 2, Combining: true})
	defer net.Close()
	port := net.Port(0)
	const guardCell = combining.Addr(3)

	try := func(op string) {
		m, ok := guard.Mapping(op)
		if !ok {
			log.Fatalf("unknown operation %q", op)
		}
		old := port.RMW(guardCell, m)
		if m.Failed(old.Tag) {
			fmt.Printf("  %-6s → REFUSED (automaton in state %d)\n", op, old.Tag)
			return
		}
		fmt.Printf("  %-6s → ok      (state %d → next)\n", op, old.Tag)
	}

	fmt.Println("a legal session:")
	for _, op := range []string{"open", "read", "read", "write", "close"} {
		try(op)
	}

	fmt.Println("\nillegal attempts:")
	try("read")  // nothing is open
	try("close") // nothing is open
	fmt.Println("\nand the object can be reopened:")
	try("open")
	try("write")
	try("close")
}
