module combining

go 1.23
