package combining_test

// Differential testing across every engine in the repository: the same
// workload — each of N processors applies fetch-and-add(2^p) K times to
// one hot cell — runs on the M1 central-FIFO machine, the cycle-accurate
// Omega network (combining, partial, none, reversal), the asynchronous
// goroutine network, the hypercube, and the bus FIFO.  Every engine must
// produce the same final value and a reply multiset that witnesses some
// serialization; Theorem 4.2 says combining changes neither.

import (
	"sort"
	"sync"
	"testing"

	combining "combining"
)

const (
	diffProcs = 8
	diffPer   = 4
	diffAddr  = combining.Addr(5)
)

// checkSerialization verifies the replies to unit fetch-and-adds are the
// exact set {0, …, total−1}.
func checkSerialization(t *testing.T, engine string, replies []int64, final int64) {
	t.Helper()
	total := diffProcs * diffPer
	if final != int64(total) {
		t.Fatalf("%s: final %d, want %d", engine, final, total)
	}
	if len(replies) != total {
		t.Fatalf("%s: %d replies, want %d", engine, len(replies), total)
	}
	sorted := append([]int64{}, replies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != int64(i) {
			t.Fatalf("%s: replies are not a serialization (position %d holds %d)", engine, i, v)
		}
	}
}

func diffPrograms() [][]combining.Instr {
	progs := make([][]combining.Instr, diffProcs)
	for p := 0; p < diffProcs; p++ {
		for i := 0; i < diffPer; i++ {
			progs[p] = append(progs[p], combining.RMW(diffAddr, combining.FetchAdd(1)))
		}
	}
	return progs
}

func repliesOf(m *combining.Machine) []int64 {
	var out []int64
	for p := 0; p < diffProcs; p++ {
		for i := 0; i < diffPer; i++ {
			out = append(out, m.Proc(p).Reply(i).Val)
		}
	}
	return out
}

func TestDifferentialEngines(t *testing.T) {
	// M1 central FIFO.
	t.Run("m1", func(t *testing.T) {
		m := combining.NewM1(diffPrograms())
		if !m.Run(10000) {
			t.Fatal("did not complete")
		}
		var replies []int64
		for p := 0; p < diffProcs; p++ {
			for i := 0; i < diffPer; i++ {
				replies = append(replies, m.Reply(p, i).Val)
			}
		}
		checkSerialization(t, "m1", replies, m.Peek(diffAddr).Val)
	})

	// Omega network machine across combining configurations.
	for _, cfg := range []struct {
		name string
		net  combining.NetConfig
	}{
		{"omega-none", combining.NetConfig{Procs: diffProcs, WaitBufCap: 0}},
		{"omega-partial", combining.NetConfig{Procs: diffProcs, WaitBufCap: 1}},
		{"omega-full", combining.NetConfig{Procs: diffProcs, WaitBufCap: combining.Unbounded}},
		{"omega-reversal", combining.NetConfig{Procs: diffProcs, WaitBufCap: combining.Unbounded, AllowReversal: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			m := combining.NewMachine(cfg.net, diffPrograms())
			if !m.Run(100000) {
				t.Fatal("did not complete")
			}
			checkSerialization(t, cfg.name, repliesOf(m),
				m.Sim().Memory().Peek(diffAddr).Val)
			if err := combining.CheckLinearizable(m.TimedHistory(), nil, nil); err != nil {
				t.Errorf("%s: %v", cfg.name, err)
			}
		})
	}

	// Asynchronous goroutine network.
	t.Run("asyncnet", func(t *testing.T) {
		net := combining.NewAsyncNet(combining.AsyncConfig{Procs: diffProcs, Combining: true})
		defer net.Close()
		replies := make([][]int64, diffProcs)
		var wg sync.WaitGroup
		for p := 0; p < diffProcs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				port := net.Port(p)
				for i := 0; i < diffPer; i++ {
					replies[p] = append(replies[p], port.FetchAdd(diffAddr, 1))
				}
			}(p)
		}
		wg.Wait()
		var all []int64
		for _, rs := range replies {
			all = append(all, rs...)
		}
		checkSerialization(t, "asyncnet", all, net.Memory().Peek(diffAddr).Val)
	})

	// Hypercube and bus (script injectors).
	t.Run("hypercube", func(t *testing.T) {
		inj, collect := scriptFleet()
		sim := combining.NewCubeSim(combining.CubeConfig{Nodes: diffProcs, WaitBufCap: combining.Unbounded}, inj)
		if !sim.Drain(10000) {
			t.Fatal("did not drain")
		}
		checkSerialization(t, "hypercube", collect(), sim.Memory().Peek(diffAddr).Val)
	})
	t.Run("bus", func(t *testing.T) {
		inj, collect := scriptFleet()
		sim := combining.NewBusSim(combining.BusConfig{Procs: diffProcs, Banks: 4, WaitBufCap: combining.Unbounded}, inj)
		if !sim.Drain(10000) {
			t.Fatal("did not drain")
		}
		checkSerialization(t, "bus", collect(), sim.Memory().Peek(diffAddr).Val)
	})
}

// scriptFleet builds per-processor scripted injectors for the engines that
// take raw injectors, and a collector for their replies.
func scriptFleet() ([]combining.Injector, func() []int64) {
	inj := make([]combining.Injector, diffProcs)
	scripts := make([]*diffScript, diffProcs)
	id := 1
	for p := 0; p < diffProcs; p++ {
		scripts[p] = &diffScript{}
		for i := 0; i < diffPer; i++ {
			scripts[p].script = append(scripts[p].script, combining.Injection{
				Req: combining.NewRequest(combining.ReqID(id), diffAddr,
					combining.FetchAdd(1), combining.ProcID(p)),
			})
			id++
		}
		inj[p] = scripts[p]
	}
	return inj, func() []int64 {
		var out []int64
		for _, s := range scripts {
			for _, r := range s.replies {
				out = append(out, r.Val.Val)
			}
		}
		return out
	}
}

type diffScript struct {
	script  []combining.Injection
	next    int
	replies []combining.Reply
}

func (s *diffScript) Next(int64) (combining.Injection, bool) {
	if s.next >= len(s.script) {
		return combining.Injection{}, false
	}
	inj := s.script[s.next]
	s.next++
	return inj, true
}

func (s *diffScript) Deliver(rep combining.Reply, _ int64) {
	s.replies = append(s.replies, rep)
}
