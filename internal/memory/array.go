package memory

import (
	"combining/internal/core"
	"combining/internal/word"
)

// Array is a low-order-interleaved bank of modules: address a lives in
// module a mod m, the interleaving used by the Ultracomputer and RP3 to
// spread uniform traffic evenly.  An Array is itself a correct memory
// system by Lemma 3.1: each module is FIFO per location, and the
// module-selection function sends all requests for a location to the same
// module.
type Array struct {
	modules []*Module
}

// NewArray builds m interleaved modules.
func NewArray(m int, opts ...Option) *Array {
	if m < 1 {
		panic("memory: array needs at least one module")
	}
	mods := make([]*Module, m)
	for i := range mods {
		mods[i] = NewModule(opts...)
	}
	return &Array{modules: mods}
}

// Modules returns the number of modules.
func (a *Array) Modules() int { return len(a.modules) }

// HomeOf returns the module index serving an address.
func (a *Array) HomeOf(addr word.Addr) int {
	return int(addr) % len(a.modules)
}

// Module returns module i.
func (a *Array) Module(i int) *Module { return a.modules[i] }

// Do routes a request to its home module and executes it.
func (a *Array) Do(req core.Request) core.Reply {
	return a.modules[a.HomeOf(req.Addr)].Do(req)
}

// Peek reads a cell through the interleaving.
func (a *Array) Peek(addr word.Addr) word.Word {
	return a.modules[a.HomeOf(addr)].Peek(addr)
}

// Poke writes a cell through the interleaving.
func (a *Array) Poke(addr word.Addr, w word.Word) {
	a.modules[a.HomeOf(addr)].Poke(addr, w)
}

// TotalServed sums completed requests across modules.
func (a *Array) TotalServed() int64 {
	var n int64
	for _, m := range a.modules {
		n += m.Served
	}
	return n
}

// MaxQueueDepth returns the deepest input queue observed on any module —
// the memory-side high-water mark the backpressure acceptance criteria
// bound.
func (a *Array) MaxQueueDepth() int {
	max := 0
	for _, m := range a.modules {
		if d := m.MaxQueue(); d > max {
			max = d
		}
	}
	return max
}

// TotalDedupHits sums reply-cache hits across modules (zero unless the
// modules were built WithReplyCache).  Reads under each module's lock, so
// it is safe while asynchronous traffic is in flight.
func (a *Array) TotalDedupHits() int64 {
	var n int64
	for _, m := range a.modules {
		n += m.DedupHitCount()
	}
	return n
}
