package memory

import (
	"sync"
	"testing"
	"time"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

func qreq(id word.ReqID, addr word.Addr, op rmw.Mapping) core.Request {
	return core.NewRequest(id, addr, op, word.ProcID(id))
}

func TestQueueingProducerConsumer(t *testing.T) {
	m := NewQueueingModule()
	const cell = word.Addr(3)
	const items = 200

	var wg sync.WaitGroup
	wg.Add(2)
	var got []int64
	go func() { // consumer: parks on an empty cell instead of spinning
		defer wg.Done()
		for i := 0; i < items; i++ {
			rep := m.Do(qreq(word.ReqID(1000+i), cell, rmw.FELoadIfSetClear()))
			got = append(got, rep.Val.Val)
		}
	}()
	go func() { // producer: parks on a full cell
		defer wg.Done()
		for i := 1; i <= items; i++ {
			m.Do(qreq(word.ReqID(i), cell, rmw.FEStoreIfClearSet(int64(i))))
		}
	}()
	wg.Wait()

	if len(got) != items {
		t.Fatalf("consumed %d, want %d", len(got), items)
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("item %d = %d, want %d (cell must stay FIFO)", i, v, i+1)
		}
	}
	if m.PendingAt(cell) != 0 {
		t.Fatal("requests left parked")
	}
	if m.Parked == 0 {
		t.Error("expected some requests to park (no busy-waiting happened at all?)")
	}
}

func TestQueueingManyProducersConsumers(t *testing.T) {
	m := NewQueueingModule()
	const cell = word.Addr(7)
	const producers, consumers, per = 4, 4, 50

	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[int64]bool{}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rep := m.Do(qreq(word.ReqID(10000+c*per+i), cell, rmw.FELoadIfSetClear()))
				mu.Lock()
				if seen[rep.Val.Val] {
					t.Errorf("value %d consumed twice", rep.Val.Val)
				}
				seen[rep.Val.Val] = true
				mu.Unlock()
			}
		}(c)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(p*per + i + 1)
				m.Do(qreq(word.ReqID(v), cell, rmw.FEStoreIfClearSet(v)))
			}
		}(p)
	}
	wg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*per)
	}
}

// TestQueueingUnconditionalImmediate: plain operations never park.
func TestQueueingUnconditionalImmediate(t *testing.T) {
	m := NewQueueingModule()
	rep := m.Do(qreq(1, 5, rmw.FetchAdd(7)))
	if rep.Val.Val != 0 || m.Peek(5).Val != 7 {
		t.Fatal("unconditional op mishandled")
	}
	if m.Parked != 0 {
		t.Fatal("unconditional op parked")
	}
}

// TestQueueingDeadlockCaveat demonstrates the paper's warning: with only
// consumers and no time-out mechanism, the controller parks them forever.
func TestQueueingDeadlockCaveat(t *testing.T) {
	m := NewQueueingModule()
	const cell = word.Addr(2)
	done := make(chan struct{})
	go func() {
		m.Do(qreq(1, cell, rmw.FELoadIfSetClear()))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("a lone consumer completed on an empty cell")
	case <-time.After(50 * time.Millisecond):
		if m.PendingAt(cell) != 1 {
			t.Fatalf("%d parked, want 1", m.PendingAt(cell))
		}
	}
	// Resolve the deadlock by producing, so the goroutine exits cleanly.
	m.Do(qreq(2, cell, rmw.FEStoreIfClearSet(9)))
	<-done
}

// TestQueueingFIFOAmongApplicable: parked consumers are woken in arrival
// order.
func TestQueueingFIFOAmongApplicable(t *testing.T) {
	m := NewQueueingModule()
	const cell = word.Addr(4)
	order := make(chan int, 3)
	var started sync.WaitGroup
	for i := 0; i < 3; i++ {
		started.Add(1)
		go func(i int) {
			started.Done()
			m.Do(qreq(word.ReqID(100+i), cell, rmw.FELoadIfSetClear()))
			order <- i
		}(i)
		started.Wait()
		// Ensure deterministic arrival order.
		for m.PendingAt(cell) != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	for round := 0; round < 3; round++ {
		m.Do(qreq(word.ReqID(round+1), cell, rmw.FEStoreIfClearSet(int64(round))))
		if got := <-order; got != round {
			t.Fatalf("wakeup %d went to consumer %d", round, got)
		}
	}
}
