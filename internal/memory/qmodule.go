package memory

import (
	"sync"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// QueueingModule implements the alternative synchronization mechanism at
// the end of Section 5.5: instead of returning a negative acknowledgment,
// "queue a request at memory until it is executable".  Producers
// (store-and-set-if-clear) and consumers (load-and-clear-if-set) of a
// full/empty cell are matched by the memory controller itself: an
// inapplicable request parks in a per-cell wait queue and executes the
// moment its enabling operation arrives, so callers never busy-wait.
//
// The paper's caveat is real and preserved: "unless some time-out
// mechanism is available at the memory controller, the hardware may
// deadlock" — a machine full of parked consumers makes no progress, which
// the tests demonstrate with a bounded wait.
type QueueingModule struct {
	mu    sync.Mutex
	cells map[word.Addr]word.Word
	// parked holds requests waiting for the cell to change, per address,
	// in arrival order.
	parked map[word.Addr][]parkedReq

	// Served counts executed requests; Parked counts requests that had
	// to wait at least once.
	Served int64
	Parked int64
}

type parkedReq struct {
	req  core.Request
	done chan core.Reply
}

// NewQueueingModule returns an empty queueing memory.
func NewQueueingModule() *QueueingModule {
	return &QueueingModule{
		cells:  make(map[word.Addr]word.Word),
		parked: make(map[word.Addr][]parkedReq),
	}
}

// Peek reads a cell directly.
func (m *QueueingModule) Peek(addr word.Addr) word.Word {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.cells[addr]
}

// Poke initializes a cell.  Parked requests are not re-evaluated; use it
// only before issuing traffic.
func (m *QueueingModule) Poke(addr word.Addr, w word.Word) {
	m.mu.Lock()
	defer m.mu.Unlock()

	m.cells[addr] = w
}

// PendingAt reports how many requests are parked on a cell.
func (m *QueueingModule) PendingAt(addr word.Addr) int {
	m.mu.Lock()
	defer m.mu.Unlock()

	return len(m.parked[addr])
}

// Do executes the request, blocking the caller until it is executable.
// Non-conditional operations (anything that does not Fail in the cell's
// current state) execute immediately.
func (m *QueueingModule) Do(req core.Request) core.Reply {
	m.mu.Lock()
	if m.applicable(req) && len(m.parked[req.Addr]) == 0 {
		rep := m.execLocked(req)
		m.mu.Unlock()
		return rep
	}
	// Park in arrival order: even an applicable request must wait
	// behind earlier parked ones, or the per-location FIFO of
	// condition M2 would be violated... except that a strictly FIFO
	// discipline deadlocks immediately (a parked consumer blocks the
	// producer that would wake it).  The controller therefore serves
	// parked requests in arrival order *among the applicable*, which
	// is exactly the alternating load/store service the paper
	// describes.
	done := make(chan core.Reply, 1)
	m.parked[req.Addr] = append(m.parked[req.Addr], parkedReq{req: req, done: done})
	m.Parked++
	m.drainLocked(req.Addr)
	m.mu.Unlock()
	return <-done
}

// applicable reports whether the request's mapping succeeds in the cell's
// current state.
func (m *QueueingModule) applicable(req core.Request) bool {
	t, ok := req.Op.(rmw.Table)
	if !ok {
		return true
	}
	return !t.Failed(m.cells[req.Addr].Tag)
}

func (m *QueueingModule) execLocked(req core.Request) core.Reply {
	cell := m.cells[req.Addr]
	rep := core.Execute(&cell, req)
	m.cells[req.Addr] = cell
	m.Served++
	return rep
}

// drainLocked repeatedly executes the first applicable parked request on
// the cell until none is applicable — the alternating producer/consumer
// service of Section 5.5.
func (m *QueueingModule) drainLocked(addr word.Addr) {
	for {
		queue := m.parked[addr]
		fired := false
		for i, p := range queue {
			if !m.applicable(p.req) {
				continue
			}
			rep := m.execLocked(p.req)
			m.parked[addr] = append(append([]parkedReq{}, queue[:i]...), queue[i+1:]...)
			p.done <- rep
			fired = true
			break
		}
		if !fired {
			return
		}
	}
}
