package memory

import (
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// leafReq builds a fresh single-leaf request carrying its representation,
// as fault-mode transports issue them.
func leafReq(id word.ReqID, addr word.Addr, op rmw.Mapping, src word.ProcID) core.Request {
	return core.NewRequest(id, addr, op, src).WithReps()
}

// retry returns the request's k-th retransmission: same id and leaves,
// bumped attempt.
func retry(r core.Request, k uint32) core.Request {
	r.Attempt = k
	return r
}

// combined merges two leaf requests the way a switch would, so the message
// reaching memory carries both representation leaves.
func combined(a, b core.Request) core.Request {
	c, _, ok := core.Combine(a, b, core.Policy{})
	if !ok {
		panic("dedup_test: requests did not combine")
	}
	return c
}

// TestReplyCacheDedup is the table-driven exactly-once suite: each case
// plays a sequence of requests (originals, retransmits, combined copies)
// into one cache-armed module and checks every reply value, the dedup-hit
// count, and the final cell — the module-side contract that keeps
// non-idempotent RMWs exactly-once under retransmission.
func TestReplyCacheDedup(t *testing.T) {
	const addr = word.Addr(4)
	a := leafReq(1, addr, rmw.FetchAdd(10), 0)
	b := leafReq(2, addr, rmw.FetchAdd(100), 1)
	c := leafReq(3, addr, rmw.FetchAdd(1000), 2)

	type step struct {
		req core.Request
		// want maps each leaf id to the value its operation must have
		// seen; the reply's top-level Val must equal want[req.ID].
		want map[word.ReqID]int64
	}
	cases := []struct {
		name      string
		steps     []step
		dedupHits int64
		final     int64
	}{
		{
			// The reply was delivered, then a raced retransmit arrives:
			// pure cache hit, no second execution.
			name: "retransmit after delivered reply",
			steps: []step{
				{a, map[word.ReqID]int64{1: 0}},
				{retry(a, 1), map[word.ReqID]int64{1: 0}},
			},
			dedupHits: 1,
			final:     10,
		},
		{
			// The first copy executed but its reply was lost; other
			// traffic moved the cell before the retransmit arrives.  The
			// cache must answer with the value the lost execution saw,
			// not the current cell.
			name: "retransmit after lost reply, cell moved",
			steps: []step{
				{a, map[word.ReqID]int64{1: 0}},
				{b, map[word.ReqID]int64{2: 10}},
				{retry(a, 1), map[word.ReqID]int64{1: 0}},
			},
			dedupHits: 1,
			final:     110,
		},
		{
			// A combined message whose leaves mix one already-executed
			// request and one fresh one: the cached leaf is skipped, the
			// fresh leaf executes — each exactly once.
			name: "combined copy mixing cached and fresh leaves",
			steps: []step{
				{a, map[word.ReqID]int64{1: 0}},
				{retry(combined(a, c), 1), map[word.ReqID]int64{1: 0, 3: 10}},
			},
			dedupHits: 1,
			final:     1010,
		},
		{
			// A stale retransmit arriving long after the issuer fenced
			// and moved on (the cross-epoch case): still answered from
			// the cache, still no re-execution.
			name: "retransmit across fence epochs",
			steps: []step{
				{a, map[word.ReqID]int64{1: 0}},
				{b, map[word.ReqID]int64{2: 10}},
				{c, map[word.ReqID]int64{3: 110}},
				{retry(a, 3), map[word.ReqID]int64{1: 0}},
				{retry(b, 1), map[word.ReqID]int64{2: 10}},
			},
			dedupHits: 2,
			final:     1110,
		},
		{
			// Repeated retransmits of the same request each hit the
			// cache; the operation still executes once.
			name: "many retransmits, one execution",
			steps: []step{
				{a, map[word.ReqID]int64{1: 0}},
				{retry(a, 1), map[word.ReqID]int64{1: 0}},
				{retry(a, 2), map[word.ReqID]int64{1: 0}},
				{retry(a, 3), map[word.ReqID]int64{1: 0}},
			},
			dedupHits: 3,
			final:     10,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := NewModule(WithReplyCache())
			for i, st := range tc.steps {
				rep := mod.Do(st.req)
				if rep.ID != st.req.ID {
					t.Fatalf("step %d: reply id %d, want %d", i, rep.ID, st.req.ID)
				}
				if want := st.want[st.req.ID]; rep.Val.Val != want {
					t.Fatalf("step %d: reply value %d, want %d", i, rep.Val.Val, want)
				}
				for id, want := range st.want {
					got, ok := rep.Leaves[id]
					if !ok {
						t.Fatalf("step %d: reply missing leaf %d", i, id)
					}
					if got.Val != want {
						t.Fatalf("step %d: leaf %d value %d, want %d", i, id, got.Val, want)
					}
				}
			}
			if mod.DedupHitCount() != tc.dedupHits {
				t.Fatalf("dedup hits = %d, want %d", mod.DedupHitCount(), tc.dedupHits)
			}
			if got := mod.Peek(addr).Val; got != tc.final {
				t.Fatalf("final cell = %d, want %d", got, tc.final)
			}
		})
	}
}

// TestReplyCacheSwapExactlyOnce: a non-idempotent swap retransmitted after
// delivery must not clobber a later writer — the failure the cache exists
// to prevent.
func TestReplyCacheSwapExactlyOnce(t *testing.T) {
	const addr = word.Addr(0)
	mod := NewModule(WithReplyCache())

	s1 := leafReq(1, addr, rmw.SwapOf(111), 0)
	s2 := leafReq(2, addr, rmw.SwapOf(222), 1)
	if rep := mod.Do(s1); rep.Val.Val != 0 {
		t.Fatalf("swap1 saw %d, want 0", rep.Val.Val)
	}
	if rep := mod.Do(s2); rep.Val.Val != 111 {
		t.Fatalf("swap2 saw %d, want 111", rep.Val.Val)
	}
	// Without the cache this retransmit would write 111 over 222.
	if rep := mod.Do(retry(s1, 1)); rep.Val.Val != 0 {
		t.Fatalf("retransmitted swap1 saw %d, want its original 0", rep.Val.Val)
	}
	if got := mod.Peek(addr).Val; got != 222 {
		t.Fatalf("cell = %d, want 222 (retransmit re-executed a swap)", got)
	}
}
