package memory

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// Checkpoint/crash–restart mode (WithCheckpoints): replies are withheld
// until the checkpoint covering their execution commits (output commit),
// a crash rolls cells and the reply cache back to the last checkpoint, and
// committed leaves survive a crash so retransmits are answered from the
// cache without re-executing.

// drain ticks the module n cycles and returns every reply that escaped.
func drain(m *Module, n int) []word.ReqID {
	var out []word.ReqID
	for i := 0; i < n; i++ {
		if rep, ok := m.Tick(); ok {
			out = append(out, rep.ID)
		}
	}
	return out
}

func TestCheckpointOutputCommit(t *testing.T) {
	m := NewModule(WithCheckpoints())
	m.Enqueue(req(1, 3, rmw.FetchAdd(5)))
	// Service time 1: the operation executes on the first tick, but the
	// reply must stay inside the module until a checkpoint commits it.
	if got := drain(m, 10); len(got) != 0 {
		t.Fatalf("replies escaped before checkpoint: %v", got)
	}
	if got := m.Peek(3).Val; got != 5 {
		t.Fatalf("cell = %d after execution, want 5", got)
	}
	if got := m.PendingReplies(); got != 1 {
		t.Fatalf("PendingReplies = %d, want 1", got)
	}
	m.Checkpoint()
	got := drain(m, 10)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after checkpoint got replies %v, want [1]", got)
	}
	if m.PendingReplies() != 0 {
		t.Fatalf("PendingReplies = %d after drain, want 0", m.PendingReplies())
	}
}

func TestCheckpointReleasesOnePerTick(t *testing.T) {
	m := NewModule(WithCheckpoints())
	for i := 1; i <= 3; i++ {
		m.Enqueue(req(word.ReqID(i), 0, rmw.FetchAdd(1)))
	}
	drain(m, 5)
	m.Checkpoint()
	// One committed reply per Tick: the engines' one-reply-per-module-
	// per-cycle contract.
	for i := 1; i <= 3; i++ {
		rep, ok := m.Tick()
		if !ok || rep.ID != word.ReqID(i) {
			t.Fatalf("tick %d: got (%v, %v), want reply %d", i, rep.ID, ok, i)
		}
	}
	if _, ok := m.Tick(); ok {
		t.Fatal("reply escaped after the releasable queue drained")
	}
}

func TestCrashRollsBackToLastCheckpoint(t *testing.T) {
	m := NewModule(WithCheckpoints())
	// Committed prefix: id 1 adds 10, checkpointed.
	m.Enqueue(req(1, 7, rmw.FetchAdd(10)))
	drain(m, 3)
	m.Checkpoint()
	drain(m, 3)
	// Uncommitted suffix: id 2 adds 100, never checkpointed.
	m.Enqueue(req(2, 7, rmw.FetchAdd(100)))
	drain(m, 3)
	if got := m.Peek(7).Val; got != 110 {
		t.Fatalf("cell = %d before crash, want 110", got)
	}

	lost := m.Crash()
	if len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("Crash lost %v, want [2]", lost)
	}
	if got := m.Peek(7).Val; got != 10 {
		t.Fatalf("cell = %d after crash, want rollback to 10", got)
	}

	// Retransmit of the committed leaf: answered from the surviving cache
	// with its original old value, without re-executing.
	rep := m.Do(req(1, 7, rmw.FetchAdd(10)))
	if rep.Val.Val != 0 {
		t.Fatalf("retransmit of committed leaf saw %d, want cached 0", rep.Val.Val)
	}
	if m.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", m.DedupHits)
	}
	// Retransmit of the rolled-back leaf: re-executes against the restored
	// cell and sees the same old value the lost execution saw.
	rep = m.Do(req(2, 7, rmw.FetchAdd(100)))
	if rep.Val.Val != 10 {
		t.Fatalf("re-driven leaf saw %d, want 10", rep.Val.Val)
	}
	if got := m.Peek(7).Val; got != 110 {
		t.Fatalf("cell = %d after recovery, want 110", got)
	}
}

func TestCrashFlushesQueueAndWithheldReplies(t *testing.T) {
	m := NewModule(WithCheckpoints(), WithServiceTime(2))
	// id 1 executed but its reply is still withheld; ids 2, 3 queued.
	m.Enqueue(req(1, 0, rmw.FetchAdd(1)))
	drain(m, 2)
	m.Enqueue(req(2, 0, rmw.FetchAdd(1)))
	m.Enqueue(req(3, 0, rmw.FetchAdd(1)))

	lost := m.Crash()
	want := map[word.ReqID]bool{1: true, 2: true, 3: true}
	if len(lost) != len(want) {
		t.Fatalf("Crash lost %v, want ids 1..3", lost)
	}
	for _, id := range lost {
		if !want[id] {
			t.Fatalf("Crash lost unexpected id %d (all: %v)", id, lost)
		}
	}
	if got := m.Peek(0).Val; got != 0 {
		t.Fatalf("cell = %d after crash, want 0", got)
	}
	if m.QueueLen() != 0 || m.PendingReplies() != 0 {
		t.Fatalf("volatile state survived the crash: queue %d, pending %d",
			m.QueueLen(), m.PendingReplies())
	}
}

func TestCheckpointIdempotentWithoutMode(t *testing.T) {
	m := NewModule(WithReplyCache())
	m.Enqueue(req(1, 0, rmw.FetchAdd(1)))
	drain(m, 2)
	m.Checkpoint() // no-op outside checkpoint mode
	if got := m.Crash(); got != nil {
		t.Fatalf("Crash on a non-checkpointed module lost %v, want nil", got)
	}
	if got := m.Peek(0).Val; got != 1 {
		t.Fatalf("cell = %d, want 1 (no rollback without checkpoint mode)", got)
	}
}
