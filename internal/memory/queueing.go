package memory

import (
	"combining/internal/rmw"
	"combining/internal/word"
)

// Queueing synchronization (end of Section 5.5).  Instead of returning a
// negative acknowledgment, a full/empty memory can queue a request until it
// is executable.  Accesses at a location then execute as a sequence of
// alternating stores (producers, store-and-set-if-clear) and loads
// (consumers, load-and-clear-if-set).
//
// The paper observes that a set of i loads and j stores can be combined
// into |i − j| + 1 operations: min(i, j) producer/consumer pairs fuse —
// transitively, into a single alternating chain — and the excess |i − j|
// requests stay queued and uncombined.

// QKind distinguishes the two queueing operations.
type QKind uint8

const (
	// QLoad is the consumer operation load-and-clear-if-set.
	QLoad QKind = iota + 1
	// QStore is the producer operation store-and-set-if-clear.
	QStore
)

// QOp is one queued request at a full/empty location.
type QOp struct {
	Kind QKind
	ID   word.ReqID
	V    int64 // producer payload
}

// Mapping returns the RMW mapping the operation denotes.
func (q QOp) Mapping() rmw.Mapping {
	if q.Kind == QLoad {
		return rmw.FELoadIfSetClear()
	}
	return rmw.FEStoreIfClearSet(q.V)
}

// QueueMessage is one message after queue combining: a maximal alternating
// producer/consumer chain fused into a single combined operation, or a
// single uncombined excess request.
type QueueMessage struct {
	// Ops lists the original requests this message represents, in
	// serialization order.
	Ops []QOp
	// Combined is the fused mapping, equal to the composition of the
	// Ops' mappings.
	Combined rmw.Mapping
}

// CombineQueue fuses a batch of queueing requests into the minimum number
// of messages: every producer cancels a consumer (in either arrival order —
// a waiting consumer is satisfied by the next producer), so min(i, j) pairs
// chain together with the excess left over.  The returned messages carry
// their represented requests so callers can decombine replies.
//
// The first message is the fused alternating chain (when any pair exists);
// the rest are the excess requests.  len(result) == |i − j| + 1 whenever
// both kinds are present, matching the paper's count.
func CombineQueue(ops []QOp) []QueueMessage {
	var loads, stores []QOp
	for _, op := range ops {
		if op.Kind == QLoad {
			loads = append(loads, op)
		} else {
			stores = append(stores, op)
		}
	}
	pairs := min(len(loads), len(stores))
	var msgs []QueueMessage
	if pairs > 0 {
		// Fuse pairs into one alternating chain: store then load, so
		// each consumer sees the value its producer deposited.
		chain := make([]QOp, 0, 2*pairs)
		for k := 0; k < pairs; k++ {
			chain = append(chain, stores[k], loads[k])
		}
		msgs = append(msgs, fuse(chain))
	}
	for _, op := range loads[pairs:] {
		msgs = append(msgs, fuse([]QOp{op}))
	}
	for _, op := range stores[pairs:] {
		msgs = append(msgs, fuse([]QOp{op}))
	}
	if len(msgs) == 0 {
		return nil
	}
	return msgs
}

func fuse(chain []QOp) QueueMessage {
	maps := make([]rmw.Mapping, len(chain))
	for i, op := range chain {
		maps[i] = op.Mapping()
	}
	combined, ok := rmw.ComposeAll(maps...)
	if !ok {
		panic("memory: queueing operations must compose")
	}
	return QueueMessage{Ops: chain, Combined: combined}
}
