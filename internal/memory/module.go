// Package memory implements the shared-memory modules of Section 3: each
// module is a FIFO server that accepts RMW request messages, executes them
// atomically memory-side (Section 2's preferred implementation), and
// returns the old value.  A module satisfies conditions (M2.1)–(M2.3) by
// construction: it processes one request at a time in arrival order.
//
// The package offers two driving styles for the two network engines:
//
//   - Cycle-driven (Enqueue/Tick): the cycle-accurate simulator feeds
//     requests and collects replies on a clock, with a configurable service
//     time per request.
//   - Direct (Do): the asynchronous goroutine network calls Do, which
//     executes the request under the module's mutex — the module acts as a
//     monitor, which is exactly "memory is locked only during the execution
//     of the update operation".
package memory

import (
	"sync"

	"combining/internal/core"
	"combining/internal/word"
)

// Module is one memory module: a bank of cells plus a FIFO request queue.
type Module struct {
	mu sync.Mutex

	cells map[word.Addr]word.Word

	// queue is the cycle-driven request FIFO; queueCap bounds it (0 means
	// unbounded) and maxQueue records its high-water mark including the
	// request in service.
	queue    []core.Request
	queueCap int
	maxQueue int
	// serviceTime is cycles per request (≥ 1).
	serviceTime int
	// busy counts remaining cycles of the in-flight request.
	busy    int
	current core.Request

	// Served counts completed requests.
	Served int64
	// BusyCycles counts cycles the module spent serving.
	BusyCycles int64

	// canaryNoDedup disables reply-cache lookups (WithNoDedupCanary): the
	// ledger still records executions but never answers from them, so any
	// duplicated delivery double-executes.  Exists solely to give the
	// chaos fuzzer a real bug to find; nothing enables it outside
	// faults.Plan.Canary == "nodedup".
	canaryNoDedup bool

	// replyCache, when non-nil, is the exactly-once ledger: for every
	// original (leaf) request already executed, the value its operation
	// saw.  Request ids are partitioned per processor (word.IDGen), so
	// this flat map is the paper-level "per-processor reply cache" —
	// retransmits of a delivered request hit the cache instead of
	// re-executing a non-idempotent RMW.
	replyCache map[word.ReqID]word.Word
	// DedupHits counts leaf executions answered from the cache.
	DedupHits int64

	// Checkpoint mode (WithCheckpoints): the module keeps an incremental
	// recovery image so a crash rolls back to the last checkpoint in
	// O(changes since checkpoint), not O(total state).  replyCache then
	// holds only committed leaves; delta holds leaves executed since the
	// last checkpoint; undo holds the pre-image of every cell modified
	// since the last checkpoint.  held are replies produced since the last
	// checkpoint — the output-commit rule keeps them inside the module
	// until the checkpoint that covers their effects commits, so a crash
	// can never un-execute an operation whose reply already escaped.
	// releasable are committed replies draining to the network one per
	// Tick.
	ckpt       bool
	delta      map[word.ReqID]word.Word
	undo       map[word.Addr]word.Word
	held       []core.Reply
	releasable []core.Reply
}

// Option configures a Module.
type Option func(*Module)

// WithServiceTime sets the cycles each request occupies the module.
func WithServiceTime(cycles int) Option {
	return func(m *Module) {
		if cycles < 1 {
			panic("memory: service time must be at least 1 cycle")
		}
		m.serviceTime = cycles
	}
}

// WithQueueCap bounds the cycle-driven input FIFO (including the request in
// service): a full module refuses Enqueue, and the network holds the request
// upstream instead — the backpressure that lets hot-spot congestion surface
// as tree saturation in the switches rather than as unbounded memory-side
// buffering no hardware could provide.  cap ≤ 0 means unbounded (the
// pre-flow-control behavior).
func WithQueueCap(cap int) Option {
	return func(m *Module) { m.queueCap = cap }
}

// WithReplyCache arms the module's exactly-once ledger.  Requests are then
// executed leaf by leaf (they must carry Reps — see core.Request.WithReps):
// leaves already in the cache are skipped, fresh leaves execute and are
// recorded, and the reply carries the exact per-leaf value map so transports
// decombine with core.DecombineExact.  The cache is unbounded for the run —
// a simulator-side simplification of the bounded per-processor caches a real
// machine would age out after the retransmit window closes.
func WithReplyCache() Option {
	return func(m *Module) {
		m.replyCache = make(map[word.ReqID]word.Word)
	}
}

// WithCheckpoints arms checkpoint/crash–restart mode (implies
// WithReplyCache).  The engine calls Checkpoint every K cycles and Crash on
// a crash-window entry; replies are withheld until the checkpoint after
// their execution commits (output commit) and then drain one per Tick.
func WithCheckpoints() Option {
	return func(m *Module) {
		if m.replyCache == nil {
			m.replyCache = make(map[word.ReqID]word.Word)
		}
		m.ckpt = true
		m.delta = make(map[word.ReqID]word.Word)
		m.undo = make(map[word.Addr]word.Word)
	}
}

// WithNoDedupCanary seeds the "nodedup" canary bug: the reply cache stops
// answering lookups, so retransmit-born and network-born duplicates
// double-execute their non-idempotent RMWs.  The chaos fuzzer
// (internal/chaos, cmd/check -chaos) must detect the resulting
// exactly-once/M2 violations and shrink a triggering plan to a minimal
// reproducer — this option is the planted ground truth for that test, not
// a feature.
func WithNoDedupCanary() Option {
	return func(m *Module) { m.canaryNoDedup = true }
}

// NewModule returns an empty module; all cells read as the zero word.
func NewModule(opts ...Option) *Module {
	m := &Module{
		cells:       make(map[word.Addr]word.Word),
		serviceTime: 1,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Peek reads a cell without a memory operation (test/diagnostic use).
func (m *Module) Peek(addr word.Addr) word.Word {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.cells[addr]
}

// Poke sets a cell directly (initialization use).
func (m *Module) Poke(addr word.Addr, w word.Word) {
	m.mu.Lock()
	defer m.mu.Unlock()

	m.cells[addr] = w
}

// Do executes one request immediately and atomically, returning its reply.
// It is safe for concurrent use; the module's lock is held only for the
// read-modify-write itself.
func (m *Module) Do(req core.Request) core.Reply {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.execLocked(req)
}

func (m *Module) execLocked(req core.Request) core.Reply {
	if m.replyCache != nil {
		return m.execCachedLocked(req)
	}
	cell := m.cells[req.Addr]
	reply := core.Execute(&cell, req)
	m.cells[req.Addr] = cell
	m.Served++
	return reply
}

// execCachedLocked executes a request leaf by leaf against the reply cache.
// A request without Reps (plain traffic on a fault-armed module) is treated
// as its own single leaf.  Each uncached leaf applies its own mapping in
// representation (serialization) order; cached leaves are skipped, so a
// message mixing delivered and undelivered leaves — an original overtaken by
// a partial retransmit, or vice versa — still executes every operation
// exactly once.
func (m *Module) execCachedLocked(req core.Request) core.Reply {
	leaves := req.Reps
	if leaves == nil {
		leaves = []core.Leaf{{ID: req.ID, Src: 0, Op: req.Op}}
	}
	cell := m.cells[req.Addr]
	vals := make(map[word.ReqID]word.Word, len(leaves))
	for _, lf := range leaves {
		if v, ok := m.cacheGetLocked(lf.ID); ok {
			m.DedupHits++
			vals[lf.ID] = v
			continue
		}
		old := cell
		cell = lf.Op.Apply(old)
		m.cachePutLocked(lf.ID, old)
		vals[lf.ID] = old
	}
	if m.ckpt {
		if _, logged := m.undo[req.Addr]; !logged {
			m.undo[req.Addr] = m.cells[req.Addr]
		}
	}
	m.cells[req.Addr] = cell
	m.Served++
	return core.Reply{ID: req.ID, Val: vals[req.ID], Attempt: req.Attempt, Leaves: vals}
}

// cacheGetLocked consults the exactly-once ledger: the uncommitted delta
// first, then the committed cache.
func (m *Module) cacheGetLocked(id word.ReqID) (word.Word, bool) {
	if m.canaryNoDedup {
		return word.Word{}, false
	}
	if m.ckpt {
		if v, ok := m.delta[id]; ok {
			return v, true
		}
	}
	v, ok := m.replyCache[id]
	return v, ok
}

// cachePutLocked records a fresh leaf execution — uncommitted until the
// next checkpoint when in checkpoint mode.
func (m *Module) cachePutLocked(id word.ReqID, v word.Word) {
	if m.ckpt {
		m.delta[id] = v
		return
	}
	m.replyCache[id] = v
}

// DedupHitCount returns the reply-cache hit count under the module lock,
// safe to read while direct-mode traffic is still executing.
func (m *Module) DedupHitCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.DedupHits
}

// Enqueue appends a request to the module's FIFO (cycle-driven mode).  On a
// bounded module the caller must check CanEnqueue first and hold the request
// upstream when it reports false; overflowing a bounded queue is an engine
// bug and panics.
func (m *Module) Enqueue(req core.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if m.queueCap > 0 && m.queueLenLocked() >= m.queueCap {
		panic("memory: Enqueue on a full bounded module (caller must check CanEnqueue)")
	}
	m.queue = append(m.queue, req)
	if n := m.queueLenLocked(); n > m.maxQueue {
		m.maxQueue = n
	}
}

// CanEnqueue reports whether the module has room for one more request.
func (m *Module) CanEnqueue() bool {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.queueCap <= 0 || m.queueLenLocked() < m.queueCap
}

// QueueCap returns the configured input-queue bound (0 when unbounded).
func (m *Module) QueueCap() int { return m.queueCap }

// MaxQueue returns the input-queue high-water mark (including the request
// in service).
func (m *Module) MaxQueue() int {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.maxQueue
}

func (m *Module) queueLenLocked() int {
	n := len(m.queue)
	if m.busy > 0 {
		n++
	}
	return n
}

// QueueLen reports pending requests, including the one in service.
func (m *Module) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()

	return m.queueLenLocked()
}

// Tick advances the module one cycle.  It returns a completed reply, if
// any, and ok reporting whether a reply was produced this cycle.  With
// service time s, a request completes s cycles after it starts service.
func (m *Module) Tick() (core.Reply, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if !m.ckpt {
		return m.serviceLocked()
	}
	// Checkpoint mode: service continues (completed replies join held),
	// while at most one previously committed reply drains per Tick — the
	// output-commit gate adds latency but preserves the engines'
	// one-reply-per-module-per-cycle contract and steady-state rate.
	if rep, ok := m.serviceLocked(); ok {
		m.held = append(m.held, rep)
	}
	if len(m.releasable) == 0 {
		return core.Reply{}, false
	}
	rep := m.releasable[0]
	copy(m.releasable, m.releasable[1:])
	m.releasable = m.releasable[:len(m.releasable)-1]
	return rep, true
}

// serviceLocked advances the service pipeline one cycle.
func (m *Module) serviceLocked() (core.Reply, bool) {
	if m.busy == 0 {
		if len(m.queue) == 0 {
			return core.Reply{}, false
		}
		m.current = m.queue[0]
		copy(m.queue, m.queue[1:])
		m.queue = m.queue[:len(m.queue)-1]
		m.busy = m.serviceTime
	}
	m.BusyCycles++
	m.busy--
	if m.busy > 0 {
		return core.Reply{}, false
	}
	return m.execLocked(m.current), true
}

// Checkpoint commits the module's recovery image: leaves executed since the
// last checkpoint join the committed cache, the undo log clears, and held
// replies become releasable.  Engines call it every Plan.CheckpointEvery
// cycles; the cost is O(changes since the last checkpoint).
func (m *Module) Checkpoint() {
	m.mu.Lock()
	defer m.mu.Unlock()

	if !m.ckpt {
		return
	}
	for id, v := range m.delta {
		m.replyCache[id] = v
	}
	clear(m.delta)
	clear(m.undo)
	m.releasable = append(m.releasable, m.held...)
	m.held = m.held[:0]
}

// Crash loses the module's volatile state and rolls persistent state back
// to the last checkpoint: cells revert via the undo log, uncommitted cache
// entries vanish (those operations will re-execute on retransmit), and the
// input queue, in-service request, and withheld replies are flushed.  It
// returns the leaf request ids whose messages were lost — the recovery
// layer tracks them and counts the ones the retry machinery later
// re-drives to completion.  Committed cache entries survive, so leaves of
// flushed-but-committed replies are answered from the cache on retransmit.
func (m *Module) Crash() []word.ReqID {
	m.mu.Lock()
	defer m.mu.Unlock()

	if !m.ckpt {
		return nil
	}
	lost := make(map[word.ReqID]struct{})
	for id := range m.delta {
		lost[id] = struct{}{}
	}
	addReq := func(req core.Request) {
		if req.Reps == nil {
			lost[req.ID] = struct{}{}
			return
		}
		for _, lf := range req.Reps {
			lost[lf.ID] = struct{}{}
		}
	}
	for _, req := range m.queue {
		addReq(req)
	}
	if m.busy > 0 {
		addReq(m.current)
	}
	addRep := func(rep core.Reply) {
		if rep.Leaves == nil {
			lost[rep.ID] = struct{}{}
			return
		}
		for id := range rep.Leaves {
			lost[id] = struct{}{}
		}
	}
	for _, rep := range m.held {
		addRep(rep)
	}
	for _, rep := range m.releasable {
		addRep(rep)
	}
	for addr, w := range m.undo {
		m.cells[addr] = w
	}
	clear(m.undo)
	clear(m.delta)
	m.queue = m.queue[:0]
	m.busy = 0
	m.current = core.Request{}
	m.held = m.held[:0]
	m.releasable = m.releasable[:0]

	ids := make([]word.ReqID, 0, len(lost))
	for id := range lost {
		ids = append(ids, id)
	}
	return ids
}

// PendingReplies reports withheld plus releasable replies (checkpoint
// mode) — in-flight work the engines fold into their InFlight gauge so
// drain loops and the watchdog see output-committed replies coming.
func (m *Module) PendingReplies() int {
	m.mu.Lock()
	defer m.mu.Unlock()

	return len(m.held) + len(m.releasable)
}
