package memory

import (
	"sync"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

func req(id word.ReqID, addr word.Addr, op rmw.Mapping) core.Request {
	return core.NewRequest(id, addr, op, word.ProcID(id))
}

func TestModuleDo(t *testing.T) {
	m := NewModule()
	r1 := m.Do(req(1, 10, rmw.FetchAdd(5)))
	if r1.Val.Val != 0 {
		t.Errorf("first reply = %v, want 0", r1.Val)
	}
	r2 := m.Do(req(2, 10, rmw.FetchAdd(3)))
	if r2.Val.Val != 5 {
		t.Errorf("second reply = %v, want 5", r2.Val)
	}
	if got := m.Peek(10).Val; got != 8 {
		t.Errorf("cell = %d, want 8", got)
	}
	if m.Served != 2 {
		t.Errorf("Served = %d, want 2", m.Served)
	}
}

func TestModuleFIFOOrder(t *testing.T) {
	m := NewModule()
	// Three requests to one location: the replies must reflect arrival
	// order (condition M2).
	for i := 0; i < 3; i++ {
		m.Enqueue(req(word.ReqID(i+1), 7, rmw.FetchAdd(10)))
	}
	var replies []core.Reply
	for cycle := 0; cycle < 10; cycle++ {
		if rep, ok := m.Tick(); ok {
			replies = append(replies, rep)
		}
	}
	if len(replies) != 3 {
		t.Fatalf("got %d replies, want 3", len(replies))
	}
	for i, rep := range replies {
		if rep.ID != word.ReqID(i+1) {
			t.Errorf("reply %d has id %d, want %d (FIFO)", i, rep.ID, i+1)
		}
		if rep.Val.Val != int64(10*i) {
			t.Errorf("reply %d = %v, want %d", i, rep.Val, 10*i)
		}
	}
}

func TestModuleServiceTime(t *testing.T) {
	m := NewModule(WithServiceTime(3))
	m.Enqueue(req(1, 0, rmw.Load{}))
	m.Enqueue(req(2, 0, rmw.Load{}))
	var done []int
	for cycle := 1; cycle <= 8; cycle++ {
		if _, ok := m.Tick(); ok {
			done = append(done, cycle)
		}
	}
	if len(done) != 2 || done[0] != 3 || done[1] != 6 {
		t.Fatalf("completions at cycles %v, want [3 6]", done)
	}
	if m.BusyCycles != 6 {
		t.Errorf("BusyCycles = %d, want 6", m.BusyCycles)
	}
}

func TestModuleConcurrentDo(t *testing.T) {
	// The module is a monitor: concurrent fetch-and-adds must all be
	// atomic, so the final value is exact and replies are distinct.
	m := NewModule()
	const n = 64
	var wg sync.WaitGroup
	replies := make([]core.Reply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replies[i] = m.Do(req(word.ReqID(i+1), 3, rmw.FetchAdd(1)))
		}()
	}
	wg.Wait()
	if got := m.Peek(3).Val; got != n {
		t.Fatalf("cell = %d, want %d", got, n)
	}
	seen := make(map[int64]bool, n)
	for _, rep := range replies {
		if seen[rep.Val.Val] {
			t.Fatalf("duplicate fetch-and-add reply %d", rep.Val.Val)
		}
		seen[rep.Val.Val] = true
	}
}

func TestArrayInterleaving(t *testing.T) {
	a := NewArray(4)
	for addr := word.Addr(0); addr < 16; addr++ {
		a.Do(req(word.ReqID(addr+1), addr, rmw.StoreOf(int64(addr*100))))
	}
	for addr := word.Addr(0); addr < 16; addr++ {
		if got := a.Peek(addr).Val; got != int64(addr*100) {
			t.Errorf("cell %d = %d, want %d", addr, got, addr*100)
		}
	}
	// Uniform addresses spread evenly across modules.
	for i := 0; i < 4; i++ {
		if got := a.Module(i).Served; got != 4 {
			t.Errorf("module %d served %d, want 4", i, got)
		}
	}
	if a.TotalServed() != 16 {
		t.Errorf("TotalServed = %d, want 16", a.TotalServed())
	}
	if a.HomeOf(5) != 1 || a.HomeOf(8) != 0 {
		t.Error("HomeOf must be low-order interleaving")
	}
}

// TestQueueCombineCount verifies the |i − j| + 1 message count of
// Section 5.5 across a sweep of load/store mixes.
func TestQueueCombineCount(t *testing.T) {
	for i := 0; i <= 6; i++ { // loads
		for j := 0; j <= 6; j++ { // stores
			var ops []QOp
			id := word.ReqID(1)
			for k := 0; k < i; k++ {
				ops = append(ops, QOp{Kind: QLoad, ID: id})
				id++
			}
			for k := 0; k < j; k++ {
				ops = append(ops, QOp{Kind: QStore, ID: id, V: int64(100 + k)})
				id++
			}
			msgs := CombineQueue(ops)
			want := abs(i-j) + 1
			if i == 0 && j == 0 {
				want = 0
			} else if i == 0 || j == 0 {
				want = max(i, j) // nothing pairs
			}
			if len(msgs) != want {
				t.Errorf("i=%d j=%d: %d messages, want %d", i, j, len(msgs), want)
			}
		}
	}
}

// TestQueueCombineSemantics checks that the fused chain behaves like the
// serial execution of its pairs: each consumer receives its producer's
// value and the cell ends empty.
func TestQueueCombineSemantics(t *testing.T) {
	ops := []QOp{
		{Kind: QLoad, ID: 1},
		{Kind: QStore, ID: 2, V: 10},
		{Kind: QLoad, ID: 3},
		{Kind: QStore, ID: 4, V: 20},
	}
	msgs := CombineQueue(ops)
	if len(msgs) != 1 {
		t.Fatalf("%d messages, want 1 fused chain", len(msgs))
	}
	chain := msgs[0]
	if len(chain.Ops) != 4 {
		t.Fatalf("chain represents %d ops, want 4", len(chain.Ops))
	}
	// Execute serially per the chain order and via the fused mapping;
	// both from an empty cell.
	cell := word.WT(0, word.Empty)
	serial := cell
	consumerGot := make(map[word.ReqID]int64)
	for _, op := range chain.Ops {
		old := serial
		serial = op.Mapping().Apply(serial)
		if op.Kind == QLoad {
			consumerGot[op.ID] = old.Val
		}
	}
	fused := chain.Combined.Apply(cell)
	if fused != serial {
		t.Fatalf("fused effect %v != serial effect %v", fused, serial)
	}
	if serial.Tag != word.Empty {
		t.Errorf("cell ends %v, want empty", serial.Tag)
	}
	// Consumers 1 and 3 must have received 10 and 20 in chain order.
	if consumerGot[1] != 10 || consumerGot[3] != 20 {
		t.Errorf("consumers got %v, want 1→10, 3→20", consumerGot)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestModuleBoundedQueue(t *testing.T) {
	m := NewModule(WithQueueCap(2))
	if m.QueueCap() != 2 {
		t.Fatalf("QueueCap = %d, want 2", m.QueueCap())
	}
	if !m.CanEnqueue() {
		t.Fatal("empty bounded module refuses Enqueue")
	}
	m.Enqueue(req(1, 0, rmw.FetchAdd(1)))
	m.Enqueue(req(2, 0, rmw.FetchAdd(1)))
	if m.CanEnqueue() {
		t.Fatal("full bounded module accepts Enqueue")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Enqueue past the bound did not panic")
			}
		}()
		m.Enqueue(req(3, 0, rmw.FetchAdd(1)))
	}()
	// Service time 1: the first Tick completes request 1 (its slot counts
	// while in service, so the module stays full until the reply departs).
	if _, ok := m.Tick(); !ok {
		t.Fatal("no reply on first Tick")
	}
	if !m.CanEnqueue() {
		t.Fatal("module still full after a completion")
	}
	if m.MaxQueue() != 2 {
		t.Fatalf("MaxQueue = %d, want 2", m.MaxQueue())
	}
}

func TestModuleUnboundedQueueByDefault(t *testing.T) {
	m := NewModule()
	for i := 0; i < 100; i++ {
		if !m.CanEnqueue() {
			t.Fatal("unbounded module refused Enqueue")
		}
		m.Enqueue(req(word.ReqID(i), 0, rmw.FetchAdd(1)))
	}
	if m.MaxQueue() != 100 {
		t.Fatalf("MaxQueue = %d, want 100", m.MaxQueue())
	}
}

func TestArrayMaxQueueDepth(t *testing.T) {
	a := NewArray(2)
	a.Module(0).Enqueue(req(1, 0, rmw.FetchAdd(1)))
	a.Module(0).Enqueue(req(2, 0, rmw.FetchAdd(1)))
	a.Module(1).Enqueue(req(3, 1, rmw.FetchAdd(1)))
	if got := a.MaxQueueDepth(); got != 2 {
		t.Fatalf("MaxQueueDepth = %d, want 2", got)
	}
}
