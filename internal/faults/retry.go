package faults

import (
	"sort"

	"combining/internal/core"
	"combining/internal/stats"
	"combining/internal/word"
)

// Pending is one original request the processor side is responsible for
// until its reply is delivered exactly once.  The cycle-driven engines keep
// one Pending per issued request in a Tracker; when the deadline passes the
// engine re-injects the request with the next attempt number.
type Pending struct {
	// Proc is the issuing processor port.
	Proc int
	// Req is the request as issued (Attempt is bumped per retransmit;
	// the id never changes, which is what lets the memory-side reply
	// cache deduplicate).
	Req core.Request
	// Hot tags hot-spot traffic for the per-class metrics.
	Hot bool
	// IssueCycle is the first injection cycle; recovery latency is
	// measured from here, not from the last retransmit.
	IssueCycle int64
	// Deadline is the cycle at which the current attempt times out.
	Deadline int64
}

// Tracker is the processor-side exactly-once delivery ledger for one
// cycle-driven engine: every issued request is tracked until its first
// reply, retransmitted with capped exponential backoff while it waits, and
// any later (duplicate) reply is suppressed.
type Tracker struct {
	flt  *Injector
	live map[word.ReqID]*Pending
	// liveAddr counts live requests per (proc, addr).  Engines hold a
	// fresh request at its port while an earlier request by the same
	// processor to the same address is undelivered (see HeldBack):
	// without that MSHR-style discipline a drop can reorder a
	// processor's own accesses to a location — the retransmit of the
	// earlier request executes after the later one — violating M2's
	// per-processor program order.
	liveAddr map[addrKey]int

	// Retries counts retransmissions; Duplicates counts replies
	// suppressed because the request had already been delivered;
	// Recovered counts deliveries that needed at least one retransmit.
	Retries    stats.Counter
	Duplicates stats.Counter
	Recovered  stats.Counter
	// RecoveryLatency records round-trip cycles for recovered (retried)
	// deliveries only — the fault-plan degradation metric.
	RecoveryLatency stats.Histogram
}

type addrKey struct {
	proc int
	addr word.Addr
}

// NewTracker builds the ledger against an injector's retry parameters.
func NewTracker(flt *Injector) *Tracker {
	return &Tracker{
		flt:      flt,
		live:     make(map[word.ReqID]*Pending),
		liveAddr: make(map[addrKey]int),
	}
}

// Track registers a freshly injected request (attempt 0).
func (t *Tracker) Track(proc int, req core.Request, hot bool, now int64) {
	t.live[req.ID] = &Pending{
		Proc:       proc,
		Req:        req,
		Hot:        hot,
		IssueCycle: now,
		Deadline:   now + t.flt.Timeout(1),
	}
	t.liveAddr[addrKey{proc, req.Addr}]++
}

// HeldBack reports whether the processor's newest (already tracked) request
// to addr must wait at the port: an earlier request by the same processor to
// the same address is still undelivered.
func (t *Tracker) HeldBack(proc int, addr word.Addr) bool {
	return t.liveAddr[addrKey{proc, addr}] > 1
}

// Deliver marks a reply's arrival at its processor port.  ok=false means
// the request was already delivered (or never tracked): the reply is a
// duplicate the port must suppress, counted here.
func (t *Tracker) Deliver(id word.ReqID, now int64) (Pending, bool) {
	p, ok := t.live[id]
	if !ok {
		t.Duplicates.Inc()
		return Pending{}, false
	}
	delete(t.live, id)
	k := addrKey{p.Proc, p.Req.Addr}
	if t.liveAddr[k]--; t.liveAddr[k] == 0 {
		delete(t.liveAddr, k)
	}
	if p.Req.Attempt > 0 {
		t.Recovered.Inc()
		t.RecoveryLatency.Record(now - p.IssueCycle)
	}
	return *p, true
}

// Expired collects the requests whose deadline passed, bumping each to its
// next attempt with backed-off deadline.  The engine re-injects the
// returned requests (they carry Attempt > 0 and therefore never combine).
// The result is sorted by (proc, id) so a run replays identically: map
// iteration order must never leak into the simulation.
func (t *Tracker) Expired(now int64) []Pending {
	var out []Pending
	for _, p := range t.live {
		if now < p.Deadline {
			continue
		}
		if !t.oldestLive(p) {
			// An earlier request by this processor to the same address is
			// still live; a copy of this one may not re-enter the network
			// ahead of it (the HeldBack discipline).  Defer and recheck.
			p.Deadline = now + t.flt.Timeout(1)
			continue
		}
		p.Req.Attempt++
		p.Deadline = now + t.flt.Timeout(p.Req.Attempt+1)
		t.Retries.Inc()
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Req.ID < out[j].Req.ID
	})
	return out
}

// oldestLive reports whether p is the oldest live request for its
// (proc, addr).  Per-processor ids are issued in increasing order, so the
// smallest live id is the earliest-issued; the scan is over the (small)
// live set and only runs when an address has multiple live requests.
func (t *Tracker) oldestLive(p *Pending) bool {
	if t.liveAddr[addrKey{p.Proc, p.Req.Addr}] < 2 {
		return true
	}
	for _, q := range t.live {
		if q != p && q.Proc == p.Proc && q.Req.Addr == p.Req.Addr && q.Req.ID < p.Req.ID {
			return false
		}
	}
	return true
}

// Outstanding reports requests still awaiting their first delivery.  A nil
// tracker (clean run, no fault plan) has none.
func (t *Tracker) Outstanding() int {
	if t == nil {
		return 0
	}
	return len(t.live)
}

// Live reports whether one request is still awaiting its first delivery.
// The recovery ledger filters crash-flushed ids through it: a flushed copy
// of an already-delivered request (a retransmit the original outraced) is
// redundant state, not lost work.
func (t *Tracker) Live(id word.ReqID) bool {
	if t == nil {
		return false
	}
	_, ok := t.live[id]
	return ok
}
