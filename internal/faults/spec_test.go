package faults

import (
	"reflect"
	"strings"
	"testing"
)

// TestPlanSpecRoundTrip pins that EncodePlan and ParsePlan invert exactly
// on the plans that actually travel as specs: the canned adversarial
// plan, a generated crash schedule, and a hand-built plan exercising
// every field including windows and the canary.
func TestPlanSpecRoundTrip(t *testing.T) {
	full := &Plan{
		Seed: 99, DropFwd: 0.01, DropRev: 0.002,
		Reorder: 0.05, ReorderMax: 8, Dup: 0.02, Corrupt: 0.015,
		Canary: "nodedup", RetryTimeout: 256, RetryCap: 12, CheckpointEvery: 64,
		Stalls:      []Window{{Stage: -1, Index: 2, From: 100, To: 180}},
		MemStalls:   []Window{{Stage: -1, Index: 0, From: 40, To: 90}, {Stage: -1, Index: 3, From: 500, To: 560}},
		Crashes:     []Window{{Stage: 0, Index: 1, From: 200, To: 300}},
		MemCrashes:  []Window{{Stage: -1, Index: 1, From: 700, To: 790}},
		LinkCrashes: []Window{{Stage: 1, Index: 0, From: 1000, To: 1100}},
	}
	for name, p := range map[string]*Plan{
		"zero":        {},
		"adversarial": DefaultAdversarial(7),
		"crash":       GenCrashPlan(13, 2, 4000, 80),
		"full":        full,
	} {
		spec := EncodePlan(p)
		back, err := ParsePlan(spec)
		if err != nil {
			t.Errorf("%s: ParsePlan(%q): %v", name, spec, err)
			continue
		}
		if !reflect.DeepEqual(p, back) {
			t.Errorf("%s: round trip changed the plan\nspec: %s\nin:   %+v\nout:  %+v", name, spec, p, back)
		}
	}
}

// TestPlanSpecOmitsZeroFields pins the compactness contract: zero-valued
// fields never appear, so shrunk reproducers shrink textually too.
func TestPlanSpecOmitsZeroFields(t *testing.T) {
	spec := EncodePlan(&Plan{Seed: 5, Dup: 0.02})
	if spec != "seed=5,dup=0.02" {
		t.Errorf("spec %q, want \"seed=5,dup=0.02\"", spec)
	}
}

// TestParsePlanErrors pins the one-line rejection of malformed specs —
// these are the messages a user sees when a hand-edited reproducer goes
// wrong, so each failure mode must name the offending entry.
func TestParsePlanErrors(t *testing.T) {
	for spec, wantSubstr := range map[string]string{
		"":                         "empty plan spec",
		"   ":                      "empty plan spec",
		"seed":                     "not key=value",
		"seed=5,bogus=1":           "unknown plan spec key",
		"dup=1.5":                  "probability outside [0, 1)",
		"corrupt=-0.1":             "probability outside [0, 1)",
		"reorder=abc":              "reorder",
		"retry=-5":                 "must be >= 0",
		"stalls=1:2:3":             "not stage:index:from:to",
		"crashes=1:2:three:4":      "non-numeric",
		"stalls=-1:0:200:100":      "ends before it starts",
		"seed=1,stalls=0:0:5:9+xx": "not stage:index:from:to",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed spec", spec)
		} else if !strings.Contains(err.Error(), wantSubstr) {
			t.Errorf("ParsePlan(%q) error %q, want mention of %q", spec, err, wantSubstr)
		}
	}
}
