package faults

import "combining/internal/stats"

// AddCounters folds one run's fault/recovery counters into an engine
// snapshot.  Every engine publishes the same key set so tooling (cmd/check,
// the bench reports) reads one schema regardless of transport.
func AddCounters(snap *stats.Snapshot, flt *Injector, trk *Tracker, dedupHits, orphans int64) {
	c := snap.Counters
	c["faults_injected"] = flt.Injected()
	c["drops_fwd"] = flt.DropsFwd.Load()
	c["drops_rev"] = flt.DropsRev.Load()
	c["stall_cycles"] = flt.StallCycles.Load()
	c["mem_stall_cycles"] = flt.MemStallCycles.Load()
	c["retries"] = trk.Retries.Load()
	c["duplicates_suppressed"] = trk.Duplicates.Load()
	c["recovered"] = trk.Recovered.Load()
	c["dedup_hits"] = dedupHits
	c["orphan_replies"] = orphans
	if snap.Histograms == nil {
		snap.Histograms = map[string]stats.HistogramSnapshot{}
	}
	snap.Histograms["recovery_latency_cycles"] = trk.RecoveryLatency.Snapshot()
}
