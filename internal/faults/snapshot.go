package faults

import "combining/internal/stats"

// Values is the fault/recovery counter block shared by every engine's
// snapshot: one value per key of the schema AddValues writes.  The cycle
// engines fill it from an Injector/Tracker pair via AddCounters; the
// clockless asyncnet engine fills it from its own atomics (stall windows
// are cycle-based and structurally zero there).
type Values struct {
	Injected       int64
	DropsFwd       int64
	DropsRev       int64
	StallCycles    int64
	MemStallCycles int64
	Retries        int64
	Duplicates     int64
	Recovered      int64
	DedupHits      int64
	Orphans        int64

	// Adversarial-delivery block.  Structurally zero on the clockless
	// asyncnet engine, whose limbo/dup/corrupt machinery is cycle-based
	// like its stall windows.
	ReorderedHeld  int64
	DupInjected    int64
	CorruptDropped int64

	// Crash–restart block (internal/recover).  Structurally zero on
	// engines without crash domains (the clockless asyncnet, whose crash
	// windows are cycle-based like its stall windows).
	Crashes      int64
	Restores     int64
	Replayed     int64
	LostInFlight int64
	CrashCycles  int64
}

// AddValues writes the shared fault-counter schema into a snapshot.  Every
// engine publishes the same key set so tooling (cmd/check, the bench
// reports) reads one schema regardless of transport.
func AddValues(snap *stats.Snapshot, v Values) {
	c := snap.Counters
	c["faults_injected"] = v.Injected
	c["drops_fwd"] = v.DropsFwd
	c["drops_rev"] = v.DropsRev
	c["stall_cycles"] = v.StallCycles
	c["mem_stall_cycles"] = v.MemStallCycles
	c["retries"] = v.Retries
	c["duplicates_suppressed"] = v.Duplicates
	c["recovered"] = v.Recovered
	c["dedup_hits"] = v.DedupHits
	c["orphan_replies"] = v.Orphans
	c["reordered_held"] = v.ReorderedHeld
	c["dup_injected"] = v.DupInjected
	c["corrupt_dropped"] = v.CorruptDropped
	c["crashes"] = v.Crashes
	c["restores"] = v.Restores
	c["replayed_requests"] = v.Replayed
	c["lost_in_flight"] = v.LostInFlight
	c["crash_cycles"] = v.CrashCycles
}

// CounterKeys lists the keys AddValues writes, sorted — the fault half of
// the snapshot-schema parity contract.
func CounterKeys() []string {
	return []string{
		"corrupt_dropped", "crash_cycles", "crashes", "dedup_hits",
		"drops_fwd", "drops_rev", "dup_injected", "duplicates_suppressed",
		"faults_injected", "lost_in_flight", "mem_stall_cycles",
		"orphan_replies", "recovered", "reordered_held",
		"replayed_requests", "restores", "retries", "stall_cycles",
	}
}

// Recovery is the crash–restart counter block a recover.Manager publishes;
// the zero value is the clean-run block.
type Recovery struct {
	// Crashes counts crash transitions (components entering a window);
	// Restores counts rejoin transitions.
	Crashes, Restores int64
	// Replayed counts lost in-flight operations later re-driven to
	// completion by the retry machinery; LostInFlight counts operations
	// flushed from crashed queues, wait buffers, and rolled-back state.
	Replayed, LostInFlight int64
}

// AddCounters folds one run's fault/recovery counters into an engine
// snapshot from the cycle engines' injector and tracker, plus the
// cycle-denominated recovery-latency histogram.
func AddCounters(snap *stats.Snapshot, flt *Injector, trk *Tracker, dedupHits, orphans int64, rec Recovery) {
	AddValues(snap, Values{
		Injected:       flt.Injected(),
		DropsFwd:       flt.DropsFwd.Load(),
		DropsRev:       flt.DropsRev.Load(),
		StallCycles:    flt.StallCycles.Load(),
		MemStallCycles: flt.MemStallCycles.Load(),
		Retries:        trk.Retries.Load(),
		Duplicates:     trk.Duplicates.Load(),
		Recovered:      trk.Recovered.Load(),
		DedupHits:      dedupHits,
		Orphans:        orphans,
		ReorderedHeld:  flt.ReorderedHeld.Load(),
		DupInjected:    flt.DupInjected.Load(),
		CorruptDropped: flt.CorruptDropped.Load(),
		Crashes:        rec.Crashes,
		Restores:       rec.Restores,
		Replayed:       rec.Replayed,
		LostInFlight:   rec.LostInFlight,
		CrashCycles:    flt.CrashCycles.Load(),
	})
	if snap.Histograms == nil {
		snap.Histograms = map[string]stats.HistogramSnapshot{}
	}
	snap.Histograms["recovery_latency_cycles"] = trk.RecoveryLatency.Snapshot()
}
