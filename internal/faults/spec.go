package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Plan spec strings: a compact, command-line-safe rendering of a Plan that
// EncodePlan and ParsePlan invert exactly.  The chaos fuzzer emits its
// shrunk reproducers in this form ("go run ./cmd/replay -chaos ...
// -plan <spec>"), and cmd/replay / cmd/combsim accept it back, so a failing
// plan travels as one shell word.
//
// Format: comma-joined key=value pairs; window lists are '+'-joined
// stage:index:from:to quadruples.  Zero-valued fields are omitted.
//
//	seed=7,dropfwd=0.01,reorder=0.02,reordermax=8,stalls=-1:0:50:120
//
// Keys: seed, dropfwd, droprev, reorder, reordermax, dup, corrupt, canary,
// retry, retrycap, ckpt, stalls, memstalls, crashes, memcrashes,
// linkcrashes.

// EncodePlan renders the plan as a spec string ParsePlan inverts.
func EncodePlan(p *Plan) string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	add("seed", strconv.FormatUint(p.Seed, 10))
	if p.DropFwd != 0 {
		add("dropfwd", f(p.DropFwd))
	}
	if p.DropRev != 0 {
		add("droprev", f(p.DropRev))
	}
	if p.Reorder != 0 {
		add("reorder", f(p.Reorder))
	}
	if p.ReorderMax != 0 {
		add("reordermax", strconv.FormatInt(p.ReorderMax, 10))
	}
	if p.Dup != 0 {
		add("dup", f(p.Dup))
	}
	if p.Corrupt != 0 {
		add("corrupt", f(p.Corrupt))
	}
	if p.Canary != "" {
		add("canary", p.Canary)
	}
	if p.RetryTimeout != 0 {
		add("retry", strconv.FormatInt(p.RetryTimeout, 10))
	}
	if p.RetryCap != 0 {
		add("retrycap", strconv.FormatInt(p.RetryCap, 10))
	}
	if p.CheckpointEvery != 0 {
		add("ckpt", strconv.FormatInt(p.CheckpointEvery, 10))
	}
	ws := func(k string, ws []Window) {
		if len(ws) == 0 {
			return
		}
		strs := make([]string, len(ws))
		for i, w := range ws {
			strs[i] = fmt.Sprintf("%d:%d:%d:%d", w.Stage, w.Index, w.From, w.To)
		}
		add(k, strings.Join(strs, "+"))
	}
	ws("stalls", p.Stalls)
	ws("memstalls", p.MemStalls)
	ws("crashes", p.Crashes)
	ws("memcrashes", p.MemCrashes)
	ws("linkcrashes", p.LinkCrashes)
	return strings.Join(parts, ",")
}

// ParsePlan parses a spec string produced by EncodePlan (or written by
// hand), rejecting unknown keys and malformed values with a one-line error.
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("faults: empty plan spec")
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faults: plan spec entry %q is not key=value", part)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "dropfwd":
			p.DropFwd, err = parseProb(v)
		case "droprev":
			p.DropRev, err = parseProb(v)
		case "reorder":
			p.Reorder, err = parseProb(v)
		case "reordermax":
			p.ReorderMax, err = parseNonNeg(v)
		case "dup":
			p.Dup, err = parseProb(v)
		case "corrupt":
			p.Corrupt, err = parseProb(v)
		case "canary":
			p.Canary = v
		case "retry":
			p.RetryTimeout, err = parseNonNeg(v)
		case "retrycap":
			p.RetryCap, err = parseNonNeg(v)
		case "ckpt":
			p.CheckpointEvery, err = parseNonNeg(v)
		case "stalls":
			p.Stalls, err = parseWindows(v)
		case "memstalls":
			p.MemStalls, err = parseWindows(v)
		case "crashes":
			p.Crashes, err = parseWindows(v)
		case "memcrashes":
			p.MemCrashes, err = parseWindows(v)
		case "linkcrashes":
			p.LinkCrashes, err = parseWindows(v)
		default:
			return nil, fmt.Errorf("faults: unknown plan spec key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: plan spec %s=%q: %v", k, v, err)
		}
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f >= 1 {
		return 0, fmt.Errorf("probability outside [0, 1)")
	}
	return f, nil
}

func parseNonNeg(v string) (int64, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("must be >= 0")
	}
	return n, nil
}

func parseWindows(v string) ([]Window, error) {
	var out []Window
	for _, ws := range strings.Split(v, "+") {
		fields := strings.Split(ws, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("window %q is not stage:index:from:to", ws)
		}
		stage, err1 := strconv.Atoi(fields[0])
		index, err2 := strconv.Atoi(fields[1])
		from, err3 := strconv.ParseInt(fields[2], 10, 64)
		to, err4 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("window %q has a non-numeric field", ws)
		}
		if to < from {
			return nil, fmt.Errorf("window %q ends before it starts", ws)
		}
		out = append(out, Window{Stage: stage, Index: index, From: from, To: to})
	}
	return out, nil
}
