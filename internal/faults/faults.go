// Package faults is the deterministic fault-plan engine shared by all four
// combining engines.  A Plan describes what goes wrong — link drops on the
// forward network, reply loss on the reverse network, switch stall/blackout
// windows, memory-module slowdowns — and an Injector answers, for any
// concrete event, whether the fault fires.
//
// Every decision is a pure hash of (plan seed, fault kind, site, request id,
// attempt): the same plan produces the same faults on the cycle-driven
// engines regardless of unrelated configuration, and on the goroutine engine
// regardless of scheduling — a failing run replays from its seed alone.
// Theorem 4.2 makes combining transparent on a healthy network; this package
// supplies the unhealthy ones, so the recovery layer (sequence-numbered
// retransmits, memory-side reply caches — see internal/memory and the engine
// packages) can be shown to preserve per-location serializability and
// exactly-once RMW semantics under every plan.
package faults

import (
	"fmt"

	"combining/internal/stats"
	"combining/internal/word"
)

// Window is a half-open cycle interval [From, To) during which a fault
// condition holds at a site.  Stage and Index select the site; -1 is a
// wildcard.  The cycle-driven engines interpret (Stage, Index) as (network
// stage, switch index); the hypercube uses Index as the node and the bus
// machine has a single site (0, 0).
type Window struct {
	Stage, Index int
	From, To     int64
}

// matches reports whether the window covers the site at the cycle.
func (w Window) matches(stage, index int, cycle int64) bool {
	return (w.Stage == -1 || w.Stage == stage) &&
		(w.Index == -1 || w.Index == index) &&
		cycle >= w.From && cycle < w.To
}

// Plan is one deterministic fault scenario.  The zero Plan (with a seed)
// injects nothing but still enables the recovery machinery, which is useful
// for overhead measurements.
type Plan struct {
	// Seed keys every probabilistic decision.  Two runs with equal plans
	// see identical faults.
	Seed uint64

	// DropFwd is the probability a request hop on a forward link is
	// dropped (the message vanishes; the issuer must retransmit).
	DropFwd float64
	// DropRev is the probability a reply hop on the reverse network is
	// dropped (the operation executed, its reply is lost — the case the
	// reply cache exists for).
	DropRev float64

	// Stalls are switch stall/blackout windows: a stalled switch moves no
	// traffic in either direction (it still latches arrivals).
	Stalls []Window
	// MemStalls are memory-module slowdown windows, keyed by Index =
	// module; a stalled module serves nothing that cycle.
	MemStalls []Window

	// Crashes are switch crash–restart windows: on entry the switch loses
	// its queues and wait buffers (in-flight combined trees are flushed and
	// must be re-driven by retransmits), stays dead for the window, and
	// rejoins empty when it closes.  Site semantics match Stalls.
	Crashes []Window
	// MemCrashes are memory-module crash–restart windows, keyed by Index =
	// module.  A crashing module rolls back to its last checkpoint: cells
	// and reply-cache entries newer than the checkpoint are lost, and the
	// exactly-once retry machinery re-drives the lost operations.
	MemCrashes []Window
	// LinkCrashes are link-down windows keyed by (Stage, Index) = the
	// forward-hop site of the link.  Messages traversing a dead link are
	// dropped (counted as drops_fwd/drops_rev) for the whole window — a
	// deterministic burst-loss fault, unlike the Bernoulli DropFwd/DropRev.
	LinkCrashes []Window

	// CheckpointEvery is the checkpoint period K in cycles for modules run
	// with checkpointing (internal/recover).  0 defaults to 64 when the
	// plan has crash windows; irrelevant otherwise.
	CheckpointEvery int64

	// Reorder is the probability a terminal-link hop's delivery is
	// deferred past traffic that left the same link later (relaxing
	// per-link FIFO): the engine parks the message in its limbo buffer
	// for a hash-drawn delay in [1, ReorderMax] cycles and re-delivers it
	// then.
	Reorder float64
	// ReorderMax bounds the reorder deferral in cycles; 0 defaults to 8
	// when Reorder > 0.
	ReorderMax int64
	// Dup is the probability a link spontaneously re-emits a message the
	// sender never retransmitted (network-born duplication).  The
	// duplicate carries the same id and the same Attempt number, so it
	// collides with the original in every dedup structure — exactly the
	// case the leaf-keyed reply cache and the retry tracker must absorb.
	Dup float64
	// Corrupt is the probability a link flips payload bits (addr, op
	// argument, or reply value) in a message.  The end-to-end checksum
	// (core.Request.Sum / core.Reply.Sum, stamped in the trusted zone
	// before the link) never passes through the corruptor, so the next
	// receiver detects every corruption, quarantines the message
	// (NoteCorruptDropped), and the retransmit layer repairs it.
	Corrupt float64

	// Canary names a deliberately seeded bug used to validate the chaos
	// fuzzer end to end ("" = none).  "nodedup" disables the memory-side
	// reply-cache dedup so duplicated deliveries double-execute — a bug
	// cmd/check -chaos must find and shrink to a minimal reproducer.
	Canary string

	// RetryTimeout is the base retransmit timeout in cycles (cycle-driven
	// engines; the goroutine engine uses a wall-clock timeout instead).
	// Default 64.
	RetryTimeout int64
	// RetryCap bounds the exponential backoff: the delay before attempt
	// k is min(RetryTimeout << (k-1), RetryCap).  Default 8×RetryTimeout.
	RetryCap int64
}

func (p Plan) String() string {
	s := fmt.Sprintf("plan{seed=%d drop_fwd=%g drop_rev=%g stalls=%d mem_stalls=%d crashes=%d mem_crashes=%d link_crashes=%d ckpt=%d",
		p.Seed, p.DropFwd, p.DropRev, len(p.Stalls), len(p.MemStalls),
		len(p.Crashes), len(p.MemCrashes), len(p.LinkCrashes), p.CheckpointEvery)
	if p.HasAdversarial() {
		s += fmt.Sprintf(" reorder=%g/%d dup=%g corrupt=%g", p.Reorder, p.ReorderMax, p.Dup, p.Corrupt)
	}
	if p.Canary != "" {
		s += " canary=" + p.Canary
	}
	return s + "}"
}

// HasCrashes reports whether the plan contains any crash–restart windows.
// Engines arm the checkpoint/crash machinery only when it does, so plans
// without crashes behave byte-identically to the pre-crash engine.
func (p Plan) HasCrashes() bool {
	return len(p.Crashes) > 0 || len(p.MemCrashes) > 0 || len(p.LinkCrashes) > 0
}

// HasAdversarial reports whether the plan relaxes delivery beyond loss:
// reordering, network-born duplication, or payload corruption.  Engines arm
// the integrity layer (checksum stamping and verification, limbo buffers)
// only when it does, and the parallel stepper refuses such plans — limbo
// release order is defined by the serial sweep.
func (p Plan) HasAdversarial() bool {
	return p.Reorder > 0 || p.Dup > 0 || p.Corrupt > 0
}

// Default returns the standard soak plan for a seed: 1% forward drops, 1%
// reply loss, one early switch blackout, one memory slowdown window — the
// "nonzero fault plan" the acceptance checks run under.
func Default(seed uint64) *Plan {
	return &Plan{
		Seed:      seed,
		DropFwd:   0.01,
		DropRev:   0.01,
		Stalls:    []Window{{Stage: -1, Index: 0, From: 50, To: 120}},
		MemStalls: []Window{{Stage: -1, Index: 0, From: 200, To: 280}},
	}
}

// DefaultAdversarial returns the standard adversarial soak plan for a
// seed: Default's drops and stall windows plus per-link reordering (2% of
// hops deferred up to 8 cycles), network-born duplication (2% of hops), and
// payload corruption (2% of hops) — the "relaxed delivery" plan the
// adversarial soaks and the schema-parity test run under.  The 2% rates
// keep each kind firing even on the bus machine, where heavy FIFO
// combining leaves relatively few terminal-link crossings to draw on.
func DefaultAdversarial(seed uint64) *Plan {
	p := Default(seed)
	p.Reorder = 0.02
	p.ReorderMax = 8
	p.Dup = 0.02
	p.Corrupt = 0.02
	return p
}

// DefaultCrash returns the standard crash soak plan for a seed: one early
// switch crash, one memory-module crash, one link-down burst, checkpoints
// every 64 cycles, no Bernoulli drops.  Merge with Default for the
// crash+drop soak mode.
func DefaultCrash(seed uint64) *Plan {
	return &Plan{
		Seed:            seed,
		Crashes:         []Window{{Stage: 0, Index: 0, From: 300, To: 380}},
		MemCrashes:      []Window{{Stage: -1, Index: 0, From: 600, To: 700}},
		LinkCrashes:     []Window{{Stage: 1, Index: 0, From: 900, To: 940}},
		CheckpointEvery: 64,
	}
}

// GenCrashPlan derives a seeded crash scenario: n switch crashes, n module
// crashes, and n link-down bursts with dead-time windows of the given
// length scattered deterministically over [0, horizon).  The windows are a
// pure function of (seed, n, horizon, dead) — the same arguments replay the
// same schedule on every wiring; indexes are drawn from [0, 4) so every
// topology in the menu owns the crashed sites (the bus machine's single
// switch site (0, 0) sees only index-0 windows, matching its stall-window
// convention).
func GenCrashPlan(seed uint64, n int, horizon, dead int64) *Plan {
	p := &Plan{Seed: seed, CheckpointEvery: 64}
	draw := func(kind uint64, i int) (int, int64) {
		h := splitmix64(seed ^ kind)
		h = splitmix64(h ^ uint64(i))
		idx := int(h % 4)
		from := int64(splitmix64(h) % uint64(horizon))
		return idx, from
	}
	for i := 0; i < n; i++ {
		idx, from := draw(0x517cc1b727220a95, i)
		p.Crashes = append(p.Crashes, Window{Stage: 0, Index: idx, From: from, To: from + dead})
		idx, from = draw(0x2545f4914f6cdd1d, i)
		p.MemCrashes = append(p.MemCrashes, Window{Stage: -1, Index: idx, From: from, To: from + dead})
		idx, from = draw(0x9e3779b97f4a7c15, i)
		p.LinkCrashes = append(p.LinkCrashes, Window{Stage: 1, Index: idx, From: from, To: from + dead/2})
	}
	return p
}

// Injector answers fault queries for one engine run and counts what it
// injected.  Counters are lock-free so the goroutine engine can consult the
// injector from every switch without serializing them.
type Injector struct {
	plan Plan

	// DropsFwd and DropsRev count dropped request and reply hops;
	// StallCycles and MemStallCycles count switch-cycles and
	// module-cycles lost to windows; CrashCycles counts dead
	// component-cycles inside crash windows.
	DropsFwd, DropsRev          stats.Counter
	StallCycles, MemStallCycles stats.Counter
	CrashCycles                 stats.Counter

	// ReorderedHeld counts hops deferred into a limbo buffer (delivered
	// out of per-link FIFO order); DupInjected counts network-born
	// duplicates emitted; CorruptInjected counts payload corruptions
	// applied; CorruptDropped counts corrupt messages a receiver's
	// checksum verification detected and quarantined.  CorruptDropped can
	// lag CorruptInjected when a corrupted message dies of another fault
	// (a drop, a dead link, a crash flush) before any receiver sees it.
	ReorderedHeld, DupInjected      stats.Counter
	CorruptInjected, CorruptDropped stats.Counter
}

// NewInjector builds the injector for a plan, filling retry and checkpoint
// defaults.
func NewInjector(p Plan) *Injector {
	if p.RetryTimeout <= 0 {
		p.RetryTimeout = 64
	}
	if p.RetryCap <= 0 {
		p.RetryCap = 8 * p.RetryTimeout
	}
	if p.CheckpointEvery <= 0 && p.HasCrashes() {
		p.CheckpointEvery = 64
	}
	if p.ReorderMax <= 0 && p.Reorder > 0 {
		p.ReorderMax = 8
	}
	return &Injector{plan: p}
}

// Plan returns the (default-filled) plan the injector answers for.
func (f *Injector) Plan() Plan { return f.plan }

// Injected totals every fault the injector has fired.  Crash dead time
// counts as injected progress so the livelock watchdog — whose progress
// signature folds Injected() in — never mistakes a dead-time window for a
// hang (the same mechanism that excludes stall windows).
func (f *Injector) Injected() int64 {
	return f.DropsFwd.Load() + f.DropsRev.Load() +
		f.StallCycles.Load() + f.MemStallCycles.Load() +
		f.CrashCycles.Load() +
		f.ReorderedHeld.Load() + f.DupInjected.Load() +
		f.CorruptInjected.Load()
}

// Fault kinds, mixed into the decision hash so a forward drop and a reply
// drop at the same site draw independent randomness.
const (
	kindDropFwd      uint64 = 0x9e3779b97f4a7c15
	kindDropRev      uint64 = 0xc2b2ae3d27d4eb4f
	kindReorder      uint64 = 0xd6e8feb86659fd93
	kindReorderDelay uint64 = 0xa0761d6478bd642f
	kindDup          uint64 = 0xe7037ed1a0b428db
	kindCorrupt      uint64 = 0x8ebc6af09c88c6e3
	kindCorruptBits  uint64 = 0x589965cc75374cc3
)

// Site packs a (stage, index, port) coordinate into a hash key; engines
// with other geometries pack what they have (the hypercube uses node and
// dimension, the bus machine a constant).
func Site(stage, index, port int) uint64 {
	return uint64(stage)<<40 ^ uint64(index)<<16 ^ uint64(port)
}

// splitmix64 is the SplitMix64 finalizer — a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide draws the deterministic Bernoulli variable for one event.
func (f *Injector) decide(kind, site uint64, id word.ReqID, attempt uint32, p float64) bool {
	if p <= 0 {
		return false
	}
	h := splitmix64(f.plan.Seed ^ kind)
	h = splitmix64(h ^ site)
	h = splitmix64(h ^ uint64(id)<<8 ^ uint64(attempt))
	// 53 uniform bits → [0, 1).
	return float64(h>>11)/(1<<53) < p
}

// DropForward reports whether the request hop for (id, attempt) at site is
// dropped, counting the injection.
func (f *Injector) DropForward(site uint64, id word.ReqID, attempt uint32) bool {
	if !f.decide(kindDropFwd, site, id, attempt, f.plan.DropFwd) {
		return false
	}
	f.DropsFwd.Inc()
	return true
}

// DropReply reports whether the reply hop for (id, attempt) at site is
// dropped, counting the injection.
func (f *Injector) DropReply(site uint64, id word.ReqID, attempt uint32) bool {
	if !f.decide(kindDropRev, site, id, attempt, f.plan.DropRev) {
		return false
	}
	f.DropsRev.Inc()
	return true
}

// ReorderDelay returns the deferral, in cycles, for the hop of (id,
// attempt) at site: 0 almost always (delivery proceeds in order), or a
// hash-drawn delay in [1, ReorderMax] when the reorder fault fires,
// counting the held message.  The caller parks the message in its limbo
// buffer and re-delivers it at cycle+delay — after traffic that left the
// same link later, relaxing per-link FIFO.
func (f *Injector) ReorderDelay(site uint64, id word.ReqID, attempt uint32) int64 {
	if !f.decide(kindReorder, site, id, attempt, f.plan.Reorder) {
		return 0
	}
	h := splitmix64(f.plan.Seed ^ kindReorderDelay)
	h = splitmix64(h ^ site ^ uint64(id)<<8 ^ uint64(attempt))
	f.ReorderedHeld.Inc()
	return 1 + int64(h%uint64(f.plan.ReorderMax))
}

// Duplicate reports whether the link spontaneously re-emits the message for
// (id, attempt) at site — a network-born duplicate the sender never
// retransmitted, carrying the same id and attempt — counting the injection.
func (f *Injector) Duplicate(site uint64, id word.ReqID, attempt uint32) bool {
	if !f.decide(kindDup, site, id, attempt, f.plan.Dup) {
		return false
	}
	f.DupInjected.Inc()
	return true
}

// CorruptMask returns a nonzero bit mask when the link flips payload bits
// in the message for (id, attempt) at site, else 0, counting the injection.
// Engines apply the mask to the payload (core.CorruptRequest /
// core.CorruptReply — the checksum itself never passes through the
// corruptor) and the next receiver's verification quarantines the message,
// reporting it through NoteCorruptDropped.
func (f *Injector) CorruptMask(site uint64, id word.ReqID, attempt uint32) uint64 {
	if !f.decide(kindCorrupt, site, id, attempt, f.plan.Corrupt) {
		return 0
	}
	h := splitmix64(f.plan.Seed ^ kindCorruptBits)
	h = splitmix64(h ^ site ^ uint64(id)<<8 ^ uint64(attempt))
	if h == 0 {
		h = 1
	}
	f.CorruptInjected.Inc()
	return h
}

// NoteCorruptDropped counts one corrupt message a receiver's checksum
// verification detected and quarantined.
func (f *Injector) NoteCorruptDropped() { f.CorruptDropped.Inc() }

// Stalled reports whether the switch at (stage, index) is inside a stall
// window this cycle, counting the lost switch-cycle.
func (f *Injector) Stalled(stage, index int, cycle int64) bool {
	for _, w := range f.plan.Stalls {
		if w.matches(stage, index, cycle) {
			f.StallCycles.Inc()
			return true
		}
	}
	return false
}

// MemStalled reports whether memory module mod is inside a slowdown window
// this cycle, counting the lost module-cycle.  MemStalls windows select the
// module with Index alone; Stage is ignored.
func (f *Injector) MemStalled(mod int, cycle int64) bool {
	for _, w := range f.plan.MemStalls {
		if (w.Index == -1 || w.Index == mod) && cycle >= w.From && cycle < w.To {
			f.MemStallCycles.Inc()
			return true
		}
	}
	return false
}

// SwitchCrashed reports whether the switch at (stage, index) is inside a
// crash window this cycle, counting the dead switch-cycle.  Engines call it
// exactly once per component per cycle (serially, like the stall mask) so
// crash_cycles equals dead component-cycles at every Workers width.
func (f *Injector) SwitchCrashed(stage, index int, cycle int64) bool {
	for _, w := range f.plan.Crashes {
		if w.matches(stage, index, cycle) {
			f.CrashCycles.Inc()
			return true
		}
	}
	return false
}

// MemCrashed reports whether memory module mod is inside a crash window
// this cycle, counting the dead module-cycle.  MemCrashes windows select
// the module with Index alone; Stage is ignored.
func (f *Injector) MemCrashed(mod int, cycle int64) bool {
	for _, w := range f.plan.MemCrashes {
		if (w.Index == -1 || w.Index == mod) && cycle >= w.From && cycle < w.To {
			f.CrashCycles.Inc()
			return true
		}
	}
	return false
}

// LinkDown reports whether the link at forward-hop site (stage, index) is
// inside a link-crash window this cycle.  Pure query: callers count the
// actual message losses through DropLinkFwd/DropLinkRev.
func (f *Injector) LinkDown(stage, index int, cycle int64) bool {
	for _, w := range f.plan.LinkCrashes {
		if w.matches(stage, index, cycle) {
			return true
		}
	}
	return false
}

// DropLinkFwd reports whether a request hop at (stage, index) dies on a
// crashed link this cycle, counting it with the Bernoulli forward drops.
func (f *Injector) DropLinkFwd(stage, index int, cycle int64) bool {
	if !f.LinkDown(stage, index, cycle) {
		return false
	}
	f.DropsFwd.Inc()
	return true
}

// DropLinkRev reports whether a reply hop at (stage, index) dies on a
// crashed link this cycle, counting it with the Bernoulli reply drops.
func (f *Injector) DropLinkRev(stage, index int, cycle int64) bool {
	if !f.LinkDown(stage, index, cycle) {
		return false
	}
	f.DropsRev.Inc()
	return true
}

// ActiveCrashes formats the crash windows covering the cycle — the crashed
// sites a StallReport names so a trip during recovery is attributable.
// Empty when nothing is dead.
func (f *Injector) ActiveCrashes(cycle int64) string {
	s := ""
	add := func(kind string, w Window) {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s(stage=%d,index=%d,[%d,%d))", kind, w.Stage, w.Index, w.From, w.To)
	}
	for _, w := range f.plan.Crashes {
		if cycle >= w.From && cycle < w.To {
			add("switch", w)
		}
	}
	for _, w := range f.plan.MemCrashes {
		if cycle >= w.From && cycle < w.To {
			add("mem", w)
		}
	}
	for _, w := range f.plan.LinkCrashes {
		if cycle >= w.From && cycle < w.To {
			add("link", w)
		}
	}
	return s
}

// Timeout returns the retransmit delay before the given attempt (1-based):
// capped exponential backoff from the plan's base timeout.
func (f *Injector) Timeout(attempt uint32) int64 {
	d := f.plan.RetryTimeout
	for i := uint32(1); i < attempt; i++ {
		d <<= 1
		if d >= f.plan.RetryCap {
			return f.plan.RetryCap
		}
	}
	if d > f.plan.RetryCap {
		d = f.plan.RetryCap
	}
	return d
}
