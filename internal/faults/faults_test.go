package faults

import (
	"testing"

	"combining/internal/word"
)

// TestDropDeterminism: the same plan answers every query identically across
// injector instances, and a different seed answers differently somewhere —
// the property that makes a failing run replayable from its seed alone.
func TestDropDeterminism(t *testing.T) {
	plan := Plan{Seed: 7, DropFwd: 0.3, DropRev: 0.3}
	a, b, a2 := NewInjector(plan), NewInjector(plan), NewInjector(plan)
	plan.Seed = 8
	c := NewInjector(plan)

	sameAsA, diffFromA := true, false
	for site := 0; site < 50; site++ {
		for id := word.ReqID(0); id < 50; id++ {
			s := Site(site%3, site, site%2)
			if a.DropForward(s, id, 0) != b.DropForward(s, id, 0) {
				sameAsA = false
			}
			if a.DropReply(s, id, 1) != b.DropReply(s, id, 1) {
				sameAsA = false
			}
			if a2.DropForward(s, id, 2) != c.DropForward(s, id, 2) {
				diffFromA = true
			}
		}
	}
	if !sameAsA {
		t.Fatal("equal plans disagreed on a drop decision")
	}
	if !diffFromA {
		t.Fatal("different seeds agreed on every decision — seed is not mixed in")
	}
	if a.DropsFwd.Load() != b.DropsFwd.Load() || a.DropsRev.Load() != b.DropsRev.Load() {
		t.Fatal("equal plans counted different injections")
	}
}

// TestDropRate: the empirical drop frequency tracks the plan probability.
func TestDropRate(t *testing.T) {
	const p, n = 0.05, 100000
	flt := NewInjector(Plan{Seed: 3, DropFwd: p})
	drops := 0
	for id := word.ReqID(0); id < n; id++ {
		if flt.DropForward(Site(1, 2, 0), id, 0) {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < p*0.8 || rate > p*1.2 {
		t.Fatalf("empirical drop rate %.4f, want about %.2f", rate, p)
	}
	// Attempts draw fresh randomness: a dropped attempt 0 must not doom
	// every retransmit of the same id.
	stuck := 0
	for id := word.ReqID(0); id < n; id++ {
		if flt.DropForward(Site(1, 2, 0), id, 0) && flt.DropForward(Site(1, 2, 0), id, 1) {
			stuck++
		}
	}
	if want := p * p * n * 3; float64(stuck) > want {
		t.Fatalf("%d ids dropped on both attempts, want about %.0f (attempt not mixed in?)", stuck, p*p*n)
	}
}

// TestStallWindows: window matching honors [From, To) bounds and the -1
// wildcards, for both switch and memory windows.
func TestStallWindows(t *testing.T) {
	flt := NewInjector(Plan{
		Seed:      1,
		Stalls:    []Window{{Stage: 1, Index: 2, From: 10, To: 20}, {Stage: -1, Index: 0, From: 100, To: 101}},
		MemStalls: []Window{{Index: 3, From: 5, To: 8}},
	})
	cases := []struct {
		stage, index int
		cycle        int64
		want         bool
	}{
		{1, 2, 10, true},   // inclusive From
		{1, 2, 19, true},   // last covered cycle
		{1, 2, 20, false},  // exclusive To
		{1, 2, 9, false},   // before
		{1, 3, 15, false},  // wrong index
		{0, 2, 15, false},  // wrong stage
		{0, 0, 100, true},  // stage wildcard
		{5, 0, 100, true},  // stage wildcard, another stage
		{5, 1, 100, false}, // wildcard stage, wrong index
	}
	for _, c := range cases {
		if got := flt.Stalled(c.stage, c.index, c.cycle); got != c.want {
			t.Errorf("Stalled(%d,%d,%d) = %v, want %v", c.stage, c.index, c.cycle, got, c.want)
		}
	}
	memCases := []struct {
		mod   int
		cycle int64
		want  bool
	}{
		{3, 5, true}, {3, 7, true}, {3, 8, false}, {2, 6, false},
	}
	for _, c := range memCases {
		if got := flt.MemStalled(c.mod, c.cycle); got != c.want {
			t.Errorf("MemStalled(%d,%d) = %v, want %v", c.mod, c.cycle, got, c.want)
		}
	}
	if flt.StallCycles.Load() == 0 || flt.MemStallCycles.Load() == 0 {
		t.Fatal("stall counters did not advance")
	}
}

// TestTimeoutBackoff: capped exponential backoff from the plan base.
func TestTimeoutBackoff(t *testing.T) {
	flt := NewInjector(Plan{Seed: 1, RetryTimeout: 10, RetryCap: 35})
	want := []int64{10, 10, 20, 35, 35, 35}
	for attempt, w := range want {
		if got := flt.Timeout(uint32(attempt)); got != w {
			t.Errorf("Timeout(%d) = %d, want %d", attempt, got, w)
		}
	}
	// Defaults fill in: base 64, cap 8×64.
	def := NewInjector(Plan{Seed: 1})
	if def.Timeout(1) != 64 || def.Timeout(20) != 512 {
		t.Fatalf("default backoff = %d..%d, want 64..512", def.Timeout(1), def.Timeout(20))
	}
}
