package stats

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestHighWater(t *testing.T) {
	var h HighWater
	for _, v := range []int64{3, 7, 5, 7, 2} {
		h.Observe(v)
	}
	if got := h.Load(); got != 7 {
		t.Fatalf("high water = %d, want 7", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 20, 20}, {1<<20 + 5, 20}, {1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d, want 1000", s.Count)
	}
	if s.Sum != 999*1000/2 {
		t.Fatalf("sum %d", s.Sum)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("buckets hold %d of %d observations", total, s.Count)
	}
	if s.P50 <= 0 || s.P99 < s.P50 || s.P90 < s.P50 || s.P99 > 2048 {
		t.Fatalf("percentiles inconsistent: p50 %.1f p90 %.1f p99 %.1f", s.P50, s.P90, s.P99)
	}
	if s.Mean < s.Percentile(0.05) || s.Mean > s.Percentile(0.999) {
		t.Fatalf("mean %.1f outside plausible range", s.Mean)
	}
}

// TestPercentileNeverExceedsMax: the estimator used to interpolate toward
// the bucket's nominal upper edge, over-reporting whenever the true maximum
// sat below it — catastrophically so for the clamped last bucket, whose
// edge is the open-ended 2^NumBuckets sentinel.
func TestPercentileNeverExceedsMax(t *testing.T) {
	// All mass at one mid-range value: every percentile must stay ≤ 3.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(3)
	}
	s := h.Snapshot()
	if s.Max != 3 {
		t.Fatalf("max = %d, want 3", s.Max)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if p := s.Percentile(q); p > 3 {
			t.Errorf("P%v = %.2f exceeds the true maximum 3", q*100, p)
		}
	}

	// Values clamped into the last bucket: without the max clamp the
	// estimator interpolates toward 2^NumBuckets ≈ 2.8e14 regardless of
	// where in the open-ended bucket the mass actually sits.
	var tail Histogram
	const big = int64(1) << (NumBuckets + 2) // ≥ 2^(NumBuckets−1): clamped bucket
	for i := 0; i < 100; i++ {
		tail.Record(big)
	}
	ts := tail.Snapshot()
	if ts.Max != big {
		t.Fatalf("max = %d, want %d", ts.Max, big)
	}
	for _, q := range []float64{0.5, 0.99, 1.0} {
		if p := ts.Percentile(q); p > float64(big) {
			t.Errorf("clamped bucket: P%v = %g exceeds the true maximum %d", q*100, p, big)
		}
	}
	// The old past-the-end fallback returned 2^len(Buckets); it must now
	// report the recorded maximum.
	if p := ts.Percentile(1.0); p != float64(big) {
		t.Errorf("P100 = %g, want the true maximum %d", p, big)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	var h Histogram
	h.Record(100)
	s := Snapshot{
		Engine:     "test",
		Counters:   map[string]int64{"combines": 7},
		Gauges:     map[string]int64{"queue_max": 3},
		Histograms: map[string]HistogramSnapshot{"latency": h.Snapshot()},
	}
	var back Snapshot
	if err := json.Unmarshal(s.JSON(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Engine != "test" || back.Counter("combines") != 7 ||
		back.Gauges["queue_max"] != 3 || back.Histograms["latency"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// TestConcurrentRecording hammers every primitive from many goroutines; with
// -race this doubles as the data-race proof for the lock-free claims.
func TestConcurrentRecording(t *testing.T) {
	const workers, per = 8, 10000
	var c Counter
	var hw HighWater
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				hw.Observe(int64(w*per + i))
				h.Record(int64(i))
				if i%1000 == 0 {
					_ = h.Snapshot() // snapshots race harmlessly with recording
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	if got := hw.Load(); got != workers*per-1 {
		t.Fatalf("high water %d, want %d", got, workers*per-1)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("histogram count %d, want %d", s.Count, workers*per)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("buckets hold %d of %d observations", total, s.Count)
	}
}
