// Package stats is the shared engine instrumentation subsystem: lock-free
// counters, power-of-two latency histograms with percentile extraction, and
// queue-depth high-water marks, all behind one JSON-serializable Snapshot.
//
// The combining mechanism is transparent (Theorem 4.2) only if observing it
// never perturbs it: every recording primitive here is a single atomic
// operation with no allocation and no lock, so the asynchronous engine can
// record from every switch and port goroutine without serializing the hot
// path it measures, and the cycle simulators pay one uncontended atomic per
// event.  Snapshots copy the live values and are plain data thereafter.
package stats

import (
	"encoding/json"
	"math/bits"
	"sync/atomic"
)

// Counter is a lock-free event counter.  The zero value is ready to use.
// A Counter must not be copied after first use.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// HighWater tracks the maximum value observed.  The zero value is ready to
// use and reports 0.  A HighWater must not be copied after first use.
type HighWater struct{ v atomic.Int64 }

// Observe raises the high-water mark to n if n exceeds it.
func (h *HighWater) Observe(n int64) {
	for {
		cur := h.v.Load()
		if n <= cur || h.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the high-water mark.
func (h *HighWater) Load() int64 { return h.v.Load() }

// NumBuckets sizes the power-of-two histograms: bucket i counts values in
// [2^i, 2^(i+1)), bucket 0 holds 0–1, and the last bucket absorbs the tail.
// 48 buckets span nanosecond round trips up to ~39 hours, and any plausible
// cycle count.
const NumBuckets = 48

// Histogram is a lock-free power-of-two histogram.  The zero value is ready
// to use.  A Histogram must not be copied after first use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     HighWater
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps a value to its power-of-two bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Record adds one observation: three uncontended atomic adds plus a
// high-water CAS, no allocation.  The running max bounds the percentile
// estimator, which would otherwise interpolate past the largest value ever
// seen (all the way to the 2^NumBuckets sentinel for the clamped last
// bucket).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.Observe(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the live histogram into plain data.  Concurrent Record
// calls may land between the bucket reads; the snapshot is then a slightly
// stale but internally consistent-enough view (each field is individually
// exact at some instant).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	last := -1
	var buckets [NumBuckets]int64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), buckets[:last+1]...)
	}
	s.Mean = s.mean()
	s.P50 = s.Percentile(0.50)
	s.P90 = s.Percentile(0.90)
	s.P99 = s.Percentile(0.99)
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, serializable to
// JSON.  Buckets is trimmed after the last non-zero bucket.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max,omitempty"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Buckets []int64 `json:"buckets,omitempty"`
}

func (s HistogramSnapshot) mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile returns the approximate q-quantile (0 < q ≤ 1), interpolating
// within the power-of-two bucket.  Interpolation is clamped to the largest
// value actually recorded, so an estimate never exceeds the true maximum —
// without the clamp, the bucket holding the max would interpolate toward
// its nominal upper edge (for the last bucket, which absorbs everything ≥
// 2^(NumBuckets−1), that edge is the open-ended 2^NumBuckets sentinel,
// over-reporting by orders of magnitude).
func (s HistogramSnapshot) Percentile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := float64(int64(1) << i)
			if i == 0 {
				lo = 0
			}
			hi := float64(int64(1) << (i + 1))
			if i == len(s.Buckets)-1 {
				// The trimmed final bucket is the one holding the maximum,
				// so its true upper edge is the max itself — below the
				// nominal power-of-two for an ordinary bucket, above it for
				// the open-ended last bucket that absorbs the whole tail.
				hi = float64(s.Max)
			}
			if hi < lo {
				// A racy snapshot can leave the max lagging the bucket
				// counts; keep the estimate inside the bucket.
				hi = lo
			}
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.Max)
}

// Snapshot is a point-in-time view of one engine's instrumentation — the
// one cross-engine observation API.  Every engine (network, asyncnet,
// busnet, hypercube) produces one; MarshalJSON gives the stable wire form
// the bench baseline (BENCH_combining.json) records.
type Snapshot struct {
	// Engine names the producing engine ("network", "asyncnet", ...).
	Engine string `json:"engine"`
	// Counters are monotone event totals (combines, completions, ...).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges are level measurements (queue high-water marks, ...).
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms are latency/size distributions keyed by metric name.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a named counter total, 0 when absent.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// JSON renders the snapshot with stable key order (Go serializes map keys
// sorted), indented for human diffing.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only maps of plain data; this cannot fail.
		panic(err)
	}
	return b
}
