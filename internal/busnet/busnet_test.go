package busnet

import (
	"sort"
	"testing"

	"combining/internal/core"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/word"
)

type scriptInjector struct {
	script  []network.Injection
	next    int
	replies []core.Reply
}

func (s *scriptInjector) Next(int64) (network.Injection, bool) {
	if s.next >= len(s.script) {
		return network.Injection{}, false
	}
	inj := s.script[s.next]
	s.next++
	return inj, true
}

func (s *scriptInjector) Deliver(rep core.Reply, _ int64) {
	s.replies = append(s.replies, rep)
}

func TestBusFAA(t *testing.T) {
	for _, waitCap := range []int{0, core.Unbounded} {
		const n = 12
		inj := make([]network.Injector, n)
		scripts := make([]*scriptInjector, n)
		for p := 0; p < n; p++ {
			scripts[p] = &scriptInjector{script: []network.Injection{{
				Req: core.NewRequest(word.ReqID(p+1), 5, rmw.FetchAdd(1<<p), word.ProcID(p)),
				Hot: true,
			}}}
			inj[p] = scripts[p]
		}
		sim := NewSim(Config{Procs: n, Banks: 4, WaitBufCap: waitCap}, inj)
		if !sim.Drain(5000) {
			t.Fatalf("waitCap=%d: bus did not drain", waitCap)
		}
		final := sim.Memory().Peek(5).Val
		if final != int64(1)<<n-1 {
			t.Fatalf("waitCap=%d: final %d", waitCap, final)
		}
		var vals []int64
		for p := 0; p < n; p++ {
			if len(scripts[p].replies) != 1 {
				t.Fatalf("proc %d: %d replies", p, len(scripts[p].replies))
			}
			vals = append(vals, scripts[p].replies[0].Val.Val)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		seen := int64(0)
		for i, v := range vals {
			if v != seen {
				t.Fatalf("waitCap=%d: reply %d is %d, want %d (not a serialization)", waitCap, i, v, seen)
			}
			var inc int64
			if i+1 < len(vals) {
				inc = vals[i+1] - v
			} else {
				inc = final - v
			}
			if inc <= 0 || inc&(inc-1) != 0 || seen&inc != 0 {
				t.Fatalf("waitCap=%d: bad increment at %d", waitCap, i)
			}
			seen += inc
		}
	}
}

// TestBusCombining (A2): combining in the decoupling FIFO improves
// throughput under bank conflicts, as Section 7 claims.
func TestBusCombining(t *testing.T) {
	run := func(combining bool) Stats {
		const n = 16
		waitCap := 0
		if combining {
			waitCap = core.Unbounded
		}
		inj := make([]network.Injector, n)
		for p := 0; p < n; p++ {
			inj[p] = network.NewStochastic(p, n, network.TrafficConfig{
				Rate: 1.0, HotFraction: 0.5, Window: 4, AddrSpace: 64,
			}, 21)
		}
		sim := NewSim(Config{Procs: n, Banks: 8, WaitBufCap: waitCap, BankService: 4}, inj)
		sim.Run(6000)
		return sim.Stats()
	}
	noComb := run(false)
	comb := run(true)
	t.Logf("bus h=0.5: no-combining %.3f ops/cycle (HOL %d), combining %.3f (HOL %d, %d combines)",
		noComb.Bandwidth(), noComb.HOLBlocked, comb.Bandwidth(), comb.HOLBlocked, comb.Combines)
	if comb.Combines == 0 {
		t.Fatal("no combining in the FIFO under a hot bank")
	}
	if comb.Bandwidth() < 1.3*noComb.Bandwidth() {
		t.Errorf("combining bandwidth %.3f not ≥1.3× uncombined %.3f",
			comb.Bandwidth(), noComb.Bandwidth())
	}
	if comb.HOLBlocked >= noComb.HOLBlocked {
		t.Errorf("combining did not reduce head-of-line blocking: %d vs %d",
			comb.HOLBlocked, noComb.HOLBlocked)
	}
}

func TestBusInterleavingSpreads(t *testing.T) {
	// Uniform traffic across banks completes at bus rate despite slow
	// banks (the point of interleaving): with 8 banks at service 4 and
	// addresses striped, throughput approaches 1 op/cycle.
	const n = 8
	inj := make([]network.Injector, n)
	scripts := make([]*scriptInjector, n)
	const perProc = 100
	id := word.ReqID(1)
	for p := 0; p < n; p++ {
		scripts[p] = &scriptInjector{}
		for i := 0; i < perProc; i++ {
			// Processor p walks its own stripe of addresses.
			addr := word.Addr((p + i*3) % 64)
			scripts[p].script = append(scripts[p].script, network.Injection{
				Req: core.NewRequest(id, addr, rmw.FetchAdd(1), word.ProcID(p)),
			})
			id++
		}
		inj[p] = scripts[p]
	}
	sim := NewSim(Config{Procs: n, Banks: 8, WaitBufCap: 0, BankService: 4}, inj)
	if !sim.Drain(20000) {
		t.Fatal("bus did not drain")
	}
	st := sim.Stats()
	bw := float64(st.Completed) / float64(st.Cycles)
	t.Logf("uniform bus throughput: %.3f ops/cycle over %d cycles", bw, st.Cycles)
	if bw < 0.5 {
		t.Errorf("interleaved banks delivered only %.3f ops/cycle", bw)
	}
}

func TestBusConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no processors", func() {
		NewSim(Config{Procs: 0, Banks: 4}, nil)
	})
	mustPanic("no banks", func() {
		NewSim(Config{Procs: 4, Banks: 0}, make([]network.Injector, 4))
	})
	mustPanic("injector mismatch", func() {
		NewSim(Config{Procs: 4, Banks: 2}, make([]network.Injector, 2))
	})
}

func TestBusDrainTimeout(t *testing.T) {
	inj := make([]network.Injector, 2)
	for p := range inj {
		inj[p] = network.NewStochastic(p, 2, network.TrafficConfig{Rate: 1, Window: 4}, 1)
	}
	sim := NewSim(Config{Procs: 2, Banks: 2}, inj)
	if sim.Drain(20) {
		t.Fatal("drained despite endless traffic")
	}
	if sim.InFlight() == 0 {
		t.Fatal("InFlight must be positive under endless traffic")
	}
}

func TestBusStatsZero(t *testing.T) {
	var st Stats
	if st.MeanLatency() != 0 || st.Bandwidth() != 0 {
		t.Fatal("zero stats must report zeros")
	}
}
