// Package busnet models the last architecture of Section 7: "Combining
// can also be used on machines where multiple processors are connected to
// a shared memory by a bus.  The shared memory is often heavily
// interleaved; thus it achieves high, but uneven, throughput.  A FIFO
// buffer is often used to decouple memory from the shared bus.  Combining
// in this queue will improve the memory throughput by reducing conflicting
// accesses to the same memory bank."
//
// The machine: processors arbitrate for a bus carrying one request per
// cycle into a central FIFO; the FIFO head dispatches to an interleaved
// bank when that bank is idle (head-of-line blocking on a busy bank is
// precisely the conflict combining removes); replies decombine against the
// FIFO's wait buffer and return to the issuing processor.
package busnet

import (
	"fmt"

	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/flow"
	"combining/internal/memory"
	"combining/internal/network"
	"combining/internal/par"
	"combining/internal/recover"
	"combining/internal/stats"
	"combining/internal/word"
)

// Config parameterizes the bus machine.
type Config struct {
	// Procs is the number of processors (any count ≥ 1).
	Procs int
	// Banks is the number of interleaved memory banks (≥ 1).
	Banks int
	// QueueCap bounds the decoupling FIFO (default 8).
	QueueCap int
	// BankQueueCap bounds each bank's input queue, including the request
	// in service; the FIFO head dispatches only while the target bank is
	// below it, holding (head-of-line blocking) otherwise.  0 defaults to
	// 1 — the classic decoupled-bus design where a bank accepts the next
	// request only when idle.
	BankQueueCap int
	// WatchdogCycles is the progress watchdog limit (see
	// internal/network.Config.WatchdogCycles): 0 defaults to
	// network.DefaultWatchdogCycles, negative disables.
	WatchdogCycles int64
	// WaitBufCap bounds the FIFO's wait buffer (0 disables combining).
	WaitBufCap int
	// BankService is cycles per memory operation (default 4 — banks are
	// slower than the bus, which is why they are interleaved).
	BankService int
	// AllowReversal enables the Section 5.1 optimization.
	AllowReversal bool
	// Workers shards the bank-service scan of each cycle across this many
	// goroutines (see internal/par and DESIGN.md §6): banks tick in
	// parallel — each touches only its own module — and completions commit
	// serially in bank order, so output is byte-for-byte identical at any
	// setting.  0 or 1 keep the single-threaded stepper.
	Workers int
	// Faults, when non-nil, arms the deterministic fault plan and the
	// recovery layer (see internal/faults and internal/network.Config).
	// The bus machine has one switch site (0, 0): a stall window there
	// freezes the bus and decoupling FIFO; bank slowdowns key on the
	// window's Index as the bank number.
	Faults *faults.Plan
}

type qmsg struct {
	req   core.Request
	src   int
	issue int64
	hot   bool
}

// busHeldFwd is a request deferred by link-level reordering on its
// terminal link (FIFO head → bank); it enters the bank at release, or one
// cycle later per cycle the bank is crashed or full.
type busHeldFwd struct {
	release int64
	bank    int
	m       qmsg
}

// busHeldRev is a reply deferred by link-level reordering on its terminal
// link (bank → return bus → processor); it is delivered at release.
type busHeldRev struct {
	release int64
	rep     core.Reply
	src     int
	issue   int64
}

type brec struct {
	core.Record
	src2   int
	issue2 int64
	hot2   bool
	// reps2 names the second request's leaves so a crash flushing this
	// record can report exactly which operations lost their reply path.
	reps2 []core.Leaf
}

// Stats summarizes a run.
type Stats struct {
	Cycles     int64
	Issued     int64
	Completed  int64
	LatencySum int64
	Combines   int64
	BankOps    int64
	// BusOps counts requests the bus carried into the decoupling FIFO —
	// part of the movement signature the progress watchdog keys on.
	BusOps int64
	// HOLBlocked counts cycles the FIFO head was stalled on a busy bank.
	HOLBlocked int64

	// SaturationCycles counts cycles the decoupling FIFO was full with
	// the head blocked on a busy bank — the bus machine's saturation
	// regime; SaturationMaxStreak is the longest run.
	SaturationCycles    int64
	SaturationMaxStreak int64

	// WatchdogTrips is 1 if the progress watchdog declared a stall.
	WatchdogTrips int64

	// Checkpoints counts bank checkpoints committed (crash plans only;
	// see internal/recover).
	Checkpoints int64
}

// MeanLatency is the average round trip in cycles.
func (s Stats) MeanLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Completed)
}

// Bandwidth is completed operations per cycle.
func (s Stats) Bandwidth() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Cycles)
}

// Sim is the cycle-driven bus machine.
type Sim struct {
	cfg     Config
	mem     *memory.Array
	inj     []network.Injector
	pending []*qmsg
	queue   []qmsg
	wait    *core.WaitBuffer[brec]
	meta    map[word.ReqID]qmsg
	pol     core.Policy

	cycle int64
	stats Stats
	// lat records per-completion round-trip latency in cycles; fifoHW
	// tracks the deepest decoupling FIFO observed.
	lat    stats.Histogram
	fifoHW stats.HighWater

	// wd is the progress watchdog; sat the saturation monitor.
	wd  *flow.Watchdog
	sat flow.Saturation

	// Fault-mode state (nil/zero on a healthy machine); see
	// internal/network.Sim for the shared recovery discipline.
	flt     *faults.Injector
	trk     *faults.Tracker
	retry   [][]qmsg
	orphans int64
	// Adversarial-delivery state (plan.HasAdversarial(); Validate rejects
	// Workers > 1 with such plans): adv arms the integrity layer on the
	// terminal links, and fwdLimbo/revLimbo hold reordered messages until
	// their release cycle (drained serially at the top of step).
	adv      bool
	fwdLimbo []busHeldFwd
	revLimbo []busHeldRev

	// Crash–restart state (crash plans only, nil/false otherwise): rec is
	// the recovery ledger; busDead and bankDead hold the previous cycle's
	// crash masks for edge detection.  The bus machine has two fault
	// domains: the bus + decoupling FIFO (switch site (0, 0) — a crash
	// flushes the FIFO, the wait buffer and the reply metadata) and each
	// bank (a crash rolls the module back to its last checkpoint).
	rec      *recover.Manager
	busDead  bool
	bankDead []bool

	// Parallel bank-scan state (Config.Workers > 1, nil otherwise): the
	// worker pool (persistent workers bracketed by Run/Drain), the scan
	// function bound once at construction so the cycle loop builds no
	// closures, and the per-bank completion buffer filled in the compute
	// phase and committed serially in bank order.  See DESIGN.md §6.
	pool    *par.Pool
	tickFn  func(w int)
	tickBuf []bankTick
}

// bankTick is one bank's compute-phase result: the reply its module
// completed this cycle, if any.  Padded: workers write adjacent entries
// of the contiguous buffer during the compute phase, and unpadded
// neighbors would false-share at the split boundaries.
type bankTick struct {
	rep core.Reply
	ok  bool
	_   [64]byte
}

// Validate reports whether the configuration is usable, with the
// documented zero-value defaults applied first; all config policing
// funnels through the engine core's Spec path (NewSim panics with the
// same error).
func (c Config) Validate() error {
	return c.normalize()
}

// normalize applies the defaults in place and validates the result.
func (c *Config) normalize() error {
	spec := engine.Spec{
		Engine:   "busnet",
		Procs:    c.Procs,
		MinProcs: 1,
		Banks:    c.Banks,
		Workers:  c.Workers,
		Service:  c.BankService,
		AdversarialSerial: c.Faults != nil && c.Faults.HasAdversarial() &&
			c.Workers > 1,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	if c.BankQueueCap == 0 {
		c.BankQueueCap = 1
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = network.DefaultWatchdogCycles
	}
	if c.BankService == 0 {
		c.BankService = 4
	}
	return nil
}

// NewSim builds the machine.
func NewSim(cfg Config, inj []network.Injector) *Sim {
	if err := cfg.normalize(); err != nil {
		panic(err)
	}
	if len(inj) != cfg.Procs {
		panic(fmt.Sprintf("busnet: got %d injectors for %d processors", len(inj), cfg.Procs))
	}
	memOpts := []memory.Option{memory.WithServiceTime(cfg.BankService)}
	if cfg.BankQueueCap > 0 {
		memOpts = append(memOpts, memory.WithQueueCap(cfg.BankQueueCap))
	}
	if cfg.Faults != nil {
		memOpts = append(memOpts, memory.WithReplyCache())
		if cfg.Faults.HasCrashes() {
			memOpts = append(memOpts, memory.WithCheckpoints())
		}
		if cfg.Faults.Canary == "nodedup" {
			memOpts = append(memOpts, memory.WithNoDedupCanary())
		}
	}
	s := &Sim{
		cfg:     cfg,
		mem:     memory.NewArray(cfg.Banks, memOpts...),
		inj:     inj,
		pending: make([]*qmsg, cfg.Procs),
		wait:    core.NewWaitBuffer[brec](cfg.WaitBufCap),
		meta:    make(map[word.ReqID]qmsg),
		pol:     core.Policy{AllowReversal: cfg.AllowReversal},
		wd:      flow.NewWatchdog(cfg.WatchdogCycles),
	}
	if cfg.Faults != nil {
		s.flt = faults.NewInjector(*cfg.Faults)
		s.trk = faults.NewTracker(s.flt)
		s.adv = s.flt.Plan().HasAdversarial()
		s.retry = make([][]qmsg, cfg.Procs)
		if plan := s.flt.Plan(); plan.HasCrashes() {
			s.rec = recover.New(plan.CheckpointEvery)
			s.bankDead = make([]bool, cfg.Banks)
		}
	}
	if cfg.Workers > 1 {
		s.pool = par.NewPool(cfg.Workers)
		s.tickFn = s.tickWorker
		s.tickBuf = make([]bankTick, cfg.Banks)
	}
	return s
}

// tickWorker is the per-worker body of the parallel bank compute phase,
// bound to Sim.tickFn once at construction.
func (s *Sim) tickWorker(w int) {
	lo, hi := par.Split(s.cfg.Banks, s.pool.Workers(), w)
	for b := lo; b < hi; b++ {
		s.tickBuf[b].rep, s.tickBuf[b].ok = s.tickBank(b)
	}
}

// Faults exposes the fault injector (nil on a healthy machine).
func (s *Sim) Faults() *faults.Injector { return s.flt }

// Tracker exposes the exactly-once delivery ledger (nil on a healthy
// machine).
func (s *Sim) Tracker() *faults.Tracker { return s.trk }

// Orphans reports replies that arrived with no request metadata (fault mode
// only).
func (s *Sim) Orphans() int64 { return s.orphans }

// Recovery exposes the crash–restart ledger (nil without crash windows).
func (s *Sim) Recovery() *recover.Manager { return s.rec }

// Memory exposes the banks.
func (s *Sim) Memory() *memory.Array { return s.mem }

// Stats snapshots the counters.
func (s *Sim) Stats() Stats { return s.stats }

// Snapshot captures the run's instrumentation behind the shared
// cross-engine API (see internal/stats).
func (s *Sim) Snapshot() stats.Snapshot {
	snap := stats.Snapshot{
		Engine: "busnet",
		// HOLBlocked doubles as holds_mem: a head-of-line block IS this
		// machine's memory-input hold (the blocked request sits at the
		// FIFO head waiting for its bank), published under both the
		// bus-specific and the cross-engine name.
		Counters: engine.Counters{
			Cycles:           s.stats.Cycles,
			Issued:           s.stats.Issued,
			Completed:        s.stats.Completed,
			Replies:          s.stats.Completed,
			Combines:         s.stats.Combines,
			CombineRejects:   s.wait.Rejections,
			BankOps:          s.stats.BankOps,
			BusOps:           s.stats.BusOps,
			HOLBlocked:       s.stats.HOLBlocked,
			SaturationCycles: s.stats.SaturationCycles,
			HoldsMem:         s.stats.HOLBlocked,
			WatchdogTrips:    s.stats.WatchdogTrips,
			Checkpoints:      s.stats.Checkpoints,
		}.Map(),
		Gauges: map[string]int64{
			"fifo_max":              s.fifoHW.Load(),
			"max_mem_queue":         int64(s.mem.MaxQueueDepth()),
			"saturation_max_streak": s.stats.SaturationMaxStreak,
		},
		Histograms: map[string]stats.HistogramSnapshot{
			"latency_cycles": s.lat.Snapshot(),
		},
	}
	if s.flt != nil {
		faults.AddCounters(&snap, s.flt, s.trk, s.mem.TotalDedupHits(), s.orphans, s.rec.Counters())
	}
	return snap
}

// InFlight counts requests in the machine.  Under a fault plan the
// tracker's ledger answers instead (see internal/network.Sim.InFlight).
func (s *Sim) InFlight() int {
	if s.trk != nil {
		return s.trk.Outstanding()
	}
	n := len(s.queue) + s.wait.Len() + len(s.meta)
	for _, p := range s.pending {
		if p != nil {
			n++
		}
	}
	return n
}

// Step advances one cycle: bank completions return (and decombine), the
// FIFO head dispatches, and one processor wins the bus.
func (s *Sim) Step() {
	s.step()

	// Saturation: the decoupling FIFO is full AND its head is blocked on a
	// busy bank — offered load has nowhere to go but the bus arbitration
	// holds, the bus machine's tree-saturation analogue.
	s.sat.Observe(len(s.queue) >= s.cfg.QueueCap && s.holBlockedNow())
	s.stats.SaturationCycles = s.sat.Cycles()
	s.stats.SaturationMaxStreak = s.sat.MaxStreak()
	if s.wd.Observe(s.cycle, s.InFlight(), s.progressSig()) {
		s.stats.WatchdogTrips++
	}
}

// holBlockedNow reports whether the FIFO head currently cannot dispatch.
func (s *Sim) holBlockedNow() bool {
	if len(s.queue) == 0 {
		return false
	}
	bank := s.mem.HomeOf(s.queue[0].req.Addr)
	return !s.mem.Module(bank).CanEnqueue()
}

// progressSig is the watchdog's monotone progress signature (see
// internal/network.Sim.progressSig): issues, bus transfers, bank feeds and
// service cycles, completions, and fault events all change it.
func (s *Sim) progressSig() int64 {
	sig := s.stats.Issued + s.stats.Completed + s.stats.BusOps +
		s.stats.BankOps + s.orphans
	for b := 0; b < s.cfg.Banks; b++ {
		sig += s.mem.Module(b).BusyCycles
	}
	if s.flt != nil {
		sig += s.flt.Injected()
	}
	return sig
}

// Stalled reports whether the progress watchdog has tripped.
func (s *Sim) Stalled() bool { return s.wd.Tripped() }

// StallReport formats the watchdog diagnostic with a queue snapshot.
func (s *Sim) StallReport() string {
	banks := 0
	for b := 0; b < s.cfg.Banks; b++ {
		banks += s.mem.Module(b).QueueLen()
	}
	detail := fmt.Sprintf("fifo=%d wait=%d banks=%d meta=%d", len(s.queue), s.wait.Len(), banks, len(s.meta))
	crashed := ""
	if s.flt != nil {
		crashed = s.flt.ActiveCrashes(s.wd.TripCycle())
	}
	return flow.StallReport("busnet", s.wd, s.InFlight(), crashed, detail)
}

func (s *Sim) step() {
	s.cycle++
	s.stats.Cycles++
	s.updateCrashState()
	if s.rec != nil && s.rec.CheckpointDue(s.cycle) {
		for b := 0; b < s.cfg.Banks; b++ {
			if !s.bankDead[b] {
				s.mem.Module(b).Checkpoint()
				s.stats.Checkpoints++
			}
		}
	}
	if s.flt != nil {
		for _, p := range s.trk.Expired(s.cycle) {
			s.retry[p.Proc] = append(s.retry[p.Proc],
				qmsg{req: p.Req, src: p.Proc, issue: p.IssueCycle, hot: p.Hot})
		}
		if s.adv {
			s.drainLimbo()
		}
	}

	// Bank completions: tick every bank (compute — bank-local), then
	// commit the completed replies in ascending bank order (metadata, drop
	// decisions, decombining and delivery all touch shared state).
	if s.pool != nil {
		s.pool.Run(s.tickFn)
		for b := 0; b < s.cfg.Banks; b++ {
			if s.tickBuf[b].ok {
				s.commitBank(b, s.tickBuf[b].rep)
			}
		}
	} else {
		for b := 0; b < s.cfg.Banks; b++ {
			if rep, ok := s.tickBank(b); ok {
				s.commitBank(b, rep)
			}
		}
	}

	if s.flt != nil && s.flt.Stalled(0, 0, s.cycle) {
		return // blackout: the bus and decoupling FIFO freeze
	}
	if s.busDead {
		return // crashed bus/FIFO: nothing moves until the restart
	}

	// Dispatch the FIFO head when its bank has input-queue room (with the
	// default BankQueueCap of 1: when the bank is idle).
	if len(s.queue) > 0 {
		head := s.queue[0]
		bank := s.mem.HomeOf(head.req.Addr)
		if s.bankDead != nil && s.bankDead[bank] {
			s.stats.HOLBlocked++ // dead bank: the head holds, like a busy one
		} else if s.mem.Module(bank).CanEnqueue() {
			copy(s.queue, s.queue[1:])
			s.queue = s.queue[:len(s.queue)-1]
			if s.flt != nil && (s.flt.DropForward(faults.Site(1, bank, 0), head.req.ID, head.req.Attempt) ||
				s.flt.DropLinkFwd(1, bank, s.cycle)) {
				// Request lost on the FIFO-to-bank link.
			} else if s.adv {
				if d := s.flt.ReorderDelay(faults.Site(1, bank, 0),
					head.req.ID, head.req.Attempt); d > 0 {
					s.fwdLimbo = append(s.fwdLimbo,
						busHeldFwd{release: s.cycle + d, bank: bank, m: head})
				} else {
					s.bankEnter(bank, head)
				}
			} else {
				s.meta[head.req.ID] = head
				s.mem.Module(bank).Enqueue(head.req)
				s.stats.BankOps++
			}
		} else {
			s.stats.HOLBlocked++
		}
	}

	// Bus arbitration: round-robin; one request enters the FIFO.
	for off := 0; off < s.cfg.Procs; off++ {
		p := (off + int(s.cycle)) % s.cfg.Procs
		if s.flt != nil && len(s.retry[p]) > 0 {
			// Retransmissions take the proc's bus slot, bypassing the
			// pending slot (a held fresh request may be waiting on
			// exactly the delivery this retransmit recovers).
			m := s.retry[p][0]
			if s.flt.DropForward(faults.Site(0, 0, p), m.req.ID, m.req.Attempt) ||
				s.flt.DropLinkFwd(0, 0, s.cycle) {
				s.retry[p] = s.retry[p][1:]
				break // the lost transfer still consumed the bus cycle
			}
			if s.enqueue(m) {
				s.retry[p] = s.retry[p][1:]
				break
			}
			continue
		}
		if s.pending[p] == nil {
			inj, ok := s.inj[p].Next(s.cycle)
			if !ok {
				continue
			}
			req := inj.Req
			if s.trk != nil {
				if req.Reps == nil && len(req.Srcs) == 1 {
					req = req.WithReps()
				}
				s.trk.Track(p, req, inj.Hot, s.cycle)
			}
			s.pending[p] = &qmsg{req: req, src: p, issue: s.cycle, hot: inj.Hot}
			s.stats.Issued++
		}
		m := s.pending[p]
		if s.trk != nil && m.req.Attempt == 0 && s.trk.HeldBack(p, m.req.Addr) {
			continue // hold: earlier same-address request undelivered
		}
		if s.flt != nil && (s.flt.DropForward(faults.Site(0, 0, p), m.req.ID, m.req.Attempt) ||
			s.flt.DropLinkFwd(0, 0, s.cycle)) {
			s.pending[p] = nil
			break // lost on the bus; the transfer consumed the cycle
		}
		if s.enqueue(*m) {
			s.pending[p] = nil
			break // the bus carries one request per cycle
		}
	}
}

// updateCrashState advances the crash masks one cycle, with edge detection:
// a rising edge flushes the component (its queued work is lost and reported
// to the recovery ledger), a falling edge is the restart.  It runs serially
// at the top of every cycle so the masks are stable before any sweep reads
// them, keeping parallel runs byte-identical.
func (s *Sim) updateCrashState() {
	if s.rec == nil {
		return
	}
	busNow := s.flt.SwitchCrashed(0, 0, s.cycle)
	switch {
	case busNow && !s.busDead:
		s.rec.NoteCrash()
		s.rec.NoteLost(s.trk, s.crashBus())
	case !busNow && s.busDead:
		s.rec.NoteRestore()
	}
	s.busDead = busNow
	for b := 0; b < s.cfg.Banks; b++ {
		now := s.flt.MemCrashed(b, s.cycle)
		switch {
		case now && !s.bankDead[b]:
			s.rec.NoteCrash()
			s.rec.NoteLost(s.trk, s.mem.Module(b).Crash())
		case !now && s.bankDead[b]:
			s.rec.NoteRestore()
		}
		s.bankDead[b] = now
	}
}

// crashBus flushes the bus fault domain: the decoupling FIFO, the wait
// buffer, and the reply metadata all vanish.  Requests already inside a
// bank keep executing, but with their metadata gone the replies surface as
// orphans at a dead FIFO — the retransmission path re-drives them through
// the bank reply caches, so exactly-once survives the flush.  The returned
// leaf ids are the operations whose reply path was lost.
func (s *Sim) crashBus() []word.ReqID {
	var lost []word.ReqID
	add := func(reps []core.Leaf, id word.ReqID) {
		if len(reps) == 0 {
			lost = append(lost, id)
			return
		}
		for _, l := range reps {
			lost = append(lost, l.ID)
		}
	}
	for i := range s.queue {
		add(s.queue[i].req.Reps, s.queue[i].req.ID)
	}
	for _, rec := range s.wait.Flush() {
		add(rec.reps2, rec.ID2)
	}
	for _, m := range s.meta {
		add(m.req.Reps, m.req.ID)
	}
	s.queue = s.queue[:0]
	clear(s.meta)
	return lost
}

// tickBank advances bank b one service cycle, returning a completed reply
// if one emerged.  Everything here is bank-local (the slowdown-window
// decision is a pure hash with atomic counters), so banks tick in parallel
// under Config.Workers.
func (s *Sim) tickBank(b int) (core.Reply, bool) {
	if s.bankDead != nil && s.bankDead[b] {
		return core.Reply{}, false // crashed bank serves nothing until restart
	}
	if s.flt != nil && s.flt.MemStalled(b, s.cycle) {
		return core.Reply{}, false // bank inside a slowdown window serves nothing
	}
	return s.mem.Module(b).Tick()
}

// commitBank resolves one completed reply against the shared machine state:
// metadata, the reply-drop decision, and delivery with decombining.
func (s *Sim) commitBank(b int, rep core.Reply) {
	m, found := s.meta[rep.ID]
	if !found {
		if s.flt != nil {
			s.orphans++ // losing copy of an original/retransmit pair
			return
		}
		panic(fmt.Sprintf("busnet: cycle %d, bank %d: reply id %d (%v) without metadata",
			s.cycle, b, rep.ID, rep))
	}
	delete(s.meta, rep.ID)
	if s.flt != nil && (s.flt.DropReply(faults.Site(2, 0, m.src), rep.ID, rep.Attempt) ||
		s.flt.DropLinkRev(2, 0, s.cycle)) {
		return // reply lost on the return path
	}
	if s.adv {
		// The return bus is the adversarial terminal link: stamp at the
		// bank's output latch (the last trusted hop), then the link may
		// defer, duplicate, or corrupt before deliverVerified checks it.
		rep = core.StampReply(rep)
		if d := s.flt.ReorderDelay(faults.Site(2, 0, m.src), rep.ID, rep.Attempt); d > 0 {
			s.revLimbo = append(s.revLimbo,
				busHeldRev{release: s.cycle + d, rep: rep, src: m.src, issue: m.issue})
			return
		}
		s.deliverVerified(rep, m.src, m.issue)
		return
	}
	s.deliver(rep, m.src, m.issue)
}

// bankEnter crosses the adversarial terminal link into a bank: the
// request is stamped at the FIFO head (combining is finished there, the
// last trusted hop), possibly corrupted on the wire, verified, and
// quarantined on mismatch; the retransmit machinery then repairs the loss
// exactly-once.  The duplicate draw comes after verification; with the
// classic BankQueueCap of 1 the second copy usually finds the bank full
// and vanishes harmlessly, so forward duplication mostly exercises the
// reply path's orphan accounting on deeper bank queues.
func (s *Sim) bankEnter(bank int, m qmsg) {
	m.req = core.StampRequest(m.req)
	wire := m.req
	site := faults.Site(1, bank, 0)
	if mask := s.flt.CorruptMask(site, m.req.ID, m.req.Attempt); mask != 0 {
		wire = core.CorruptRequest(wire, mask)
	}
	if !core.RequestOK(wire) {
		s.flt.NoteCorruptDropped()
		return // quarantined: equivalent to a detected drop on this link
	}
	s.meta[wire.ID] = m
	s.mem.Module(bank).Enqueue(wire)
	s.stats.BankOps++
	if s.flt.Duplicate(site, wire.ID, wire.Attempt) && s.mem.Module(bank).CanEnqueue() {
		// Deep-copied so the two queued copies share no Srcs/Reps storage.
		s.mem.Module(bank).Enqueue(wire.Clone())
		s.stats.BankOps++
	}
}

// deliverVerified is the processor side of the adversarial return bus:
// corrupt on the wire, verify the checksum, quarantine on mismatch (the
// processor retransmits and the bank reply cache answers), and deliver —
// twice when the link duplicates, with the tracker suppressing the
// second copy after decombining consumed the wait records.
func (s *Sim) deliverVerified(rep core.Reply, src int, issue int64) {
	site := faults.Site(2, 0, src)
	wire := rep
	if mask := s.flt.CorruptMask(site, wire.ID, wire.Attempt); mask != 0 {
		wire = core.CorruptReply(wire, mask)
	}
	if !core.ReplyOK(wire) {
		s.flt.NoteCorruptDropped()
		return // quarantined: the retransmit machinery re-drives the op
	}
	if s.flt.Duplicate(site, wire.ID, wire.Attempt) {
		// Deep-copied so the duplicate shares no Leaves storage with the
		// reply delivered below (decombining reads both).
		s.deliver(wire.Clone(), src, issue)
	}
	s.deliver(wire, src, issue)
}

// drainLimbo releases reordered messages whose deferral has elapsed.  It
// runs serially at the top of step — Validate rejects adversarial plans
// with Workers > 1 — so release order is defined by the serial sweep.  A
// forward release finding its bank crashed or full re-holds one cycle
// (the deferral bound is on the adversarial link, not on ordinary
// backpressure), and held messages are never re-reordered.
func (s *Sim) drainLimbo() {
	if len(s.fwdLimbo) > 0 {
		keep := s.fwdLimbo[:0]
		for _, h := range s.fwdLimbo {
			if h.release > s.cycle {
				keep = append(keep, h)
				continue
			}
			if (s.bankDead != nil && s.bankDead[h.bank]) || !s.mem.Module(h.bank).CanEnqueue() {
				h.release = s.cycle + 1
				keep = append(keep, h)
				continue
			}
			s.bankEnter(h.bank, h.m)
		}
		s.fwdLimbo = keep
	}
	if len(s.revLimbo) > 0 {
		keep := s.revLimbo[:0]
		for _, h := range s.revLimbo {
			if h.release > s.cycle {
				keep = append(keep, h)
				continue
			}
			s.deliverVerified(h.rep, h.src, h.issue)
		}
		s.revLimbo = keep
	}
}

// deliver routes a reply (and its decombined fan-out) back to processors.
func (s *Sim) deliver(rep core.Reply, src int, issue int64) {
	match := func(r brec) bool { return core.CanDecombine(r.Record, rep) }
	if rec, ok := s.wait.PopMatch(rep.ID, match); ok {
		r1, r2 := core.DecombineExact(rec.Record, rep)
		s.deliver(r1, src, issue)
		s.deliver(r2, rec.src2, rec.issue2)
		return
	}
	if s.trk != nil {
		if _, ok := s.trk.Deliver(rep.ID, s.cycle); !ok {
			return // duplicate of an already-delivered reply; suppressed
		}
	}
	s.rec.NoteDelivered(rep.ID)
	s.stats.Completed++
	s.stats.LatencySum += s.cycle - issue
	s.lat.Record(s.cycle - issue)
	s.inj[src].Deliver(rep, s.cycle)
}

// enqueue inserts a request into the FIFO, combining with the most recent
// same-address entry when possible (the M2.3 scan shared with the other
// engines via core.CombineAtTail).
func (s *Sim) enqueue(m qmsg) bool {
	tc, rejected, ok := core.CombineAtTail(s.queue, qmsgReq, m.req, s.pol, s.wait.CanPush)
	if rejected {
		s.wait.Rejections++
	}
	if ok {
		queued := &s.queue[tc.Index]
		first, second := *queued, m
		if tc.Swapped {
			first, second = m, *queued
		}
		if s.wait.Push(tc.Rec.ID1, brec{
			Record: tc.Rec,
			src2:   second.src,
			issue2: second.issue,
			hot2:   second.hot,
			reps2:  second.req.Reps,
		}) {
			*queued = qmsg{req: tc.Combined, src: first.src, issue: first.issue, hot: first.hot}
			s.stats.Combines++
			s.stats.BusOps++
			return true
		}
	}
	if len(s.queue) >= s.cfg.QueueCap {
		return false
	}
	s.queue = append(s.queue, m)
	s.fifoHW.Observe(int64(len(s.queue)))
	s.stats.BusOps++
	return true
}

// qmsgReq projects a queued message to its request for the shared scan.
func qmsgReq(m *qmsg) *core.Request { return &m.req }

// Run advances the machine, stopping early if the watchdog trips.
func (s *Sim) Run(cycles int) {
	if s.pool != nil {
		s.pool.Start()
		defer s.pool.Stop()
	}
	for i := 0; i < cycles; i++ {
		if s.wd.Tripped() {
			return
		}
		s.Step()
	}
}

// Drain runs until the machine is empty, up to the bound.  A watchdog trip
// ends the drain immediately.
func (s *Sim) Drain(maxCycles int) bool {
	if s.pool != nil {
		s.pool.Start()
		defer s.pool.Stop()
	}
	for i := 0; i < maxCycles; i++ {
		if s.wd.Tripped() {
			return false
		}
		s.Step()
		if s.InFlight() == 0 {
			return true
		}
	}
	return s.InFlight() == 0
}
