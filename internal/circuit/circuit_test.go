package circuit

import (
	"math/bits"
	"math/rand/v2"
	"testing"
)

func evalBinop(t *testing.T, w int, build func(b *Builder, x, y Bus) Bus, ref func(x, y uint64) uint64, trials int, seed uint64) Cost {
	t.Helper()
	b := NewBuilder()
	x := b.InputBus(w)
	y := b.InputBus(w)
	out := build(b, x, y)
	cost := b.CostOf(out)
	rng := rand.New(rand.NewPCG(seed, 77))
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<w - 1
	}
	for i := 0; i < trials; i++ {
		xv := rng.Uint64() & mask
		yv := rng.Uint64() & mask
		assign := make([]bool, b.Inputs())
		b.SetBusInputs(assign, x, xv)
		b.SetBusInputs(assign, y, yv)
		vals := b.Eval(assign)
		if got, want := BusValue(vals, out), ref(xv, yv)&mask; got != want {
			t.Fatalf("w=%d x=%#x y=%#x: got %#x, want %#x", w, xv, yv, got, want)
		}
	}
	return cost
}

func TestAdderCorrect(t *testing.T) {
	for _, w := range []int{1, 2, 8, 16, 64} {
		evalBinop(t, w, AddKoggeStone, func(x, y uint64) uint64 { return x + y }, 300, uint64(w))
		evalBinop(t, w, AddRipple, func(x, y uint64) uint64 { return x + y }, 300, uint64(w)+1)
	}
}

func TestAdderExhaustiveSmall(t *testing.T) {
	const w = 4
	b := NewBuilder()
	x := b.InputBus(w)
	y := b.InputBus(w)
	out := AddKoggeStone(b, x, y)
	for xv := uint64(0); xv < 16; xv++ {
		for yv := uint64(0); yv < 16; yv++ {
			assign := make([]bool, b.Inputs())
			b.SetBusInputs(assign, x, xv)
			b.SetBusInputs(assign, y, yv)
			if got := BusValue(b.Eval(assign), out); got != (xv+yv)&15 {
				t.Fatalf("%d+%d = %d", xv, yv, got)
			}
		}
	}
}

func TestMultiplierCorrect(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 64} {
		evalBinop(t, w, MulWallace, func(x, y uint64) uint64 { return x * y }, 200, uint64(w)+9)
	}
}

func TestNegate(t *testing.T) {
	const w = 16
	b := NewBuilder()
	x := b.InputBus(w)
	out := Negate(b, x)
	for _, v := range []uint64{0, 1, 7, 0xffff, 0x8000} {
		assign := make([]bool, b.Inputs())
		b.SetBusInputs(assign, x, v)
		if got := BusValue(b.Eval(assign), out); got != (-v)&0xffff {
			t.Fatalf("-%d = %d", v, got)
		}
	}
}

// TestNCFetchAdd is the paper's tractability condition (2) for
// fetch-and-add, measured: composing two mappings (one addition) takes
// O(w log w) gates at O(log w) depth.
func TestNCFetchAdd(t *testing.T) {
	for _, w := range []int{16, 32, 64} {
		b := NewBuilder()
		x := b.InputBus(w)
		y := b.InputBus(w)
		out := AddKoggeStone(b, x, y)
		c := b.CostOf(out)
		lg := bits.Len(uint(w - 1))
		t.Logf("w=%d: compose(fetch-add) size=%d depth=%d (lg w = %d)", w, c.Size, c.Depth, lg)
		if c.Depth > 2*lg+4 {
			t.Errorf("w=%d: adder depth %d not O(log w)", w, c.Depth)
		}
		if c.Size > 8*w*lg {
			t.Errorf("w=%d: adder size %d not O(w log w)", w, c.Size)
		}
		// And strictly shallower than the ripple baseline at scale.
		br := NewBuilder()
		xr := br.InputBus(w)
		yr := br.InputBus(w)
		cr := br.CostOf(AddRipple(br, xr, yr))
		if w >= 32 && c.Depth >= cr.Depth {
			t.Errorf("w=%d: Kogge–Stone depth %d not below ripple %d", w, c.Depth, cr.Depth)
		}
	}
}

// TestNCBool: the Boolean family composes in constant depth, linear size.
func TestNCBool(t *testing.T) {
	const w = 64
	b := NewBuilder()
	a1, b1 := b.InputBus(w), b.InputBus(w)
	a2, b2 := b.InputBus(w), b.InputBus(w)
	ca, cb := BoolComposeCircuit(b, a1, b1, a2, b2)
	c := b.CostOf(append(append(Bus{}, ca...), cb...))
	t.Logf("w=%d: compose(bool) size=%d depth=%d", w, c.Size, c.Depth)
	if c.Depth > 2 {
		t.Errorf("Boolean composition depth %d, want ≤ 2", c.Depth)
	}
	if c.Size > 3*w {
		t.Errorf("Boolean composition size %d, want ≤ 3w", c.Size)
	}
	// Semantics against the rmw mask algebra.
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 200; i++ {
		va1, vb1, va2, vb2 := rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()
		assign := make([]bool, b.Inputs())
		b.SetBusInputs(assign, a1, va1)
		b.SetBusInputs(assign, b1, vb1)
		b.SetBusInputs(assign, a2, va2)
		b.SetBusInputs(assign, b2, vb2)
		vals := b.Eval(assign)
		if got := BusValue(vals, ca); got != va1&va2 {
			t.Fatalf("A: got %#x, want %#x", got, va1&va2)
		}
		if got := BusValue(vals, cb); got != vb1&va2^vb2 {
			t.Fatalf("B: got %#x, want %#x", got, vb1&va2^vb2)
		}
	}
}

// TestNCAffine: the affine family composes with two Wallace multipliers
// and one log-depth addition — polynomial size, polylog depth.
func TestNCAffine(t *testing.T) {
	const w = 16 // multiplier circuits get large; 16 bits demonstrates the shape
	b := NewBuilder()
	a1, b1 := b.InputBus(w), b.InputBus(w)
	a2, b2 := b.InputBus(w), b.InputBus(w)
	ca, cb := AffineComposeCircuit(b, a1, b1, a2, b2)
	c := b.CostOf(append(append(Bus{}, ca...), cb...))
	lg := bits.Len(uint(w - 1))
	t.Logf("w=%d: compose(affine) size=%d depth=%d (lg w = %d)", w, c.Size, c.Depth, lg)
	if c.Depth > 10*lg {
		t.Errorf("affine composition depth %d not O(log w)", c.Depth)
	}
	if c.Size > 20*w*w {
		t.Errorf("affine composition size %d not O(w²)", c.Size)
	}
	// Semantics: (a₂a₁, a₂b₁+b₂) mod 2^w.
	rng := rand.New(rand.NewPCG(7, 9))
	mask := uint64(1)<<w - 1
	for i := 0; i < 100; i++ {
		va1, vb1 := rng.Uint64()&mask, rng.Uint64()&mask
		va2, vb2 := rng.Uint64()&mask, rng.Uint64()&mask
		assign := make([]bool, b.Inputs())
		b.SetBusInputs(assign, a1, va1)
		b.SetBusInputs(assign, b1, vb1)
		b.SetBusInputs(assign, a2, va2)
		b.SetBusInputs(assign, b2, vb2)
		vals := b.Eval(assign)
		if got := BusValue(vals, ca); got != va2*va1&mask {
			t.Fatalf("A: got %#x, want %#x", got, va2*va1&mask)
		}
		if got := BusValue(vals, cb); got != (va2*vb1+vb2)&mask {
			t.Fatalf("B: got %#x, want %#x", got, (va2*vb1+vb2)&mask)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	if b.And(x, b.False()) != b.False() {
		t.Error("x∧0 must fold to 0")
	}
	if b.Or(x, b.True()) != b.True() {
		t.Error("x∨1 must fold to 1")
	}
	if b.Xor(x, b.False()) != x {
		t.Error("x⊕0 must fold to x")
	}
	if b.Not(b.Not(x)) == x {
		t.Log("double negation not folded (acceptable)")
	}
	// Mux sanity.
	y := b.Input()
	m := b.Mux(b.True(), x, y)
	if m != x {
		// Mux(1,x,y) = Or(And(1,x), And(0,y)) = Or(x, 0) = x.
		t.Errorf("Mux(1,x,y) = %d, want %d", m, x)
	}
}

func TestCostOfSharedCone(t *testing.T) {
	// Shared subcircuits are counted once.
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	s := b.And(x, y)
	o1 := b.Xor(s, x)
	o2 := b.Or(s, y)
	c := b.CostOf(Bus{o1, o2})
	if c.Size != 3 {
		t.Errorf("size %d, want 3 (shared AND counted once)", c.Size)
	}
	if c.Depth != 2 {
		t.Errorf("depth %d, want 2", c.Depth)
	}
}

func TestLessThan(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.InputBus(w)
	y := b.InputBus(w)
	lt := LessThan(b, x, y)
	for xv := uint64(0); xv < 256; xv += 7 {
		for yv := uint64(0); yv < 256; yv += 11 {
			assign := make([]bool, b.Inputs())
			b.SetBusInputs(assign, x, xv)
			b.SetBusInputs(assign, y, yv)
			got := b.Eval(assign)[lt]
			if got != (xv < yv) {
				t.Fatalf("LessThan(%d, %d) = %v", xv, yv, got)
			}
		}
	}
}

// TestNCMinMax: the fetch-and-min/max composition circuit is O(w log w)
// size at O(log w) depth, like the adder.
func TestNCMinMax(t *testing.T) {
	const w = 64
	b := NewBuilder()
	x := b.InputBus(w)
	y := b.InputBus(w)
	mn, mx := MinMax(b, x, y)
	c := b.CostOf(append(append(Bus{}, mn...), mx...))
	lg := bits.Len(uint(w - 1))
	t.Logf("w=%d: compose(fetch-and-min/max) size=%d depth=%d (lg w = %d)", w, c.Size, c.Depth, lg)
	if c.Depth > 2*lg+6 {
		t.Errorf("min/max depth %d not O(log w)", c.Depth)
	}
	if c.Size > 10*w*lg {
		t.Errorf("min/max size %d not O(w log w)", c.Size)
	}
	// Semantics.
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 200; i++ {
		xv, yv := rng.Uint64(), rng.Uint64()
		assign := make([]bool, b.Inputs())
		b.SetBusInputs(assign, x, xv)
		b.SetBusInputs(assign, y, yv)
		vals := b.Eval(assign)
		wantMin, wantMax := xv, yv
		if yv < xv {
			wantMin, wantMax = yv, xv
		}
		if got := BusValue(vals, mn); got != wantMin {
			t.Fatalf("min(%d,%d) = %d", xv, yv, got)
		}
		if got := BusValue(vals, mx); got != wantMax {
			t.Fatalf("max(%d,%d) = %d", xv, yv, got)
		}
	}
}
