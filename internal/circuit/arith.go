package circuit

// Word-level arithmetic circuits for the Section 5 families.
//
// The Kogge–Stone adder computes its carries by a *parallel prefix* over
// (generate, propagate) pairs under the associative "carry operator"
//
//	(g, p) ∘ (g′, p′) = (g′ ∨ (p′ ∧ g), p′ ∧ p)
//
// — the same computation the combining tree of Section 6 performs, here
// realizing the paper's NC condition for fetch-and-add: composing two
// mappings is one w-bit addition in O(w log w) gates and O(log w) depth.

// gp is a (generate, propagate) pair.
type gp struct{ g, p Wire }

// carryOp is the associative carry operator: left is the less-significant
// segment.
func carryOp(b *Builder, left, right gp) gp {
	return gp{
		g: b.Or(right.g, b.And(right.p, left.g)),
		p: b.And(right.p, left.p),
	}
}

// AddKoggeStone returns x + y (mod 2^w) with log-depth carries.
func AddKoggeStone(b *Builder, x, y Bus) Bus {
	w := len(x)
	if len(y) != w {
		panic("circuit: bus width mismatch")
	}
	// Bitwise generate/propagate.
	pre := make([]gp, w)
	for i := 0; i < w; i++ {
		pre[i] = gp{g: b.And(x[i], y[i]), p: b.Xor(x[i], y[i])}
	}
	// Kogge–Stone prefix: after the pass with span s, pref[i] covers
	// bits [i−2s+1, i].
	pref := make([]gp, w)
	copy(pref, pre)
	for span := 1; span < w; span <<= 1 {
		next := make([]gp, w)
		copy(next, pref)
		for i := span; i < w; i++ {
			next[i] = carryOp(b, pref[i-span], pref[i])
		}
		pref = next
	}
	// carry into bit i is pref[i-1].g; sum = p ⊕ carry.
	out := make(Bus, w)
	out[0] = pre[0].p
	for i := 1; i < w; i++ {
		out[i] = b.Xor(pre[i].p, pref[i-1].g)
	}
	return out
}

// AddRipple returns x + y (mod 2^w) with a linear carry chain, the
// size-minimal baseline the tests compare against.
func AddRipple(b *Builder, x, y Bus) Bus {
	w := len(x)
	out := make(Bus, w)
	carry := b.False()
	for i := 0; i < w; i++ {
		s := b.Xor(x[i], y[i])
		out[i] = b.Xor(s, carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(s, carry))
	}
	return out
}

// Negate returns −x (two's complement).
func Negate(b *Builder, x Bus) Bus {
	inv := make(Bus, len(x))
	for i := range x {
		inv[i] = b.Not(x[i])
	}
	return AddKoggeStone(b, inv, b.ConstBus(1, len(x)))
}

// csa is a carry-save (3:2) compressor: returns sum and carry buses with
// x+y+z = sum + 2·carry, in constant depth.
func csa(b *Builder, x, y, z Bus) (Bus, Bus) {
	w := len(x)
	sum := make(Bus, w)
	carry := make(Bus, w)
	carry[0] = b.False()
	for i := 0; i < w; i++ {
		sum[i] = b.Xor(b.Xor(x[i], y[i]), z[i])
		if i+1 < w {
			maj := b.Or(b.Or(b.And(x[i], y[i]), b.And(x[i], z[i])), b.And(y[i], z[i]))
			carry[i+1] = maj
		}
	}
	return sum, carry
}

// MulWallace returns x·y (mod 2^w): partial products reduced by a
// 3:2-compressor tree (logarithmic depth) and a final Kogge–Stone add.
func MulWallace(b *Builder, x, y Bus) Bus {
	w := len(x)
	// Partial products: row i is (x ∧ y[i]) << i, truncated to w bits.
	rows := make([]Bus, 0, w)
	for i := 0; i < w; i++ {
		row := make(Bus, w)
		for j := 0; j < w; j++ {
			if j < i {
				row[j] = b.False()
			} else {
				row[j] = b.And(x[j-i], y[i])
			}
		}
		rows = append(rows, row)
	}
	// Reduce three rows to two until only two remain.
	for len(rows) > 2 {
		var next []Bus
		i := 0
		for ; i+2 < len(rows); i += 3 {
			s, c := csa(b, rows[i], rows[i+1], rows[i+2])
			next = append(next, s, c)
		}
		next = append(next, rows[i:]...)
		rows = next
	}
	if len(rows) == 1 {
		return rows[0]
	}
	return AddKoggeStone(b, rows[0], rows[1])
}

// BoolComposeCircuit builds the Section 5.3 composition
// (A, B) = (a₁∧a₂, (b₁∧a₂)⊕b₂) — constant depth, linear size.
func BoolComposeCircuit(b *Builder, a1, b1, a2, b2 Bus) (Bus, Bus) {
	w := len(a1)
	ca := make(Bus, w)
	cb := make(Bus, w)
	for i := 0; i < w; i++ {
		ca[i] = b.And(a1[i], a2[i])
		cb[i] = b.Xor(b.And(b1[i], a2[i]), b2[i])
	}
	return ca, cb
}

// BoolApplyCircuit builds (x∧a)⊕b — depth 2.
func BoolApplyCircuit(b *Builder, x, a, bb Bus) Bus {
	w := len(x)
	out := make(Bus, w)
	for i := 0; i < w; i++ {
		out[i] = b.Xor(b.And(x[i], a[i]), bb[i])
	}
	return out
}

// AffineComposeCircuit builds the Section 5.4 composition
// (a₂·a₁, a₂·b₁ + b₂): "two multiplications and one addition".
func AffineComposeCircuit(b *Builder, a1, b1, a2, b2 Bus) (Bus, Bus) {
	return MulWallace(b, a2, a1), AddKoggeStone(b, MulWallace(b, a2, b1), b2)
}

// LessThan returns a single wire that is 1 when x < y as unsigned
// integers, computed from the borrow of x − y in log depth: reuse the
// carry prefix on (generate, propagate) pairs of the subtraction.
func LessThan(b *Builder, x, y Bus) Wire {
	w := len(x)
	// Compute the borrow chain of x − y:
	//   borrow_{i+1} = (¬x_i ∧ y_i) ∨ ((¬x_i ∨ y_i) ∧ borrow_i)
	// which is the carry recurrence with generate g_i = ¬x_i ∧ y_i and
	// propagate p_i = ¬x_i ∨ y_i, so the same prefix network applies;
	// x < y exactly when the final borrow is 1.
	pre := make([]gp, w)
	for i := 0; i < w; i++ {
		nx := b.Not(x[i])
		pre[i] = gp{g: b.And(nx, y[i]), p: b.Or(nx, y[i])}
	}
	pref := make([]gp, w)
	copy(pref, pre)
	for span := 1; span < w; span <<= 1 {
		next := make([]gp, w)
		copy(next, pref)
		for i := span; i < w; i++ {
			next[i] = carryOp(b, pref[i-span], pref[i])
		}
		pref = next
	}
	return pref[w-1].g
}

// MinMax returns (min, max) of x and y as unsigned integers: one log-depth
// comparison plus a mux per bit — the composition circuit for the
// fetch-and-min and fetch-and-max families of Section 5.2.
func MinMax(b *Builder, x, y Bus) (Bus, Bus) {
	w := len(x)
	xLess := LessThan(b, x, y)
	minOut := make(Bus, w)
	maxOut := make(Bus, w)
	for i := 0; i < w; i++ {
		minOut[i] = b.Mux(xLess, x[i], y[i])
		maxOut[i] = b.Mux(xLess, y[i], x[i])
	}
	return minOut, maxOut
}
