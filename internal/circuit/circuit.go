// Package circuit makes Section 5's formal tractability condition (2)
// concrete: "the computation of φ(f∘g) from φ(f) and φ(g), and the
// computation of f(a) from φ(f) and a are in the class NC; i.e., they can
// be computed by circuits of small size and depth, where small means size
// w^O(1) and depth log^O(1) w."
//
// It provides a small combinational-circuit builder (AND/OR/XOR/NOT gates
// over wires), word-level buses, and the arithmetic the mapping families
// need: a Kogge–Stone adder whose carry chain is literally a parallel
// prefix over (generate, propagate) pairs — the same computation the
// combining tree performs in Section 6 — and a Wallace-tree multiplier.
// The tests measure actual gate counts and depths for each family's
// composition circuit and check the NC bounds quantitatively.
package circuit

import "fmt"

// Wire identifies one signal in a Builder.
type Wire int32

// gateKind discriminates gate types.
type gateKind uint8

const (
	gConst0 gateKind = iota + 1
	gConst1
	gInput
	gNot
	gAnd
	gOr
	gXor
)

type gate struct {
	kind gateKind
	a, b Wire
}

// Builder accumulates a combinational circuit.
type Builder struct {
	gates  []gate
	inputs []Wire
}

// NewBuilder returns an empty circuit with the two constants predefined.
func NewBuilder() *Builder {
	b := &Builder{}
	b.gates = append(b.gates, gate{kind: gConst0}, gate{kind: gConst1})
	return b
}

// False and True are the constant wires.
func (b *Builder) False() Wire { return 0 }

// True is the constant-1 wire.
func (b *Builder) True() Wire { return 1 }

// Input adds a primary input.
func (b *Builder) Input() Wire {
	w := b.add(gate{kind: gInput})
	b.inputs = append(b.inputs, w)
	return w
}

// Inputs reports the number of primary inputs.
func (b *Builder) Inputs() int { return len(b.inputs) }

func (b *Builder) add(g gate) Wire {
	b.gates = append(b.gates, g)
	return Wire(len(b.gates) - 1)
}

// Not returns ¬a.
func (b *Builder) Not(a Wire) Wire {
	switch a {
	case 0:
		return 1
	case 1:
		return 0
	}
	return b.add(gate{kind: gNot, a: a})
}

// And returns a∧c with constant folding.
func (b *Builder) And(a, c Wire) Wire {
	if a == 0 || c == 0 {
		return 0
	}
	if a == 1 {
		return c
	}
	if c == 1 {
		return a
	}
	return b.add(gate{kind: gAnd, a: a, b: c})
}

// Or returns a∨c with constant folding.
func (b *Builder) Or(a, c Wire) Wire {
	if a == 1 || c == 1 {
		return 1
	}
	if a == 0 {
		return c
	}
	if c == 0 {
		return a
	}
	return b.add(gate{kind: gOr, a: a, b: c})
}

// Xor returns a⊕c with constant folding.
func (b *Builder) Xor(a, c Wire) Wire {
	if a == 0 {
		return c
	}
	if c == 0 {
		return a
	}
	if a == 1 {
		return b.Not(c)
	}
	if c == 1 {
		return b.Not(a)
	}
	return b.add(gate{kind: gXor, a: a, b: c})
}

// Mux returns sel ? t : f.
func (b *Builder) Mux(sel, t, f Wire) Wire {
	return b.Or(b.And(sel, t), b.And(b.Not(sel), f))
}

// Eval computes all wire values for an input assignment (in Input order).
func (b *Builder) Eval(inputs []bool) []bool {
	if len(inputs) != len(b.inputs) {
		panic(fmt.Sprintf("circuit: %d inputs supplied, %d declared", len(inputs), len(b.inputs)))
	}
	vals := make([]bool, len(b.gates))
	in := 0
	for i, g := range b.gates {
		switch g.kind {
		case gConst0:
			vals[i] = false
		case gConst1:
			vals[i] = true
		case gInput:
			vals[i] = inputs[in]
			in++
		case gNot:
			vals[i] = !vals[g.a]
		case gAnd:
			vals[i] = vals[g.a] && vals[g.b]
		case gOr:
			vals[i] = vals[g.a] || vals[g.b]
		case gXor:
			vals[i] = vals[g.a] != vals[g.b]
		}
	}
	return vals
}

// Cost is the measured complexity of a set of outputs.
type Cost struct {
	// Size counts AND/OR/XOR/NOT gates in the cone of the outputs.
	Size int
	// Depth is the longest gate path from any input/constant.
	Depth int
}

// CostOf measures size and depth of the cone feeding the outputs.
func (b *Builder) CostOf(outs []Wire) Cost {
	depth := make([]int, len(b.gates))
	seen := make([]bool, len(b.gates))
	size := 0
	var visit func(w Wire) int
	visit = func(w Wire) int {
		if seen[w] {
			return depth[w]
		}
		seen[w] = true
		g := b.gates[w]
		d := 0
		switch g.kind {
		case gConst0, gConst1, gInput:
			d = 0
		case gNot:
			d = visit(g.a) + 1
			size++
		default:
			da, db := visit(g.a), visit(g.b)
			d = max(da, db) + 1
			size++
		}
		depth[w] = d
		return d
	}
	maxD := 0
	for _, o := range outs {
		if d := visit(o); d > maxD {
			maxD = d
		}
	}
	return Cost{Size: size, Depth: maxD}
}

// Bus is a little-endian group of wires forming a machine word.
type Bus []Wire

// InputBus declares w fresh input bits.
func (b *Builder) InputBus(w int) Bus {
	bus := make(Bus, w)
	for i := range bus {
		bus[i] = b.Input()
	}
	return bus
}

// ConstBus encodes a constant.
func (b *Builder) ConstBus(v uint64, w int) Bus {
	bus := make(Bus, w)
	for i := range bus {
		if v>>i&1 == 1 {
			bus[i] = b.True()
		} else {
			bus[i] = b.False()
		}
	}
	return bus
}

// BusValue decodes a bus from an evaluation.
func BusValue(vals []bool, bus Bus) uint64 {
	var v uint64
	for i, w := range bus {
		if vals[w] {
			v |= 1 << i
		}
	}
	return v
}

// SetBusInputs writes a value into an input assignment slice.
func (b *Builder) SetBusInputs(assign []bool, bus Bus, v uint64) {
	// Map wire→input index.
	idx := make(map[Wire]int, len(b.inputs))
	for i, w := range b.inputs {
		idx[w] = i
	}
	for i, w := range bus {
		assign[idx[w]] = v>>i&1 == 1
	}
}
