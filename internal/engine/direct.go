package engine

import "fmt"

// Direct is the link structure of a direct-connection machine: every node
// hosts a processor, a combining router, and a memory module, and links
// run between neighbors.  A Direct value supplies only pure arithmetic and
// must satisfy the retrace invariant the paper's combining scheme depends
// on — following RevLink from the destination leads back to the source
// through exactly the nodes FwdLink visited, in reverse, so every wait
// buffer that recorded a combine on the way out sees the reply on the way
// back (TestDirectRetrace checks this exhaustively for every wiring).
type Direct interface {
	Name() string
	Nodes() int
	// Degree is the number of outgoing links per node; queues are indexed
	// by link in [0, Degree).
	Degree() int
	// Neighbor returns the node at the far end of `link` out of `node`.
	Neighbor(node, link int) int
	// FwdLink picks the outgoing link at cur for a request homing on node
	// `home`, or -1 when cur == home (the request has arrived).
	FwdLink(cur, home int) int
	// RevLink picks the outgoing link at cur for a reply returning to the
	// issuing node src; it must retrace the forward route.
	RevLink(cur, src int) int
	// Validate checks the wiring parameters; constructors never panic so
	// that invalid command-line parameters surface through Config.Validate.
	Validate() error
}

// Cube is the binary-hypercube wiring: node addresses are bit strings,
// link d flips bit d, and routes correct the lowest differing bit first
// (forward) or the highest first (reverse) — two disjoint digit orders
// over the same differing-bit set, so the reverse path is the forward
// path reversed.
type Cube struct{ nodes, dims int }

// CubeOf returns the hypercube wiring on nodes = 2^d nodes.  Parameters
// are checked by Validate, not here.
func CubeOf(nodes int) Cube {
	d := 0
	for m := 1; m < nodes; m <<= 1 {
		d++
	}
	return Cube{nodes: nodes, dims: d}
}

func (c Cube) Name() string { return "hypercube" }
func (c Cube) Nodes() int   { return c.nodes }
func (c Cube) Degree() int  { return c.dims }

func (c Cube) Validate() error {
	if c.nodes < 2 || c.nodes&(c.nodes-1) != 0 {
		return fmt.Errorf("hypercube: Nodes must be a power of two >= 2, got %d", c.nodes)
	}
	return nil
}

func (c Cube) Neighbor(node, link int) int { return node ^ (1 << link) }

func (c Cube) FwdLink(cur, home int) int {
	diff := cur ^ home
	if diff == 0 {
		return -1
	}
	d := 0
	for diff&1 == 0 {
		diff >>= 1
		d++
	}
	return d
}

func (c Cube) RevLink(cur, src int) int {
	diff := cur ^ src
	d := -1
	for diff != 0 {
		diff >>= 1
		d++
	}
	return d
}

// Torus is a D-dimensional wraparound mesh: node addresses are mixed-radix
// coordinate vectors over dims (dimension 0 least significant), and links
// come in +/- pairs per dimension (link 2d steps coordinate d up, 2d+1
// down, modulo the dimension size).  Forward routes correct dimensions in
// ascending order taking the shorter way around each ring (ties break
// toward +); reverse routes correct in descending order with ties toward
// -.  Within one ring the shorter direction back is the opposite of the
// shorter direction out (and on a tie the rules pick opposite links), so
// each ring is retraced hop for hop and the dimension orders mirror —
// the retrace invariant holds.
type Torus struct{ dims []int }

// TorusOf returns the torus wiring with the given per-dimension sizes.
// Parameters are checked by Validate, not here.
func TorusOf(dims ...int) Torus {
	d := make([]int, len(dims))
	copy(d, dims)
	return Torus{dims: d}
}

// SquareTorusOf splits a node count into the standard sweep shape: a
// near-square two-dimensional torus when nodes is a power of two with both
// sides >= 2, and a single ring otherwise.  The soaks and benches use it
// when only a node count is given.
func SquareTorusOf(nodes int) Torus {
	if nodes >= 4 && nodes&(nodes-1) == 0 {
		k := 0
		for m := 1; m < nodes; m <<= 1 {
			k++
		}
		return TorusOf(1<<(k-k/2), 1<<(k/2))
	}
	return TorusOf(nodes)
}

func (t Torus) Name() string { return "torus" }

func (t Torus) Nodes() int {
	n := 1
	for _, d := range t.dims {
		n *= d
	}
	if len(t.dims) == 0 {
		return 0
	}
	return n
}

func (t Torus) Degree() int { return 2 * len(t.dims) }

func (t Torus) Validate() error {
	if len(t.dims) == 0 {
		return fmt.Errorf("torus: need at least one dimension")
	}
	for i, d := range t.dims {
		if d < 2 {
			return fmt.Errorf("torus: dimension %d must have size >= 2, got %d", i, d)
		}
	}
	return nil
}

func (t Torus) Neighbor(node, link int) int {
	dim, down := link/2, link%2 == 1
	stride := 1
	for i := 0; i < dim; i++ {
		stride *= t.dims[i]
	}
	size := t.dims[dim]
	c := (node / stride) % size
	nc := (c + 1) % size
	if down {
		nc = (c + size - 1) % size
	}
	return node + (nc-c)*stride
}

func (t Torus) FwdLink(cur, home int) int {
	for dim, stride := 0, 1; dim < len(t.dims); dim++ {
		size := t.dims[dim]
		cc, hc := (cur/stride)%size, (home/stride)%size
		if cc != hc {
			if (hc-cc+size)%size <= (cc-hc+size)%size {
				return 2 * dim
			}
			return 2*dim + 1
		}
		stride *= size
	}
	return -1
}

func (t Torus) RevLink(cur, src int) int {
	stride := 1
	for i := 0; i+1 < len(t.dims); i++ {
		stride *= t.dims[i]
	}
	for dim := len(t.dims) - 1; dim >= 0; dim-- {
		size := t.dims[dim]
		cc, sc := (cur/stride)%size, (src/stride)%size
		if cc != sc {
			if (cc-sc+size)%size <= (sc-cc+size)%size {
				return 2*dim + 1
			}
			return 2 * dim
		}
		if dim > 0 {
			stride /= t.dims[dim-1]
		}
	}
	return -1
}
