package engine

import "fmt"

// Staged is the wiring of a multistage interconnection network built from
// k = log_radix(procs) columns of radix×radix combining switches.  Lines
// are numbered 0..procs-1 at every column boundary; the switch holding
// line L is L/radix and the port is L%radix.  A Staged value supplies only
// pure arithmetic — no state — and must satisfy:
//
//   - LineProc inverts ProcLine, and PrevLine(s+1, ·) inverts NextLine(s, ·).
//   - Destination-tag routing terminates at the destination: entering on
//     line ProcLine(p) and leaving each stage s on port OutPort(s, dst) of
//     the current switch ends, after the last stage, on output line dst —
//     which is wired straight to memory module dst.  (TestStagedRouting
//     checks this exhaustively for every wiring.)
//
// The reverse path needs no routing function: forward messages record the
// input port taken at each stage, replies pop those ports, and PrevLine
// carries them back across the inter-stage permutations.
type Staged interface {
	Name() string
	Procs() int
	Radix() int
	Stages() int
	// ProcLine maps processor p to its stage-0 input line; LineProc is the
	// inverse (which processor a stage-0 reply on this line belongs to).
	ProcLine(proc int) int
	LineProc(line int) int
	// NextLine maps output line `line` of stage `stage` to the input line
	// it is wired to at stage+1; PrevLine(stage, line) is the inverse
	// (which stage-1 output line feeds input line `line` of `stage`).
	NextLine(stage, line int) int
	PrevLine(stage, line int) int
	// OutPort selects the output port at `stage` for a request homing on
	// memory module dst (destination-tag routing).
	OutPort(stage, dst int) int
	// Validate checks the wiring parameters; constructors never panic so
	// that invalid command-line parameters surface through Config.Validate.
	Validate() error
}

// stagedBase holds the parameters and digit arithmetic shared by the
// staged wirings: procs = radix^stages, and line digits in base radix.
type stagedBase struct {
	procs, radix, stages int
}

func stagedParams(procs, radix int) stagedBase {
	k := 0
	if radix >= 2 {
		for m := radix; m < procs; m *= radix {
			k++
		}
		k++ // procs == radix^k when valid; Validate rejects the rest
	}
	return stagedBase{procs: procs, radix: radix, stages: k}
}

func (b stagedBase) Procs() int  { return b.procs }
func (b stagedBase) Radix() int  { return b.radix }
func (b stagedBase) Stages() int { return b.stages }

func (b stagedBase) validate(name string) error {
	if b.radix < 2 {
		return fmt.Errorf("%s: Radix must be >= 2, got %d", name, b.radix)
	}
	if !IsPowerOf(b.procs, b.radix) {
		return fmt.Errorf("%s: Procs must be a positive power of Radix %d, got %d", name, b.radix, b.procs)
	}
	return nil
}

// digit returns base-radix digit i of line; setDigit0 replaces digit 0.
func (b stagedBase) digit(line, i int) int {
	for ; i > 0; i-- {
		line /= b.radix
	}
	return line % b.radix
}

// swapDigits exchanges base-radix digits 0 and i of line.
func (b stagedBase) swapDigits(line, i int) int {
	stride := 1
	for j := 0; j < i; j++ {
		stride *= b.radix
	}
	d0 := line % b.radix
	di := (line / stride) % b.radix
	return line + (di - d0) + (d0-di)*stride
}

// OutPort is the destination-tag rule shared by omega and the butterfly:
// stage s consumes digit k-1-s of the destination module.
func (b stagedBase) OutPort(stage, dst int) int {
	return b.digit(dst, b.stages-1-stage)
}

// Omega is the paper's wiring: a perfect shuffle (rotate the base-radix
// digits left by one) before every column, including processor placement.
type Omega struct{ stagedBase }

// OmegaOf returns the omega wiring for procs processors and radix-wide
// switches.  Parameters are checked by Validate, not here.
func OmegaOf(procs, radix int) Omega { return Omega{stagedParams(procs, radix)} }

func (o Omega) Name() string          { return "omega" }
func (o Omega) Validate() error       { return o.validate("omega") }
func (o Omega) ProcLine(proc int) int { return o.shuffle(proc) }
func (o Omega) LineProc(line int) int { return o.unshuffle(line) }

// NextLine is the shuffle at every inter-stage boundary; PrevLine the
// inverse shuffle.  Both are stage-independent for omega.
func (o Omega) NextLine(_, line int) int { return o.shuffle(line) }
func (o Omega) PrevLine(_, line int) int { return o.unshuffle(line) }

func (o Omega) shuffle(line int) int {
	return (line*o.radix)%o.procs + line*o.radix/o.procs
}

func (o Omega) unshuffle(line int) int {
	return line/o.radix + (line%o.radix)*(o.procs/o.radix)
}

// FatTree is the k-ary butterfly wiring — the channel graph a fat-tree
// (folded Clos) presents to messages climbing to their root switch and
// descending to memory, unfolded into k one-directional columns so the
// staged engine can run it unchanged.  Processors enter on their own line
// (identity placement); the permutation after stage s swaps base-radix
// digit 0 with digit k-1-s, parking the destination digit that stage s
// just resolved in its final position.
type FatTree struct{ stagedBase }

// FatTreeOf returns the butterfly/fat-tree wiring for procs processors
// and radix-wide switches.  Parameters are checked by Validate, not here.
func FatTreeOf(procs, radix int) FatTree { return FatTree{stagedParams(procs, radix)} }

func (f FatTree) Name() string          { return "fattree" }
func (f FatTree) Validate() error       { return f.validate("fattree") }
func (f FatTree) ProcLine(proc int) int { return proc }
func (f FatTree) LineProc(line int) int { return line }

// NextLine applies the stage-s butterfly exchange; each digit swap is its
// own inverse, so PrevLine(s, ·) undoes NextLine(s-1, ·).
func (f FatTree) NextLine(stage, line int) int {
	return f.swapDigits(line, f.stages-1-stage)
}

func (f FatTree) PrevLine(stage, line int) int {
	return f.swapDigits(line, f.stages-stage)
}

// RevGroups partitions the switches of stage >= 1 into the reverse-sweep
// conflict groups: switches sharing any previous-stage switch are grouped,
// because a reply leaving either can land credits on the same upstream
// reverse queues.  Groups are derived from the wiring by union-find, so
// any Staged implementation gets a correct parallel partition for free;
// for omega this reproduces the radix-contiguous groups DESIGN.md §6
// derives analytically.  Each group's members are ascending, and groups
// are ordered by smallest member — a deterministic shape the parallel
// stepper splits across workers.
func RevGroups(t Staged, stage int) [][]int {
	return stageGroups(t, func(line int) int { return t.PrevLine(stage, line) })
}

// FwdGroups partitions the switches of stage < k-1 into the forward-sweep
// conflict groups: switches sharing any next-stage switch, whose input
// queues both sweeps' tryAccept calls contend on.
func FwdGroups(t Staged, stage int) [][]int {
	return stageGroups(t, func(line int) int { return t.NextLine(stage, line) })
}

func stageGroups(t Staged, wire func(line int) int) [][]int {
	ns := t.Procs() / t.Radix()
	parent := make([]int, ns)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Switches wired to the same far-side switch join one group.
	farOwner := make(map[int]int, ns)
	for idx := 0; idx < ns; idx++ {
		for p := 0; p < t.Radix(); p++ {
			far := wire(idx*t.Radix()+p) / t.Radix()
			if owner, ok := farOwner[far]; ok {
				parent[find(idx)] = find(owner)
			} else {
				farOwner[far] = idx
			}
		}
	}
	members := make(map[int][]int, ns)
	order := make([]int, 0, ns)
	for idx := 0; idx < ns; idx++ {
		r := find(idx)
		if len(members[r]) == 0 {
			order = append(order, r)
		}
		members[r] = append(members[r], idx)
	}
	groups := make([][]int, 0, len(order))
	for _, r := range order {
		groups = append(groups, members[r])
	}
	return groups
}
