package engine

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func stagedUnderTest() []Staged {
	return []Staged{
		OmegaOf(4, 2), OmegaOf(8, 2), OmegaOf(64, 2), OmegaOf(16, 4), OmegaOf(64, 8),
		FatTreeOf(4, 2), FatTreeOf(8, 2), FatTreeOf(64, 2), FatTreeOf(16, 4), FatTreeOf(64, 8),
	}
}

// TestStagedInverses: LineProc undoes ProcLine, and PrevLine(s+1) undoes
// NextLine(s), for every line of every wiring.
func TestStagedInverses(t *testing.T) {
	for _, topo := range stagedUnderTest() {
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s(%d,%d): %v", topo.Name(), topo.Procs(), topo.Radix(), err)
		}
		n, k := topo.Procs(), topo.Stages()
		for line := 0; line < n; line++ {
			if got := topo.LineProc(topo.ProcLine(line)); got != line {
				t.Fatalf("%s(%d,%d): LineProc(ProcLine(%d)) = %d", topo.Name(), n, topo.Radix(), line, got)
			}
			for s := 0; s+1 < k; s++ {
				if got := topo.PrevLine(s+1, topo.NextLine(s, line)); got != line {
					t.Fatalf("%s(%d,%d): PrevLine(%d, NextLine(%d, %d)) = %d",
						topo.Name(), n, topo.Radix(), s+1, s, line, got)
				}
			}
		}
	}
}

// TestStagedRouting: destination-tag routing from every processor to every
// memory module terminates on the output line equal to the module number —
// the invariant the engine's memory attachment depends on.
func TestStagedRouting(t *testing.T) {
	for _, topo := range stagedUnderTest() {
		n, r, k := topo.Procs(), topo.Radix(), topo.Stages()
		for proc := 0; proc < n; proc++ {
			for dst := 0; dst < n; dst++ {
				line := topo.ProcLine(proc)
				for s := 0; s < k; s++ {
					line = (line/r)*r + topo.OutPort(s, dst)
					if s+1 < k {
						line = topo.NextLine(s, line)
					}
				}
				if line != dst {
					t.Fatalf("%s(%d,%d): proc %d routing to %d lands on line %d",
						topo.Name(), n, r, proc, dst, line)
				}
			}
		}
	}
}

// TestStagedGroupsPartition: the derived conflict groups partition the
// switch set, and each group is closed under "shares a far-side switch" —
// two switches wired to a common neighbor are always grouped together.
func TestStagedGroupsPartition(t *testing.T) {
	for _, topo := range stagedUnderTest() {
		n, r, k := topo.Procs(), topo.Radix(), topo.Stages()
		ns := n / r
		check := func(kind string, stage int, groups [][]int, far func(line int) int) {
			seen := make([]int, ns)
			for _, g := range groups {
				for _, idx := range g {
					seen[idx]++
				}
				if !sort.IntsAreSorted(g) {
					t.Fatalf("%s(%d,%d) %s stage %d: group %v not ascending", topo.Name(), n, r, kind, stage, g)
				}
			}
			for idx, c := range seen {
				if c != 1 {
					t.Fatalf("%s(%d,%d) %s stage %d: switch %d in %d groups", topo.Name(), n, r, kind, stage, idx, c)
				}
			}
			// Closure: a far-side switch must be reached from only one group.
			owner := make(map[int]int)
			for gi, g := range groups {
				for _, idx := range g {
					for p := 0; p < r; p++ {
						f := far(idx*r+p) / r
						if prev, ok := owner[f]; ok && prev != gi {
							t.Fatalf("%s(%d,%d) %s stage %d: far switch %d reached from groups %d and %d",
								topo.Name(), n, r, kind, stage, f, prev, gi)
						}
						owner[f] = gi
					}
				}
			}
		}
		for s := 0; s+1 < k; s++ {
			s := s
			check("fwd", s, FwdGroups(topo, s), func(line int) int { return topo.NextLine(s, line) })
		}
		for s := 1; s < k; s++ {
			s := s
			check("rev", s, RevGroups(topo, s), func(line int) int { return topo.PrevLine(s, line) })
		}
	}
}

// TestOmegaGroupsMatchAnalytic: on the omega wiring the generic derivation
// reproduces the analytic shapes DESIGN.md §6 derives — radix contiguous
// switches for the reverse sweep, radix switches congruent mod ns/radix
// for the forward sweep — so porting the parallel stepper onto the generic
// groups preserves its partition exactly.
func TestOmegaGroupsMatchAnalytic(t *testing.T) {
	for _, tc := range []struct{ n, r int }{{8, 2}, {64, 2}, {16, 4}, {64, 8}} {
		topo := OmegaOf(tc.n, tc.r)
		ns := tc.n / tc.r
		for s := 1; s < topo.Stages(); s++ {
			want := make([][]int, 0, ns/tc.r)
			for g := 0; g < ns/tc.r; g++ {
				m := make([]int, tc.r)
				for j := range m {
					m[j] = g*tc.r + j
				}
				want = append(want, m)
			}
			if got := RevGroups(topo, s); !reflect.DeepEqual(got, want) {
				t.Fatalf("omega(%d,%d) rev stage %d: got %v want %v", tc.n, tc.r, s, got, want)
			}
		}
		stride := ns / tc.r
		for s := 0; s+1 < topo.Stages(); s++ {
			want := make([][]int, 0, stride)
			for rem := 0; rem < stride; rem++ {
				m := make([]int, tc.r)
				for j := range m {
					m[j] = rem + j*stride
				}
				sort.Ints(m)
				want = append(want, m)
			}
			// Generic groups are ordered by smallest member; the analytic
			// strided groups already are (rem ascending).
			if got := FwdGroups(topo, s); !reflect.DeepEqual(got, want) {
				t.Fatalf("omega(%d,%d) fwd stage %d: got %v want %v", tc.n, tc.r, s, got, want)
			}
		}
	}
}

// TestFatTreeDiffersFromOmega guards against the butterfly degenerating
// into a relabeled omega: for k >= 3 the inter-stage permutations differ,
// and processor placement differs at every size.
func TestFatTreeDiffersFromOmega(t *testing.T) {
	o, f := OmegaOf(8, 2), FatTreeOf(8, 2)
	differs := false
	for line := 0; line < 8; line++ {
		if o.NextLine(0, line) != f.NextLine(0, line) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("fattree(8,2) stage-0 wiring identical to omega")
	}
	if o.ProcLine(1) == f.ProcLine(1) {
		t.Fatal("fattree processor placement identical to omega")
	}
}

func directUnderTest() []Direct {
	return []Direct{
		CubeOf(2), CubeOf(8), CubeOf(64),
		TorusOf(4), TorusOf(2, 2), TorusOf(4, 4), TorusOf(8, 8), TorusOf(2, 3, 5), TorusOf(3, 3, 3),
	}
}

// TestDirectRetrace: for every (src, home) pair, following FwdLink reaches
// home within Nodes hops, and following RevLink back visits exactly the
// forward path reversed — the invariant decombining at intermediate wait
// buffers requires.
func TestDirectRetrace(t *testing.T) {
	for _, topo := range directUnderTest() {
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		n := topo.Nodes()
		for src := 0; src < n; src++ {
			for home := 0; home < n; home++ {
				fwd := []int{src}
				for cur := src; cur != home; {
					link := topo.FwdLink(cur, home)
					if link < 0 || link >= topo.Degree() {
						t.Fatalf("%s: FwdLink(%d,%d) = %d out of range", topo.Name(), cur, home, link)
					}
					cur = topo.Neighbor(cur, link)
					fwd = append(fwd, cur)
					if len(fwd) > n {
						t.Fatalf("%s: route %d->%d does not terminate", topo.Name(), src, home)
					}
				}
				if topo.FwdLink(home, home) != -1 {
					t.Fatalf("%s: FwdLink at home != -1", topo.Name())
				}
				rev := []int{home}
				for cur := home; cur != src; {
					link := topo.RevLink(cur, src)
					if link < 0 || link >= topo.Degree() {
						t.Fatalf("%s: RevLink(%d,%d) = %d out of range", topo.Name(), cur, src, link)
					}
					cur = topo.Neighbor(cur, link)
					rev = append(rev, cur)
					if len(rev) > n {
						t.Fatalf("%s: reverse route %d->%d does not terminate", topo.Name(), home, src)
					}
				}
				if topo.RevLink(src, src) != -1 {
					t.Fatalf("%s: RevLink at src != -1", topo.Name())
				}
				for i, j := 0, len(fwd)-1; i < len(rev); i, j = i+1, j-1 {
					if j < 0 || rev[i] != fwd[j] {
						t.Fatalf("%s: %d->%d reverse path %v does not retrace forward %v",
							topo.Name(), src, home, rev, fwd)
					}
				}
				if len(rev) != len(fwd) {
					t.Fatalf("%s: %d->%d path lengths differ: fwd %v rev %v", topo.Name(), src, home, fwd, rev)
				}
			}
		}
	}
}

// TestCubeMatchesLegacyRouting pins the Cube wiring to the arithmetic the
// hypercube engine used before the extraction, so the port is byte-exact.
func TestCubeMatchesLegacyRouting(t *testing.T) {
	c := CubeOf(64)
	for cur := 0; cur < 64; cur++ {
		for other := 0; other < 64; other++ {
			diff := cur ^ other
			wantFwd, wantRev := -1, -1
			for d := 0; d < 6; d++ {
				if diff&(1<<d) != 0 {
					if wantFwd == -1 {
						wantFwd = d
					}
					wantRev = d
				}
			}
			if got := c.FwdLink(cur, other); got != wantFwd {
				t.Fatalf("FwdLink(%d,%d) = %d, want %d", cur, other, got, wantFwd)
			}
			if got := c.RevLink(cur, other); got != wantRev {
				t.Fatalf("RevLink(%d,%d) = %d, want %d", cur, other, got, wantRev)
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Engine: "e", Procs: 8, PowerOf: 2, Banks: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"power", Spec{Engine: "e", Procs: 6, PowerOf: 2, Banks: 1}, "power of 2"},
		{"radix-power", Spec{Engine: "e", Procs: 8, PowerOf: 4, Banks: 1}, "power of 4"},
		{"min", Spec{Engine: "e", Procs: 0, MinProcs: 1, Banks: 1}, ">= 1"},
		{"banks", Spec{Engine: "e", Procs: 4, MinProcs: 1, Banks: 0}, "Banks"},
		{"workers", Spec{Engine: "e", Procs: 8, PowerOf: 2, Banks: 1, Workers: -1}, "Workers"},
		{"window", Spec{Engine: "e", Procs: 8, PowerOf: 2, Banks: 1, Window: -3}, "Window"},
		{"service", Spec{Engine: "e", Procs: 8, PowerOf: 2, Banks: 1, Service: -1}, "service time"},
		{"trace", Spec{Engine: "e", Procs: 8, PowerOf: 2, Banks: 1, TraceSerial: true}, "serial stepper"},
		{"injectors", Spec{Engine: "e", Procs: 8, PowerOf: 2, Banks: 1, Injectors: 3, CheckInjectors: true}, "injectors"},
		{"topology", Spec{Engine: "e", Procs: 6, Banks: 1, MinProcs: 1,
			Topology: TorusOf(1, 4), TopologySize: 4, TopologyField: "node count"}, "dimension 0"},
		{"topo-size", Spec{Engine: "e", Procs: 6, Banks: 1, MinProcs: 1,
			Topology: TorusOf(2, 4), TopologySize: 8, TopologyField: "node count"}, "disagrees"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Fatalf("%s: invalid spec accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCounterKeysStable(t *testing.T) {
	keys := CounterKeys()
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("CounterKeys not sorted: %v", keys)
	}
	m := Counters{Cycles: 1}.Map()
	if len(m) != len(keys) {
		t.Fatalf("Map has %d keys, CounterKeys %d", len(m), len(keys))
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Fatalf("key %q missing from Map", k)
		}
	}
}
