package engine

import "sort"

// Counters is the canonical counter schema every engine's Snapshot emits.
// Each engine fills the fields it measures and leaves the rest zero, so
// all four transports publish the identical counter key set — the parity
// contract the differential schema test asserts.  A structurally-zero key
// (e.g. bus_ops on the omega network) reads as "this engine has no such
// event", which downstream tooling can subtract without first sniffing
// which engine produced the snapshot.  Fault/recovery counters are a
// separate block appended by internal/faults when fault injection is
// configured; gauges and histograms stay engine-specific.
type Counters struct {
	Cycles           int64 // simulated cycles (0 for the goroutine engine)
	Issued           int64 // requests issued by processors
	Completed        int64 // replies delivered back to their issuer
	HotCompleted     int64 // completions against the hot-spot cell
	ColdCompleted    int64 // completions against background addresses
	Replies          int64 // replies absorbed at ports (== completed)
	Combines         int64 // requests absorbed by combining en route
	CombineRejects   int64 // combines forfeited to a full wait buffer
	FwdHops          int64 // forward switch/router traversals
	RevHops          int64 // reverse switch/router traversals
	FwdSlots         int64 // forward payload slots moved (k-word transfers)
	RevSlots         int64 // reverse payload slots moved
	MemRequests      int64 // requests handed to memory modules
	MemAcks          int64 // operations serviced by memory modules
	MemOps           int64 // node-local memory operations (direct engines)
	BankOps          int64 // bank operations (bus engine)
	BusOps           int64 // bus grants (bus engine)
	HOLBlocked       int64 // head-of-line blocking events (bus engine)
	CreditStalls     int64 // sends stalled on exhausted credit (async engine)
	SaturationCycles int64 // cycles the saturation detector held admission
	HoldsRev         int64 // reverse transfers held by exhausted credit
	HoldsMem         int64 // memory-input holds (full module queue)
	HoldsMemOut      int64 // memory-output holds (reverse credit at the exit)
	WatchdogTrips    int64 // forward-progress watchdog expirations
	Checkpoints      int64 // module checkpoints committed (internal/recover)
}

// Map renders the canonical schema; every key is always present.
func (c Counters) Map() map[string]int64 {
	return map[string]int64{
		"cycles":            c.Cycles,
		"issued":            c.Issued,
		"completed":         c.Completed,
		"hot_completed":     c.HotCompleted,
		"cold_completed":    c.ColdCompleted,
		"replies":           c.Replies,
		"combines":          c.Combines,
		"combine_rejects":   c.CombineRejects,
		"fwd_hops":          c.FwdHops,
		"rev_hops":          c.RevHops,
		"fwd_slots":         c.FwdSlots,
		"rev_slots":         c.RevSlots,
		"mem_requests":      c.MemRequests,
		"mem_acks":          c.MemAcks,
		"mem_ops":           c.MemOps,
		"bank_ops":          c.BankOps,
		"bus_ops":           c.BusOps,
		"hol_blocked":       c.HOLBlocked,
		"credit_stalls":     c.CreditStalls,
		"saturation_cycles": c.SaturationCycles,
		"holds_rev":         c.HoldsRev,
		"holds_mem":         c.HoldsMem,
		"holds_mem_out":     c.HoldsMemOut,
		"watchdog_trips":    c.WatchdogTrips,
		"checkpoints":       c.Checkpoints,
	}
}

// CounterKeys returns the canonical key set, sorted; the schema-parity
// test compares every engine's Snapshot against it.
func CounterKeys() []string {
	m := Counters{}.Map()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
