// Package engine is the common core the combining transports share: one
// configuration validator (Spec), one snapshot counter schema (Counters),
// and the topology abstractions the cycle engines are parameterized by.
//
// The paper's central claim is that combining lives in the switches and
// memory modules, not in any particular wiring: the queueing, combining,
// decombining, flow-control and fault-recovery machinery is
// topology-independent, and the omega network is just one way to connect
// it.  This package makes that split explicit:
//
//   - A Staged topology (omega, fat-tree/butterfly) supplies only wiring
//     functions — processor→line placement, the inter-stage permutations
//     and their inverses, and destination-tag port selection — plus the
//     conflict groups the deterministic parallel stepper partitions on,
//     which RevGroups/FwdGroups derive generically from the wiring.
//     The step loop, switch machinery, config plumbing and stats live in
//     internal/network and are reused unchanged by every staged wiring.
//
//   - A Direct topology (hypercube, torus) supplies the link structure of
//     a direct-connection machine — degree, neighbor map, and the
//     forward/reverse routing functions, with the invariant that the
//     reverse route retraces the forward route node for node (the paper's
//     "only major restriction": replies return via the same route, so the
//     wait buffers that combined a request see its reply).  The
//     store-and-forward step loop lives in internal/hypercube and is
//     reused unchanged by every direct wiring.
//
// What the core owns: config validation and defaults, the counter-key
// schema, conflict-group derivation.  What a topology supplies: pure
// wiring arithmetic, well under 150 lines each.  Adding a topology means
// writing the wiring functions and nothing else — no new step loop, no new
// stats plumbing, no new parallel stepper.
package engine
