package engine

import "fmt"

// IsPowerOf reports whether n is a positive power of k (k^1, k^2, ...),
// for k >= 2.
func IsPowerOf(n, k int) bool {
	if n < k {
		return false
	}
	for n%k == 0 {
		n /= k
	}
	return n == 1
}

// Spec is the one validation path every engine Config funnels through.
// Each engine maps its Config onto a Spec (after applying defaults) and
// returns Spec.Validate() from its own Config.Validate; the constructors
// keep their historical panic-on-invalid contract by panicking with the
// same error.  Commands call Config.Validate first and turn the error
// into a one-line exit instead of a stack trace.
//
// Queue capacities share one convention across the engines and are not
// rejected here: 0 means the engine default, negative means unbounded
// (core.Unbounded), positive is a bound.  Every other overlapping knob
// the four engines used to police separately is covered below.
type Spec struct {
	// Engine prefixes every error message ("network", "hypercube", ...).
	Engine string
	// Procs is the processor/node/port count; Field names it in errors.
	Procs int
	Field string // defaults to "Procs"
	// PowerOf, when >= 2, requires Procs to be a positive power of it
	// (radix for staged networks, 2 for the cube).  When 0, Procs must be
	// at least MinProcs instead.
	PowerOf  int
	MinProcs int
	// Banks, for engines with a separate bank count; pass 1 when n/a.
	Banks int
	// Workers is the parallel-stepper width; negative is rejected.
	Workers int
	// Injectors is the supplied injector count, enforced only when
	// CheckInjectors is set: the config-only Validate cannot see the
	// injector slice, the constructor can.
	Injectors      int
	CheckInjectors bool
	// Window is the asyncnet pipeline window; negative is rejected.
	Window int
	// Service is a service-time knob (memory or bank); negative is
	// rejected, 0 means the engine default.
	Service int
	// TraceSerial rejects the trace-with-parallel-stepper combination:
	// tracing is single-goroutine by contract, and silently falling back
	// to the serial stepper would hand out serial numbers labeled
	// parallel.
	TraceSerial bool
	// AdversarialSerial rejects adversarial delivery plans (reordering,
	// network-born duplication, payload corruption) combined with the
	// parallel stepper: limbo release and re-emission order is defined by
	// the serial sweep, and a silent serial fallback would mislabel the
	// run just like TraceSerial.
	AdversarialSerial bool
	// Topology, when non-nil, is validated too (wiring parameters).
	Topology interface{ Validate() error }
	// TopologySize/TopologyField reject a Config whose explicit size
	// disagrees with its Topology's; 0 skips the check.
	TopologySize  int
	TopologyField string
}

func (s Spec) Validate() error {
	field := s.Field
	if field == "" {
		field = "Procs"
	}
	if s.Topology != nil {
		if err := s.Topology.Validate(); err != nil {
			return fmt.Errorf("%s: invalid topology: %w", s.Engine, err)
		}
		if s.TopologySize != 0 && s.Procs != 0 && s.Procs != s.TopologySize {
			return fmt.Errorf("%s: %s %d disagrees with the topology's %s (%d)",
				s.Engine, field, s.Procs, s.TopologyField, s.TopologySize)
		}
	}
	switch {
	case s.PowerOf >= 2:
		if !IsPowerOf(s.Procs, s.PowerOf) {
			return fmt.Errorf("%s: %s must be a positive power of %d, got %d",
				s.Engine, field, s.PowerOf, s.Procs)
		}
	case s.Procs < s.MinProcs:
		return fmt.Errorf("%s: %s must be >= %d, got %d", s.Engine, field, s.MinProcs, s.Procs)
	}
	if s.Banks < 1 {
		return fmt.Errorf("%s: Banks must be >= 1, got %d", s.Engine, s.Banks)
	}
	if s.Workers < 0 {
		return fmt.Errorf("%s: Workers must be >= 0 (0 and 1 both mean serial), got %d",
			s.Engine, s.Workers)
	}
	if s.Window < 0 {
		return fmt.Errorf("%s: Window must be >= 0 (0 means the default), got %d",
			s.Engine, s.Window)
	}
	if s.Service < 0 {
		return fmt.Errorf("%s: service time must be >= 0 (0 means the default), got %d",
			s.Engine, s.Service)
	}
	if s.TraceSerial {
		return fmt.Errorf("%s: Trace requires the serial stepper; set Workers <= 1 or drop the trace",
			s.Engine)
	}
	if s.AdversarialSerial {
		return fmt.Errorf("%s: adversarial fault plans (reorder/dup/corrupt) require the serial stepper; set Workers <= 1",
			s.Engine)
	}
	if s.CheckInjectors && s.Injectors != s.Procs {
		return fmt.Errorf("%s: got %d injectors for %d %s", s.Engine, s.Injectors, s.Procs,
			pluralField(field))
	}
	return nil
}

func pluralField(field string) string {
	switch field {
	case "Nodes":
		return "nodes"
	default:
		return "processors"
	}
}
