package pathexpr

import (
	"sync"
	"sync/atomic"
	"testing"

	"combining/internal/asyncnet"
	"combining/internal/rmw"
	"combining/internal/word"
)

func TestParse(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"read", "read"},
		{"read write", "read write"},
		{"read | write", "(read | write)"},
		{"(read | write)*", "((read | write))*"},
		{"open (read | write)* close", "open ((read | write))* close"},
		{"a b* | c", "(a (b)* | c)"},
	}
	for _, tc := range cases {
		e, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(a", "a)", "|a", "a |", "()", "*", "a $ b"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestGuardSequences(t *testing.T) {
	g, err := Compile("open (read | write)* close")
	if err != nil {
		t.Fatal(err)
	}
	legal := [][]string{
		{"open"},
		{"open", "close"},
		{"open", "read", "read", "write", "close"},
		{"open", "write", "close"},
	}
	illegal := [][]string{
		{"read"},
		{"close"},
		{"open", "open"},
		{"open", "close", "read"},
		{"open", "read", "close", "close"},
	}
	for _, seq := range legal {
		if !g.Accepts(seq...) {
			t.Errorf("legal sequence %v rejected", seq)
		}
	}
	for _, seq := range illegal {
		if g.Accepts(seq...) {
			t.Errorf("illegal sequence %v accepted", seq)
		}
	}
}

func TestGuardCyclic(t *testing.T) {
	// The classic producer/consumer discipline as a path expression.
	g, err := Compile("(produce consume)*")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Accepts("produce", "consume", "produce", "consume") {
		t.Error("alternating sequence rejected")
	}
	if g.Accepts("produce", "produce") {
		t.Error("double produce accepted")
	}
	if g.Accepts("consume") {
		t.Error("initial consume accepted")
	}
}

// TestGuardMappingsCombine checks that guard operations are ordinary
// Section 5.6 tables: they compose, and the composition matches stepwise
// application.
func TestGuardMappingsCombine(t *testing.T) {
	g, err := Compile("(produce consume)*")
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := g.Mapping("produce")
	cons, _ := g.Mapping("consume")
	comb, ok := rmw.Compose(prod, cons)
	if !ok {
		t.Fatal("guard mappings must combine")
	}
	for s := 0; s < g.States(); s++ {
		w := word.WT(0, word.Tag(s))
		want := cons.Apply(prod.Apply(w))
		if got := comb.Apply(w); got != want {
			t.Errorf("state %d: combined %v, want %v", s, got, want)
		}
	}
}

// TestGuardOnCombiningNetwork drives a path expression through the
// asynchronous combining network: workers apply guarded operations with
// busy-wait retry, and the observed global sequence must be a legal path.
func TestGuardOnCombiningNetwork(t *testing.T) {
	g, err := Compile("(produce consume)*")
	if err != nil {
		t.Fatal(err)
	}
	net := asyncnet.New(asyncnet.Config{Procs: 4, Combining: true})
	defer net.Close()
	const guardCell = word.Addr(9)
	const rounds = 50

	// The goroutines cannot observe the memory serialization order
	// directly, but the automaton already encodes it: a successful
	// produce must have fired from state 0 and a successful consume
	// from state 1, which the reply's old tag certifies.
	var mu sync.Mutex
	seen := map[string][]word.Tag{}
	var stop atomic.Bool

	apply := func(port *asyncnet.Port, opName string) bool {
		m, _ := g.Mapping(opName)
		old := port.RMW(guardCell, m)
		if m.Failed(old.Tag) {
			return false
		}
		mu.Lock()
		seen[opName] = append(seen[opName], old.Tag)
		mu.Unlock()
		return true
	}

	var wg sync.WaitGroup
	for p, role := range []string{"produce", "consume"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			port := net.Port(p)
			done := 0
			for done < rounds && !stop.Load() {
				if apply(port, role) {
					done++
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)

	if len(seen["produce"]) != rounds || len(seen["consume"]) != rounds {
		t.Fatalf("successes: produce %d, consume %d, want %d each",
			len(seen["produce"]), len(seen["consume"]), rounds)
	}
	for _, tag := range seen["produce"] {
		if tag != 0 {
			t.Fatalf("a produce succeeded from state %d", tag)
		}
	}
	for _, tag := range seen["consume"] {
		if tag != 1 {
			t.Fatalf("a consume succeeded from state %d", tag)
		}
	}
	// Equal counts of alternating operations return the automaton to
	// its start state.
	if got := net.Memory().Peek(guardCell).Tag; got != 0 {
		t.Fatalf("guard ended in state %d, want 0", got)
	}
}

func TestDFAMinimized(t *testing.T) {
	// The cyclic producer/consumer expression needs exactly two states;
	// subset construction alone yields three (the post-cycle state is
	// behaviorally identical to the start).  Minimization matters: the
	// state count bounds the store values a combined request carries.
	cases := []struct {
		src  string
		want int
	}{
		{"(produce consume)*", 2},
		{"(a | a a)*", 1}, // a* in disguise
		{"a | b", 2},
	}
	for _, tc := range cases {
		g, err := Compile(tc.src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.src, err)
		}
		if g.States() != tc.want {
			t.Errorf("Compile(%q): %d states, want %d", tc.src, g.States(), tc.want)
		}
	}
}

func TestDFAStateBound(t *testing.T) {
	g, err := Compile("a b c d e f g h")
	if err != nil {
		t.Fatal(err)
	}
	if g.States() != 9 {
		t.Errorf("chain of 8 ops compiled to %d states, want 9", g.States())
	}
}
