// Package pathexpr implements the path-expression synchronization of
// Section 5.6: "Memory accesses controlled by a regular automaton can be
// used to support simple path expressions [1].  A regular expression over
// the alphabet consisting of these operations defines the language of
// legal sequences of operation applications on each object."
//
// A path expression is compiled — regular expression → Thompson NFA →
// subset-construction DFA — into a data-level synchronization automaton:
// each operation becomes an rmw.Table over the DFA's states, so one RMW
// access to the object's guard cell atomically tests legality and advances
// the automaton.  Illegal applications fail (the reply's old tag is the
// negative acknowledgment) and the object is untouched.  Every guard
// operation is a Table over the same state set, so concurrent guard
// accesses combine in the network like any other Section 5.6 family.
package pathexpr

import (
	"fmt"
	"sort"
	"strings"

	"combining/internal/rmw"
	"combining/internal/word"
)

// Expr is a parsed path expression.
type Expr interface {
	String() string
}

type (
	// Sym is one operation name.
	Sym struct{ Name string }
	// Seq is concatenation.
	Seq struct{ Parts []Expr }
	// Alt is alternation.
	Alt struct{ Choices []Expr }
	// Star is Kleene iteration.
	Star struct{ Inner Expr }
)

// String renders the expression.
func (s Sym) String() string { return s.Name }

// String renders the expression.
func (s Seq) String() string {
	parts := make([]string, len(s.Parts))
	for i, p := range s.Parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

// String renders the expression.
func (a Alt) String() string {
	parts := make([]string, len(a.Choices))
	for i, p := range a.Choices {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// String renders the expression.
func (s Star) String() string { return "(" + s.Inner.String() + ")*" }

// Parse reads a path expression: operation names (identifiers), spaces for
// sequencing, '|' for alternation, '*' for iteration, parentheses for
// grouping.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pathexpr: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return e, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) alt() (Expr, error) {
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	choices := []Expr{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.seq()
		if err != nil {
			return nil, err
		}
		choices = append(choices, next)
	}
	if len(choices) == 1 {
		return first, nil
	}
	return Alt{Choices: choices}, nil
}

func (p *parser) seq() (Expr, error) {
	var parts []Expr
	for {
		p.skipSpace()
		c := p.peek()
		if c == 0 || c == ')' || c == '|' {
			break
		}
		f, err := p.factor()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("pathexpr: empty expression at offset %d", p.pos)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Seq{Parts: parts}, nil
}

func (p *parser) factor() (Expr, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for p.peek() == '*' {
		p.pos++
		atom = Star{Inner: atom}
		p.skipSpace()
	}
	return atom, nil
}

func (p *parser) atom() (Expr, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("pathexpr: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isIdent(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("pathexpr: expected operation name at offset %d", p.pos)
	}
	return Sym{Name: p.src[start:p.pos]}, nil
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// nfa is a Thompson construction: states numbered 0..n-1, epsilon edges
// and labeled edges.
type nfa struct {
	n       int
	eps     map[int][]int
	labeled map[int]map[string][]int
	start   int
	accept  int
}

func newNFA() *nfa {
	return &nfa{eps: make(map[int][]int), labeled: make(map[int]map[string][]int)}
}

func (a *nfa) state() int {
	s := a.n
	a.n++
	return s
}

func (a *nfa) edge(from int, label string, to int) {
	if a.labeled[from] == nil {
		a.labeled[from] = make(map[string][]int)
	}
	a.labeled[from][label] = append(a.labeled[from][label], to)
}

func (a *nfa) epsilon(from, to int) { a.eps[from] = append(a.eps[from], to) }

// build adds the fragment for e and returns (start, accept).
func (a *nfa) build(e Expr) (int, int) {
	switch v := e.(type) {
	case Sym:
		s, t := a.state(), a.state()
		a.edge(s, v.Name, t)
		return s, t
	case Seq:
		s, t := a.build(v.Parts[0])
		for _, part := range v.Parts[1:] {
			s2, t2 := a.build(part)
			a.epsilon(t, s2)
			t = t2
		}
		return s, t
	case Alt:
		s, t := a.state(), a.state()
		for _, c := range v.Choices {
			cs, ct := a.build(c)
			a.epsilon(s, cs)
			a.epsilon(ct, t)
		}
		return s, t
	case Star:
		s, t := a.state(), a.state()
		is, it := a.build(v.Inner)
		a.epsilon(s, is)
		a.epsilon(it, t)
		a.epsilon(s, t)
		a.epsilon(it, is)
		return s, t
	default:
		panic(fmt.Sprintf("pathexpr: unknown expression %T", e))
	}
}

// DFA is the deterministic automaton of a path expression.
type DFA struct {
	// States is |S|; state 0 is the start state.
	States int
	// Alphabet is the sorted operation names.
	Alphabet []string
	// Next[s][op] is the successor, or -1 when op is illegal in s.
	Next [][]int
}

// CompileDFA builds the DFA for an expression via subset construction.
func CompileDFA(e Expr) (*DFA, error) {
	a := newNFA()
	s, t := a.build(e)
	a.start, a.accept = s, t

	alphabet := map[string]bool{}
	collectSyms(e, alphabet)
	names := make([]string, 0, len(alphabet))
	for n := range alphabet {
		names = append(names, n)
	}
	sort.Strings(names)

	closure := func(set map[int]bool) map[int]bool {
		stack := make([]int, 0, len(set))
		for st := range set {
			stack = append(stack, st)
		}
		for len(stack) > 0 {
			st := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nx := range a.eps[st] {
				if !set[nx] {
					set[nx] = true
					stack = append(stack, nx)
				}
			}
		}
		return set
	}
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for st := range set {
			ids = append(ids, st)
		}
		sort.Ints(ids)
		var b strings.Builder
		for _, id := range ids {
			fmt.Fprintf(&b, "%d,", id)
		}
		return b.String()
	}

	start := closure(map[int]bool{a.start: true})
	index := map[string]int{key(start): 0}
	sets := []map[int]bool{start}
	d := &DFA{Alphabet: names}
	d.Next = append(d.Next, make([]int, len(names)))
	for i := 0; i < len(sets); i++ {
		for oi, op := range names {
			move := map[int]bool{}
			for st := range sets[i] {
				for _, nx := range a.labeled[st][op] {
					move[nx] = true
				}
			}
			if len(move) == 0 {
				d.Next[i][oi] = -1
				continue
			}
			move = closure(move)
			k := key(move)
			j, ok := index[k]
			if !ok {
				j = len(sets)
				if j >= word.MaxStates {
					return nil, fmt.Errorf("pathexpr: automaton exceeds %d states", word.MaxStates)
				}
				index[k] = j
				sets = append(sets, move)
				d.Next = append(d.Next, make([]int, len(names)))
			}
			d.Next[i][oi] = j
		}
	}
	d.States = len(sets)
	return minimize(d), nil
}

// minimize applies Moore partition refinement.  Path expressions have no
// accepting states — legality is "every step defined" — so two states are
// equivalent iff they fail the same operations and their successors are
// equivalent.  Minimization matters beyond tidiness: the automaton's state
// count is the Section 5.6 bound on the values a combined request carries.
func minimize(d *DFA) *DFA {
	class := make([]int, d.States)
	// Initial partition: by fail signature.
	sig := make(map[string]int)
	for s := 0; s < d.States; s++ {
		var b strings.Builder
		for oi := range d.Alphabet {
			if d.Next[s][oi] < 0 {
				b.WriteByte('0')
			} else {
				b.WriteByte('1')
			}
		}
		k := b.String()
		id, ok := sig[k]
		if !ok {
			id = len(sig)
			sig[k] = id
		}
		class[s] = id
	}
	for {
		next := make(map[string]int)
		newClass := make([]int, d.States)
		for s := 0; s < d.States; s++ {
			var b strings.Builder
			fmt.Fprintf(&b, "%d:", class[s])
			for oi := range d.Alphabet {
				if t := d.Next[s][oi]; t < 0 {
					b.WriteString("-,")
				} else {
					fmt.Fprintf(&b, "%d,", class[t])
				}
			}
			k := b.String()
			id, ok := next[k]
			if !ok {
				id = len(next)
				next[k] = id
			}
			newClass[s] = id
		}
		if len(next) == maxClass(class)+1 {
			break
		}
		class = newClass
	}
	// Renumber so the start state's class is 0.
	remap := make(map[int]int)
	remap[class[0]] = 0
	order := []int{class[0]}
	for s := 1; s < d.States; s++ {
		if _, ok := remap[class[s]]; !ok {
			remap[class[s]] = len(order)
			order = append(order, class[s])
		}
	}
	out := &DFA{States: len(order), Alphabet: d.Alphabet}
	out.Next = make([][]int, len(order))
	for s := 0; s < d.States; s++ {
		c := remap[class[s]]
		if out.Next[c] != nil {
			continue
		}
		row := make([]int, len(d.Alphabet))
		for oi := range d.Alphabet {
			if t := d.Next[s][oi]; t < 0 {
				row[oi] = -1
			} else {
				row[oi] = remap[class[t]]
			}
		}
		out.Next[c] = row
	}
	return out
}

func maxClass(class []int) int {
	m := 0
	for _, c := range class {
		if c > m {
			m = c
		}
	}
	return m
}

func collectSyms(e Expr, out map[string]bool) {
	switch v := e.(type) {
	case Sym:
		out[v.Name] = true
	case Seq:
		for _, p := range v.Parts {
			collectSyms(p, out)
		}
	case Alt:
		for _, p := range v.Choices {
			collectSyms(p, out)
		}
	case Star:
		collectSyms(v.Inner, out)
	}
}

// Guard is a compiled path expression: one combinable RMW mapping per
// operation, all over the DFA's state set.
type Guard struct {
	dfa  *DFA
	maps map[string]rmw.Table
}

// Compile parses and compiles a path expression into a Guard.
func Compile(src string) (*Guard, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	dfa, err := CompileDFA(e)
	if err != nil {
		return nil, err
	}
	g := &Guard{dfa: dfa, maps: make(map[string]rmw.Table, len(dfa.Alphabet))}
	for oi, op := range dfa.Alphabet {
		trans := make([]rmw.Transition, dfa.States)
		for s := 0; s < dfa.States; s++ {
			nx := dfa.Next[s][oi]
			if nx < 0 {
				trans[s] = rmw.Transition{Fail: true}
			} else {
				trans[s] = rmw.Transition{Next: word.Tag(nx), Act: rmw.Keep}
			}
		}
		g.maps[op] = rmw.NewTable("path:"+op, trans)
	}
	return g, nil
}

// States is the automaton's state count (the Section 5.6 bound on store
// values carried by a combined request).
func (g *Guard) States() int { return g.dfa.States }

// Ops lists the guarded operation names.
func (g *Guard) Ops() []string { return append([]string{}, g.dfa.Alphabet...) }

// Mapping returns the RMW mapping that attempts operation op on the guard
// cell.  ok is false for unknown operations.
func (g *Guard) Mapping(op string) (rmw.Table, bool) {
	m, ok := g.maps[op]
	return m, ok
}

// Allowed reports whether op succeeds from the given automaton state, and
// the successor state.
func (g *Guard) Allowed(state word.Tag, op string) (word.Tag, bool) {
	m, ok := g.maps[op]
	if !ok {
		return state, false
	}
	tr := m.At(state)
	if tr.Fail {
		return state, false
	}
	return tr.Next, true
}

// Accepts reports whether a whole sequence of operations is a legal path
// from the start state.
func (g *Guard) Accepts(ops ...string) bool {
	state := word.Tag(0)
	for _, op := range ops {
		next, ok := g.Allowed(state, op)
		if !ok {
			return false
		}
		state = next
	}
	return true
}
