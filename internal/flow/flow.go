// Package flow is the shared end-to-end flow-control toolkit for the four
// combining engines: a progress watchdog that declares livelock/deadlock
// when in-flight work stops moving, a tree-saturation monitor that counts
// cycles during which some bounded queue on the path to memory is full, and
// an AIMD admission controller that turns those congestion signals into a
// dynamic per-processor request window.
//
// The paper's combining switches have finite buffers; under hot-spot
// traffic those buffers fill from the hot module backward until the whole
// tree of queues leading to it is saturated (Pfister & Norton's tree
// saturation, the failure mode Section 1 motivates combining with).  With
// every queue bounded and upstream holds in place of unbounded appends, the
// engines degrade by backpressure instead of ballooning — and this package
// observes that degradation, guards against the one remaining catastrophic
// outcome (no progress at all), and feeds the admission loop that keeps
// uniform traffic flowing while a hot spot persists.
package flow

import "fmt"

// Watchdog declares livelock/deadlock when in-flight work makes no progress
// for a configured number of cycles.  Engines feed it once per cycle with a
// monotone progress signature (any message movement must change it) and the
// current in-flight count; a quiescent machine (nothing in flight) never
// trips.  The zero Watchdog is disabled.
type Watchdog struct {
	limit int64

	lastSig    int64
	lastChange int64
	tripped    bool
	tripCycle  int64
}

// NewWatchdog returns a watchdog that trips after limit cycles without
// progress; limit <= 0 disables it.
func NewWatchdog(limit int64) *Watchdog { return &Watchdog{limit: limit} }

// Observe feeds one cycle: sig is the engine's monotone progress signature,
// inflight the number of requests somewhere in the machine.  It returns
// true exactly once, on the cycle the watchdog trips.
func (w *Watchdog) Observe(cycle int64, inflight int, sig int64) bool {
	if w == nil || w.limit <= 0 || w.tripped {
		return false
	}
	if inflight == 0 || sig != w.lastSig {
		w.lastSig = sig
		w.lastChange = cycle
		return false
	}
	if cycle-w.lastChange >= w.limit {
		w.tripped = true
		w.tripCycle = cycle
		return true
	}
	return false
}

// Tripped reports whether the watchdog has declared a stall.
func (w *Watchdog) Tripped() bool { return w != nil && w.tripped }

// TripCycle returns the cycle the watchdog tripped (0 if it has not).
func (w *Watchdog) TripCycle() int64 {
	if w == nil {
		return 0
	}
	return w.tripCycle
}

// Limit returns the configured no-progress limit (0 when disabled).
func (w *Watchdog) Limit() int64 {
	if w == nil {
		return 0
	}
	return w.limit
}

// Saturation counts tree-saturation cycles: an engine reports, once per
// cycle, whether some bounded queue on the path to memory was full, and the
// monitor tracks the total, the current streak of consecutive saturated
// cycles, and the longest streak seen.  Congested — a streak at least the
// threshold — is the signal admission control and experiments key on:
// transiently full queues are normal under bursts, while a persistently
// full path is the tree-saturation regime.
type Saturation struct {
	// Threshold is the streak length that counts as congestion (default
	// DefaultSaturationStreak when zero).
	Threshold int64

	cycles    int64
	streak    int64
	maxStreak int64
}

// DefaultSaturationStreak is the congestion threshold used when a
// Saturation monitor is built with Threshold zero: a queue tree that stays
// full this many consecutive cycles is saturated, not merely bursty.
const DefaultSaturationStreak = 16

// Observe feeds one cycle's saturation bit.
func (s *Saturation) Observe(full bool) {
	if !full {
		s.streak = 0
		return
	}
	s.cycles++
	s.streak++
	if s.streak > s.maxStreak {
		s.maxStreak = s.streak
	}
}

// Cycles returns the total number of saturated cycles observed.
func (s *Saturation) Cycles() int64 { return s.cycles }

// MaxStreak returns the longest run of consecutive saturated cycles.
func (s *Saturation) MaxStreak() int64 { return s.maxStreak }

// Congested reports whether the current streak has reached the threshold.
func (s *Saturation) Congested() bool {
	th := s.Threshold
	if th <= 0 {
		th = DefaultSaturationStreak
	}
	return s.streak >= th
}

// AIMD is the additive-increase/multiplicative-decrease admission window a
// traffic source consults before issuing: it shrinks when round trips
// stretch well past the uncongested baseline (the congestion signal a
// processor can observe without global state) and recovers additively as
// the tree drains.  It is self-tuning: the baseline is the minimum RTT seen
// this run, so no latency constant needs calibrating per topology.
type AIMD struct {
	min, max float64
	win      float64

	minRTT  int64
	lastCut int64

	// Decreases counts multiplicative window cuts; WindowSum and Samples
	// accumulate the window at each delivery so MeanWindow reports the
	// effective admission level of a run.
	Decreases int64
	WindowSum int64
	Samples   int64
}

// NewAIMD builds a controller starting at initial, clamped to [min, max].
func NewAIMD(initial, min, max int) *AIMD {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	a := &AIMD{min: float64(min), max: float64(max), win: float64(initial)}
	if a.win < a.min {
		a.win = a.min
	}
	if a.win > a.max {
		a.win = a.max
	}
	return a
}

// Window returns the current admission window (at least 1).
func (a *AIMD) Window() int { return int(a.win) }

// MeanWindow returns the average window across deliveries (0 before any).
func (a *AIMD) MeanWindow() float64 {
	if a.Samples == 0 {
		return 0
	}
	return float64(a.WindowSum) / float64(a.Samples)
}

// congestRTTFactor and recoverRTTFactor bracket the signal: a round trip
// beyond congestRTTFactor× the minimum seen means queues on the path are
// deep (cut the window); one within recoverRTTFactor× means the path is
// drained (grow it).  Between the two the window holds steady, which keeps
// the controller from oscillating on moderate queueing.
const (
	congestRTTFactor = 4
	recoverRTTFactor = 2
)

// OnDeliver feeds one completed round trip: rtt in cycles, now the current
// cycle.  Cuts are rate-limited to one per round-trip time so a single
// congested window of deliveries is not punished once per reply.
func (a *AIMD) OnDeliver(rtt, now int64) {
	if rtt < 1 {
		rtt = 1
	}
	if a.minRTT == 0 || rtt < a.minRTT {
		a.minRTT = rtt
	}
	switch {
	case rtt > congestRTTFactor*a.minRTT:
		if now-a.lastCut >= rtt {
			a.win /= 2
			if a.win < a.min {
				a.win = a.min
			}
			a.lastCut = now
			a.Decreases++
		}
	case rtt <= recoverRTTFactor*a.minRTT:
		a.win += 1 / a.win
		if a.win > a.max {
			a.win = a.max
		}
	}
	a.WindowSum += int64(a.win)
	a.Samples++
}

// StallReport formats the standard watchdog diagnostic: where the machine
// stood when progress stopped.  Engines prepend their queue snapshots; the
// caller's harness supplies the replay seed (every soak prints it with the
// failure).  crashed, when non-empty, names the components inside crash
// windows at the trip cycle — a restarting module cannot trip the watchdog
// (dead time counts as injected progress), so a trip during a crash window
// points at what stayed stuck after the flush.
func StallReport(engine string, wd *Watchdog, inflight int, crashed, detail string) string {
	site := ""
	if crashed != "" {
		site = fmt.Sprintf("\ncrashed sites: %s", crashed)
	}
	return fmt.Sprintf("%s: watchdog tripped at cycle %d: %d in flight, no progress for %d cycles%s\n%s",
		engine, wd.TripCycle(), inflight, wd.Limit(), site, detail)
}
