package flow

import (
	"strings"
	"testing"
)

func TestWatchdogTripsOnlyWithInflightAndNoProgress(t *testing.T) {
	w := NewWatchdog(10)

	// Progress every cycle: never trips.
	for c := int64(0); c < 100; c++ {
		if w.Observe(c, 1, c) {
			t.Fatalf("tripped at cycle %d despite progress", c)
		}
	}
	// Quiescent (inflight 0) with a frozen signature: never trips.
	for c := int64(100); c < 200; c++ {
		if w.Observe(c, 0, 99) {
			t.Fatalf("tripped at cycle %d while quiescent", c)
		}
	}
	// In-flight work with a frozen signature: trips limit cycles after the
	// last observed change (cycle 199), and only once.
	tripAt := int64(-1)
	for c := int64(200); c < 300; c++ {
		if w.Observe(c, 3, 99) {
			if tripAt != -1 {
				t.Fatalf("tripped twice (%d and %d)", tripAt, c)
			}
			tripAt = c
		}
	}
	if tripAt != 209 {
		t.Fatalf("tripped at %d, want 209 (limit 10 after last change at 199)", tripAt)
	}
	if !w.Tripped() || w.TripCycle() != 209 {
		t.Fatalf("Tripped=%v TripCycle=%d, want true/209", w.Tripped(), w.TripCycle())
	}
}

func TestWatchdogDisabledAndNil(t *testing.T) {
	for _, w := range []*Watchdog{nil, NewWatchdog(0), NewWatchdog(-5)} {
		for c := int64(0); c < 1000; c++ {
			if w.Observe(c, 7, 42) {
				t.Fatal("disabled watchdog tripped")
			}
		}
		if w.Tripped() {
			t.Fatal("disabled watchdog reports tripped")
		}
	}
}

func TestWatchdogResetsOnProgress(t *testing.T) {
	w := NewWatchdog(10)
	sig := int64(0)
	for c := int64(0); c < 1000; c++ {
		if c%9 == 0 {
			sig++ // progress just inside the limit
		}
		if w.Observe(c, 1, sig) {
			t.Fatalf("tripped at cycle %d despite periodic progress", c)
		}
	}
}

func TestSaturationCountsAndStreaks(t *testing.T) {
	var s Saturation
	s.Threshold = 4

	feed := func(bits ...bool) {
		for _, b := range bits {
			s.Observe(b)
		}
	}
	feed(true, true, false, true, true, true, true) // totals: 6, streak 4
	if s.Cycles() != 6 {
		t.Fatalf("Cycles=%d, want 6", s.Cycles())
	}
	if s.MaxStreak() != 4 {
		t.Fatalf("MaxStreak=%d, want 4", s.MaxStreak())
	}
	if !s.Congested() {
		t.Fatal("streak 4 with threshold 4 should be congested")
	}
	s.Observe(false)
	if s.Congested() {
		t.Fatal("congestion should clear when the queue drains")
	}
	if s.MaxStreak() != 4 {
		t.Fatalf("MaxStreak=%d after drain, want 4", s.MaxStreak())
	}
}

func TestSaturationDefaultThreshold(t *testing.T) {
	var s Saturation
	for i := 0; i < DefaultSaturationStreak-1; i++ {
		s.Observe(true)
		if s.Congested() {
			t.Fatalf("congested after %d cycles, default threshold is %d", i+1, DefaultSaturationStreak)
		}
	}
	s.Observe(true)
	if !s.Congested() {
		t.Fatal("not congested at the default threshold")
	}
}

func TestAIMDDecreasesUnderCongestionAndRecovers(t *testing.T) {
	a := NewAIMD(8, 1, 16)
	if a.Window() != 8 {
		t.Fatalf("initial window %d, want 8", a.Window())
	}

	// Establish the baseline RTT.
	now := int64(0)
	for i := 0; i < 10; i++ {
		now += 10
		a.OnDeliver(10, now)
	}
	if a.Window() < 8 {
		t.Fatalf("window shrank to %d on uncongested deliveries", a.Window())
	}

	// Congested RTTs (>4× baseline): multiplicative decrease, rate-limited
	// to one cut per RTT.
	now += 1000
	a.OnDeliver(100, now)
	if a.Window() > 8/2 {
		t.Fatalf("window %d after congestion, want ≤ 4", a.Window())
	}
	cutsSoFar := a.Decreases
	a.OnDeliver(100, now+1) // within the same RTT window: no second cut
	if a.Decreases != cutsSoFar {
		t.Fatalf("second cut within one RTT (decreases %d → %d)", cutsSoFar, a.Decreases)
	}

	// Keep congesting across RTT windows: floor at min.
	for i := 0; i < 20; i++ {
		now += 200
		a.OnDeliver(100, now)
	}
	if a.Window() != 1 {
		t.Fatalf("window %d under sustained congestion, want floor 1", a.Window())
	}

	// Drained RTTs: additive recovery back toward max.
	for i := 0; i < 500; i++ {
		now += 10
		a.OnDeliver(10, now)
	}
	if a.Window() != 16 {
		t.Fatalf("window %d after sustained drain, want ceiling 16", a.Window())
	}
	if a.Decreases == 0 || a.Samples == 0 || a.MeanWindow() <= 0 {
		t.Fatalf("instrumentation not populated: decreases=%d samples=%d mean=%g",
			a.Decreases, a.Samples, a.MeanWindow())
	}
}

func TestAIMDClamping(t *testing.T) {
	a := NewAIMD(0, 0, 0) // degenerate request: clamps to [1, 1]
	if a.Window() != 1 {
		t.Fatalf("window %d, want 1", a.Window())
	}
	a.OnDeliver(0, 0) // rtt clamps to 1; window stays in range
	if a.Window() != 1 {
		t.Fatalf("window %d after degenerate delivery, want 1", a.Window())
	}

	b := NewAIMD(100, 2, 6)
	if b.Window() != 6 {
		t.Fatalf("initial window %d, want clamp to max 6", b.Window())
	}
}

func TestAIMDHoldsSteadyInMidband(t *testing.T) {
	a := NewAIMD(8, 1, 16)
	a.OnDeliver(10, 0) // baseline
	w := a.Window()
	for i := 1; i <= 100; i++ {
		a.OnDeliver(30, int64(i*10)) // 3× baseline: between recover (2×) and congest (4×)
	}
	if a.Window() != w || a.Decreases != 0 {
		t.Fatalf("mid-band RTTs moved the window: %d → %d (decreases %d)", w, a.Window(), a.Decreases)
	}
}

func TestStallReportFormat(t *testing.T) {
	w := NewWatchdog(50)
	for c := int64(0); !w.Tripped(); c++ {
		w.Observe(c, 2, 7)
	}
	got := StallReport("network", w, 2, "", "queues: fwd=[1 1] rev=[0 0]")
	for _, want := range []string{"network", "cycle 50", "2 in flight", "50 cycles", "queues:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("report %q missing %q", got, want)
		}
	}
	if strings.Contains(got, "crashed sites") {
		t.Fatalf("report %q names crashed sites without any", got)
	}
	got = StallReport("network", w, 2, "mem(stage=-1,index=0,[600,700))", "queues:")
	if !strings.Contains(got, "crashed sites: mem(stage=-1,index=0,[600,700))") {
		t.Fatalf("report %q missing crashed-site line", got)
	}
}
