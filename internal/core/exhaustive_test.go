package core

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// Exhaustive verification of Lemma 4.1 on small configurations: EVERY
// assignment of operations from a representative set to n ≤ 4 requests,
// under EVERY combining schedule (every partition of the request sequence
// into segments and every binary combine tree over each segment), produces
// replies and final memory identical to the serial reference.  Unlike the
// randomized trials, this leaves no gaps at its scale.

// enumTrees yields every binary tree shape over [lo, hi) as a combined
// request plus per-leaf reply collectors.
type enumNode struct {
	req         Request
	rec         Record
	left, right *enumNode
}

func enumTrees(t *testing.T, reqs []Request, lo, hi int, pol Policy, yield func(*enumNode)) {
	t.Helper()
	if hi-lo == 1 {
		yield(&enumNode{req: reqs[lo]})
		return
	}
	for mid := lo + 1; mid < hi; mid++ {
		enumTrees(t, reqs, lo, mid, pol, func(l *enumNode) {
			enumTrees(t, reqs, mid, hi, pol, func(r *enumNode) {
				combined, rec, ok := Combine(l.req, r.req, pol)
				if !ok {
					t.Fatalf("combine failed: %v + %v", l.req, r.req)
				}
				yield(&enumNode{req: combined, rec: rec, left: l, right: r})
			})
		})
	}
}

// enumForests yields every partition of [0, n) into consecutive segments,
// each combined by every tree shape.
func enumForests(t *testing.T, reqs []Request, lo int, pol Policy, prefix []*enumNode, yield func([]*enumNode)) {
	t.Helper()
	if lo == len(reqs) {
		yield(prefix)
		return
	}
	for hi := lo + 1; hi <= len(reqs); hi++ {
		enumTrees(t, reqs, lo, hi, pol, func(root *enumNode) {
			enumForests(t, reqs, hi, pol, append(prefix, root), yield)
		})
	}
}

func collectEnum(t *testing.T, n *enumNode, reply Reply, out map[word.ReqID]word.Word) {
	t.Helper()
	if n.left == nil {
		out[n.req.ID] = reply.Val
		return
	}
	r1, r2 := Decombine(n.rec, reply)
	if n.left.req.ID == r1.ID {
		collectEnum(t, n.left, r1, out)
		collectEnum(t, n.right, r2, out)
	} else {
		collectEnum(t, n.left, r2, out)
		collectEnum(t, n.right, r1, out)
	}
}

func runExhaustive(t *testing.T, ops []rmw.Mapping, pol Policy, initial word.Word) {
	t.Helper()
	n := len(ops)
	reqs := make([]Request, n)
	for i, op := range ops {
		reqs[i] = NewRequest(word.ReqID(i+1), 3, op, word.ProcID(i)).WithReps()
	}
	enumForests(t, reqs, 0, pol, nil, func(roots []*enumNode) {
		cell := initial
		got := make(map[word.ReqID]word.Word, n)
		var order []Leaf
		for _, root := range roots {
			reply := Execute(&cell, root.req)
			collectEnum(t, root, reply, got)
			order = append(order, root.req.Reps...)
		}
		wantReplies, wantFinal := SerialReplies(initial, mappingsOf(order))
		if cell != wantFinal {
			t.Fatalf("ops %v: final %v, want %v", ops, cell, wantFinal)
		}
		for i, leaf := range order {
			if got[leaf.ID] != wantReplies[i] {
				t.Fatalf("ops %v: request %d got %v, want %v", ops, leaf.ID, got[leaf.ID], wantReplies[i])
			}
		}
	})
}

// TestExhaustiveSmallConfigs: all operation assignments over a mixed
// untagged set, n = 1..4, every combining schedule, both with and without
// reversal.
func TestExhaustiveSmallConfigs(t *testing.T) {
	opSet := []rmw.Mapping{
		rmw.FetchAdd(1),
		rmw.FetchAdd(-2),
		rmw.Load{},
		rmw.StoreOf(9),
		rmw.SwapOf(7),
	}
	for _, pol := range []Policy{{}, {AllowReversal: true}} {
		for n := 1; n <= 4; n++ {
			// Enumerate all |opSet|^n assignments.
			idx := make([]int, n)
			for {
				ops := make([]rmw.Mapping, n)
				for i, j := range idx {
					ops[i] = opSet[j]
				}
				runExhaustive(t, ops, pol, word.W(100))
				// Increment the mixed-radix counter.
				i := 0
				for ; i < n; i++ {
					idx[i]++
					if idx[i] < len(opSet) {
						break
					}
					idx[i] = 0
				}
				if i == n {
					break
				}
			}
		}
	}
}

// TestExhaustiveTagged: the same enumeration over the full/empty family,
// n = 1..3, both initial tags.
func TestExhaustiveTagged(t *testing.T) {
	opSet := []rmw.Mapping{
		rmw.FELoad(),
		rmw.FELoadClear(),
		rmw.FEStoreSet(5),
		rmw.FEStoreIfClearSet(6),
		rmw.FEStoreIfClearClear(8),
		rmw.StoreOf(4),
	}
	for _, tag := range []word.Tag{word.Empty, word.Full} {
		for n := 1; n <= 3; n++ {
			idx := make([]int, n)
			for {
				ops := make([]rmw.Mapping, n)
				for i, j := range idx {
					ops[i] = opSet[j]
				}
				runExhaustive(t, ops, Policy{}, word.WT(50, tag))
				i := 0
				for ; i < n; i++ {
					idx[i]++
					if idx[i] < len(opSet) {
						break
					}
					idx[i] = 0
				}
				if i == n {
					break
				}
			}
		}
	}
}
