package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"combining/internal/rmw"
	"combining/internal/word"
)

// TestQuickCombineDecombine: for arbitrary fetch-and-add pairs and initial
// values, the combine/execute/decombine cycle equals serial execution —
// the property-based form of Figure 1.
func TestQuickCombineDecombine(t *testing.T) {
	prop := func(av, bv, init int64, srcA, srcB uint8, reversal bool) bool {
		a := NewRequest(1, 7, rmw.FetchAdd(av), word.ProcID(srcA))
		b := NewRequest(2, 7, rmw.FetchAdd(bv), word.ProcID(srcB))
		comb, rec, ok := Combine(a, b, Policy{AllowReversal: reversal})
		if !ok {
			return false
		}
		cell := word.W(init)
		reply := Execute(&cell, comb)
		r1, r2 := Decombine(rec, reply)
		// Identify each original's reply by id.
		byID := map[word.ReqID]word.Word{r1.ID: r1.Val, r2.ID: r2.Val}
		first, second := a, b
		if rec.Reversed {
			first, second = b, a
		}
		serial, final := SerialReplies(word.W(init), []rmw.Mapping{first.Op, second.Op})
		return byID[first.ID] == serial[0] && byID[second.ID] == serial[1] && cell == final
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickReversalNeverSameSource: across random sources, reversal is
// applied only for distinct-processor pairs.
func TestQuickReversalNeverSameSource(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for i := 0; i < 5000; i++ {
		srcA := word.ProcID(rng.IntN(4))
		srcB := word.ProcID(rng.IntN(4))
		a := NewRequest(1, 7, rmw.Load{}, srcA)
		b := NewRequest(2, 7, rmw.StoreOf(int64(i)), srcB)
		_, rec, ok := Combine(a, b, Policy{AllowReversal: true})
		if !ok {
			t.Fatal("must combine")
		}
		if rec.Reversed && srcA == srcB {
			t.Fatalf("reversed a same-source pair (src %d)", srcA)
		}
		if !rec.Reversed && srcA != srcB {
			t.Fatalf("missed a profitable reversal for distinct sources")
		}
	}
}

// TestQuickWaitBufferBalance: pushes and pops balance for arbitrary
// interleavings; Len never goes negative and capacity is never exceeded.
func TestQuickWaitBufferBalance(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	for trial := 0; trial < 300; trial++ {
		cap := rng.IntN(5) // 0..4
		b := NewWaitBuffer[int](cap)
		live := map[word.ReqID]int{} // id → records held
		var ids []word.ReqID
		for step := 0; step < 200; step++ {
			if rng.IntN(2) == 0 {
				id := word.ReqID(rng.IntN(8) + 1)
				if b.Push(id, step) {
					live[id]++
					ids = append(ids, id)
				} else if b.Len() < cap {
					t.Fatal("push rejected below capacity")
				}
			} else if len(ids) > 0 {
				id := ids[rng.IntN(len(ids))]
				_, ok := b.Pop(id)
				if ok != (live[id] > 0) {
					t.Fatalf("pop(%d) ok=%v but %d records live", id, ok, live[id])
				}
				if ok {
					live[id]--
				}
			}
			if b.Len() > cap {
				t.Fatalf("Len %d exceeds capacity %d", b.Len(), cap)
			}
			sum := 0
			for _, n := range live {
				sum += n
			}
			if b.Len() != sum {
				t.Fatalf("Len %d but %d live records tracked", b.Len(), sum)
			}
		}
	}
}
