package core

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// TestFigure1 walks through Figure 1 of the paper: two fetch-and-add
// requests meet at a switch, combine, reach memory as one message, and the
// reply decombines into the two replies a serial execution would produce.
func TestFigure1(t *testing.T) {
	a := NewRequest(1, 100, rmw.FetchAdd(3), 0)
	b := NewRequest(2, 100, rmw.FetchAdd(5), 1)

	combined, rec, ok := Combine(a, b, Policy{})
	if !ok {
		t.Fatal("requests to the same address must combine")
	}
	if combined.ID != a.ID {
		t.Errorf("combined message carries id %d, want the first request's id %d", combined.ID, a.ID)
	}
	// f∘g must be fetch-and-add of 8.
	if got := combined.Op.Apply(word.W(0)).Val; got != 8 {
		t.Errorf("combined mapping adds %d, want 8", got)
	}

	cell := word.W(10)
	reply := Execute(&cell, combined)
	if cell.Val != 18 {
		t.Errorf("memory after combined request = %d, want 18", cell.Val)
	}

	ra, rb := Decombine(rec, reply)
	if ra.ID != 1 || ra.Val.Val != 10 {
		t.Errorf("first reply = %v, want ⟨1, 10⟩", ra)
	}
	if rb.ID != 2 || rb.Val.Val != 13 {
		t.Errorf("second reply = %v, want ⟨2, 13⟩ (= f(10))", rb)
	}
}

func TestCombineAddressMismatch(t *testing.T) {
	a := NewRequest(1, 100, rmw.FetchAdd(3), 0)
	b := NewRequest(2, 101, rmw.FetchAdd(5), 1)
	if _, _, ok := Combine(a, b, Policy{}); ok {
		t.Fatal("requests to different addresses must not combine")
	}
}

func TestCombineForeignFamilies(t *testing.T) {
	a := NewRequest(1, 100, rmw.FetchAdd(3), 0)
	b := NewRequest(2, 100, rmw.FetchMin(5), 1)
	if _, _, ok := Combine(a, b, Policy{}); ok {
		t.Fatal("uncombinable mappings must be forwarded separately")
	}
}

func TestCombineMergesSources(t *testing.T) {
	a := NewRequest(1, 9, rmw.FetchAdd(1), 4)
	b := NewRequest(2, 9, rmw.FetchAdd(1), 2)
	ab, _, _ := Combine(a, b, Policy{})
	c := NewRequest(3, 9, rmw.FetchAdd(1), 3)
	abc, _, _ := Combine(ab, c, Policy{})
	want := []word.ProcID{2, 3, 4}
	if len(abc.Srcs) != len(want) {
		t.Fatalf("Srcs = %v, want %v", abc.Srcs, want)
	}
	for i, s := range want {
		if abc.Srcs[i] != s {
			t.Fatalf("Srcs = %v, want %v", abc.Srcs, want)
		}
	}
}

// TestTableLoadStoreSwapReversed reproduces the second 3×3 table of
// Section 5.1 (experiment T2): with order reversal enabled, combining a
// store behind a load or swap reverses the pair so the combined message is
// a plain store and no value returns through the network.
func TestTableLoadStoreSwapReversed(t *testing.T) {
	mk := map[string]func() rmw.Mapping{
		"load":  func() rmw.Mapping { return rmw.Load{} },
		"store": func() rmw.Mapping { return rmw.StoreOf(11) },
		"swap":  func() rmw.Mapping { return rmw.SwapOf(22) },
	}
	want := map[[2]string]struct {
		op       string
		reversed bool
	}{
		{"load", "load"}:   {"load", false},
		{"load", "store"}:  {"store", true},
		{"load", "swap"}:   {"swap", false},
		{"store", "load"}:  {"store", false},
		{"store", "store"}: {"store", false},
		{"store", "swap"}:  {"store", false},
		{"swap", "load"}:   {"swap", false},
		{"swap", "store"}:  {"store", true},
		{"swap", "swap"}:   {"swap", false},
	}
	opName := func(m rmw.Mapping) string {
		switch v := m.(type) {
		case rmw.Load:
			return "load"
		case rmw.Const:
			if v.NeedOld {
				return "swap"
			}
			return "store"
		}
		return "?"
	}
	for pair, exp := range want {
		a := NewRequest(1, 5, mk[pair[0]](), 0)
		b := NewRequest(2, 5, mk[pair[1]](), 1)
		combined, rec, ok := Combine(a, b, Policy{AllowReversal: true})
		if !ok {
			t.Fatalf("%s+%s must combine", pair[0], pair[1])
		}
		if got := opName(combined.Op); got != exp.op {
			t.Errorf("%s+%s → %s, want %s", pair[0], pair[1], got, exp.op)
		}
		if rec.Reversed != exp.reversed {
			t.Errorf("%s+%s reversed=%v, want %v", pair[0], pair[1], rec.Reversed, exp.reversed)
		}
		// Whatever the order chosen, decombined replies must match a
		// serial execution in that order.
		cell := word.W(77)
		serialCell := cell
		first, second := a, b
		if rec.Reversed {
			first, second = b, a
		}
		wantReplies, _ := SerialReplies(serialCell, []rmw.Mapping{first.Op, second.Op})
		reply := Execute(&cell, combined)
		r1, r2 := Decombine(rec, reply)
		if r1.ID != first.ID || r1.Val != wantReplies[0] {
			t.Errorf("%s+%s first reply %v, want ⟨%d, %v⟩", pair[0], pair[1], r1, first.ID, wantReplies[0])
		}
		if r2.ID != second.ID || r2.Val != wantReplies[1] {
			t.Errorf("%s+%s second reply %v, want ⟨%d, %v⟩", pair[0], pair[1], r2, second.ID, wantReplies[1])
		}
	}
}

// TestReversalSameSourceGuard: "reversing operations is clearly wrong when
// successive requests of the same processor are combined" (Section 5.1).
func TestReversalSameSourceGuard(t *testing.T) {
	a := NewRequest(1, 5, rmw.Load{}, 3)
	b := NewRequest(2, 5, rmw.StoreOf(9), 3) // same processor
	combined, rec, ok := Combine(a, b, Policy{AllowReversal: true})
	if !ok {
		t.Fatal("must combine")
	}
	if rec.Reversed {
		t.Fatal("reversed two requests from the same processor")
	}
	// The load must see the value before its own store.
	cell := word.W(42)
	reply := Execute(&cell, combined)
	r1, _ := Decombine(rec, reply)
	if r1.Val.Val != 42 {
		t.Errorf("load reply = %d, want 42 (pre-store value)", r1.Val.Val)
	}
	if cell.Val != 9 {
		t.Errorf("final cell = %d, want 9", cell.Val)
	}

	// The guard must also apply transitively through combined messages.
	c := NewRequest(3, 5, rmw.StoreOf(1), 7)
	cd, _, _ := Combine(c, NewRequest(4, 5, rmw.Load{}, 3), Policy{})
	_, rec2, ok := Combine(NewRequest(5, 5, rmw.Load{}, 3), cd, Policy{AllowReversal: true})
	if !ok {
		t.Fatal("must combine")
	}
	if rec2.Reversed {
		t.Error("reversed across a combined message sharing processor 3")
	}
}

func TestWaitBuffer(t *testing.T) {
	t.Run("lifo-per-id", func(t *testing.T) {
		b := NewWaitBuffer[Record](Unbounded)
		r1 := Record{ID1: 1, ID2: 2, F: rmw.FetchAdd(1)}
		r2 := Record{ID1: 1, ID2: 3, F: rmw.FetchAdd(2)}
		if !b.Push(r1.ID1, r1) || !b.Push(r2.ID1, r2) {
			t.Fatal("pushes must succeed")
		}
		got, ok := b.Pop(1)
		if !ok || got.ID2 != 3 {
			t.Fatalf("first pop = %+v, want the most recent record (ID2=3)", got)
		}
		got, ok = b.Pop(1)
		if !ok || got.ID2 != 2 {
			t.Fatalf("second pop = %+v, want the older record (ID2=2)", got)
		}
		if _, ok := b.Pop(1); ok {
			t.Fatal("third pop must miss")
		}
		if b.Len() != 0 {
			t.Fatalf("Len = %d, want 0", b.Len())
		}
	})
	t.Run("capacity", func(t *testing.T) {
		b := NewWaitBuffer[Record](2)
		for i := 0; i < 2; i++ {
			id := word.ReqID(i + 1)
			if !b.Push(id, Record{ID1: id, ID2: 100, F: rmw.Load{}}) {
				t.Fatalf("push %d must succeed", i)
			}
		}
		if b.Push(9, Record{ID1: 9, ID2: 100, F: rmw.Load{}}) {
			t.Fatal("push beyond capacity must fail")
		}
		if b.Rejections != 1 || b.Combines != 2 {
			t.Fatalf("stats: rejections=%d combines=%d", b.Rejections, b.Combines)
		}
		b.Pop(1)
		if !b.CanPush() {
			t.Fatal("pop must free capacity")
		}
	})
	t.Run("disabled", func(t *testing.T) {
		b := NewWaitBuffer[Record](0)
		if b.Push(1, Record{ID1: 1, ID2: 2, F: rmw.Load{}}) {
			t.Fatal("capacity-0 buffer must reject all combines")
		}
	})
}

func TestValueSlots(t *testing.T) {
	cases := []struct {
		m         rmw.Mapping
		req, resp int
	}{
		{rmw.Load{}, 0, 1},
		{rmw.StoreOf(1), 1, 0},
		{rmw.SwapOf(1), 1, 1},
		{rmw.FetchAdd(1), 1, 1},
		{rmw.Bool{A: 1, B: 2}, 2, 1},
		{rmw.FEStoreIfClearSet(1), 1, 1},
		{rmw.FELoadClear(), 0, 1},
	}
	for _, tc := range cases {
		if got := ValueSlots(tc.m); got != tc.req {
			t.Errorf("ValueSlots(%v) = %d, want %d", tc.m, got, tc.req)
		}
		if got := ReplyValueSlots(tc.m); got != tc.resp {
			t.Errorf("ReplyValueSlots(%v) = %d, want %d", tc.m, got, tc.resp)
		}
	}
}

// TestTrafficNeverIncreases is the combining half of experiment E11: for
// every pair in the load/store/swap family (with reversal enabled and the
// requests from distinct processors), the combined request carries no more
// value slots than the two originals together, and likewise for replies.
func TestTrafficNeverIncreases(t *testing.T) {
	ops := []rmw.Mapping{rmw.Load{}, rmw.StoreOf(4), rmw.SwapOf(6)}
	for _, fa := range ops {
		for _, fb := range ops {
			a := NewRequest(1, 0, fa, 0)
			b := NewRequest(2, 0, fb, 1)
			combined, _, ok := Combine(a, b, Policy{AllowReversal: true})
			if !ok {
				t.Fatalf("%v+%v must combine", fa, fb)
			}
			if got, lim := ValueSlots(combined.Op), ValueSlots(fa)+ValueSlots(fb); got > lim {
				t.Errorf("%v+%v: combined request carries %d slots > %d", fa, fb, got, lim)
			}
			if got, lim := ReplyValueSlots(combined.Op), ReplyValueSlots(fa)+ReplyValueSlots(fb); got > lim {
				t.Errorf("%v+%v: combined reply carries %d slots > %d", fa, fb, got, lim)
			}
		}
	}
}
