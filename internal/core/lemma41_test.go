package core

import (
	"math/rand/v2"
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// Machine-checked Lemma 4.1 / Theorem 4.2: combine a random request
// sequence along random binary trees (optionally into a forest — partial
// combining), execute the roots serially at memory, decombine recursively,
// and compare every reply and the final memory content with the serial
// reference execution.

type treeNode struct {
	req         Request
	rec         Record
	left, right *treeNode
}

// combineTree folds the requests [lo, hi) into one message along a random
// tree shape.  Combining must always succeed here: callers pass mappings
// from inter-combinable families.
func combineTree(t *testing.T, rng *rand.Rand, reqs []Request, lo, hi int, pol Policy) *treeNode {
	t.Helper()
	if hi-lo == 1 {
		return &treeNode{req: reqs[lo]}
	}
	mid := lo + 1 + rng.IntN(hi-lo-1)
	left := combineTree(t, rng, reqs, lo, mid, pol)
	right := combineTree(t, rng, reqs, mid, hi, pol)
	combined, rec, ok := Combine(left.req, right.req, pol)
	if !ok {
		t.Fatalf("combine failed: %v + %v", left.req, right.req)
	}
	return &treeNode{req: combined, rec: rec, left: left, right: right}
}

// collectReplies walks the decombining fan-out, assigning each original
// request its reply value.
func collectReplies(t *testing.T, n *treeNode, reply Reply, out map[word.ReqID]word.Word) {
	t.Helper()
	if n.left == nil {
		if reply.ID != n.req.ID {
			t.Fatalf("leaf %d received reply %v", n.req.ID, reply)
		}
		out[n.req.ID] = reply.Val
		return
	}
	r1, r2 := Decombine(n.rec, reply)
	// r1 belongs to whichever child was serialized first.
	if n.left.req.ID == r1.ID {
		collectReplies(t, n.left, r1, out)
		collectReplies(t, n.right, r2, out)
	} else {
		collectReplies(t, n.left, r2, out)
		collectReplies(t, n.right, r1, out)
	}
}

// randRequests builds a sequence of requests over combinable families.
// Family selection per sequence keeps every pair composable.
func randRequests(rng *rand.Rand, n int, tagged bool) []Request {
	reqs := make([]Request, n)
	fam := rng.IntN(4)
	for i := range reqs {
		var op rmw.Mapping
		if tagged {
			v := int64(rng.IntN(100))
			ops := []rmw.Mapping{
				rmw.FELoad(), rmw.FELoadClear(), rmw.FEStoreSet(v),
				rmw.FEStoreIfClearSet(v), rmw.FEStoreClear(v),
				rmw.FEStoreIfClearClear(v), rmw.StoreOf(v), rmw.Load{},
			}
			op = ops[rng.IntN(len(ops))]
		} else {
			v := int64(rng.IntN(2001) - 1000)
			switch {
			case rng.IntN(3) == 0: // universal ops mix into any family
				universal := []rmw.Mapping{rmw.Load{}, rmw.StoreOf(v), rmw.SwapOf(v)}
				op = universal[rng.IntN(len(universal))]
			case fam == 0:
				op = rmw.FetchAdd(v)
			case fam == 1:
				op = rmw.Bool{A: rng.Uint64(), B: rng.Uint64()}
			case fam == 2:
				op = rmw.Affine{A: int64(rng.IntN(7) - 3), B: v}
			default:
				op = rmw.FetchXor(v)
			}
		}
		reqs[i] = NewRequest(word.ReqID(i+1), 7, op, word.ProcID(rng.IntN(8))).WithReps()
	}
	return reqs
}

func runLemma41Trial(t *testing.T, rng *rand.Rand, tagged bool, pol Policy) {
	t.Helper()
	n := 1 + rng.IntN(12)
	reqs := randRequests(rng, n, tagged)

	// Partition the sequence into segments; each segment combines into
	// one tree (a forest models partial combining), and the roots reach
	// memory in segment order.
	var roots []*treeNode
	lo := 0
	for lo < n {
		hi := lo + 1 + rng.IntN(n-lo)
		roots = append(roots, combineTree(t, rng, reqs, lo, hi, pol))
		lo = hi
	}

	initial := word.WT(int64(rng.IntN(50)), word.Tag(rng.IntN(2)))
	cell := initial
	got := make(map[word.ReqID]word.Word, n)
	for _, root := range roots {
		// Lemma 4.1(1): the combined mapping equals the composition of
		// the mappings it represents.
		composed, ok := rmw.ComposeAll(mappingsOf(root.req.Reps)...)
		if !ok {
			t.Fatal("representation list must recompose")
		}
		for _, probe := range []word.Word{initial, word.WT(13, word.Full), word.W(-4)} {
			if root.req.Op.Apply(probe) != composed.Apply(probe) {
				t.Fatalf("combined op %v differs from composition of reps at %v", root.req.Op, probe)
			}
		}
		reply := Execute(&cell, root.req)
		collectReplies(t, root, reply, got)
	}

	// The serialization order is the concatenation of the roots'
	// representation lists.
	var order []Leaf
	for _, root := range roots {
		order = append(order, root.req.Reps...)
	}
	if len(order) != n {
		t.Fatalf("representation lists cover %d of %d requests", len(order), n)
	}
	wantReplies, wantFinal := SerialReplies(initial, mappingsOf(order))
	// Lemma 4.1(3): final memory content matches the serial execution.
	if cell != wantFinal {
		t.Fatalf("final cell %v, want %v", cell, wantFinal)
	}
	// Lemma 4.1(2): every reply matches the serial execution.
	for i, leaf := range order {
		if got[leaf.ID] != wantReplies[i] {
			t.Fatalf("request %d (%v) got reply %v, want %v (order %v)",
				leaf.ID, leaf.Op, got[leaf.ID], wantReplies[i], order)
		}
	}
}

func mappingsOf(leaves []Leaf) []rmw.Mapping {
	ops := make([]rmw.Mapping, len(leaves))
	for i, l := range leaves {
		ops[i] = l.Op
	}
	return ops
}

func TestLemma41RandomTrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 202))
	for trial := 0; trial < 4000; trial++ {
		runLemma41Trial(t, rng, false, Policy{})
	}
}

func TestLemma41TaggedFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 204))
	for trial := 0; trial < 4000; trial++ {
		runLemma41Trial(t, rng, true, Policy{})
	}
}

func TestLemma41WithReversal(t *testing.T) {
	// With reversal the serialization order differs from issue order but
	// the representation lists track it, so the same checks apply.
	rng := rand.New(rand.NewPCG(105, 206))
	for trial := 0; trial < 4000; trial++ {
		runLemma41Trial(t, rng, false, Policy{AllowReversal: true})
	}
}
