package core

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// qe is a minimal transport queue element for the shared scan.
type qe struct {
	req Request
}

func qreq(e *qe) *Request { return &e.req }

// TestCombineAtTail covers the M2.3 scan both engines previously duplicated,
// including the paths where they had historically diverged: the
// non-combinable partner must stop the scan (not fall through to an earlier
// combinable entry), and a full wait buffer must forfeit the combine as a
// rejection.
func TestCombineAtTail(t *testing.T) {
	req := func(id word.ReqID, addr word.Addr, op rmw.Mapping) Request {
		return NewRequest(id, addr, op, word.ProcID(id%8))
	}
	roomy := func() bool { return true }
	full := func() bool { return false }

	cases := []struct {
		name     string
		queue    []qe
		m        Request
		pol      Policy
		canPush  func() bool
		wantOK   bool
		wantRej  bool
		wantIdx  int
		wantSwap bool
	}{
		{
			name:    "empty queue",
			queue:   nil,
			m:       req(1, 7, rmw.FetchAdd(1)),
			canPush: roomy,
		},
		{
			name:    "no same-address entry",
			queue:   []qe{{req(1, 3, rmw.FetchAdd(1))}, {req(2, 4, rmw.FetchAdd(1))}},
			m:       req(3, 7, rmw.FetchAdd(1)),
			canPush: roomy,
		},
		{
			name:    "combines with the only partner",
			queue:   []qe{{req(1, 7, rmw.FetchAdd(2))}},
			m:       req(2, 7, rmw.FetchAdd(3)),
			canPush: roomy,
			wantOK:  true,
			wantIdx: 0,
		},
		{
			name: "combines with the last partner, skipping other addresses",
			queue: []qe{
				{req(1, 7, rmw.FetchAdd(1))},
				{req(2, 7, rmw.FetchAdd(1))},
				{req(3, 5, rmw.FetchAdd(1))},
			},
			m:       req(4, 7, rmw.FetchAdd(1)),
			canPush: roomy,
			wantOK:  true,
			wantIdx: 1,
		},
		{
			name: "non-combinable partner stops the scan",
			// The earlier entry at the same address IS combinable with m,
			// but pairing past the fetch-and-min would overtake it
			// (M2.3); the scan must break, not continue.
			queue: []qe{
				{req(1, 7, rmw.FetchAdd(1))},
				{req(2, 7, rmw.FetchMin(0))},
			},
			m:       req(3, 7, rmw.FetchAdd(1)),
			canPush: roomy,
		},
		{
			name:    "full wait buffer forfeits the combine",
			queue:   []qe{{req(1, 7, rmw.FetchAdd(1))}},
			m:       req(2, 7, rmw.FetchAdd(1)),
			canPush: full,
			wantRej: true,
		},
		{
			name:    "order reversal swaps the serialization",
			queue:   []qe{{req(1, 7, rmw.FetchAdd(3))}},
			m:       req(2, 7, rmw.StoreOf(5)),
			pol:     Policy{AllowReversal: true},
			canPush: roomy,
			wantOK:  true,
			wantIdx: 0,
			// store∘add is a plain store (no value returns); the
			// arrival is serialized first.
			wantSwap: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rejected, ok := CombineAtTail(tc.queue, qreq, tc.m, tc.pol, tc.canPush)
			if ok != tc.wantOK || rejected != tc.wantRej {
				t.Fatalf("ok=%v rejected=%v, want ok=%v rejected=%v", ok, rejected, tc.wantOK, tc.wantRej)
			}
			if !ok {
				return
			}
			if got.Index != tc.wantIdx {
				t.Errorf("index %d, want %d", got.Index, tc.wantIdx)
			}
			if got.Swapped != tc.wantSwap {
				t.Errorf("swapped %v, want %v", got.Swapped, tc.wantSwap)
			}
			first, second := tc.queue[got.Index].req, tc.m
			if got.Swapped {
				first, second = tc.m, tc.queue[got.Index].req
			}
			if got.Combined.ID != first.ID || got.Rec.ID1 != first.ID || got.Rec.ID2 != second.ID {
				t.Errorf("ids: combined %d rec (%d,%d), want first %d second %d",
					got.Combined.ID, got.Rec.ID1, got.Rec.ID2, first.ID, second.ID)
			}
			// The combined mapping must act like first-then-second.
			w := word.W(100)
			serial := second.Op.Apply(first.Op.Apply(w))
			if got.Combined.Op.Apply(w) != serial {
				t.Errorf("combined op %v is not %v∘%v", got.Combined.Op, first.Op, second.Op)
			}
		})
	}
}

// TestCombineAtTailChain verifies k-way combining through the helper: a
// combined queue entry keeps absorbing later arrivals.
func TestCombineAtTailChain(t *testing.T) {
	wait := NewWaitBuffer[Record](Unbounded)
	queue := []qe{{NewRequest(1, 9, rmw.FetchAdd(1), 0)}}
	for id := word.ReqID(2); id <= 5; id++ {
		m := NewRequest(id, 9, rmw.FetchAdd(1), word.ProcID(id))
		tc, rejected, ok := CombineAtTail(queue, qreq, m, Policy{}, wait.CanPush)
		if !ok || rejected {
			t.Fatalf("arrival %d did not combine (rejected=%v)", id, rejected)
		}
		if !wait.Push(tc.Rec.ID1, tc.Rec) {
			t.Fatalf("push failed despite CanPush")
		}
		queue[tc.Index].req = tc.Combined
	}
	if len(queue) != 1 || wait.Len() != 4 {
		t.Fatalf("queue %d entries, wait %d records; want 1 and 4", len(queue), wait.Len())
	}
	// Decombine the whole chain: replies must be the serial prefix sums.
	var cell = word.W(0)
	rep := Execute(&cell, queue[0].req)
	got := map[word.ReqID]int64{}
	var walk func(Reply)
	walk = func(r Reply) {
		if rec, ok := wait.Pop(r.ID); ok {
			r1, r2 := Decombine(rec, r)
			walk(r1)
			walk(r2)
			return
		}
		got[r.ID] = r.Val.Val
	}
	walk(rep)
	for id := word.ReqID(1); id <= 5; id++ {
		if got[id] != int64(id-1) {
			t.Errorf("reply %d = %d, want %d", id, got[id], id-1)
		}
	}
	if cell.Val != 5 {
		t.Errorf("final cell %d, want 5", cell.Val)
	}
}
