package core

import (
	"combining/internal/rmw"
)

// TailCombine describes a successful queue combine performed by
// CombineAtTail.
type TailCombine struct {
	// Index is the partner's position in the queue; the caller replaces
	// that element with a message carrying Combined.
	Index int
	// Combined is the merged request ⟨first.ID, addr, f∘g⟩.
	Combined Request
	// Rec is the wait-buffer record to push under Rec.ID1, after the
	// caller attaches its transport routing state.
	Rec Record
	// Swapped reports that the order-reversal optimization serialized the
	// incoming request first: the caller's "first" metadata (path, issue
	// time, source) comes from the arrival and "second" from the queued
	// partner, instead of the natural order.
	Swapped bool
}

// CombineAtTail is the one legal queue-combining step, shared by every
// transport.  It scans queue from the tail for the most recent same-address
// entry and attempts to combine the arriving request m with it.
//
// Only that most recent entry is a legal partner: combining attaches the
// arrival's effect to the partner's queue position, so pairing with an
// earlier entry would serialize the arrival ahead of any same-address
// request queued between them — overtaking that the per-location FIFO
// condition (M2.3) forbids.  The scan therefore stops at the first
// same-address entry it meets, whether or not the pair combines.  (With an
// unbounded wait buffer a non-combinable partner cannot shadow a combinable
// one: any two same-address combinable entries would already have merged.)
//
// reqOf projects a queue element to its request.  canPush asks the
// transport's wait buffer for room before the combine is committed.
// rejected reports a combine forfeited only because canPush refused — the
// partial-combining event the A1 ablation counts.  On ok the caller must
// push Rec into its wait buffer and overwrite queue[Index] with Combined
// plus the first message's routing metadata (see Swapped).
func CombineAtTail[T any](queue []T, reqOf func(*T) *Request, m Request, pol Policy, canPush func() bool) (tc TailCombine, rejected, ok bool) {
	for i := len(queue) - 1; i >= 0; i-- {
		partner := reqOf(&queue[i])
		if partner.Addr != m.Addr {
			continue
		}
		if !rmw.Combinable(partner.Op, m.Op) {
			return TailCombine{}, false, false
		}
		if !canPush() {
			return TailCombine{}, true, false
		}
		combined, rec, cok := Combine(*partner, m, pol)
		if !cok {
			return TailCombine{}, false, false
		}
		return TailCombine{
			Index:    i,
			Combined: combined,
			Rec:      rec,
			Swapped:  rec.ID1 == m.ID,
		}, false, true
	}
	return TailCombine{}, false, false
}
