package core

import (
	"encoding/binary"

	"combining/internal/rmw"
	"combining/internal/word"
)

// End-to-end message integrity (DESIGN.md §8).
//
// Under adversarial fault plans, links may flip payload bits.  The defense
// is a payload checksum carried out-of-band of the corruptor: Sum covers
// exactly the fields a link-level corruption can damage — (id, addr, op)
// for requests, (id, val) for replies — and is stamped in the trusted zone
// (the issuing processor's network interface, or the last switch before an
// adversarial link when combining has legitimately rewritten the op).  A
// receiver that finds Sum disagreeing with the payload quarantines the
// message; the PR-2 retransmit/reply-cache machinery then repairs the loss
// exactly-once.  CorruptRequest/CorruptReply are the fault injector's
// hands: they flip payload bits selected by a hash-drawn mask and never
// touch Sum, so detection is certain whenever verification runs.

// RequestSum computes the payload checksum of a request: FNV-1a over the
// id, the address, and the op's wire encoding.  Attempt, Srcs, and Reps are
// routing/bookkeeping metadata outside the corruptor's reach and are not
// covered — a retransmit keeps its issue-time sum.
func RequestSum(r Request) uint32 {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Addr))
	buf = rmw.AppendEncode(buf, r.Op)
	return fnv1a(buf)
}

// StampRequest returns the request with its checksum stamped.
func StampRequest(r Request) Request {
	r.Sum = RequestSum(r)
	return r
}

// RequestOK reports whether the request's payload matches its checksum.
func RequestOK(r Request) bool { return r.Sum == RequestSum(r) }

// ReplySum computes the payload checksum of a reply: FNV-1a over the id
// and the value word.  The leaf map is switch-internal state that never
// crosses an adversarial link and is not covered.
func ReplySum(p Reply) uint32 {
	var buf [17]byte
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(p.ID))
	le.PutUint64(buf[8:], uint64(p.Val.Val))
	buf[16] = byte(p.Val.Tag)
	return fnv1a(buf[:])
}

// StampReply returns the reply with its checksum stamped.
func StampReply(p Reply) Reply {
	p.Sum = ReplySum(p)
	return p
}

// ReplyOK reports whether the reply's payload matches its checksum.
func ReplyOK(p Reply) bool { return p.Sum == ReplySum(p) }

// CorruptRequest flips payload bits selected by mask — the address always
// (so any nonzero mask guarantees a detectable change), and the op's
// argument when the op family carries one — leaving Sum untouched.
func CorruptRequest(r Request, mask uint64) Request {
	r.Addr ^= word.Addr(uint32(mask) | 1)
	arg := int64(mask >> 32)
	switch op := r.Op.(type) {
	case rmw.Assoc:
		op.A ^= arg
		r.Op = op
	case rmw.Const:
		op.V ^= arg
		r.Op = op
	case rmw.Affine:
		op.B ^= arg
		r.Op = op
	}
	return r
}

// CorruptReply flips value bits selected by mask, leaving Sum untouched.
func CorruptReply(p Reply, mask uint64) Reply {
	p.Val.Val ^= int64(mask | 1)
	return p
}

// fnv1a is the 32-bit FNV-1a hash, mapped away from 0 so a stamped sum is
// always distinguishable from the zero (unstamped) field.
func fnv1a(buf []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range buf {
		h ^= uint32(b)
		h *= 16777619
	}
	if h == 0 {
		return 1
	}
	return h
}
