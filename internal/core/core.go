// Package core implements the paper's central contribution: the memory
// request combining mechanism of Section 4.
//
// A memory request message is ⟨id, addr, f⟩.  When two requests to the same
// address meet, they are replaced by the single message ⟨id₁, addr, f∘g⟩,
// and the tuple (id₁, id₂, f) is saved in a wait buffer.  When the reply
// ⟨id₁, val⟩ returns, the saved record is popped and the two replies
// ⟨id₁, val⟩ and ⟨id₂, f(val)⟩ are generated — Figure 1 of the paper.
//
// The package is transport-agnostic: both the cycle-accurate network
// simulator (internal/network) and the asynchronous goroutine network
// (internal/asyncnet) drive their switches with these primitives, and the
// correctness experiments exercise them directly over arbitrary combining
// trees (Lemma 4.1, Theorem 4.2).
package core

import (
	"fmt"

	"combining/internal/rmw"
	"combining/internal/word"
)

// Request is a memory request message ⟨id, addr, f⟩ plus the metadata the
// combining rules need: the set of issuing processors it represents (the
// order-reversal optimization must never reorder two requests from the same
// processor) and, when Lemma 4.1 bookkeeping is enabled, the ordered list
// of original requests it represents.
type Request struct {
	ID   word.ReqID
	Addr word.Addr
	Op   rmw.Mapping

	// Attempt is the retransmission counter under fault injection: 0 for
	// an original request, k for its k-th retransmit.  The id never
	// changes across attempts — it is the exactly-once key the memory
	// reply cache deduplicates on — and a retransmit (Attempt > 0) never
	// combines, so every copy reaching memory names its leaves exactly.
	Attempt uint32

	// Srcs is the sorted set of processors whose requests this message
	// represents.  A fresh request has exactly one entry.
	Srcs []word.ProcID

	// Reps is the representation list of Lemma 4.1: the original
	// requests, in serialization order.  It is carried only when the
	// issuing machine enables debug bookkeeping; production transports
	// leave it nil.
	Reps []Leaf

	// Sum is the end-to-end payload checksum over (id, addr, op), stamped
	// in the trusted zone — at issue time, and restamped by a combining
	// switch since combining legitimately rewrites the op — and verified
	// by receivers under adversarial fault plans.  0 means unstamped; see
	// integrity.go.
	Sum uint32
}

// Leaf records one original (uncombined) processor request inside a
// representation list.
type Leaf struct {
	ID  word.ReqID
	Src word.ProcID
	Op  rmw.Mapping
}

// NewRequest builds a fresh (uncombined) request message.
func NewRequest(id word.ReqID, addr word.Addr, op rmw.Mapping, src word.ProcID) Request {
	return Request{ID: id, Addr: addr, Op: op, Srcs: []word.ProcID{src}}
}

// WithReps returns a copy of the request carrying its own representation
// leaf, enabling Lemma 4.1 bookkeeping through every later combine.
func (r Request) WithReps() Request {
	if len(r.Srcs) != 1 {
		panic("core: WithReps on an already-combined request")
	}
	r.Reps = []Leaf{{ID: r.ID, Src: r.Srcs[0], Op: r.Op}}
	return r
}

// Clone returns a copy of the request whose slice-typed fields (Srcs,
// Reps) own their storage.  Engines that duplicate a message — the
// adversarial dup links — must go through it: a plain struct copy shares
// the backing arrays, so recycling or growing either copy's slices would
// corrupt the other.
func (r Request) Clone() Request {
	c := r
	if r.Srcs != nil {
		c.Srcs = append(make([]word.ProcID, 0, len(r.Srcs)), r.Srcs...)
	}
	if r.Reps != nil {
		c.Reps = append(make([]Leaf, 0, len(r.Reps)), r.Reps...)
	}
	return c
}

// String renders the message in the paper's ⟨id, addr, f⟩ form.
func (r Request) String() string {
	return fmt.Sprintf("⟨%d, @%d, %s⟩", r.ID, r.Addr, r.Op)
}

// Reply is a reply message ⟨id, val⟩.
type Reply struct {
	ID  word.ReqID
	Val word.Word

	// Attempt echoes the request attempt this reply answers, letting
	// transports account recovered (retransmitted) deliveries separately.
	Attempt uint32

	// Leaves, when non-nil, is the exact per-leaf value map produced by a
	// reply-caching memory module: for every original request id the
	// message represented, the value that request's operation saw.  Fault-
	// tolerant transports decombine against this map (DecombineExact)
	// instead of re-applying mappings, so a stale wait-buffer record —
	// left behind when a combined message was dropped and its leaves
	// retransmitted separately — can never synthesize a bogus reply.
	Leaves map[word.ReqID]word.Word

	// Sum is the end-to-end payload checksum over (id, val), stamped by
	// the last trusted hop before an adversarial link and verified at
	// delivery; see integrity.go.
	Sum uint32
}

// String renders the reply.
func (p Reply) String() string { return fmt.Sprintf("⟨%d, %s⟩", p.ID, p.Val) }

// Clone returns a copy of the reply whose Leaves map owns its storage —
// the reply-side counterpart of Request.Clone, for transports that
// duplicate a reply in flight.
func (p Reply) Clone() Reply {
	c := p
	if p.Leaves != nil {
		c.Leaves = make(map[word.ReqID]word.Word, len(p.Leaves))
		for id, v := range p.Leaves {
			c.Leaves[id] = v
		}
	}
	return c
}

// Record is the wait-buffer entry saved when two requests combine: the two
// ids and the first request's mapping, which synthesizes the second reply.
// Transports attach their own routing state (which port each original
// request arrived on) via the Port fields.
type Record struct {
	ID1, ID2 word.ReqID
	F        rmw.Mapping
	// Reversed notes that the combiner applied the Section 5.1
	// order-reversal optimization, i.e. the request that arrived second
	// was serialized first.  It affects only diagnostics; decombining is
	// identical.
	Reversed bool
	// Port1 and Port2 record transport routing state for the two
	// replies (input-port indexes in the network switches).
	Port1, Port2 int
}

// Policy configures a combiner.
type Policy struct {
	// AllowReversal enables the Section 5.1 optimization: serialize the
	// later request first when that turns the combined message into a
	// plain store (saving the returned value).  Reversal is suppressed
	// when the two messages share a represented processor, which would
	// reorder a processor's own requests.
	AllowReversal bool
}

// Combine attempts to combine request a (serialized first) with request b.
// On success it returns the combined message and the wait-buffer record.
// Combining fails — and the transport must forward the requests separately,
// which is always correct ("partial combining") — when the addresses
// differ or the mapping families do not compose.
func Combine(a, b Request, pol Policy) (Request, Record, bool) {
	if a.Addr != b.Addr {
		return Request{}, Record{}, false
	}
	// Retransmits never combine: a retransmitted message must reach memory
	// naming exactly the leaves it was issued with, so the reply cache can
	// answer it precisely; folding it into fresh traffic would mint wait
	// records for deliveries the original copy may already have made.
	if a.Attempt != 0 || b.Attempt != 0 {
		return Request{}, Record{}, false
	}
	first, second, reversed := a, b, false
	if pol.AllowReversal && !sharesSource(a, b) && shouldReverse(a.Op, b.Op) {
		first, second, reversed = b, a, true
	}
	op, ok := rmw.Compose(first.Op, second.Op)
	if !ok {
		return Request{}, Record{}, false
	}
	combined := Request{
		ID:   first.ID,
		Addr: a.Addr,
		Op:   op,
		Srcs: mergeSrcs(a.Srcs, b.Srcs),
	}
	if a.Reps != nil || b.Reps != nil {
		combined.Reps = append(append([]Leaf{}, first.Reps...), second.Reps...)
	}
	rec := Record{ID1: first.ID, ID2: second.ID, F: first.Op, Reversed: reversed}
	return combined, rec, true
}

// shouldReverse reports whether serializing b before a strictly reduces
// reply traffic: the reversed combination is a plain store (no value
// returns through the network) while the natural order is not.
func shouldReverse(fa, fb rmw.Mapping) bool {
	natural, ok1 := rmw.Compose(fa, fb)
	reversedOp, ok2 := rmw.Compose(fb, fa)
	if !ok1 || !ok2 {
		return false
	}
	return rmw.NeedsValue(natural) && !rmw.NeedsValue(reversedOp)
}

// sharesSource reports whether the two messages represent requests from a
// common processor.  Srcs slices are sorted, so this is a linear merge.
func sharesSource(a, b Request) bool {
	i, j := 0, 0
	for i < len(a.Srcs) && j < len(b.Srcs) {
		switch {
		case a.Srcs[i] == b.Srcs[j]:
			return true
		case a.Srcs[i] < b.Srcs[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// mergeSrcs merges two sorted processor sets.
func mergeSrcs(a, b []word.ProcID) []word.ProcID {
	out := make([]word.ProcID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Decombine splits the reply to a combined request back into the replies to
// the two requests it was built from: ⟨id₁, val⟩ and ⟨id₂, f(val)⟩.
func Decombine(rec Record, reply Reply) (Reply, Reply) {
	if reply.ID != rec.ID1 {
		panic(fmt.Sprintf("core: decombining reply %v against record for id %d", reply, rec.ID1))
	}
	return Reply{ID: rec.ID1, Val: reply.Val},
		Reply{ID: rec.ID2, Val: rec.F.Apply(reply.Val)}
}

// CanDecombine reports whether the record is the one the reply answers.  A
// plain reply (no leaf map) answers any record keyed by its id, as on a
// healthy network.  A fat reply answers only records whose second id appears
// in its leaf map: a stale record — minted when a combined message was later
// dropped and its leaves retransmitted separately — does not, and must stay
// buffered (it is harmless; see WaitBuffer.PopMatch).
func CanDecombine(rec Record, reply Reply) bool {
	if reply.Leaves == nil {
		return true
	}
	_, ok := reply.Leaves[rec.ID2]
	return ok
}

// DecombineExact splits a fat reply using the memory's exact per-leaf values
// rather than re-applying the record's mapping.  Both halves inherit the
// incoming leaf map and attempt so decombining recurses correctly through
// nested records.  Callers must have checked CanDecombine.
func DecombineExact(rec Record, reply Reply) (Reply, Reply) {
	if reply.Leaves == nil {
		return Decombine(rec, reply)
	}
	if reply.ID != rec.ID1 {
		panic(fmt.Sprintf("core: decombining reply %v against record for id %d", reply, rec.ID1))
	}
	v2, ok := reply.Leaves[rec.ID2]
	if !ok {
		panic(fmt.Sprintf("core: DecombineExact for id %d without its leaf value", rec.ID2))
	}
	v1 := reply.Val
	if lv, ok := reply.Leaves[rec.ID1]; ok {
		v1 = lv
	}
	return Reply{ID: rec.ID1, Val: v1, Attempt: reply.Attempt, Leaves: reply.Leaves},
		Reply{ID: rec.ID2, Val: v2, Attempt: reply.Attempt, Leaves: reply.Leaves}
}
