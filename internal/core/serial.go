package core

import (
	"combining/internal/rmw"
	"combining/internal/word"
)

// Serial reference semantics.  Lemma 4.1 and Theorem 4.2 state that a
// combining memory system behaves as if the represented requests executed
// consecutively at memory; these helpers compute that reference behaviour.

// Execute performs one memory-side RMW on a cell (Section 2's "memory-side"
// implementation): the old value is captured, the mapping applied, and the
// old value returned as the reply.
func Execute(cell *word.Word, req Request) Reply {
	old := *cell
	*cell = req.Op.Apply(old)
	return Reply{ID: req.ID, Val: old}
}

// SerialReplies executes the mappings consecutively starting from initial
// and returns the value each would see (the reply to each request) plus the
// final memory content.
func SerialReplies(initial word.Word, ops []rmw.Mapping) ([]word.Word, word.Word) {
	replies := make([]word.Word, len(ops))
	cur := initial
	for i, op := range ops {
		replies[i] = cur
		cur = op.Apply(cur)
	}
	return replies, cur
}

// ValueSlots counts the 64-bit data payloads a request message carries for
// the given mapping — the quantity the Section 5.1/5.5 traffic argument
// bounds.  Loads carry none; stores, swaps and fetch-and-θ carry one; the
// two-mask and affine families carry two; Möbius carries four; a state
// table carries its distinct store values.
func ValueSlots(m rmw.Mapping) int {
	switch v := m.(type) {
	case rmw.Load:
		return 0
	case rmw.Const:
		return 1
	case rmw.Assoc:
		return 1
	case rmw.Bool:
		return 2
	case rmw.Affine:
		return 2
	case rmw.Moebius:
		return 4
	case rmw.Table:
		return len(v.StoreValues())
	default:
		// Conservative: charge the full encoding.
		return (m.EncodedBits() + 63) / 64
	}
}

// ReplyValueSlots counts the data payloads the reply to a request carries:
// one, unless the request is a plain store acknowledged without a value.
func ReplyValueSlots(m rmw.Mapping) int {
	if rmw.NeedsValue(m) {
		return 1
	}
	return 0
}
