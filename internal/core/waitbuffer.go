package core

import (
	"combining/internal/word"
)

// WaitBuffer holds the records of combines performed at one switch, keyed
// by the combined message's id.  The same id can key several records: a
// combined message that is still queued may combine again with a later
// arrival, so replies decombine in LIFO order — the most recent combine is
// undone first.
//
// The record type is generic so transports can attach routing state (reply
// path headers, port indexes) to the basic Record.
//
// The buffer has a capacity: real combining switches have a small
// associative memory, and when it is full the switch simply forwards
// requests uncombined.  The paper notes that such partial combining is
// always correct; experiment A1 measures its performance cost.
type WaitBuffer[R any] struct {
	capacity int
	size     int
	recs     map[word.ReqID][]R

	// Combines counts successful pushes, for the combining-rate metrics.
	Combines int64
	// Rejections counts pushes refused for capacity.
	Rejections int64
}

// Unbounded is the WaitBuffer capacity for an unlimited buffer.
const Unbounded = -1

// NewWaitBuffer returns a buffer holding at most capacity records;
// capacity 0 disables combining entirely and Unbounded removes the limit.
func NewWaitBuffer[R any](capacity int) *WaitBuffer[R] {
	return &WaitBuffer[R]{capacity: capacity, recs: make(map[word.ReqID][]R)}
}

// Len returns the number of records currently held.
func (b *WaitBuffer[R]) Len() int { return b.size }

// CanPush reports whether the buffer has room for another record.
func (b *WaitBuffer[R]) CanPush() bool {
	return b.capacity == Unbounded || b.size < b.capacity
}

// Push saves a combine record under the combined message's id.  It reports
// false — meaning the transport must not combine — when the buffer is full.
func (b *WaitBuffer[R]) Push(id word.ReqID, rec R) bool {
	if !b.CanPush() {
		b.Rejections++
		return false
	}
	b.recs[id] = append(b.recs[id], rec)
	b.size++
	b.Combines++
	return true
}

// PopMatch retrieves and removes the most recent record for a reply id that
// the match predicate accepts, scanning from newest to oldest.  Records the
// predicate rejects stay buffered untouched.  Fault-tolerant transports use
// this with core.CanDecombine so a stale record (its combined message was
// dropped downstream of the combine) is skipped rather than popped: the
// record's second requester recovers by retransmitting, and the stale entry
// merely occupies a slot until the run ends.
func (b *WaitBuffer[R]) PopMatch(id word.ReqID, match func(R) bool) (R, bool) {
	stack := b.recs[id]
	for i := len(stack) - 1; i >= 0; i-- {
		if !match(stack[i]) {
			continue
		}
		rec := stack[i]
		if len(stack) == 1 {
			delete(b.recs, id)
		} else {
			b.recs[id] = append(stack[:i:i], stack[i+1:]...)
		}
		b.size--
		return rec, true
	}
	var zero R
	return zero, false
}

// Flush empties the buffer and returns every record — the crash path of a
// switch losing its associative memory.  Record order is unspecified;
// callers must fold the records into order-insensitive state (sets,
// counters).  Combines/Rejections totals are left intact: they describe
// work done, including work a crash later threw away.
func (b *WaitBuffer[R]) Flush() []R {
	if b.size == 0 {
		return nil
	}
	out := make([]R, 0, b.size)
	for id, stack := range b.recs {
		out = append(out, stack...)
		delete(b.recs, id)
	}
	b.size = 0
	return out
}

// Pop retrieves and removes the most recent record for a reply id.  ok is
// false when the reply was never combined at this buffer and should be
// forwarded as is.
func (b *WaitBuffer[R]) Pop(id word.ReqID) (R, bool) {
	stack := b.recs[id]
	if len(stack) == 0 {
		var zero R
		return zero, false
	}
	rec := stack[len(stack)-1]
	if len(stack) == 1 {
		delete(b.recs, id)
	} else {
		b.recs[id] = stack[:len(stack)-1]
	}
	b.size--
	return rec, true
}
