package machine

import (
	"reflect"
	"sort"
	"testing"

	"combining/internal/asyncnet"
	"combining/internal/busnet"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Snapshot-schema parity: every engine must publish exactly the canonical
// counter key set — engine.CounterKeys() on a clean run, plus
// faults.CounterKeys() under a fault plan — so tooling that reads one
// engine's snapshot reads them all.  This is the regression test for the
// schema drift the four hand-rolled snapshot builders had accumulated
// (asyncnet hardcoding orphan_replies to zero was the worst of it): the
// key sets are compared across engines, not just against the constant, so
// a key added to one engine without the core helper fails loudly.

func counterKeys(t *testing.T, name string, counters map[string]int64) []string {
	t.Helper()
	if len(counters) == 0 {
		t.Fatalf("%s: snapshot has no counters", name)
	}
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runSchemaEngine drives a soak engine through a short hot-spot workload
// and returns its sorted snapshot counter keys.
func runSchemaEngine(t *testing.T, name string, build func([]network.Injector) soakEngine) []string {
	t.Helper()
	const nprocs, reqs = 16, 4
	progs := hotPrograms(nprocs, reqs)
	m, inj := NewInjectors(progs)
	eng := build(inj)
	m.BindEngine(eng)
	if !m.Run(2000000) {
		t.Fatalf("%s: did not complete (%d in flight)", name, eng.InFlight())
	}
	return counterKeys(t, name, eng.Snapshot().Counters)
}

// runSchemaAsync runs the goroutine engine through the same shape of
// workload and returns its sorted snapshot counter keys.
func runSchemaAsync(t *testing.T, name string, plan *faults.Plan) []string {
	t.Helper()
	net := asyncnet.New(asyncnet.Config{Procs: 16, Combining: true, Window: 4, Faults: plan})
	defer net.Close()
	for p := 0; p < 16; p++ {
		port := net.Port(p)
		for i := 0; i < 4; i++ {
			port.RMW(word.Addr(7), rmw.FetchAdd(1))
		}
	}
	return counterKeys(t, name, net.Snapshot().Counters)
}

func TestSnapshotSchemaParity(t *testing.T) {
	// Four plan regimes: clean (engine keys only), message faults,
	// crash–restart plans, and adversarial delivery (reorder, duplication,
	// corruption).  Every faulted regime must publish the same canonical
	// key set — the crash counters (crashes, restores, checkpoints,
	// lost_in_flight, replayed_requests, crash_cycles) and the adversarial
	// counters (reordered_held, dup_injected, corrupt_dropped) are part of
	// faults.CounterKeys(), present as structural zeros on engines or
	// plans that never exercise them.
	for _, mode := range []string{"clean", "faults", "crash", "adversarial"} {
		want := engine.CounterKeys()
		if mode != "clean" {
			want = append(want, faults.CounterKeys()...)
			sort.Strings(want)
		}

		var netPlan, cubePlan, busPlan *faults.Plan
		var asyncPlan *faults.Plan
		switch mode {
		case "faults":
			netPlan, cubePlan, busPlan = faults.Default(41), faults.Default(42), faults.Default(43)
			// The goroutine engine retries on wall-clock timeouts; a zero
			// plan (no injected faults) keeps the run fast while still
			// enabling the whole fault/recovery schema.
			asyncPlan = &faults.Plan{Seed: 44}
		case "crash":
			netPlan, cubePlan, busPlan = crashDropPlan(41), crashDropPlan(42), crashDropPlan(43)
			asyncPlan = &faults.Plan{Seed: 44}
		case "adversarial":
			// The adversarial kinds are terminal-link faults of the cycle
			// engines; the goroutine engine runs the same zero plan as the
			// other faulted regimes and must still publish the full schema.
			netPlan, cubePlan, busPlan = faults.DefaultAdversarial(41), faults.DefaultAdversarial(42), faults.DefaultAdversarial(43)
			asyncPlan = &faults.Plan{Seed: 44}
		}

		got := map[string][]string{
			"network": runSchemaEngine(t, "network", func(inj []network.Injector) soakEngine {
				return network.NewSim(network.Config{Procs: 16, Faults: netPlan}, inj)
			}),
			"hypercube": runSchemaEngine(t, "hypercube", func(inj []network.Injector) soakEngine {
				return hypercube.NewSim(hypercube.Config{Nodes: 16, Faults: cubePlan}, inj)
			}),
			"busnet": runSchemaEngine(t, "busnet", func(inj []network.Injector) soakEngine {
				return busnet.NewSim(busnet.Config{Procs: 16, Banks: 4, Faults: busPlan}, inj)
			}),
			"asyncnet": runSchemaAsync(t, "asyncnet", asyncPlan),
		}

		for name, keys := range got {
			if !reflect.DeepEqual(keys, want) {
				t.Errorf("mode=%s: %s counter keys diverge from canonical schema:\ngot:  %v\nwant: %v",
					mode, name, keys, want)
			}
		}
	}
}
