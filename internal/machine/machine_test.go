package machine

import (
	"math/rand/v2"
	"testing"

	"combining/internal/core"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

func TestProgramDependencies(t *testing.T) {
	// Instruction 2 stores the value loaded by instruction 0 plus one.
	progs := [][]Instr{
		{
			RMW(3, rmw.Load{}),
			RMW(4, rmw.StoreOf(9)),
			{
				Addr:  5,
				DynOp: func(rep []word.Word) rmw.Mapping { return rmw.StoreOf(rep[0].Val + 1) },
				After: []int{0},
			},
		},
		nil, nil, nil,
	}
	m := New(network.Config{Procs: 4}, progs)
	m.Sim().Memory().Poke(3, word.W(41))
	if !m.Run(1000) {
		t.Fatal("program did not complete")
	}
	if got := m.Sim().Memory().Peek(5).Val; got != 42 {
		t.Fatalf("dependent store wrote %d, want 42", got)
	}
}

func TestFenceOrdersIssue(t *testing.T) {
	// With a fence, the second access must not issue until the first
	// completes; its completion cycle is strictly later than the first's.
	progs := [][]Instr{
		{RMW(0, rmw.FetchAdd(1)), Fence(), RMW(1, rmw.FetchAdd(1))},
		nil, nil, nil,
	}
	m := New(network.Config{Procs: 4}, progs)
	if !m.Run(1000) {
		t.Fatal("program did not complete")
	}
	p := m.Proc(0)
	if p.DoneCycle(2) <= p.DoneCycle(0) {
		t.Fatalf("fenced access completed at %d, first at %d", p.DoneCycle(2), p.DoneCycle(0))
	}
}

// TestRMWImplementations is experiment E1 (Section 2): the memory-side RMW
// implementation exchanges two messages per operation and keeps the
// operation atomic; the processor-side load/compute/store emulation
// exchanges four and, without a bus lock, loses updates under contention.
func TestRMWImplementations(t *testing.T) {
	const n, perProc = 16, 20
	const ctr = word.Addr(3)

	// Memory-side: one fetch-and-add instruction per increment.
	memSide := make([][]Instr, n)
	for p := 0; p < n; p++ {
		for i := 0; i < perProc; i++ {
			memSide[p] = append(memSide[p], RMW(ctr, rmw.FetchAdd(1)))
		}
	}
	m1 := New(network.Config{Procs: n, WaitBufCap: core.Unbounded}, memSide)
	if !m1.Run(100000) {
		t.Fatal("memory-side run did not complete")
	}
	if got := m1.Sim().Memory().Peek(ctr).Val; got != n*perProc {
		t.Fatalf("memory-side counter = %d, want %d (atomicity lost?)", got, n*perProc)
	}

	// Processor-side: load, then a dependent store of value+1.  Two
	// messages each way per increment, and no atomicity.
	procSide := make([][]Instr, n)
	for p := 0; p < n; p++ {
		for i := 0; i < perProc; i++ {
			loadIdx := len(procSide[p])
			procSide[p] = append(procSide[p],
				RMW(ctr, rmw.Load{}),
				Instr{
					Addr: ctr,
					DynOp: func(rep []word.Word) rmw.Mapping {
						return rmw.StoreOf(rep[loadIdx].Val + 1)
					},
					After: []int{loadIdx},
				},
			)
		}
	}
	m2 := New(network.Config{Procs: n, WaitBufCap: core.Unbounded}, procSide)
	if !m2.Run(100000) {
		t.Fatal("processor-side run did not complete")
	}
	got := m2.Sim().Memory().Peek(ctr).Val

	st1, st2 := m1.Sim().Stats(), m2.Sim().Stats()
	t.Logf("memory-side: %d requests issued, %d cycles, counter %d",
		st1.Issued, st1.Cycles, n*perProc)
	t.Logf("processor-side: %d requests issued, %d cycles, counter %d (of %d)",
		st2.Issued, st2.Cycles, got, n*perProc)

	if st2.Issued != 2*st1.Issued {
		t.Errorf("processor-side issued %d messages, want exactly 2× the %d memory-side", st2.Issued, st1.Issued)
	}
	if got >= n*perProc {
		t.Errorf("processor-side counter = %d: expected lost updates under contention", got)
	}
	if st2.Cycles <= st1.Cycles {
		t.Errorf("processor-side (%d cycles) should be slower than memory-side (%d)", st2.Cycles, st1.Cycles)
	}
}

// TestTheorem42RandomPrograms is experiment E4 on the real network: random
// programs over every combinable family, across combining configurations,
// always yield per-location serializable histories that also explain the
// final memory contents.
func TestTheorem42RandomPrograms(t *testing.T) {
	const n = 16
	const addrSpace = 4
	configs := []struct {
		name string
		cfg  network.Config
	}{
		{"no-combining", network.Config{Procs: n, WaitBufCap: 0}},
		{"partial", network.Config{Procs: n, WaitBufCap: 1}},
		{"full", network.Config{Procs: n, WaitBufCap: core.Unbounded}},
		{"full+reversal", network.Config{Procs: n, WaitBufCap: core.Unbounded, AllowReversal: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewPCG(seed, 7))
				progs := make([][]Instr, n)
				family := rng.IntN(4)
				for p := range progs {
					for i := 0; i < 15; i++ {
						addr := word.Addr(rng.IntN(addrSpace))
						var op rmw.Mapping
						if family == 3 {
							// The tagged full/empty family: conditional
							// operations mixed with plain stores/loads.
							v := int64(rng.IntN(100))
							ops := []rmw.Mapping{
								rmw.FELoad(), rmw.FELoadClear(),
								rmw.FEStoreSet(v), rmw.FEStoreIfClearSet(v),
								rmw.FEStoreClear(v), rmw.FEStoreIfClearClear(v),
								rmw.FELoadIfSetClear(), rmw.StoreOf(v), rmw.Load{},
							}
							op = ops[rng.IntN(len(ops))]
						} else {
							switch rng.IntN(4) {
							case 0:
								op = rmw.Load{}
							case 1:
								op = rmw.StoreOf(int64(rng.IntN(100)))
							case 2:
								op = rmw.SwapOf(int64(rng.IntN(100)))
							default:
								switch family {
								case 0:
									op = rmw.FetchAdd(int64(rng.IntN(20) - 10))
								case 1:
									op = rmw.Bool{A: rng.Uint64(), B: rng.Uint64()}
								default:
									op = rmw.Affine{A: int64(rng.IntN(5) - 2), B: int64(rng.IntN(50))}
								}
							}
						}
						progs[p] = append(progs[p], RMW(addr, op))
					}
				}
				m := New(tc.cfg, progs)
				if !m.Run(100000) {
					t.Fatal("programs did not complete")
				}
				final := make(map[word.Addr]word.Word, addrSpace)
				for a := word.Addr(0); a < addrSpace; a++ {
					final[a] = m.Sim().Memory().Peek(a)
				}
				if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
				// The machine also satisfies the stronger real-time
				// property: an operation whose reply returned before
				// another was issued must serialize first.
				if err := serial.CheckLinearizable(m.TimedHistory(), nil, final); err != nil {
					t.Errorf("seed %d: linearizability: %v", seed, err)
				}
			}
		})
	}
}
