package machine

import (
	"bytes"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"combining/internal/busnet"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
	"combining/internal/word"
)

// Cross-worker determinism: Config.Workers must be unobservable.  Each
// engine runs the same seeded hot-spot workload at Workers = 1, 2, 3, 4
// and GOMAXPROCS (3 exercises a width that does not divide the group
// counts evenly), and every run must produce a byte-identical Snapshot JSON
// (counters, gauges, latency histogram), the same per-processor reply
// sequences, and the same final memory — with the Workers=1 run itself
// checked against the core.SerialReplies ground truth.  Clean and under a
// PR-2 fault plan, at the same minimal queue capacities as the
// backpressure soaks so the hold/credit paths are all exercised.

type detResult struct {
	snap    []byte
	replies []int64
	final   word.Word
}

func runAtWidth(t *testing.T, name string, nprocs, reqs, maxCycles int,
	build func([]network.Injector) soakEngine) detResult {
	t.Helper()
	progs := hotPrograms(nprocs, reqs)
	m, inj := NewInjectors(progs)
	eng := build(inj)
	m.BindEngine(eng)
	if !m.Run(maxCycles) {
		if eng.Stalled() {
			t.Fatalf("%s: watchdog tripped:\n%s", name, eng.StallReport())
		}
		t.Fatalf("%s: did not complete in %d cycles (%d in flight)", name, maxCycles, eng.InFlight())
	}
	var replies []int64
	for p := 0; p < nprocs; p++ {
		for i := 0; i < reqs; i++ {
			replies = append(replies, m.Proc(p).Reply(i).Val)
		}
	}
	return detResult{eng.Snapshot().JSON(), replies, eng.Memory().Peek(hotCell)}
}

func runDeterminismCheck(t *testing.T, name string, nprocs, reqs, maxCycles int,
	build func(workers int) func([]network.Injector) soakEngine) {
	t.Helper()
	want := runAtWidth(t, name+"/w1", nprocs, reqs, maxCycles, build(1))

	// The serial run must itself be correct: fetch-and-add replies are a
	// permutation of the serial prefix sums, and the cell holds the total.
	total := int64(nprocs * reqs)
	if want.final.Val != total {
		t.Fatalf("%s: final cell %d, serial ground truth %d", name, want.final.Val, total)
	}
	sorted := append([]int64(nil), want.replies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != int64(i) {
			t.Fatalf("%s: sorted reply %d = %d, serial ground truth %d", name, i, v, i)
		}
	}

	widths := []int{2, 3, 4, runtime.GOMAXPROCS(0)}
	for _, w := range widths {
		got := runAtWidth(t, name, nprocs, reqs, maxCycles, build(w))
		if !bytes.Equal(got.snap, want.snap) {
			t.Errorf("%s: Workers=%d snapshot differs from serial:\nserial: %s\nparallel: %s",
				name, w, want.snap, got.snap)
		}
		if !reflect.DeepEqual(got.replies, want.replies) {
			t.Errorf("%s: Workers=%d reply sequences differ from serial", name, w)
		}
		if got.final != want.final {
			t.Errorf("%s: Workers=%d final cell %d, serial %d", name, w, got.final.Val, want.final.Val)
		}
	}
}

func netDet(plan *faults.Plan) func(workers int) func([]network.Injector) soakEngine {
	return func(workers int) func([]network.Injector) soakEngine {
		return func(inj []network.Injector) soakEngine {
			return network.NewSim(network.Config{
				Procs: 64, QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: soakWaitCap, Faults: plan, Workers: workers,
			}, inj)
		}
	}
}

func cubeDet(plan *faults.Plan) func(workers int) func([]network.Injector) soakEngine {
	return func(workers int) func([]network.Injector) soakEngine {
		return func(inj []network.Injector) soakEngine {
			return hypercube.NewSim(hypercube.Config{
				Nodes: 64, QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: soakWaitCap, Faults: plan, Workers: workers,
			}, inj)
		}
	}
}

func busDet(plan *faults.Plan) func(workers int) func([]network.Injector) soakEngine {
	return func(workers int) func([]network.Injector) soakEngine {
		return func(inj []network.Injector) soakEngine {
			return busnet.NewSim(busnet.Config{
				Procs: 64, Banks: 8, QueueCap: 1, BankQueueCap: 1,
				WaitBufCap: soakWaitCap, Faults: plan, Workers: workers,
			}, inj)
		}
	}
}

func TestDeterminismNetwork(t *testing.T) {
	runDeterminismCheck(t, "network/clean", 64, 8, 400000, netDet(nil))
	runDeterminismCheck(t, "network/faults", 64, 4, 2000000, netDet(faults.Default(31)))
}

func TestDeterminismHypercube(t *testing.T) {
	runDeterminismCheck(t, "hypercube/clean", 64, 8, 400000, cubeDet(nil))
	runDeterminismCheck(t, "hypercube/faults", 64, 4, 2000000, cubeDet(faults.Default(32)))
}

func TestDeterminismBusnet(t *testing.T) {
	runDeterminismCheck(t, "busnet/clean", 64, 8, 400000, busDet(nil))
	runDeterminismCheck(t, "busnet/faults", 64, 4, 2000000, busDet(faults.Default(33)))
}
