package machine

import (
	"math/rand/v2"
	"testing"

	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// Experiment E3 — the incorrect optimization of Section 5.1: when a store
// meets a load in a switch queue, "satisfy the load immediately".  The
// paper's three-processor counterexample:
//
//	Processor 1     Processor 2      Processor 3
//	(1) A ← 1       (2) a ← A        (4) b ← B + 1
//	                (3) B ← a        (5) A ← b
//
// may then end with b = 2 and A = 1: the load (2) is answered with 1 while
// store (1) is still stuck in the network, so (5)'s A ← 2 reaches memory
// first and (1) finally overwrites it.  We engineer the 23451 order with
// the same congestion machinery as the Collier test.

const (
	fwdA = word.Addr(7) // module 7
	fwdC = word.Addr(6) // congestion target sharing A's path
	fwdB = word.Addr(1) // module 1, clear path
)

func forwardingPrograms() [][]Instr {
	progs := make([][]Instr, 8)

	// P1 = processor 0: dummies to module 6 congest its path, then the
	// store A ← 1 that will be stuck in the stage-0 queue.
	var p1 []Instr
	for i := 0; i < 20; i++ {
		p1 = append(p1, RMW(fwdC, rmw.StoreOf(100+int64(i))))
	}
	p1 = append(p1, RMW(fwdA, rmw.StoreOf(1))) // (1)
	progs[0] = p1

	// P2 = processor 4 (shares stage-0 switch 0 with P1): two extra
	// dummies guarantee its load A arrives after P1's store A is queued,
	// then B ← a (data dependent on the load).
	var p2 []Instr
	for i := 0; i < 22; i++ {
		p2 = append(p2, RMW(fwdC, rmw.StoreOf(200+int64(i))))
	}
	loadA := len(p2)
	p2 = append(p2, RMW(fwdA, rmw.Load{})) // (2)
	p2 = append(p2, Instr{                 // (3) B ← a
		Addr:  fwdB,
		DynOp: func(rep []word.Word) rmw.Mapping { return rmw.StoreOf(rep[loadA].Val) },
		After: []int{loadA},
	})
	progs[4] = p2

	// P3 = processor 1 (clear paths): b ← B + 1, then A ← b, timed to
	// run after (3) but before the stuck store (1) reaches memory.
	progs[1] = []Instr{
		{Addr: fwdB, Op: rmw.Load{}, MinCycle: 65}, // (4) reads B
		{ // (5) A ← B + 1
			Addr:  fwdA,
			DynOp: func(rep []word.Word) rmw.Mapping { return rmw.StoreOf(rep[0].Val + 1) },
			After: []int{0},
		},
	}

	// Processors 2 and 6 keep the stage-1 switch on the module-6/7 path
	// saturated throughout.
	for _, flooder := range []int{2, 6} {
		var flood []Instr
		for i := 0; i < 150; i++ {
			flood = append(flood, RMW(fwdC, rmw.StoreOf(int64(i))))
		}
		progs[flooder] = flood
	}
	return progs
}

func runForwarding(t *testing.T, buggy bool) (b, finalA int64, hist *serial.History, final map[word.Addr]word.Word) {
	t.Helper()
	cfg := network.Config{Procs: 8, QueueCap: 12, WaitBufCap: 0, BuggyLoadForwarding: buggy}
	m := New(cfg, forwardingPrograms())
	if !m.Run(10000) {
		t.Fatal("programs did not complete")
	}
	p3 := m.Proc(1)
	b = p3.Reply(0).Val + 1
	finalA = m.Sim().Memory().Peek(fwdA).Val
	final = map[word.Addr]word.Word{
		fwdA: m.Sim().Memory().Peek(fwdA),
		fwdB: m.Sim().Memory().Peek(fwdB),
		fwdC: m.Sim().Memory().Peek(fwdC),
	}
	return b, finalA, m.History(), final
}

func TestLoadForwardingIncorrect(t *testing.T) {
	b, finalA, hist, _ := runForwarding(t, true)
	t.Logf("buggy forwarding: b = %d, final A = %d", b, finalA)
	if b != 2 || finalA != 1 {
		t.Fatalf("expected the paper's incorrect outcome b=2 ∧ A=1, got b=%d A=%d", b, finalA)
	}
	// This particular violation is causal, not per-location: each cell's
	// replies are individually serializable, but the five litmus
	// operations admit no sequentially consistent interleaving (the
	// dependency cycle loadA → storeB → loadB → storeA(2) → storeA(1)
	// → loadA).  Removing the unrelated flood operations only relaxes
	// the constraints, so non-SC on the stripped history is a sound
	// verdict.
	if serial.SeqConsistent(forwardingCore(hist), nil) {
		t.Error("checker failed to detect the incorrect execution")
	}
}

// forwardingCore keeps the five litmus operations: every access to A and B
// (the flood and dummies touch only module 6).
func forwardingCore(h *serial.History) *serial.History {
	out := &serial.History{}
	for _, op := range h.Ops() {
		if op.Addr == fwdA || op.Addr == fwdB {
			out.Add(op)
		}
	}
	return out
}

func TestLoadForwardingDisabledIsCorrect(t *testing.T) {
	b, finalA, hist, final := runForwarding(t, false)
	t.Logf("correct combining: b = %d, final A = %d", b, finalA)
	if b == 2 && finalA == 1 {
		t.Fatal("incorrect outcome appeared without the buggy optimization")
	}
	if err := serial.CheckM2WithFinal(hist, nil, final); err != nil {
		t.Errorf("correct execution rejected: %v", err)
	}
}

// TestBuggyForwardingDetectedStochastically hunts the bug with random
// traffic instead of a constructed schedule: mixed stores and loads over a
// two-address hot set.  Across seeds, the checker must catch at least one
// violation with the optimization enabled and none with it disabled.
func TestBuggyForwardingDetectedStochastically(t *testing.T) {
	run := func(seed uint64, buggy bool) error {
		rng := rand.New(rand.NewPCG(seed, 99))
		progs := make([][]Instr, 16)
		for p := range progs {
			var prog []Instr
			for i := 0; i < 18; i++ {
				addr := word.Addr(rng.IntN(2))
				if rng.IntN(2) == 0 {
					prog = append(prog, RMW(addr, rmw.StoreOf(int64(p*1000+i))))
				} else {
					prog = append(prog, RMW(addr, rmw.Load{}))
				}
			}
			progs[p] = prog
		}
		cfg := network.Config{Procs: 16, QueueCap: 4, WaitBufCap: 0, BuggyLoadForwarding: buggy}
		m := New(cfg, progs)
		if !m.Run(50000) {
			t.Fatal("stochastic programs did not complete")
		}
		final := map[word.Addr]word.Word{
			0: m.Sim().Memory().Peek(0),
			1: m.Sim().Memory().Peek(1),
		}
		return serial.CheckM2WithFinal(m.History(), nil, final)
	}

	if testing.Short() {
		t.Skip("stochastic hunt")
	}
	violations := 0
	for seed := uint64(1); seed <= 5; seed++ {
		if err := run(seed, true); err != nil {
			violations++
		}
		if err := run(seed, false); err != nil {
			t.Errorf("seed %d: correct network rejected: %v", seed, err)
		}
	}
	t.Logf("buggy forwarding caught on %d of 5 seeds", violations)
	if violations == 0 {
		t.Error("checker never caught the buggy optimization across 5 seeds")
	}
}
