package machine

import (
	"math/rand/v2"
	"testing"

	"combining/internal/busnet"
	"combining/internal/core"
	"combining/internal/hypercube"
	"combining/internal/memory"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// Theorem 4.2 for the Section 7 transports: the same program machinery
// (data dependencies, fences, timed histories) runs on the hypercube and
// the bus, and every execution passes the serializability and
// linearizability checkers.

type enginePeek interface {
	Engine
	Memory() *memory.Array
}

func runOnEngine(t *testing.T, build func([]network.Injector) enginePeek, seed uint64) {
	t.Helper()
	const n, ops, addrSpace = 8, 15, 3
	rng := rand.New(rand.NewPCG(seed, 5))
	progs := make([][]Instr, n)
	for p := range progs {
		for i := 0; i < ops; i++ {
			addr := word.Addr(rng.IntN(addrSpace))
			var op rmw.Mapping
			switch rng.IntN(4) {
			case 0:
				op = rmw.Load{}
			case 1:
				op = rmw.StoreOf(int64(rng.IntN(100)))
			case 2:
				op = rmw.SwapOf(int64(rng.IntN(100)))
			default:
				op = rmw.FetchAdd(int64(rng.IntN(9) - 4))
			}
			progs[p] = append(progs[p], RMW(addr, op))
		}
	}
	m, inj := NewInjectors(progs)
	eng := build(inj)
	m.BindEngine(eng)
	if !m.Run(100000) {
		t.Fatal("programs did not complete")
	}
	final := map[word.Addr]word.Word{}
	for a := word.Addr(0); a < addrSpace; a++ {
		final[a] = eng.Memory().Peek(a)
	}
	if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
		t.Errorf("seed %d: %v", seed, err)
	}
	if err := serial.CheckLinearizable(m.TimedHistory(), nil, final); err != nil {
		t.Errorf("seed %d: linearizability: %v", seed, err)
	}
}

func TestTheorem42OnHypercube(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runOnEngine(t, func(inj []network.Injector) enginePeek {
			return hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: core.Unbounded}, inj)
		}, seed)
	}
}

func TestTheorem42OnBus(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runOnEngine(t, func(inj []network.Injector) enginePeek {
			return busnet.NewSim(busnet.Config{Procs: 8, Banks: 4, WaitBufCap: core.Unbounded}, inj)
		}, seed)
	}
}

// TestFenceOnHypercube: the fence semantics carry to other transports.
func TestFenceOnHypercube(t *testing.T) {
	progs := [][]Instr{
		{RMW(0, rmw.StoreOf(1)), Fence(), RMW(1, rmw.StoreOf(2))},
		nil, nil, nil, nil, nil, nil, nil,
	}
	m, inj := NewInjectors(progs)
	eng := hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: core.Unbounded}, inj)
	m.BindEngine(eng)
	if !m.Run(10000) {
		t.Fatal("did not complete")
	}
	p := m.Proc(0)
	if p.DoneCycle(2) <= p.DoneCycle(0) {
		t.Fatal("fenced access completed before the fence's predecessor")
	}
	if eng.Memory().Peek(0).Val != 1 || eng.Memory().Peek(1).Val != 2 {
		t.Fatal("stores lost")
	}
}
