package machine

import (
	"testing"

	"combining/internal/busnet"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
	"combining/internal/serial"
	"combining/internal/word"
)

// Adversarial-delivery soaks: on top of the PR-2 message-loss plan, the
// terminal links reorder deliveries (bounded deferral), re-emit messages
// the sender never retransmitted, and flip payload bits.  The end-to-end
// integrity layer (per-message checksum stamped in the trusted zone,
// verified at the consumer boundary) plus the retransmit/reply-cache
// machinery must still give exactly-once completion and per-location
// serializability — DESIGN.md §8.

// advWirings enumerates the six wirings every adversarial check runs on.
// The 16-processor wiring runs shorter programs: the M2 checker's search
// grows steeply with ops per hot address, and the extra processors
// already double the draws each fault kind gets.
var advWirings = []struct {
	name  string
	procs int
	ops   int
	build func(*faults.Plan, []network.Injector) faultEngine
}{
	{"omega2", 8, 12, func(p *faults.Plan, inj []network.Injector) faultEngine {
		return netProbe{network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: p}, inj)}
	}},
	{"omega4", 16, 8, func(p *faults.Plan, inj []network.Injector) faultEngine {
		return netProbe{network.NewSim(network.Config{Procs: 16, Radix: 4, WaitBufCap: 64, Faults: p}, inj)}
	}},
	{"fattree", 8, 12, func(p *faults.Plan, inj []network.Injector) faultEngine {
		return netProbe{network.NewSim(network.Config{
			Topology: engine.FatTreeOf(8, 2), WaitBufCap: 64, Faults: p}, inj)}
	}},
	{"busnet", 8, 12, func(p *faults.Plan, inj []network.Injector) faultEngine {
		return busProbe{busnet.NewSim(busnet.Config{Procs: 8, Banks: 4, WaitBufCap: 64, Faults: p}, inj)}
	}},
	{"hypercube", 8, 12, func(p *faults.Plan, inj []network.Injector) faultEngine {
		return cubeProbe{hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: 64, Faults: p}, inj)}
	}},
	{"torus", 8, 12, func(p *faults.Plan, inj []network.Injector) faultEngine {
		return cubeProbe{hypercube.NewSim(hypercube.Config{
			Topology: engine.TorusOf(4, 2), WaitBufCap: 64, Faults: p}, inj)}
	}},
}

// runAdversarialSoak drives hot-spot programs on one wiring under the
// default adversarial plan and checks exactly-once completion plus M2; it
// returns the snapshot counters so the caller can aggregate the
// vacuous-pass guard across seeds (a short run may legitimately draw zero
// of one kind at one seed).
func runAdversarialSoak(t *testing.T, name string, procs, ops int, seed uint64,
	build func(*faults.Plan, []network.Injector) faultEngine) map[string]int64 {
	t.Helper()
	plan := faults.DefaultAdversarial(seed)
	progs := faultPrograms(procs, ops)
	m, inj := NewInjectors(progs)
	eng := build(plan, inj)
	m.BindEngine(eng)
	if !m.Run(400000) {
		t.Fatalf("%s seed %d: programs did not complete (in flight %d)", name, seed, eng.InFlight())
	}
	final := map[word.Addr]word.Word{}
	for a := word.Addr(0); a < 32; a++ {
		final[a] = eng.PeekMem(a)
	}
	if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
		t.Fatalf("%s seed %d: M2 violated under adversarial delivery: %v", name, seed, err)
	}
	snap := eng.Snapshot()
	if snap.Counters["issued"] != snap.Counters["completed"] {
		t.Fatalf("%s seed %d: issued %d != completed %d", name, seed,
			snap.Counters["issued"], snap.Counters["completed"])
	}
	if got := eng.Outstanding(); got != 0 {
		t.Fatalf("%s seed %d: %d requests never delivered", name, seed, got)
	}
	return snap.Counters
}

// TestAdversarialPlanAllWirings soaks all six wirings under the default
// adversarial plan at several seeds, with a vacuous-pass guard per
// wiring: summed over the seeds, every adversarial fault kind must have
// actually fired.
func TestAdversarialPlanAllWirings(t *testing.T) {
	for _, w := range advWirings {
		t.Run(w.name, func(t *testing.T) {
			total := map[string]int64{}
			for _, seed := range []uint64{1, 3, 9} {
				for k, v := range runAdversarialSoak(t, w.name, w.procs, w.ops, seed, w.build) {
					total[k] += v
				}
			}
			for _, key := range []string{"reordered_held", "dup_injected", "corrupt_dropped"} {
				if total[key] == 0 {
					t.Errorf("%s: vacuous pass — %s is zero across all seeds\n%v",
						w.name, key, total)
				}
			}
		})
	}
}

// TestAdversarialDeterminism checks that an adversarial run replays
// exactly: same seed, same injected faults, same delivered history.
func TestAdversarialDeterminism(t *testing.T) {
	run := func() (counters map[string]int64, hist *serial.History) {
		plan := faults.DefaultAdversarial(42)
		progs := faultPrograms(8, 10)
		m, inj := NewInjectors(progs)
		sim := network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: plan}, inj)
		m.BindEngine(sim)
		if !m.Run(200000) {
			t.Fatal("programs did not complete")
		}
		return sim.Snapshot().Counters, m.History()
	}
	c1, h1 := run()
	c2, h2 := run()
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("counter %s differs across replays: %d vs %d", k, v, c2[k])
		}
	}
	ops1, ops2 := h1.Ops(), h2.Ops()
	if len(ops1) != len(ops2) {
		t.Fatalf("history length differs: %d vs %d", len(ops1), len(ops2))
	}
	for i := range ops1 {
		if ops1[i] != ops2[i] {
			t.Fatalf("op %d differs across replays: %+v vs %+v", i, ops1[i], ops2[i])
		}
	}
}

// TestAdversarialRejectsParallelStepper pins the Validate contract: limbo
// release order is defined by the serial sweep, so an adversarial plan
// combined with Workers > 1 must be rejected, not silently serialized.
func TestAdversarialRejectsParallelStepper(t *testing.T) {
	plan := faults.DefaultAdversarial(1)
	cfgs := []interface{ Validate() error }{
		network.Config{Procs: 8, Workers: 4, Faults: plan},
		busnet.Config{Procs: 8, Banks: 4, Workers: 4, Faults: plan},
		hypercube.Config{Nodes: 8, Workers: 4, Faults: plan},
	}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: adversarial plan with Workers=4 validated; want rejection", i)
		}
	}
}

// TestNetworkDupSuppression is the reply-cache hardening table test: a
// plan that injects only network-born duplicates (no drops, so Attempt
// numbers always collide at 0) must complete exactly-once on every
// engine, with the duplicate machinery visibly engaged — the second copy
// of a request is answered from the reply cache and its reply either
// orphans (no metadata) or is suppressed at delivery.
func TestNetworkDupSuppression(t *testing.T) {
	for _, w := range advWirings {
		t.Run(w.name, func(t *testing.T) {
			plan := &faults.Plan{Seed: 7, Dup: 0.05, RetryTimeout: 512}
			progs := faultPrograms(w.procs, w.ops)
			m, inj := NewInjectors(progs)
			eng := w.build(plan, inj)
			m.BindEngine(eng)
			if !m.Run(400000) {
				t.Fatalf("programs did not complete (in flight %d)", eng.InFlight())
			}
			final := map[word.Addr]word.Word{}
			for a := word.Addr(0); a < 32; a++ {
				final[a] = eng.PeekMem(a)
			}
			if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
				t.Fatalf("M2 violated under duplication: %v", err)
			}
			snap := eng.Snapshot()
			if snap.Counters["dup_injected"] == 0 {
				t.Fatalf("vacuous pass — no duplicates injected\n%v", snap.Counters)
			}
			if snap.Counters["issued"] != snap.Counters["completed"] {
				t.Fatalf("issued %d != completed %d under duplication",
					snap.Counters["issued"], snap.Counters["completed"])
			}
			// Every injected duplicate is accounted for: answered from the
			// reply cache (dedup_hits), orphaned at the metadata shard, or
			// suppressed at delivery (duplicates_suppressed).
			accounted := snap.Counters["dedup_hits"] + snap.Counters["orphan_replies"] +
				snap.Counters["duplicates_suppressed"]
			if accounted == 0 {
				t.Errorf("duplicates injected (%d) but none accounted for\n%v",
					snap.Counters["dup_injected"], snap.Counters)
			}
		})
	}
}
