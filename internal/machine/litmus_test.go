package machine

import (
	"testing"

	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// The message-passing litmus test, a companion to Collier's example: under
// condition M2 alone, a flag can become visible before the data it guards.
//
//	Processor 1          Processor 2
//	(1) store X ← 1      (3) load Y
//	(2) store Y ← 1      (4) load X
//
// With pipelined stores and X's path congested, (2) reaches memory before
// (1), so P2 can observe Y=1, X=0 — impossible under sequential
// consistency when (3) sees 1.  Fences on both sides forbid it.

const (
	mpX     = word.Addr(7) // module 7, behind the congested path
	mpFlood = word.Addr(6) // flood target sharing X's path
	mpY     = word.Addr(1) // module 1, clear path
)

func mpPrograms(withFences bool) [][]Instr {
	progs := make([][]Instr, 8)

	// P1 = processor 0: dummies congest the path to modules 6/7, then
	// the data store (stuck) and the flag store (fast), pipelined.
	var p1 []Instr
	for i := 0; i < 24; i++ {
		p1 = append(p1, RMW(mpFlood, rmw.StoreOf(int64(i))))
	}
	p1 = append(p1, RMW(mpX, rmw.StoreOf(1)))
	if withFences {
		p1 = append(p1, Fence())
	}
	p1 = append(p1, RMW(mpY, rmw.StoreOf(1)))
	progs[0] = p1

	// P2 = processor 1: read the flag, then the data.
	p2 := []Instr{{Addr: mpY, Op: rmw.Load{}, MinCycle: 44}}
	if withFences {
		p2 = append(p2, Fence())
	}
	p2 = append(p2, Instr{Addr: mpX, Op: rmw.Load{}})
	progs[1] = p2

	// Processors 2 and 6 keep the shared stage-1 queue saturated.
	for _, flooder := range []int{2, 6} {
		var flood []Instr
		for i := 0; i < 100; i++ {
			flood = append(flood, RMW(mpFlood, rmw.StoreOf(int64(i))))
		}
		progs[flooder] = flood
	}
	return progs
}

func runMP(t *testing.T, withFences bool) (flag, data int64, hist *serial.History) {
	t.Helper()
	m := New(network.Config{Procs: 8, QueueCap: 4, WaitBufCap: 0}, mpPrograms(withFences))
	if !m.Run(10000) {
		t.Fatal("programs did not complete")
	}
	p2 := m.Proc(1)
	last := len(mpPrograms(withFences)[1]) - 1
	return p2.Reply(0).Val, p2.Reply(last).Val, m.History()
}

func TestMessagePassingLitmus(t *testing.T) {
	flag, data, hist := runMP(t, false)
	t.Logf("pipelined (M2 only): flag = %d, data = %d", flag, data)
	if !(flag == 1 && data == 0) {
		t.Fatalf("expected the reordered outcome flag=1 data=0, got flag=%d data=%d", flag, data)
	}
	// Per-location FIFO still holds…
	if err := serial.CheckM2(hist, nil); err != nil {
		t.Errorf("execution violates M2: %v", err)
	}
	// …but the four litmus operations are not sequentially consistent.
	if serial.SeqConsistent(mpCore(hist), nil) {
		t.Error("flag=1 data=0 wrongly judged sequentially consistent")
	}
}

func TestMessagePassingWithFences(t *testing.T) {
	flag, data, hist := runMP(t, true)
	t.Logf("fenced: flag = %d, data = %d", flag, data)
	if flag == 1 && data == 0 {
		t.Fatal("fences failed to order the stores")
	}
	if !serial.SeqConsistent(mpCore(hist), nil) {
		t.Error("fenced execution is not sequentially consistent")
	}
}

// mpCore keeps the four litmus operations (X and Y accesses by procs 0/1).
func mpCore(h *serial.History) *serial.History {
	out := &serial.History{}
	for _, op := range h.Ops() {
		if op.Addr == mpX && op.Proc <= 1 || op.Addr == mpY {
			out.Add(op)
		}
	}
	return out
}
