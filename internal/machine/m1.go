package machine

import (
	"fmt"

	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// M1Machine models the stronger memory of Section 3.2: "The memory
// receives a sequential stream of requests from the processors; this
// stream is obtained by merging the serial streams of requests generated
// by individual processors…  The requests are processed in the order they
// appear in this stream."  Condition (M1) is sufficient to enforce
// sequential consistency, at the price of a central controller — which is
// exactly why large machines settle for (M2) plus fences.
//
// The machine runs the same Instr programs as the network Machine, so the
// Collier litmus test can be executed under both models and compared: the
// M1 machine can never produce the non-SC outcome, with or without
// fences.
type M1Machine struct {
	progs [][]Instr
	procs []*m1proc
	fifo  []m1req
	mem   map[word.Addr]word.Word
	hist  serial.TimedHistory
	cycle int64
}

type m1proc struct {
	next        int
	outstanding int
	replies     []word.Word
	done        []bool
	issueSeq    int
}

type m1req struct {
	proc    int
	instr   int
	seq     int
	addr    word.Addr
	op      rmw.Mapping
	issueAt int64
}

// NewM1 builds an M1 machine over the programs.
func NewM1(programs [][]Instr) *M1Machine {
	m := &M1Machine{
		progs: programs,
		mem:   make(map[word.Addr]word.Word),
	}
	for _, prog := range programs {
		m.procs = append(m.procs, &m1proc{
			replies: make([]word.Word, len(prog)),
			done:    make([]bool, len(prog)),
		})
	}
	return m
}

// Poke initializes a memory cell.
func (m *M1Machine) Poke(addr word.Addr, w word.Word) { m.mem[addr] = w }

// Peek reads a memory cell.
func (m *M1Machine) Peek(addr word.Addr) word.Word { return m.mem[addr] }

// Reply returns processor p's reply to instruction i.
func (m *M1Machine) Reply(p, i int) word.Word { return m.procs[p].replies[i] }

// History returns the untimed execution history.
func (m *M1Machine) History() *serial.History { return m.hist.History() }

// step advances one cycle: serve the FIFO head, then let each processor
// (in rotating order) append at most one request to the stream.
func (m *M1Machine) step() {
	m.cycle++
	// The central controller processes the stream in order, one
	// request per cycle.
	if len(m.fifo) > 0 {
		r := m.fifo[0]
		copy(m.fifo, m.fifo[1:])
		m.fifo = m.fifo[:len(m.fifo)-1]
		cell := m.mem[r.addr]
		old := cell
		m.mem[r.addr] = r.op.Apply(cell)
		p := m.procs[r.proc]
		p.replies[r.instr] = old
		p.done[r.instr] = true
		p.outstanding--
		m.hist.Add(serial.TimedOp{
			Op: serial.Op{
				Proc:  word.ProcID(r.proc),
				Seq:   r.seq,
				Addr:  r.addr,
				Op:    r.op,
				Reply: old,
			},
			IssueAt: r.issueAt,
			DoneAt:  m.cycle,
		})
	}
	// Processors issue (pipelined; fences and data dependencies as in
	// the network machine).
	for off := range m.procs {
		pi := (off + int(m.cycle)) % len(m.procs)
		p := m.procs[pi]
		prog := m.progs[pi]
		for p.next < len(prog) && prog[p.next].Fence {
			if p.outstanding > 0 {
				break
			}
			p.next++
		}
		if p.next >= len(prog) || prog[p.next].Fence {
			continue
		}
		in := prog[p.next]
		if m.cycle < in.MinCycle {
			continue
		}
		ready := true
		for _, dep := range in.After {
			ready = ready && p.done[dep]
		}
		if !ready {
			continue
		}
		addr := in.Addr
		if in.DynAddr != nil {
			addr = in.DynAddr(p.replies)
		}
		op := in.Op
		if in.DynOp != nil {
			op = in.DynOp(p.replies)
		}
		idx := p.next
		p.next++
		p.outstanding++
		p.issueSeq++
		m.fifo = append(m.fifo, m1req{
			proc: pi, instr: idx, seq: p.issueSeq,
			addr: addr, op: op, issueAt: m.cycle,
		})
	}
}

// Run steps the machine until all programs complete or maxCycles pass.
func (m *M1Machine) Run(maxCycles int) bool {
	for c := 0; c < maxCycles; c++ {
		m.step()
		done := true
		for pi, p := range m.procs {
			done = done && p.next >= len(m.progs[pi]) && p.outstanding == 0
		}
		if done {
			return true
		}
	}
	return false
}

// String summarizes the machine state (diagnostics).
func (m *M1Machine) String() string {
	return fmt.Sprintf("M1{procs=%d fifo=%d cycle=%d}", len(m.procs), len(m.fifo), m.cycle)
}
