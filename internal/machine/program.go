// Package machine runs *programs* — instruction streams with data
// dependencies and fences — on the cycle-accurate combining network,
// recording a history for the consistency checkers.
//
// It provides the experiments of Sections 2, 3 and 5.1:
//
//   - processors pipeline independent accesses (condition M2 only), so
//     Collier's example can produce a non-sequentially-consistent outcome;
//   - the RP3 fence instruction restores sequential consistency;
//   - memory-side RMW versus the processor-side load/compute/store cycle
//     (message counts and lost atomicity);
//   - the incorrect "satisfy the load immediately" combining optimization.
package machine

import (
	"fmt"

	"combining/internal/core"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// Instr is one instruction of a processor program.
type Instr struct {
	// Fence, when set, stalls issue until every outstanding access by
	// this processor has completed (the RP3 fence, Section 3.2).  The
	// remaining fields are ignored.
	Fence bool

	// Addr is the target location.  If DynAddr is non-nil it is called
	// with earlier replies to compute the address instead.
	Addr    word.Addr
	DynAddr func(replies []word.Word) word.Addr

	// Op is the mapping to apply.  If DynOp is non-nil it is called with
	// earlier replies to build the mapping (data dependence through a
	// register, e.g. "store B ← a" after "a ← load A").
	Op    rmw.Mapping
	DynOp func(replies []word.Word) rmw.Mapping

	// After lists instruction indexes whose replies must have arrived
	// before this instruction issues (data dependencies).  Instructions
	// with no dependencies issue back to back, pipelined.
	After []int

	// MinCycle delays issue until the given simulator cycle, for
	// constructing specific interleavings in experiments.
	MinCycle int64
}

// RMW builds a plain instruction.
func RMW(addr word.Addr, op rmw.Mapping) Instr { return Instr{Addr: addr, Op: op} }

// Fence builds a fence instruction.
func Fence() Instr { return Instr{Fence: true} }

// Proc is a program-driven injector for one processor port.
type Proc struct {
	proc    word.ProcID
	prog    []Instr
	ids     *word.IDGen
	nprocs  int
	machine *Machine

	next        int
	outstanding int
	replies     []word.Word // by instruction index; valid once done[i]
	done        []bool
	doneCycle   []int64
	idToInstr   map[word.ReqID]int
	issueSeq    int
}

var _ network.Injector = (*Proc)(nil)

// Next implements network.Injector.
func (p *Proc) Next(cycle int64) (network.Injection, bool) {
	for p.next < len(p.prog) && p.prog[p.next].Fence {
		if p.outstanding > 0 {
			return network.Injection{}, false
		}
		p.next++ // fence satisfied
	}
	if p.next >= len(p.prog) {
		return network.Injection{}, false
	}
	in := p.prog[p.next]
	if cycle < in.MinCycle {
		return network.Injection{}, false
	}
	for _, dep := range in.After {
		if !p.done[dep] {
			return network.Injection{}, false
		}
	}
	addr := in.Addr
	if in.DynAddr != nil {
		addr = in.DynAddr(p.replies)
	}
	op := in.Op
	if in.DynOp != nil {
		op = in.DynOp(p.replies)
	}
	id := p.ids.NextPartitioned(p.nprocs)
	p.idToInstr[id] = p.next
	p.next++
	p.outstanding++
	p.issueSeq++
	req := core.NewRequest(id, addr, op, p.proc)
	p.machine.noteIssue(p.proc, p.issueSeq, addr, op, id, cycle)
	return network.Injection{Req: req}, true
}

// Deliver implements network.Injector.
func (p *Proc) Deliver(rep core.Reply, cycle int64) {
	idx, ok := p.idToInstr[rep.ID]
	if !ok {
		panic(fmt.Sprintf("machine: proc %d got foreign reply %v", p.proc, rep))
	}
	delete(p.idToInstr, rep.ID)
	p.replies[idx] = rep.Val
	p.done[idx] = true
	p.doneCycle[idx] = cycle
	p.outstanding--
	p.machine.noteReply(rep, cycle)
}

// Done reports whether the program has fully completed.
func (p *Proc) Done() bool {
	return p.next >= len(p.prog) && p.outstanding == 0
}

// Reply returns the reply to instruction i (zero Word until it arrives).
func (p *Proc) Reply(i int) word.Word { return p.replies[i] }

// Completed reports whether instruction i has received its reply.
func (p *Proc) Completed(i int) bool { return p.done[i] }

// DoneCycle returns the cycle instruction i's reply arrived (0 if pending).
func (p *Proc) DoneCycle(i int) int64 { return p.doneCycle[i] }

// Engine is any cycle-driven transport the programs can run on: the Omega
// network, the hypercube, or the bus machine.
type Engine interface {
	Step()
	InFlight() int
}

// Machine couples programs to a simulated transport and records a timed
// history for the consistency checkers.
type Machine struct {
	sim    *network.Sim
	engine Engine
	procs  []*Proc

	hist    serial.TimedHistory
	pending map[word.ReqID]pendingOp
}

type pendingOp struct {
	proc    word.ProcID
	seq     int
	addr    word.Addr
	op      rmw.Mapping
	issueAt int64
}

// New builds a machine running one program per processor on an Omega
// network; programs may be nil (idle processor).  The config's Procs must
// match len(programs).
func New(cfg network.Config, programs [][]Instr) *Machine {
	m, inj := newProcs(programs)
	m.sim = network.NewSim(cfg, inj)
	m.engine = m.sim
	return m
}

// NewInjectors builds the program-driven injectors without an engine, so
// the same programs can run on any transport (hypercube, bus): construct
// the engine from the returned injectors, then call BindEngine before Run.
func NewInjectors(programs [][]Instr) (*Machine, []network.Injector) {
	return newProcs(programs)
}

// BindEngine attaches the transport the injectors were wired into.
func (m *Machine) BindEngine(e Engine) { m.engine = e }

func newProcs(programs [][]Instr) (*Machine, []network.Injector) {
	m := &Machine{pending: make(map[word.ReqID]pendingOp)}
	inj := make([]network.Injector, len(programs))
	m.procs = make([]*Proc, len(programs))
	for i, prog := range programs {
		p := &Proc{
			proc:      word.ProcID(i),
			prog:      prog,
			ids:       word.Partition(i, len(programs)),
			nprocs:    len(programs),
			machine:   m,
			replies:   make([]word.Word, len(prog)),
			done:      make([]bool, len(prog)),
			doneCycle: make([]int64, len(prog)),
			idToInstr: make(map[word.ReqID]int),
		}
		m.procs[i] = p
		inj[i] = p
	}
	return m, inj
}

func (m *Machine) noteIssue(proc word.ProcID, seq int, addr word.Addr, op rmw.Mapping, id word.ReqID, cycle int64) {
	m.pending[id] = pendingOp{proc: proc, seq: seq, addr: addr, op: op, issueAt: cycle}
}

func (m *Machine) noteReply(rep core.Reply, cycle int64) {
	po, ok := m.pending[rep.ID]
	if !ok {
		panic(fmt.Sprintf("machine: reply %v without issue record", rep))
	}
	delete(m.pending, rep.ID)
	m.hist.Add(serial.TimedOp{
		Op: serial.Op{
			Proc:  po.proc,
			Seq:   po.seq,
			Addr:  po.addr,
			Op:    po.op,
			Reply: rep.Val,
		},
		IssueAt: po.issueAt,
		DoneAt:  cycle,
	})
}

// Sim exposes the underlying Omega network simulator (nil when the
// machine was bound to another engine via NewInjectors/BindEngine).
func (m *Machine) Sim() *network.Sim { return m.sim }

// Proc returns processor i's program state.
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// History returns the recorded execution history without timestamps.
func (m *Machine) History() *serial.History { return m.hist.History() }

// TimedHistory returns the history with issue/completion cycles, for the
// linearizability checker.
func (m *Machine) TimedHistory() *serial.TimedHistory { return &m.hist }

// stallDetector is implemented by engines with a progress watchdog (the
// Omega network, the hypercube, the bus machine): Stalled reports that
// the watchdog tripped — no progress signature change for its whole
// limit while requests were in flight.
type stallDetector interface{ Stalled() bool }

// Run steps the machine until every program completes or maxCycles pass;
// it reports whether all programs completed.  On an engine with a
// progress watchdog, Run fails fast when it trips instead of burning the
// rest of the cycle budget on a wedged network; the engine's StallReport
// has the replayable queue snapshot.
func (m *Machine) Run(maxCycles int) bool {
	sd, _ := m.engine.(stallDetector)
	for c := 0; c < maxCycles; c++ {
		m.engine.Step()
		if m.allDone() {
			return true
		}
		if sd != nil && sd.Stalled() {
			return false
		}
	}
	return m.allDone()
}

func (m *Machine) allDone() bool {
	for _, p := range m.procs {
		if !p.Done() {
			return false
		}
	}
	return true
}
