package machine

import (
	"math/rand/v2"
	"testing"

	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// TestM1CollierAlwaysSC: under condition M1 the Collier outcome a=1, b=0
// is unreachable no matter how issue timing is perturbed — the contrast
// with TestCollierExample, where the M2-only network produces it.
func TestM1CollierAlwaysSC(t *testing.T) {
	const A, B = word.Addr(7), word.Addr(1)
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 17))
		progs := [][]Instr{
			{ // P1: load A; load B — pipelined, no fence.
				{Addr: A, Op: rmw.Load{}, MinCycle: int64(rng.IntN(10))},
				{Addr: B, Op: rmw.Load{}},
			},
			{ // P2: store B ← 1; store A ← 1.
				{Addr: B, Op: rmw.StoreOf(1), MinCycle: int64(rng.IntN(10))},
				{Addr: A, Op: rmw.StoreOf(1)},
			},
		}
		m := NewM1(progs)
		if !m.Run(1000) {
			t.Fatal("programs did not complete")
		}
		a, b := m.Reply(0, 0).Val, m.Reply(0, 1).Val
		if a == 1 && b == 0 {
			t.Fatalf("trial %d: M1 machine produced the non-SC outcome a=1 b=0", trial)
		}
		if !serial.SeqConsistent(m.History(), nil) {
			t.Fatalf("trial %d: M1 execution is not sequentially consistent (a=%d b=%d)",
				trial, a, b)
		}
	}
}

// TestM1RandomProgramsSC: arbitrary random programs on the M1 machine are
// always fully sequentially consistent, not just per-location serializable.
func TestM1RandomProgramsSC(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 23))
		progs := make([][]Instr, 3)
		for p := range progs {
			for i := 0; i < 5; i++ {
				addr := word.Addr(rng.IntN(2))
				var op rmw.Mapping
				switch rng.IntN(3) {
				case 0:
					op = rmw.Load{}
				case 1:
					op = rmw.StoreOf(int64(rng.IntN(50)))
				default:
					op = rmw.FetchAdd(int64(rng.IntN(9) - 4))
				}
				progs[p] = append(progs[p], Instr{Addr: addr, Op: op, MinCycle: int64(rng.IntN(6))})
			}
		}
		m := NewM1(progs)
		if !m.Run(1000) {
			t.Fatal("programs did not complete")
		}
		if !serial.SeqConsistent(m.History(), nil) {
			t.Fatalf("seed %d: M1 execution not sequentially consistent", seed)
		}
	}
}

// TestM1Semantics: basic data flow through the central FIFO.
func TestM1Semantics(t *testing.T) {
	progs := [][]Instr{
		{
			RMW(3, rmw.FetchAdd(5)),
			RMW(3, rmw.FetchAdd(7)),
			RMW(3, rmw.Load{}),
		},
	}
	m := NewM1(progs)
	m.Poke(3, word.W(100))
	if !m.Run(100) {
		t.Fatal("program did not complete")
	}
	if got := m.Peek(3).Val; got != 112 {
		t.Fatalf("final = %d, want 112", got)
	}
	if got := m.Reply(0, 2).Val; got != 112 {
		t.Fatalf("load saw %d, want 112", got)
	}
}

// TestM1Fences: fences still work (they are simply redundant under M1).
func TestM1Fences(t *testing.T) {
	progs := [][]Instr{
		{RMW(0, rmw.StoreOf(1)), Fence(), RMW(1, rmw.StoreOf(2))},
	}
	m := NewM1(progs)
	if !m.Run(100) {
		t.Fatal("program did not complete")
	}
	if m.Peek(0).Val != 1 || m.Peek(1).Val != 2 {
		t.Fatal("stores lost")
	}
}
