package machine

import (
	"testing"

	"combining/internal/busnet"
	"combining/internal/core"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Recoverable mutual exclusion end to end: lock clients run the RME protocol
// (acquire via store-if-clear-and-set, spin on NAK, non-atomic read/modify/
// write of a shared counter inside the critical section, release via
// store-and-clear) as custom injectors on the real transports, clean and
// under crash–restart plans.  Mutual exclusion is checked by the counter: the
// critical-section increment is deliberately split into a Load and a Store,
// so any two overlapping critical sections lose an update and the final
// counter misses the nprocs*rounds target.

const (
	rmeLockAddr = word.Addr(0)
	rmeCtrAddr  = word.Addr(1)
)

// lockClient is one processor of the RME experiment.  It is a plain
// network.Injector, so the engines' tracking, retransmission, and dedup
// machinery applies to its requests exactly as to program-driven traffic.
type lockClient struct {
	proc   word.ProcID
	ids    *word.IDGen
	nprocs int
	rounds int

	phase     int // 0 acquire, 1 CS load, 2 CS store, 3 release
	round     int
	pending   bool
	pendingID word.ReqID
	loaded    int64

	acquires  int
	naks      int
	trying    bool
	tryStart  int64
	latencies []int64 // cycles from first acquire attempt to grant, per round
}

func (c *lockClient) Done() bool { return c.round >= c.rounds }

func (c *lockClient) Next(cycle int64) (network.Injection, bool) {
	if c.pending || c.Done() {
		return network.Injection{}, false
	}
	var op rmw.Mapping
	addr := rmeLockAddr
	switch c.phase {
	case 0:
		op = rmw.RMEAcquire(int64(c.proc) + 1)
		if !c.trying {
			c.trying, c.tryStart = true, cycle
		}
	case 1:
		op, addr = rmw.Load{}, rmeCtrAddr
	case 2:
		op, addr = rmw.StoreOf(c.loaded+1), rmeCtrAddr
	default:
		op = rmw.RMERelease()
	}
	id := c.ids.NextPartitioned(c.nprocs)
	c.pending, c.pendingID = true, id
	return network.Injection{Req: core.NewRequest(id, addr, op, c.proc)}, true
}

func (c *lockClient) Deliver(rep core.Reply, cycle int64) {
	if !c.pending || rep.ID != c.pendingID {
		panic("lockClient: reply for a request it does not have in flight")
	}
	c.pending = false
	switch c.phase {
	case 0:
		if rmw.RMEAcquired(rep.Val) {
			c.acquires++
			c.latencies = append(c.latencies, cycle-c.tryStart)
			c.trying = false
			c.phase = 1
		} else {
			c.naks++ // lock held; reissue a fresh acquire
		}
	case 1:
		c.loaded = rep.Val.Val
		c.phase = 2
	case 2:
		c.phase = 3
	default:
		c.phase = 0
		c.round++
	}
}

// runRMESoak drives nprocs lock clients for rounds critical sections each on
// one engine and checks mutual exclusion (counter invariant), liveness (all
// rounds complete), and exactly-once acquisition.  It returns the per-round
// acquire latencies across all clients.
func runRMESoak(t *testing.T, name string, nprocs, rounds, maxCycles int,
	build func([]network.Injector) faultEngine) []int64 {
	t.Helper()
	clients := make([]*lockClient, nprocs)
	inj := make([]network.Injector, nprocs)
	for i := range clients {
		clients[i] = &lockClient{
			proc:   word.ProcID(i),
			ids:    word.Partition(i, nprocs),
			nprocs: nprocs,
			rounds: rounds,
		}
		inj[i] = clients[i]
	}
	eng := build(inj)
	sd, _ := any(eng).(stallDetector)
	done := func() bool {
		for _, c := range clients {
			if !c.Done() {
				return false
			}
		}
		return eng.InFlight() == 0
	}
	for c := 0; c < maxCycles && !done(); c++ {
		eng.Step()
		if sd != nil && sd.Stalled() {
			t.Fatalf("%s: engine stalled mid-protocol", name)
		}
	}
	if !done() {
		t.Fatalf("%s: protocol did not complete in %d cycles (in flight %d)",
			name, maxCycles, eng.InFlight())
	}
	if got := eng.Outstanding(); got != 0 {
		t.Fatalf("%s: %d requests never delivered", name, got)
	}

	var acquires, naks int
	var lat []int64
	for _, c := range clients {
		acquires += c.acquires
		naks += c.naks
		lat = append(lat, c.latencies...)
	}
	want := int64(nprocs * rounds)
	if got := eng.PeekMem(rmeCtrAddr).Val; got != want {
		t.Fatalf("%s: counter = %d, want %d — a lost update means two clients "+
			"were inside the critical section at once", name, got, want)
	}
	if int64(acquires) != want {
		t.Fatalf("%s: %d successful acquires, want %d (exactly-once violated)",
			name, acquires, want)
	}
	if w := eng.PeekMem(rmeLockAddr); w.Tag != word.Empty {
		t.Fatalf("%s: lock word still held after all releases: %v", name, w)
	}
	if naks == 0 && nprocs > 1 {
		t.Fatalf("%s: no contention NAKs — the lock was never actually hot", name)
	}
	return lat
}

func rmeEngines(plan *faults.Plan) map[string]func([]network.Injector) faultEngine {
	return map[string]func([]network.Injector) faultEngine{
		"network": func(inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: plan}, inj)}
		},
		"busnet": func(inj []network.Injector) faultEngine {
			return busProbe{busnet.NewSim(busnet.Config{Procs: 8, Banks: 4, WaitBufCap: 64, Faults: plan}, inj)}
		},
		"hypercube": func(inj []network.Injector) faultEngine {
			return cubeProbe{hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: 64, Faults: plan}, inj)}
		},
	}
}

// TestRMELockClean runs the lock protocol on a healthy machine: 8 clients,
// 16 critical sections each, on all three cycle-driven transports.
func TestRMELockClean(t *testing.T) {
	for name, build := range rmeEngines(nil) {
		lat := runRMESoak(t, name, 8, 16, 400000, build)
		if len(lat) != 8*16 {
			t.Fatalf("%s: recorded %d acquire latencies, want %d", name, len(lat), 8*16)
		}
	}
}

// TestRMELockUnderCrashPlan runs the same protocol under combined crash and
// drop plans: module crashes roll the lock word back to a checkpoint, switch
// crashes flush in-flight acquires, and the exactly-once retry machinery
// must re-drive everything without ever admitting two holders.
func TestRMELockUnderCrashPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for name, build := range rmeEngines(crashDropPlan(seed)) {
			runRMESoak(t, name, 8, 16, 400000, build)
		}
	}
	// The crash plan must actually have bitten at least once: rerun one
	// engine and inspect its counters.
	clients := make([]*lockClient, 8)
	inj := make([]network.Injector, 8)
	for i := range clients {
		clients[i] = &lockClient{proc: word.ProcID(i), ids: word.Partition(i, 8), nprocs: 8, rounds: 16}
		inj[i] = clients[i]
	}
	eng := netProbe{network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: crashDropPlan(1)}, inj)}
	for c := 0; c < 400000; c++ {
		eng.Step()
	}
	snap := eng.Snapshot()
	for _, k := range []string{"crashes", "restores", "checkpoints"} {
		if snap.Counters[k] == 0 {
			t.Fatalf("crash plan never exercised %s during the lock soak", k)
		}
	}
}

// TestRMERecoveryCost compares acquire latency clean versus crashed on the
// Omega network — the recovery_curve experiment's RME metric in miniature.
// Crashes must cost something (dead-time shows up in somebody's acquire)
// but the tail must stay bounded by the crash windows, not diverge.
func TestRMERecoveryCost(t *testing.T) {
	builds := rmeEngines(nil)
	clean := runRMESoak(t, "network-clean", 8, 16, 400000, builds["network"])
	crashed := runRMESoak(t, "network-crashed", 8, 16, 400000,
		rmeEngines(crashDropPlan(2))["network"])
	var maxClean, maxCrashed int64
	for _, l := range clean {
		if l > maxClean {
			maxClean = l
		}
	}
	for _, l := range crashed {
		if l > maxCrashed {
			maxCrashed = l
		}
	}
	if maxCrashed <= maxClean {
		t.Logf("crashed max acquire latency %d did not exceed clean %d (plan may "+
			"not have overlapped an acquire)", maxCrashed, maxClean)
	}
	t.Logf("acquire latency max: clean %d cycles, crashed %d cycles", maxClean, maxCrashed)
}
