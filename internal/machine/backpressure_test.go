package machine

import (
	"sort"
	"testing"

	"combining/internal/busnet"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/memory"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/stats"
	"combining/internal/word"
)

// Deadlock-freedom soaks: every queue in every engine bounded at its
// minimum capacity, a 64-processor hot spot driven through it, clean and
// under the PR 2 fault plans.  The runs must complete with zero progress-
// watchdog trips, reverse/memory high-water marks within the reserved-
// credit bounds, and replies matching core.SerialReplies (fetch-and-add
// replies are the serial prefix sums, so the sorted reply multiset must
// be exactly 0..N·R−1 and the final cell N·R).

const hotCell = word.Addr(0)

// hotPrograms builds nprocs programs of reqs fetch-and-add(1)s on one
// cell — the pure hot-spot workload of Pfister & Norton.
func hotPrograms(nprocs, reqs int) [][]Instr {
	progs := make([][]Instr, nprocs)
	for p := range progs {
		for i := 0; i < reqs; i++ {
			progs[p] = append(progs[p], RMW(hotCell, rmw.FetchAdd(1)))
		}
	}
	return progs
}

// soakEngine is what the soak needs from a transport: stepping, the
// shared snapshot schema, memory, and the watchdog's stall report.
type soakEngine interface {
	Engine
	Snapshot() stats.Snapshot
	Memory() *memory.Array
	Stalled() bool
	StallReport() string
}

// runBackpressureSoak drives the hot-spot programs and checks completion,
// serial-reply correctness, zero watchdog trips, and the gauge bounds.
func runBackpressureSoak(t *testing.T, name string, nprocs, reqs, maxCycles int,
	build func([]network.Injector) soakEngine, gaugeBounds map[string]int64) {
	t.Helper()
	progs := hotPrograms(nprocs, reqs)
	m, inj := NewInjectors(progs)
	eng := build(inj)
	m.BindEngine(eng)
	if !m.Run(maxCycles) {
		if eng.Stalled() {
			t.Fatalf("%s: watchdog tripped:\n%s", name, eng.StallReport())
		}
		t.Fatalf("%s: did not complete in %d cycles (%d in flight)", name, maxCycles, eng.InFlight())
	}

	total := nprocs * reqs
	ops := make([]rmw.Mapping, total)
	for i := range ops {
		ops[i] = rmw.FetchAdd(1)
	}
	serialReplies, final := serialGroundTruth(ops)
	if got := eng.Memory().Peek(hotCell); got != final {
		t.Fatalf("%s: final cell %d, serial ground truth %d", name, got.Val, final.Val)
	}
	var all []int64
	for p := 0; p < nprocs; p++ {
		for i := 0; i < reqs; i++ {
			all = append(all, m.Proc(p).Reply(i).Val)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != serialReplies[i].Val {
			t.Fatalf("%s: sorted reply %d = %d, serial ground truth %d", name, i, v, serialReplies[i].Val)
		}
	}

	snap := eng.Snapshot()
	if trips := snap.Counters["watchdog_trips"]; trips != 0 {
		t.Fatalf("%s: %d watchdog trips on a run that completed", name, trips)
	}
	for gauge, bound := range gaugeBounds {
		got, ok := snap.Gauges[gauge]
		if !ok {
			t.Fatalf("%s: snapshot missing gauge %q", name, gauge)
		}
		if got > bound {
			t.Fatalf("%s: gauge %s = %d exceeds bound %d", name, gauge, got, bound)
		}
	}
}

func serialGroundTruth(ops []rmw.Mapping) ([]word.Word, word.Word) {
	replies := make([]word.Word, len(ops))
	cur := word.W(0)
	for i, op := range ops {
		replies[i] = cur
		cur = op.Apply(cur)
	}
	return replies, cur
}

// Minimal-capacity configs: every queue at capacity 1, a small bounded
// wait buffer so reserved credits are actually exercised.  The reverse
// bound is RevQueueCap + WaitBufCap (each extra decombined leaf consumes
// a wait record — see DESIGN.md).
const soakWaitCap = 4

func netSoak(plan *faults.Plan) func([]network.Injector) soakEngine {
	return func(inj []network.Injector) soakEngine {
		return network.NewSim(network.Config{
			Procs: 64, QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
			WaitBufCap: soakWaitCap, Faults: plan,
		}, inj)
	}
}

func cubeSoak(plan *faults.Plan) func([]network.Injector) soakEngine {
	return func(inj []network.Injector) soakEngine {
		return hypercube.NewSim(hypercube.Config{
			Nodes: 64, QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
			WaitBufCap: soakWaitCap, Faults: plan,
		}, inj)
	}
}

func busSoak(plan *faults.Plan) func([]network.Injector) soakEngine {
	return func(inj []network.Injector) soakEngine {
		return busnet.NewSim(busnet.Config{
			Procs: 64, Banks: 8, QueueCap: 1, BankQueueCap: 1,
			WaitBufCap: soakWaitCap, Faults: plan,
		}, inj)
	}
}

func TestBackpressureSoakNetwork(t *testing.T) {
	bounds := map[string]int64{
		"max_rev_queue": 1 + soakWaitCap,
		"max_mem_queue": 1,
	}
	runBackpressureSoak(t, "network/clean", 64, 16, 400000, netSoak(nil), bounds)
	runBackpressureSoak(t, "network/faults", 64, 8, 2000000, netSoak(faults.Default(11)), bounds)
}

func TestBackpressureSoakHypercube(t *testing.T) {
	bounds := map[string]int64{
		"max_rev_queue": 1 + soakWaitCap,
		"max_mem_queue": 1,
	}
	runBackpressureSoak(t, "hypercube/clean", 64, 16, 400000, cubeSoak(nil), bounds)
	runBackpressureSoak(t, "hypercube/faults", 64, 8, 2000000, cubeSoak(faults.Default(12)), bounds)
}

func TestBackpressureSoakBusnet(t *testing.T) {
	bounds := map[string]int64{
		"max_mem_queue": 1,
	}
	runBackpressureSoak(t, "busnet/clean", 64, 16, 400000, busSoak(nil), bounds)
	runBackpressureSoak(t, "busnet/faults", 64, 8, 2000000, busSoak(faults.Default(13)), bounds)
}

// wedgedEngine is a transport whose watchdog trips after a fixed number
// of steps — a stand-in for a livelocked network (a real clean engine is
// deadlock-free by construction and cannot be wedged from outside).
type wedgedEngine struct{ steps, tripAt int }

func (w *wedgedEngine) Step()         { w.steps++ }
func (w *wedgedEngine) InFlight() int { return 1 }
func (w *wedgedEngine) Stalled() bool { return w.steps >= w.tripAt }

// TestRunFailsFastOnStall: Machine.Run on a watchdog-equipped engine
// returns as soon as the watchdog declares a stall instead of burning
// the remaining cycle budget on a wedged transport.
func TestRunFailsFastOnStall(t *testing.T) {
	progs := hotPrograms(1, 1)
	m, _ := NewInjectors(progs)
	eng := &wedgedEngine{tripAt: 500}
	m.BindEngine(eng)
	const budget = 1000000
	if m.Run(budget) {
		t.Fatal("Run reported completion on a wedged engine")
	}
	if eng.steps >= budget {
		t.Fatalf("Run burned the whole %d-cycle budget instead of failing fast", budget)
	}
	if eng.steps != 500 {
		t.Fatalf("Run stopped after %d steps, want 500 (the trip point)", eng.steps)
	}
}
