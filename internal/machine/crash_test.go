package machine

import (
	"testing"

	"combining/internal/busnet"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
	"combining/internal/serial"
	"combining/internal/word"
)

// Crash–restart soaks: whole components die mid-run — a switch flushes its
// queues and wait buffers, a memory module rolls back to its last
// checkpoint, a link drops every message for a burst — and the existing
// retransmit/reply-cache machinery must re-drive everything that was lost.
// The acceptance bar is the same as for message-loss faults: exactly-once
// completion, per-location serializability (Theorem 4.2), and byte-identical
// runs at every Workers width.

// crashPlan is the crash-only soak plan: DefaultCrash windows, no
// Bernoulli drops.
func crashPlan(seed uint64) *faults.Plan { return faults.DefaultCrash(seed) }

// crashDropPlan combines the PR-2 message-loss plan with the crash
// windows — components die while messages are also being lost, the
// hardest recovery regime the soaks run.
func crashDropPlan(seed uint64) *faults.Plan {
	p := faults.Default(seed)
	c := faults.DefaultCrash(seed)
	p.Crashes, p.MemCrashes, p.LinkCrashes = c.Crashes, c.MemCrashes, c.LinkCrashes
	p.CheckpointEvery = c.CheckpointEvery
	return p
}

// runCrashSoak drives hot-spot programs on one engine under a crash plan
// and checks exactly-once completion, M2 serializability, and that the
// crash machinery actually engaged (crashes, restores, checkpoints all
// nonzero — a plan whose windows never hit is a vacuous pass).
func runCrashSoak(t *testing.T, name string, seed uint64,
	build func(*faults.Plan, []network.Injector) faultEngine) {
	t.Helper()
	plan := crashDropPlan(seed)
	progs := faultPrograms(8, 16)
	m, inj := NewInjectors(progs)
	eng := build(plan, inj)
	m.BindEngine(eng)
	if !m.Run(400000) {
		t.Fatalf("%s seed %d: programs did not complete (in flight %d)", name, seed, eng.InFlight())
	}
	final := map[word.Addr]word.Word{}
	for a := word.Addr(0); a < 32; a++ {
		final[a] = eng.PeekMem(a)
	}
	if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
		t.Fatalf("%s seed %d: M2 violated under crashes: %v", name, seed, err)
	}
	snap := eng.Snapshot()
	if snap.Counters["issued"] != snap.Counters["completed"] {
		t.Fatalf("%s seed %d: issued %d != completed %d", name, seed,
			snap.Counters["issued"], snap.Counters["completed"])
	}
	if got := eng.Outstanding(); got != 0 {
		t.Fatalf("%s seed %d: %d requests never delivered", name, seed, got)
	}
	for _, key := range []string{"crashes", "restores", "checkpoints", "crash_cycles"} {
		if snap.Counters[key] == 0 {
			t.Errorf("%s seed %d: counter %s is zero — crash machinery never engaged\n%v",
				name, seed, key, snap.Counters)
		}
	}
	if snap.Counters["replayed_requests"] != snap.Counters["lost_in_flight"] {
		t.Errorf("%s seed %d: %d operations lost in flight but %d replayed — recovery incomplete",
			name, seed, snap.Counters["lost_in_flight"], snap.Counters["replayed_requests"])
	}
}

func TestNetworkUnderCrashPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runCrashSoak(t, "network", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

func TestFatTreeUnderCrashPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runCrashSoak(t, "fattree", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{
				Topology: engine.FatTreeOf(8, 2), WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

func TestBusnetUnderCrashPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runCrashSoak(t, "busnet", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return busProbe{busnet.NewSim(busnet.Config{Procs: 8, Banks: 4, WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

func TestHypercubeUnderCrashPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runCrashSoak(t, "hypercube", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return cubeProbe{hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

func TestTorusUnderCrashPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runCrashSoak(t, "torus", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return cubeProbe{hypercube.NewSim(hypercube.Config{
				Topology: engine.TorusOf(4, 2), WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

// Cross-worker determinism under crash plans: the 64-processor hot-spot
// workload at Workers = 1/2/3/4/GOMAXPROCS must stay byte-identical while
// components crash and restart, with the Workers=1 run checked against the
// core.SerialReplies ground truth (the exactly-once acceptance bar).
func TestCrashDeterminismNetwork(t *testing.T) {
	runDeterminismCheck(t, "network/crash", 64, 4, 2000000, netDet(crashDropPlan(51)))
}

func TestCrashDeterminismHypercube(t *testing.T) {
	runDeterminismCheck(t, "hypercube/crash", 64, 4, 2000000, cubeDet(crashDropPlan(52)))
}

func TestCrashDeterminismBusnet(t *testing.T) {
	runDeterminismCheck(t, "busnet/crash", 64, 4, 2000000, busDet(crashDropPlan(53)))
}

func TestCrashDeterminismFatTree(t *testing.T) {
	runDeterminismCheck(t, "fattree/crash", 64, 4, 2000000, fatTreeDet(crashDropPlan(54)))
}

func TestCrashDeterminismTorus(t *testing.T) {
	runDeterminismCheck(t, "torus/crash", 64, 4, 2000000, torusDet(crashDropPlan(55)))
}

// Seed parity: a generated crash schedule is a pure function of its seed,
// so the same GenCrashPlan arguments must replay the identical execution —
// same counters, same history — on every wiring.  This is the replay
// guarantee `cmd/replay -crashseed` leans on.
func TestCrashSeedParityAcrossWirings(t *testing.T) {
	wirings := []struct {
		name  string
		procs int
		build func(*faults.Plan, []network.Injector) faultEngine
	}{
		{"network-r2", 8, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: p}, inj)}
		}},
		{"network-r4", 16, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{Procs: 16, Radix: 4, WaitBufCap: 64, Faults: p}, inj)}
		}},
		{"fattree", 8, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{
				Topology: engine.FatTreeOf(8, 2), WaitBufCap: 64, Faults: p}, inj)}
		}},
		{"busnet", 8, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return busProbe{busnet.NewSim(busnet.Config{Procs: 8, Banks: 4, WaitBufCap: 64, Faults: p}, inj)}
		}},
		{"hypercube", 8, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return cubeProbe{hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: 64, Faults: p}, inj)}
		}},
		{"torus", 8, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return cubeProbe{hypercube.NewSim(hypercube.Config{
				Topology: engine.TorusOf(4, 2), WaitBufCap: 64, Faults: p}, inj)}
		}},
	}
	const seed = 99
	for _, w := range wirings {
		run := func() (map[string]int64, []serial.Op) {
			plan := faults.GenCrashPlan(seed, 2, 2000, 80)
			plan.DropFwd, plan.DropRev = 0.01, 0.01
			progs := faultPrograms(w.procs, 12)
			m, inj := NewInjectors(progs)
			eng := w.build(plan, inj)
			m.BindEngine(eng)
			if !m.Run(400000) {
				t.Fatalf("%s: programs did not complete (in flight %d)", w.name, eng.InFlight())
			}
			return eng.Snapshot().Counters, m.History().Ops()
		}
		c1, h1 := run()
		c2, h2 := run()
		for k, v := range c1 {
			if c2[k] != v {
				t.Errorf("%s: counter %s differs across replays of the same crash seed: %d vs %d",
					w.name, k, v, c2[k])
			}
		}
		if len(h1) != len(h2) {
			t.Fatalf("%s: history length differs: %d vs %d", w.name, len(h1), len(h2))
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("%s: op %d differs across replays: %+v vs %+v", w.name, i, h1[i], h2[i])
			}
		}
	}
}
