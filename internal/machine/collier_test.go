package machine

import (
	"testing"

	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// Experiment E2 — Collier's example (Section 3.2).
//
//	Processor 1          Processor 2
//	(1) load A           (3) store B ← 1
//	(2) load B           (4) store A ← 1
//
// A memory system satisfying only condition M2 (per-location FIFO) admits
// the execution order 4123, whose outcome a=1, b=0 is not sequentially
// consistent.  We engineer that order on the simulator: P1's load A is
// delayed behind flood traffic in a shared switch queue while its
// pipelined load B races ahead; P2 starts late enough that its store B
// misses the load B but its store A (on an uncongested path) beats the
// stuck load A.  Adding fences (the RP3 instruction) removes the outcome.

const (
	collierA  = word.Addr(7) // module 7 (upper half at every stage)
	collierA2 = word.Addr(6) // flood target sharing A's path until the last port
	collierB  = word.Addr(1) // module 1 (lower half: diverges at stage 0)
)

// collierPrograms builds the two programs plus the flooder; withFences
// inserts a fence between the two accesses of each processor.
func collierPrograms(withFences bool) [][]Instr {
	progs := make([][]Instr, 8)

	// P1 = processor 0: its own flood stores to module 6 contend for the
	// same stage-1 output port as load A, so load A inherits the full
	// backpressure, then the two loads issue pipelined.
	var p1 []Instr
	for i := 0; i < 12; i++ {
		p1 = append(p1, RMW(collierA2, rmw.StoreOf(int64(i))))
	}
	p1 = append(p1, RMW(collierA, rmw.Load{}))
	if withFences {
		p1 = append(p1, Fence())
	}
	p1 = append(p1, RMW(collierB, rmw.Load{}))
	progs[0] = p1

	// P2 = processor 1 (a different stage-0 switch): store B then store
	// A, starting once P1's loads are in flight.
	p2 := []Instr{
		{Addr: collierB, Op: rmw.StoreOf(1), MinCycle: 45},
	}
	if withFences {
		p2 = append(p2, Fence())
	}
	p2 = append(p2, Instr{Addr: collierA, Op: rmw.StoreOf(1)})
	progs[1] = p2

	// Processors 2 and 6 feed the other input of the stage-1 switch on
	// the path to modules 6/7; their flood of module 6 halves the drain
	// rate P1's traffic sees, so load A crawls while P2's disjoint path
	// (through stage-1 switch 3) stays clear.
	for _, flooder := range []int{2, 4, 6} {
		var flood []Instr
		for i := 0; i < 60; i++ {
			flood = append(flood, RMW(collierA2, rmw.StoreOf(int64(i))))
		}
		progs[flooder] = flood
	}
	return progs
}

func collierConfig() network.Config {
	return network.Config{Procs: 8, QueueCap: 8, WaitBufCap: 0}
}

func runCollier(t *testing.T, withFences bool) (a, b int64, hist *serial.History) {
	t.Helper()
	m := New(collierConfig(), collierPrograms(withFences))
	if !m.Run(5000) {
		t.Fatal("programs did not complete")
	}
	p1 := m.Proc(0)
	loadA := 12
	loadB := len(p1.prog) - 1
	return p1.Reply(loadA).Val, p1.Reply(loadB).Val, m.History()
}

func TestCollierExample(t *testing.T) {
	a, b, hist := runCollier(t, false)
	t.Logf("pipelined (M2 only): load A = %d, load B = %d", a, b)
	// The engineered interleaving must produce the non-SC outcome.
	if a != 1 || b != 0 {
		t.Fatalf("expected the non-sequentially-consistent outcome a=1 b=0, got a=%d b=%d", a, b)
	}
	// It is nevertheless M2-correct — each location served FIFO — which
	// is exactly the paper's point: M2 alone is not sequential
	// consistency.
	if err := serial.CheckM2(hist, nil); err != nil {
		t.Errorf("execution violates M2: %v", err)
	}
	if serial.SeqConsistent(collierCore(hist), nil) {
		t.Error("outcome a=1 b=0 wrongly judged sequentially consistent")
	}
}

func TestCollierWithFences(t *testing.T) {
	a, b, hist := runCollier(t, true)
	t.Logf("fenced: load A = %d, load B = %d", a, b)
	if a == 1 && b == 0 {
		t.Fatal("fences failed to prevent the non-SC outcome")
	}
	if err := serial.CheckM2(hist, nil); err != nil {
		t.Errorf("execution violates M2: %v", err)
	}
	if !serial.SeqConsistent(collierCore(hist), nil) {
		t.Error("fenced execution is not sequentially consistent")
	}
}

// collierCore strips the flood/setup operations from the history, keeping
// only the four operations of the litmus test (the SC check is exponential
// and the flood traffic is irrelevant to it: it touches disjoint
// locations).
func collierCore(h *serial.History) *serial.History {
	out := &serial.History{}
	for _, op := range h.Ops() {
		if op.Addr == collierA && op.Proc <= 1 || op.Addr == collierB {
			out.Add(op)
		}
	}
	return out
}
