package machine

import (
	"testing"

	"combining/internal/busnet"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/stats"
	"combining/internal/word"
)

// faultPrograms builds nprocs programs of ops hammering a few shared
// counters plus private cells — hot-spot traffic that combines heavily, the
// hardest case for exactly-once recovery.
func faultPrograms(nprocs, ops int) [][]Instr {
	progs := make([][]Instr, nprocs)
	for p := 0; p < nprocs; p++ {
		prog := make([]Instr, 0, ops)
		for i := 0; i < ops; i++ {
			switch i % 4 {
			case 0:
				prog = append(prog, RMW(word.Addr(0), rmw.FetchAdd(1)))
			case 1:
				prog = append(prog, RMW(word.Addr(p%3), rmw.SwapOf(int64(p*100+i))))
			case 2:
				prog = append(prog, RMW(word.Addr(7+p), rmw.FetchAdd(int64(i+1))))
			default:
				prog = append(prog, RMW(word.Addr(1), rmw.Load{}))
			}
		}
		progs[p] = prog
	}
	return progs
}

// faultEngine abstracts the three cycle-driven transports for the shared
// fault soak: an Engine plus the probes the assertions need.
type faultEngine interface {
	Engine
	Snapshot() stats.Snapshot
	Outstanding() int
	PeekMem(a word.Addr) word.Word
}

type netProbe struct{ *network.Sim }

func (p netProbe) Outstanding() int              { return p.Tracker().Outstanding() }
func (p netProbe) PeekMem(a word.Addr) word.Word { return p.Memory().Peek(a) }

type busProbe struct{ *busnet.Sim }

func (p busProbe) Outstanding() int              { return p.Tracker().Outstanding() }
func (p busProbe) PeekMem(a word.Addr) word.Word { return p.Memory().Peek(a) }

type cubeProbe struct{ *hypercube.Sim }

func (p cubeProbe) Outstanding() int              { return p.Tracker().Outstanding() }
func (p cubeProbe) PeekMem(a word.Addr) word.Word { return p.Memory().Peek(a) }

// runFaultSoak drives hot-spot programs on one engine under a fault plan
// and checks exactly-once completion plus per-location serializability
// (Theorem 4.2 surviving an unhealthy network).
func runFaultSoak(t *testing.T, name string, seed uint64, build func(*faults.Plan, []network.Injector) faultEngine) {
	t.Helper()
	plan := faults.Default(seed)
	progs := faultPrograms(8, 12)
	m, inj := NewInjectors(progs)
	eng := build(plan, inj)
	m.BindEngine(eng)
	if !m.Run(400000) {
		t.Fatalf("%s seed %d: programs did not complete (in flight %d)", name, seed, eng.InFlight())
	}
	final := map[word.Addr]word.Word{}
	for a := word.Addr(0); a < 32; a++ {
		final[a] = eng.PeekMem(a)
	}
	if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
		t.Fatalf("%s seed %d: M2 violated under faults: %v", name, seed, err)
	}
	snap := eng.Snapshot()
	if snap.Counters["faults_injected"] == 0 {
		t.Fatalf("%s seed %d: plan injected no faults", name, seed)
	}
	if snap.Counters["issued"] != snap.Counters["completed"] {
		t.Fatalf("%s seed %d: issued %d != completed %d", name, seed,
			snap.Counters["issued"], snap.Counters["completed"])
	}
	if got := eng.Outstanding(); got != 0 {
		t.Fatalf("%s seed %d: %d requests never delivered", name, seed, got)
	}
}

// TestNetworkUnderFaultPlan soaks the Omega network under the default fault
// plan (1% drops each way, a switch blackout, a module slowdown).
func TestNetworkUnderFaultPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runFaultSoak(t, "network", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return netProbe{network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

// TestBusnetUnderFaultPlan soaks the bus machine under the default plan.
func TestBusnetUnderFaultPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runFaultSoak(t, "busnet", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return busProbe{busnet.NewSim(busnet.Config{Procs: 8, Banks: 4, WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

// TestHypercubeUnderFaultPlan soaks the hypercube under the default plan.
func TestHypercubeUnderFaultPlan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7} {
		runFaultSoak(t, "hypercube", seed, func(p *faults.Plan, inj []network.Injector) faultEngine {
			return cubeProbe{hypercube.NewSim(hypercube.Config{Nodes: 8, WaitBufCap: 64, Faults: p}, inj)}
		})
	}
}

// TestNetworkFaultDeterminism checks that a fault-plan run replays exactly:
// same seed, same faults, same delivered history.
func TestNetworkFaultDeterminism(t *testing.T) {
	run := func() (counters map[string]int64, hist *serial.History) {
		plan := faults.Default(42)
		progs := faultPrograms(8, 10)
		m, inj := NewInjectors(progs)
		sim := network.NewSim(network.Config{Procs: 8, WaitBufCap: 64, Faults: plan}, inj)
		m.BindEngine(sim)
		if !m.Run(200000) {
			t.Fatal("programs did not complete")
		}
		return sim.Snapshot().Counters, m.History()
	}
	c1, h1 := run()
	c2, h2 := run()
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("counter %s differs across replays: %d vs %d", k, v, c2[k])
		}
	}
	ops1, ops2 := h1.Ops(), h2.Ops()
	if len(ops1) != len(ops2) {
		t.Fatalf("history length differs: %d vs %d", len(ops1), len(ops2))
	}
	for i := range ops1 {
		if ops1[i] != ops2[i] {
			t.Fatalf("op %d differs across replays: %+v vs %+v", i, ops1[i], ops2[i])
		}
	}
}
