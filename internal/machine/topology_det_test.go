package machine

import (
	"testing"

	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/network"
)

// The new wirings plug into the same engine cores with zero step-loop code
// of their own, so they inherit the determinism contract wholesale: the
// fat-tree runs the staged core and the torus the direct-connection core,
// each at the same minimal queue capacities and widths as the stock
// topologies, clean and under a fault plan, with the Workers=1 run checked
// against the core.SerialReplies ground truth at 64 processors.

func fatTreeDet(plan *faults.Plan) func(workers int) func([]network.Injector) soakEngine {
	return func(workers int) func([]network.Injector) soakEngine {
		return func(inj []network.Injector) soakEngine {
			return network.NewSim(network.Config{
				Topology: engine.FatTreeOf(64, 2),
				QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: soakWaitCap, Faults: plan, Workers: workers,
			}, inj)
		}
	}
}

func torusDet(plan *faults.Plan) func(workers int) func([]network.Injector) soakEngine {
	return func(workers int) func([]network.Injector) soakEngine {
		return func(inj []network.Injector) soakEngine {
			return hypercube.NewSim(hypercube.Config{
				Topology: engine.TorusOf(8, 8),
				QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: soakWaitCap, Faults: plan, Workers: workers,
			}, inj)
		}
	}
}

func TestDeterminismFatTree(t *testing.T) {
	runDeterminismCheck(t, "fattree/clean", 64, 8, 400000, fatTreeDet(nil))
	runDeterminismCheck(t, "fattree/faults", 64, 4, 2000000, fatTreeDet(faults.Default(34)))
}

func TestDeterminismTorus(t *testing.T) {
	runDeterminismCheck(t, "torus/clean", 64, 8, 400000, torusDet(nil))
	runDeterminismCheck(t, "torus/faults", 64, 4, 2000000, torusDet(faults.Default(35)))
}

// A higher-radix fat-tree shares no wiring arithmetic with omega at all
// (the digit swap is only line-preserving for radix 2 stage pairs), so run
// one clean determinism pass at radix 4 to pin the staged core's generic
// conflict groups on a genuinely different partition shape.
func TestDeterminismFatTreeRadix4(t *testing.T) {
	build := func(workers int) func([]network.Injector) soakEngine {
		return func(inj []network.Injector) soakEngine {
			return network.NewSim(network.Config{
				Topology: engine.FatTreeOf(64, 4),
				QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: soakWaitCap, Workers: workers,
			}, inj)
		}
	}
	runDeterminismCheck(t, "fattree4/clean", 64, 8, 400000, build)
}
