package coord

import (
	"combining/internal/asyncnet"
	"combining/internal/rmw"
	"combining/internal/word"
)

// PortMemory adapts one asyncnet port to the Memory interface: every Cell
// operation becomes an RMW request through the combining network.  Each
// participant goroutine must use its own port's PortMemory.
type PortMemory struct {
	Port *asyncnet.Port
}

var _ Memory = PortMemory{}

// Cell implements Memory.
func (p PortMemory) Cell(addr word.Addr) Cell {
	return portCell{port: p.Port, addr: addr}
}

type portCell struct {
	port *asyncnet.Port
	addr word.Addr
}

func (c portCell) FetchAdd(d int64) int64 {
	return c.port.RMW(c.addr, rmw.FetchAdd(d)).Val
}

func (c portCell) Load() int64 {
	return c.port.RMW(c.addr, rmw.Load{}).Val
}

func (c portCell) Store(v int64) {
	c.port.RMW(c.addr, rmw.StoreOf(v))
}

func (c portCell) Swap(v int64) int64 {
	return c.port.RMW(c.addr, rmw.SwapOf(v)).Val
}

func (c portCell) FetchOr(mask int64) int64 {
	return c.port.RMW(c.addr, rmw.FetchOr(mask)).Val
}

func (c portCell) FetchAndMask(mask int64) int64 {
	return c.port.RMW(c.addr, rmw.FetchAnd(mask)).Val
}
