package coord

import (
	"combining/internal/word"
)

// BitLock is the "multiple locking" application of Section 5.3: a word of
// up to 64 locks manipulated by bit-vector Boolean RMW operations.  A
// caller acquires an arbitrary *set* of locks in one combinable
// fetch-and-OR — all or nothing — and releases them with one
// fetch-and-AND.  Because the Boolean mask family combines, simultaneous
// acquisitions of disjoint lock sets merge into a single memory access.
type BitLock struct {
	c Cell
}

// NewBitLock binds a lock word to a cell (all locks initially free).
func NewBitLock(m Memory, addr word.Addr) *BitLock {
	return &BitLock{c: m.Cell(addr)}
}

// TryAcquire attempts to take every lock in mask at once.  It succeeds
// only if all were free; on partial conflict it releases what it grabbed
// and reports false.
func (l *BitLock) TryAcquire(mask uint64) bool {
	old := uint64(l.c.FetchOr(int64(mask)))
	if old&mask == 0 {
		return true
	}
	// Some requested locks were held: release exactly the ones this
	// call actually flipped (requested and previously clear).
	grabbed := mask &^ old
	if grabbed != 0 {
		l.c.FetchAndMask(^int64(grabbed))
	}
	return false
}

// Acquire busy-waits until the whole mask is taken.
func (l *BitLock) Acquire(mask uint64) {
	for !l.TryAcquire(mask) {
		spin()
	}
}

// Release frees every lock in mask.
func (l *BitLock) Release(mask uint64) {
	l.c.FetchAndMask(^int64(mask))
}

// Held reports the currently held lock bits (advisory).
func (l *BitLock) Held() uint64 { return uint64(l.c.Load()) }
