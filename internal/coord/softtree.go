package coord

import (
	"combining/internal/word"
)

// SoftBarrier is a software combining tree (Yew, Tzeng & Lawrie's
// response to this paper's hardware mechanism): when the network does not
// combine, the *algorithm* spreads the hot spot over a tree of counter
// cells with bounded fan-in, so no single cell takes more than fanIn
// concurrent fetch-and-adds.  The last arriver at each node climbs; the
// processor that reaches the root releases everyone by bumping the
// per-tree generation cell.
//
// It is the ablation partner of Barrier: with hardware combining the flat
// fetch-and-add barrier is optimal (the network forms the tree); without
// it, the software tree removes the serialization at the cost of lg n
// memory round trips for the last arriver.
type SoftBarrier struct {
	n     int
	fanIn int
	// nodes[l][i] is the arrival counter of node i at level l (level 0
	// holds the leaves).
	nodes [][]Cell
	gen   Cell
	// widths[l] is the participant count feeding level l.
	widths []int
}

// NewSoftBarrier builds a participant's view of the tree for n parties
// with the given fan-in (≥ 2).  Cells are allocated from base; the layout
// is identical for every participant.
func NewSoftBarrier(m Memory, base word.Addr, n, fanIn int) *SoftBarrier {
	if n < 1 {
		panic("coord: barrier needs at least one participant")
	}
	if fanIn < 2 {
		panic("coord: combining tree needs fan-in ≥ 2")
	}
	b := &SoftBarrier{n: n, fanIn: fanIn, gen: m.Cell(base)}
	addr := base + 1
	for width := n; ; width = (width + fanIn - 1) / fanIn {
		level := make([]Cell, (width+fanIn-1)/fanIn)
		for i := range level {
			level[i] = m.Cell(addr)
			addr++
		}
		b.nodes = append(b.nodes, level)
		b.widths = append(b.widths, width)
		if len(level) == 1 {
			break
		}
	}
	return b
}

// groupSize returns how many arrivals node i at level l must collect.
func (b *SoftBarrier) groupSize(l, i int) int64 {
	width := b.widths[l]
	size := b.fanIn
	if (i+1)*b.fanIn > width {
		size = width - i*b.fanIn
	}
	return int64(size)
}

// Await blocks participant id until all n have arrived.
func (b *SoftBarrier) Await(id int) {
	g := b.gen.Load()
	pos := id
	for l := 0; l < len(b.nodes); l++ {
		node := pos / b.fanIn
		// The fetch-and-add on a tree node is contended by at most
		// fanIn participants — the whole point of the tree.
		if b.nodes[l][node].FetchAdd(1) != b.groupSize(l, node)-1 {
			// Not the last arriver here: wait for the release.
			for b.gen.Load() == g {
				spin()
			}
			return
		}
		// Last arriver: reset this node for the next phase and climb.
		b.nodes[l][node].FetchAdd(-b.groupSize(l, node))
		pos = node
	}
	// Reached the top: release everyone.
	b.gen.FetchAdd(1)
}
