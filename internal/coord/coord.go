// Package coord implements the fetch-and-add coordination algorithms of
// the Ultracomputer line (Gottlieb, Lubachevsky, Rudolph [10]; Section 2 of
// the paper): counters, barriers, readers–writers, semaphores and a
// bounded MPMC queue, all built on combinable RMW operations so that under
// combining their hot spots do not serialize.
//
// Every algorithm is written against the Memory/Cell abstraction, so the
// same code runs on native atomics (package-local testing) and through the
// asynchronous combining network (one port per participant) — the paper's
// claim that these constructs "form the basis for a completely parallel,
// decentralized operating system" is exercised on the actual combining
// substrate.
//
// Construction convention: each participant builds its own instance of a
// primitive over its own Memory view; instances constructed with the same
// base address alias the same shared cells.  Constructors never write to
// memory, so late joiners cannot clobber live state; primitives with
// nonzero initial state have an explicit Init called by one participant.
package coord

import (
	"runtime"
	"sync"
	"sync/atomic"

	"combining/internal/word"
)

// Cell is one shared integer cell as seen by one participant.
type Cell interface {
	// FetchAdd atomically adds delta and returns the old value.
	FetchAdd(delta int64) int64
	// Load returns the current value.
	Load() int64
	// Store replaces the value.
	Store(v int64)
	// Swap replaces the value and returns the old one.
	Swap(v int64) int64
	// FetchOr atomically ORs mask in and returns the old value
	// (fetch-and-OR, Section 5.2).
	FetchOr(mask int64) int64
	// FetchAndMask atomically ANDs mask in and returns the old value.
	FetchAndMask(mask int64) int64
}

// Memory hands out a participant's view of shared cells.  Views from
// different participants of the same address alias the same cell.
type Memory interface {
	Cell(addr word.Addr) Cell
}

// Native is a Memory backed by in-process atomics — the reference
// substrate for the algorithms.
type Native struct {
	mu    sync.Mutex
	cells map[word.Addr]*atomic.Int64
}

// NewNative returns an empty native memory.
func NewNative() *Native {
	return &Native{cells: make(map[word.Addr]*atomic.Int64)}
}

// Cell implements Memory.
func (n *Native) Cell(addr word.Addr) Cell {
	n.mu.Lock()
	defer n.mu.Unlock()

	c, ok := n.cells[addr]
	if !ok {
		c = &atomic.Int64{}
		n.cells[addr] = c
	}
	return nativeCell{c}
}

type nativeCell struct{ v *atomic.Int64 }

func (c nativeCell) FetchAdd(d int64) int64        { return c.v.Add(d) - d }
func (c nativeCell) Load() int64                   { return c.v.Load() }
func (c nativeCell) Store(v int64)                 { c.v.Store(v) }
func (c nativeCell) Swap(v int64) int64            { return c.v.Swap(v) }
func (c nativeCell) FetchOr(mask int64) int64      { return c.v.Or(mask) }
func (c nativeCell) FetchAndMask(mask int64) int64 { return c.v.And(mask) }

// spin yields the processor between retries of a busy-wait loop.
func spin() { runtime.Gosched() }

// Counter is a shared event counter.
type Counter struct {
	c Cell
}

// NewCounter binds a counter to a cell.
func NewCounter(m Memory, addr word.Addr) *Counter {
	return &Counter{c: m.Cell(addr)}
}

// Inc adds one and returns the ticket (old value) — the fetch-and-add
// idiom for index assignment.
func (c *Counter) Inc() int64 { return c.c.FetchAdd(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.c.Load() }

// Barrier is a reusable N-party phase barrier built from a count cell and
// a generation cell, the standard fetch-and-add construction: the last
// arriver resets the count and bumps the generation; everyone else spins
// on the generation.
type Barrier struct {
	n     int64
	count Cell
	gen   Cell
}

// NewBarrier builds a barrier for n participants using two cells starting
// at base.
func NewBarrier(m Memory, base word.Addr, n int) *Barrier {
	if n < 1 {
		panic("coord: barrier needs at least one participant")
	}
	return &Barrier{n: int64(n), count: m.Cell(base), gen: m.Cell(base + 1)}
}

// Await blocks until all n participants have called Await for the current
// phase.
func (b *Barrier) Await() {
	g := b.gen.Load()
	if b.count.FetchAdd(1) == b.n-1 {
		b.count.FetchAdd(-b.n)
		b.gen.FetchAdd(1)
		return
	}
	for b.gen.Load() == g {
		spin()
	}
}

// Semaphore is a counting semaphore with busy-wait P (the paper's
// busy-waiting model: a failed decrement is undone and retried).
type Semaphore struct {
	c Cell
}

// NewSemaphore binds a semaphore to a cell.  One participant must call
// Init with the permit count before any P or V runs.
func NewSemaphore(m Memory, addr word.Addr) *Semaphore {
	return &Semaphore{c: m.Cell(addr)}
}

// Init sets the initial permit count.
func (s *Semaphore) Init(permits int64) { s.c.Store(permits) }

// P acquires one unit.
func (s *Semaphore) P() {
	for {
		if s.c.FetchAdd(-1) > 0 {
			return
		}
		s.c.FetchAdd(1)
		spin()
	}
}

// V releases one unit.
func (s *Semaphore) V() { s.c.FetchAdd(1) }

// RWLock is the fetch-and-add readers–writers protocol: readers add 1,
// writers add W (larger than any possible reader count); an acquisition
// that observes a conflicting weight undoes itself and retries.
type RWLock struct {
	c          Cell
	maxReaders int64
}

// NewRWLock builds a readers-writer lock supporting up to maxReaders
// concurrent readers.
func NewRWLock(m Memory, addr word.Addr, maxReaders int) *RWLock {
	if maxReaders < 1 {
		panic("coord: RWLock needs maxReaders ≥ 1")
	}
	return &RWLock{c: m.Cell(addr), maxReaders: int64(maxReaders)}
}

func (l *RWLock) writerWeight() int64 { return l.maxReaders + 1 }

// RLock acquires shared access.
func (l *RWLock) RLock() {
	for {
		if l.c.FetchAdd(1) < l.maxReaders {
			return
		}
		l.c.FetchAdd(-1)
		spin()
	}
}

// RUnlock releases shared access.
func (l *RWLock) RUnlock() { l.c.FetchAdd(-1) }

// Lock acquires exclusive access.
func (l *RWLock) Lock() {
	w := l.writerWeight()
	for {
		if l.c.FetchAdd(w) == 0 {
			return
		}
		l.c.FetchAdd(-w)
		spin()
	}
}

// Unlock releases exclusive access.
func (l *RWLock) Unlock() { l.c.FetchAdd(-l.writerWeight()) }

// Queue is the bounded MPMC FIFO of the Ultracomputer operating system:
// head and tail tickets are assigned by fetch-and-add (combinable, so a
// burst of enqueuers is serviced in one memory access), and per-slot turn
// counters sequence reuse of the ring.
type Queue struct {
	size       int64
	head, tail Cell
	turn       []Cell
	data       []Cell
}

// NewQueue builds a queue with the given ring size, using 2+2·size cells
// starting at base.
func NewQueue(m Memory, base word.Addr, size int) *Queue {
	if size < 1 {
		panic("coord: queue needs size ≥ 1")
	}
	q := &Queue{
		size: int64(size),
		head: m.Cell(base),
		tail: m.Cell(base + 1),
	}
	for i := 0; i < size; i++ {
		q.turn = append(q.turn, m.Cell(base+2+word.Addr(i)))
		q.data = append(q.data, m.Cell(base+2+word.Addr(size+i)))
	}
	return q
}

// Enqueue appends v, blocking (busy-wait) while the ring is full.
func (q *Queue) Enqueue(v int64) {
	t := q.tail.FetchAdd(1)
	slot, round := t%q.size, t/q.size
	for q.turn[slot].Load() != 2*round {
		spin()
	}
	q.data[slot].Store(v)
	q.turn[slot].Store(2*round + 1)
}

// Dequeue removes the oldest element, blocking while the queue is empty.
func (q *Queue) Dequeue() int64 {
	h := q.head.FetchAdd(1)
	slot, round := h%q.size, h/q.size
	for q.turn[slot].Load() != 2*round+1 {
		spin()
	}
	v := q.data[slot].Load()
	q.turn[slot].Store(2*round + 2)
	return v
}
