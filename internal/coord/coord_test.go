package coord

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"combining/internal/asyncnet"
)

// substrate runs a parallel body on n participants over some Memory
// implementation, giving each participant its own Memory view.
type substrate struct {
	name string
	n    int
	run  func(t *testing.T, body func(id int, mem Memory))
}

func substrates(t *testing.T) []substrate {
	t.Helper()
	return []substrate{
		{
			name: "native",
			n:    16,
			run: func(t *testing.T, body func(int, Memory)) {
				mem := NewNative()
				var wg sync.WaitGroup
				for id := 0; id < 16; id++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						body(id, mem)
					}()
				}
				wg.Wait()
			},
		},
		{
			name: "combining-net",
			n:    8,
			run: func(t *testing.T, body func(int, Memory)) {
				net := asyncnet.New(asyncnet.Config{Procs: 8, Combining: true})
				defer net.Close()
				var wg sync.WaitGroup
				for id := 0; id < 8; id++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						body(id, PortMemory{Port: net.Port(id)})
					}()
				}
				wg.Wait()
			},
		},
	}
}

func TestCounter(t *testing.T) {
	for _, s := range substrates(t) {
		t.Run(s.name, func(t *testing.T) {
			const perG = 40
			tickets := make([][]int64, s.n)
			s.run(t, func(id int, mem Memory) {
				c := NewCounter(mem, 0)
				for i := 0; i < perG; i++ {
					tickets[id] = append(tickets[id], c.Inc())
				}
			})
			var all []int64
			for _, ts := range tickets {
				all = append(all, ts...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, v := range all {
				if v != int64(i) {
					t.Fatalf("tickets are not a permutation: position %d holds %d", i, v)
				}
			}
		})
	}
}

func TestBarrier(t *testing.T) {
	for _, s := range substrates(t) {
		t.Run(s.name, func(t *testing.T) {
			const rounds = 10
			arrived := make([]atomic.Int64, rounds)
			s.run(t, func(id int, mem Memory) {
				b := NewBarrier(mem, 0, s.n)
				for r := 0; r < rounds; r++ {
					arrived[r].Add(1)
					b.Await()
					if got := arrived[r].Load(); got != int64(s.n) {
						t.Errorf("round %d: participant %d passed the barrier with %d/%d arrivals",
							r, id, got, s.n)
						return
					}
				}
			})
		})
	}
}

func TestSemaphore(t *testing.T) {
	for _, s := range substrates(t) {
		t.Run(s.name, func(t *testing.T) {
			const permits = 3
			var holders, maxHolders atomic.Int64
			// Participant 0 initializes the permit count before anyone
			// issues a P: a Store racing with a P's undo would inflate
			// the permits.
			ready := make(chan struct{})
			s.run(t, func(id int, mem Memory) {
				sem := NewSemaphore(mem, 7)
				if id == 0 {
					sem.Init(permits)
					close(ready)
				} else {
					<-ready
				}
				for i := 0; i < 20; i++ {
					sem.P()
					h := holders.Add(1)
					for {
						m := maxHolders.Load()
						if h <= m || maxHolders.CompareAndSwap(m, h) {
							break
						}
					}
					holders.Add(-1)
					sem.V()
				}
			})
			if got := maxHolders.Load(); got > permits {
				t.Fatalf("%d concurrent holders exceeded %d permits", got, permits)
			}
			if maxHolders.Load() == 0 {
				t.Fatal("semaphore never held")
			}
		})
	}
}

func TestRWLock(t *testing.T) {
	for _, s := range substrates(t) {
		t.Run(s.name, func(t *testing.T) {
			var readers, writers atomic.Int64
			s.run(t, func(id int, mem Memory) {
				l := NewRWLock(mem, 3, 64)
				for i := 0; i < 15; i++ {
					if id%4 == 0 { // a quarter are writers
						l.Lock()
						if writers.Add(1) != 1 || readers.Load() != 0 {
							t.Error("writer overlapped with another holder")
						}
						writers.Add(-1)
						l.Unlock()
					} else {
						l.RLock()
						if writers.Load() != 0 {
							t.Error("reader overlapped with a writer")
						}
						readers.Add(1)
						readers.Add(-1)
						l.RUnlock()
					}
				}
			})
		})
	}
}

func TestQueue(t *testing.T) {
	for _, s := range substrates(t) {
		t.Run(s.name, func(t *testing.T) {
			const perProducer = 30
			producers := s.n / 2
			consumers := s.n - producers
			total := producers * perProducer
			consumed := make(chan int64, total)
			var taken atomic.Int64
			s.run(t, func(id int, mem Memory) {
				q := NewQueue(mem, 100, 8)
				if id < producers {
					for i := 0; i < perProducer; i++ {
						q.Enqueue(int64(id*1000 + i))
					}
					return
				}
				for {
					if taken.Add(1) > int64(total) {
						return
					}
					consumed <- q.Dequeue()
				}
			})
			_ = consumers
			close(consumed)
			perProd := make(map[int64][]int64)
			count := 0
			for v := range consumed {
				perProd[v/1000] = append(perProd[v/1000], v%1000)
				count++
			}
			if count != total {
				t.Fatalf("consumed %d items, want %d", count, total)
			}
			// Global FIFO implies each producer's items leave in order;
			// since consumers may interleave, check each producer's
			// dequeue sequence is a permutation (exactly once each).
			for p, items := range perProd {
				if len(items) != perProducer {
					t.Fatalf("producer %d: %d items consumed", p, len(items))
				}
				seen := make([]bool, perProducer)
				for _, it := range items {
					if it < 0 || it >= perProducer || seen[it] {
						t.Fatalf("producer %d: item %d duplicated or out of range", p, it)
					}
					seen[it] = true
				}
			}
		})
	}
}
