package coord

import (
	"sync"
	"sync/atomic"
	"testing"

	"combining/internal/word"
)

func TestSoftBarrier(t *testing.T) {
	for _, fanIn := range []int{2, 3, 4} {
		for _, s := range substrates(t) {
			t.Run(s.name, func(t *testing.T) {
				const rounds = 8
				arrived := make([]atomic.Int64, rounds)
				s.run(t, func(id int, mem Memory) {
					b := NewSoftBarrier(mem, 200, s.n, fanIn)
					for r := 0; r < rounds; r++ {
						arrived[r].Add(1)
						b.Await(id)
						if got := arrived[r].Load(); got != int64(s.n) {
							t.Errorf("fanIn=%d round %d: participant %d passed with %d/%d arrivals",
								fanIn, r, id, got, s.n)
							return
						}
					}
				})
			})
		}
	}
}

func TestSoftBarrierSingleParty(t *testing.T) {
	b := NewSoftBarrier(NewNative(), 0, 1, 2)
	for i := 0; i < 5; i++ {
		b.Await(0) // must never block
	}
}

// TestSoftBarrierContentionSpread: the maximum number of fetch-and-adds
// any single cell absorbs per phase is bounded by the fan-in (plus its
// reset), unlike the flat barrier where one cell takes all n.
func TestSoftBarrierContentionSpread(t *testing.T) {
	const n, fanIn = 16, 2
	mem := &countingMemory{inner: NewNative()}
	done := make(chan struct{})
	for id := 0; id < n; id++ {
		go func(id int) {
			b := NewSoftBarrier(mem, 0, n, fanIn)
			b.Await(id)
			done <- struct{}{}
		}(id)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	maxPerCell := int64(0)
	mem.mu.Lock()
	for addr, c := range mem.adds {
		if addr == 0 {
			continue // the generation cell takes one bump
		}
		if c > maxPerCell {
			maxPerCell = c
		}
	}
	mem.mu.Unlock()
	// fanIn arrivals + one reset per phase.
	if maxPerCell > fanIn+1 {
		t.Fatalf("a tree cell absorbed %d fetch-and-adds, want ≤ %d", maxPerCell, fanIn+1)
	}
}

// countingMemory counts FetchAdd calls per address.
type countingMemory struct {
	inner Memory
	mu    sync.Mutex
	adds  map[int64]int64
}

func (m *countingMemory) Cell(addr word.Addr) Cell {
	return countingCell{m: m, addr: int64(addr), inner: m.inner.Cell(addr)}
}

type countingCell struct {
	m     *countingMemory
	addr  int64
	inner Cell
}

func (c countingCell) FetchAdd(d int64) int64 {
	c.m.mu.Lock()
	if c.m.adds == nil {
		c.m.adds = map[int64]int64{}
	}
	c.m.adds[c.addr]++
	c.m.mu.Unlock()
	return c.inner.FetchAdd(d)
}
func (c countingCell) Load() int64                { return c.inner.Load() }
func (c countingCell) Store(v int64)              { c.inner.Store(v) }
func (c countingCell) Swap(v int64) int64         { return c.inner.Swap(v) }
func (c countingCell) FetchOr(m int64) int64      { return c.inner.FetchOr(m) }
func (c countingCell) FetchAndMask(m int64) int64 { return c.inner.FetchAndMask(m) }
