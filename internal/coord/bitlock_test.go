package coord

import (
	"sync"
	"testing"
)

func TestBitLockBasic(t *testing.T) {
	l := NewBitLock(NewNative(), 0)
	if !l.TryAcquire(0b0011) {
		t.Fatal("free locks must acquire")
	}
	if l.TryAcquire(0b0110) {
		t.Fatal("overlapping set must fail")
	}
	if got := l.Held(); got != 0b0011 {
		t.Fatalf("held = %#b after failed overlap, want 0b0011 (undo leaked)", got)
	}
	if !l.TryAcquire(0b1100) {
		t.Fatal("disjoint set must acquire")
	}
	l.Release(0b0011)
	if got := l.Held(); got != 0b1100 {
		t.Fatalf("held = %#b, want 0b1100", got)
	}
	l.Release(0b1100)
	if l.Held() != 0 {
		t.Fatal("locks leaked")
	}
}

// TestBitLockMutualExclusion: concurrent owners of overlapping masks never
// coexist, across both substrates.
func TestBitLockMutualExclusion(t *testing.T) {
	for _, s := range substrates(t) {
		t.Run(s.name, func(t *testing.T) {
			// Participant id wants locks {id mod 4, (id+1) mod 4} — all
			// neighbouring pairs overlap.
			var mu sync.Mutex
			owner := map[uint]int{} // bit → current owner
			s.run(t, func(id int, mem Memory) {
				l := NewBitLock(mem, 50)
				mask := uint64(1)<<(id%4) | uint64(1)<<((id+1)%4)
				for i := 0; i < 10; i++ {
					l.Acquire(mask)
					mu.Lock()
					for b := uint(0); b < 4; b++ {
						if mask>>b&1 == 1 {
							if prev, held := owner[b]; held {
								t.Errorf("bit %d owned by both %d and %d", b, prev, id)
							}
							owner[b] = id
						}
					}
					mu.Unlock()
					mu.Lock()
					for b := uint(0); b < 4; b++ {
						if mask>>b&1 == 1 {
							delete(owner, b)
						}
					}
					mu.Unlock()
					l.Release(mask)
				}
			})
		})
	}
}

// TestBitLockAllOrNothing: a failed multi-lock acquisition leaves no
// residue even under contention.
func TestBitLockAllOrNothing(t *testing.T) {
	mem := NewNative()
	l := NewBitLock(mem, 0)
	l.Acquire(0b10) // bit 1 held by the test
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l2 := NewBitLock(mem, 0)
			for j := 0; j < 100; j++ {
				if l2.TryAcquire(0b11) { // overlaps the held bit: must fail
					t.Error("acquired a held lock")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Held(); got != 0b10 {
		t.Fatalf("held = %#b, want 0b10 (failed acquires leaked bits)", got)
	}
}
