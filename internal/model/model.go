// Package model provides closed-form performance predictions for the
// simulated machine, from the authors' own analytic work: Kruskal & Snir,
// "The Performance of Multistage Interconnection Networks for
// Multiprocessors" (IEEE Trans. Computers, 1983) — the companion analysis
// to this paper's architecture.  The tests validate the simulator against
// the formulas, closing the loop between the theory and the instrument.
package model

// KruskalSnirWait is the mean queueing delay per stage of a buffered
// banyan network of k×k switches under uniform random traffic with
// offered load p per input per cycle (0 ≤ p < 1):
//
//	W(p, k) = p·(1 − 1/k) / (2·(1 − p))
//
// — the central result of the 1983 analysis: contention cost grows
// hyperbolically in the load.  Per stage the wait grows mildly with k
// (each output merges k independent streams, approaching the Poisson-like
// p/(2(1−p)) as k → ∞), but the depth shrinks as log_k n, so the total
// queueing cost of the network falls with radix.
func KruskalSnirWait(p float64, k int) float64 {
	if p < 0 || p >= 1 {
		panic("model: load must be in [0, 1)")
	}
	if k < 2 {
		panic("model: radix must be ≥ 2")
	}
	return p * (1 - 1/float64(k)) / (2 * (1 - p))
}

// Stages returns log_k n, the network depth.
func Stages(n, k int) int {
	s := 0
	for v := 1; v < n; v *= k {
		s++
	}
	return s
}

// UniformLatency predicts the mean round-trip time under uniform traffic:
// the zero-load pipeline time plus the Kruskal–Snir queueing delay per
// forward stage.
//
// The zero-load term counts the simulator's fixed pipeline: one cycle per
// forward hop (stages + the injection hop), one memory service cycle, one
// cycle per reverse hop, and one delivery cycle.
func UniformLatency(n, k int, p float64) float64 {
	stages := Stages(n, k)
	zeroLoad := float64(stages+1) + 1 + float64(stages) + 1
	return zeroLoad + float64(stages)*KruskalSnirWait(p, k)
}

// HotspotBandwidth is the saturation limit for a fraction h of references
// to one module (the Pfister–Norton asymptote the hot-spot experiments
// compare against): the hot module serves one request per cycle and
// receives fraction h + (1−h)/n of all traffic.
func HotspotBandwidth(n int, h float64) float64 {
	return 1 / (h + (1-h)/float64(n))
}

// SaturationLoad is the offered per-input load at which the hot module
// saturates: n·p·(h + (1−h)/n) = 1.
func SaturationLoad(n int, h float64) float64 {
	return 1 / (float64(n)*h + (1 - h))
}
