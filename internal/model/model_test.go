package model

import (
	"math"
	"testing"

	"combining/internal/network"
)

func TestKruskalSnirWaitShape(t *testing.T) {
	// Zero at zero load; increasing in p; decreasing in k; hyperbolic
	// blow-up toward p → 1.
	if got := KruskalSnirWait(0, 2); got != 0 {
		t.Fatalf("W(0) = %g", got)
	}
	if !(KruskalSnirWait(0.6, 2) > KruskalSnirWait(0.3, 2)) {
		t.Error("W must increase with load")
	}
	// Per stage the wait grows with radix (more merged streams)…
	if !(KruskalSnirWait(0.5, 4) > KruskalSnirWait(0.5, 2)) {
		t.Error("per-stage W must grow with radix")
	}
	// …but the network total falls, because depth shrinks faster.
	tot := func(k int) float64 {
		return float64(Stages(4096, k)) * KruskalSnirWait(0.5, k)
	}
	if !(tot(4) < tot(2)) {
		t.Error("total queueing cost must fall with radix")
	}
	if !(KruskalSnirWait(0.95, 2) > 10*KruskalSnirWait(0.5, 2)) {
		t.Error("W must blow up near saturation")
	}
	// The exact value at p=1/2, k=2: (1/2)(1/2)/(2·(1/2)) = 1/4.
	if got := KruskalSnirWait(0.5, 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("W(0.5, 2) = %g, want 0.25", got)
	}
}

// TestModelAgainstSimulator: the 1983 formula predicts the simulator's
// uniform-traffic latency.  The formula assumes independent uniform
// arrivals and infinite buffers; the simulator has finite buffers,
// windows, and correlated closed-loop arrivals, so we accept generous
// tolerance — the point is that the load/latency curve has the predicted
// shape and magnitude.
func TestModelAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	for _, radix := range []int{2, 4} {
		const n = 64
		for _, p := range []float64{0.2, 0.4, 0.6} {
			inj := make([]network.Injector, n)
			for q := 0; q < n; q++ {
				// A deep window keeps the offered load close to the
				// Bernoulli rate.
				inj[q] = network.NewStochastic(q, n, network.TrafficConfig{
					Rate: p, Window: 32,
				}, 3)
			}
			sim := network.NewSim(network.Config{
				Procs: n, Radix: radix, QueueCap: 64, WaitBufCap: 0,
			}, inj)
			sim.Run(6000)
			measured := sim.Stats().MeanLatency()
			predicted := UniformLatency(n, radix, p)
			ratio := measured / predicted
			t.Logf("radix=%d p=%.1f: measured %.2f, Kruskal–Snir %.2f (ratio %.2f)",
				radix, p, measured, predicted, ratio)
			if ratio < 0.75 || ratio > 1.45 {
				t.Errorf("radix=%d p=%.1f: measured %.2f vs predicted %.2f out of tolerance",
					radix, p, measured, predicted)
			}
		}
	}
}

// TestSaturationModel: the simulator's hot-spot ceiling matches the
// analytic limit (restating E8's asymptote through the model package).
func TestSaturationModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const n, h = 64, 0.25
	res := network.RunHotspot(n, 0.9, h, false, 4000, 7)
	limit := HotspotBandwidth(n, h)
	ratio := res.Stats.Bandwidth() / limit
	t.Logf("hot-spot bandwidth %.2f vs limit %.2f (ratio %.2f)", res.Stats.Bandwidth(), limit, ratio)
	if ratio < 0.8 || ratio > 1.1 {
		t.Errorf("saturated bandwidth %.2f should sit at the analytic limit %.2f",
			res.Stats.Bandwidth(), limit)
	}
	// And the saturation load formula: below it the network keeps up.
	pSat := SaturationLoad(n, h)
	low := network.RunHotspot(n, pSat*0.5, h, false, 4000, 7)
	offered := float64(low.Stats.Issued) / 4000
	if low.Stats.Bandwidth() < 0.9*offered {
		t.Errorf("below saturation (p=%.3f) the network delivered %.2f of %.2f offered",
			pSat*0.5, low.Stats.Bandwidth(), offered)
	}
}
