// Package chaos is the randomized fault-plan fuzzer behind `cmd/check
// -chaos`.  It samples deterministic fault plans mixing every fault kind
// the injector knows — Bernoulli message drops, switch/memory stall
// windows, crash–restart windows, and the adversarial delivery trio
// (per-link reordering, network-born duplication, payload corruption) —
// runs seeded randomized programs under each plan on any of the six
// cycle-engine wirings, and checks the invariants the recovery and
// integrity layers promise: the programs complete, the history is
// per-location serializable against final memory (Theorem 4.2), and RMW
// semantics are exactly-once (issued == completed with nothing left in
// flight).
//
// On a violation, Shrink minimizes the scenario while it still fails:
// fault windows are dropped one at a time, whole fault kinds are zeroed,
// and the surviving probabilities are halved to the smallest value that
// still reproduces.  Because every probabilistic fault decision is a
// fixed-threshold hash of (seed, kind, site, id, attempt), lowering a
// probability keeps a strict subset of the original faults — shrinking
// narrows the same execution instead of jumping to a different one.
// ReproCommand renders the result as a `cmd/replay -chaos` command line
// that replays the minimal scenario deterministically.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"combining/internal/busnet"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/hypercube"
	"combining/internal/machine"
	"combining/internal/memory"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/stats"
	"combining/internal/word"
)

// Scenario is one fuzz case: a wiring, a seeded randomized workload, and a
// sampled fault plan.  Run is a pure function of the Scenario, so a failing
// case replays from its fields alone and Shrink can bisect it.
type Scenario struct {
	// Topology names the wiring, one of Wirings().
	Topology string
	// Procs, Ops and Addrs shape the workload: processors, operations per
	// processor, and the (hot) shared address range.
	Procs, Ops, Addrs int
	// WorkloadSeed keys the randomized programs.
	WorkloadSeed uint64
	// Plan is the fault plan under test.
	Plan *faults.Plan
}

// Wirings lists the six cycle-engine wirings the fuzzer rotates through:
// the radix-2 and radix-4 omega networks and the fat-tree on the staged
// engine, the bus machine, and the hypercube and torus on the direct
// engine.
func Wirings() []string {
	return []string{"omega", "omega4", "fattree", "bus", "hypercube", "torus"}
}

// maxCycles bounds one scenario run; sampled windows end by cycle ~2100
// and the workloads are tiny, so a run that needs more than this is wedged.
const maxCycles = 1_000_000

// NewScenario derives the index-th scenario of a fuzz run: every field is
// a pure function of (topology, fuzzSeed, index), so a fuzz run replays
// from its seed and the failing index alone.  The radix-4 omega needs a
// power-of-four processor count and gets a shorter program — the
// serializability checker's search grows steeply with operations per hot
// address.
func NewScenario(topology string, fuzzSeed uint64, index int) Scenario {
	rng := rand.New(rand.NewPCG(fuzzSeed, uint64(index)*0x9e3779b97f4a7c15+0x1f83d9ab))
	procs, ops := 8, 10
	if topology == "omega4" {
		procs, ops = 16, 6
	}
	return Scenario{
		Topology:     topology,
		Procs:        procs,
		Ops:          ops,
		Addrs:        4,
		WorkloadSeed: rng.Uint64(),
		Plan:         samplePlan(rng),
	}
}

// samplePlan draws one mixed fault plan: each kind is present with
// probability well under one, so plans vary from single-kind to
// everything-at-once, and every window lands early enough to overlap the
// short workloads.  The retry timeout is long so retransmits are about
// real losses, not congestion.
func samplePlan(rng *rand.Rand) *faults.Plan {
	p := &faults.Plan{Seed: rng.Uint64(), RetryTimeout: 256}
	if rng.Float64() < 0.7 {
		p.DropFwd = 0.002 + 0.018*rng.Float64()
	}
	if rng.Float64() < 0.7 {
		p.DropRev = 0.002 + 0.018*rng.Float64()
	}
	if rng.Float64() < 0.7 {
		p.Reorder = 0.005 + 0.045*rng.Float64()
		p.ReorderMax = int64(4 + rng.IntN(13))
	}
	if rng.Float64() < 0.7 {
		p.Dup = 0.005 + 0.025*rng.Float64()
	}
	if rng.Float64() < 0.7 {
		p.Corrupt = 0.005 + 0.025*rng.Float64()
	}
	win := func(stage, index int) faults.Window {
		from := int64(rng.IntN(2000))
		return faults.Window{Stage: stage, Index: index, From: from, To: from + int64(40+rng.IntN(80))}
	}
	for i := rng.IntN(3); i > 0; i-- {
		p.Stalls = append(p.Stalls, win(-1, rng.IntN(4)))
	}
	for i := rng.IntN(3); i > 0; i-- {
		p.MemStalls = append(p.MemStalls, win(-1, rng.IntN(4)))
	}
	if rng.Float64() < 0.4 {
		p.Crashes = append(p.Crashes, win(0, rng.IntN(4)))
	}
	if rng.Float64() < 0.4 {
		p.MemCrashes = append(p.MemCrashes, win(-1, rng.IntN(4)))
	}
	if rng.Float64() < 0.4 {
		p.LinkCrashes = append(p.LinkCrashes, win(1, rng.IntN(4)))
	}
	if p.HasCrashes() {
		p.CheckpointEvery = 64
	}
	return p
}

// Programs derives the scenario's randomized workload: a seeded
// per-instruction mix biased toward non-idempotent operations
// (fetch-and-add, affine, Boolean) so a double-executed RMW — the
// signature of a dedup bug — always shows up in the history or the final
// memory rather than hiding behind an idempotent store.
func Programs(seed uint64, procs, ops, addrs int) [][]machine.Instr {
	rng := rand.New(rand.NewPCG(seed, 1234))
	progs := make([][]machine.Instr, procs)
	for p := range progs {
		for i := 0; i < ops; i++ {
			addr := word.Addr(rng.IntN(addrs))
			var op rmw.Mapping
			switch r := rng.IntN(10); {
			case r < 4:
				op = rmw.FetchAdd(int64(rng.IntN(19) - 9))
			case r < 6:
				op = rmw.Affine{A: int64(rng.IntN(5) - 2), B: int64(rng.IntN(50))}
			case r < 7:
				op = rmw.Bool{A: rng.Uint64(), B: rng.Uint64()}
			case r < 8:
				op = rmw.SwapOf(int64(rng.IntN(100)))
			default:
				op = rmw.Load{}
			}
			progs[p] = append(progs[p], machine.RMW(addr, op))
		}
	}
	return progs
}

// chaosEngine is what one scenario run needs from a cycle engine.
type chaosEngine interface {
	machine.Engine
	Snapshot() stats.Snapshot
	Memory() *memory.Array
}

// newEngine builds and validates the scenario's wiring.
func newEngine(sc Scenario, inj []network.Injector) (chaosEngine, error) {
	switch sc.Topology {
	case "omega":
		cfg := network.Config{Procs: sc.Procs, WaitBufCap: 64, Faults: sc.Plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return network.NewSim(cfg, inj), nil
	case "omega4":
		cfg := network.Config{Procs: sc.Procs, Radix: 4, WaitBufCap: 64, Faults: sc.Plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return network.NewSim(cfg, inj), nil
	case "fattree":
		cfg := network.Config{Topology: engine.FatTreeOf(sc.Procs, 2), WaitBufCap: 64, Faults: sc.Plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return network.NewSim(cfg, inj), nil
	case "bus":
		cfg := busnet.Config{Procs: sc.Procs, Banks: 4, WaitBufCap: 64, Faults: sc.Plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return busnet.NewSim(cfg, inj), nil
	case "hypercube":
		cfg := hypercube.Config{Nodes: sc.Procs, WaitBufCap: 64, Faults: sc.Plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return hypercube.NewSim(cfg, inj), nil
	case "torus":
		cfg := hypercube.Config{Topology: engine.SquareTorusOf(sc.Procs), WaitBufCap: 64, Faults: sc.Plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return hypercube.NewSim(cfg, inj), nil
	default:
		return nil, fmt.Errorf("chaos: unknown topology %q (want %s)", sc.Topology, strings.Join(Wirings(), ", "))
	}
}

// Run executes one scenario and checks its invariants, returning the
// engine's snapshot counters (for vacuous-pass accounting) and the first
// violation found, nil if the run is clean.  Run is deterministic: the
// same Scenario always produces the same counters and the same verdict.
func Run(sc Scenario) (map[string]int64, error) {
	progs := Programs(sc.WorkloadSeed, sc.Procs, sc.Ops, sc.Addrs)
	m, inj := machine.NewInjectors(progs)
	eng, err := newEngine(sc, inj)
	if err != nil {
		return nil, err
	}
	m.BindEngine(eng)
	if !m.Run(maxCycles) {
		return eng.Snapshot().Counters,
			fmt.Errorf("programs did not complete within %d cycles (%d in flight)", maxCycles, eng.InFlight())
	}
	snap := eng.Snapshot()
	final := map[word.Addr]word.Word{}
	for a := 0; a < sc.Addrs; a++ {
		final[word.Addr(a)] = eng.Memory().Peek(word.Addr(a))
	}
	if err := serial.CheckM2WithFinal(m.History(), nil, final); err != nil {
		return snap.Counters, fmt.Errorf("per-location serializability violated: %v", err)
	}
	if snap.Counters["issued"] != snap.Counters["completed"] {
		return snap.Counters, fmt.Errorf("exactly-once violated: issued %d != completed %d",
			snap.Counters["issued"], snap.Counters["completed"])
	}
	if n := eng.InFlight(); n != 0 {
		return snap.Counters, fmt.Errorf("%d requests still in flight after completion", n)
	}
	return snap.Counters, nil
}

// Windows counts the fault windows in a plan — the size metric the
// shrinker minimizes and the acceptance bar ("shrunk to ≤ N windows")
// measures.
func Windows(p *faults.Plan) int {
	return len(p.Stalls) + len(p.MemStalls) + len(p.Crashes) + len(p.MemCrashes) + len(p.LinkCrashes)
}

// windowLists gives the shrinker uniform access to the five window slices.
var windowLists = []struct {
	get func(*faults.Plan) []faults.Window
	set func(*faults.Plan, []faults.Window)
}{
	{func(p *faults.Plan) []faults.Window { return p.Stalls }, func(p *faults.Plan, w []faults.Window) { p.Stalls = w }},
	{func(p *faults.Plan) []faults.Window { return p.MemStalls }, func(p *faults.Plan, w []faults.Window) { p.MemStalls = w }},
	{func(p *faults.Plan) []faults.Window { return p.Crashes }, func(p *faults.Plan, w []faults.Window) { p.Crashes = w }},
	{func(p *faults.Plan) []faults.Window { return p.MemCrashes }, func(p *faults.Plan, w []faults.Window) { p.MemCrashes = w }},
	{func(p *faults.Plan) []faults.Window { return p.LinkCrashes }, func(p *faults.Plan, w []faults.Window) { p.LinkCrashes = w }},
}

// probFields gives the shrinker uniform access to the five fault
// probabilities.
var probFields = []struct {
	get func(*faults.Plan) float64
	set func(*faults.Plan, float64)
}{
	{func(p *faults.Plan) float64 { return p.DropFwd }, func(p *faults.Plan, v float64) { p.DropFwd = v }},
	{func(p *faults.Plan) float64 { return p.DropRev }, func(p *faults.Plan, v float64) { p.DropRev = v }},
	{func(p *faults.Plan) float64 { return p.Reorder }, func(p *faults.Plan, v float64) { p.Reorder = v }},
	{func(p *faults.Plan) float64 { return p.Dup }, func(p *faults.Plan, v float64) { p.Dup = v }},
	{func(p *faults.Plan) float64 { return p.Corrupt }, func(p *faults.Plan, v float64) { p.Corrupt = v }},
}

func clonePlan(p *faults.Plan) *faults.Plan {
	q := *p
	q.Stalls = append([]faults.Window(nil), p.Stalls...)
	q.MemStalls = append([]faults.Window(nil), p.MemStalls...)
	q.Crashes = append([]faults.Window(nil), p.Crashes...)
	q.MemCrashes = append([]faults.Window(nil), p.MemCrashes...)
	q.LinkCrashes = append([]faults.Window(nil), p.LinkCrashes...)
	return &q
}

// Shrink minimizes a failing scenario under a rerun budget and returns the
// smallest still-failing scenario plus the reruns spent.  The passes run
// to a fixpoint: shrink the program first (every later rerun gets
// cheaper), then drop fault windows one at a time, zero whole fault
// kinds, and finally walk each surviving probability and the reorder
// bound down while the violation reproduces.  A candidate is accepted
// only if it still fails, so the result always replays the violation.
func Shrink(sc Scenario, maxRuns int) (Scenario, int) {
	runs := 0
	fails := func(c Scenario) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		_, err := Run(c)
		return err != nil
	}
	cur := sc
	for changed := true; changed && runs < maxRuns; {
		changed = false
		// Shorter programs first: the serializability check dominates the
		// rerun cost and its search grows steeply with ops per address.
		for cur.Ops > 2 {
			cand := cur
			cand.Ops = cur.Ops / 2
			if !fails(cand) {
				break
			}
			cur = cand
			changed = true
		}
		for _, wl := range windowLists {
			for i := 0; i < len(wl.get(cur.Plan)); i++ {
				cand := cur
				cand.Plan = clonePlan(cur.Plan)
				ws := wl.get(cand.Plan)
				wl.set(cand.Plan, append(ws[:i:i], ws[i+1:]...))
				if fails(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
		for _, f := range probFields {
			if f.get(cur.Plan) == 0 {
				continue
			}
			cand := cur
			cand.Plan = clonePlan(cur.Plan)
			f.set(cand.Plan, 0)
			if fails(cand) {
				cur = cand
				changed = true
			}
		}
		for _, f := range probFields {
			// Halving keeps a strict subset of the fired faults (fixed
			// hash thresholds), so this walks to the smallest probability
			// that still triggers the violation.
			for f.get(cur.Plan) > 1e-6 {
				cand := cur
				cand.Plan = clonePlan(cur.Plan)
				f.set(cand.Plan, f.get(cur.Plan)/2)
				if !fails(cand) {
					break
				}
				cur = cand
				changed = true
			}
		}
		for cur.Plan.Reorder > 0 && cur.Plan.ReorderMax > 1 {
			cand := cur
			cand.Plan = clonePlan(cur.Plan)
			cand.Plan.ReorderMax = cur.Plan.ReorderMax / 2
			if !fails(cand) {
				break
			}
			cur = cand
			changed = true
		}
	}
	// Cosmetic: a reorder bound without a reorder probability is inert.
	if cur.Plan.Reorder == 0 && cur.Plan.ReorderMax != 0 {
		cur.Plan = clonePlan(cur.Plan)
		cur.Plan.ReorderMax = 0
	}
	return cur, runs
}

// ReproCommand renders a scenario as the cmd/replay command line that
// replays it deterministically — the form a shrunk violation is reported
// in.
func ReproCommand(sc Scenario) string {
	return fmt.Sprintf("go run ./cmd/replay -chaos -topology %s -n %d -ops %d -addrs %d -seed %d -plan '%s'",
		sc.Topology, sc.Procs, sc.Ops, sc.Addrs, sc.WorkloadSeed, faults.EncodePlan(sc.Plan))
}
