package chaos

import (
	"strings"
	"testing"
)

// TestChaosCleanAllWirings runs a small fixed-seed fuzz budget on every
// wiring with the repaired engines: zero violations expected, and across
// the whole budget each adversarial fault kind must actually have fired
// (the vacuous-pass guard at test scale; cmd/check -chaos applies the same
// guard over its larger budget).
func TestChaosCleanAllWirings(t *testing.T) {
	total := map[string]int64{}
	index := 0
	for _, topo := range Wirings() {
		for round := 0; round < 2; round++ {
			sc := NewScenario(topo, 1, index)
			index++
			counters, err := Run(sc)
			if err != nil {
				t.Errorf("%s #%d: %v\nreplay: %s", topo, index-1, err, ReproCommand(sc))
				continue
			}
			for k, v := range counters {
				total[k] += v
			}
		}
	}
	for _, key := range []string{"faults_injected", "reordered_held", "dup_injected", "corrupt_dropped"} {
		if total[key] == 0 {
			t.Errorf("vacuous pass — %s is zero across the whole budget", key)
		}
	}
}

// TestChaosDeterminism pins that Run is a pure function of the Scenario:
// both the verdict and the counters replay exactly.
func TestChaosDeterminism(t *testing.T) {
	sc := NewScenario("omega", 7, 3)
	c1, err1 := Run(sc)
	c2, err2 := Run(sc)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("verdict differs across replays: %v vs %v", err1, err2)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Errorf("counter %s differs across replays: %d vs %d", k, v, c2[k])
		}
	}
}

// TestChaosCanaryFoundAndShrunk is the end-to-end acceptance check for
// the fuzzer: with the seeded reply-cache bug armed (Canary "nodedup" —
// the cache records replies but never answers from them, so duplicated
// deliveries double-execute), the fuzzer must find a violation within a
// small budget, shrink it to at most two fault windows, and the shrunk
// scenario must replay the violation deterministically.
func TestChaosCanaryFoundAndShrunk(t *testing.T) {
	var found *Scenario
	for index := 0; index < 12 && found == nil; index++ {
		sc := NewScenario("omega", 1, index)
		sc.Plan.Canary = "nodedup"
		if _, err := Run(sc); err != nil {
			found = &sc
		}
	}
	if found == nil {
		t.Fatal("canary bug not found within 12 scenarios — the fuzzer cannot see double-execution")
	}
	shrunk, runs := Shrink(*found, 200)
	if w := Windows(shrunk.Plan); w > 2 {
		t.Errorf("shrunk plan keeps %d fault windows, want <= 2: %v", w, shrunk.Plan)
	}
	_, err1 := Run(shrunk)
	if err1 == nil {
		t.Fatal("shrunk scenario no longer fails — shrinker accepted a passing candidate")
	}
	_, err2 := Run(shrunk)
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("shrunk scenario does not replay deterministically:\nfirst:  %v\nsecond: %v", err1, err2)
	}
	repro := ReproCommand(shrunk)
	for _, part := range []string{"-chaos", "-topology omega", "-plan '", "canary=nodedup"} {
		if !strings.Contains(repro, part) {
			t.Errorf("reproducer %q missing %q", repro, part)
		}
	}
	t.Logf("canary shrunk after %d reruns to %d window(s): %s", runs, Windows(shrunk.Plan), repro)
}

// TestChaosRejectsUnknownTopology pins the one-line config error path.
func TestChaosRejectsUnknownTopology(t *testing.T) {
	sc := NewScenario("omega", 1, 0)
	sc.Topology = "ring"
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("want unknown-topology error, got %v", err)
	}
}

// TestSamplePlanCoversKinds checks the sampler actually mixes all seven
// fault kinds over a modest index range — the property the fuzzer's
// coverage rests on.
func TestSamplePlanCoversKinds(t *testing.T) {
	var drops, stalls, crashes, reorders, dups, corrupts int
	for i := 0; i < 40; i++ {
		p := NewScenario("omega", 99, i).Plan
		if p.DropFwd > 0 || p.DropRev > 0 {
			drops++
		}
		if len(p.Stalls) > 0 || len(p.MemStalls) > 0 {
			stalls++
		}
		if p.HasCrashes() {
			crashes++
		}
		if p.Reorder > 0 {
			reorders++
		}
		if p.Dup > 0 {
			dups++
		}
		if p.Corrupt > 0 {
			corrupts++
		}
		if p.HasCrashes() && p.CheckpointEvery == 0 {
			t.Errorf("plan %d has crash windows but no checkpoint cadence", i)
		}
	}
	for name, n := range map[string]int{
		"drops": drops, "stalls": stalls, "crashes": crashes,
		"reorders": reorders, "dups": dups, "corrupts": corrupts,
	} {
		if n == 0 {
			t.Errorf("sampler never produced %s across 40 plans", name)
		}
	}
}

// TestShrinkPreservesSeedAndTopology pins that the shrinker only ever
// narrows the plan and program — it must not wander to a different
// wiring, workload, or fault seed, or the reproducer would not replay the
// original bug.
func TestShrinkPreservesSeedAndTopology(t *testing.T) {
	var sc Scenario
	triggered := false
	for index := 0; index < 12 && !triggered; index++ {
		sc = NewScenario("bus", 5, index)
		sc.Plan.Canary = "nodedup"
		_, err := Run(sc)
		triggered = err != nil
	}
	if !triggered {
		t.Skip("no bus scenario triggers the canary at this seed; covered by the omega test")
	}
	shrunk, _ := Shrink(sc, 120)
	if shrunk.Topology != sc.Topology || shrunk.WorkloadSeed != sc.WorkloadSeed ||
		shrunk.Plan.Seed != sc.Plan.Seed || shrunk.Plan.Canary != sc.Plan.Canary {
		t.Fatalf("shrinker changed scenario identity: %+v -> %+v", sc, shrunk)
	}
	if shrunk.Ops > sc.Ops || Windows(shrunk.Plan) > Windows(sc.Plan) {
		t.Fatalf("shrinker grew the scenario: ops %d->%d windows %d->%d",
			sc.Ops, shrunk.Ops, Windows(sc.Plan), Windows(shrunk.Plan))
	}
}
