package rmw

import (
	"fmt"

	"combining/internal/word"
)

// Affine is the additive/multiplicative subfamily of Section 5.4:
//
//	f(x) = a·x + b
//
// encoded by the two coefficients.  Composition is closed:
//
//	g(f(x)) = a_g·(a_f·x + b_f) + b_g = (a_g·a_f)·x + (a_g·b_f + b_g)
//
// Arithmetic wraps modulo 2⁶⁴ like machine integer arithmetic.  Because the
// composition identity is a polynomial identity, it holds in the ring
// ℤ/2⁶⁴ too, so combining wrapped affine requests is *exact*: the combined
// execution produces bit-for-bit the values of the serial execution.  The
// paper's guard-bit discussion concerns detecting overflow relative to a
// narrower word; that analysis lives in the Fixed type (fixedpoint.go).
type Affine struct {
	A int64
	B int64
}

var _ Mapping = Affine{}

// AffineAdd returns x → x + c (fetch-and-add within the affine family).
func AffineAdd(c int64) Affine { return Affine{A: 1, B: c} }

// AffineSub returns x → x − c.
func AffineSub(c int64) Affine { return Affine{A: 1, B: -c} }

// AffineRSub returns the reverse subtraction x → c − x.
func AffineRSub(c int64) Affine { return Affine{A: -1, B: c} }

// AffineMul returns x → c·x (fetch-and-multiply).
func AffineMul(c int64) Affine { return Affine{A: c} }

// Apply computes a·w + b with wrap-around, preserving the tag.
func (m Affine) Apply(w word.Word) word.Word {
	return word.Word{Val: m.A*w.Val + m.B, Tag: w.Tag}
}

// Kind reports KindAffine.
func (m Affine) Kind() Kind { return KindAffine }

// EncodedBits is an opcode byte plus the two coefficient words — "only two
// coefficients" as the paper notes for the +,× subfamily.
func (m Affine) EncodedBits() int { return 8 + 128 }

// String renders the function.
func (m Affine) String() string { return fmt.Sprintf("%d*x+%d", m.A, m.B) }

// compose combines with another affine mapping: "combining two such
// mappings requires two multiplications and one addition" (Section 5.4).
func (m Affine) compose(g Mapping) (Mapping, bool) {
	ga, ok := g.(Affine)
	if !ok {
		return nil, false
	}
	return Affine{A: ga.A * m.A, B: ga.A*m.B + ga.B}, true
}
