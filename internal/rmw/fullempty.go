package rmw

import (
	"combining/internal/word"
)

// Full/empty-bit operations (Section 5.5), as used by the Denelcor HEP:
// every shared word carries a full/empty flag; reads and writes can be
// conditioned on it, producer/consumer style.  Each operation is a Table
// over the two states S = {Empty, Full}.
//
// The paper starts from four basic operations — load, load-and-clear,
// store-and-set, store-if-clear-and-set — and shows that closing them under
// composition requires exactly two more: store-and-clear and
// store-if-clear-and-clear.  The constructors below build all six, plus the
// two conditional ("queueing") variants discussed at the end of the
// section.  TestFullEmptyClosure verifies the closure claim mechanically.

const feStates = 2

// FELoad returns the word and flag unchanged.
func FELoad() Table {
	return NewTable("fe-load", []Transition{
		{Next: word.Empty, Act: Keep},
		{Next: word.Full, Act: Keep},
	})
}

// FELoadClear returns the word and clears the flag: (X, s) → (X, 0).
func FELoadClear() Table {
	return NewTable("fe-load-and-clear", []Transition{
		{Next: word.Empty, Act: Keep},
		{Next: word.Empty, Act: Keep},
	})
}

// FEStoreSet stores v and sets the flag: (X, s) → (v, 1).
func FEStoreSet(v int64) Table {
	return NewTable("fe-store-and-set", []Transition{
		{Next: word.Full, Act: Store, V: v},
		{Next: word.Full, Act: Store, V: v},
	})
}

// FEStoreIfClearSet stores v and sets the flag only when the flag is
// clear; otherwise it fails (the reply's old tag Full is the negative
// acknowledgment).
func FEStoreIfClearSet(v int64) Table {
	return NewTable("fe-store-if-clear-and-set", []Transition{
		{Next: word.Full, Act: Store, V: v},
		{Fail: true},
	})
}

// FEStoreClear stores v and clears the flag: (X, s) → (v, 0).  It arises
// as store-and-set followed by load-and-clear.
func FEStoreClear(v int64) Table {
	return NewTable("fe-store-and-clear", []Transition{
		{Next: word.Empty, Act: Store, V: v},
		{Next: word.Empty, Act: Store, V: v},
	})
}

// FEStoreIfClearClear stores v only when the flag is clear and leaves the
// flag clear: store-if-clear-and-set followed by load-and-clear.
func FEStoreIfClearClear(v int64) Table {
	return NewTable("fe-store-if-clear-and-clear", []Transition{
		{Next: word.Empty, Act: Store, V: v},
		{Next: word.Empty, Act: Keep},
	})
}

// FELoadIfSetClear is the queueing consumer operation load-and-clear-if-set:
// it succeeds only on a full cell, emptying it.
func FELoadIfSetClear() Table {
	return NewTable("fe-load-and-clear-if-set", []Transition{
		{Fail: true},
		{Next: word.Empty, Act: Keep},
	})
}

// FEStoreIfSet stores v only when the flag is set, leaving it set.  The
// paper uses store-if-clear combined with store-if-set as the example where
// reversal cannot avoid carrying two store values.
func FEStoreIfSet(v int64) Table {
	return NewTable("fe-store-if-set", []Transition{
		{Fail: true},
		{Next: word.Full, Act: Store, V: v},
	})
}

// FEStoreIfClear stores v only when the flag is clear, leaving it clear —
// the flag-preserving counterpart of FEStoreIfSet.
func FEStoreIfClear(v int64) Table {
	return NewTable("fe-store-if-clear", []Transition{
		{Next: word.Empty, Act: Store, V: v},
		{Fail: true},
	})
}

// FEKind classifies a two-state table as one of the named full/empty
// operation shapes, ignoring the particular store values.  ok is false for
// tables outside the six-operation semigroup (plus the plain-store shape,
// which a Const contributes when mixed in).
func FEKind(t Table) (string, bool) {
	if t.States() != feStates {
		return "", false
	}
	// Classification is by memory effect: a failing transition acts on
	// memory exactly like "keep value, keep state", and composed tables
	// legitimately lose the failure marking (individual NAKs are
	// recovered from old tags at decombining time).  Store payloads are
	// canonicalized away; shapes ignore them.
	norm := func(tr Transition, s word.Tag) Transition {
		if tr.Fail {
			return Transition{Next: s, Act: Keep}
		}
		tr.Fail = false
		if tr.Act == Store {
			tr.V = 1
		}
		return tr
	}
	e := norm(t.At(word.Empty), word.Empty)
	f := norm(t.At(word.Full), word.Full)
	match := func(proto Table) bool {
		return e == norm(proto.At(word.Empty), word.Empty) &&
			f == norm(proto.At(word.Full), word.Full)
	}
	for _, c := range []struct {
		name  string
		proto Table
	}{
		{"fe-load", FELoad()},
		{"fe-load-and-clear", FELoadClear()},
		{"fe-store-and-set", FEStoreSet(1)},
		{"fe-store-if-clear-and-set", FEStoreIfClearSet(1)},
		{"fe-store-and-clear", FEStoreClear(1)},
		{"fe-store-if-clear-and-clear", FEStoreIfClearClear(1)},
	} {
		if match(c.proto) {
			return c.name, true
		}
	}
	return "", false
}
