package rmw

import (
	"fmt"
	"sort"
	"strings"

	"combining/internal/word"
)

// Data-level synchronization (Sections 5.5 and 5.6).
//
// A variable is a pair (X, s): a value and a state tag drawn from the state
// set of a controlling automaton A = ⟨Φ, S, δ⟩.  An operation issued in
// state s either fails — memory is untouched, and the processor learns of
// the failure from the old tag carried in the reply — or stores a value
// (or keeps X) and moves the tag to δ(s).
//
// A Table is the canonical closed form of such an operation: one transition
// per state.  It is exactly the paper's combined-request form
// ⟨X, (v₁,V₁,δ₁), …, (v_k,V_k,δ_k)⟩ re-indexed by state: since the Vᵢ are
// disjoint, the combined behaviour is a function of the current state
// alone.  A combined request therefore never carries more than |S| store
// values (Section 5.6), and for full/empty bits (|S| = 2) never more than
// two (Section 5.5).

// Action says what a transition does to the value part of the cell.
type Action uint8

const (
	// Keep leaves the value unchanged (loads, and failed operations).
	Keep Action = iota + 1
	// Store replaces the value with the transition's V.
	Store
)

// Transition is one row of a Table: the behaviour when the cell is in a
// given state.
type Transition struct {
	// Next is the state after the operation.  A failed operation keeps
	// the current state.
	Next word.Tag
	// Act is what happens to the value.
	Act Action
	// V is the stored value when Act == Store.
	V int64
	// Fail marks the state as rejecting: memory is unchanged (Next and
	// Act are ignored) and the issuing processor interprets the reply's
	// old tag as a negative acknowledgment.  Fail transitions matter
	// for reply interpretation and for the store-value accounting; the
	// memory effect is identical to {Next: s, Act: Keep}.
	Fail bool
}

// Table is a data-level synchronization mapping: a total function on
// (value, state) pairs with one transition per automaton state.
type Table struct {
	// T has one transition per state; the tag indexes it.  Tables are
	// immutable after construction: composition allocates fresh slices.
	T []Transition
	// Name is an optional operation name for rendering (the full/empty
	// constructors set it; composed tables derive one).
	Name string
}

var _ Mapping = Table{}

// NewTable builds a table over n states from the given transitions.
func NewTable(name string, trans []Transition) Table {
	if len(trans) == 0 || len(trans) > word.MaxStates {
		panic("rmw: table must have between 1 and MaxStates transitions")
	}
	t := make([]Transition, len(trans))
	copy(t, trans)
	return Table{T: t, Name: name}
}

// States returns |S|, the number of automaton states.
func (m Table) States() int { return len(m.T) }

// At returns the transition for state s.
func (m Table) At(s word.Tag) Transition {
	if int(s) >= len(m.T) {
		// A cell tag outside the automaton's state set is a usage
		// error; treat it as a failing state so memory is never
		// corrupted.
		return Transition{Next: s, Act: Keep, Fail: true}
	}
	return m.T[s]
}

// Apply executes the operation on the cell.
func (m Table) Apply(w word.Word) word.Word {
	tr := m.At(w.Tag)
	if tr.Fail {
		return w
	}
	out := word.Word{Val: w.Val, Tag: tr.Next}
	if tr.Act == Store {
		out.Val = tr.V
	}
	return out
}

// Failed reports whether an operation that observed old state s was
// rejected; processors call this on the reply's tag.
func (m Table) Failed(oldTag word.Tag) bool { return m.At(oldTag).Fail }

// Kind reports KindTable.
func (m Table) Kind() Kind { return KindTable }

// EncodedBits counts an opcode byte, a state-count byte, and per state a
// next-state byte, two flag bits, and a value word when one is stored.
// The count grows with the number of *distinct* store values, matching the
// paper's traffic accounting.
func (m Table) EncodedBits() int {
	bits := 16
	seen := make(map[int64]bool)
	for _, tr := range m.T {
		bits += 10
		if tr.Act == Store && !tr.Fail && !seen[tr.V] {
			seen[tr.V] = true
			bits += 64
		}
	}
	return bits
}

// StoreValues returns the distinct values a combined request must carry,
// in ascending order.  Section 5.6 bounds their number by |S|.
func (m Table) StoreValues() []int64 {
	seen := make(map[int64]bool)
	for _, tr := range m.T {
		if tr.Act == Store && !tr.Fail {
			seen[tr.V] = true
		}
	}
	vals := make([]int64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// String renders the table; named operations render as their name.
func (m Table) String() string {
	if m.Name != "" {
		return m.Name
	}
	var b strings.Builder
	b.WriteString("table{")
	for s, tr := range m.T {
		if s > 0 {
			b.WriteString(", ")
		}
		switch {
		case tr.Fail:
			fmt.Fprintf(&b, "%d:fail", s)
		case tr.Act == Store:
			fmt.Fprintf(&b, "%d:(%d,%d)", s, tr.V, tr.Next)
		default:
			fmt.Fprintf(&b, "%d:(keep,%d)", s, tr.Next)
		}
	}
	b.WriteString("}")
	return b.String()
}

// compose combines two table operations over the same state set, and also
// absorbs the untagged Const (a plain store, which keeps the state) and the
// untagged tag-oblivious families when they can be expressed state-wise.
func (m Table) compose(g Mapping) (Mapping, bool) {
	gt, ok := asTable(g, m.States())
	if !ok {
		return nil, false
	}
	if gt.States() != m.States() {
		return nil, false
	}
	out := make([]Transition, m.States())
	for s := range out {
		f := m.At(word.Tag(s))
		// The cell after f (failing f leaves the cell untouched).
		midState := word.Tag(s)
		midAct, midV := Keep, int64(0)
		if !f.Fail {
			midState = f.Next
			midAct, midV = f.Act, f.V
		}
		gTr := gt.At(midState)
		tr := Transition{}
		if gTr.Fail {
			// g does nothing further; the combined effect is f's.
			tr.Next = midState
			tr.Act, tr.V = midAct, midV
		} else {
			tr.Next = gTr.Next
			if gTr.Act == Store {
				tr.Act, tr.V = Store, gTr.V
			} else {
				tr.Act, tr.V = midAct, midV
			}
		}
		// The combined operation as a whole never "fails": it always
		// runs both steps' total effect.  Individual success is
		// recovered from the old tags at decombining time.
		out[s] = tr
	}
	return Table{T: out}, true
}

// asTable converts g into a table over n states when possible: tables pass
// through, a Const v becomes "store v, keep state" in every state, and a
// Load becomes the identity table.  Other untagged families would need the
// value part to depend on the old value *and* the state, which the combined
// form cannot carry, so they do not combine with tagged operations.
func asTable(g Mapping, n int) (Table, bool) {
	switch gg := g.(type) {
	case Table:
		return gg, true
	case Const:
		trans := make([]Transition, n)
		for s := range trans {
			trans[s] = Transition{Next: word.Tag(s), Act: Store, V: gg.V}
		}
		return Table{T: trans}, true
	case Load:
		trans := make([]Transition, n)
		for s := range trans {
			trans[s] = Transition{Next: word.Tag(s), Act: Keep}
		}
		return Table{T: trans}, true
	default:
		return Table{}, false
	}
}

// TableEqual reports semantic equality of two tables: same state count and
// identical memory effect in every state.  Names and failure markings on
// states with identical effects are compared too, because failure changes
// how replies are interpreted.
func TableEqual(a, b Table) bool {
	if a.States() != b.States() {
		return false
	}
	for s := 0; s < a.States(); s++ {
		ta, tb := a.At(word.Tag(s)), b.At(word.Tag(s))
		if ta.Fail != tb.Fail {
			return false
		}
		if ta.Fail {
			continue
		}
		if ta.Next != tb.Next || ta.Act != tb.Act {
			return false
		}
		if ta.Act == Store && ta.V != tb.V {
			return false
		}
	}
	return true
}
