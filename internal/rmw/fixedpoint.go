package rmw

// This file reproduces the guard-bit argument of Section 5.4: "It is
// possible to obtain an accurate combining mechanism for fixed-point
// operations, not including division, by adding one extra bit to the
// intermediate values, thereby increasing the range by a factor of two.
// If an overflow occurs in that increased range then an overflow would have
// occurred in the serial execution of the operations in the restricted
// range."
//
// Fixed models a w-bit two's-complement machine.  The serial reference runs
// fetch-and-adds one at a time, flagging any step that leaves the w-bit
// range.  The combining analysis composes the same addends in an arbitrary
// binary tree, carrying intermediates in the (w+guard)-bit range.  The
// experiment (TestGuardBits) checks the paper's implication: with one guard
// bit, a combined overflow only happens on inputs whose serial execution
// overflows too.

// Fixed describes a fixed-point word width for overflow analysis.
type Fixed struct {
	// Width is the word width w in bits, 2 ≤ w ≤ 62 (kept below 64 so
	// the analysis itself cannot wrap in int64).
	Width uint
}

// InRange reports whether v fits in a two's-complement word of the given
// extra guard width: v ∈ [−2^(w+guard−1), 2^(w+guard−1)).
func (f Fixed) InRange(v int64, guard uint) bool {
	half := int64(1) << (f.Width + guard - 1)
	return v >= -half && v < half
}

// SerialOverflows runs x ← x + aᵢ serially in the restricted w-bit range
// and reports whether any intermediate (or the initial value) escapes it.
func (f Fixed) SerialOverflows(x0 int64, addends []int64) bool {
	if !f.InRange(x0, 0) {
		return true
	}
	x := x0
	for _, a := range addends {
		x += a
		if !f.InRange(x, 0) {
			return true
		}
	}
	return false
}

// TreeShape describes a combining order: a node is either a leaf (an index
// into the addend slice) or an internal node combining two subtrees, the
// left one serialized before the right one.
type TreeShape struct {
	Leaf        int
	Left, Right *TreeShape
}

// LeftSpine returns the degenerate tree that combines addends one at a
// time, matching the order a switch queue would combine a stream.
func LeftSpine(n int) *TreeShape {
	if n == 0 {
		return nil
	}
	t := &TreeShape{Leaf: 0}
	for i := 1; i < n; i++ {
		t = &TreeShape{Leaf: -1, Left: t, Right: &TreeShape{Leaf: i}}
	}
	return t
}

// Balanced returns the complete combining tree over addends [lo, hi).
func Balanced(lo, hi int) *TreeShape {
	if hi-lo <= 0 {
		return nil
	}
	if hi-lo == 1 {
		return &TreeShape{Leaf: lo}
	}
	mid := (lo + hi) / 2
	return &TreeShape{Leaf: -1, Left: Balanced(lo, mid), Right: Balanced(mid, hi)}
}

// CombinedOverflows combines the addends along the given tree, keeping
// intermediate partial sums in the (w+guard)-bit range, then applies the
// combined addend to x0 and walks the decombining replies (the serial
// prefix values) in the same extended range.  It reports whether any
// intermediate escapes the extended range.
func (f Fixed) CombinedOverflows(x0 int64, addends []int64, shape *TreeShape, guard uint) bool {
	overflow := false
	var sum func(t *TreeShape) int64
	sum = func(t *TreeShape) int64 {
		if t.Left == nil {
			return addends[t.Leaf]
		}
		s := sum(t.Left) + sum(t.Right)
		if !f.InRange(s, guard) {
			overflow = true
		}
		return s
	}
	if shape == nil {
		return !f.InRange(x0, guard)
	}
	total := sum(shape)
	// Decombining computes every prefix value x0 + (sum of a left
	// subtree); walk them all, as the reply fan-out does.
	var prefixes func(t *TreeShape, base int64)
	prefixes = func(t *TreeShape, base int64) {
		if !f.InRange(base, guard) {
			overflow = true
		}
		if t.Left == nil {
			return
		}
		prefixes(t.Left, base)
		prefixes(t.Right, base+treeSum(addends, t.Left))
	}
	prefixes(shape, x0)
	if !f.InRange(x0+total, guard) {
		overflow = true
	}
	return overflow
}

func treeSum(addends []int64, t *TreeShape) int64 {
	if t.Left == nil {
		return addends[t.Leaf]
	}
	return treeSum(addends, t.Left) + treeSum(addends, t.Right)
}
