package rmw

import (
	"math/rand/v2"

	"combining/internal/word"
)

// newTestRand returns a deterministic PRNG for table-driven fuzzing.
func newTestRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// randMapping draws a random mapping from the tag-oblivious families, for
// cross-family composition fuzzing.  The index selects a family so callers
// can force same-family pairs.
func randMapping(rng *rand.Rand, family int) Mapping {
	v := int64(rng.IntN(2001) - 1000)
	switch family {
	case 0:
		return Load{}
	case 1:
		return StoreOf(v)
	case 2:
		return SwapOf(v)
	case 3:
		return FetchAdd(v)
	case 4:
		return Bool{A: rng.Uint64(), B: rng.Uint64()}
	case 5:
		return Affine{A: int64(rng.IntN(9) - 4), B: v}
	default:
		ops := []Assoc{FetchOr(v), FetchAnd(v), FetchXor(v), FetchMin(v), FetchMax(v)}
		return ops[rng.IntN(len(ops))]
	}
}

// randWord draws a random untagged word.
func randWord(rng *rand.Rand) word.Word {
	return word.W(int64(rng.Uint64()))
}
