package rmw

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	mappings := []Mapping{
		Load{},
		StoreOf(42),
		SwapOf(-7),
		FetchAdd(123456789),
		FetchOr(0xff),
		FetchAnd(-1),
		FetchXor(1 << 62),
		FetchMin(-5),
		FetchMax(5),
		Bool{A: 0xdeadbeefcafef00d, B: 0x0123456789abcdef},
		Affine{A: -3, B: 9},
		Moebius{A: 1.5, B: -2.25, C: 0.125, D: 3},
		FELoad(),
		FELoadClear(),
		FEStoreSet(99),
		FEStoreIfClearSet(-99),
		FEStoreClear(1),
		FEStoreIfClearClear(2),
	}
	for _, m := range mappings {
		t.Run(m.String(), func(t *testing.T) {
			enc := Encode(m)
			got, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if n != len(enc) {
				t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
			}
			// Tables decode without names; compare semantics.
			if wantT, isTable := m.(Table); isTable {
				gotT, ok := got.(Table)
				if !ok || !TableEqual(wantT, gotT) {
					t.Fatalf("table round trip: got %v, want %v", got, m)
				}
				return
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip: got %#v, want %#v", got, m)
			}
		})
	}
}

func TestDecodeConcatenated(t *testing.T) {
	var buf []byte
	ms := []Mapping{FetchAdd(1), StoreOf(2), Load{}, Bool{A: 3, B: 4}}
	for _, m := range ms {
		buf = AppendEncode(buf, m)
	}
	for i, want := range ms {
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: got %v, want %v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, _, err := Decode(nil); !errors.Is(err, ErrShortEncoding) {
			t.Fatalf("err = %v, want ErrShortEncoding", err)
		}
	})
	t.Run("unknown-opcode", func(t *testing.T) {
		if _, _, err := Decode([]byte{0xff}); !errors.Is(err, ErrUnknownEncoding) {
			t.Fatalf("err = %v, want ErrUnknownEncoding", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		full := Encode(FetchAdd(7))
		for cut := 1; cut < len(full); cut++ {
			if _, _, err := Decode(full[:cut]); !errors.Is(err, ErrShortEncoding) {
				t.Fatalf("cut=%d: err = %v, want ErrShortEncoding", cut, err)
			}
		}
	})
	t.Run("truncated-table", func(t *testing.T) {
		full := Encode(FEStoreIfClearSet(5))
		for cut := 1; cut < len(full); cut++ {
			if _, _, err := Decode(full[:cut]); !errors.Is(err, ErrShortEncoding) {
				t.Fatalf("cut=%d: err = %v, want ErrShortEncoding", cut, err)
			}
		}
	})
	t.Run("bad-assoc-op", func(t *testing.T) {
		buf := bytes.Repeat([]byte{0}, 9)
		buf[0] = wireAssoc // op nibble 0 is invalid
		if _, _, err := Decode(buf); !errors.Is(err, ErrUnknownEncoding) {
			t.Fatalf("err = %v, want ErrUnknownEncoding", err)
		}
	})
}

// TestEncodedBitsHonest keeps the tractability accounting consistent with
// the actual wire encoding: EncodedBits must never understate the encoded
// size by more than the fixed overhead tables save by omitting values.
func TestEncodedBitsHonest(t *testing.T) {
	mappings := []Mapping{
		Load{}, StoreOf(1), SwapOf(1), FetchAdd(1),
		Bool{A: 1, B: 2}, Affine{A: 1, B: 2}, Moebius{A: 1, D: 1},
		FELoad(), FEStoreIfClearSet(9),
	}
	for _, m := range mappings {
		wire := len(Encode(m)) * 8
		if m.EncodedBits() < wire-16 || m.EncodedBits() > wire+32 {
			t.Errorf("%v: EncodedBits=%d but wire=%d bits", m, m.EncodedBits(), wire)
		}
	}
}

// TestTractability verifies the paper's size condition |φ(f)| = O(w) for
// every family: arbitrary-length composition chains never grow the
// encoding beyond the family's fixed bound.
func TestTractability(t *testing.T) {
	rng := newTestRand(23)
	families := []struct {
		name  string
		bound int // bits
		draw  func() Mapping
	}{
		{"load-store-swap", 8 + 64, func() Mapping { return randMapping(rng, rng.IntN(3)) }},
		{"fetch-add", 8 + 64, func() Mapping { return FetchAdd(int64(rng.IntN(100))) }},
		{"bool", 8 + 128, func() Mapping { return Bool{A: rng.Uint64(), B: rng.Uint64()} }},
		{"affine", 8 + 128, func() Mapping { return Affine{A: int64(rng.IntN(5)), B: int64(rng.IntN(100))} }},
		{"full-empty", 16 + 2*(10+64), func() Mapping {
			ops := feOps(int64(rng.IntN(100)))
			return ops[rng.IntN(len(ops))]
		}},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			var acc Mapping = Load{}
			for i := 0; i < 64; i++ {
				next := fam.draw()
				var ok bool
				acc, ok = Compose(acc, next)
				if !ok {
					t.Fatalf("step %d: %v∘%v failed to combine", i, acc, next)
				}
				if acc.EncodedBits() > fam.bound {
					t.Fatalf("step %d: encoding grew to %d bits, bound %d",
						i, acc.EncodedBits(), fam.bound)
				}
			}
		})
	}
}
