package rmw

import (
	"fmt"

	"combining/internal/word"
)

// BoolUnary names the four Boolean functions on one variable (Section 5.3):
// the constant functions 0 and 1, the identity x, and complement x̄.  The
// associated RMW operations are test-and-clear, test-and-set, load, and
// test-and-complement.
type BoolUnary uint8

const (
	// BLoad is the identity x (a one-bit load).
	BLoad BoolUnary = iota + 1
	// BClear is the constant 0 (test-and-clear).
	BClear
	// BSet is the constant 1 (test-and-set).
	BSet
	// BComp is complement x̄ (test-and-complement).
	BComp
)

// String returns the operation name used in the paper's 4×4 table.
func (u BoolUnary) String() string {
	switch u {
	case BLoad:
		return "load"
	case BClear:
		return "clear"
	case BSet:
		return "set"
	case BComp:
		return "comp"
	default:
		return fmt.Sprintf("bool(%d)", uint8(u))
	}
}

// BoolUnaries lists the four operations in the paper's table order.
var BoolUnaries = []BoolUnary{BLoad, BClear, BSet, BComp}

// Bool is the bit-vector Boolean family of Section 5.3: per bit position it
// applies one of the four unary Boolean functions.  A mapping is encoded as
// two masks with
//
//	f(x) = (x AND a) XOR b
//
// so per bit: a=1,b=0 is load; a=0,b=0 is clear; a=0,b=1 is set; a=1,b=1 is
// complement.  "Mappings on bit vectors of length n are represented by 2n
// bits" — exactly the two masks.  The family is closed under composition:
//
//	f₂(f₁(x)) = (x AND a₁a₂) XOR ((b₁ AND a₂) XOR b₂)
//
// All 16 binary Boolean operations fetch-and-θ(X, a) reduce to members of
// this family once the operand a is fixed, which is the paper's argument
// that every Boolean operation is combinable.
type Bool struct {
	A uint64 // AND mask
	B uint64 // XOR mask
}

var _ Mapping = Bool{}

// BoolOf builds the bit-vector mapping that applies u to every bit.
func BoolOf(u BoolUnary) Bool {
	switch u {
	case BLoad:
		return Bool{A: ^uint64(0)}
	case BClear:
		return Bool{}
	case BSet:
		return Bool{B: ^uint64(0)}
	case BComp:
		return Bool{A: ^uint64(0), B: ^uint64(0)}
	default:
		panic("rmw: unknown Boolean unary " + u.String())
	}
}

// BoolSetBits returns the mapping that sets the bits of mask (multiple
// locking acquires several locks in one RMW; Section 5.3).
func BoolSetBits(mask uint64) Bool { return Bool{A: ^mask, B: mask} }

// BoolClearBits returns the mapping that clears the bits of mask.
func BoolClearBits(mask uint64) Bool { return Bool{A: ^mask} }

// BoolComplementBits returns the mapping that flips the bits of mask.
func BoolComplementBits(mask uint64) Bool { return Bool{A: ^uint64(0), B: mask} }

// PartialStore returns the mapping that stores v into the bit positions of
// mask and leaves the rest of the word untouched:
//
//	f(x) = (x AND NOT mask) OR (v AND mask)
//
// This is Section 5.1's observation that combining byte or half-word
// stores "will require introducing store operations that affect any
// subset of bytes in a word" — and the subset stores are exactly members
// of the Section 5.3 mask family, so they combine with each other, with
// full-word stores, and with loads for free.
func PartialStore(mask, v uint64) Bool {
	return Bool{A: ^mask, B: v & mask}
}

// StoreByte stores the low 8 bits of v into byte lane i (0 ≤ i < 8).
func StoreByte(i uint, v uint64) Bool {
	if i > 7 {
		panic("rmw: byte lane out of range")
	}
	return PartialStore(0xff<<(8*i), v<<(8*i))
}

// BitOf classifies the mapping's action on bit i as one of the four unary
// operations.
func (m Bool) BitOf(i uint) BoolUnary {
	a := m.A >> i & 1
	b := m.B >> i & 1
	switch {
	case a == 1 && b == 0:
		return BLoad
	case a == 0 && b == 0:
		return BClear
	case a == 0 && b == 1:
		return BSet
	default:
		return BComp
	}
}

// Apply computes (x AND a) XOR b, preserving the tag.
func (m Bool) Apply(w word.Word) word.Word {
	return word.Word{Val: int64(uint64(w.Val)&m.A ^ m.B), Tag: w.Tag}
}

// Kind reports KindBool.
func (m Bool) Kind() Kind { return KindBool }

// EncodedBits is an opcode byte plus the two masks (2w bits for w-bit
// words, matching the paper's bound).
func (m Bool) EncodedBits() int { return 8 + 128 }

// String renders the masks, or the unary name when the mapping is uniform
// across bits.
func (m Bool) String() string {
	u := m.BitOf(0)
	uniform := true
	for i := uint(1); i < 64 && uniform; i++ {
		uniform = m.BitOf(i) == u
	}
	if uniform {
		return u.String()
	}
	return fmt.Sprintf("bool(a=%#x,b=%#x)", m.A, m.B)
}

// compose implements the closed-form mask composition.
func (m Bool) compose(g Mapping) (Mapping, bool) {
	gb, ok := g.(Bool)
	if !ok {
		return nil, false
	}
	return Bool{
		A: m.A & gb.A,
		B: m.B&gb.A ^ gb.B,
	}, true
}

// ComposeBoolUnary returns the entry of the paper's 4×4 composition table:
// the operation equivalent to f followed by g.  It is derived from the mask
// algebra, not hand-coded; the test suite checks it against the table
// printed in Section 5.3.
func ComposeBoolUnary(f, g BoolUnary) BoolUnary {
	h, ok := Compose(BoolOf(f), BoolOf(g))
	if !ok {
		panic("rmw: Boolean unaries must compose")
	}
	return h.(Bool).BitOf(0)
}
