package rmw

import (
	"testing"
	"testing/quick"

	"combining/internal/word"
)

// Property-based tests (testing/quick) for the algebraic core: composition
// must be semantics-preserving and associative across every family, since
// the combining network composes in arbitrary tree shapes (Lemma 4.1).

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 2000}
}

func TestQuickFetchAddSemantics(t *testing.T) {
	prop := func(a, b, x int64) bool {
		h, ok := Compose(FetchAdd(a), FetchAdd(b))
		if !ok {
			return false
		}
		return h.Apply(word.W(x)) == FetchAdd(b).Apply(FetchAdd(a).Apply(word.W(x)))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickBoolSemantics(t *testing.T) {
	prop := func(a1, b1, a2, b2, x uint64) bool {
		f, g := Bool{A: a1, B: b1}, Bool{A: a2, B: b2}
		h, ok := Compose(f, g)
		if !ok {
			return false
		}
		w := word.W(int64(x))
		return h.Apply(w) == g.Apply(f.Apply(w))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickAffineSemantics(t *testing.T) {
	prop := func(a1, b1, a2, b2, x int64) bool {
		f, g := Affine{A: a1, B: b1}, Affine{A: a2, B: b2}
		h, ok := Compose(f, g)
		if !ok {
			return false
		}
		w := word.W(x)
		return h.Apply(w) == g.Apply(f.Apply(w))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxSemantics(t *testing.T) {
	prop := func(a, b, x int64) bool {
		for _, mk := range []func(int64) Assoc{FetchMin, FetchMax, FetchAnd, FetchOr, FetchXor} {
			f, g := mk(a), mk(b)
			h, ok := Compose(f, g)
			if !ok {
				return false
			}
			w := word.W(x)
			if h.Apply(w) != g.Apply(f.Apply(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickComposeAssociative: (f∘g)∘h = f∘(g∘h) as functions, across
// random mixed chains drawn from inter-combinable families.  Associativity
// is what lets the network combine in arbitrary tree orders.
func TestQuickComposeAssociative(t *testing.T) {
	rng := newTestRand(31)
	for trial := 0; trial < 3000; trial++ {
		// Families 0..2 (load/store/swap) inter-combine with any, so mix
		// them with one substantive family per trial.
		fam := 3 + rng.IntN(3)
		pick := func() Mapping {
			if rng.IntN(2) == 0 {
				return randMapping(rng, rng.IntN(3))
			}
			return randMapping(rng, fam)
		}
		f, g, h := pick(), pick(), pick()
		fg, ok1 := Compose(f, g)
		gh, ok2 := Compose(g, h)
		if !ok1 || !ok2 {
			// Same-family pairs always combine; a miss means the two
			// substantive picks came from one family, so this cannot
			// happen — treat it as a failure.
			t.Fatalf("trial %d: chain %v,%v,%v did not combine", trial, f, g, h)
		}
		left, ok3 := Compose(fg, h)
		right, ok4 := Compose(f, gh)
		if !ok3 || !ok4 {
			t.Fatalf("trial %d: outer composition failed", trial)
		}
		for i := 0; i < 8; i++ {
			x := randWord(rng)
			if left.Apply(x) != right.Apply(x) {
				t.Fatalf("trial %d: associativity broken at %v: (f∘g)∘h=%v f∘(g∘h)=%v",
					trial, x, left.Apply(x), right.Apply(x))
			}
		}
	}
}

// TestQuickChainEqualsSerial drives random-length chains through
// ComposeAll and compares against serial application — the exact statement
// of Lemma 4.1(3) at the mapping level.
func TestQuickChainEqualsSerial(t *testing.T) {
	rng := newTestRand(37)
	for trial := 0; trial < 2000; trial++ {
		fam := 3 + rng.IntN(3)
		n := 1 + rng.IntN(10)
		chain := make([]Mapping, n)
		for i := range chain {
			if rng.IntN(3) == 0 {
				chain[i] = randMapping(rng, rng.IntN(3))
			} else {
				chain[i] = randMapping(rng, fam)
			}
		}
		h, ok := ComposeAll(chain...)
		if !ok {
			t.Fatalf("trial %d: chain failed to combine", trial)
		}
		x := randWord(rng)
		want := x
		for _, m := range chain {
			want = m.Apply(want)
		}
		if got := h.Apply(x); got != want {
			t.Fatalf("trial %d: combined=%v serial=%v", trial, got, want)
		}
	}
}

// TestQuickEncodingRoundTrip fuzzes the wire encoding.
func TestQuickEncodingRoundTrip(t *testing.T) {
	rng := newTestRand(41)
	for trial := 0; trial < 3000; trial++ {
		m := randMapping(rng, rng.IntN(7))
		enc := Encode(m)
		got, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("trial %d: decode %v: err=%v n=%d len=%d", trial, m, err, n, len(enc))
		}
		// Compare semantically: apply both to random words.
		for i := 0; i < 4; i++ {
			x := randWord(rng)
			if got.Apply(x) != m.Apply(x) {
				t.Fatalf("trial %d: %v round-tripped to %v", trial, m, got)
			}
		}
	}
}
