package rmw

import (
	"math/big"
	"strings"
	"testing"

	"combining/internal/word"
)

// Edge-case and rendering coverage for the formalism.

func TestKindStringAll(t *testing.T) {
	kinds := map[Kind]string{
		KindLoad: "load", KindConst: "const", KindAssoc: "assoc",
		KindBool: "bool", KindAffine: "affine", KindMoebius: "moebius",
		KindTable: "table", Kind(99): "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Errorf("bad op renders %q", got)
	}
	if got := BoolUnary(99).String(); got != "bool(99)" {
		t.Errorf("bad unary renders %q", got)
	}
}

func TestTableString(t *testing.T) {
	anon := Table{T: []Transition{
		{Next: 1, Act: Store, V: 7},
		{Fail: true},
		{Next: 0, Act: Keep},
	}}
	s := anon.String()
	for _, want := range []string{"0:(7,1)", "1:fail", "2:(keep,0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("table renders %q, missing %q", s, want)
		}
	}
	named := FELoad()
	if named.String() != "fe-load" {
		t.Errorf("named table renders %q", named.String())
	}
}

func TestTableOutOfRangeTag(t *testing.T) {
	// A tag outside the automaton's state set must be treated as a
	// failing state (memory untouched), not a panic.
	op := FELoadClear()
	w := word.WT(9, word.Tag(7))
	if got := op.Apply(w); got != w {
		t.Fatalf("out-of-range tag mutated the cell: %v", got)
	}
	if !op.Failed(word.Tag(7)) {
		t.Fatal("out-of-range tag must read as failure")
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty table accepted")
		}
	}()
	NewTable("bad", nil)
}

func TestMoebiusRatPole(t *testing.T) {
	m := NewMoebiusRat(0, 1, 1, 0) // 1/x
	if _, ok := m.Eval(big.NewRat(0, 1)); ok {
		t.Fatal("pole at 0 not reported")
	}
	v, ok := m.Eval(big.NewRat(2, 1))
	if !ok || v.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("1/2 expected, got %v ok=%v", v, ok)
	}
}

func TestEncodedBitsTableGrowth(t *testing.T) {
	// Tables charge one word per distinct store value.
	one := FEStoreSet(5)
	two, _ := Compose(FEStoreIfClear(1), FEStoreIfSet(2))
	if !(two.EncodedBits() > one.EncodedBits()) {
		t.Fatalf("two-value table (%d bits) must cost more than one-value (%d)",
			two.EncodedBits(), one.EncodedBits())
	}
}

func TestBoolStringForms(t *testing.T) {
	if got := BoolOf(BSet).String(); got != "set" {
		t.Errorf("uniform mapping renders %q", got)
	}
	mixed := Bool{A: 1, B: 2}
	if !strings.HasPrefix(mixed.String(), "bool(") {
		t.Errorf("mixed mapping renders %q", mixed.String())
	}
}

func TestStoreBytePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("byte lane 8 accepted")
		}
	}()
	StoreByte(8, 1)
}

func TestLeftSpineAndBalancedShapes(t *testing.T) {
	if LeftSpine(0) != nil || Balanced(0, 0) != nil {
		t.Fatal("empty shapes must be nil")
	}
	count := func(tr *TreeShape) int {
		if tr == nil {
			return 0
		}
		if tr.Left == nil {
			return 1
		}
		var walk func(*TreeShape) int
		walk = func(n *TreeShape) int {
			if n.Left == nil {
				return 1
			}
			return walk(n.Left) + walk(n.Right)
		}
		return walk(tr)
	}
	for _, n := range []int{1, 2, 5, 9} {
		if got := count(LeftSpine(n)); got != n {
			t.Errorf("LeftSpine(%d) has %d leaves", n, got)
		}
		if got := count(Balanced(0, n)); got != n {
			t.Errorf("Balanced(%d) has %d leaves", n, got)
		}
	}
}
