package rmw

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"combining/internal/word"
)

// Wire encoding of mappings.
//
// The paper's tractability conditions (Section 5) require that a mapping be
// representable in O(w) bits and that composition and application be cheap.
// This file realizes condition (1) concretely: every mapping family has a
// compact binary encoding, so a request message ⟨id, addr, f⟩ can actually
// be shipped through a packet-switched network.  The cycle simulator and
// the asynchronous network exchange decoded Mapping values for speed, but
// the encoding round-trip is property-tested and its size is what the
// traffic accounting charges.

// Encoding errors.
var (
	ErrShortEncoding   = errors.New("rmw: truncated mapping encoding")
	ErrUnknownEncoding = errors.New("rmw: unknown mapping opcode")
)

const (
	wireLoad    = 0x01
	wireStore   = 0x02
	wireSwap    = 0x03
	wireAssoc   = 0x10 // + Op in low nibble
	wireBool    = 0x20
	wireAffine  = 0x30
	wireMoebius = 0x31
	wireTable   = 0x40

	wireTrFail  = 0x1
	wireTrStore = 0x2
)

// AppendEncode appends the wire form of m to buf and returns the extended
// slice.
func AppendEncode(buf []byte, m Mapping) []byte {
	le := binary.LittleEndian
	switch v := m.(type) {
	case Load:
		return append(buf, wireLoad)
	case Const:
		op := byte(wireStore)
		if v.NeedOld {
			op = wireSwap
		}
		buf = append(buf, op)
		return le.AppendUint64(buf, uint64(v.V))
	case Assoc:
		buf = append(buf, wireAssoc|byte(v.Op))
		return le.AppendUint64(buf, uint64(v.A))
	case Bool:
		buf = append(buf, wireBool)
		buf = le.AppendUint64(buf, v.A)
		return le.AppendUint64(buf, v.B)
	case Affine:
		buf = append(buf, wireAffine)
		buf = le.AppendUint64(buf, uint64(v.A))
		return le.AppendUint64(buf, uint64(v.B))
	case Moebius:
		buf = append(buf, wireMoebius)
		for _, c := range [4]float64{v.A, v.B, v.C, v.D} {
			buf = le.AppendUint64(buf, math.Float64bits(c))
		}
		return buf
	case Table:
		buf = append(buf, wireTable, byte(v.States()-1))
		for _, tr := range v.T {
			flags := byte(0)
			if tr.Fail {
				flags |= wireTrFail
			} else if tr.Act == Store {
				flags |= wireTrStore
			}
			buf = append(buf, byte(tr.Next), flags)
			if flags&wireTrStore != 0 {
				buf = le.AppendUint64(buf, uint64(tr.V))
			}
		}
		return buf
	default:
		panic(fmt.Sprintf("rmw: cannot encode mapping of kind %v", m.Kind()))
	}
}

// Encode returns the wire form of m.
func Encode(m Mapping) []byte { return AppendEncode(nil, m) }

// Decode parses one mapping from the front of buf, returning it and the
// number of bytes consumed.
func Decode(buf []byte) (Mapping, int, error) {
	if len(buf) == 0 {
		return nil, 0, ErrShortEncoding
	}
	le := binary.LittleEndian
	op := buf[0]
	word64 := func(off int) (int64, bool) {
		if len(buf) < off+8 {
			return 0, false
		}
		return int64(le.Uint64(buf[off:])), true
	}
	switch {
	case op == wireLoad:
		return Load{}, 1, nil
	case op == wireStore || op == wireSwap:
		v, ok := word64(1)
		if !ok {
			return nil, 0, ErrShortEncoding
		}
		return Const{V: v, NeedOld: op == wireSwap}, 9, nil
	case op&0xf0 == wireAssoc:
		o := Op(op & 0x0f)
		if o < OpAdd || o > OpMax {
			return nil, 0, ErrUnknownEncoding
		}
		a, ok := word64(1)
		if !ok {
			return nil, 0, ErrShortEncoding
		}
		return Assoc{Op: o, A: a}, 9, nil
	case op == wireBool:
		a, ok1 := word64(1)
		b, ok2 := word64(9)
		if !ok1 || !ok2 {
			return nil, 0, ErrShortEncoding
		}
		return Bool{A: uint64(a), B: uint64(b)}, 17, nil
	case op == wireAffine:
		a, ok1 := word64(1)
		b, ok2 := word64(9)
		if !ok1 || !ok2 {
			return nil, 0, ErrShortEncoding
		}
		return Affine{A: a, B: b}, 17, nil
	case op == wireMoebius:
		var c [4]float64
		for i := range c {
			v, ok := word64(1 + 8*i)
			if !ok {
				return nil, 0, ErrShortEncoding
			}
			c[i] = math.Float64frombits(uint64(v))
		}
		return Moebius{A: c[0], B: c[1], C: c[2], D: c[3]}, 33, nil
	case op == wireTable:
		if len(buf) < 2 {
			return nil, 0, ErrShortEncoding
		}
		n := int(buf[1]) + 1
		trans := make([]Transition, n)
		off := 2
		for s := range trans {
			if len(buf) < off+2 {
				return nil, 0, ErrShortEncoding
			}
			tr := Transition{Next: word.Tag(buf[off])}
			flags := buf[off+1]
			off += 2
			switch {
			case flags&wireTrFail != 0:
				tr = Transition{Fail: true}
			case flags&wireTrStore != 0:
				v, ok := word64(off)
				if !ok {
					return nil, 0, ErrShortEncoding
				}
				tr.Act, tr.V = Store, v
				off += 8
			default:
				tr.Act = Keep
			}
			trans[s] = tr
		}
		return Table{T: trans}, off, nil
	default:
		return nil, 0, ErrUnknownEncoding
	}
}
