package rmw

import (
	"testing"

	"combining/internal/word"
)

// The RME operations are plain full/empty tables; these tests pin their
// shapes, the acquire/NAK decoding, and the combining behavior colliding
// acquires rely on (the second of two combined acquires must see the
// first's Full and decode as a NAK naming the first owner).

func TestRMEShapes(t *testing.T) {
	for _, c := range []struct {
		op   Table
		want string
	}{
		{RMEAcquire(3), "fe-store-if-clear-and-set"},
		{RMERelease(), "fe-store-and-clear"},
		{RMEInspect(), "fe-load"},
	} {
		got, ok := FEKind(c.op)
		if !ok || got != c.want {
			t.Errorf("FEKind(%v) = (%q, %v), want %q", c.op, got, ok, c.want)
		}
	}
}

func TestRMEAcquireReleaseSemantics(t *testing.T) {
	free := word.Word{}
	// Acquire on a free lock: succeeds, word becomes (owner, Full).
	after := RMEAcquire(7).Apply(free)
	if !RMEAcquired(free) {
		t.Error("old Empty word did not decode as acquired")
	}
	if owner, held := RMEHolder(after); !held || owner != 7 {
		t.Errorf("after acquire: holder = (%d, %v), want (7, true)", owner, held)
	}
	// Second acquire: word unchanged, old value decodes as a NAK naming
	// the holder.
	after2 := RMEAcquire(9).Apply(after)
	if after2 != after {
		t.Errorf("NAKed acquire changed the word: %v -> %v", after, after2)
	}
	if RMEAcquired(after) {
		t.Error("old Full word decoded as acquired")
	}
	if owner, held := RMEHolder(after); !held || owner != 7 {
		t.Errorf("NAK names holder (%d, %v), want (7, true)", owner, held)
	}
	// Release frees the lock for the next acquire.
	freed := RMERelease().Apply(after)
	if _, held := RMEHolder(freed); held {
		t.Errorf("released word still held: %v", freed)
	}
	if !RMEAcquired(freed) {
		t.Error("released word refuses a fresh acquire")
	}
}

func TestRMECombinedAcquires(t *testing.T) {
	// Two acquires colliding in a switch combine into one table; the
	// serialization executes owner 1 first, then owner 2.  Decombining
	// hands each constituent its own old value: owner 1 sees Empty (won),
	// owner 2 sees (1, Full) — a NAK naming the winner.
	a1, a2 := RMEAcquire(1), RMEAcquire(2)
	comb, ok := Compose(a1, a2)
	if !ok {
		t.Fatal("colliding acquires did not combine")
	}
	free := word.Word{}
	after := comb.Apply(free)
	if owner, held := RMEHolder(after); !held || owner != 1 {
		t.Fatalf("combined acquire left %v, want (1, Full)", after)
	}
	if !RMEAcquired(free) {
		t.Error("first constituent's old value is not a win")
	}
	mid := a1.Apply(free) // the second constituent's old value, f(old)
	if RMEAcquired(mid) {
		t.Error("second constituent's old value is not a NAK")
	}
	if owner, _ := RMEHolder(mid); owner != 1 {
		t.Errorf("second constituent's NAK names %d, want 1", owner)
	}
}

func TestRMEInspectRecoversOutcome(t *testing.T) {
	// The recovery probe: after a lost acquire reply, the owner reads the
	// lock word.  Inspect must not disturb it.
	held := RMEAcquire(5).Apply(word.Word{})
	probe := RMEInspect().Apply(held)
	if probe != held {
		t.Errorf("inspect disturbed the lock word: %v -> %v", held, probe)
	}
	if owner, h := RMEHolder(held); !h || owner != 5 {
		t.Errorf("recovery probe decodes (%d, %v), want (5, true)", owner, h)
	}
}
