package rmw

import (
	"fmt"
	"testing"

	"combining/internal/word"
)

// Exhaustive semigroup-closure checks on small domains: the paper's
// tractability argument rests on each family being closed under
// composition with a bounded representation; these tests enumerate the
// actual semigroups.

// TestBoolSemigroupExhaustive: on a 2-bit word, the mask family has
// exactly 16 elements (4 unary choices per bit) and is closed: composing
// any two members yields a member, and every member is reachable from the
// uniform generators.
func TestBoolSemigroupExhaustive(t *testing.T) {
	const bits = 2
	mask := uint64(1<<bits - 1)
	// All 16 mappings on 2 bits.
	var all []Bool
	for a := uint64(0); a <= mask; a++ {
		for b := uint64(0); b <= mask; b++ {
			all = append(all, Bool{A: a, B: b})
		}
	}
	key := func(m Bool) string {
		return fmt.Sprintf("%d-%d", m.A&mask, m.B&mask)
	}
	members := map[string]bool{}
	for _, m := range all {
		members[key(m)] = true
	}
	if len(members) != 16 {
		t.Fatalf("%d distinct 2-bit mask mappings, want 16", len(members))
	}
	for _, f := range all {
		for _, g := range all {
			h, ok := Compose(f, g)
			if !ok {
				t.Fatal("mask mappings must compose")
			}
			hb := h.(Bool)
			if !members[key(Bool{A: hb.A & mask, B: hb.B & mask})] {
				t.Fatalf("composition %v∘%v escaped the semigroup", f, g)
			}
		}
	}
	// The uniform unary operations alone cannot mix behaviours across
	// bit positions (a uniform complement flips both bits); adding the
	// single-bit stores and single-bit complements — all members of the
	// Section 5.3 family — spans the full 16-element semigroup.
	gen := []Bool{BoolOf(BLoad), BoolOf(BClear), BoolOf(BSet), BoolOf(BComp),
		PartialStore(1, 0), PartialStore(1, 1), PartialStore(2, 0), PartialStore(2, 2),
		BoolComplementBits(1), BoolComplementBits(2)}
	span := map[string]bool{}
	for _, g := range gen {
		span[key(Bool{A: g.A & mask, B: g.B & mask})] = true
	}
	for changed := true; changed; {
		changed = false
		var cur []Bool
		for k := range span {
			var a, b uint64
			fmt.Sscanf(k, "%d-%d", &a, &b)
			cur = append(cur, Bool{A: a, B: b})
		}
		for _, f := range cur {
			for _, g := range cur {
				h, _ := Compose(f, g)
				hb := h.(Bool)
				kk := key(Bool{A: hb.A & mask, B: hb.B & mask})
				if !span[kk] {
					span[kk] = true
					changed = true
				}
			}
		}
	}
	if len(span) != 16 {
		t.Errorf("generators span %d of 16 two-bit mappings", len(span))
	}
}

// TestFESemigroupSize enumerates the full/empty semigroup on an abstract
// payload: modulo store values, the closure of the six named operations
// contains exactly the six shapes the paper lists.
func TestFESemigroupSize(t *testing.T) {
	shapeOf := func(m Table) string {
		name, ok := FEKind(m)
		if !ok {
			return m.String()
		}
		return name
	}
	seen := map[string]bool{}
	var frontier []Table
	for _, op := range feOps(1) {
		frontier = append(frontier, op)
		seen[shapeOf(op)] = true
	}
	for len(frontier) > 0 {
		var next []Table
		for _, f := range frontier {
			for _, g := range feOps(2) {
				h, ok := Compose(f, g)
				if !ok {
					t.Fatalf("%v∘%v must compose", f, g)
				}
				ht := h.(Table)
				s := shapeOf(ht)
				if !seen[s] {
					seen[s] = true
					next = append(next, ht)
				}
			}
		}
		frontier = next
	}
	if len(seen) != 6 {
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		t.Fatalf("full/empty closure has %d shapes, want 6: %v", len(seen), keys)
	}
}

// TestTableSemigroupClosure: arbitrary 3-state tables form a closed
// semigroup; exhaustively verify associativity on a sampled subset (full
// enumeration is huge) and closure on the sample's products.
func TestTableSemigroupClosure(t *testing.T) {
	// A structured sample: all tables whose transitions are drawn from
	// {keep+stay, keep+next, store(1)+stay, fail}.
	opts := []Transition{
		{Next: 0, Act: Keep},
		{Next: 1, Act: Keep},
		{Next: 0, Act: Store, V: 1},
		{Fail: true},
	}
	var sample []Table
	for a := range opts {
		for b := range opts {
			for c := range opts {
				tr := []Transition{opts[a], opts[b], opts[c]}
				// Fix Next fields to be in range for 3 states.
				for i := range tr {
					if tr[i].Next == 1 {
						tr[i].Next = word.Tag((i + 1) % 3)
					}
				}
				sample = append(sample, NewTable("", tr))
			}
		}
	}
	states := []word.Word{word.WT(9, 0), word.WT(9, 1), word.WT(9, 2)}
	for i, f := range sample {
		for j, g := range sample {
			fg, ok := Compose(f, g)
			if !ok {
				t.Fatalf("tables %d,%d must compose", i, j)
			}
			for _, h := range []Table{sample[(i+j)%len(sample)]} {
				left, ok1 := Compose(fg, h)
				gh, ok2 := Compose(g, h)
				if !ok1 || !ok2 {
					t.Fatal("closure broken")
				}
				right, ok3 := Compose(f, gh)
				if !ok3 {
					t.Fatal("closure broken")
				}
				for _, w := range states {
					if left.Apply(w) != right.Apply(w) {
						t.Fatalf("associativity broken at tables %d,%d", i, j)
					}
				}
			}
		}
	}
}
