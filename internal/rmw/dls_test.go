package rmw

import (
	"fmt"
	"testing"

	"combining/internal/word"
)

// feOps returns the six closed full/empty operations with a distinguishing
// store payload.
func feOps(v int64) []Table {
	return []Table{
		FELoad(),
		FELoadClear(),
		FEStoreSet(v),
		FEStoreIfClearSet(v),
		FEStoreClear(v),
		FEStoreIfClearClear(v),
	}
}

func feStatesAll() []word.Word {
	return []word.Word{
		word.WT(7, word.Empty),
		word.WT(7, word.Full),
		word.WT(-2, word.Empty),
		word.WT(-2, word.Full),
	}
}

func TestFullEmptySemantics(t *testing.T) {
	cases := []struct {
		op      Table
		in      word.Word
		want    word.Word
		wantNAK bool
	}{
		{FELoad(), word.WT(5, word.Full), word.WT(5, word.Full), false},
		{FELoad(), word.WT(5, word.Empty), word.WT(5, word.Empty), false},
		{FELoadClear(), word.WT(5, word.Full), word.WT(5, word.Empty), false},
		{FEStoreSet(9), word.WT(5, word.Empty), word.WT(9, word.Full), false},
		{FEStoreSet(9), word.WT(5, word.Full), word.WT(9, word.Full), false},
		{FEStoreIfClearSet(9), word.WT(5, word.Empty), word.WT(9, word.Full), false},
		{FEStoreIfClearSet(9), word.WT(5, word.Full), word.WT(5, word.Full), true},
		{FEStoreClear(9), word.WT(5, word.Full), word.WT(9, word.Empty), false},
		{FEStoreIfClearClear(9), word.WT(5, word.Empty), word.WT(9, word.Empty), false},
		// Mapping (6) of Section 5.5: on a full cell it stores nothing
		// but still clears the flag (it is the composition
		// store-if-clear-and-set ∘ load-and-clear, and the trailing
		// load-and-clear always clears).
		{FEStoreIfClearClear(9), word.WT(5, word.Full), word.WT(5, word.Empty), false},
		{FEStoreIfClear(9), word.WT(5, word.Empty), word.WT(9, word.Empty), false},
		{FEStoreIfClear(9), word.WT(5, word.Full), word.WT(5, word.Full), true},
		{FEStoreIfSet(9), word.WT(5, word.Full), word.WT(9, word.Full), false},
		{FEStoreIfSet(9), word.WT(5, word.Empty), word.WT(5, word.Empty), true},
		{FELoadIfSetClear(), word.WT(5, word.Full), word.WT(5, word.Empty), false},
		{FELoadIfSetClear(), word.WT(5, word.Empty), word.WT(5, word.Empty), true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v/%v", tc.op, tc.in), func(t *testing.T) {
			if got := tc.op.Apply(tc.in); got != tc.want {
				t.Errorf("Apply(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if got := tc.op.Failed(tc.in.Tag); got != tc.wantNAK {
				t.Errorf("Failed(%v) = %v, want %v", tc.in.Tag, got, tc.wantNAK)
			}
		})
	}
}

// TestFullEmptyClosure verifies Section 5.5's claim that the six operations
// form a semigroup: every pairwise composition of the six (with distinct
// store payloads) is again one of the six shapes, and the two derived
// operations arise exactly as the paper derives them.
func TestFullEmptyClosure(t *testing.T) {
	for _, f := range feOps(1) {
		for _, g := range feOps(2) {
			h, ok := Compose(f, g)
			if !ok {
				t.Fatalf("%v∘%v must combine", f, g)
			}
			ht, isTable := h.(Table)
			if !isTable {
				t.Fatalf("%v∘%v = %v, not a table", f, g, h)
			}
			name, classified := FEKind(ht)
			if !classified {
				t.Errorf("%v∘%v escapes the six-operation semigroup: %v", f, g, ht)
				continue
			}
			// Semantics must match serial execution everywhere.
			for _, w := range feStatesAll() {
				if got, want := h.Apply(w), g.Apply(f.Apply(w)); got != want {
					t.Errorf("%v∘%v (classified %s) on %v: got %v want %v",
						f, g, name, w, got, want)
				}
			}
		}
	}
}

// TestFullEmptyDerivations pins the two specific derivations in the text:
// store-and-clear = store-and-set ∘ load-and-clear, and
// store-if-clear-and-clear = store-if-clear-and-set ∘ load-and-clear.
func TestFullEmptyDerivations(t *testing.T) {
	h1, ok := Compose(FEStoreSet(9), FELoadClear())
	if !ok {
		t.Fatal("store-and-set ∘ load-and-clear must combine")
	}
	if !TableEqual(stripFail(h1.(Table)), stripFail(FEStoreClear(9))) {
		t.Errorf("store-and-set∘load-and-clear = %v, want store-and-clear", h1)
	}
	h2, ok := Compose(FEStoreIfClearSet(9), FELoadClear())
	if !ok {
		t.Fatal("store-if-clear-and-set ∘ load-and-clear must combine")
	}
	if !TableEqual(stripFail(h2.(Table)), stripFail(FEStoreIfClearClear(9))) {
		t.Errorf("store-if-clear-and-set∘load-and-clear = %v, want store-if-clear-and-clear", h2)
	}
}

// stripFail normalizes failure markings to their memory effect, for
// comparing composed tables (which no longer fail as a whole) against named
// constructors.
func stripFail(t Table) Table {
	out := make([]Transition, t.States())
	for s := range out {
		tr := t.At(word.Tag(s))
		if tr.Fail {
			tr = Transition{Next: word.Tag(s), Act: Keep}
		}
		out[s] = tr
	}
	return Table{T: out}
}

// TestFullEmptyStoreValueBound checks experiment E5: a combined full/empty
// request never carries more than two store values (|S| = 2), even across
// long mixed chains that include plain stores.
func TestFullEmptyStoreValueBound(t *testing.T) {
	chains := [][]Mapping{
		{FEStoreIfClearSet(1), StoreOf(2)},
		{StoreOf(1), FEStoreIfClearSet(2)},
		{FEStoreIfClearSet(1), FEStoreIfSet(2), FEStoreIfClearSet(3), FEStoreIfSet(4)},
		{FEStoreSet(1), FEStoreIfClearSet(2), FELoadClear(), FEStoreIfClearClear(3), StoreOf(4)},
		{FELoad(), FEStoreIfSet(10), FELoadIfSetClear(), FEStoreIfClearSet(11), FELoad()},
	}
	for i, chain := range chains {
		h, ok := ComposeAll(chain...)
		if !ok {
			t.Fatalf("chain %d must combine", i)
		}
		ht, isTable := h.(Table)
		if !isTable {
			// A chain may collapse to a constant; that carries one
			// value and satisfies the bound trivially.
			continue
		}
		if n := len(ht.StoreValues()); n > 2 {
			t.Errorf("chain %d: combined request carries %d store values (%v), bound is 2",
				i, n, ht.StoreValues())
		}
		// And semantics must still match serial execution.
		for _, w := range feStatesAll() {
			want := w
			for _, m := range chain {
				want = m.Apply(want)
			}
			if got := h.Apply(w); got != want {
				t.Errorf("chain %d on %v: got %v, want %v", i, w, got, want)
			}
		}
	}
}

// TestStoreIfClearMeetsStoreIfSet reproduces the paper's observation that
// combining store-if-clear with store-if-set genuinely requires forwarding
// both store values — reversal cannot help.
func TestStoreIfClearMeetsStoreIfSet(t *testing.T) {
	f := FEStoreIfClear(1)
	g := FEStoreIfSet(2)
	for _, order := range []struct {
		name string
		a, b Mapping
	}{
		{"forward", f, g},
		{"reversed", g, f},
	} {
		h, ok := Compose(order.a, order.b)
		if !ok {
			t.Fatalf("%s: must combine", order.name)
		}
		if n := len(h.(Table).StoreValues()); n != 2 {
			t.Errorf("%s: carries %d store values, want 2 in either order", order.name, n)
		}
	}
}

// TestDLSStoreValueBound checks experiment E6 on a larger automaton: the
// number of store values in any combined request is at most |S|, and the
// bound is tight for the store-if-state=s family the paper names.
func TestDLSStoreValueBound(t *testing.T) {
	const nStates = 5
	// store-if-state=s: store v and stay in s, defined only in state s.
	storeIfState := func(s word.Tag, v int64) Table {
		trans := make([]Transition, nStates)
		for i := range trans {
			if word.Tag(i) == s {
				trans[i] = Transition{Next: s, Act: Store, V: v}
			} else {
				trans[i] = Transition{Fail: true}
			}
		}
		return NewTable(fmt.Sprintf("store-if-state=%d", s), trans)
	}
	var chain []Mapping
	for s := 0; s < nStates; s++ {
		chain = append(chain, storeIfState(word.Tag(s), int64(100+s)))
	}
	h, ok := ComposeAll(chain...)
	if !ok {
		t.Fatal("store-if-state chain must combine")
	}
	vals := h.(Table).StoreValues()
	if len(vals) != nStates {
		t.Fatalf("combined store-if-state family carries %d values, want |S| = %d (tight bound)",
			len(vals), nStates)
	}
	// A longer chain reusing the same states must not exceed |S|.
	long := append(append([]Mapping{}, chain...), chain...)
	for s := 0; s < nStates; s++ {
		long = append(long, storeIfState(word.Tag(s), int64(200+s)))
	}
	h2, ok := ComposeAll(long...)
	if !ok {
		t.Fatal("long chain must combine")
	}
	if n := len(h2.(Table).StoreValues()); n > nStates {
		t.Errorf("combined request carries %d store values, bound is |S| = %d", n, nStates)
	}
}

// TestTableComposeSemantics drives random tables through composition and
// compares with serial application on every state.
func TestTableComposeSemantics(t *testing.T) {
	const nStates = 4
	rng := newTestRand(1)
	randTable := func() Table {
		trans := make([]Transition, nStates)
		for i := range trans {
			switch rng.IntN(3) {
			case 0:
				trans[i] = Transition{Fail: true}
			case 1:
				trans[i] = Transition{Next: word.Tag(rng.IntN(nStates)), Act: Keep}
			default:
				trans[i] = Transition{Next: word.Tag(rng.IntN(nStates)), Act: Store, V: int64(rng.IntN(1000))}
			}
		}
		return Table{T: trans}
	}
	for trial := 0; trial < 200; trial++ {
		f, g := randTable(), randTable()
		h, ok := Compose(f, g)
		if !ok {
			t.Fatal("tables over equal state sets must combine")
		}
		for s := 0; s < nStates; s++ {
			for _, v := range []int64{0, 13} {
				w := word.WT(v, word.Tag(s))
				if got, want := h.Apply(w), g.Apply(f.Apply(w)); got != want {
					t.Fatalf("trial %d state %d: got %v, want %v (f=%v g=%v)",
						trial, s, got, want, f, g)
				}
			}
		}
	}
}

func TestTableStateMismatch(t *testing.T) {
	small := FELoad()
	big := NewTable("big", make([]Transition, 4))
	if _, ok := Compose(small, big); ok {
		t.Error("tables over different state sets must not combine")
	}
}
