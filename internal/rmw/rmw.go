// Package rmw implements the read-modify-write formalism of Kruskal,
// Rudolph and Snir (TOPLAS 1988, Section 2) and the catalogue of tractable
// mapping families from Section 5.
//
// An RMW operation RMW(X, f) atomically returns the old value of the shared
// variable X and replaces it with f(X).  A Mapping is the f: a transformation
// on memory words that can be applied at the memory module, composed inside
// the network when two requests to the same cell are combined, and encoded
// in a bounded number of bits (the paper's tractability conditions).
//
// Composition follows the paper's convention (Section 4.2, footnote 3):
//
//	f∘g(x) = g(f(x))
//
// i.e. Compose(f, g) is "f happens first, then g", matching the order in
// which the two combined requests are serialized.
package rmw

import (
	"fmt"

	"combining/internal/word"
)

// Kind identifies a mapping family.  Two mappings combine only if the
// package knows a closed, tractable composition for their pair of kinds;
// mappings of unrelated kinds are simply not combined (the paper notes that
// partial combining is always correct).
type Kind uint8

const (
	// KindLoad is the identity mapping id (a load).
	KindLoad Kind = iota + 1
	// KindConst is the constant mapping I_v (a store or swap).
	KindConst
	// KindAssoc is fetch-and-θ for an associative θ (Section 5.2).
	KindAssoc
	// KindBool is the Boolean bit-vector family (x AND a) XOR b
	// (Section 5.3).
	KindBool
	// KindAffine is x → ax+b with checked integer arithmetic
	// (Section 5.4, additions and multiplications only).
	KindAffine
	// KindMoebius is x → (ax+b)/(cx+d) over float64 (Section 5.4, the
	// full arithmetic family).
	KindMoebius
	// KindTable is a data-level synchronization state table
	// (Sections 5.5 and 5.6); full/empty-bit operations are tables on
	// two states.
	KindTable
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindConst:
		return "const"
	case KindAssoc:
		return "assoc"
	case KindBool:
		return "bool"
	case KindAffine:
		return "affine"
	case KindMoebius:
		return "moebius"
	case KindTable:
		return "table"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Mapping is an updating transformation f in RMW(X, f).
//
// Implementations must be immutable values: Apply and composition never
// mutate the receiver, so mappings can be shared freely between goroutines
// and retained in switch wait buffers.
type Mapping interface {
	// Apply returns f(w).
	Apply(w word.Word) word.Word

	// Kind reports the mapping's family.
	Kind() Kind

	// EncodedBits is the size of the mapping's wire encoding in bits,
	// used by the tractability accounting (the paper requires
	// |φ(f)| = O(w) for w-bit words).
	EncodedBits() int

	// String renders the mapping in the paper's notation.
	String() string

	// compose returns h = f∘g (f first, then g) for a g of a kind this
	// family knows how to absorb, or ok=false when the pair is not
	// combinable.  Callers use the package-level Compose, which also
	// handles the universal identity/constant rules.
	compose(g Mapping) (Mapping, bool)
}

// TagSensitive reports whether a mapping reads or writes the word's state
// tag.  Plain families (load, const, assoc, bool, affine, moebius) are tag
// oblivious; state tables are tag sensitive.  The universal I_v rules only
// hold for tag-oblivious mappings.
func TagSensitive(m Mapping) bool { return m.Kind() == KindTable }

// Compose returns the combined mapping f∘g — the single transformation
// equivalent to executing f and then g — and whether the pair is
// combinable.  It implements the universal rules of Section 5.1:
//
//	f ∘ id  = f
//	id ∘ g  = g
//	f ∘ I_v = I_v          (a later store wins)
//	I_v ∘ g = I_{g(v)}     (the store value is transformed locally)
//
// and otherwise delegates to the family-specific composition.
func Compose(f, g Mapping) (Mapping, bool) {
	if f == nil || g == nil {
		return nil, false
	}
	// The constant rules must run before the identity short-circuits:
	// id∘I_v is a store whose combined message still has to fetch the
	// old value for the load's reply — i.e. a swap, exactly the
	// "load followed by store" entry of the Section 5.1 table.
	if cg, ok := g.(Const); ok && !TagSensitive(f) {
		// f ∘ I_v = I_v: whatever f does, the store overwrites it.
		// (Tag-sensitive f may still change the tag, so the rule only
		// applies to tag-oblivious f; tables absorb constants in
		// their own compose.)
		//
		// The combined message must fetch the old value exactly when
		// the decombining switch needs it to answer the represented
		// requests: the first request's reply is val itself, and the
		// second's is f(val), which is val independent only when f is
		// a constant.  This rule is what turns "load followed by
		// store" into a swap in the Section 5.1 table.
		// Combined reply slots: f's reply is val, g's reply is f(val).
		// When f is itself a plain store, f(val) is a known constant
		// and no value need return; otherwise val must come back.
		return Const{V: cg.V, NeedOld: NeedsValue(f)}, true
	}
	if cf, ok := f.(Const); ok && !TagSensitive(g) {
		// I_v ∘ g = I_{g(v)}: apply g to the stored constant now.
		// g is tag oblivious, so g(v)'s value is well defined without
		// knowing the tag.  The second request's reply f(val) is the
		// constant v, so only the first request can need the fetched
		// value.
		gv := g.Apply(word.W(cf.V))
		return Const{V: gv.Val, NeedOld: cf.NeedOld}, true
	}
	// id ∘ g = g and f ∘ id = f hold for every family, tagged or not,
	// because Load is a true identity on the full (value, tag) pair, and
	// a load's reply is the fetched value itself.
	if _, ok := f.(Load); ok {
		return g, true
	}
	if _, ok := g.(Load); ok {
		return f, true
	}
	return f.compose(g)
}

// NeedsValue reports whether the reply to a request carrying m must contain
// the value fetched from memory.  Only a plain store (a Const whose old
// value is ignored) can accept a bare acknowledgment; every other mapping's
// reply is meaningful.  Section 5.1's traffic argument — combining never
// transmits more value slots than the uncombined requests would — rests on
// this distinction.
func NeedsValue(m Mapping) bool {
	c, ok := m.(Const)
	return !ok || c.NeedOld
}

// Load is the identity mapping id: RMW(X, id) is a load (Section 2).
type Load struct{}

var _ Mapping = Load{}

// Apply returns w unchanged.
func (Load) Apply(w word.Word) word.Word { return w }

// Kind reports KindLoad.
func (Load) Kind() Kind { return KindLoad }

// EncodedBits is the opcode-only cost of a load.
func (Load) EncodedBits() int { return 8 }

// String renders the identity mapping.
func (Load) String() string { return "id" }

func (Load) compose(g Mapping) (Mapping, bool) { return g, true }

// Const is the constant mapping I_v: RMW(X, I_v) stores v.  When the old
// value is wanted (NeedOld) the operation is a swap; when it is ignored the
// operation is a plain store whose reply is a bare acknowledgment.  The
// distinction does not change memory semantics but drives the traffic
// accounting of Section 5.1: store replies need not carry a value.
type Const struct {
	V       int64
	NeedOld bool
}

var _ Mapping = Const{}

// StoreOf returns the store mapping I_v with the reply value suppressed.
func StoreOf(v int64) Const { return Const{V: v} }

// SwapOf returns the swap mapping I_v with the old value returned.
func SwapOf(v int64) Const { return Const{V: v, NeedOld: true} }

// Apply replaces the value and preserves the tag (a plain store does not
// touch the full/empty bit; Section 5.5).
func (c Const) Apply(w word.Word) word.Word { return word.Word{Val: c.V, Tag: w.Tag} }

// Kind reports KindConst.
func (c Const) Kind() Kind { return KindConst }

// EncodedBits is one opcode byte plus the stored word.
func (c Const) EncodedBits() int { return 8 + 64 }

// String renders the constant mapping.
func (c Const) String() string {
	if c.NeedOld {
		return fmt.Sprintf("swap(%d)", c.V)
	}
	return fmt.Sprintf("store(%d)", c.V)
}

func (c Const) compose(g Mapping) (Mapping, bool) {
	// Reached only for tag-sensitive g: a plain store followed by a
	// tagged operation combines as a two-step state table (this is the
	// Section 5.5 case of a store meeting a store-if-clear-and-set).
	if gt, ok := g.(Table); ok {
		ct, _ := asTable(c, gt.States())
		return ct.compose(gt)
	}
	return nil, false
}

// ComposeAll folds Compose over a serial chain f₁, …, fₙ, returning
// f₁∘…∘fₙ.  It reports ok=false as soon as two neighbours fail to combine.
// An empty chain yields the identity.
func ComposeAll(fs ...Mapping) (Mapping, bool) {
	var acc Mapping = Load{}
	for _, f := range fs {
		var ok bool
		acc, ok = Compose(acc, f)
		if !ok {
			return nil, false
		}
	}
	return acc, true
}

// Combinable reports whether two mappings can combine, without building the
// combined mapping.
func Combinable(f, g Mapping) bool {
	_, ok := Compose(f, g)
	return ok
}
