package rmw

import (
	"testing"

	"combining/internal/word"
)

// FuzzDecode: arbitrary bytes never panic the decoder, and anything that
// decodes successfully re-encodes to semantically the same mapping.
func FuzzDecode(f *testing.F) {
	for _, m := range []Mapping{
		Load{}, StoreOf(1), SwapOf(-1), FetchAdd(42), Bool{A: 3, B: 5},
		Affine{A: 2, B: 3}, Moebius{A: 1, D: 1}, FEStoreIfClearSet(9),
	} {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re := Encode(m)
		m2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for _, x := range []word.Word{word.W(0), word.W(-5), word.WT(7, word.Full)} {
			if m.Apply(x) != m2.Apply(x) {
				t.Fatalf("round trip changed semantics at %v: %v vs %v", x, m, m2)
			}
		}
	})
}

// FuzzComposeSemantics: for any two decodable mappings, a successful
// composition preserves serial semantics.
func FuzzComposeSemantics(f *testing.F) {
	f.Add(Encode(FetchAdd(3)), Encode(FetchAdd(4)), int64(10), uint8(0))
	f.Add(Encode(StoreOf(5)), Encode(Load{}), int64(-2), uint8(1))
	f.Add(Encode(FEStoreIfClearSet(1)), Encode(FELoadClear()), int64(7), uint8(1))
	f.Add(Encode(Bool{A: 1, B: 2}), Encode(Bool{A: 3, B: 4}), int64(99), uint8(0))
	f.Fuzz(func(t *testing.T, fb, gb []byte, xv int64, tag uint8) {
		fm, _, err1 := Decode(fb)
		gm, _, err2 := Decode(gb)
		if err1 != nil || err2 != nil {
			return
		}
		h, ok := Compose(fm, gm)
		if !ok {
			return
		}
		// Tables only accept tags within their state count; clamp.
		x := word.Word{Val: xv, Tag: word.Tag(tag % 2)}
		want := gm.Apply(fm.Apply(x))
		if got := h.Apply(x); got != want {
			t.Fatalf("compose(%v, %v)(%v) = %v, want %v", fm, gm, x, got, want)
		}
	})
}
