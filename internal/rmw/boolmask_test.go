package rmw

import (
	"testing"

	"combining/internal/word"
)

// TestTableBooleanUnary reproduces the 4×4 composition table of Section 5.3
// (experiment T3).  Rows are the first operation, columns the second:
//
//	        load  clear set  comp
//	load    load  clear set  comp
//	clear   clear clear set  set
//	set     set   clear set  clear
//	comp    comp  clear set  load
//
// The entries are derived from the (AND-mask, XOR-mask) algebra, not
// hard-coded, so this test checks the implementation against the paper.
func TestTableBooleanUnary(t *testing.T) {
	want := [4][4]BoolUnary{
		{BLoad, BClear, BSet, BComp},
		{BClear, BClear, BSet, BSet},
		{BSet, BClear, BSet, BClear},
		{BComp, BClear, BSet, BLoad},
	}
	for i, f := range BoolUnaries {
		for j, g := range BoolUnaries {
			if got := ComposeBoolUnary(f, g); got != want[i][j] {
				t.Errorf("%v∘%v = %v, want %v", f, g, got, want[i][j])
			}
		}
	}
}

// TestBoolUnarySemantics checks each unary operation against its defining
// Boolean function on both bit values.
func TestBoolUnarySemantics(t *testing.T) {
	eval := map[BoolUnary]func(x uint64) uint64{
		BLoad:  func(x uint64) uint64 { return x },
		BClear: func(uint64) uint64 { return 0 },
		BSet:   func(uint64) uint64 { return 1 },
		BComp:  func(x uint64) uint64 { return x ^ 1 },
	}
	for _, u := range BoolUnaries {
		m := BoolOf(u)
		for _, x := range []uint64{0, 1} {
			want := eval[u](x)
			got := uint64(m.Apply(word.W(int64(x))).Val) & 1
			if got != want {
				t.Errorf("%v(%d) = %d, want %d", u, x, got, want)
			}
		}
	}
}

// TestBoolBinaryReduction verifies the paper's claim that all 16 binary
// Boolean operations fetch-and-θ(X, a) reduce to unary operations once the
// operand a is fixed: every θ with fixed a must equal some member of the
// mask family, bitwise.
func TestBoolBinaryReduction(t *testing.T) {
	// All 16 binary Boolean functions as truth tables indexed by
	// (x, a) ∈ {0,1}²: bit (2x+a) of the code gives θ(x, a).
	for code := 0; code < 16; code++ {
		theta := func(x, a uint64) uint64 {
			return uint64(code) >> (2*x + a) & 1
		}
		for _, a := range []uint64{0, 1} {
			// With a fixed, θ(·, a) is a unary function; find it.
			f0, f1 := theta(0, a), theta(1, a)
			var u BoolUnary
			switch {
			case f0 == 0 && f1 == 0:
				u = BClear
			case f0 == 1 && f1 == 1:
				u = BSet
			case f0 == 0 && f1 == 1:
				u = BLoad
			default:
				u = BComp
			}
			m := BoolOf(u)
			for _, x := range []uint64{0, 1} {
				want := theta(x, a)
				got := uint64(m.Apply(word.W(int64(x))).Val) & 1
				if got != want {
					t.Errorf("code=%d a=%d: unary %v gives %d on %d, want %d",
						code, a, u, got, x, want)
				}
			}
		}
	}
}

func TestBoolBitVector(t *testing.T) {
	// Different unary operations on different bit positions in one
	// mapping — the "multiple locking" use of Section 5.3.
	// bit 0: load, bit 1: clear, bit 2: set, bit 3: comp.
	m := Bool{A: ^uint64(0) &^ (1 << 1) &^ (1 << 2), B: 1<<2 | 1<<3}
	wantBits := []BoolUnary{BLoad, BClear, BSet, BComp}
	for i, u := range wantBits {
		if got := m.BitOf(uint(i)); got != u {
			t.Errorf("bit %d = %v, want %v", i, got, u)
		}
	}
	// On input 0b1010: bit0 loads 0, bit1 clears the 1, bit2 sets to 1,
	// bit3 complements 1 to 0.
	in := int64(0b1010)
	if got, want := m.Apply(word.W(in)).Val, int64(0b0100); got != want {
		t.Errorf("Apply(%#b) = %#b, want %#b", in, got, want)
	}
}

func TestBoolMaskHelpers(t *testing.T) {
	in := word.W(0b1100)
	if got := BoolSetBits(0b0011).Apply(in).Val; got != 0b1111 {
		t.Errorf("set bits: got %#b, want 0b1111", got)
	}
	if got := BoolClearBits(0b0100).Apply(in).Val; got != 0b1000 {
		t.Errorf("clear bits: got %#b, want 0b1000", got)
	}
	if got := BoolComplementBits(0b1010).Apply(in).Val; got != 0b0110 {
		t.Errorf("complement bits: got %#b, want 0b0110", got)
	}
}

// TestPartialStore covers the Section 5.1 subset-store operations: byte
// stores combine with each other and with full-word operations, with the
// later store winning on overlapping lanes.
func TestPartialStore(t *testing.T) {
	w := word.W(0x1122334455667788)
	if got := StoreByte(0, 0xaa).Apply(w).Val; uint64(got) != 0x11223344556677aa {
		t.Errorf("StoreByte(0): got %#x", got)
	}
	if got := StoreByte(7, 0xbb).Apply(w).Val; uint64(got) != 0xbb22334455667788 {
		t.Errorf("StoreByte(7): got %#x", got)
	}
	// Two disjoint byte stores combine into one two-byte store.
	h, ok := Compose(StoreByte(0, 0xaa), StoreByte(1, 0xbb))
	if !ok {
		t.Fatal("disjoint byte stores must combine")
	}
	if got := h.Apply(w).Val; uint64(got) != 0x112233445566bbaa {
		t.Errorf("combined byte stores: got %#x", got)
	}
	// Overlapping stores: the later one wins on the shared lane.
	h2, ok := Compose(PartialStore(0xffff, 0x1111), PartialStore(0xff00, 0x2200))
	if !ok {
		t.Fatal("overlapping partial stores must combine")
	}
	if got := h2.Apply(word.W(0)).Val; uint64(got) != 0x2211 {
		t.Errorf("overlap: got %#x, want 0x2211", got)
	}
	// A partial store after a full-word store must still combine (both
	// are mask-family mappings when expressed as PartialStore).
	h3, ok := Compose(PartialStore(^uint64(0), 42), StoreByte(1, 7))
	if !ok {
		t.Fatal("full-word partial store must combine with a byte store")
	}
	if got := h3.Apply(word.W(-1)).Val; got != 42&^0xff00|0x0700 {
		t.Errorf("full-then-byte: got %#x", got)
	}
}

// TestBoolComposeExhaustive checks the closed-form mask composition against
// serial application for all 16 pairs of uniform unary mappings and a set
// of mixed-mask mappings, over several inputs.
func TestBoolComposeExhaustive(t *testing.T) {
	mappings := []Bool{
		BoolOf(BLoad), BoolOf(BClear), BoolOf(BSet), BoolOf(BComp),
		{A: 0xff00ff00ff00ff00, B: 0x0f0f0f0f0f0f0f0f},
		{A: 0x123456789abcdef0, B: 0xfedcba9876543210},
	}
	inputs := []int64{0, -1, 0x5555555555555555, 0x0123456789abcdef}
	for _, f := range mappings {
		for _, g := range mappings {
			h, ok := Compose(f, g)
			if !ok {
				t.Fatalf("Bool mappings must compose")
			}
			for _, x := range inputs {
				w := word.W(x)
				if got, want := h.Apply(w), g.Apply(f.Apply(w)); got != want {
					t.Errorf("compose(%v,%v)(%#x) = %v, want %v", f, g, x, got, want)
				}
			}
		}
	}
}
