package rmw

import "combining/internal/word"

// Recoverable mutual exclusion (RME) over the full/empty-bit operations of
// Section 5.5: a lock is one tagged word whose Full bit means "held" and
// whose value names the holder.  All three protocol operations are
// two-state Tables, so they ride the combining network like any other RMW —
// colliding acquires combine in the switches, and under a hot lock the NAKs
// fan back out of one memory access.
//
// The lock is *recoverable* because its entire state lives in the one
// memory word the atomic acquire writes: after a crash anywhere in the
// system, ownership is reconstructible from memory alone.  A processor
// whose acquire was in flight when a component died simply lets the
// exactly-once retry machinery re-drive the request: if the original
// executed and its reply escaped, the reply cache re-answers it; if the
// execution was rolled back to a checkpoint, the retransmit re-executes at
// the recovered module.  Either way the acquire takes effect exactly once,
// and RMEInspect recovers the outcome when the reply itself was what got
// lost.

// RMEAcquire returns the lock-acquire operation for the given owner id:
// store-if-clear-and-set.  On an Empty (free) lock it stores the owner id
// and sets Full; on a Full lock it fails, leaving the word untouched.  The
// reply's old word decides the outcome — see RMEAcquired.
func RMEAcquire(owner int64) Table { return FEStoreIfClearSet(owner) }

// RMERelease returns the lock-release operation: store-and-clear, resetting
// the word to (0, Empty).  Only the holder may issue it.
func RMERelease() Table { return FEStoreClear(0) }

// RMEInspect returns the recovery probe: a plain full/empty load.  A
// processor recovering from a lost acquire reply reads the lock word and
// applies RMEHolder to learn whether its (exactly-once) acquire took
// effect before the crash.
func RMEInspect() Table { return FELoad() }

// RMEAcquired decodes an acquire reply: the operation succeeded exactly
// when the old word was Empty.  A Full old tag is the negative
// acknowledgment; its value names who held the lock.
func RMEAcquired(old word.Word) bool { return old.Tag == word.Empty }

// RMEHolder decodes a lock word (an RMEInspect reply or a NAKed acquire's
// old value): the current owner id and whether the lock is held at all.
func RMEHolder(w word.Word) (owner int64, held bool) {
	return w.Val, w.Tag == word.Full
}
