package rmw

import (
	"fmt"
	"math"
	"math/big"

	"combining/internal/word"
)

// Moebius is the full arithmetic family of Section 5.4.  The semigroup
// spanned by {x θ a : θ ∈ {+, −, ×, ÷, reverse −, reverse ÷}} consists of
// the Möbius functions
//
//	x → (a·x + b) / (c·x + d)
//
// represented by the 2×2 coefficient matrix [[a b] [c d]]; composing two
// functions multiplies their matrices.  This type carries float64
// coefficients and operates on words whose Val holds float64 bits — the
// paper's observation that combined floating-point arithmetic "might not
// produce the same results as would the serial order" (and that the
// transformations are not numerically stable when division occurs) is
// reproduced by comparing against MoebiusRat, the exact rational version.
type Moebius struct {
	A, B, C, D float64
}

var _ Mapping = Moebius{}

// MoebiusAdd returns x → x + c.
func MoebiusAdd(c float64) Moebius { return Moebius{A: 1, B: c, D: 1} }

// MoebiusSub returns x → x − c.
func MoebiusSub(c float64) Moebius { return Moebius{A: 1, B: -c, D: 1} }

// MoebiusRSub returns x → c − x.
func MoebiusRSub(c float64) Moebius { return Moebius{A: -1, B: c, D: 1} }

// MoebiusMul returns x → c·x.
func MoebiusMul(c float64) Moebius { return Moebius{A: c, D: 1} }

// MoebiusDiv returns x → x / c.
func MoebiusDiv(c float64) Moebius { return Moebius{A: 1, D: c} }

// MoebiusRDiv returns x → c / x.
func MoebiusRDiv(c float64) Moebius { return Moebius{B: c, C: 1} }

// EvalFloat computes the function on a float64 directly.
func (m Moebius) EvalFloat(x float64) float64 {
	return (m.A*x + m.B) / (m.C*x + m.D)
}

// Apply interprets w.Val as float64 bits, applies the function, and
// re-encodes.  Division by zero follows IEEE-754 (±Inf, NaN), as hardware
// floating-point units behave.
func (m Moebius) Apply(w word.Word) word.Word {
	x := math.Float64frombits(uint64(w.Val))
	return word.Word{Val: int64(math.Float64bits(m.EvalFloat(x))), Tag: w.Tag}
}

// Kind reports KindMoebius.
func (m Moebius) Kind() Kind { return KindMoebius }

// EncodedBits is an opcode byte plus four coefficient words.
func (m Moebius) EncodedBits() int { return 8 + 4*64 }

// String renders the function.
func (m Moebius) String() string {
	return fmt.Sprintf("(%g*x%+g)/(%g*x%+g)", m.A, m.B, m.C, m.D)
}

// compose multiplies coefficient matrices: with h(x) = g(f(x)) the matrix
// of h is M_g · M_f.
func (m Moebius) compose(g Mapping) (Mapping, bool) {
	gm, ok := g.(Moebius)
	if !ok {
		return nil, false
	}
	return Moebius{
		A: gm.A*m.A + gm.B*m.C,
		B: gm.A*m.B + gm.B*m.D,
		C: gm.C*m.A + gm.D*m.C,
		D: gm.C*m.B + gm.D*m.D,
	}, true
}

// MoebiusRat is the exact rational Möbius function, used to demonstrate
// that the combining transformation is algebraically exact — divergence in
// the float64 family is purely rounding, the "same shortcomings as compiler
// optimization techniques that use transformations based on algebraic
// identities" (Section 5.4).  It operates on *big.Rat values rather than
// memory words, so it does not implement Mapping; the rmw tests and the
// arithmetic experiment compare the two.
type MoebiusRat struct {
	A, B, C, D *big.Rat
}

// NewMoebiusRat builds an exact Möbius function from int64 coefficients.
func NewMoebiusRat(a, b, c, d int64) MoebiusRat {
	return MoebiusRat{
		A: big.NewRat(a, 1),
		B: big.NewRat(b, 1),
		C: big.NewRat(c, 1),
		D: big.NewRat(d, 1),
	}
}

// Eval computes (a·x + b) / (c·x + d) exactly.  It reports ok=false when
// the denominator is zero (the rational family has a genuine pole where
// IEEE arithmetic produces an infinity).
func (m MoebiusRat) Eval(x *big.Rat) (*big.Rat, bool) {
	num := new(big.Rat).Mul(m.A, x)
	num.Add(num, m.B)
	den := new(big.Rat).Mul(m.C, x)
	den.Add(den, m.D)
	if den.Sign() == 0 {
		return nil, false
	}
	return num.Quo(num, den), true
}

// Compose returns the exact composition "m then g" by matrix product.
func (m MoebiusRat) Compose(g MoebiusRat) MoebiusRat {
	mul := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Mul(p, q) }
	add := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Add(p, q) }
	return MoebiusRat{
		A: add(mul(g.A, m.A), mul(g.B, m.C)),
		B: add(mul(g.A, m.B), mul(g.B, m.D)),
		C: add(mul(g.C, m.A), mul(g.D, m.C)),
		D: add(mul(g.C, m.B), mul(g.D, m.D)),
	}
}
