package rmw

import (
	"fmt"

	"combining/internal/word"
)

// Op names an associative binary operation θ for the fetch-and-θ family of
// Section 5.2: fetch-and-θ(X, a) = RMW(X, θ_a) with θ_a(x) = x θ a.
// Because θ is associative, θ_a ∘ θ_b = θ_{aθb}, so the family is closed
// under composition and a mapping is encoded by the single operand a.
type Op uint8

const (
	// OpAdd is fetch-and-add, the Ultracomputer/RP3 primitive.
	OpAdd Op = iota + 1
	// OpAnd is fetch-and-AND (bitwise).
	OpAnd
	// OpOr is fetch-and-OR; fetch-and-OR(X, 1) is test-and-set
	// (Section 5.2).
	OpOr
	// OpXor is fetch-and-XOR (bitwise exclusive or).
	OpXor
	// OpMin is fetch-and-min, "useful for allocation with priorities"
	// (Section 5.2).
	OpMin
	// OpMax is fetch-and-max.
	OpMax
)

// String returns the θ name.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// eval computes x θ a.  Addition wraps modulo 2⁶⁴ as machine arithmetic
// does; wrap-around addition is associative, so combining remains exact
// (the guard-bit discussion of Section 5.4 concerns detecting overflow, not
// correctness of the wrapped result).
func (o Op) eval(x, a int64) int64 {
	switch o {
	case OpAdd:
		return x + a
	case OpAnd:
		return x & a
	case OpOr:
		return x | a
	case OpXor:
		return x ^ a
	case OpMin:
		if a < x {
			return a
		}
		return x
	case OpMax:
		if a > x {
			return a
		}
		return x
	default:
		panic("rmw: unknown associative op " + o.String())
	}
}

// Assoc is the mapping θ_a of a fetch-and-θ request.
type Assoc struct {
	Op Op
	A  int64
}

var _ Mapping = Assoc{}

// FetchAdd returns the fetch-and-add mapping +_a.
func FetchAdd(a int64) Assoc { return Assoc{Op: OpAdd, A: a} }

// FetchOr returns the fetch-and-OR mapping.
func FetchOr(a int64) Assoc { return Assoc{Op: OpOr, A: a} }

// FetchAnd returns the fetch-and-AND mapping.
func FetchAnd(a int64) Assoc { return Assoc{Op: OpAnd, A: a} }

// FetchXor returns the fetch-and-XOR mapping.
func FetchXor(a int64) Assoc { return Assoc{Op: OpXor, A: a} }

// FetchMin returns the fetch-and-min mapping.
func FetchMin(a int64) Assoc { return Assoc{Op: OpMin, A: a} }

// FetchMax returns the fetch-and-max mapping.
func FetchMax(a int64) Assoc { return Assoc{Op: OpMax, A: a} }

// TestAndSet is fetch-and-OR(X, 1) on a Boolean word (Section 5.2).
func TestAndSet() Assoc { return FetchOr(1) }

// Apply returns θ_a(w) = w θ a, preserving the tag.
func (m Assoc) Apply(w word.Word) word.Word {
	return word.Word{Val: m.Op.eval(w.Val, m.A), Tag: w.Tag}
}

// Kind reports KindAssoc.
func (m Assoc) Kind() Kind { return KindAssoc }

// EncodedBits is an opcode byte plus the operand word.
func (m Assoc) EncodedBits() int { return 8 + 64 }

// String renders the mapping in fetch-and-θ notation.
func (m Assoc) String() string { return fmt.Sprintf("%s_%d", m.Op, m.A) }

// compose implements θ_a ∘ θ_b = θ_{aθb} for matching θ.  Mixed θ (for
// example fetch-and-add with fetch-and-min) do not form a small closed
// family and are left uncombined.
func (m Assoc) compose(g Mapping) (Mapping, bool) {
	ga, ok := g.(Assoc)
	if !ok || ga.Op != m.Op {
		return nil, false
	}
	return Assoc{Op: m.Op, A: m.Op.eval(m.A, ga.A)}, true
}
