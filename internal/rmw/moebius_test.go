package rmw

import (
	"math"
	"math/big"
	"testing"

	"combining/internal/word"
)

func TestAffineCompose(t *testing.T) {
	f := Affine{A: 3, B: 5}
	g := Affine{A: -2, B: 7}
	h, ok := Compose(f, g)
	if !ok {
		t.Fatal("affine mappings must compose")
	}
	// g(f(x)) = -2(3x+5)+7 = -6x - 3.
	want := Affine{A: -6, B: -3}
	if h != Mapping(want) {
		t.Fatalf("compose = %v, want %v", h, want)
	}
}

// TestAffineWrapExact verifies that affine combining is bit-exact under
// wrap-around arithmetic: the composition identity is a polynomial identity
// and therefore holds in ℤ/2⁶⁴.
func TestAffineWrapExact(t *testing.T) {
	rng := newTestRand(7)
	for trial := 0; trial < 500; trial++ {
		// Huge coefficients force wrap-around.
		f := Affine{A: int64(rng.Uint64()), B: int64(rng.Uint64())}
		g := Affine{A: int64(rng.Uint64()), B: int64(rng.Uint64())}
		h, ok := Compose(f, g)
		if !ok {
			t.Fatal("affine mappings must compose")
		}
		x := randWord(rng)
		if got, want := h.Apply(x), g.Apply(f.Apply(x)); got != want {
			t.Fatalf("trial %d: wrap-around mismatch: got %v, want %v", trial, got, want)
		}
	}
}

func TestAffineConstructors(t *testing.T) {
	cases := []struct {
		m    Affine
		x    int64
		want int64
	}{
		{AffineAdd(5), 10, 15},
		{AffineSub(5), 10, 5},
		{AffineRSub(5), 10, -5},
		{AffineMul(5), 10, 50},
	}
	for _, tc := range cases {
		if got := tc.m.Apply(word.W(tc.x)).Val; got != tc.want {
			t.Errorf("%v(%d) = %d, want %d", tc.m, tc.x, got, tc.want)
		}
	}
}

func TestMoebiusConstructors(t *testing.T) {
	cases := []struct {
		m    Moebius
		x    float64
		want float64
	}{
		{MoebiusAdd(2), 3, 5},
		{MoebiusSub(2), 3, 1},
		{MoebiusRSub(2), 3, -1},
		{MoebiusMul(2), 3, 6},
		{MoebiusDiv(2), 3, 1.5},
		{MoebiusRDiv(6), 3, 2},
	}
	for _, tc := range cases {
		if got := tc.m.EvalFloat(tc.x); got != tc.want {
			t.Errorf("%v(%g) = %g, want %g", tc.m, tc.x, got, tc.want)
		}
	}
}

// TestMoebiusCompose checks the matrix-product composition against direct
// serial evaluation, in exact rational arithmetic so rounding cannot hide a
// matrix-order mistake.
func TestMoebiusCompose(t *testing.T) {
	rng := newTestRand(11)
	for trial := 0; trial < 300; trial++ {
		f := NewMoebiusRat(int64(rng.IntN(9)-4), int64(rng.IntN(9)-4), int64(rng.IntN(9)-4), int64(rng.IntN(9)-4))
		g := NewMoebiusRat(int64(rng.IntN(9)-4), int64(rng.IntN(9)-4), int64(rng.IntN(9)-4), int64(rng.IntN(9)-4))
		h := f.Compose(g)
		x := big.NewRat(int64(rng.IntN(41)-20), int64(rng.IntN(7)+1))
		fx, ok1 := f.Eval(x)
		if !ok1 {
			continue
		}
		want, ok2 := g.Eval(fx)
		got, ok3 := h.Eval(x)
		if ok2 != ok3 {
			// A pole can shift onto x after composition only through
			// cancellation; both must agree when defined.
			continue
		}
		if !ok2 {
			continue
		}
		if want.Cmp(got) != 0 {
			t.Fatalf("trial %d: h(x)=%v, want g(f(x))=%v", trial, got, want)
		}
	}
}

// TestMoebiusFloatMatchesRatWithoutDivision: with only +, −, × the float64
// family composed along any tree equals serial evaluation exactly when all
// quantities are small integers (no rounding occurs below 2⁵³).
func TestMoebiusFloatMatchesRatWithoutDivision(t *testing.T) {
	ops := []Moebius{MoebiusAdd(3), MoebiusMul(2), MoebiusSub(7), MoebiusRSub(100), MoebiusAdd(-5)}
	var combined Mapping = Load{}
	for _, m := range ops {
		var ok bool
		combined, ok = Compose(combined, m)
		if !ok {
			t.Fatal("moebius chain must compose")
		}
	}
	for _, x := range []float64{0, 1, -3, 17} {
		serial := x
		for _, m := range ops {
			serial = m.EvalFloat(serial)
		}
		got := combined.(Moebius).EvalFloat(x)
		if got != serial {
			t.Errorf("x=%g: combined=%g, serial=%g", x, got, serial)
		}
	}
}

// TestMoebiusDivisionInstability reproduces the Section 5.4 caveat
// (experiment E12): when division participates, the combined float64
// computation can differ from serial evaluation, while the exact rational
// computation proves the divergence is pure rounding.
func TestMoebiusDivisionInstability(t *testing.T) {
	rng := newTestRand(13)
	foundDivergence := false
	for trial := 0; trial < 2000 && !foundDivergence; trial++ {
		n := 6
		fs := make([]Moebius, n)
		rats := make([]MoebiusRat, n)
		for i := range fs {
			c := float64(rng.IntN(19) - 9)
			if c == 0 {
				c = 3
			}
			switch rng.IntN(4) {
			case 0:
				fs[i], rats[i] = MoebiusAdd(c), NewMoebiusRat(1, int64(c), 0, 1)
			case 1:
				fs[i], rats[i] = MoebiusMul(c), NewMoebiusRat(int64(c), 0, 0, 1)
			case 2:
				fs[i], rats[i] = MoebiusDiv(c), NewMoebiusRat(1, 0, 0, int64(c))
			default:
				fs[i], rats[i] = MoebiusRDiv(c), NewMoebiusRat(0, int64(c), 1, 0)
			}
		}
		var comb Mapping = Load{}
		combRat := NewMoebiusRat(1, 0, 0, 1)
		for i := range fs {
			var ok bool
			comb, ok = Compose(comb, fs[i])
			if !ok {
				t.Fatal("chain must compose")
			}
			combRat = combRat.Compose(rats[i])
		}
		x := float64(rng.IntN(15) + 1)
		serial := x
		for _, f := range fs {
			serial = f.EvalFloat(serial)
		}
		combined := comb.(Moebius).EvalFloat(x)
		exact, ok := combRat.Eval(big.NewRat(int64(x), 1))
		if !ok || math.IsNaN(serial) || math.IsInf(serial, 0) {
			continue
		}
		if combined != serial {
			foundDivergence = true
			// The exact value certifies both floats are approximations
			// of the same algebraic result.
			ex, _ := exact.Float64()
			if math.Abs(combined-ex) > 1e-6*(1+math.Abs(ex)) &&
				math.Abs(serial-ex) > 1e-6*(1+math.Abs(ex)) {
				t.Logf("note: both float paths far from exact %g (combined %g, serial %g)",
					ex, combined, serial)
			}
		}
	}
	if !foundDivergence {
		t.Error("expected at least one float64 divergence between combined and serial division chains")
	}
}

// TestGuardBits reproduces the guard-bit claim of Section 5.4 (part of
// E12): with one extra bit on intermediates, a combined-tree overflow
// implies a serial overflow, over random inputs and both degenerate and
// balanced combining trees.
func TestGuardBits(t *testing.T) {
	f := Fixed{Width: 8} // values in [−128, 128)
	rng := newTestRand(17)
	checked := 0
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.IntN(12)
		addends := make([]int64, n)
		for i := range addends {
			addends[i] = int64(rng.IntN(2*96+1) - 96)
		}
		x0 := int64(rng.IntN(2*100+1) - 100)
		serialOvf := f.SerialOverflows(x0, addends)
		for _, shape := range []*TreeShape{LeftSpine(n), Balanced(0, n)} {
			combOvf := f.CombinedOverflows(x0, addends, shape, 1)
			if combOvf && !serialOvf {
				t.Fatalf("trial %d: combined overflow without serial overflow (x0=%d addends=%v)",
					trial, x0, addends)
			}
			checked++
		}
		// The converse direction is not claimed by the paper; serial
		// overflow with no combined overflow is possible and fine.
	}
	if checked == 0 {
		t.Fatal("no cases checked")
	}
	// Zero guard bits must be insufficient: exhibit a case where the
	// combined tree overflows the bare width even though the serial
	// execution stays in range.
	// Serial: −128 → −8 → 112, all within [−128, 128); but the combined
	// addend 120+120 = 240 overflows the bare 8-bit range.
	x0, addends := int64(-128), []int64{120, 120}
	if f.SerialOverflows(x0, addends) {
		t.Fatal("witness case must not overflow serially")
	}
	if !f.CombinedOverflows(x0, addends, Balanced(0, len(addends)), 0) {
		t.Error("expected a guard-bit-free combined overflow on the witness case")
	}
}
