package rmw

import (
	"testing"

	"combining/internal/word"
)

// applyChain executes mappings serially on w, the reference semantics that
// Compose must preserve.
func applyChain(w word.Word, ms ...Mapping) word.Word {
	for _, m := range ms {
		w = m.Apply(w)
	}
	return w
}

func TestComposeDefinition(t *testing.T) {
	// f∘g(x) = g(f(x)) on representative pairs across families.
	cases := []struct {
		name string
		f, g Mapping
	}{
		{"add-add", FetchAdd(3), FetchAdd(4)},
		{"add-negative", FetchAdd(-7), FetchAdd(2)},
		{"or-or", FetchOr(0b1010), FetchOr(0b0110)},
		{"and-and", FetchAnd(0xff), FetchAnd(0x0f)},
		{"xor-xor", FetchXor(5), FetchXor(9)},
		{"min-min", FetchMin(10), FetchMin(3)},
		{"max-max", FetchMax(10), FetchMax(30)},
		{"load-add", Load{}, FetchAdd(5)},
		{"add-load", FetchAdd(5), Load{}},
		{"store-add", StoreOf(100), FetchAdd(5)},
		{"add-store", FetchAdd(5), StoreOf(100)},
		{"swap-swap", SwapOf(1), SwapOf(2)},
		{"bool-bool", BoolOf(BSet), BoolOf(BComp)},
		{"affine-affine", Affine{A: 3, B: 1}, Affine{A: -2, B: 7}},
		{"store-affine", StoreOf(4), Affine{A: 3, B: 1}},
	}
	inputs := []int64{0, 1, -1, 42, -1000, 1 << 40}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, ok := Compose(tc.f, tc.g)
			if !ok {
				t.Fatalf("Compose(%v, %v) not combinable", tc.f, tc.g)
			}
			for _, x := range inputs {
				w := word.W(x)
				want := applyChain(w, tc.f, tc.g)
				got := h.Apply(w)
				if got != want {
					t.Errorf("x=%d: (%v∘%v)(x) = %v, want %v", x, tc.f, tc.g, got, want)
				}
			}
		})
	}
}

func TestComposeUniversalRules(t *testing.T) {
	f := FetchAdd(7)
	t.Run("f-then-id", func(t *testing.T) {
		h, ok := Compose(f, Load{})
		if !ok || h != Mapping(f) {
			t.Fatalf("f∘id = %v, want %v", h, f)
		}
	})
	t.Run("id-then-g", func(t *testing.T) {
		h, ok := Compose(Load{}, f)
		if !ok || h != Mapping(f) {
			t.Fatalf("id∘g = %v, want %v", h, f)
		}
	})
	t.Run("f-then-const", func(t *testing.T) {
		h, ok := Compose(f, StoreOf(9))
		if !ok {
			t.Fatal("f∘I_v must combine")
		}
		c, isConst := h.(Const)
		if !isConst || c.V != 9 {
			t.Fatalf("f∘I_v = %v, want store of 9", h)
		}
	})
	t.Run("const-then-g", func(t *testing.T) {
		h, ok := Compose(StoreOf(10), f)
		if !ok {
			t.Fatal("I_v∘g must combine")
		}
		c, isConst := h.(Const)
		if !isConst || c.V != 17 {
			t.Fatalf("I_v∘g = %v, want store of g(10)=17", h)
		}
	})
}

func TestComposeNotCombinable(t *testing.T) {
	cases := []struct {
		name string
		f, g Mapping
	}{
		{"add-min", FetchAdd(1), FetchMin(1)},
		{"add-bool", FetchAdd(1), BoolOf(BSet)},
		{"bool-affine", BoolOf(BSet), Affine{A: 2, B: 1}},
		{"assoc-table", FetchAdd(1), FELoad()},
		{"table-assoc", FELoad(), FetchAdd(1)},
		{"moebius-affine", MoebiusAdd(1), Affine{A: 1, B: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := Compose(tc.f, tc.g); ok {
				t.Errorf("Compose(%v, %v) combined across families", tc.f, tc.g)
			}
		})
	}
}

// opName classifies a combined load/store/swap message the way the paper's
// Section 5.1 tables do.
func opName(m Mapping) string {
	switch v := m.(type) {
	case Load:
		return "load"
	case Const:
		if v.NeedOld {
			return "swap"
		}
		return "store"
	default:
		return "?"
	}
}

// TestTableLoadStoreSwap reproduces the first 3×3 table of Section 5.1
// (experiment T1): rows are the first request, columns the second.
func TestTableLoadStoreSwap(t *testing.T) {
	ops := map[string]Mapping{
		"load":  Load{},
		"store": StoreOf(11),
		"swap":  SwapOf(22),
	}
	want := map[[2]string]string{
		{"load", "load"}:   "load",
		{"load", "store"}:  "swap",
		{"load", "swap"}:   "swap",
		{"store", "load"}:  "store",
		{"store", "store"}: "store",
		{"store", "swap"}:  "store",
		{"swap", "load"}:   "swap",
		{"swap", "store"}:  "swap",
		{"swap", "swap"}:   "swap",
	}
	for pair, wantOp := range want {
		f, g := ops[pair[0]], ops[pair[1]]
		h, ok := Compose(f, g)
		if !ok {
			t.Fatalf("%s∘%s not combinable", pair[0], pair[1])
		}
		if got := opName(h); got != wantOp {
			t.Errorf("%s∘%s = %s, want %s", pair[0], pair[1], got, wantOp)
		}
		// The combined message must also preserve semantics.
		for _, x := range []int64{0, 5, -3} {
			if got, want := h.Apply(word.W(x)), applyChain(word.W(x), f, g); got != want {
				t.Errorf("%s∘%s semantics: got %v want %v", pair[0], pair[1], got, want)
			}
		}
	}
}

func TestNeedsValue(t *testing.T) {
	cases := []struct {
		m    Mapping
		want bool
	}{
		{Load{}, true},
		{StoreOf(1), false},
		{SwapOf(1), true},
		{FetchAdd(1), true},
		{BoolOf(BClear), true},
		{FELoad(), true},
	}
	for _, tc := range cases {
		if got := NeedsValue(tc.m); got != tc.want {
			t.Errorf("NeedsValue(%v) = %v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestComposeAll(t *testing.T) {
	t.Run("empty-is-identity", func(t *testing.T) {
		h, ok := ComposeAll()
		if !ok {
			t.Fatal("empty chain must compose")
		}
		if _, isLoad := h.(Load); !isLoad {
			t.Fatalf("empty chain = %v, want id", h)
		}
	})
	t.Run("fetch-add-chain", func(t *testing.T) {
		h, ok := ComposeAll(FetchAdd(1), FetchAdd(2), FetchAdd(3), FetchAdd(4))
		if !ok {
			t.Fatal("chain must compose")
		}
		if got := h.Apply(word.W(100)).Val; got != 110 {
			t.Fatalf("chain(100) = %d, want 110", got)
		}
	})
	t.Run("mixed-failure", func(t *testing.T) {
		if _, ok := ComposeAll(FetchAdd(1), FetchMin(2)); ok {
			t.Fatal("mixed θ chain must not compose")
		}
	})
}

func TestConstPreservesTag(t *testing.T) {
	// A plain store does not change the full/empty bit (Section 5.5).
	w := word.WT(5, word.Full)
	got := StoreOf(9).Apply(w)
	if got != word.WT(9, word.Full) {
		t.Fatalf("store on tagged word = %v, want 9/full", got)
	}
}

func TestKindStrings(t *testing.T) {
	// The String forms appear in traces and experiment output; pin the
	// spelling of each family.
	cases := []struct {
		m    Mapping
		want string
	}{
		{Load{}, "id"},
		{StoreOf(3), "store(3)"},
		{SwapOf(3), "swap(3)"},
		{FetchAdd(3), "add_3"},
		{BoolOf(BComp), "comp"},
		{Affine{A: 2, B: 3}, "2*x+3"},
		{FELoadClear(), "fe-load-and-clear"},
	}
	for _, tc := range cases {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
