package prefix

// Classical synchronous parallel-prefix circuits, for comparison with the
// combining tree (the paper relates its mechanism to Ladner & Fischer
// [12]).  Two standard points on the size/depth trade-off:
//
//   - Sklansky (recursive doubling): minimum depth ⌈lg n⌉, using
//     Θ(n lg n) operations;
//   - Brent–Kung (the tree shape the combining network realizes):
//     ≤ 2n − 2 operations at depth ≤ 2⌈lg n⌉ − 1.
//
// Both compute inclusive prefixes; the combining tree computes exclusive
// prefixes plus the total, which is the same information shifted by one.

// Circuit is a leveled prefix circuit trace: Ops counts operations, Depth
// counts levels in which at least one operation ran.
type Circuit struct {
	Ops   int
	Depth int
}

// Sklansky computes inclusive prefixes in place with the minimum-depth
// recursive-doubling network and returns its size/depth.
func Sklansky[T any](m Monoid[T], vals []T) ([]T, Circuit) {
	n := len(vals)
	out := make([]T, n)
	copy(out, vals)
	c := Circuit{}
	for span := 1; span < n; span <<= 1 {
		levelOps := 0
		// Combine block [start, start+span) boundary value into the
		// following span positions.
		for start := span; start < n; start += 2 * span {
			boundary := out[start-1]
			for i := start; i < start+span && i < n; i++ {
				out[i] = m.Op(boundary, out[i])
				levelOps++
			}
		}
		if levelOps > 0 {
			c.Ops += levelOps
			c.Depth++
		}
	}
	return out, c
}

// BrentKung computes inclusive prefixes with the size-optimal up/down
// sweep and returns its size/depth.
func BrentKung[T any](m Monoid[T], vals []T) ([]T, Circuit) {
	n := len(vals)
	out := make([]T, n)
	copy(out, vals)
	c := Circuit{}
	// Up-sweep: out[i] for i ≡ 2span−1 (mod 2span) accumulates its
	// block product.
	for span := 1; span < n; span <<= 1 {
		levelOps := 0
		for i := 2*span - 1; i < n; i += 2 * span {
			out[i] = m.Op(out[i-span], out[i])
			levelOps++
		}
		if levelOps > 0 {
			c.Ops += levelOps
			c.Depth++
		}
	}
	// Down-sweep: fill in the odd positions.
	for span := largestPow2Below(n); span >= 1; span >>= 1 {
		levelOps := 0
		for i := 3*span - 1; i < n; i += 2 * span {
			out[i] = m.Op(out[i-span], out[i])
			levelOps++
		}
		if levelOps > 0 {
			c.Ops += levelOps
			c.Depth++
		}
	}
	return out, c
}

func largestPow2Below(n int) int {
	p := 1
	for p*2 < n {
		p *= 2
	}
	return p
}

// Scan is the serial reference: inclusive prefixes in n−1 operations.
func Scan[T any](m Monoid[T], vals []T) []T {
	out := make([]T, len(vals))
	acc := m.Identity
	for i, v := range vals {
		acc = m.Op(acc, v)
		out[i] = acc
	}
	return out
}
