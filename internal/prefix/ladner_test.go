package prefix

import (
	"math/rand/v2"
	"testing"
)

func TestLadnerFischerCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33, 64, 100, 256} {
		for k := 0; k <= 4; k++ {
			vals := randVals(rng, n)
			want := Scan(IntAdd(), vals)
			got, _ := LadnerFischer(IntAdd(), vals, k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: out[%d] = %d, want %d", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLadnerFischerDepth: for powers of two, depth(LF(k)) = ⌈lg n⌉ + k
// until the family bottoms out at the Brent–Kung sweep.
func TestLadnerFischerDepth(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, n := range []int{8, 64, 256, 1024} {
		vals := randVals(rng, n)
		for k := 0; k <= 3; k++ {
			_, c := LadnerFischer(IntAdd(), vals, k)
			// Depth grows by one per level of k until the family
			// saturates at the Brent–Kung sweep's 2⌈lg n⌉ − 2.
			want := min(ceilLg(n)+k, 2*ceilLg(n)-2)
			if c.Depth != want {
				t.Errorf("n=%d k=%d: depth %d, want min(⌈lg n⌉+k, 2⌈lg n⌉−2) = %d",
					n, k, c.Depth, want)
			}
		}
	}
}

// TestLadnerFischerTradeoff: raising k trades depth for size, bridging
// Sklansky (k = 0) and Brent–Kung (k = ⌈lg n⌉) — the cost/performance
// dial Section 7 describes for combining hardware.
func TestLadnerFischerTradeoff(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	const n = 1024
	vals := randVals(rng, n)
	prevSize := 1 << 30
	for k := 0; k <= ceilLg(n); k++ {
		_, c := LadnerFischer(IntAdd(), vals, k)
		if k <= 5 {
			t.Logf("LF(%d) over %d: size %d, depth %d", k, n, c.Ops, c.Depth)
		}
		if c.Ops > prevSize {
			t.Errorf("k=%d: size %d grew over k−1's %d", k, c.Ops, prevSize)
		}
		prevSize = c.Ops
	}
	// Endpoints match the named circuits.
	_, sk := Sklansky(IntAdd(), vals)
	_, bk := BrentKung(IntAdd(), vals)
	_, lf0 := LadnerFischer(IntAdd(), vals, 0)
	_, lfMax := LadnerFischer(IntAdd(), vals, ceilLg(n))
	if lf0.Ops != sk.Ops || lf0.Depth != sk.Depth {
		t.Errorf("LF(0) = (%d,%d), want Sklansky (%d,%d)", lf0.Ops, lf0.Depth, sk.Ops, sk.Depth)
	}
	if lfMax.Ops != bk.Ops {
		t.Errorf("LF(lg n) size %d, want Brent–Kung %d", lfMax.Ops, bk.Ops)
	}
	// The interior of the family beats both endpoints on the product
	// size×depth somewhere.
	best := 1 << 40
	for k := 0; k <= ceilLg(n); k++ {
		_, c := LadnerFischer(IntAdd(), vals, k)
		if p := c.Ops * c.Depth; p < best {
			best = p
		}
	}
	if best >= sk.Ops*sk.Depth {
		t.Error("no interior k improves on Sklansky's size×depth")
	}
}
