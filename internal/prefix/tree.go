// Package prefix implements Section 6 of the paper: the combining tree as
// an asynchronous parallel-prefix computer.
//
// The CSP processes of the paper translate directly to goroutines and
// channels — "the global clock synchronization used by [Ladner–Fischer] is
// replaced by local dataflow synchronization":
//
//	Leaf:     parent ! val;  parent ? val
//	Node:     left ? lval;  right ? rval;  parent ! lval*rval;
//	          parent ? pval;  left ! pval;  right ! pval*lval
//	Superoot: child ? val;  child ! id
//
// At the end, leaf i holds val₁ * … * val_{i−1} (the exclusive prefix) and
// the superoot holds the total — exactly the replies a combining tree of
// RMW(X, fᵢ) requests delivers.
//
// The package also provides the synchronized analysis (sched.go) proving
// the paper's operation counts — 2n − 2 − ⌈lg n⌉ nontrivial compositions,
// 2⌈lg n⌉ − 2 multiplication cycles — and two classical synchronous prefix
// circuits (circuits.go) for comparison.
package prefix

import (
	"sync"
	"sync/atomic"
)

// Monoid supplies the associative operation, its identity, and an identity
// test (used to classify trivial multiplications the way Section 6 does).
type Monoid[T any] struct {
	Identity   T
	Op         func(a, b T) T
	IsIdentity func(v T) bool
}

// IntAdd is the integer addition monoid.
func IntAdd() Monoid[int64] {
	return Monoid[int64]{
		Identity:   0,
		Op:         func(a, b int64) int64 { return a + b },
		IsIdentity: func(v int64) bool { return v == 0 },
	}
}

// OpCount tallies the multiplications a run performed.
type OpCount struct {
	// Total counts every application of the monoid operation.
	Total int64
	// Nontrivial counts applications where neither operand is the
	// identity — the paper's "nontrivial multiplications".
	Nontrivial int64
}

// counterMonoid wraps a monoid's op with counting.
type counter[T any] struct {
	m          Monoid[T]
	total      atomic.Int64
	nontrivial atomic.Int64
}

func (c *counter[T]) op(a, b T) T {
	c.total.Add(1)
	if !c.m.IsIdentity(a) && !c.m.IsIdentity(b) {
		c.nontrivial.Add(1)
	}
	return c.m.Op(a, b)
}

func (c *counter[T]) count() OpCount {
	return OpCount{Total: c.total.Load(), Nontrivial: c.nontrivial.Load()}
}

// RunTree executes the asynchronous prefix tree over the values: one
// goroutine per internal node, channels for every parent/child link, and a
// superoot process holding the memory side.  It returns the exclusive
// prefixes (prefixes[i] = vals[0] * … * vals[i−1]), the total, and the
// operation counts.  The tree is the complete binary tree over len(vals)
// leaves (any n ≥ 1, not just powers of two).
func RunTree[T any](m Monoid[T], vals []T) (prefixes []T, total T, ops OpCount) {
	n := len(vals)
	if n == 0 {
		return nil, m.Identity, OpCount{}
	}
	cnt := &counter[T]{m: m}
	prefixes = make([]T, n)
	var wg sync.WaitGroup

	// build spawns the processes for leaves [lo, hi) and returns the
	// upward and downward channels of the subtree root.
	var build func(lo, hi int) (up chan T, down chan T)
	build = func(lo, hi int) (chan T, chan T) {
		up := make(chan T, 1)
		down := make(chan T, 1)
		if hi-lo == 1 {
			wg.Add(1)
			go func() { // Leaf process
				defer wg.Done()
				up <- vals[lo]
				prefixes[lo] = <-down
			}()
			return up, down
		}
		mid := (lo + hi) / 2
		lUp, lDown := build(lo, mid)
		rUp, rDown := build(mid, hi)
		wg.Add(1)
		go func() { // Internal node process, verbatim from the paper
			defer wg.Done()
			lval := <-lUp
			rval := <-rUp
			up <- cnt.op(lval, rval)
			pval := <-down
			lDown <- pval
			rDown <- cnt.op(pval, lval)
		}()
		return up, down
	}

	up, down := build(0, n)
	// Superoot process.
	total = <-up
	down <- m.Identity
	wg.Wait()
	return prefixes, total, cnt.count()
}
