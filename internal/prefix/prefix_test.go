package prefix

import (
	"math/rand/v2"
	"testing"
)

func randVals(rng *rand.Rand, n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.IntN(1000) + 1) // nonzero, so no accidental identities
	}
	return vals
}

func TestRunTreeExclusivePrefixes(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 31, 32, 100, 256} {
		vals := randVals(rng, n)
		prefixes, total, _ := RunTree(IntAdd(), vals)
		want := int64(0)
		for i, v := range vals {
			if prefixes[i] != want {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, prefixes[i], want)
			}
			want += v
		}
		if total != want {
			t.Fatalf("n=%d: total = %d, want %d", n, total, want)
		}
	}
}

func TestRunTreeNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative: the tree
	// must preserve order exactly.
	m := Monoid[string]{
		Identity:   "",
		Op:         func(a, b string) string { return a + b },
		IsIdentity: func(v string) bool { return v == "" },
	}
	vals := []string{"a", "b", "c", "d", "e", "f", "g"}
	prefixes, total, _ := RunTree(m, vals)
	want := ""
	for i, v := range vals {
		if prefixes[i] != want {
			t.Fatalf("prefix[%d] = %q, want %q", i, prefixes[i], want)
		}
		want += v
	}
	if total != "abcdefg" {
		t.Fatalf("total = %q", total)
	}
}

// TestPrefixCounts is experiment E7: for complete trees the paper's
// operation and cycle counts hold exactly.
func TestPrefixCounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 1024} {
		// The asynchronous tree performs 2(n−1) multiplications, of
		// which ⌈lg n⌉ are trivial.
		vals := randVals(rng, n)
		_, _, ops := RunTree(IntAdd(), vals)
		if got, want := ops.Total, int64(2*(n-1)); got != want {
			t.Errorf("n=%d: total ops %d, want %d", n, got, want)
		}
		if got, want := ops.Nontrivial, int64(PaperNontrivial(n)); got != want {
			t.Errorf("n=%d: nontrivial ops %d, want 2n−2−⌈lg n⌉ = %d", n, got, want)
		}
		// The synchronized schedule completes in 2⌈lg n⌉ − 2 cycles.
		s := Analyze(n)
		if got, want := s.Makespan, PaperCycles(n); got != want {
			t.Errorf("n=%d: makespan %d cycles, want 2⌈lg n⌉−2 = %d", n, got, want)
		}
		if got, want := s.NontrivialOps, PaperNontrivial(n); got != want {
			t.Errorf("n=%d: schedule nontrivial %d, want %d", n, got, want)
		}
		if got, want := s.TotalOps, 2*(n-1); got != want {
			t.Errorf("n=%d: schedule total %d, want %d", n, got, want)
		}
	}
}

func TestCircuitsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33, 64, 100} {
		vals := randVals(rng, n)
		want := Scan(IntAdd(), vals)
		gotS, _ := Sklansky(IntAdd(), vals)
		gotB, _ := BrentKung(IntAdd(), vals)
		for i := range want {
			if gotS[i] != want[i] {
				t.Fatalf("n=%d: Sklansky[%d] = %d, want %d", n, i, gotS[i], want[i])
			}
			if gotB[i] != want[i] {
				t.Fatalf("n=%d: BrentKung[%d] = %d, want %d", n, i, gotB[i], want[i])
			}
		}
	}
}

// TestCircuitTradeoffs pins the size/depth characteristics: Sklansky is
// depth-optimal, Brent–Kung is size-frugal — the same trade-off the paper
// notes between fast combining and cheap combining.
func TestCircuitTradeoffs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, n := range []int{8, 64, 256, 1024} {
		vals := randVals(rng, n)
		_, cs := Sklansky(IntAdd(), vals)
		_, cb := BrentKung(IntAdd(), vals)
		if cs.Depth != ceilLg(n) {
			t.Errorf("n=%d: Sklansky depth %d, want ⌈lg n⌉ = %d", n, cs.Depth, ceilLg(n))
		}
		if cb.Ops > 2*n-2 {
			t.Errorf("n=%d: BrentKung used %d ops, bound 2n−2 = %d", n, cb.Ops, 2*n-2)
		}
		if cb.Depth > 2*ceilLg(n)-1 {
			t.Errorf("n=%d: BrentKung depth %d, bound %d", n, cb.Depth, 2*ceilLg(n)-1)
		}
		if cs.Ops <= cb.Ops {
			t.Errorf("n=%d: expected Sklansky (%d ops) to outspend BrentKung (%d)", n, cs.Ops, cb.Ops)
		}
	}
}

// TestTreeMatchesCombining ties Section 6 back to Section 4: the exclusive
// prefixes of the tree are exactly the replies of a combining tree of
// fetch-and-adds starting from 0.
func TestTreeMatchesCombining(t *testing.T) {
	vals := []int64{5, 3, 9, 1, 7, 2, 8, 4}
	prefixes, total, _ := RunTree(IntAdd(), vals)
	// Serial fetch-and-add replies from initial value 0.
	run := int64(0)
	for i, v := range vals {
		if prefixes[i] != run {
			t.Fatalf("leaf %d: prefix %d, want fetch-and-add reply %d", i, prefixes[i], run)
		}
		run += v
	}
	if total != run {
		t.Fatalf("superoot %d, want final memory value %d", total, run)
	}
}

func TestRunTreeEmpty(t *testing.T) {
	prefixes, total, ops := RunTree(IntAdd(), nil)
	if prefixes != nil || total != 0 || ops.Total != 0 {
		t.Fatalf("empty input: %v %d %+v", prefixes, total, ops)
	}
}

func TestAnalyzePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Analyze(0) accepted")
		}
	}()
	Analyze(0)
}
