package prefix

// The Ladner–Fischer parallel prefix family [12], the construction the
// paper's Section 6 names.  LF(k) interpolates between the depth-optimal
// and the size-optimal circuits, exactly the cost/performance dial the
// paper's conclusion describes for combining hardware:
//
//   - LF(0) is the depth-⌈lg n⌉ recursive-doubling network (Sklansky's
//     shape, the one commonly called "Ladner–Fischer" in the adder
//     literature);
//   - LF(k), k ≥ 1: pair adjacent elements (one level, ⌊n/2⌋ ops),
//     recursively solve LF(k−1) on the pair products, then fix the even
//     outputs (one level, ⌈n/2⌉ − 1 ops);
//   - LF(⌈lg n⌉) degenerates to the Brent–Kung up/down sweep.
//
// For n a power of two, depth(LF(k)) = ⌈lg n⌉ + k exactly, and size
// decreases monotonically in k from Θ(n lg n) toward 2n − 2.  (The
// original paper additionally refines LF(0) to size ≤ 4n at depth exactly
// ⌈lg n⌉; this implementation provides the standard k-family, whose
// bounds the tests check.)

// lfTracker accumulates size and per-value depth during construction.
type lfTracker[T any] struct {
	m    Monoid[T]
	size int
}

// lfVal carries a value and the circuit depth at which it is available.
type lfVal[T any] struct {
	v T
	d int
}

func (t *lfTracker[T]) op(a, b lfVal[T]) lfVal[T] {
	t.size++
	return lfVal[T]{v: t.m.Op(a.v, b.v), d: max(a.d, b.d) + 1}
}

// LadnerFischer computes inclusive prefixes with the LF(k) circuit and
// returns the outputs plus measured size and depth.
func LadnerFischer[T any](m Monoid[T], vals []T, k int) ([]T, Circuit) {
	t := &lfTracker[T]{m: m}
	in := make([]lfVal[T], len(vals))
	for i, v := range vals {
		in[i] = lfVal[T]{v: v}
	}
	out := t.lf(in, k)
	res := make([]T, len(out))
	depth := 0
	for i, o := range out {
		res[i] = o.v
		if o.d > depth {
			depth = o.d
		}
	}
	return res, Circuit{Ops: t.size, Depth: depth}
}

func (t *lfTracker[T]) lf(in []lfVal[T], k int) []lfVal[T] {
	n := len(in)
	if n <= 1 {
		return append([]lfVal[T]{}, in...)
	}
	if n == 2 {
		return []lfVal[T]{in[0], t.op(in[0], in[1])}
	}
	if k == 0 {
		return t.sklansky(in)
	}
	// Pair adjacent elements.
	pairs := make([]lfVal[T], 0, n/2)
	for i := 0; i+1 < n; i += 2 {
		pairs = append(pairs, t.op(in[i], in[i+1]))
	}
	rec := t.lf(pairs, k-1)
	// rec[j] = prefix of in[0..2j+1]; odd-index outputs come directly,
	// even-index outputs (beyond the first) take one more op.
	out := make([]lfVal[T], n)
	out[0] = in[0]
	for i := 1; i < n; i++ {
		if i%2 == 1 {
			out[i] = rec[i/2]
		} else {
			out[i] = t.op(rec[i/2-1], in[i])
		}
	}
	return out
}

// sklansky is the depth-minimal recursive-doubling base case.
func (t *lfTracker[T]) sklansky(in []lfVal[T]) []lfVal[T] {
	n := len(in)
	out := append([]lfVal[T]{}, in...)
	for span := 1; span < n; span <<= 1 {
		for start := span; start < n; start += 2 * span {
			boundary := out[start-1]
			for i := start; i < start+span && i < n; i++ {
				out[i] = t.op(boundary, out[i])
			}
		}
	}
	return out
}
