package prefix

// Synchronized analysis of the prefix tree (Section 6): "Each internal
// node performs two multiplications, of which ⌈lg n⌉ are trivial.  Thus,
// 2n − 2 − ⌈lg n⌉ nontrivial multiplications are done.  The algorithm can
// be implemented to run in 2⌈lg n⌉ − 2 multiplication cycles, when
// globally synchronized."
//
// Schedule computes the ASAP dataflow schedule of the complete tree over n
// leaves under the paper's cost model: a multiplication takes one cycle; a
// multiplication with an identity operand is trivial and free (it is a
// copy); communication is free.  The makespan is the cycle by which every
// leaf holds its prefix.

// Schedule is the result of the synchronized analysis.
type Schedule struct {
	// Leaves is n.
	Leaves int
	// TotalOps is every multiplication performed by internal nodes
	// (two per node).
	TotalOps int
	// NontrivialOps counts multiplications with no identity operand.
	NontrivialOps int
	// Makespan is the number of synchronized multiplication cycles
	// until the last leaf prefix is available.
	Makespan int
}

// Analyze computes the schedule for the complete binary tree over n ≥ 1
// leaves.
func Analyze(n int) Schedule {
	if n < 1 {
		panic("prefix: Analyze needs n ≥ 1")
	}
	s := Schedule{Leaves: n}

	// upTime returns the cycle at which the subtree over [lo, hi) has
	// its upward product available, counting ops as it goes.
	var upTime func(lo, hi int) int
	upTime = func(lo, hi int) int {
		if hi-lo == 1 {
			return 0
		}
		mid := (lo + hi) / 2
		l := upTime(lo, mid)
		r := upTime(mid, hi)
		s.TotalOps++
		s.NontrivialOps++ // the upward product of two real values
		t := max(l, r) + 1
		return t
	}
	// To reuse the up times in the downward pass, recompute them per
	// node via a second recursion carrying (pvalAvail, pvalIsIdentity).
	var down func(lo, hi int, pvalAvail int, pvalID bool)
	down = func(lo, hi int, pvalAvail int, pvalID bool) {
		if hi-lo == 1 {
			if pvalAvail > s.Makespan {
				s.Makespan = pvalAvail
			}
			return
		}
		mid := (lo + hi) / 2
		lUp := upSubtree(lo, mid)
		// Left child inherits pval unchanged (a copy).
		down(lo, mid, pvalAvail, pvalID)
		// Right child gets pval*lval: trivial when pval is the
		// identity (pure copy of the left product), one cycle
		// otherwise.
		s.TotalOps++
		avail := max(pvalAvail, lUp)
		if !pvalID {
			s.NontrivialOps++
			avail++
		}
		down(mid, hi, avail, false)
	}

	rootUp := upTime(0, n)
	down(0, n, 0, true)
	// The superoot's total is available at rootUp; the paper's cycle
	// count concerns the prefixes, but the total can only lag the
	// makespan on degenerate shapes.
	_ = rootUp
	return s
}

// upSubtree returns the up-availability time of the subtree [lo, hi)
// without recounting ops.
func upSubtree(lo, hi int) int {
	if hi-lo == 1 {
		return 0
	}
	mid := (lo + hi) / 2
	return max(upSubtree(lo, mid), upSubtree(mid, hi)) + 1
}

// PaperNontrivial is the paper's count 2n − 2 − ⌈lg n⌉.
func PaperNontrivial(n int) int {
	return 2*n - 2 - ceilLg(n)
}

// PaperCycles is the paper's synchronized cycle count 2⌈lg n⌉ − 2.
func PaperCycles(n int) int {
	return 2*ceilLg(n) - 2
}

func ceilLg(n int) int {
	lg := 0
	for v := 1; v < n; v <<= 1 {
		lg++
	}
	return lg
}
