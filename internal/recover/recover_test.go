package recover

import (
	"testing"

	"combining/internal/faults"
	"combining/internal/word"
)

func TestNilManagerIsInert(t *testing.T) {
	var m *Manager
	m.NoteCrash()
	m.NoteRestore()
	m.NoteLost(nil, []word.ReqID{1, 2})
	m.NoteDelivered(1)
	if m.CheckpointDue(64) {
		t.Error("nil manager reported a checkpoint due")
	}
	if m.Outstanding() != 0 {
		t.Error("nil manager has outstanding losses")
	}
	if got := m.Counters(); got != (faults.Recovery{}) {
		t.Errorf("nil manager counters = %+v, want zero", got)
	}
}

func TestCheckpointCadence(t *testing.T) {
	m := New(10)
	if m.CheckpointDue(0) {
		t.Error("checkpoint due at cycle 0")
	}
	for _, c := range []int64{10, 20, 1000} {
		if !m.CheckpointDue(c) {
			t.Errorf("checkpoint not due at cycle %d", c)
		}
	}
	for _, c := range []int64{1, 9, 11, 1001} {
		if m.CheckpointDue(c) {
			t.Errorf("checkpoint due at off-period cycle %d", c)
		}
	}
	if New(0).Every() != 64 {
		t.Errorf("default period = %d, want 64", New(0).Every())
	}
}

func TestLostReplayedLedger(t *testing.T) {
	m := New(64)
	m.NoteCrash()
	m.NoteLost(nil, []word.ReqID{1, 2, 2, 3}) // dup in one flush counts once
	m.NoteLost(nil, []word.ReqID{3})          // second component losing a copy counts once
	m.NoteRestore()
	if got := m.Outstanding(); got != 3 {
		t.Fatalf("Outstanding = %d, want 3", got)
	}
	m.NoteDelivered(2)
	m.NoteDelivered(2) // double delivery of the same id counts once
	m.NoteDelivered(9) // never-lost id is not a replay
	got := m.Counters()
	want := faults.Recovery{Crashes: 1, Restores: 1, Replayed: 1, LostInFlight: 3}
	if got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	// An id lost again after delivery is new lost work.
	m.NoteLost(nil, []word.ReqID{2})
	m.NoteDelivered(2)
	got = m.Counters()
	if got.LostInFlight != 4 || got.Replayed != 2 {
		t.Fatalf("re-lost id: counters = %+v, want lost 4 replayed 2", got)
	}
	if m.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2 (ids 1 and 3)", m.Outstanding())
	}
}

func TestNoteLostFiltersDeliveredViaTracker(t *testing.T) {
	// A tracker that no longer owes id 5 a delivery: flushing a stale copy
	// of it is not lost work.
	trk := faults.NewTracker(faults.NewInjector(faults.Plan{Seed: 1}))
	m := New(64)
	m.NoteLost(trk, []word.ReqID{5})
	if got := m.Counters().LostInFlight; got != 0 {
		t.Fatalf("lost_in_flight = %d for an untracked id, want 0", got)
	}
}
