// Package recover is the crash–restart bookkeeping layer shared by the
// cycle engines.  The engines own the mechanics — flushing a crashed
// component's queues and wait buffers, rolling a module back to its last
// checkpoint (memory.Module.Crash), re-driving lost operations through the
// exactly-once retry machinery — while the Manager owns the accounting:
// crash/restore transitions, the set of in-flight operations lost to a
// flush, and how many of those the retransmit path later re-drove to
// completion.  Every engine publishes the Manager's counters through the
// shared faults.Recovery snapshot block, so "did recovery actually recover"
// is answerable from any Snapshot().
//
// Why checkpoint + retry preserves exactly-once semantics: a module in
// checkpoint mode withholds every reply until the checkpoint covering its
// execution commits (output commit, memory.Module).  A crash therefore
// rolls back only operations whose replies never escaped — the issuing
// processors are still waiting, their retry trackers still hold the
// requests, and the capped-backoff retransmits re-execute them at the
// module's (single) recovered serialization point.  Operations whose
// replies did escape are committed by construction; their retransmits hit
// the committed reply cache and are answered without re-execution.  No
// completion is lost and none duplicates — the same M2 argument as the
// message-loss plans, extended to component loss.
package recover

import (
	"sync"

	"combining/internal/faults"
	"combining/internal/word"
)

// Manager accounts one run's crash–restart activity.  A nil Manager is the
// no-crash run: every method is a no-op and Counters returns the zero
// block.
type Manager struct {
	mu sync.Mutex

	every int64

	crashes  int64
	restores int64
	replayed int64
	lost     map[word.ReqID]struct{}
	lostN    int64
}

// New builds a Manager with checkpoint period every (cycles).
func New(every int64) *Manager {
	if every <= 0 {
		every = 64
	}
	return &Manager{every: every, lost: make(map[word.ReqID]struct{})}
}

// Every returns the checkpoint period in cycles.
func (m *Manager) Every() int64 { return m.every }

// CheckpointDue reports whether a checkpoint commits this cycle — a pure
// function of the cycle so every Workers width checkpoints identically.
func (m *Manager) CheckpointDue(cycle int64) bool {
	return m != nil && cycle > 0 && cycle%m.every == 0
}

// NoteCrash records one component entering a crash window.
func (m *Manager) NoteCrash() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.crashes++
	m.mu.Unlock()
}

// NoteRestore records one component rejoining after its dead time.
func (m *Manager) NoteRestore() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.restores++
	m.mu.Unlock()
}

// NoteLost records leaf request ids flushed by a crash (queued messages,
// wait-buffer trees, rolled-back executions, withheld replies).  Each id
// counts once however many components lose copies of it, and only while the
// tracker still owes it a delivery — a flushed duplicate of an operation
// whose original reply already arrived is redundant state, not lost work,
// and will never be re-driven.
func (m *Manager) NoteLost(trk *faults.Tracker, ids []word.ReqID) {
	if m == nil || len(ids) == 0 {
		return
	}
	m.mu.Lock()
	for _, id := range ids {
		if trk != nil && !trk.Live(id) {
			continue
		}
		if _, ok := m.lost[id]; !ok {
			m.lost[id] = struct{}{}
			m.lostN++
		}
	}
	m.mu.Unlock()
}

// NoteDelivered marks a completion: if the operation had been lost to a
// crash, it was re-driven by the retry machinery and counts as replayed.
func (m *Manager) NoteDelivered(id word.ReqID) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if _, ok := m.lost[id]; ok {
		delete(m.lost, id)
		m.replayed++
	}
	m.mu.Unlock()
}

// Outstanding reports lost operations not yet re-driven to completion.
func (m *Manager) Outstanding() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	return len(m.lost)
}

// Counters publishes the crash–restart block for the fault snapshot
// schema.
func (m *Manager) Counters() faults.Recovery {
	if m == nil {
		return faults.Recovery{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	return faults.Recovery{
		Crashes:      m.crashes,
		Restores:     m.restores,
		Replayed:     m.replayed,
		LostInFlight: m.lostN,
	}
}
