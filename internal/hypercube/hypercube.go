// Package hypercube implements combining on a direct-connection machine,
// per Section 7: "the mechanisms described in this paper can be easily
// adopted for use by direct connection machines, such as the cosmic cube,
// where the processors themselves act like network switches and the local
// memories at each node are all viewed as part of a distributed, shared
// memory."
//
// The machine is a store-and-forward direct-connection machine: each node
// hosts a processor, one interleaved slice of shared memory, and a router
// with one bounded FIFO output queue per link.  The link structure comes
// from an engine.Direct topology (binary hypercube by default, torus as an
// alternative wiring); the topology guarantees that replies retrace the
// request path node for node — satisfying the paper's "only major
// restriction", that replies return via the same route — so the per-node
// wait buffers see every reply whose request they combined.  For the
// default cube, requests route e-cube (ascending dimension order) and
// replies descend the dimensions.
package hypercube

import (
	"fmt"

	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/flow"
	"combining/internal/memory"
	"combining/internal/network"
	"combining/internal/par"
	"combining/internal/recover"
	"combining/internal/stats"
	"combining/internal/word"
)

// Config parameterizes the machine.
type Config struct {
	// Topology selects the link structure (engine.CubeOf, engine.TorusOf,
	// ...).  nil means the binary hypercube on Nodes nodes.  When set,
	// Nodes may be left 0 to adopt the topology's node count, and must
	// agree with it otherwise.
	Topology engine.Direct
	// Nodes is N; for the default cube wiring, a power of two ≥ 2.
	Nodes int
	// QueueCap bounds each per-link forward queue (default 4).
	QueueCap int
	// RevQueueCap is the per-dimension base credit of each node's reverse
	// queues: a reply hops to a node only while every reverse queue there
	// sits below it, and wait-buffer records act as reserved credits for
	// the decombining fan-out (occupancy ≤ RevQueueCap + WaitBufCap).
	// The acceptance check spans all d dimensions, so the default scales
	// with degree: 0 means d·QueueCap.  Negative means unbounded.
	RevQueueCap int
	// MemQueueCap bounds each node's memory combining queue; a full queue
	// holds arriving requests in their upstream dimension queues.  0
	// defaults to d·QueueCap — the queue aggregates arrivals from all d
	// dimension links, so it gets d link-queues' worth of buffering.
	// Negative means unbounded (the pre-flow-control behavior).
	MemQueueCap int
	// WatchdogCycles is the progress watchdog limit (see
	// internal/network.Config.WatchdogCycles): 0 defaults to
	// network.DefaultWatchdogCycles, negative disables.
	WatchdogCycles int64
	// WaitBufCap bounds each node's wait buffer (0 disables combining).
	WaitBufCap int
	// AllowReversal enables the Section 5.1 optimization.
	AllowReversal bool
	// MemService is the local memory service time (default 1).
	MemService int
	// Workers shards the memory-tick phase of each cycle — module service,
	// metadata, decombining, all node-local — across this many goroutines
	// (see internal/par and DESIGN.md §6).  0 or 1 keep the single-threaded
	// stepper; either way output is byte-for-byte identical.  The forward
	// and reverse drains stay serial: their credit checks read neighbor
	// queues mutated earlier in the same sweep.
	Workers int
	// Faults, when non-nil, arms the deterministic fault plan and the
	// recovery layer (see internal/faults and internal/network.Config).
	// Stall windows select a router by Index (node number, Stage ignored
	// via -1 or 0); memory slowdowns select the node's module by Index.
	Faults *faults.Plan
}

type fwdM struct {
	req   core.Request
	src   int // source node, for reply routing
	issue int64
	hot   bool
	moved int64 // last cycle this message hopped
}

type revM struct {
	rep   core.Reply
	dst   int // destination node (the requester)
	issue int64
	hot   bool
	moved int64
}

// cubeHeldFwd is a request deferred by link-level reordering on its
// terminal link (the node's combining queue → its memory module); it
// re-enters the module at release, or one cycle later per cycle the
// module is crashed or busy.
type cubeHeldFwd struct {
	release int64
	node    int
	m       fwdM
}

// cubeHeldRev is a reply deferred by link-level reordering on its
// terminal link (the home node's router → its processor).
type cubeHeldRev struct {
	release int64
	node    int
	r       revM
}

type hrec struct {
	core.Record
	dst2   int
	issue2 int64
	hot2   bool
	// reps2 names the second request's leaves so a node crash flushing
	// this record reports exactly which operations lost their reply path.
	reps2 []core.Leaf
}

type node struct {
	out  [][]fwdM // per-dimension forward queues (bounded)
	rout [][]revM // per-dimension reverse queues (credit-bounded)
	// memQ is the combining FIFO in front of the node's local memory —
	// the Section 7 suggestion: all dimensions' traffic for this node's
	// memory converges here, so this queue is where a hot spot combines
	// hardest.  Bounded by Config.MemQueueCap.
	memQ []fwdM
	wait *core.WaitBuffer[hrec]
	// maxRev is the reverse-queue high-water mark across dimensions.
	maxRev int
}

// canAcceptRev is the reserved-credit acceptance check (the direct-machine
// twin of switchNode.canAcceptReply in internal/network): a reply may hop
// to this node only while every reverse queue sits below the base credit —
// all dimensions, because the fan-out after decombining is unknown until
// the wait buffer is consulted.  An accepted reply then appends its whole
// fan-out; leaves beyond the first consume wait records this node created,
// so occupancy stays ≤ revCap + wait-buffer capacity.
func (nd *node) canAcceptRev(revCap int) bool {
	if revCap <= 0 {
		return true
	}
	for _, q := range nd.rout {
		if len(q) >= revCap {
			return false
		}
	}
	return true
}

// Stats summarizes a run.
type Stats struct {
	Cycles     int64
	Issued     int64
	Completed  int64
	LatencySum int64
	Combines   int64
	MemOps     int64

	// FwdHops and RevHops count link traversals — the movement signature
	// the progress watchdog keys on.
	FwdHops, RevHops int64

	// Backpressure accounting (see internal/network.Stats): holds by the
	// reverse-credit check, by full memory combining queues, and of
	// module completions blocked on reverse credit.
	HoldsRev, HoldsMem, HoldsMemOut int64

	// SaturationCycles counts cycles a full memory combining queue had
	// backed traffic up into a full forward queue; SaturationMaxStreak is
	// the longest run.
	SaturationCycles    int64
	SaturationMaxStreak int64

	// WatchdogTrips is 1 if the progress watchdog declared a stall.
	WatchdogTrips int64

	// Checkpoints counts module checkpoints committed (crash plans only).
	Checkpoints int64
}

// MeanLatency is average round-trip cycles.
func (s Stats) MeanLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Completed)
}

// Bandwidth is completed operations per cycle.
func (s Stats) Bandwidth() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Cycles)
}

// Sim is the cycle-driven hypercube machine.
type Sim struct {
	cfg     Config
	topo    engine.Direct // the link structure; all routing lives here
	n, d    int           // node count and link degree
	nodes   []*node
	mem     *memory.Array
	inj     []network.Injector
	pending []*fwdM
	// meta preserves message metadata across the memory module.  It is
	// sharded per node: module i's requests are fed and reaped only by node
	// i's memory tick, so each shard has exactly one owner under the
	// parallel stepper.
	meta []map[word.ReqID]fwdM
	pol  core.Policy

	cycle int64
	stats Stats
	// lat records per-completion round-trip latency in cycles; memQHW
	// tracks the deepest per-node memory combining queue observed.
	lat    stats.Histogram
	memQHW stats.HighWater

	// wd is the progress watchdog; sat the tree-saturation monitor.
	wd  *flow.Watchdog
	sat flow.Saturation

	// Fault-mode state (nil/zero on a healthy machine); see
	// internal/network.Sim for the shared recovery discipline.
	flt       *faults.Injector
	trk       *faults.Tracker
	retry     [][]fwdM
	stallMask []bool
	orphans   int64
	// Crash–restart state (nil/empty without crash windows): a Crashes
	// window (Index = node) kills the whole node — router queues, wait
	// buffer, memory combining queue and the module; a MemCrashes window
	// kills the module alone.  Masks are advanced serially at the top of
	// Step with edge detection (see internal/network.Sim.updateCrashState).
	rec      *recover.Manager
	nodeMask []bool
	memMask  []bool
	// Adversarial-delivery state (plan.HasAdversarial(); Validate rejects
	// Workers > 1 with such plans): adv arms the integrity layer on the
	// terminal links, and fwdLimbo/revLimbo hold reordered messages until
	// their release cycle (drained serially at the top of Step).
	adv      bool
	fwdLimbo []cubeHeldFwd
	revLimbo []cubeHeldRev

	// Parallel memory-tick state (Config.Workers > 1, nil/empty
	// otherwise): worker pool (persistent workers bracketed by
	// Run/Drain), the tick function bound once at construction so the
	// cycle loop builds no closures, per-worker cache-line-padded stats
	// shards, and per-node delivery buffers replayed serially in node
	// order.  See DESIGN.md §6.
	pool     *par.Pool
	tickFn   func(w int)
	shards   []cubeShard
	delivBuf [][]revM
}

// cubeShard is one worker's slice of the memory-tick statistics, padded so
// adjacent shards in the contiguous slice never share a cache line.
type cubeShard struct {
	memOps, holdsMemOut, orphans, ckpts int64
	_                                   [64]byte
}

// Validate reports whether the configuration is usable, with the
// documented zero-value defaults applied first; all config policing
// funnels through the engine core's Spec path (NewSim panics with the
// same error).
func (c Config) Validate() error {
	return c.normalize()
}

// normalize applies the defaults in place and validates the result.
func (c *Config) normalize() error {
	spec := engine.Spec{
		Engine:  "hypercube",
		Procs:   c.Nodes,
		Field:   "Nodes",
		Banks:   1,
		Workers: c.Workers,
		Service: c.MemService,
		AdversarialSerial: c.Faults != nil && c.Faults.HasAdversarial() &&
			c.Workers > 1,
	}
	if c.Topology != nil {
		if c.Nodes == 0 {
			c.Nodes = c.Topology.Nodes()
			spec.Procs = c.Nodes
		}
		spec.MinProcs = 2
		spec.Topology = c.Topology
		spec.TopologySize = c.Topology.Nodes()
		spec.TopologyField = "node count"
	} else {
		spec.PowerOf = 2
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	deg := c.resolveTopology().Degree()
	if c.QueueCap == 0 {
		c.QueueCap = 4
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = network.DefaultWatchdogCycles
	}
	if c.MemService == 0 {
		c.MemService = 1
	}
	if c.MemQueueCap == 0 {
		c.MemQueueCap = deg * c.QueueCap
	}
	if c.RevQueueCap == 0 {
		c.RevQueueCap = deg * c.QueueCap
	}
	return nil
}

// resolveTopology returns the configured wiring, defaulting to the cube.
func (c Config) resolveTopology() engine.Direct {
	if c.Topology != nil {
		return c.Topology
	}
	return engine.CubeOf(c.Nodes)
}

// NewSim builds the machine with one injector per node.
func NewSim(cfg Config, inj []network.Injector) *Sim {
	if err := cfg.normalize(); err != nil {
		panic(err)
	}
	if len(inj) != cfg.Nodes {
		panic(fmt.Sprintf("hypercube: got %d injectors for %d nodes", len(inj), cfg.Nodes))
	}
	topo := cfg.resolveTopology()
	n := cfg.Nodes
	d := topo.Degree()
	memOpts := []memory.Option{memory.WithServiceTime(cfg.MemService)}
	if cfg.Faults != nil {
		memOpts = append(memOpts, memory.WithReplyCache())
		if cfg.Faults.HasCrashes() {
			memOpts = append(memOpts, memory.WithCheckpoints())
		}
		if cfg.Faults.Canary == "nodedup" {
			memOpts = append(memOpts, memory.WithNoDedupCanary())
		}
	}
	meta := make([]map[word.ReqID]fwdM, n)
	for i := range meta {
		meta[i] = make(map[word.ReqID]fwdM)
	}
	s := &Sim{
		cfg:     cfg,
		topo:    topo,
		n:       n,
		d:       d,
		mem:     memory.NewArray(n, memOpts...),
		inj:     inj,
		pending: make([]*fwdM, n),
		meta:    meta,
		pol:     core.Policy{AllowReversal: cfg.AllowReversal},
		wd:      flow.NewWatchdog(cfg.WatchdogCycles),
	}
	if cfg.Workers > 1 {
		s.pool = par.NewPool(cfg.Workers)
		s.tickFn = s.tickWorker
		s.shards = make([]cubeShard, s.pool.Workers())
		s.delivBuf = make([][]revM, n)
	}
	if cfg.Faults != nil {
		s.flt = faults.NewInjector(*cfg.Faults)
		s.trk = faults.NewTracker(s.flt)
		s.adv = s.flt.Plan().HasAdversarial()
		s.retry = make([][]fwdM, n)
		s.stallMask = make([]bool, n)
		if plan := s.flt.Plan(); plan.HasCrashes() {
			s.rec = recover.New(plan.CheckpointEvery)
			s.nodeMask = make([]bool, n)
			s.memMask = make([]bool, n)
		}
	}
	s.nodes = make([]*node, n)
	for i := range s.nodes {
		s.nodes[i] = &node{
			out:  make([][]fwdM, d),
			rout: make([][]revM, d),
			wait: core.NewWaitBuffer[hrec](cfg.WaitBufCap),
		}
	}
	return s
}

// Memory exposes the distributed shared memory.
func (s *Sim) Memory() *memory.Array { return s.mem }

// homeOf returns the node owning an address.
func (s *Sim) homeOf(addr word.Addr) int { return s.mem.HomeOf(addr) }

// Topology exposes the link structure the machine was built with.
func (s *Sim) Topology() engine.Direct { return s.topo }

// Step advances one cycle.
func (s *Sim) Step() {
	s.cycle++
	s.stats.Cycles++
	if s.flt != nil {
		for i := range s.stallMask {
			s.stallMask[i] = s.flt.Stalled(0, i, s.cycle)
		}
		if s.rec != nil {
			s.updateCrashState()
		}
		for _, p := range s.trk.Expired(s.cycle) {
			s.retry[p.Proc] = append(s.retry[p.Proc],
				fwdM{req: p.Req, src: p.Proc, issue: p.IssueCycle, hot: p.Hot})
		}
		if s.adv {
			s.drainLimbo()
		}
	}
	s.drainReverse()
	s.tickMemory()
	s.drainForward()
	s.injectAll()

	s.sat.Observe(s.treeSaturated())
	s.stats.SaturationCycles = s.sat.Cycles()
	s.stats.SaturationMaxStreak = s.sat.MaxStreak()
	if s.wd.Observe(s.cycle, s.InFlight(), s.progressSig()) {
		s.stats.WatchdogTrips++
	}
}

// updateCrashState advances the crash–restart masks one cycle (serial, with
// edge detection, as in internal/network).  A node crash flushes the whole
// node — router queues, wait buffer, memory combining queue and the module;
// a memory crash rolls back the module alone while the router keeps
// forwarding through traffic.
func (s *Sim) updateCrashState() {
	for i := 0; i < s.n; i++ {
		dead := s.flt.SwitchCrashed(0, i, s.cycle)
		if dead && !s.nodeMask[i] {
			s.rec.NoteCrash()
			s.rec.NoteLost(s.trk, s.crashNode(i))
		} else if !dead && s.nodeMask[i] {
			s.rec.NoteRestore()
		}
		s.nodeMask[i] = dead
		mdead := s.flt.MemCrashed(i, s.cycle)
		if mdead && !s.memMask[i] {
			s.rec.NoteCrash()
			s.rec.NoteLost(s.trk, s.mem.Module(i).Crash())
		} else if !mdead && s.memMask[i] {
			s.rec.NoteRestore()
		}
		s.memMask[i] = mdead
	}
}

// crashNode flushes node i's volatile router state and rolls its module
// back to the last checkpoint, returning every lost leaf id.
func (s *Sim) crashNode(i int) []word.ReqID {
	nd := s.nodes[i]
	var ids []word.ReqID
	addReq := func(req *core.Request) {
		if req.Reps == nil {
			ids = append(ids, req.ID)
			return
		}
		for _, lf := range req.Reps {
			ids = append(ids, lf.ID)
		}
	}
	for dim := 0; dim < s.d; dim++ {
		for j := range nd.out[dim] {
			addReq(&nd.out[dim][j].req)
		}
		nd.out[dim] = nil
		for j := range nd.rout[dim] {
			rep := &nd.rout[dim][j].rep
			if rep.Leaves == nil {
				ids = append(ids, rep.ID)
				continue
			}
			for id := range rep.Leaves {
				ids = append(ids, id)
			}
		}
		nd.rout[dim] = nil
	}
	for j := range nd.memQ {
		addReq(&nd.memQ[j].req)
	}
	nd.memQ = nil
	for _, rec := range nd.wait.Flush() {
		if rec.reps2 == nil {
			ids = append(ids, rec.ID2)
			continue
		}
		for _, lf := range rec.reps2 {
			ids = append(ids, lf.ID)
		}
	}
	ids = append(ids, s.mem.Module(i).Crash()...)
	return ids
}

// nodeDead reports whether node i's router is crashed this cycle.
func (s *Sim) nodeDead(i int) bool { return s.rec != nil && s.nodeMask[i] }

// modDead reports whether node i's module is crashed this cycle (a dead
// node takes its module down with it).
func (s *Sim) modDead(i int) bool {
	return s.rec != nil && (s.memMask[i] || s.nodeMask[i])
}

// treeSaturated reports whether hot-spot backpressure has propagated out of
// a memory queue into the routing network this cycle: some node's memory
// combining queue is full AND some forward dimension queue is full — the
// direct-machine analogue of the Omega network's every-stage-full test.
func (s *Sim) treeSaturated() bool {
	if s.cfg.MemQueueCap <= 0 || s.cfg.QueueCap <= 0 {
		return false
	}
	memFull, fwdFull := false, false
	for _, nd := range s.nodes {
		if len(nd.memQ) >= s.cfg.MemQueueCap {
			memFull = true
		}
		for dim := 0; dim < s.d && !fwdFull; dim++ {
			fwdFull = len(nd.out[dim]) >= s.cfg.QueueCap
		}
		if memFull && fwdFull {
			return true
		}
	}
	return false
}

// progressSig is the watchdog's monotone progress signature: injections,
// hops, memory feeds and service cycles, completions, and fault events all
// change it (see internal/network.Sim.progressSig).
func (s *Sim) progressSig() int64 {
	sig := s.stats.Issued + s.stats.Completed + s.stats.FwdHops +
		s.stats.RevHops + s.stats.MemOps + s.orphans
	for i := 0; i < s.n; i++ {
		sig += s.mem.Module(i).BusyCycles
	}
	if s.flt != nil {
		sig += s.flt.Injected()
	}
	return sig
}

// Stalled reports whether the progress watchdog has tripped.
func (s *Sim) Stalled() bool { return s.wd.Tripped() }

// StallReport formats the watchdog diagnostic with a queue snapshot.
func (s *Sim) StallReport() string {
	fwd, rev, memq, wait := 0, 0, 0, 0
	for _, nd := range s.nodes {
		for dim := 0; dim < s.d; dim++ {
			fwd += len(nd.out[dim])
			rev += len(nd.rout[dim])
		}
		memq += len(nd.memQ)
		wait += nd.wait.Len()
	}
	metaN := 0
	for _, shard := range s.meta {
		metaN += len(shard)
	}
	detail := fmt.Sprintf("fwd=%d rev=%d memq=%d wait=%d meta=%d", fwd, rev, memq, wait, metaN)
	crashed := ""
	if s.flt != nil {
		crashed = s.flt.ActiveCrashes(s.wd.TripCycle())
	}
	return flow.StallReport("hypercube", s.wd, s.InFlight(), crashed, detail)
}

// Run advances the given number of cycles, stopping early if the watchdog
// trips.  A parallel machine starts its persistent pool workers here, once
// per Run, and retires them on return.
func (s *Sim) Run(cycles int) {
	if s.pool != nil {
		s.pool.Start()
		defer s.pool.Stop()
	}
	for i := 0; i < cycles; i++ {
		if s.wd.Tripped() {
			return
		}
		s.Step()
	}
}

// Stats snapshots the run counters.
func (s *Sim) Stats() Stats { return s.stats }

// Snapshot captures the run's instrumentation behind the shared
// cross-engine API (see internal/stats).
func (s *Sim) Snapshot() stats.Snapshot {
	var rejects int64
	maxRev := 0
	for _, nd := range s.nodes {
		rejects += nd.wait.Rejections
		if nd.maxRev > maxRev {
			maxRev = nd.maxRev
		}
	}
	snap := stats.Snapshot{
		Engine: "hypercube",
		Counters: engine.Counters{
			Cycles:           s.stats.Cycles,
			Issued:           s.stats.Issued,
			Completed:        s.stats.Completed,
			Replies:          s.stats.Completed,
			Combines:         s.stats.Combines,
			CombineRejects:   rejects,
			MemOps:           s.stats.MemOps,
			FwdHops:          s.stats.FwdHops,
			RevHops:          s.stats.RevHops,
			SaturationCycles: s.stats.SaturationCycles,
			HoldsRev:         s.stats.HoldsRev,
			HoldsMem:         s.stats.HoldsMem,
			HoldsMemOut:      s.stats.HoldsMemOut,
			WatchdogTrips:    s.stats.WatchdogTrips,
			Checkpoints:      s.stats.Checkpoints,
		}.Map(),
		Gauges: map[string]int64{
			"memq_max":              s.memQHW.Load(),
			"max_mem_queue":         s.memQHW.Load(),
			"max_rev_queue":         int64(maxRev),
			"saturation_max_streak": s.stats.SaturationMaxStreak,
		},
		Histograms: map[string]stats.HistogramSnapshot{
			"latency_cycles": s.lat.Snapshot(),
		},
	}
	if s.flt != nil {
		faults.AddCounters(&snap, s.flt, s.trk, s.mem.TotalDedupHits(), s.orphans, s.rec.Counters())
	}
	return snap
}

// Recovery exposes the crash–restart ledger (nil without crash windows).
func (s *Sim) Recovery() *recover.Manager { return s.rec }

// Faults exposes the fault injector (nil on a healthy machine).
func (s *Sim) Faults() *faults.Injector { return s.flt }

// Tracker exposes the exactly-once delivery ledger (nil on a healthy
// machine).
func (s *Sim) Tracker() *faults.Tracker { return s.trk }

// Orphans reports replies that arrived with no request metadata (fault mode
// only).
func (s *Sim) Orphans() int64 { return s.orphans }

// InFlight counts requests anywhere in the machine.  Under a fault plan the
// tracker's ledger answers instead (see internal/network.Sim.InFlight).
func (s *Sim) InFlight() int {
	if s.trk != nil {
		return s.trk.Outstanding()
	}
	n := 0
	for _, p := range s.pending {
		if p != nil {
			n++
		}
	}
	for _, nd := range s.nodes {
		for dim := 0; dim < s.d; dim++ {
			n += len(nd.out[dim]) + len(nd.rout[dim])
		}
		n += len(nd.memQ)
		n += nd.wait.Len()
	}
	for i := 0; i < s.n; i++ {
		n += s.mem.Module(i).QueueLen()
	}
	return n
}

// Drain runs until empty or the bound is hit, reporting success.  A
// watchdog trip ends the drain immediately: a stalled machine will not
// empty no matter how many more cycles it is given.
func (s *Sim) Drain(maxCycles int) bool {
	if s.pool != nil {
		s.pool.Start()
		defer s.pool.Stop()
	}
	for i := 0; i < maxCycles; i++ {
		if s.wd.Tripped() {
			return false
		}
		s.Step()
		if s.InFlight() == 0 {
			return true
		}
	}
	return s.InFlight() == 0
}

// arriveFwd lands a request at node cur: into the memory combining queue
// when home, otherwise into the output queue of its next dimension,
// combining when possible.  Reports false when the target queue is full.
func (s *Sim) arriveFwd(cur int, m fwdM) bool {
	home := s.homeOf(m.req.Addr)
	dim := s.topo.FwdLink(cur, home)
	nd := s.nodes[cur]
	var q *[]fwdM
	if dim < 0 {
		q = &nd.memQ
	} else {
		q = &nd.out[dim]
	}
	// The M2.3 scan shared with the other engines via core.CombineAtTail.
	tc, rejected, ok := core.CombineAtTail(*q, fwdMReq, m.req, s.pol, nd.wait.CanPush)
	if rejected {
		nd.wait.Rejections++
	}
	if ok {
		queued := &(*q)[tc.Index]
		first, second := *queued, m
		if tc.Swapped {
			first, second = m, *queued
		}
		if nd.wait.Push(tc.Rec.ID1, hrec{
			Record: tc.Rec,
			dst2:   second.src,
			issue2: second.issue,
			hot2:   second.hot,
			reps2:  second.req.Reps,
		}) {
			*queued = fwdM{req: tc.Combined, src: first.src, issue: first.issue, hot: first.hot, moved: queued.moved}
			s.stats.Combines++
			return true
		}
	}
	qcap := s.cfg.QueueCap
	if dim < 0 {
		qcap = s.cfg.MemQueueCap
	}
	if qcap > 0 && len(*q) >= qcap {
		if dim < 0 {
			// Full memory combining queue: the request stays in its
			// upstream dimension queue (or at the injection port) — the
			// hold that turns a hot node into backpressure instead of
			// unbounded memory-side buffering.  Combining above still
			// absorbs matching requests into the full queue.
			s.stats.HoldsMem++
		}
		return false
	}
	m.moved = s.cycle
	*q = append(*q, m)
	if dim < 0 {
		s.memQHW.Observe(int64(len(*q)))
	}
	return true
}

// fwdMReq projects a queued message to its request for the shared scan.
func fwdMReq(m *fwdM) *core.Request { return &m.req }

// arriveRev lands a reply at node cur: decombine against the wait buffer,
// deliver when home, otherwise queue on the next reverse dimension.  The
// recursion never leaves node cur, so everything it touches is node-local
// except the home delivery itself — which, when sink is non-nil (parallel
// memory tick), is buffered there for the serial commit instead, because
// injectors, the retry ledger and completion stats are single-goroutine.
func (s *Sim) arriveRev(cur int, r revM, sink *[]revM) {
	match := func(h hrec) bool { return core.CanDecombine(h.Record, r.rep) }
	if rec, ok := s.nodes[cur].wait.PopMatch(r.rep.ID, match); ok {
		r1, r2 := core.DecombineExact(rec.Record, r.rep)
		s.arriveRev(cur, revM{rep: r1, dst: r.dst, issue: r.issue, hot: r.hot}, sink)
		s.arriveRev(cur, revM{rep: r2, dst: rec.dst2, issue: rec.issue2, hot: rec.hot2}, sink)
		return
	}
	dim := s.topo.RevLink(cur, r.dst)
	if dim < 0 {
		if sink != nil {
			*sink = append(*sink, r)
			return
		}
		s.deliverHome(cur, r)
		return
	}
	r.moved = s.cycle
	nd := s.nodes[cur]
	nd.rout[dim] = append(nd.rout[dim], r)
	if n := len(nd.rout[dim]); n > nd.maxRev {
		nd.maxRev = n
	}
}

// memEnter crosses the adversarial terminal link into node i's module:
// the request is stamped at the last trusted hop (combining finished in
// the node's combining queue), possibly corrupted on the wire, verified,
// and quarantined on mismatch; the retransmit machinery then repairs the
// loss exactly-once.  The duplicate draw comes after verification so
// dup_injected counts only messages that actually entered twice; the
// second copy is answered from the reply cache and its reply orphans.
func (s *Sim) memEnter(i int, m fwdM, memOps *int64) {
	m.req = core.StampRequest(m.req)
	wire := m.req
	site := faults.Site(2, i, 0)
	if mask := s.flt.CorruptMask(site, m.req.ID, m.req.Attempt); mask != 0 {
		wire = core.CorruptRequest(wire, mask)
	}
	if !core.RequestOK(wire) {
		s.flt.NoteCorruptDropped()
		return // quarantined: equivalent to a detected drop on this link
	}
	s.meta[i][wire.ID] = m
	s.mem.Module(i).Enqueue(wire)
	*memOps++
	if s.flt.Duplicate(site, wire.ID, wire.Attempt) && s.mem.Module(i).CanEnqueue() {
		// The duplicate deep-copies its Srcs/Reps slices — a shallow
		// second enqueue would share backing arrays with the first.
		s.mem.Module(i).Enqueue(wire.Clone())
		*memOps++
	}
}

// drainLimbo releases reordered messages whose deferral has elapsed.  It
// runs serially at the top of Step — Validate rejects adversarial plans
// with Workers > 1 — so release order is defined by the serial sweep.  A
// forward release finding its module crashed or busy re-holds one cycle
// (the deferral bound is on the adversarial link, not on ordinary
// backpressure), and held messages are never re-reordered.
func (s *Sim) drainLimbo() {
	if len(s.fwdLimbo) > 0 {
		keep := s.fwdLimbo[:0]
		for _, h := range s.fwdLimbo {
			if h.release > s.cycle {
				keep = append(keep, h)
				continue
			}
			if s.modDead(h.node) || s.mem.Module(h.node).QueueLen() != 0 {
				h.release = s.cycle + 1
				keep = append(keep, h)
				continue
			}
			s.memEnter(h.node, h.m, &s.stats.MemOps)
		}
		s.fwdLimbo = keep
	}
	if len(s.revLimbo) > 0 {
		keep := s.revLimbo[:0]
		for _, h := range s.revLimbo {
			if h.release > s.cycle {
				keep = append(keep, h)
				continue
			}
			s.deliverHomeVerified(h.node, h.r)
		}
		s.revLimbo = keep
	}
}

// deliverHome completes a reply at its requesting node.  Under an
// adversarial plan the router→processor handoff is the terminal link:
// the reply is stamped here — the last trusted hop — then possibly
// deferred, duplicated, or corrupted before deliverHomeVerified checks it.
func (s *Sim) deliverHome(cur int, r revM) {
	if s.adv {
		r.rep = core.StampReply(r.rep)
		site := faults.Site(3, cur, 0)
		if d := s.flt.ReorderDelay(site, r.rep.ID, r.rep.Attempt); d > 0 {
			s.revLimbo = append(s.revLimbo,
				cubeHeldRev{release: s.cycle + d, node: cur, r: r})
			return
		}
		s.deliverHomeVerified(cur, r)
		return
	}
	s.deliverHomeCommon(cur, r)
}

// deliverHomeVerified is the processor side of the adversarial terminal
// link: corrupt on the wire, verify, quarantine on mismatch (the
// processor retransmits and the reply cache answers), and deliver —
// twice when the link duplicates, with the tracker suppressing the
// second copy.
func (s *Sim) deliverHomeVerified(cur int, r revM) {
	site := faults.Site(3, cur, 0)
	wire := r.rep
	if mask := s.flt.CorruptMask(site, wire.ID, wire.Attempt); mask != 0 {
		wire = core.CorruptReply(wire, mask)
	}
	if !core.ReplyOK(wire) {
		s.flt.NoteCorruptDropped()
		return // quarantined: the retransmit machinery re-drives the op
	}
	r.rep = wire
	if s.flt.Duplicate(site, wire.ID, wire.Attempt) {
		// The duplicate's reply must own its Leaves map: a shallow copy
		// shares it with the original (see core.Reply.Clone).
		dup := r
		dup.rep = r.rep.Clone()
		s.deliverHomeCommon(cur, dup)
	}
	s.deliverHomeCommon(cur, r)
}

func (s *Sim) deliverHomeCommon(cur int, r revM) {
	if s.trk != nil {
		if _, ok := s.trk.Deliver(r.rep.ID, s.cycle); !ok {
			return // duplicate of an already-delivered reply; suppressed
		}
	}
	if s.rec != nil {
		s.rec.NoteDelivered(r.rep.ID)
	}
	s.stats.Completed++
	s.stats.LatencySum += s.cycle - r.issue
	s.lat.Record(s.cycle - r.issue)
	s.inj[cur].Deliver(r.rep, s.cycle)
}

func (s *Sim) drainReverse() {
	for i, nd := range s.nodes {
		if s.flt != nil && s.stallMask[i] {
			continue // stalled router moves nothing this cycle
		}
		if s.nodeDead(i) {
			continue // crashed router moves nothing until it restarts
		}
		for dim := 0; dim < s.d; dim++ {
			q := nd.rout[dim]
			if len(q) == 0 || q[0].moved == s.cycle {
				continue
			}
			next := s.topo.Neighbor(i, dim)
			if s.nodeDead(next) {
				// Dead downstream router: hold the reply so the crash costs
				// only the flushed state, not a stream of new losses.
				s.stats.HoldsRev++
				continue
			}
			if !s.nodes[next].canAcceptRev(s.cfg.RevQueueCap) {
				// Downstream reverse credits exhausted: hold the reply.
				// Reverse hops strictly descend in dimension and the last
				// hop delivers (always consumes), so held replies cannot
				// form a cycle.
				s.stats.HoldsRev++
				continue
			}
			r := q[0]
			copy(q, q[1:])
			nd.rout[dim] = q[:len(q)-1]
			if s.flt != nil && (s.flt.DropReply(
				faults.Site(1, next, dim), r.rep.ID, r.rep.Attempt) ||
				s.flt.DropLinkRev(1, next, s.cycle)) {
				continue // reply lost on the reverse link
			}
			s.stats.RevHops++
			s.arriveRev(next, r, nil)
		}
	}
}

func (s *Sim) tickMemory() {
	if s.pool != nil {
		s.tickMemoryParallel()
		return
	}
	for i := 0; i < s.n; i++ {
		s.tickNode(i, &s.stats.MemOps, &s.stats.HoldsMemOut, &s.orphans, &s.stats.Checkpoints, nil)
	}
}

// tickMemoryParallel shards the memory tick across the pool: every node's
// tick touches only that node's combining queue, metadata shard, module,
// wait buffer and reverse queues, so each node is its own conflict group.
// Home-node deliveries — the one non-local effect (injectors, the retry
// ledger and completion stats are shared) — buffer per node and replay
// serially in ascending node order, the serial sweep's order.
func (s *Sim) tickMemoryParallel() {
	s.pool.Run(s.tickFn)
	for i := 0; i < s.n; i++ {
		for _, r := range s.delivBuf[i] {
			s.deliverHome(i, r)
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		s.stats.MemOps += sh.memOps
		s.stats.HoldsMemOut += sh.holdsMemOut
		s.orphans += sh.orphans
		s.stats.Checkpoints += sh.ckpts
		*sh = cubeShard{}
	}
}

// tickWorker is the per-worker body of the parallel memory tick, bound to
// Sim.tickFn once at construction.
func (s *Sim) tickWorker(w int) {
	workers := s.pool.Workers()
	sh := &s.shards[w]
	lo, hi := par.Split(s.n, workers, w)
	for i := lo; i < hi; i++ {
		s.delivBuf[i] = s.delivBuf[i][:0]
		s.tickNode(i, &sh.memOps, &sh.holdsMemOut, &sh.orphans, &sh.ckpts, &s.delivBuf[i])
	}
}

// tickNode advances node i's memory one cycle: feed the module from the
// combining queue one request at a time (so requests stay combinable until
// the moment service starts), then emit a completed reply into the reverse
// path.  Counters accumulate through the pointers so parallel workers stay
// on their own shards; deliveries land in sink when non-nil.
func (s *Sim) tickNode(i int, memOps, holdsMemOut, orphans, ckpts *int64, sink *[]revM) {
	if s.nodeDead(i) {
		return // crashed node: no feed, no service, no emission
	}
	if s.rec != nil && s.rec.CheckpointDue(s.cycle) && !s.modDead(i) {
		s.mem.Module(i).Checkpoint()
		*ckpts++
	}
	if s.modDead(i) {
		return // crashed module: the router forwards, memory serves nothing
	}
	nd := s.nodes[i]
	routerUp := s.flt == nil || !s.stallMask[i]
	if routerUp && len(nd.memQ) > 0 && s.mem.Module(i).QueueLen() == 0 {
		m := nd.memQ[0]
		copy(nd.memQ, nd.memQ[1:])
		nd.memQ = nd.memQ[:len(nd.memQ)-1]
		if s.adv {
			if d := s.flt.ReorderDelay(faults.Site(2, i, 0),
				m.req.ID, m.req.Attempt); d > 0 {
				s.fwdLimbo = append(s.fwdLimbo,
					cubeHeldFwd{release: s.cycle + d, node: i, m: m})
			} else {
				s.memEnter(i, m, memOps)
			}
		} else {
			s.meta[i][m.req.ID] = m
			s.mem.Module(i).Enqueue(m.req)
			*memOps++
		}
	}
	if s.flt != nil && s.flt.MemStalled(i, s.cycle) {
		return // module inside a slowdown window serves nothing
	}
	if !nd.canAcceptRev(s.cfg.RevQueueCap) {
		// No reverse credit at this node: the module holds its
		// completion rather than emitting a reply with nowhere to go.
		*holdsMemOut++
		return
	}
	rep, ok := s.mem.Module(i).Tick()
	if !ok {
		return
	}
	m, found := s.meta[i][rep.ID]
	if !found {
		if s.flt != nil {
			*orphans++ // losing copy of an original/retransmit pair
			return
		}
		panic(fmt.Sprintf("hypercube: cycle %d, node %d: reply id %d (%v) without metadata",
			s.cycle, i, rep.ID, rep))
	}
	delete(s.meta[i], rep.ID)
	s.arriveRev(i, revM{rep: rep, dst: m.src, issue: m.issue, hot: m.hot}, sink)
}

func (s *Sim) drainForward() {
	rot := int(s.cycle)
	for off := range s.nodes {
		i := (off + rot) % s.n
		nd := s.nodes[i]
		if s.flt != nil && s.stallMask[i] {
			continue // stalled router moves nothing this cycle
		}
		if s.nodeDead(i) {
			continue // crashed router moves nothing until it restarts
		}
		for dd := 0; dd < s.d; dd++ {
			dim := (dd + rot) % s.d
			q := nd.out[dim]
			if len(q) == 0 || q[0].moved == s.cycle {
				continue
			}
			m := q[0]
			next := s.topo.Neighbor(i, dim)
			if s.nodeDead(next) {
				continue // dead downstream router: hold the request here
			}
			if s.flt != nil && (s.flt.DropForward(
				faults.Site(1, next, dim), m.req.ID, m.req.Attempt) ||
				s.flt.DropLinkFwd(1, next, s.cycle)) {
				copy(q, q[1:])
				nd.out[dim] = q[:len(q)-1]
				continue // request lost on the forward link
			}
			if !s.arriveFwd(next, m) {
				continue
			}
			s.stats.FwdHops++
			q = nd.out[dim] // arriveFwd may not alias; re-read
			copy(q, q[1:])
			nd.out[dim] = q[:len(q)-1]
		}
	}
}

func (s *Sim) injectAll() {
	rot := int(s.cycle)
	for off := 0; off < s.n; off++ {
		i := (off + rot) % s.n
		if s.nodeDead(i) {
			continue // dead router: the processor port holds its traffic
		}
		if s.flt != nil && len(s.retry[i]) > 0 {
			// Retransmissions take the node's injection slot, bypassing
			// the pending slot (a held fresh request may be waiting on
			// exactly the delivery this retransmit recovers).
			m := s.retry[i][0]
			if s.flt.DropForward(faults.Site(0, i, 0), m.req.ID, m.req.Attempt) {
				s.retry[i] = s.retry[i][1:]
				continue
			}
			if s.arriveFwd(i, m) {
				s.retry[i] = s.retry[i][1:]
				s.stats.FwdHops++
			}
			continue
		}
		if s.pending[i] == nil {
			inj, ok := s.inj[i].Next(s.cycle)
			if !ok {
				continue
			}
			req := inj.Req
			if s.trk != nil {
				if req.Reps == nil && len(req.Srcs) == 1 {
					req = req.WithReps()
				}
				s.trk.Track(i, req, inj.Hot, s.cycle)
			}
			m := fwdM{req: req, src: i, issue: s.cycle, hot: inj.Hot}
			s.pending[i] = &m
			s.stats.Issued++
		}
		m := s.pending[i]
		if s.trk != nil && m.req.Attempt == 0 && s.trk.HeldBack(i, m.req.Addr) {
			continue // hold: earlier same-address request undelivered
		}
		if s.flt != nil && s.flt.DropForward(faults.Site(0, i, 0), m.req.ID, m.req.Attempt) {
			s.pending[i] = nil // lost on the processor-to-router link
			continue
		}
		if s.arriveFwd(i, *m) {
			s.pending[i] = nil
			s.stats.FwdHops++
		}
	}
}
