package hypercube

import (
	"sort"
	"testing"

	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/network"
	"combining/internal/rmw"
	"combining/internal/word"
)

type scriptInjector struct {
	script  []network.Injection
	next    int
	replies []core.Reply
}

func (s *scriptInjector) Next(int64) (network.Injection, bool) {
	if s.next >= len(s.script) {
		return network.Injection{}, false
	}
	inj := s.script[s.next]
	s.next++
	return inj, true
}

func (s *scriptInjector) Deliver(rep core.Reply, _ int64) {
	s.replies = append(s.replies, rep)
}

func emptyInjectors(n int) ([]network.Injector, []*scriptInjector) {
	inj := make([]network.Injector, n)
	scripts := make([]*scriptInjector, n)
	for i := range inj {
		scripts[i] = &scriptInjector{}
		inj[i] = scripts[i]
	}
	return inj, scripts
}

// TestRoutingAllPairs: every node stores a distinct value at every other
// node's memory; values land correctly and acknowledgments return.
func TestRoutingAllPairs(t *testing.T) {
	const n = 8
	for off := 0; off < n; off++ {
		inj, scripts := emptyInjectors(n)
		for p := 0; p < n; p++ {
			dst := word.Addr((p + off) % n)
			scripts[p].script = []network.Injection{{
				Req: core.NewRequest(word.ReqID(p+1), dst, rmw.SwapOf(int64(1000*off+p)), word.ProcID(p)),
			}}
		}
		sim := NewSim(Config{Nodes: n, WaitBufCap: core.Unbounded}, inj)
		if !sim.Drain(1000) {
			t.Fatalf("off=%d: cube did not drain", off)
		}
		for p := 0; p < n; p++ {
			dst := word.Addr((p + off) % n)
			if got := sim.Memory().Peek(dst).Val; got != int64(1000*off+p) {
				t.Errorf("off=%d: node %d holds %d, want %d", off, dst, got, 1000*off+p)
			}
			if len(scripts[p].replies) != 1 || scripts[p].replies[0].ID != word.ReqID(p+1) {
				t.Errorf("off=%d: node %d replies %v", off, p, scripts[p].replies)
			}
		}
	}
}

// TestHypercubeFAA: simultaneous fetch-and-adds of distinct powers of two
// serialize correctly through per-node combining (the same witness check
// as the Omega network).
func TestHypercubeFAA(t *testing.T) {
	for _, waitCap := range []int{0, 1, core.Unbounded} {
		const n = 16
		inj, scripts := emptyInjectors(n)
		const hot = word.Addr(5)
		for p := 0; p < n; p++ {
			scripts[p].script = []network.Injection{{
				Req: core.NewRequest(word.ReqID(p+1), hot, rmw.FetchAdd(1<<p), word.ProcID(p)),
				Hot: true,
			}}
		}
		sim := NewSim(Config{Nodes: n, WaitBufCap: waitCap}, inj)
		if !sim.Drain(5000) {
			t.Fatalf("waitCap=%d: cube did not drain", waitCap)
		}
		final := sim.Memory().Peek(hot).Val
		if final != int64(1)<<n-1 {
			t.Fatalf("waitCap=%d: final %d, want %d", waitCap, final, int64(1)<<n-1)
		}
		var vals []int64
		for p := 0; p < n; p++ {
			vals = append(vals, scripts[p].replies[0].Val.Val)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		seen := int64(0)
		for i, v := range vals {
			if v != seen {
				t.Fatalf("waitCap=%d: reply %d is %d, want %d", waitCap, i, v, seen)
			}
			var inc int64
			if i+1 < len(vals) {
				inc = vals[i+1] - v
			} else {
				inc = final - v
			}
			if inc <= 0 || inc&(inc-1) != 0 || seen&inc != 0 {
				t.Fatalf("waitCap=%d: step %d adds %d", waitCap, i, inc)
			}
			seen += inc
		}
		st := sim.Stats()
		if waitCap == 0 && st.Combines != 0 {
			t.Errorf("combining happened with waitCap 0")
		}
		if waitCap == core.Unbounded && st.Combines == 0 {
			t.Errorf("no combining on an aligned burst")
		}
	}
}

// TestHypercubeHotspot (A2): combining improves hot-spot throughput on the
// direct network too.
func TestHypercubeHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(combining bool) Stats {
		const n = 64
		waitCap := 0
		if combining {
			waitCap = core.Unbounded
		}
		inj := make([]network.Injector, n)
		for p := 0; p < n; p++ {
			inj[p] = network.NewStochastic(p, n, network.TrafficConfig{
				Rate: 0.5, HotFraction: 0.25, Window: 8,
			}, 11)
		}
		sim := NewSim(Config{Nodes: n, WaitBufCap: waitCap}, inj)
		sim.Run(4000)
		return sim.Stats()
	}
	noComb := run(false)
	comb := run(true)
	t.Logf("hypercube h=0.25: no-combining %.2f ops/cycle (lat %.1f), combining %.2f (lat %.1f)",
		noComb.Bandwidth(), noComb.MeanLatency(), comb.Bandwidth(), comb.MeanLatency())
	if comb.Bandwidth() < 1.5*noComb.Bandwidth() {
		t.Errorf("combining bandwidth %.2f not ≥1.5× uncombined %.2f",
			comb.Bandwidth(), noComb.Bandwidth())
	}
	if comb.Combines == 0 {
		t.Error("no combining under hot spot")
	}
}

// TestHypercubeSameNodeOrdering: per-location FIFO through the cube.
func TestHypercubeSameNodeOrdering(t *testing.T) {
	for _, waitCap := range []int{0, core.Unbounded} {
		inj, scripts := emptyInjectors(8)
		const addr = word.Addr(6)
		scripts[1].script = []network.Injection{
			{Req: core.NewRequest(1, addr, rmw.StoreOf(1), 1)},
			{Req: core.NewRequest(2, addr, rmw.StoreOf(2), 1)},
			{Req: core.NewRequest(3, addr, rmw.Load{}, 1)},
		}
		sim := NewSim(Config{Nodes: 8, WaitBufCap: waitCap}, inj)
		if !sim.Drain(1000) {
			t.Fatal("cube did not drain")
		}
		if got := sim.Memory().Peek(addr).Val; got != 2 {
			t.Errorf("waitCap=%d: final %d, want 2", waitCap, got)
		}
		for _, rep := range scripts[1].replies {
			if rep.ID == 3 && rep.Val.Val != 2 {
				t.Errorf("waitCap=%d: load saw %d, want 2", waitCap, rep.Val.Val)
			}
		}
	}
}

func TestECubeRouting(t *testing.T) {
	// The cube wiring ascends dimensions forward, descends in reverse, and
	// the reply path retraces the request path in reverse for every pair.
	const n = 16
	topo := engine.CubeOf(n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			var fwd []int
			cur := src
			for cur != dst {
				d := topo.FwdLink(cur, dst)
				cur = topo.Neighbor(cur, d)
				fwd = append(fwd, cur)
			}
			var rev []int
			cur = dst
			for cur != src {
				d := topo.RevLink(cur, src)
				cur = topo.Neighbor(cur, d)
				rev = append(rev, cur)
			}
			// rev visits fwd's nodes in reverse (shifted by one:
			// fwd ends at dst, rev ends at src).
			full := append([]int{src}, fwd...)
			for i, node := range rev {
				want := full[len(full)-2-i]
				if node != want {
					t.Fatalf("src=%d dst=%d: reply hop %d visits %d, want %d",
						src, dst, i, node, want)
				}
			}
		}
	}
}

func TestCubeConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("non power of two", func() {
		NewSim(Config{Nodes: 6}, make([]network.Injector, 6))
	})
	mustPanic("injector mismatch", func() {
		NewSim(Config{Nodes: 8}, make([]network.Injector, 4))
	})
}

func TestCubeStatsZero(t *testing.T) {
	var st Stats
	if st.MeanLatency() != 0 || st.Bandwidth() != 0 {
		t.Fatal("zero stats must report zeros")
	}
}
