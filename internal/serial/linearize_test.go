package serial

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

func timedOp(proc word.ProcID, seq int, addr word.Addr, m rmw.Mapping, reply int64, issue, done int64) TimedOp {
	return TimedOp{
		Op:      Op{Proc: proc, Seq: seq, Addr: addr, Op: m, Reply: word.W(reply)},
		IssueAt: issue,
		DoneAt:  done,
	}
}

func TestLinearizableAccepts(t *testing.T) {
	// Two overlapping FAAs may serialize either way; a third strictly
	// after both must come last — and does, by its reply.
	h := &TimedHistory{}
	h.Add(timedOp(0, 1, 9, rmw.FetchAdd(1), 1, 10, 20))
	h.Add(timedOp(1, 1, 9, rmw.FetchAdd(1), 0, 12, 22))
	h.Add(timedOp(2, 1, 9, rmw.FetchAdd(1), 2, 30, 40))
	if err := CheckLinearizable(h, nil, nil); err != nil {
		t.Fatalf("valid timed history rejected: %v", err)
	}
}

func TestLinearizableRejectsRealTimeViolation(t *testing.T) {
	// Operation A completed (cycle 20) before B issued (cycle 30), yet
	// the replies claim B executed first (B saw 0, A saw B's effect).
	h := &TimedHistory{}
	h.Add(timedOp(0, 1, 9, rmw.FetchAdd(1), 1, 10, 20)) // A: saw 1 → after someone
	h.Add(timedOp(1, 1, 9, rmw.FetchAdd(1), 0, 30, 40)) // B: saw 0 → first
	if err := CheckLinearizable(h, nil, nil); err == nil {
		t.Fatal("real-time violation accepted")
	}
	// The same replies without timestamps are fine (M2 allows it).
	h2 := &TimedHistory{}
	h2.Add(timedOp(0, 1, 9, rmw.FetchAdd(1), 1, 0, 0))
	h2.Add(timedOp(1, 1, 9, rmw.FetchAdd(1), 0, 0, 0))
	if err := CheckLinearizable(h2, nil, nil); err != nil {
		t.Fatalf("untimed history rejected: %v", err)
	}
	if err := CheckM2(h.History(), nil); err != nil {
		t.Fatalf("M2 must still accept the untimed view: %v", err)
	}
}

func TestLinearizableStaleRead(t *testing.T) {
	// A load issued strictly after a store completed must see it.
	h := &TimedHistory{}
	h.Add(timedOp(0, 1, 3, rmw.StoreOf(7), 0, 10, 20))
	h.Add(timedOp(1, 1, 3, rmw.Load{}, 0, 30, 40)) // stale: saw 0
	if err := CheckLinearizable(h, nil, nil); err == nil {
		t.Fatal("stale read accepted")
	}
	h2 := &TimedHistory{}
	h2.Add(timedOp(0, 1, 3, rmw.StoreOf(7), 0, 10, 20))
	h2.Add(timedOp(1, 1, 3, rmw.Load{}, 7, 30, 40))
	if err := CheckLinearizable(h2, nil, nil); err != nil {
		t.Fatalf("fresh read rejected: %v", err)
	}
}

func TestLinearizableFinalValue(t *testing.T) {
	h := &TimedHistory{}
	h.Add(timedOp(0, 1, 3, rmw.FetchAdd(5), 0, 1, 2))
	if err := CheckLinearizable(h, nil, map[word.Addr]word.Word{3: word.W(5)}); err != nil {
		t.Fatalf("correct final rejected: %v", err)
	}
	if err := CheckLinearizable(h, nil, map[word.Addr]word.Word{3: word.W(9)}); err == nil {
		t.Fatal("wrong final accepted")
	}
}

func TestLinearizableOverlapFreedom(t *testing.T) {
	// Fully overlapping operations are unconstrained by time; any
	// reply-consistent order works even across many processors.
	h := &TimedHistory{}
	for p := 0; p < 6; p++ {
		h.Add(timedOp(word.ProcID(p), 1, 9, rmw.FetchAdd(1), int64(5-p), 10, 100))
	}
	if err := CheckLinearizable(h, nil, nil); err != nil {
		t.Fatalf("overlapping history rejected: %v", err)
	}
}
