package serial

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

func op(proc word.ProcID, seq int, addr word.Addr, m rmw.Mapping, reply int64) Op {
	return Op{Proc: proc, Seq: seq, Addr: addr, Op: m, Reply: word.W(reply)}
}

func TestCheckM2ValidFAA(t *testing.T) {
	// Three processors fetch-and-add 1 to one cell; replies 0,1,2 in any
	// assignment form a valid serialization.
	h := &History{}
	h.Add(op(0, 1, 9, rmw.FetchAdd(1), 1))
	h.Add(op(1, 1, 9, rmw.FetchAdd(1), 2))
	h.Add(op(2, 1, 9, rmw.FetchAdd(1), 0))
	if err := CheckM2(h, nil); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
}

func TestCheckM2DetectsBadReply(t *testing.T) {
	h := &History{}
	h.Add(op(0, 1, 9, rmw.FetchAdd(1), 0))
	h.Add(op(1, 1, 9, rmw.FetchAdd(1), 2)) // 2 is impossible: values are 0,1
	if err := CheckM2(h, nil); err == nil {
		t.Fatal("impossible reply accepted")
	}
}

func TestCheckM2DetectsLostUpdate(t *testing.T) {
	// Two FAAs that both observed 0: a lost update.
	h := &History{}
	h.Add(op(0, 1, 9, rmw.FetchAdd(1), 0))
	h.Add(op(1, 1, 9, rmw.FetchAdd(1), 0))
	if err := CheckM2(h, nil); err == nil {
		t.Fatal("lost update accepted")
	}
}

func TestCheckM2RespectsProgramOrder(t *testing.T) {
	// Processor 0 stores 5 then loads 0 from the same cell with nobody
	// else writing: only load-before-store explains the replies, but that
	// violates processor 0's issue order.
	h := &History{}
	h.Add(op(0, 1, 3, rmw.StoreOf(5), 0))
	h.Add(op(0, 2, 3, rmw.Load{}, 0))
	if err := CheckM2(h, nil); err == nil {
		t.Fatal("program-order violation accepted")
	}
	// The same replies from different processors are fine.
	h2 := &History{}
	h2.Add(op(0, 1, 3, rmw.StoreOf(5), 0))
	h2.Add(op(1, 1, 3, rmw.Load{}, 0))
	if err := CheckM2(h2, nil); err != nil {
		t.Fatalf("cross-processor order rejected: %v", err)
	}
}

func TestCheckM2InitialValues(t *testing.T) {
	h := &History{}
	h.Add(op(0, 1, 3, rmw.Load{}, 42))
	if err := CheckM2(h, nil); err == nil {
		t.Fatal("load of 42 from zero-initialized memory accepted")
	}
	if err := CheckM2(h, map[word.Addr]word.Word{3: word.W(42)}); err != nil {
		t.Fatalf("load of initial value rejected: %v", err)
	}
}

func TestCheckM2MultiLocation(t *testing.T) {
	// Locations are checked independently: a per-location-legal history
	// passes even when no global interleaving exists (that is M1's job).
	h := collierHistory(1, 0) // the non-SC outcome
	if err := CheckM2(h, nil); err != nil {
		t.Fatalf("M2-legal history rejected: %v", err)
	}
}

func TestWitnessM2(t *testing.T) {
	h := &History{}
	h.Add(op(0, 1, 9, rmw.FetchAdd(10), 10))
	h.Add(op(1, 1, 9, rmw.FetchAdd(10), 0))
	h.Add(op(2, 1, 9, rmw.FetchAdd(10), 20))
	w, err := WitnessM2(h, nil)
	if err != nil {
		t.Fatalf("witness search failed: %v", err)
	}
	order := w[9]
	if len(order) != 3 {
		t.Fatalf("witness has %d ops", len(order))
	}
	wantProcs := []word.ProcID{1, 0, 2} // replies 0, 10, 20
	for i, o := range order {
		if o.Proc != wantProcs[i] {
			t.Errorf("witness[%d] from proc %d, want %d", i, o.Proc, wantProcs[i])
		}
	}
}

// collierHistory builds the Section 3.2 example's history with the given
// observed load values: P1 loads A then B; P2 stores B←1 then A←1.
func collierHistory(aSeen, bSeen int64) *History {
	h := &History{}
	const A, B = word.Addr(100), word.Addr(101)
	h.Add(op(1, 1, A, rmw.Load{}, aSeen))
	h.Add(op(1, 2, B, rmw.Load{}, bSeen))
	h.Add(op(2, 1, B, rmw.StoreOf(1), 0))
	h.Add(op(2, 2, A, rmw.StoreOf(1), 0))
	return h
}

// TestCollierOutcomes enumerates the Section 3.2 example: under sequential
// consistency the loads may see (0,0), (0,1) or (1,1) but never (1,0) —
// seeing the later store but missing the earlier one.
func TestCollierOutcomes(t *testing.T) {
	cases := []struct {
		a, b int64
		sc   bool
	}{
		{0, 0, true},
		{0, 1, true},
		{1, 1, true},
		{1, 0, false},
	}
	for _, tc := range cases {
		h := collierHistory(tc.a, tc.b)
		if got := SeqConsistent(h, nil); got != tc.sc {
			t.Errorf("outcome a=%d b=%d: SeqConsistent=%v, want %v", tc.a, tc.b, got, tc.sc)
		}
		// All four outcomes satisfy the weaker per-location condition.
		if err := CheckM2(h, nil); err != nil {
			t.Errorf("outcome a=%d b=%d rejected by M2: %v", tc.a, tc.b, err)
		}
	}
}

// TestSeqConsistentStoreBuffering rejects the classic store-buffer litmus
// outcome too (Dekker): both processors store 1 then load 0 from the other
// flag.
func TestSeqConsistentStoreBuffering(t *testing.T) {
	h := &History{}
	const X, Y = word.Addr(1), word.Addr(2)
	h.Add(op(0, 1, X, rmw.StoreOf(1), 0))
	h.Add(op(0, 2, Y, rmw.Load{}, 0))
	h.Add(op(1, 1, Y, rmw.StoreOf(1), 0))
	h.Add(op(1, 2, X, rmw.Load{}, 0))
	if SeqConsistent(h, nil) {
		t.Fatal("store-buffer outcome accepted as sequentially consistent")
	}
}

func TestCheckM2LargeFAAChain(t *testing.T) {
	// A long single-location chain must check quickly thanks to the
	// reply-value pruning: 200 unit FAAs with replies 0..199 spread
	// round-robin over 8 processors.
	h := &History{}
	for i := 0; i < 200; i++ {
		h.Add(op(word.ProcID(i%8), i/8+1, 5, rmw.FetchAdd(1), int64(i)))
	}
	if err := CheckM2(h, nil); err != nil {
		t.Fatalf("long FAA chain rejected: %v", err)
	}
}

func TestCheckM2LoadsBranching(t *testing.T) {
	// Many identical loads force branching; the memo must keep this
	// tractable.  8 procs × 5 loads of the same value plus one store.
	h := &History{}
	for p := 0; p < 8; p++ {
		for s := 1; s <= 5; s++ {
			h.Add(op(word.ProcID(p), s, 5, rmw.Load{}, 0))
		}
	}
	h.Add(op(9, 1, 5, rmw.StoreOf(7), 0))
	if err := CheckM2(h, nil); err != nil {
		t.Fatalf("load-heavy history rejected: %v", err)
	}
}

// TestCheckerMutationSensitivity: perturbing any single reply of a valid
// fetch-and-add history (to another in-range value) must be detected —
// the checker has no blind spots on this workload shape.
func TestCheckerMutationSensitivity(t *testing.T) {
	build := func() *History {
		h := &History{}
		for i := 0; i < 24; i++ {
			h.Add(op(word.ProcID(i%4), i/4+1, 5, rmw.FetchAdd(1), int64(i)))
		}
		return h
	}
	if err := CheckM2(build(), nil); err != nil {
		t.Fatalf("baseline history rejected: %v", err)
	}
	detected, trials := 0, 0
	for victim := 0; victim < 24; victim += 3 {
		for delta := int64(1); delta <= 3; delta++ {
			h := &History{}
			for i, o := range build().Ops() {
				if i == victim {
					o.Reply = word.W((o.Reply.Val + delta) % 24)
				}
				h.Add(o)
			}
			trials++
			if CheckM2(h, nil) != nil {
				detected++
			}
		}
	}
	t.Logf("mutation detection: %d/%d single-reply perturbations caught", detected, trials)
	if detected != trials {
		t.Fatalf("checker missed %d of %d mutations", trials-detected, trials)
	}
}
