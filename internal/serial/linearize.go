package serial

import (
	"sort"

	"combining/internal/word"
)

// Per-location linearizability.
//
// Theorem 4.2 guarantees a serialization consistent with each processor's
// issue order.  A correct memory-side implementation guarantees more: the
// memory access of a request happens somewhere between its issue and its
// reply, so if request A's reply returned before request B was issued, A
// must serialize before B.  CheckLinearizable verifies this stronger,
// real-time property per location (Herlihy–Wing linearizability restricted
// to one cell), using the issue/completion timestamps the machine records.
//
// Operations with missing timestamps (both zero) are treated as
// unconstrained in real time, so histories recorded without timing remain
// checkable.

// TimedOp is an operation with its observation interval.
type TimedOp struct {
	Op
	// IssueAt and DoneAt bound the interval during which the memory
	// access occurred (simulator cycles or any monotone clock).
	IssueAt, DoneAt int64
}

// TimedHistory collects timed operations.
type TimedHistory struct {
	ops []TimedOp
}

// Add appends an operation.
func (h *TimedHistory) Add(op TimedOp) { h.ops = append(h.ops, op) }

// Len reports the number of operations.
func (h *TimedHistory) Len() int { return len(h.ops) }

// History strips the timestamps.
func (h *TimedHistory) History() *History {
	out := &History{}
	for _, op := range h.ops {
		out.Add(op.Op)
	}
	return out
}

// CheckLinearizable verifies that each location's operations admit a
// serialization that (a) respects per-processor issue order, (b) respects
// real-time precedence (DoneAt(A) < IssueAt(B) forces A before B),
// (c) reproduces every reply, and (d) when final is provided, reaches the
// observed final value.
func CheckLinearizable(h *TimedHistory, initial, final map[word.Addr]word.Word) error {
	perAddr := make(map[word.Addr][]TimedOp)
	for _, op := range h.ops {
		perAddr[op.Addr] = append(perAddr[op.Addr], op)
	}
	for addr, ops := range perAddr {
		var target *word.Word
		if final != nil {
			if f, ok := final[addr]; ok {
				target = &f
			}
		}
		if !linSearch(ops, initial[addr], target) {
			return &Violation{Addr: addr, Detail: "no linearization matches replies and real-time order"}
		}
	}
	return nil
}

// linSearch is the witness search with the extra real-time constraint: an
// operation is eligible only when every operation that precedes it in
// real time has already been placed.
func linSearch(ops []TimedOp, start word.Word, target *word.Word) bool {
	// Group into per-processor chains (program order).
	perProc := make(map[word.ProcID][]TimedOp)
	for _, op := range ops {
		perProc[op.Proc] = append(perProc[op.Proc], op)
	}
	procs := make([]word.ProcID, 0, len(perProc))
	for p := range perProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	chains := make([][]TimedOp, len(procs))
	for i, p := range procs {
		chain := perProc[p]
		sort.Slice(chain, func(a, b int) bool { return chain[a].Seq < chain[b].Seq })
		chains[i] = chain
	}

	timed := func(op TimedOp) bool { return op.IssueAt != 0 || op.DoneAt != 0 }
	pos := make([]int, len(chains))
	total := len(ops)
	failed := make(map[string]bool)
	key := func(val word.Word) string {
		b := make([]byte, 0, len(pos)*2+9)
		for _, p := range pos {
			b = append(b, byte(p), byte(p>>8))
		}
		for shift := 0; shift < 64; shift += 8 {
			b = append(b, byte(uint64(val.Val)>>shift))
		}
		return string(append(b, byte(val.Tag)))
	}

	// eligible reports whether op can be the next linearization point:
	// no unplaced operation completed before op was issued.
	eligible := func(op TimedOp) bool {
		if !timed(op) {
			return true
		}
		for i, chain := range chains {
			for j := pos[i]; j < len(chain); j++ {
				other := chain[j]
				if !timed(other) {
					continue
				}
				if other.DoneAt < op.IssueAt && !(other.Proc == op.Proc && other.Seq == op.Seq) {
					return false
				}
			}
		}
		return true
	}

	var step func(val word.Word, done int) bool
	step = func(val word.Word, done int) bool {
		if done == total {
			return target == nil || val == *target
		}
		k := key(val)
		if failed[k] {
			return false
		}
		for i, chain := range chains {
			p := pos[i]
			if p >= len(chain) {
				continue
			}
			op := chain[p]
			if op.Reply != val || !eligible(op) {
				continue
			}
			pos[i]++
			if step(op.Op.Op.Apply(val), done+1) {
				return true
			}
			pos[i]--
		}
		failed[k] = true
		return false
	}
	return step(start, 0)
}
