// Package serial provides the correctness checkers that turn the paper's
// Section 3 memory-model definitions into machine-checkable predicates:
//
//   - CheckM2: per-location serializability — the memory behaved as if each
//     location executed its requests in some order consistent with every
//     processor's issue order (conditions M2.1–M2.3, the property
//     Theorem 4.2 guarantees for combining networks);
//   - SeqConsistent: full sequential consistency (condition M1), decidable
//     only for small histories — used for the Collier example (Section 3.2)
//     and the incorrect load-forwarding optimization (Section 5.1).
package serial

import (
	"fmt"
	"sort"

	"combining/internal/rmw"
	"combining/internal/word"
)

// Op is one completed memory operation as observed by its issuing
// processor: what was asked, and what came back.
type Op struct {
	Proc  word.ProcID
	Seq   int // per-processor program order index
	Addr  word.Addr
	Op    rmw.Mapping
	Reply word.Word // the old value the operation observed
}

// History is a collection of completed operations from one execution.
type History struct {
	ops []Op
}

// Add appends an operation.
func (h *History) Add(op Op) { h.ops = append(h.ops, op) }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Ops returns a copy of the recorded operations.
func (h *History) Ops() []Op {
	out := make([]Op, len(h.ops))
	copy(out, h.ops)
	return out
}

// byLocation groups operations per address, each group holding
// per-processor chains sorted by program order.
func (h *History) byLocation() map[word.Addr][][]Op {
	perAddr := make(map[word.Addr]map[word.ProcID][]Op)
	for _, op := range h.ops {
		if perAddr[op.Addr] == nil {
			perAddr[op.Addr] = make(map[word.ProcID][]Op)
		}
		perAddr[op.Addr][op.Proc] = append(perAddr[op.Addr][op.Proc], op)
	}
	out := make(map[word.Addr][][]Op, len(perAddr))
	for addr, chains := range perAddr {
		procs := make([]word.ProcID, 0, len(chains))
		for p := range chains {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		for _, p := range procs {
			chain := chains[p]
			sort.Slice(chain, func(i, j int) bool { return chain[i].Seq < chain[j].Seq })
			out[addr] = append(out[addr], chain)
		}
	}
	return out
}

// Violation describes a failed check.
type Violation struct {
	Addr   word.Addr
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("serial: location %d: %s", v.Addr, v.Detail)
}
