package serial

import (
	"fmt"

	"combining/internal/word"
)

// CheckM2 verifies that a history is per-location serializable: for every
// memory location there is an order of its operations that (a) respects
// each processor's issue order to that location and (b) reproduces every
// observed reply when the operations execute consecutively from the
// initial value.  This is exactly the guarantee of Theorem 4.2 for a
// combining memory system, and conditions (M2.1)–(M2.3) of Section 3.2.
//
// initial gives each location's starting content; missing locations start
// as the zero word.  It returns nil when a witness order exists for every
// location.
func CheckM2(h *History, initial map[word.Addr]word.Word) error {
	return checkM2(h, initial, nil)
}

// CheckM2WithFinal is CheckM2 strengthened with the observed final memory
// contents: the witness serialization must also leave each listed location
// holding its observed final value.  This catches failures invisible to
// replies alone — the incorrect load-forwarding optimization of Section 5.1
// produces reply-consistent histories whose final memory no serialization
// explains.
func CheckM2WithFinal(h *History, initial, final map[word.Addr]word.Word) error {
	return checkM2(h, initial, final)
}

func checkM2(h *History, initial, final map[word.Addr]word.Word) error {
	for addr, chains := range h.byLocation() {
		start := initial[addr]
		var target *word.Word
		if final != nil {
			if f, ok := final[addr]; ok {
				target = &f
			}
		}
		if !newSearch(chains).runTo(start, target, nil) {
			return &Violation{
				Addr: addr,
				Detail: fmt.Sprintf("no serialization of %d operations matches the observed replies",
					countOps(chains)),
			}
		}
	}
	return nil
}

// WitnessM2 additionally returns a witness order per location, for
// diagnostics and experiment output.
func WitnessM2(h *History, initial map[word.Addr]word.Word) (map[word.Addr][]Op, error) {
	out := make(map[word.Addr][]Op)
	for addr, chains := range h.byLocation() {
		witness := make([]Op, 0, countOps(chains))
		if !searchWitnessCollect(chains, initial[addr], &witness) {
			return nil, &Violation{Addr: addr, Detail: "no witness serialization"}
		}
		out[addr] = witness
	}
	return out, nil
}

func countOps(chains [][]Op) int {
	n := 0
	for _, c := range chains {
		n += len(c)
	}
	return n
}

// searchWitness finds a serialization by backtracking over the frontier:
// at each step only operations whose observed reply equals the current cell
// value are eligible, which prunes the search to near-determinism for
// value-distinguishing operations (fetch-and-add chains branch only on
// genuinely equivalent orders).  Failed (frontier, value) states are
// memoized for histories small enough to index.
func searchWitness(chains [][]Op, start word.Word) bool {
	return newSearch(chains).run(start, nil)
}

func searchWitnessCollect(chains [][]Op, start word.Word, out *[]Op) bool {
	return newSearch(chains).run(start, out)
}

type search struct {
	chains [][]Op
	pos    []int
	total  int
	// target, when non-nil, is the final value the serialization must
	// reach.
	target *word.Word
	// failed memoizes dead frontier states (encoded positions); only
	// used when the encoding fits.
	failed map[string]bool
}

func newSearch(chains [][]Op) *search {
	return &search{
		chains: chains,
		pos:    make([]int, len(chains)),
		total:  countOps(chains),
		failed: make(map[string]bool),
	}
}

// key encodes the frontier positions together with the current cell value:
// two search states with equal positions can still differ in the value
// (stores applied in different orders), so the value must be part of the
// memo key for soundness.
func (s *search) key(val word.Word) string {
	b := make([]byte, 0, len(s.pos)*2+9)
	for _, p := range s.pos {
		b = append(b, byte(p), byte(p>>8))
	}
	for shift := 0; shift < 64; shift += 8 {
		b = append(b, byte(uint64(val.Val)>>shift))
	}
	return string(append(b, byte(val.Tag)))
}

func (s *search) run(val word.Word, out *[]Op) bool {
	return s.runTo(val, nil, out)
}

func (s *search) runTo(val word.Word, target *word.Word, out *[]Op) bool {
	s.target = target
	return s.step(val, 0, out)
}

func (s *search) step(val word.Word, done int, out *[]Op) bool {
	if done == s.total {
		return s.target == nil || val == *s.target
	}
	key := s.key(val)
	if s.failed[key] {
		return false
	}
	for i, chain := range s.chains {
		p := s.pos[i]
		if p >= len(chain) {
			continue
		}
		op := chain[p]
		if op.Reply != val {
			continue
		}
		s.pos[i]++
		if out != nil {
			*out = append(*out, op)
		}
		if s.step(op.Op.Apply(val), done+1, out) {
			return true
		}
		if out != nil {
			*out = (*out)[:len(*out)-1]
		}
		s.pos[i]--
	}
	s.failed[key] = true
	return false
}
