package serial

import (
	"sort"

	"combining/internal/word"
)

// SeqConsistent decides condition M1 — full sequential consistency — for a
// small history: is there an interleaving of all operations, respecting
// each processor's complete program order (across addresses), in which
// every operation observes the value its reply recorded?  The search is
// exponential in principle; it is intended for the handful-of-operations
// litmus tests of Sections 3.2 and 5.1 (Collier's example, the
// load-forwarding optimization).
func SeqConsistent(h *History, initial map[word.Addr]word.Word) bool {
	chains := h.byProcessor()
	mem := make(map[word.Addr]word.Word, len(initial))
	for a, w := range initial {
		mem[a] = w
	}
	pos := make([]int, len(chains))
	total := 0
	for _, c := range chains {
		total += len(c)
	}
	var step func(done int) bool
	step = func(done int) bool {
		if done == total {
			return true
		}
		for i, chain := range chains {
			p := pos[i]
			if p >= len(chain) {
				continue
			}
			op := chain[p]
			cur := mem[op.Addr]
			if op.Reply != cur {
				continue
			}
			pos[i]++
			mem[op.Addr] = op.Op.Apply(cur)
			if step(done + 1) {
				return true
			}
			mem[op.Addr] = cur
			pos[i]--
		}
		return false
	}
	return step(0)
}

// byProcessor groups the history into per-processor chains in program
// order.
func (h *History) byProcessor() [][]Op {
	perProc := make(map[word.ProcID][]Op)
	for _, op := range h.ops {
		perProc[op.Proc] = append(perProc[op.Proc], op)
	}
	procs := make([]word.ProcID, 0, len(perProc))
	for p := range perProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	out := make([][]Op, 0, len(procs))
	for _, p := range procs {
		chain := perProc[p]
		sort.Slice(chain, func(i, j int) bool { return chain[i].Seq < chain[j].Seq })
		out = append(out, chain)
	}
	return out
}
