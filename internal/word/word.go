// Package word defines the basic data types shared by every layer of the
// combining memory system: memory words (a 64-bit value plus a small state
// tag), shared-memory addresses, and the identifiers that tie read-modify-
// write requests to their replies.
//
// The paper (Kruskal, Rudolph, Snir; TOPLAS 1988) models memory as an array
// of cells, each holding a value that RMW mappings transform.  Section 5.5
// (full/empty bits) and Section 5.6 (data-level synchronization) extend the
// cell with a small state tag; carrying the tag in every Word lets a single
// Mapping interface cover both the plain and the tagged families.
package word

import (
	"fmt"
	"strconv"
)

// Tag is the synchronization state attached to a memory word.  Plain
// (untagged) mapping families ignore it.  For full/empty-bit memory
// (Section 5.5) the tag is 0 (empty) or 1 (full); for data-level
// synchronization (Section 5.6) it ranges over the states of the
// controlling automaton.
type Tag uint8

// Standard tags for full/empty-bit memory.
const (
	Empty Tag = 0
	Full  Tag = 1
)

// MaxStates bounds the number of automaton states a tag can encode.  The
// paper notes that data-level synchronization is tractable only when the
// state set is small; 256 states is far beyond anything a combined request
// could usefully carry, and keeps Tag a single byte on the wire.
const MaxStates = 256

// Word is the content of one shared-memory cell: a 64-bit integer value and
// a state tag.  The zero Word is value 0 in the empty/initial state, which
// is the conventional initial memory content throughout the paper's
// examples.
type Word struct {
	Val int64
	Tag Tag
}

// W is shorthand for an untagged word holding v.
func W(v int64) Word { return Word{Val: v} }

// WT builds a tagged word.
func WT(v int64, t Tag) Word { return Word{Val: v, Tag: t} }

// String renders the word; untagged words print as a bare integer.
func (w Word) String() string {
	if w.Tag == 0 {
		return strconv.FormatInt(w.Val, 10)
	}
	return fmt.Sprintf("%d/s%d", w.Val, w.Tag)
}

// Addr names one shared-memory cell.  The memory system interleaves
// addresses across modules; see internal/memory.
type Addr uint32

// ProcID identifies a processor (equivalently, a network source port).
type ProcID int32

// ReqID uniquely identifies a request within one machine execution.  The
// paper notes the address may be folded into the identifier; we keep ids
// globally unique to simplify wait-buffer matching when a processor has
// several outstanding requests to one location.
type ReqID int64

// NoReq is the zero ReqID, never assigned to a real request.
const NoReq ReqID = 0

// IDGen hands out unique request identifiers.  It is not safe for
// concurrent use; concurrent issuers (the asynchronous network) wrap it in
// their own synchronization or use per-processor id spaces via Partition.
type IDGen struct {
	next ReqID
}

// NewIDGen returns a generator whose first id is 1 (NoReq is reserved).
func NewIDGen() *IDGen { return &IDGen{next: 1} }

// Next returns a fresh identifier.
func (g *IDGen) Next() ReqID {
	id := g.next
	g.next++
	return id
}

// Partition returns a generator producing ids congruent to p modulo n,
// giving n issuers disjoint id spaces without shared state.
func Partition(p, n int) *IDGen {
	if n <= 0 || p < 0 || p >= n {
		panic("word: invalid id partition")
	}
	return &IDGen{next: ReqID(p) + ReqID(n)}
}

// NextPartitioned advances a partitioned generator by its stride.  The
// stride is recovered from the id itself, so the generator stays a single
// int; callers must use the same n they partitioned with.
func (g *IDGen) NextPartitioned(n int) ReqID {
	id := g.next
	g.next += ReqID(n)
	return id
}
