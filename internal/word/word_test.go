package word

import "testing"

func TestWordString(t *testing.T) {
	cases := []struct {
		w    Word
		want string
	}{
		{W(0), "0"},
		{W(-17), "-17"},
		{WT(5, Full), "5/s1"},
		{WT(3, Tag(4)), "3/s4"},
	}
	for _, tc := range cases {
		if got := tc.w.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.w, got, tc.want)
		}
	}
}

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen()
	seen := make(map[ReqID]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if id == NoReq {
			t.Fatal("generator produced NoReq")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestPartitionDisjoint(t *testing.T) {
	const n = 4
	seen := make(map[ReqID]int)
	for p := 0; p < n; p++ {
		g := Partition(p, n)
		for i := 0; i < 100; i++ {
			id := g.NextPartitioned(n)
			if id == NoReq {
				t.Fatal("partitioned generator produced NoReq")
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("id %d produced by partitions %d and %d", id, prev, p)
			}
			seen[id] = p
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			Partition(bad[0], bad[1])
		}()
	}
}
