package par

import (
	"runtime"
	"sync/atomic"
)

// This file holds the spin/backoff vocabulary shared by the phase barriers
// below and by the contention-free primitives in pkg/sync: a per-episode
// spin-versus-yield policy for fixed-width barrier participants, and a
// per-waiter backoff for open-ended spins (a lock waiter parked on its own
// queue node, a consumer waiting for a full/empty cell to fill).  Both obey
// the same rule: spinning is only worth it when the goroutine being waited
// for can run on another processor, so any width-versus-GOMAXPROCS deficit
// collapses the budget to zero and the waiter yields immediately.

// CacheLine is the coherence-granule size the padded spin flags are spaced
// by; 64 bytes covers the common cases (x86-64, most arm64).  Exported so
// pkg/sync pads its queue nodes, shards and flags identically.
const CacheLine = 64

// spinLimit bounds the pure spin before a waiter starts yielding.
const spinLimit = 256

// SpinPolicy is the shared spin-versus-yield budget for n fixed
// participants, re-evaluated against GOMAXPROCS once per barrier episode by
// whichever participant the implementation designates (the last arriver for
// central barriers, worker 0 for dissemination and tournament barriers) so
// a GOMAXPROCS change mid-run takes effect by the next episode without
// every waiter hammering the scheduler lock.
type SpinPolicy struct {
	n      int32
	budget atomic.Int32
}

// Init sets the participant count and computes the initial budget.
func (s *SpinPolicy) Init(n int) {
	s.n = int32(n)
	s.Refresh()
}

// Refresh recomputes the budget against the current GOMAXPROCS: zero (yield
// immediately) when the participants outnumber the processors, the full
// spin limit otherwise.
func (s *SpinPolicy) Refresh() {
	if int(s.n) > runtime.GOMAXPROCS(0) {
		s.budget.Store(0)
	} else {
		s.budget.Store(spinLimit)
	}
}

// SpinBudget returns the pure-spin iteration budget for the current
// episode.
func (s *SpinPolicy) SpinBudget() int32 { return s.budget.Load() }

// Backoff is a per-waiter spin-then-yield loop state for open-ended waits
// where the peer count is unknown (lock queues, full/empty cells): the
// first SpinBudget iterations burn cycles waiting for a remote store to
// land, everything after yields the processor.  On a single-processor
// runtime the budget is zero from the start — the store the waiter wants
// can only happen if the waiter gets off the processor.  The zero value
// yields immediately; use NewBackoff for the GOMAXPROCS-aware budget.
type Backoff struct {
	spins  int32
	budget int32
}

// NewBackoff returns a backoff with the spin budget appropriate for the
// current GOMAXPROCS.
func NewBackoff() Backoff {
	if runtime.GOMAXPROCS(0) <= 1 {
		return Backoff{}
	}
	return Backoff{budget: spinLimit}
}

// Pause burns one spin iteration while budget remains and yields the
// processor after.
func (b *Backoff) Pause() {
	if b.spins < b.budget {
		b.spins++
		return
	}
	runtime.Gosched()
}

// Reset restarts the spin budget; call it after the awaited condition fired
// so the next wait spins again.
func (b *Backoff) Reset() { b.spins = 0 }
