// Package par is the deterministic barrier-phase worker pool the
// cycle-driven engines shard their per-cycle work across.
//
// The design target is bit-identical output, not scheduling freedom.  An
// engine splits each simulated cycle into phases whose work items are
// partitioned into conflict groups — items in different groups touch
// disjoint machine state — spreads whole groups across workers with Split,
// and separates phases with Barrier sync points.  Within a group the owning
// worker replays the exact serial processing order, and everything a group
// shares with the rest of the machine (fault-injector counters, memory
// module mutexes, per-worker stats shards merged after the step) is
// commutative, so the machine state after every phase — and therefore every
// counter, histogram and reply the run produces — is identical to the
// single-threaded stepper no matter how many workers run or how the runtime
// schedules them.  DESIGN.md §6 carries the full argument.
//
// A Pool spawns its workers fresh on every Run and joins them before
// returning: there are no persistent goroutines to leak, no Close to
// forget, and a Workers=8 pool stepped once costs eight goroutine starts,
// not eight idle spinners for the life of the simulation.  Worker 0 runs on
// the caller's goroutine, so engine phases that must stay single-threaded
// (injector callbacks, delivery commits) can simply be guarded with
// `if w == 0` and still satisfy APIs that assume the simulator's own
// goroutine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs a function on a fixed set of workers.
type Pool struct{ workers int }

// NewPool returns a pool of the given width; widths below 1 clamp to 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(w) for every worker index w in [0, Workers) concurrently
// and returns when all have finished.  fn(0) runs on the calling goroutine.
func (p *Pool) Run(fn func(w int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// Barrier is a reusable phase barrier for exactly n participants: every
// caller of Sync blocks until all n have arrived, then all proceed.  It is
// a counting (sense-via-phase-number) barrier: waiters spin briefly — phase
// gaps inside a simulated cycle are sub-microsecond — and fall back to
// yielding the processor, so oversubscribed pools make progress too.
type Barrier struct {
	n     int32
	spin  int
	count atomic.Int32
	phase atomic.Uint64
}

// NewBarrier returns a barrier for n participants (n ≥ 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		n = 1
	}
	b := &Barrier{n: int32(n), spin: spinLimit}
	if n > runtime.GOMAXPROCS(0) {
		// Oversubscribed: the stragglers this waiter is spinning for may
		// need this very processor to run, so spinning only delays them.
		b.spin = 0
	}
	return b
}

// spinLimit bounds the pure spin before a waiter starts yielding.
const spinLimit = 256

// Sync blocks until all n participants have called it for the current
// phase.  The phase counter never repeats, so a fast worker racing ahead
// into the next Sync cannot be confused with a slow one still leaving the
// last (no ABA, unlike a flipping sense bit with a reused counter).
func (b *Barrier) Sync() {
	if b.n == 1 {
		return
	}
	p := b.phase.Load()
	if b.count.Add(1) == b.n {
		// Last arriver: reset the count for the next phase, then open the
		// gate.  The order matters — the count must be ready before any
		// released waiter can add to it again.
		b.count.Store(0)
		b.phase.Add(1)
		return
	}
	for spins := 0; b.phase.Load() == p; spins++ {
		if spins >= b.spin {
			runtime.Gosched()
		}
	}
}

// Split partitions n work items into contiguous per-worker ranges,
// returning worker w's half-open slice [lo, hi).  The split is balanced
// (sizes differ by at most one) and purely arithmetic, so the assignment of
// items to workers is the same on every run — though, because items in
// different groups are independent, correctness never depends on it.
func Split(n, workers, w int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}
