// Package par is the deterministic barrier-phase worker pool the
// cycle-driven engines shard their per-cycle work across.
//
// The design target is bit-identical output, not scheduling freedom.  An
// engine splits each simulated cycle into phases whose work items are
// partitioned into conflict groups — items in different groups touch
// disjoint machine state — spreads whole groups across workers with Split,
// and separates phases with Barrier sync points.  Within a group the owning
// worker replays the exact serial processing order, and everything a group
// shares with the rest of the machine (fault-injector counters, memory
// module mutexes, per-worker stats shards merged after the step) is
// commutative, so the machine state after every phase — and therefore every
// counter, histogram and reply the run produces — is identical to the
// single-threaded stepper no matter how many workers run or how the runtime
// schedules them.  DESIGN.md §6 carries the full argument.
//
// A Pool's workers are persistent: Start parks Workers-1 goroutines on
// per-worker wake channels (the Go runtime parks a blocked channel receive
// on a futex, so an idle pool costs nothing), each Run hands them the same
// function value and joins them on a reused WaitGroup, and Stop retires
// them.  The engines bracket their Run/Drain loops with Start/Stop, so a
// million-cycle run costs Workers-1 goroutine starts total — not per cycle —
// and the per-cycle dispatch (channel send, channel receive, WaitGroup
// add/wait) allocates nothing.  Start/Stop nest by refcount.  A pool that
// was never started still works: Run falls back to spawning its workers for
// that one call, so a bare Step outside an engine Run stays correct, just
// slower.  Worker 0 always runs on the caller's goroutine, so engine phases
// that must stay single-threaded (injector callbacks, delivery commits) can
// simply be guarded with `if w == 0` and still satisfy APIs that assume the
// simulator's own goroutine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs a function on a fixed set of workers.
type Pool struct {
	workers int
	refs    int // Start/Stop nesting depth; managed by the owning goroutine
	fn      func(w int)
	wg      sync.WaitGroup
	wake    []chan struct{}
	stop    chan struct{}
}

// NewPool returns a pool of the given width; widths below 1 clamp to 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Started reports whether persistent workers are currently parked.
func (p *Pool) Started() bool { return p.refs > 0 }

// Start spawns the pool's persistent workers (idempotent by refcount: each
// Start must be matched by one Stop, and only the outermost pair spawns and
// retires goroutines).  Start and Stop must be called from the goroutine
// that calls Run — the same single-threaded discipline Run itself requires.
func (p *Pool) Start() {
	if p.workers == 1 {
		return
	}
	p.refs++
	if p.refs > 1 {
		return
	}
	p.stop = make(chan struct{})
	if p.wake == nil {
		p.wake = make([]chan struct{}, p.workers)
		for w := 1; w < p.workers; w++ {
			p.wake[w] = make(chan struct{}, 1)
		}
	}
	for w := 1; w < p.workers; w++ {
		go p.worker(w, p.wake[w], p.stop)
	}
}

// Stop retires the persistent workers started by the matching Start.  Any
// Run in flight has already joined its workers, so the workers are parked
// and exit on the closed stop channel.
func (p *Pool) Stop() {
	if p.workers == 1 || p.refs == 0 {
		return
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	close(p.stop)
	p.stop = nil
}

func (p *Pool) worker(w int, wake <-chan struct{}, stop <-chan struct{}) {
	for {
		select {
		case <-wake:
			p.fn(w)
			p.wg.Done()
		case <-stop:
			return
		}
	}
}

// Run executes fn(w) for every worker index w in [0, Workers) concurrently
// and returns when all have finished.  fn(0) runs on the calling goroutine.
// Between Start and Stop the persistent workers are dispatched — the wake
// send happens-before the worker's read of fn, and the WaitGroup join
// happens-after its call — and the dispatch allocates nothing.  Outside
// Start/Stop the workers are spawned fresh for this one call.
func (p *Pool) Run(fn func(w int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	if p.refs == 0 {
		var wg sync.WaitGroup
		wg.Add(p.workers - 1)
		for w := 1; w < p.workers; w++ {
			go func(w int) {
				defer wg.Done()
				fn(w)
			}(w)
		}
		fn(0)
		wg.Wait()
		return
	}
	p.fn = fn
	p.wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		p.wake[w] <- struct{}{}
	}
	fn(0)
	p.wg.Wait()
	p.fn = nil
}

// Barrier is a reusable phase barrier for exactly n participants: every
// caller of Sync blocks until all n have arrived, then all proceed.  Sync
// takes the caller's worker index so implementations can keep per-worker
// local state (a local sense, dissemination round flags) that is read and
// written without cross-worker contention.
//
// All implementations re-evaluate their spin-versus-yield policy against
// runtime.GOMAXPROCS on every barrier episode (not once at construction):
// when the barrier is wider than the processors available, the stragglers a
// waiter is spinning for may need the waiter's own processor to run, so
// waiters yield immediately instead of burning the spin budget.
type Barrier interface {
	// Sync blocks worker w until all n participants have arrived at the
	// current phase.  Each participant must pass its own fixed index in
	// [0, n); no index may be used by two goroutines concurrently.
	Sync(w int)
}

// NewBarrier returns a barrier for n participants (n ≥ 1): a no-op for one
// participant, a cache-line-padded central sense-reversing barrier for the
// narrow widths the engines actually run (arrival is one fetch-and-add on a
// line nothing else shares, release is one store every waiter reads), and a
// dissemination barrier past 8 participants, where ⌈log₂ n⌉ pairwise
// rounds beat n arrivals serialized on one counter line.
func NewBarrier(n int) Barrier {
	switch {
	case n <= 1:
		return noopBarrier{}
	case n <= 8:
		return NewSenseBarrier(n)
	default:
		return NewDisseminationBarrier(n)
	}
}

// noopBarrier synchronizes a single participant: nothing to wait for.
type noopBarrier struct{}

func (noopBarrier) Sync(int) {}

type paddedInt32 struct {
	v atomic.Int32
	_ [CacheLine - 4]byte
}

type paddedUint32 struct {
	v uint32
	_ [CacheLine - 4]byte
}

type paddedUint64 struct {
	v atomic.Uint64
	_ [CacheLine - 8]byte
}

// CountingBarrier is the spawn-era barrier kept for comparison: a shared
// count and a monotonically increasing phase number on adjacent fields.
// Every arrival and every release-wait hits the same cache line, so it
// serializes on the coherence protocol as width grows — the baseline the
// BenchmarkBarrier microbenchmark measures the padded barriers against.
type CountingBarrier struct {
	SpinPolicy
	count atomic.Int32
	phase atomic.Uint64
}

// NewCountingBarrier returns a counting barrier for n participants (n ≥ 1).
func NewCountingBarrier(n int) *CountingBarrier {
	if n < 1 {
		n = 1
	}
	b := &CountingBarrier{}
	b.Init(n)
	return b
}

// Sync blocks until all n participants have called it for the current
// phase.  The phase counter never repeats, so a fast worker racing ahead
// into the next Sync cannot be confused with a slow one still leaving the
// last.
func (b *CountingBarrier) Sync(int) {
	if b.n == 1 {
		return
	}
	p := b.phase.Load()
	if b.count.Add(1) == b.n {
		// Last arriver: refresh the spin policy, reset the count for the
		// next phase, then open the gate.  The order matters — the count
		// must be ready before any released waiter can add to it again.
		b.Refresh()
		b.count.Store(0)
		b.phase.Add(1)
		return
	}
	spin := b.SpinBudget()
	for spins := int32(0); b.phase.Load() == p; spins++ {
		if spins >= spin {
			runtime.Gosched()
		}
	}
}

// SenseBarrier is a central sense-reversing barrier with cache-line-padded
// state: the arrival count, the release sense, and each worker's local
// sense all live on their own lines, so arrivals contend only on the count
// and release waiters spin on a line that is written exactly once per
// episode.  A straggler still waiting for the current release blocks the
// count from refilling (it has not arrived at the next episode), so the
// sense cannot flip back underneath it — the classic argument for why a
// one-bit sense needs no ABA-proof phase number.
type SenseBarrier struct {
	SpinPolicy
	_     [CacheLine]byte
	count paddedInt32
	sense paddedUint32 // written by the last arriver, read by waiters
	local []paddedUint32
}

// NewSenseBarrier returns a sense-reversing barrier for n participants
// (n ≥ 1).
func NewSenseBarrier(n int) *SenseBarrier {
	if n < 1 {
		n = 1
	}
	b := &SenseBarrier{local: make([]paddedUint32, n)}
	b.Init(n)
	return b
}

// Sync blocks worker w until all n participants have arrived.
func (b *SenseBarrier) Sync(w int) {
	if b.n == 1 {
		return
	}
	s := b.local[w].v ^ 1
	b.local[w].v = s
	if b.count.v.Add(1) == b.n {
		b.Refresh()
		b.count.v.Store(0)
		atomic.StoreUint32(&b.sense.v, s)
		return
	}
	spin := b.SpinBudget()
	for spins := int32(0); atomic.LoadUint32(&b.sense.v) != s; spins++ {
		if spins >= spin {
			runtime.Gosched()
		}
	}
}

// DisseminationBarrier synchronizes n participants in ⌈log₂ n⌉ pairwise
// rounds: in round r worker w signals worker (w+2ʳ) mod n and waits for the
// signal from (w−2ʳ) mod n.  After the last round every worker transitively
// depends on every other, with no central counter to serialize on.  Each
// flag is written by exactly one peer and read by exactly one owner, on its
// own cache line; flags carry the owner's monotonically increasing episode
// number (a waiter proceeds once its flag reaches the episode it is in), so
// a fast worker signalling two episodes ahead can never be mistaken for the
// current round's peer.
type DisseminationBarrier struct {
	SpinPolicy
	rounds int
	flags  [][]paddedUint64 // [worker][round], written by the round-r peer
	phase  []paddedUint64   // per-worker episode number, owner-only
}

// NewDisseminationBarrier returns a dissemination barrier for n
// participants (n ≥ 1).
func NewDisseminationBarrier(n int) *DisseminationBarrier {
	if n < 1 {
		n = 1
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &DisseminationBarrier{rounds: rounds}
	b.Init(n)
	b.flags = make([][]paddedUint64, n)
	for w := range b.flags {
		b.flags[w] = make([]paddedUint64, rounds)
	}
	b.phase = make([]paddedUint64, n)
	return b
}

// Sync blocks worker w until all n participants have arrived.
func (b *DisseminationBarrier) Sync(w int) {
	if b.n == 1 {
		return
	}
	if w == 0 {
		b.Refresh()
	}
	n := int(b.n)
	p := b.phase[w].v.Load() + 1
	spin := b.SpinBudget()
	for r := 0; r < b.rounds; r++ {
		peer := w + 1<<r
		if peer >= n {
			peer -= n
		}
		b.flags[peer][r].v.Store(p)
		for spins := int32(0); b.flags[w][r].v.Load() < p; spins++ {
			if spins >= spin {
				runtime.Gosched()
			}
		}
	}
	b.phase[w].v.Store(p)
}

// Split partitions n work items into contiguous per-worker ranges,
// returning worker w's half-open slice [lo, hi).  The split is balanced
// (sizes differ by at most one) and purely arithmetic, so the assignment of
// items to workers is the same on every run — though, because items in
// different groups are independent, correctness never depends on it.
func Split(n, workers, w int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}
