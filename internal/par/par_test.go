package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryWorkerOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		seen := make([]atomic.Int32, workers)
		p.Run(func(w int) { seen[w].Add(1) })
		for w := range seen {
			if got := seen[w].Load(); got != 1 {
				t.Fatalf("workers=%d: worker %d ran %d times", workers, w, got)
			}
		}
	}
}

func TestPoolClampsWidth(t *testing.T) {
	if got := NewPool(0).Workers(); got != 1 {
		t.Fatalf("NewPool(0).Workers() = %d, want 1", got)
	}
	if got := NewPool(-3).Workers(); got != 1 {
		t.Fatalf("NewPool(-3).Workers() = %d, want 1", got)
	}
}

func TestPoolWorkerZeroOnCaller(t *testing.T) {
	// Phases guarded with `if w == 0` must run on the caller's goroutine so
	// injector callbacks see a single consistent goroutine; verify via a
	// plain (non-atomic) write that the race detector would flag otherwise.
	p := NewPool(4)
	ran := false
	p.Run(func(w int) {
		if w == 0 {
			ran = true
		}
	})
	if !ran {
		t.Fatal("worker 0 did not run")
	}
}

// TestBarrierPhases drives many barrier rounds and asserts no worker ever
// observes a straggler from an earlier phase — the property the engines'
// per-stage synchronization rests on.
func TestBarrierPhases(t *testing.T) {
	const workers = 4
	const rounds = 2000
	p := NewPool(workers)
	b := NewBarrier(workers)
	var counters [workers]atomic.Int64
	p.Run(func(w int) {
		for r := 0; r < rounds; r++ {
			counters[w].Add(1)
			b.Sync()
			// After the barrier every worker must have completed round r.
			for i := range counters {
				if got := counters[i].Load(); got < int64(r+1) {
					t.Errorf("round %d: worker %d at %d after barrier", r, i, got)
					return
				}
			}
			b.Sync()
		}
	})
}

func TestBarrierSingleParticipant(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Sync() // must not block
	}
}

func TestSplitCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 1024} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			covered := make([]int, n)
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Split(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: worker %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				prevHi = hi
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: coverage ends at %d", n, workers, prevHi)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: item %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}
