package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryWorkerOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		seen := make([]atomic.Int32, workers)
		p.Run(func(w int) { seen[w].Add(1) })
		for w := range seen {
			if got := seen[w].Load(); got != 1 {
				t.Fatalf("workers=%d: worker %d ran %d times", workers, w, got)
			}
		}
	}
}

func TestPoolClampsWidth(t *testing.T) {
	if got := NewPool(0).Workers(); got != 1 {
		t.Fatalf("NewPool(0).Workers() = %d, want 1", got)
	}
	if got := NewPool(-3).Workers(); got != 1 {
		t.Fatalf("NewPool(-3).Workers() = %d, want 1", got)
	}
}

func TestPoolWorkerZeroOnCaller(t *testing.T) {
	// Phases guarded with `if w == 0` must run on the caller's goroutine so
	// injector callbacks see a single consistent goroutine; verify via a
	// plain (non-atomic) write that the race detector would flag otherwise.
	p := NewPool(4)
	ran := false
	p.Run(func(w int) {
		if w == 0 {
			ran = true
		}
	})
	if !ran {
		t.Fatal("worker 0 did not run")
	}
}

// TestPoolPersistentWorkers drives many Runs through started workers and
// checks every dispatch reaches every worker exactly once — the engine
// cycle loop in miniature.
func TestPoolPersistentWorkers(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		p := NewPool(workers)
		p.Start()
		if !p.Started() {
			t.Fatalf("workers=%d: pool not started after Start", workers)
		}
		seen := make([]atomic.Int32, workers)
		const runs = 500
		for i := 0; i < runs; i++ {
			p.Run(func(w int) { seen[w].Add(1) })
		}
		p.Stop()
		if p.Started() {
			t.Fatalf("workers=%d: pool still started after Stop", workers)
		}
		for w := range seen {
			if got := seen[w].Load(); got != runs {
				t.Fatalf("workers=%d: worker %d ran %d times, want %d", workers, w, got, runs)
			}
		}
		// A stopped pool must still work via the spawn fallback.
		p.Run(func(w int) { seen[w].Add(1) })
		for w := range seen {
			if got := seen[w].Load(); got != runs+1 {
				t.Fatalf("workers=%d: worker %d at %d after fallback Run, want %d", workers, w, got, runs+1)
			}
		}
	}
}

// TestPoolStartStopNesting checks Start/Stop pair by refcount: inner pairs
// neither respawn nor retire the workers.
func TestPoolStartStopNesting(t *testing.T) {
	p := NewPool(4)
	p.Start()
	p.Start()
	p.Stop()
	if !p.Started() {
		t.Fatal("inner Stop retired the workers")
	}
	var n atomic.Int32
	p.Run(func(int) { n.Add(1) })
	if got := n.Load(); got != 4 {
		t.Fatalf("ran %d workers, want 4", got)
	}
	p.Stop()
	if p.Started() {
		t.Fatal("outer Stop did not retire the workers")
	}
}

// TestPoolRestart checks a pool can be started again after a full stop.
func TestPoolRestart(t *testing.T) {
	p := NewPool(3)
	for round := 0; round < 3; round++ {
		p.Start()
		var n atomic.Int32
		p.Run(func(int) { n.Add(1) })
		p.Stop()
		if got := n.Load(); got != 3 {
			t.Fatalf("round %d: ran %d workers, want 3", round, got)
		}
	}
}

// TestPoolRunAllocFree asserts the steady-state persistent dispatch
// allocates nothing: the zero-allocation cycle path rests on it.
func TestPoolRunAllocFree(t *testing.T) {
	if runtime.GOMAXPROCS(0) == 1 {
		// With one processor every dispatch parks the caller and wakes it
		// again; allocation accounting stays valid but the test is slow.
		t.Log("GOMAXPROCS=1: dispatch is fully serialized")
	}
	p := NewPool(4)
	p.Start()
	defer p.Stop()
	b := NewBarrier(4)
	fn := func(w int) { b.Sync(w) }
	p.Run(fn) // warm the wake path
	if avg := testing.AllocsPerRun(100, func() { p.Run(fn) }); avg != 0 {
		t.Fatalf("persistent Run allocates %.1f objects per dispatch, want 0", avg)
	}
}

func barrierKinds(n int) map[string]Barrier {
	return map[string]Barrier{
		"auto":          NewBarrier(n),
		"counting":      NewCountingBarrier(n),
		"sense":         NewSenseBarrier(n),
		"dissemination": NewDisseminationBarrier(n),
	}
}

// TestBarrierPhases drives many barrier rounds at widths 1–16 for every
// implementation and asserts no worker ever observes a straggler from an
// earlier phase — the property the engines' per-stage synchronization
// rests on.
func TestBarrierPhases(t *testing.T) {
	for workers := 1; workers <= 16; workers++ {
		rounds := 2000
		if workers > 8 {
			rounds = 500 // oversubscribed on small hosts; keep the test quick
		}
		for name, b := range barrierKinds(workers) {
			p := NewPool(workers)
			p.Start()
			counters := make([]atomic.Int64, workers)
			p.Run(func(w int) {
				for r := 0; r < rounds; r++ {
					counters[w].Add(1)
					b.Sync(w)
					// After the barrier every worker must have completed round r.
					for i := range counters {
						if got := counters[i].Load(); got < int64(r+1) {
							t.Errorf("%s width %d round %d: worker %d at %d after barrier", name, workers, r, i, got)
							return
						}
					}
					b.Sync(w)
				}
			})
			p.Stop()
			if t.Failed() {
				return
			}
		}
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	for name, b := range barrierKinds(1) {
		for i := 0; i < 10; i++ {
			b.Sync(0) // must not block
		}
		_ = name
	}
}

// TestBarrierSpinPolicyTracksGOMAXPROCS pins the fix for the stale spin
// policy: the barrier must re-evaluate GOMAXPROCS on Sync, not snapshot it
// at construction.
func TestBarrierSpinPolicyTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	const width = 4
	runtime.GOMAXPROCS(1) // oversubscribed: budget must be 0
	for name, b := range barrierKinds(width) {
		pol, ok := b.(interface{ SpinBudget() int32 })
		if !ok {
			t.Fatalf("%s: no spin policy", name)
		}
		if got := pol.SpinBudget(); got != 0 {
			t.Fatalf("%s built under GOMAXPROCS(1): spin budget %d, want 0", name, got)
		}
		runtime.GOMAXPROCS(width) // now fully provisioned…
		p := NewPool(width)
		p.Start()
		p.Run(func(w int) { b.Sync(w) }) // …one episode re-evaluates
		p.Stop()
		if got := pol.SpinBudget(); got != spinLimit {
			t.Fatalf("%s after GOMAXPROCS(%d) and one Sync: spin budget %d, want %d", name, width, got, spinLimit)
		}
		runtime.GOMAXPROCS(1)
		p.Start()
		p.Run(func(w int) { b.Sync(w) })
		p.Stop()
		if got := pol.SpinBudget(); got != 0 {
			t.Fatalf("%s after GOMAXPROCS(1) and one Sync: spin budget %d, want 0", name, got)
		}
	}
}

func TestSplitCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 1024} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			covered := make([]int, n)
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Split(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: worker %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				prevHi = hi
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: coverage ends at %d", n, workers, prevHi)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: item %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestSplitEdgeCases pins the boundary behaviour the engines rely on:
// more workers than items leaves the extra workers with empty ranges,
// zero items gives every worker an empty range, and a single item lands
// on exactly one worker.
func TestSplitEdgeCases(t *testing.T) {
	// workers > n: every range is well-formed, sizes are 0 or 1.
	for w := 0; w < 8; w++ {
		lo, hi := Split(3, 8, w)
		if lo > hi || hi-lo > 1 {
			t.Fatalf("Split(3,8,%d) = [%d,%d): malformed", w, lo, hi)
		}
	}
	// n = 0: all ranges empty.
	for w := 0; w < 4; w++ {
		if lo, hi := Split(0, 4, w); lo != 0 || hi != 0 {
			t.Fatalf("Split(0,4,%d) = [%d,%d), want [0,0)", w, lo, hi)
		}
	}
	// n = 1: exactly one worker owns the item.
	owners := 0
	for w := 0; w < 5; w++ {
		if lo, hi := Split(1, 5, w); hi > lo {
			owners++
			if lo != 0 || hi != 1 {
				t.Fatalf("Split(1,5,%d) = [%d,%d)", w, lo, hi)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("single item owned by %d workers, want 1", owners)
	}
	// workers = 1 spans everything.
	if lo, hi := Split(17, 1, 0); lo != 0 || hi != 17 {
		t.Fatalf("Split(17,1,0) = [%d,%d), want [0,17)", lo, hi)
	}
}

// BenchmarkBarrier compares the three barrier implementations at the
// widths the engines run (the E15 microbenchmark; `make parbench`).  Each
// op is one full barrier episode across all workers.
func BenchmarkBarrier(b *testing.B) {
	for _, workers := range []int{2, 4, 8, 16} {
		kinds := []struct {
			name string
			bar  Barrier
		}{
			{"counting", NewCountingBarrier(workers)},
			{"sense", NewSenseBarrier(workers)},
			{"dissemination", NewDisseminationBarrier(workers)},
		}
		for _, k := range kinds {
			b.Run(fmt.Sprintf("%s/w%d", k.name, workers), func(b *testing.B) {
				p := NewPool(workers)
				p.Start()
				defer p.Stop()
				b.ResetTimer()
				p.Run(func(w int) {
					for i := 0; i < b.N; i++ {
						k.bar.Sync(w)
					}
				})
			})
		}
	}
}
