package asyncnet

import (
	"sort"
	"sync"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// TestHotspotCountersMatchSerial hammers one address from every port and
// checks the lock-free instrumentation against the serial ground truth of
// Lemma 4.1: N·R fetch-and-adds of 1 must produce replies forming a
// permutation of the serial prefix sums 0..N·R−1, a final cell of N·R, and
// Snapshot() totals consistent with that — exactly N·R replies recorded in
// the round-trip histogram, and a combine count no larger than the requests
// that could have been absorbed.  Run under -race this also exercises the
// atomic counters, histogram buckets, and high-water marks from every
// switch goroutine at once.
func TestHotspotCountersMatchSerial(t *testing.T) {
	const (
		procs  = 16
		reqs   = 256 // per port
		target = word.Addr(7)
	)
	net := New(Config{Procs: procs, Combining: true, Window: 16})
	defer net.Close()

	got := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			vals := make([]int64, 0, reqs)
			handles := make([]*Pending, 0, port.window)
			for i := 0; i < reqs; i++ {
				handles = append(handles, port.RMWAsync(target, rmw.FetchAdd(1)))
				if len(handles) == port.window {
					for _, h := range handles {
						vals = append(vals, h.Wait().Val)
					}
					handles = handles[:0]
				}
			}
			for _, h := range handles {
				vals = append(vals, h.Wait().Val)
			}
			got[p] = vals
		}(p)
	}
	wg.Wait()

	// Serial ground truth: the same N·R mappings applied consecutively.
	total := procs * reqs
	ops := make([]rmw.Mapping, total)
	for i := range ops {
		ops[i] = rmw.FetchAdd(1)
	}
	serial, final := core.SerialReplies(word.W(0), ops)

	if mem := net.Memory().Peek(target); mem != final {
		t.Fatalf("final cell = %d, serial ground truth %d", mem.Val, final.Val)
	}

	var all []int64
	for _, vals := range got {
		all = append(all, vals...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != total {
		t.Fatalf("collected %d replies, want %d", len(all), total)
	}
	for i, v := range all {
		if v != serial[i].Val {
			t.Fatalf("sorted reply %d = %d, serial ground truth %d", i, v, serial[i].Val)
		}
	}

	snap := net.Snapshot()
	if snap.Engine != "asyncnet" {
		t.Fatalf("Snapshot engine = %q", snap.Engine)
	}
	if n := snap.Counters["replies"]; n != int64(total) {
		t.Fatalf("snapshot replies = %d, want %d", n, total)
	}
	h, ok := snap.Histograms["port_rtt_ns"]
	if !ok {
		t.Fatal("snapshot missing port_rtt_ns histogram")
	}
	if h.Count != int64(total) {
		t.Fatalf("rtt histogram count = %d, want %d", h.Count, total)
	}
	if h.Sum <= 0 || h.P50 < 0 || h.P99 < h.P50 {
		t.Fatalf("degenerate rtt histogram: sum=%d p50=%g p99=%g", h.Sum, h.P50, h.P99)
	}
	// Every combine removes one request from the network but never a reply
	// from a port; at most total−1 requests can be absorbed into one.
	if c := snap.Counters["combines"]; c < 0 || c >= int64(total) {
		t.Fatalf("snapshot combines = %d, want within [0,%d)", c, total)
	}
	// A hot-spot run through a combining network at this intensity must
	// actually combine; zero would mean the counter (or the combining
	// path) is disconnected.
	if net.Combines() == 0 {
		t.Fatal("no combines recorded on an all-ports hot-spot run")
	}
	// The per-stage batch high-water marks were observed by live switch
	// goroutines; at least the first stage must have batched something.
	if g := snap.Gauges["stage0_batch_max"]; g < 1 {
		t.Fatalf("stage0_batch_max = %d, want ≥ 1", g)
	}
}
