package asyncnet

import (
	"sort"
	"sync"
	"testing"

	"combining/internal/core"
	"combining/internal/faults"
	"combining/internal/rmw"
	"combining/internal/word"
)

// runMinimalChanCap drives a hot spot through the goroutine engine with
// every channel bounded at one slot — the configuration a request-blocks-
// reply cycle would deadlock without the service-while-blocked discipline
// — and checks the replies against core.SerialReplies.
func runMinimalChanCap(t *testing.T, procs, reqs int, plan *faults.Plan) *Net {
	t.Helper()
	const target = word.Addr(7)
	net := New(Config{Procs: procs, Combining: true, Window: 4, ChanCap: 1, Faults: plan})
	t.Cleanup(net.Close)

	got := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			vals := make([]int64, 0, reqs)
			handles := make([]*Pending, 0, port.window)
			for i := 0; i < reqs; i++ {
				handles = append(handles, port.RMWAsync(target, rmw.FetchAdd(1)))
				if len(handles) == port.window {
					for _, h := range handles {
						vals = append(vals, h.Wait().Val)
					}
					handles = handles[:0]
				}
			}
			for _, h := range handles {
				vals = append(vals, h.Wait().Val)
			}
			got[p] = vals
		}(p)
	}
	wg.Wait()

	total := procs * reqs
	ops := make([]rmw.Mapping, total)
	for i := range ops {
		ops[i] = rmw.FetchAdd(1)
	}
	serial, final := core.SerialReplies(word.W(0), ops)
	if mem := net.Memory().Peek(target); mem != final {
		t.Fatalf("final cell = %d, serial ground truth %d", mem.Val, final.Val)
	}
	var all []int64
	for _, vals := range got {
		all = append(all, vals...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != total {
		t.Fatalf("collected %d replies, want %d", len(all), total)
	}
	for i, v := range all {
		if v != serial[i].Val {
			t.Fatalf("sorted reply %d = %d, serial ground truth %d", i, v, serial[i].Val)
		}
	}
	return net
}

// TestMinimalChanCapHotspot: the 64-port hot-spot soak at ChanCap=1 must
// complete (deadlock-freedom), stay serially correct, and actually
// exercise backpressure — with 256 concurrent requests funnelling into
// one-slot channels, forward sends must have found full inboxes.
func TestMinimalChanCapHotspot(t *testing.T) {
	net := runMinimalChanCap(t, 64, 32, nil)
	snap := net.Snapshot()
	if snap.Counters["credit_stalls"] == 0 {
		t.Fatal("no credit stalls at ChanCap=1 under a 64-port hot spot — backpressure untested")
	}
	if snap.Counters["combines"] == 0 {
		t.Fatal("no combines on an all-ports hot spot")
	}
}

// TestMinimalChanCapUnderFaults composes the one-slot channels with the
// PR 2 fault plan: drops plus retransmits through fully saturated links,
// still exactly-once.
func TestMinimalChanCapUnderFaults(t *testing.T) {
	net := runMinimalChanCap(t, 16, 8, faults.Default(5))
	snap := net.Snapshot()
	if snap.Counters["faults_injected"] == 0 {
		t.Fatal("plan injected no faults")
	}
}
