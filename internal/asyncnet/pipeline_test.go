package asyncnet

import (
	"sync"
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// TestPipelinedOrdering: pipelined same-location requests from one port
// are served in issue order (condition M2 through the live network).
func TestPipelinedOrdering(t *testing.T) {
	net := New(Config{Procs: 4, Combining: true, Window: 4})
	defer net.Close()
	port := net.Port(1)
	const addr = word.Addr(6)

	h1 := port.RMWAsync(addr, rmw.StoreOf(1))
	h2 := port.RMWAsync(addr, rmw.StoreOf(2))
	h3 := port.RMWAsync(addr, rmw.Load{})
	if got := h3.Wait().Val; got != 2 {
		t.Fatalf("pipelined load saw %d, want 2", got)
	}
	h1.Wait()
	h2.Wait()
	if got := net.Memory().Peek(addr).Val; got != 2 {
		t.Fatalf("final %d, want 2", got)
	}
}

// TestPipelinedWindow: issuing past the window blocks on absorbing an
// outstanding reply rather than overflowing channels.
func TestPipelinedWindow(t *testing.T) {
	net := New(Config{Procs: 2, Combining: false, Window: 2})
	defer net.Close()
	port := net.Port(0)
	var handles []*Pending
	for i := 0; i < 20; i++ {
		handles = append(handles, port.RMWAsync(word.Addr(i%4), rmw.FetchAdd(1)))
	}
	for _, h := range handles {
		h.Wait()
	}
	var total int64
	for a := word.Addr(0); a < 4; a++ {
		total += net.Memory().Peek(a).Val
	}
	if total != 20 {
		t.Fatalf("total %d, want 20", total)
	}
}

// TestPipelinedFence: after Fence, every prior access has completed.
func TestPipelinedFence(t *testing.T) {
	net := New(Config{Procs: 2, Combining: true, Window: 8})
	defer net.Close()
	port := net.Port(0)
	for i := 0; i < 8; i++ {
		port.RMWAsync(word.Addr(i), rmw.StoreOf(int64(i+1)))
	}
	port.Fence()
	for i := 0; i < 8; i++ {
		if got := net.Memory().Peek(word.Addr(i)).Val; got != int64(i+1) {
			t.Fatalf("cell %d = %d after fence, want %d", i, got, i+1)
		}
	}
}

// TestPipelinedMixedWaits: out-of-order Wait calls retrieve the right
// replies via the buffer.
func TestPipelinedMixedWaits(t *testing.T) {
	net := New(Config{Procs: 2, Combining: true, Window: 8})
	defer net.Close()
	port := net.Port(0)
	const addr = word.Addr(3)
	var hs []*Pending
	for i := 0; i < 6; i++ {
		hs = append(hs, port.RMWAsync(addr, rmw.FetchAdd(1)))
	}
	// Wait in reverse order: replies must still map to the right
	// handles (reply i carries old value i by per-location FIFO).
	for i := 5; i >= 0; i-- {
		if got := hs[i].Wait().Val; got != int64(i) {
			t.Fatalf("handle %d got %d", i, got)
		}
	}
}

// TestPipelinedConcurrentPorts: pipelining on every port at once stays
// correct and combines.
func TestPipelinedConcurrentPorts(t *testing.T) {
	const n, per = 8, 40
	net := New(Config{Procs: n, Combining: true, Window: 4})
	defer net.Close()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			var hs []*Pending
			for i := 0; i < per; i++ {
				hs = append(hs, port.RMWAsync(0, rmw.FetchAdd(1)))
			}
			seen := map[int64]bool{}
			for _, h := range hs {
				v := h.Wait().Val
				if seen[v] {
					t.Errorf("port %d saw reply %d twice", p, v)
					return
				}
				seen[v] = true
			}
		}(p)
	}
	wg.Wait()
	if got := net.Memory().Peek(0).Val; got != n*per {
		t.Fatalf("final %d, want %d", got, n*per)
	}
}
