package asyncnet

import (
	"testing"

	"combining/internal/rmw"
	"combining/internal/word"
)

// TestFenceReclaimsAbandonedHandles is the leak regression: fire-and-forget
// RMWAsync+Fence cycles must not grow the reply buffer.  Before the fix,
// Fence parked every reply in p.buffered for handles that would never call
// Wait, so 10k fenced requests left 10k map entries.
func TestFenceReclaimsAbandonedHandles(t *testing.T) {
	net := New(Config{Procs: 4, Combining: true, Window: 8})
	defer net.Close()
	port := net.Port(0)
	const total = 10000
	for i := 0; i < total; i++ {
		port.RMWAsync(word.Addr(i%16), rmw.FetchAdd(1))
		if i%100 == 99 {
			port.Fence()
			if got := port.Buffered(); got != 0 {
				t.Fatalf("after fence %d: %d replies still buffered, want 0", i/100, got)
			}
		}
	}
	port.Fence()
	if got := port.Buffered(); got != 0 {
		t.Fatalf("final fence left %d buffered replies, want 0", got)
	}
	// Every fenced request still took effect.
	var sum int64
	for a := word.Addr(0); a < 16; a++ {
		sum += net.Memory().Peek(a).Val
	}
	if sum != total {
		t.Fatalf("memory sums to %d after fences, want %d", sum, total)
	}
}

// TestFenceMixedWithWaits: replies consumed by Wait before the fence are
// unaffected; only unwaited handles are reclaimed.
func TestFenceMixedWithWaits(t *testing.T) {
	net := New(Config{Procs: 2, Combining: true, Window: 8})
	defer net.Close()
	port := net.Port(0)
	const addr = word.Addr(5)
	h1 := port.RMWAsync(addr, rmw.FetchAdd(1))
	port.RMWAsync(addr, rmw.FetchAdd(1)) // abandoned
	h3 := port.RMWAsync(addr, rmw.FetchAdd(1))
	if got := h3.Wait().Val; got != 2 {
		t.Fatalf("h3 saw %d, want 2", got)
	}
	if got := h1.Wait().Val; got != 0 {
		t.Fatalf("h1 saw %d, want 0", got)
	}
	port.Fence()
	if got := port.Buffered(); got != 0 {
		t.Fatalf("%d buffered after fence, want 0", got)
	}
}

// TestWaitAfterFencePanics: the fence abandons unwaited handles loudly
// rather than deadlocking a later Wait whose reply was dropped.
func TestWaitAfterFencePanics(t *testing.T) {
	net := New(Config{Procs: 2, Combining: true, Window: 8})
	defer net.Close()
	port := net.Port(0)
	h := port.RMWAsync(3, rmw.FetchAdd(1))
	port.Fence()
	defer func() {
		if recover() == nil {
			t.Fatal("Wait on a fence-abandoned handle did not panic")
		}
	}()
	h.Wait()
}
