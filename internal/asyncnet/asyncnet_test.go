package asyncnet

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/word"
)

// TestAsyncFAASerialization (experiment E10, asynchronous engine): N ports
// hammer one cell with unit fetch-and-adds from real goroutines; the
// replies must be exactly {0, …, N·R−1} — a serialization witness — and
// the final value exact.
func TestAsyncFAASerialization(t *testing.T) {
	for _, combining := range []bool{false, true} {
		const n, rounds = 16, 50
		net := New(Config{Procs: n, Combining: combining})
		const hot = word.Addr(3)
		replies := make([][]int64, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				port := net.Port(p)
				for r := 0; r < rounds; r++ {
					replies[p] = append(replies[p], port.FetchAdd(hot, 1))
				}
			}()
		}
		wg.Wait()
		if got := net.Memory().Peek(hot).Val; got != n*rounds {
			t.Fatalf("combining=%v: final value %d, want %d", combining, got, n*rounds)
		}
		var all []int64
		for _, rs := range replies {
			all = append(all, rs...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i, v := range all {
			if v != int64(i) {
				t.Fatalf("combining=%v: replies are not a permutation of 0..%d (position %d holds %d)",
					combining, n*rounds-1, i, v)
			}
		}
		t.Logf("combining=%v: %d combines", combining, net.Combines())
		if !combining && net.Combines() != 0 {
			t.Errorf("combining disabled but %d combines happened", net.Combines())
		}
		net.Close()
	}
}

// TestAsyncCombiningOccurs checks the batching switch actually combines
// under a sustained hot burst.
func TestAsyncCombiningOccurs(t *testing.T) {
	const n, rounds = 32, 200
	net := New(Config{Procs: n, Combining: true})
	defer net.Close()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			port := net.Port(p)
			for r := 0; r < rounds; r++ {
				port.FetchAdd(0, 1)
			}
		}()
	}
	wg.Wait()
	if net.Memory().Peek(0).Val != n*rounds {
		t.Fatal("final value wrong")
	}
	t.Logf("combines: %d of %d requests", net.Combines(), n*rounds)
	if net.Combines() == 0 {
		t.Error("no combining under a 6400-request hot burst")
	}
}

// TestAsyncTheorem42 runs random mixed programs from concurrent goroutines
// and feeds the observed history to the Theorem 4.2 checker.
func TestAsyncTheorem42(t *testing.T) {
	const n, ops = 8, 60
	const addrSpace = 4
	for _, combining := range []bool{false, true} {
		net := New(Config{Procs: n, Combining: combining, AllowReversal: combining})
		hists := make([]*serial.History, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(p), 42))
				h := &serial.History{}
				port := net.Port(p)
				for i := 0; i < ops; i++ {
					addr := word.Addr(rng.IntN(addrSpace))
					var op rmw.Mapping
					switch rng.IntN(4) {
					case 0:
						op = rmw.Load{}
					case 1:
						op = rmw.StoreOf(int64(p*1000 + i))
					case 2:
						op = rmw.SwapOf(int64(p*1000 + i))
					default:
						op = rmw.FetchAdd(int64(rng.IntN(9) - 4))
					}
					old := port.RMW(addr, op)
					h.Add(serial.Op{
						Proc: word.ProcID(p), Seq: i, Addr: addr, Op: op, Reply: old,
					})
				}
				hists[p] = h
			}()
		}
		wg.Wait()
		merged := &serial.History{}
		for _, h := range hists {
			for _, op := range h.Ops() {
				merged.Add(op)
			}
		}
		final := make(map[word.Addr]word.Word)
		for a := word.Addr(0); a < addrSpace; a++ {
			final[a] = net.Memory().Peek(a)
		}
		if err := serial.CheckM2WithFinal(merged, nil, final); err != nil {
			t.Errorf("combining=%v: %v", combining, err)
		}
		net.Close()
	}
}

// TestAsyncFullEmpty runs a producer/consumer pair over a full/empty cell
// (Section 5.5 busy-waiting style: a failed conditional operation is
// retried).
func TestAsyncFullEmpty(t *testing.T) {
	const items = 100
	net := New(Config{Procs: 4, Combining: true})
	defer net.Close()
	const cell = word.Addr(2)

	var got []int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer on port 0
		defer wg.Done()
		port := net.Port(0)
		for i := int64(1); i <= items; i++ {
			for {
				old := port.RMW(cell, rmw.FEStoreIfClearSet(i))
				if old.Tag == word.Empty {
					break // store succeeded
				}
			}
		}
	}()
	go func() { // consumer on port 3
		defer wg.Done()
		port := net.Port(3)
		for len(got) < items {
			old := port.RMW(cell, rmw.FELoadIfSetClear())
			if old.Tag == word.Full {
				got = append(got, old.Val)
			}
		}
	}()
	wg.Wait()
	if len(got) != items {
		t.Fatalf("consumer got %d items, want %d", len(got), items)
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("item %d = %d, want %d (FIFO through the cell)", i, v, i+1)
		}
	}
	if tag := net.Memory().Peek(cell).Tag; tag != word.Empty {
		t.Errorf("cell ends %v, want empty", tag)
	}
}

// TestAsyncDistinctAddresses checks routing under concurrency: each port
// owns one address and must never see another port's values.
func TestAsyncDistinctAddresses(t *testing.T) {
	const n, ops = 16, 80
	net := New(Config{Procs: n, Combining: true})
	defer net.Close()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			port := net.Port(p)
			addr := word.Addr(p)
			last := int64(0)
			for i := 1; i <= ops; i++ {
				v := int64(p*10000 + i)
				old := port.RMW(addr, rmw.SwapOf(v))
				if old.Val != last {
					t.Errorf("port %d: swap returned %d, want %d", p, old.Val, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
}

func TestAsyncConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad proc count accepted")
		}
	}()
	New(Config{Procs: 3})
}
