package asyncnet

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"combining/internal/core"
	"combining/internal/faults"
	"combining/internal/rmw"
	"combining/internal/word"
)

// TestFaultSoakExactlyOnce runs the goroutine engine under a fault plan
// dropping ~1% of request and reply hops: every port hammers one shared
// counter and one private counter, and the run must still be exactly-once —
// the hot-spot replies a permutation of the serial prefix sums, the private
// replies in strict program order, no reply delivered twice.  Under -race
// this also exercises the injector and recovery counters from every switch
// goroutine at once.
func TestFaultSoakExactlyOnce(t *testing.T) {
	const (
		procs = 8
		reqs  = 96 // per port, per location
		hot   = word.Addr(7)
	)
	plan := &faults.Plan{Seed: 99, DropFwd: 0.01, DropRev: 0.01}
	net := New(Config{Procs: procs, Combining: true, Window: 8, Faults: plan})
	defer net.Close()

	hotVals := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			private := word.Addr(100 + p)
			vals := make([]int64, 0, reqs)
			for i := 0; i < reqs; i++ {
				h1 := port.RMWAsync(hot, rmw.FetchAdd(1))
				h2 := port.RMWAsync(private, rmw.FetchAdd(1))
				vals = append(vals, h1.Wait().Val)
				// Per-location program order must survive drops and
				// retransmits: the private counter sees this port alone.
				if got := h2.Wait().Val; got != int64(i) {
					t.Errorf("port %d private reply %d = %d, want %d", p, i, got, i)
					return
				}
			}
			hotVals[p] = vals
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	total := procs * reqs
	ops := make([]rmw.Mapping, total)
	for i := range ops {
		ops[i] = rmw.FetchAdd(1)
	}
	serial, final := core.SerialReplies(word.W(0), ops)
	if mem := net.Memory().Peek(hot); mem != final {
		t.Fatalf("hot cell = %d, serial ground truth %d", mem.Val, final.Val)
	}
	var all []int64
	for _, vals := range hotVals {
		all = append(all, vals...)
	}
	if len(all) != total {
		t.Fatalf("collected %d hot replies, want %d", len(all), total)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != serial[i].Val {
			t.Fatalf("sorted hot reply %d = %d, want serial %d (duplicate or lost RMW)", i, v, serial[i].Val)
		}
	}

	snap := net.Snapshot()
	if snap.Counters["faults_injected"] == 0 {
		t.Fatal("plan injected no faults; the soak proved nothing")
	}
	if snap.Counters["retries"] == 0 {
		t.Fatal("drops fired but no retransmissions were recorded")
	}
	if d := snap.Counters["drops_fwd"] + snap.Counters["drops_rev"]; d == 0 {
		t.Fatal("faults_injected nonzero but no drops counted")
	}
	if _, ok := snap.Histograms["recovery_latency_ns"]; !ok {
		t.Fatal("snapshot missing recovery_latency_ns histogram")
	}
}

// TestWaitErrAbandonedHandle checks the recoverable error path: WaitErr on
// a handle abandoned by Fence returns ErrAbandonedHandle, while the legacy
// Wait keeps its panic.
func TestWaitErrAbandonedHandle(t *testing.T) {
	net := New(Config{Procs: 2})
	defer net.Close()
	port := net.Port(0)

	h := port.RMWAsync(word.Addr(3), rmw.FetchAdd(1))
	port.Fence()

	if _, err := h.WaitErr(); !errors.Is(err, ErrAbandonedHandle) {
		t.Fatalf("WaitErr on abandoned handle = %v, want ErrAbandonedHandle", err)
	}

	defer func() {
		r := recover()
		if r != "asyncnet: Wait on a handle abandoned by Fence" {
			t.Fatalf("Wait panic = %v, want the legacy abandoned-handle panic", r)
		}
	}()
	h.Wait()
	t.Fatal("Wait returned on an abandoned handle")
}

// TestWaitErrDeliversValue checks WaitErr on a live handle behaves exactly
// like Wait, including out-of-order buffering.
func TestWaitErrDeliversValue(t *testing.T) {
	net := New(Config{Procs: 2})
	defer net.Close()
	port := net.Port(0)

	h1 := port.RMWAsync(word.Addr(5), rmw.FetchAdd(10))
	h2 := port.RMWAsync(word.Addr(6), rmw.FetchAdd(20))
	v2, err := h2.WaitErr()
	if err != nil || v2.Val != 0 {
		t.Fatalf("WaitErr(h2) = %d, %v; want 0, nil", v2.Val, err)
	}
	v1, err := h1.WaitErr()
	if err != nil || v1.Val != 0 {
		t.Fatalf("WaitErr(h1) = %d, %v; want 0, nil", v1.Val, err)
	}
	if got := net.Memory().Peek(word.Addr(5)); got.Val != 10 {
		t.Fatalf("cell 5 = %d, want 10", got.Val)
	}
}
