package asyncnet

import (
	"testing"

	"combining/internal/faults"
)

// Regression test for the orphan_replies drift: Snapshot used to hardcode
// the key to zero, so replies discarded at shutdown (fault-mode retransmit
// residue racing Close) were invisible.  Drive the reverse wiring directly:
// with the port's reply channel full and the net closed, a reverse send
// must report non-delivery and the discard must surface in the snapshot.
func TestOrphanRepliesCounted(t *testing.T) {
	// A zero plan injects nothing but enables the fault/recovery schema;
	// ChanCap 1 makes the reply channel trivially fillable.
	net := New(Config{Procs: 4, Window: 1, ChanCap: 1, Faults: &faults.Plan{Seed: 1}})

	// Stage-0 switch 0, input port 0 delivers to a processor's reply
	// channel (capacity 1): the first send lands, the second would block —
	// after Close it must be discarded and counted instead.
	sw := net.switches[0][0]
	sw.revOut[0](revMsg{})
	if got := net.orphans.Load(); got != 0 {
		t.Fatalf("orphans after deliverable send = %d, want 0", got)
	}

	net.Close()
	sw.revOut[0](revMsg{})
	sw.revOut[0](revMsg{})

	snap := net.Snapshot()
	got, ok := snap.Counters["orphan_replies"]
	if !ok {
		t.Fatal("snapshot missing orphan_replies")
	}
	if got != 2 {
		t.Fatalf("orphan_replies = %d, want 2", got)
	}
}
