// Package asyncnet is an asynchronous, goroutine-per-switch implementation
// of the combining Omega network: the same topology, routing and combining
// rules as the cycle-accurate simulator (internal/network), but driven by
// real concurrency — each switch is a process communicating over channels,
// and each processor port is a calling goroutine that blocks for its reply.
//
// Where the cycle simulator measures queueing phenomena, this engine
// exercises the combining mechanism under genuine nondeterministic
// interleavings (and under the race detector), and it lets real programs —
// the fetch-and-add coordination algorithms of internal/coord, the
// producer/consumer full/empty examples — run against a combining shared
// memory.  Dataflow synchronization replaces the global clock, exactly the
// move Section 6 makes for the parallel-prefix tree.
package asyncnet

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/memory"
	"combining/internal/rmw"
	"combining/internal/stats"
	"combining/internal/word"
)

// fwdMsg is a request in flight with its path header.
type fwdMsg struct {
	req  core.Request
	path []uint8
}

// revMsg is a reply in flight.
type revMsg struct {
	rep  core.Reply
	path []uint8
}

// Config parameterizes the asynchronous network.
type Config struct {
	// Procs is N, a power of two ≥ 2.
	Procs int
	// Combining enables request combining at the switches.
	Combining bool
	// AllowReversal enables the Section 5.1 order-reversal optimization.
	AllowReversal bool
	// Window bounds outstanding requests per port (default 8).
	Window int
	// ChanCap is the per-link channel capacity — the engine's bounded
	// queues.  Any capacity ≥ 1 is deadlock-free: a port or switch that
	// blocks sending forward services its reply side while it waits (the
	// service-while-blocked discipline, see sendFwd and the fwdOut
	// wiring in New), so the classic request-blocks-reply cycle cannot
	// close; blocked reverse sends descend strictly in stage and
	// terminate at the ports, which always consume.  The default is
	// Procs·Window — enough that sends rarely block at all (16× that
	// under a fault plan, because retransmit copies and suppressed
	// duplicates ride alongside live traffic); set ChanCap explicitly to
	// model tight link buffering.
	ChanCap int
	// Faults, when non-nil, arms deterministic fault injection (link
	// drops on both networks) plus the recovery layer: wall-clock
	// timeout/backoff retransmits at the ports and reply-cache
	// deduplication at the memory modules.  Drop decisions hash
	// (seed, site, id, attempt), so they are identical under any
	// goroutine schedule; stall windows are cycle-based and do not
	// apply to this clockless engine.
	Faults *faults.Plan
}

// Net is a running asynchronous combining network.
type Net struct {
	cfg      Config
	n, k     int
	mem      *memory.Array
	switches [][]*aswitch
	ports    []*Port

	done chan struct{}
	wg   sync.WaitGroup

	// combines and rejects count combine events and combines forfeited to
	// a full wait buffer.  Lock-free: every switch goroutine records
	// concurrently without serializing the combine hot path it measures.
	combines stats.Counter
	rejects  stats.Counter
	// issuedReqs counts requests issued at the ports (the cross-engine
	// "issued" counter; completions are rtt.Count()).
	issuedReqs stats.Counter
	// orphans counts replies discarded undeliverable at shutdown: a
	// reverse send found the net closed (fault-mode residue by the Close
	// contract).  Previously hardcoded to zero in Snapshot.
	orphans stats.Counter
	// rtt is the port round-trip latency histogram (nanoseconds),
	// recorded as each reply reaches its issuing port.
	rtt stats.Histogram
	// batchHW tracks, per stage, the largest simultaneously drained
	// request batch — the asynchronous analogue of switch queue depth.
	batchHW []stats.HighWater
	// creditStalls counts forward sends that found the downstream channel
	// full and fell into the service-while-blocked loop — the engine's
	// backpressure signal, analogous to the cycle engines' hold counters.
	creditStalls stats.Counter

	// flt answers fault decisions when the net runs under a plan.
	flt *faults.Injector
	// retries, duplicates and recovered count port-side retransmits,
	// suppressed duplicate replies, and requests completed on a
	// retransmitted attempt.
	retries    stats.Counter
	duplicates stats.Counter
	recovered  stats.Counter
	// recoveryLat is the extra round-trip latency paid by recovered
	// requests (nanoseconds, wall clock — this engine has no cycles).
	recoveryLat stats.Histogram
}

// aswitch is one switch process.
type aswitch struct {
	net          *Net
	stage, index int

	fwdIn [2]chan fwdMsg
	revIn chan revMsg // replies from the memory side

	// Downstream targets, wired by New.
	fwdOut [2]func(fwdMsg) // send toward memory
	revOut [2]func(revMsg) // send toward processors

	wait *core.WaitBuffer[arec]
	pol  core.Policy
}

// arec is the wait-buffer record with the second request's path.
type arec struct {
	core.Record
	pathSecond []uint8
}

// fwdReq projects a queued forward message to its request for the shared
// combine scan.
func fwdReq(m *fwdMsg) *core.Request { return &m.req }

// Port is one processor's connection to the network.  A Port may pipeline
// up to the configured window of outstanding requests (RMWAsync) and is
// not safe for concurrent use; run one goroutine per port.
type Port struct {
	net         *Net
	proc        word.ProcID
	ids         *word.IDGen
	reply       chan revMsg
	window      int
	outstanding int
	buffered    map[word.ReqID]word.Word
	// issued stamps each in-flight request for round-trip latency; under
	// a fault plan its membership doubles as the delivery ledger that
	// detects duplicate replies.
	issued map[word.ReqID]time.Time
	// epoch counts fences; a handle issued before the latest fence has
	// been abandoned and may no longer be waited on.
	epoch int

	// inflight is the fault-mode retransmit ledger: the exact request
	// (for re-sending), its attempt count, and the deadline after which
	// the port retransmits.
	inflight map[word.ReqID]*inflightReq
	// liveAddr counts in-flight requests per location.  Fault mode keeps
	// it at most one (the MSHR discipline): a drop plus retransmit could
	// otherwise reorder this port's own accesses to a location, breaking
	// M2 program order.
	liveAddr map[word.Addr]int
}

// inflightReq is one fault-mode in-flight request at a port.
type inflightReq struct {
	req      core.Request
	issuedAt time.Time
	deadline time.Time
}

// Validate reports whether the configuration is usable, with the
// documented zero-value defaults applied first; all config policing
// funnels through the engine core's Spec path (New panics with the same
// error).
func (c Config) Validate() error {
	return c.normalize()
}

// normalize applies the defaults in place and validates the result.
func (c *Config) normalize() error {
	if err := (engine.Spec{
		Engine:  "asyncnet",
		Procs:   c.Procs,
		PowerOf: 2,
		Banks:   1,
		Window:  c.Window,
	}).Validate(); err != nil {
		return err
	}
	if c.Window == 0 {
		c.Window = 8
	}
	if c.ChanCap <= 0 {
		c.ChanCap = c.Procs * c.Window
		if c.Faults != nil {
			c.ChanCap *= 16
		}
	}
	return nil
}

// New starts the network's switch goroutines.
func New(cfg Config) *Net {
	if err := cfg.normalize(); err != nil {
		panic(err)
	}
	n := cfg.Procs
	k := bits.TrailingZeros(uint(n))
	var memOpts []memory.Option
	if cfg.Faults != nil {
		memOpts = append(memOpts, memory.WithReplyCache())
	}
	net := &Net{
		cfg:     cfg,
		n:       n,
		k:       k,
		mem:     memory.NewArray(n, memOpts...),
		done:    make(chan struct{}),
		batchHW: make([]stats.HighWater, k),
	}
	if cfg.Faults != nil {
		net.flt = faults.NewInjector(*cfg.Faults)
	}
	waitCap := 0
	if cfg.Combining {
		waitCap = core.Unbounded
	}
	pol := core.Policy{AllowReversal: cfg.AllowReversal}

	net.switches = make([][]*aswitch, k)
	for s := range net.switches {
		net.switches[s] = make([]*aswitch, n/2)
		for i := range net.switches[s] {
			sw := &aswitch{
				net:   net,
				stage: s,
				index: i,
				revIn: make(chan revMsg, cfg.ChanCap),
				wait:  core.NewWaitBuffer[arec](waitCap),
				pol:   pol,
			}
			sw.fwdIn[0] = make(chan fwdMsg, cfg.ChanCap)
			sw.fwdIn[1] = make(chan fwdMsg, cfg.ChanCap)
			net.switches[s][i] = sw
		}
	}

	// Ports and their reply channels.
	net.ports = make([]*Port, n)
	for p := 0; p < n; p++ {
		net.ports[p] = &Port{
			net:      net,
			proc:     word.ProcID(p),
			ids:      word.Partition(p, n),
			reply:    make(chan revMsg, cfg.ChanCap),
			window:   cfg.Window,
			buffered: make(map[word.ReqID]word.Word),
			issued:   make(map[word.ReqID]time.Time),
			inflight: make(map[word.ReqID]*inflightReq),
			liveAddr: make(map[word.Addr]int),
		}
	}

	// Wire the topology: stage s switch i output line (2i+b) shuffles
	// into stage s+1; the last stage feeds memory inline and decombines
	// the reply in place (a self-send into its own bounded revIn could
	// block forever, since only this goroutine drains it).  Forward sends
	// service the sender's reply side while blocked, so every channel may
	// be as small as one slot without deadlock.  Every hop passes through
	// a fault hook; sends select against done so stale fault-mode
	// duplicates cannot wedge a switch at shutdown.
	for s := 0; s < k; s++ {
		for i := 0; i < n/2; i++ {
			sw := net.switches[s][i]
			for b := 0; b < 2; b++ {
				outLine := i<<1 | b
				if s == k-1 {
					mod := outLine
					site := faults.Site(k, mod, 0)
					sw.fwdOut[b] = func(m fwdMsg) {
						if net.flt != nil && net.flt.DropForward(site, m.req.ID, m.req.Attempt) {
							return
						}
						rep := net.mem.Module(mod).Do(m.req)
						if net.flt != nil && net.flt.DropReply(site, rep.ID, rep.Attempt) {
							return
						}
						// Decombine in place: this goroutine owns the wait
						// buffer, and routing through the bounded revIn
						// would be a self-send that deadlocks once full.
						sw.handleRev(revMsg{rep: rep, path: m.path})
					}
				} else {
					nextLine := net.shuffle(outLine)
					next := net.switches[s+1][nextLine>>1]
					inPort := uint8(nextLine & 1)
					target := next.fwdIn[nextLine&1]
					site := faults.Site(s+1, nextLine>>1, nextLine&1)
					sw.fwdOut[b] = func(m fwdMsg) {
						if net.flt != nil && net.flt.DropForward(site, m.req.ID, m.req.Attempt) {
							return
						}
						m.path = append(m.path, inPort)
						// Service-while-blocked: while the downstream inbox
						// is full, keep draining our own revIn.  A blocked
						// forward chain ascends the stages; every switch on
						// it stays live on its reply side, so replies drain,
						// wait records clear, and the head of the chain
						// eventually frees a slot — requests can never block
						// replies, the cycle that deadlocks bounded buffers.
						select {
						case target <- m:
							return
						default:
							net.creditStalls.Inc()
						}
						for {
							select {
							case target <- m:
								return
							case r := <-sw.revIn:
								sw.handleRev(r)
							case <-net.done:
								return
							}
						}
					}
				}
			}
			// Reverse wiring: replies leaving input port p of stage s.
			for p := 0; p < 2; p++ {
				inLine := i<<1 | p
				site := faults.Site(s, i, p)
				if s == 0 {
					port := net.ports[net.unshuffle(inLine)]
					sw.revOut[p] = func(r revMsg) {
						if net.flt != nil && net.flt.DropReply(site, r.rep.ID, r.rep.Attempt) {
							return
						}
						if !send(net.done, port.reply, r) {
							net.orphans.Inc()
						}
					}
				} else {
					prevLine := net.unshuffle(inLine)
					prev := net.switches[s-1][prevLine>>1]
					sw.revOut[p] = func(r revMsg) {
						if net.flt != nil && net.flt.DropReply(site, r.rep.ID, r.rep.Attempt) {
							return
						}
						if !send(net.done, prev.revIn, r) {
							net.orphans.Inc()
						}
					}
				}
			}
			net.wg.Add(1)
			go sw.run()
		}
	}
	return net
}

// send delivers a message unless the net is shutting down, reporting
// whether it was delivered: Close requires idle ports, so anything still
// in flight then is fault-mode residue (stale retransmit copies) that may
// be discarded — reverse-path callers count such discards as orphans.
func send[T any](done chan struct{}, ch chan T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-done:
		return false
	}
}

func (n *Net) shuffle(line int) int   { return (line<<1 | line>>(n.k-1)) & (n.n - 1) }
func (n *Net) unshuffle(line int) int { return (line>>1 | (line&1)<<(n.k-1)) & (n.n - 1) }

// Close shuts the switch goroutines down.  All ports must be idle (no
// outstanding requests).
func (n *Net) Close() {
	close(n.done)
	n.wg.Wait()
}

// Memory exposes the module array for initialization and inspection; use
// only while no requests are in flight.
func (n *Net) Memory() *memory.Array { return n.mem }

// Combines reports combine events so far; safe to call at any time.
func (n *Net) Combines() int64 { return n.combines.Load() }

// Snapshot captures the engine's instrumentation behind the shared
// cross-engine API.  Counters are safe to read while traffic is in flight;
// totals are exact once the ports are quiescent.
func (n *Net) Snapshot() stats.Snapshot {
	gauges := make(map[string]int64, len(n.batchHW))
	for s := range n.batchHW {
		gauges[fmt.Sprintf("stage%d_batch_max", s)] = n.batchHW[s].Load()
	}
	snap := stats.Snapshot{
		Engine: "asyncnet",
		// Replies == completed (rtt records one entry per live reply
		// absorbed at a port); cycles and the hop/hold counters are
		// structurally zero on this clockless goroutine engine.
		Counters: engine.Counters{
			Issued:         n.issuedReqs.Load(),
			Completed:      n.rtt.Count(),
			Replies:        n.rtt.Count(),
			Combines:       n.combines.Load(),
			CombineRejects: n.rejects.Load(),
			CreditStalls:   n.creditStalls.Load(),
		}.Map(),
		Gauges: gauges,
		Histograms: map[string]stats.HistogramSnapshot{
			"port_rtt_ns": n.rtt.Snapshot(),
		},
	}
	if n.flt != nil {
		// The shared fault-counter schema (see faults.AddValues); stall
		// and crash windows are cycle-denominated, so on this clockless
		// engine those keys (and the checkpoint/crash counters) are
		// structurally zero, and recovery latency is wall-clock rather
		// than cycles.
		faults.AddValues(&snap, faults.Values{
			Injected:   n.flt.Injected(),
			DropsFwd:   n.flt.DropsFwd.Load(),
			DropsRev:   n.flt.DropsRev.Load(),
			Retries:    n.retries.Load(),
			Duplicates: n.duplicates.Load(),
			Recovered:  n.recovered.Load(),
			DedupHits:  n.mem.TotalDedupHits(),
			Orphans:    n.orphans.Load(),
		})
		snap.Histograms["recovery_latency_ns"] = n.recoveryLat.Snapshot()
	}
	return snap
}

// Faults exposes the injector (nil on a healthy net).
func (n *Net) Faults() *faults.Injector { return n.flt }

// Port returns processor p's port.
func (n *Net) Port(p int) *Port { return n.ports[p] }

// RMW issues RMW(addr, op) through the network and blocks for the old
// value.
func (p *Port) RMW(addr word.Addr, op rmw.Mapping) word.Word {
	return p.RMWAsync(addr, op).Wait()
}

// Pending is a handle to an in-flight pipelined request.
type Pending struct {
	port  *Port
	id    word.ReqID
	epoch int
}

// absorb accounts a reply's arrival at the port — round-trip latency and
// window release — and returns its value.  Under a fault plan a reply
// whose request is no longer in the issued ledger is a duplicate (a
// retransmit raced its original); it is counted and suppressed, and live
// reports false.
func (p *Port) absorb(r revMsg) (v word.Word, live bool) {
	t0, ok := p.issued[r.rep.ID]
	if !ok {
		if p.net.flt == nil {
			// Unreachable on a healthy network: every reply matches an
			// in-flight request.
			p.outstanding--
			return r.rep.Val, true
		}
		p.net.duplicates.Inc()
		return word.Word{}, false
	}
	p.net.rtt.Record(time.Since(t0).Nanoseconds())
	delete(p.issued, r.rep.ID)
	if inf, ok := p.inflight[r.rep.ID]; ok {
		delete(p.inflight, r.rep.ID)
		if c := p.liveAddr[inf.req.Addr]; c <= 1 {
			delete(p.liveAddr, inf.req.Addr)
		} else {
			p.liveAddr[inf.req.Addr] = c - 1
		}
		if inf.req.Attempt > 0 {
			p.net.recovered.Inc()
			p.net.recoveryLat.Record(time.Since(inf.issuedAt).Nanoseconds())
		}
	}
	p.outstanding--
	return r.rep.Val, true
}

// recv blocks for the next reply.  Under a fault plan it also plays the
// processor's timeout role: while waiting it retransmits any in-flight
// request whose deadline has passed, with the plan's capped exponential
// backoff.
func (p *Port) recv() revMsg {
	if p.net.flt == nil {
		return <-p.reply
	}
	for {
		select {
		case r := <-p.reply:
			return r
		default:
		}
		timer := time.NewTimer(time.Until(p.nextDeadline()))
		select {
		case r := <-p.reply:
			timer.Stop()
			return r
		case <-timer.C:
			p.retransmitExpired()
		}
	}
}

// nextDeadline is the earliest retransmit deadline among in-flight
// requests, with a coarse fallback so an inconsistent ledger can't park
// the port forever.
func (p *Port) nextDeadline() time.Time {
	d := time.Now().Add(time.Second)
	for _, inf := range p.inflight {
		if inf.deadline.Before(d) {
			d = inf.deadline
		}
	}
	return d
}

// retransmitExpired re-sends every in-flight request past its deadline.
// The request keeps its id (the exactly-once key) and bumps Attempt, so
// it will never combine and draws fresh drop randomness at every hop.
// Sends are non-blocking: if the first-stage inbox is full the bumped
// deadline simply retries later.
func (p *Port) retransmitExpired() {
	now := time.Now()
	for _, inf := range p.inflight {
		if now.Before(inf.deadline) {
			continue
		}
		inf.req.Attempt++
		inf.deadline = now.Add(p.timeoutAfter(inf.req.Attempt + 1))
		p.net.retries.Inc()
		line := p.net.shuffle(int(p.proc))
		if p.net.flt.DropForward(faults.Site(0, line>>1, line&1), inf.req.ID, inf.req.Attempt) {
			continue
		}
		sw := p.net.switches[0][line>>1]
		select {
		case sw.fwdIn[line&1] <- fwdMsg{req: inf.req, path: []uint8{uint8(line & 1)}}:
		default:
		}
	}
}

// timeoutAfter converts the plan's cycle-denominated backoff schedule to
// wall-clock time for this clockless engine: one "cycle" is 50µs, so the
// default base timeout of 64 cycles is 3.2ms.
func (p *Port) timeoutAfter(attempt uint32) time.Duration {
	return time.Duration(p.net.flt.Timeout(attempt)) * 50 * time.Microsecond
}

// absorbToBuffer consumes one live reply and parks its value for the
// handle that will Wait on it, discarding fault-mode duplicates.
func (p *Port) absorbToBuffer() {
	r := p.recv()
	if v, live := p.absorb(r); live {
		p.buffered[r.rep.ID] = v
	}
}

// sendFwd injects a request into a first-stage switch, absorbing replies
// while the send blocks: a port waiting on a full inbox keeps consuming
// its reply channel, so the first-stage switch can always finish its
// reverse sends and get back to draining the very inbox the port is
// waiting on.  This is the processor end of the service-while-blocked
// discipline that makes ChanCap=1 deadlock-free.
func (p *Port) sendFwd(ch chan fwdMsg, m fwdMsg) {
	select {
	case ch <- m:
		return
	default:
		p.net.creditStalls.Inc()
	}
	for {
		select {
		case ch <- m:
			return
		case r := <-p.reply:
			if v, live := p.absorb(r); live {
				p.buffered[r.rep.ID] = v
			}
		case <-p.net.done:
			return
		}
	}
}

// RMWAsync issues the request without waiting for its reply — the
// processor-side pipelining of Section 3.2 (condition M2 still holds: the
// network is non-overtaking per location, but accesses to different
// locations may complete out of order, exactly the behaviour Collier's
// example exploits).  When the port's window is full, it first absorbs
// one outstanding reply.
func (p *Port) RMWAsync(addr word.Addr, op rmw.Mapping) *Pending {
	for p.outstanding >= p.window {
		p.absorbToBuffer()
	}
	if p.net.flt != nil {
		// MSHR discipline: at most one in-flight request per location,
		// or a retransmit could overtake this port's own later access to
		// the same cell and break M2 program order.
		for p.liveAddr[addr] > 0 {
			p.absorbToBuffer()
		}
	}
	id := p.ids.NextPartitioned(p.net.n)
	req := core.NewRequest(id, addr, op, p.proc)
	now := time.Now()
	p.issued[id] = now
	p.net.issuedReqs.Inc()
	line := p.net.shuffle(int(p.proc))
	sw := p.net.switches[0][line>>1]
	if p.net.flt != nil {
		req = req.WithReps()
		p.inflight[id] = &inflightReq{
			req:      req,
			issuedAt: now,
			deadline: now.Add(p.timeoutAfter(1)),
		}
		p.liveAddr[addr]++
		if !p.net.flt.DropForward(faults.Site(0, line>>1, line&1), id, 0) {
			p.sendFwd(sw.fwdIn[line&1], fwdMsg{req: req, path: []uint8{uint8(line & 1)}})
		}
	} else {
		p.sendFwd(sw.fwdIn[line&1], fwdMsg{req: req, path: []uint8{uint8(line & 1)}})
	}
	p.outstanding++
	return &Pending{port: p, id: id, epoch: p.epoch}
}

// ErrAbandonedHandle is returned by WaitErr for a handle issued before the
// port's latest Fence: the fence discarded its reply, so there is nothing
// left to wait for.
var ErrAbandonedHandle = errors.New("asyncnet: handle abandoned by Fence")

// Wait blocks for the request's old value.  Replies arriving out of order
// are buffered for their own handles.  Waiting on a handle issued before
// the port's latest Fence panics: the fence abandoned it (see Fence).
// Callers that would rather recover than crash use WaitErr.
func (h *Pending) Wait() word.Word {
	v, err := h.WaitErr()
	if err != nil {
		panic("asyncnet: Wait on a handle abandoned by Fence")
	}
	return v
}

// WaitErr is Wait with an error path: it returns ErrAbandonedHandle for a
// handle the port's latest Fence abandoned, instead of panicking.
func (h *Pending) WaitErr() (word.Word, error) {
	p := h.port
	if v, ok := p.buffered[h.id]; ok {
		delete(p.buffered, h.id)
		return v, nil
	}
	if h.epoch != p.epoch {
		return word.Word{}, ErrAbandonedHandle
	}
	for {
		r := p.recv()
		v, live := p.absorb(r)
		if !live {
			continue
		}
		if r.rep.ID == h.id {
			return v, nil
		}
		if _, dup := p.buffered[r.rep.ID]; dup {
			panic(fmt.Sprintf("asyncnet: duplicate reply %v", r.rep))
		}
		p.buffered[r.rep.ID] = v
	}
}

// Fence drains every outstanding reply — the RP3 fence on the asynchronous
// machine.  A fence declares the caller done with everything issued before
// it: replies to handles never waited on are discarded rather than parked
// forever in the reply buffer, so repeated RMWAsync+Fence cycles hold no
// memory.  A later Wait on such an abandoned handle panics.
func (p *Port) Fence() {
	for p.outstanding > 0 {
		p.absorb(p.recv())
	}
	clear(p.buffered)
	p.epoch++
}

// Buffered reports the replies parked for out-of-order Waits — after a
// Fence it is always zero (the fence-reclamation invariant).
func (p *Port) Buffered() int { return len(p.buffered) }

// FetchAdd is a convenience wrapper.
func (p *Port) FetchAdd(addr word.Addr, delta int64) int64 {
	return p.RMW(addr, rmw.FetchAdd(delta)).Val
}

// run is the switch process: it batches simultaneously available requests,
// combines what it can, forwards the rest, and decombines replies.
func (sw *aswitch) run() {
	defer sw.net.wg.Done()
	for {
		select {
		case <-sw.net.done:
			return
		case m := <-sw.fwdIn[0]:
			sw.handleFwd(m)
		case m := <-sw.fwdIn[1]:
			sw.handleFwd(m)
		case r := <-sw.revIn:
			sw.handleRev(r)
		}
	}
}

// handleFwd drains whatever else is immediately available on the input
// channels — the asynchronous analogue of requests meeting in a queue —
// combines same-address batches, and forwards the survivors.
func (sw *aswitch) handleFwd(first fwdMsg) {
	batch := []fwdMsg{first}
	// Bounded spin, then park: poll both inboxes, give concurrently
	// released stragglers one scheduling quantum to land (so they can
	// combine — the asynchronous analogue of messages meeting in a switch
	// queue), and yield again only while polls keep finding new messages,
	// up to maxYields.  The first dry poll after a yield ends collection,
	// returning the switch to run()'s select — a channel wait that costs
	// no CPU — where the old unconditional per-batch Gosched burned a
	// scheduler round-trip even with the batch already full (every three
	// messages under ChanCap=1) or no burst in flight at all.  The batch
	// is capped at both inboxes' worth of messages so switch-internal
	// buffering stays bounded even while blocked upstream senders keep
	// refilling the channels; with the (large) default ChanCap the cap is
	// never reached.
	batchMax := 2*sw.net.cfg.ChanCap + 1
	const maxYields = 2
	for yields := 0; len(batch) < batchMax; {
		before := len(batch)
		for drained := true; drained && len(batch) < batchMax; {
			select {
			case m := <-sw.fwdIn[0]:
				batch = append(batch, m)
			case m := <-sw.fwdIn[1]:
				batch = append(batch, m)
			default:
				drained = false
			}
		}
		if yields >= maxYields || (yields > 0 && len(batch) == before) {
			break
		}
		yields++
		runtime.Gosched()
	}
	sw.net.batchHW[sw.stage].Observe(int64(len(batch)))
	var combined, rejected int64
	var out []fwdMsg
	for _, m := range batch {
		// Combine only with the most recent same-address message,
		// preserving per-location arrival order (M2.3) — the scan shared
		// with the cycle engines via core.CombineAtTail.
		tc, rej, ok := core.CombineAtTail(out, fwdReq, m.req, sw.pol, sw.wait.CanPush)
		if rej {
			rejected++
		}
		if ok {
			firstMsg, secondMsg := out[tc.Index], m
			if tc.Swapped {
				firstMsg, secondMsg = m, out[tc.Index]
			}
			if sw.wait.Push(tc.Rec.ID1, arec{Record: tc.Rec, pathSecond: secondMsg.path}) {
				out[tc.Index] = fwdMsg{req: tc.Combined, path: firstMsg.path}
				combined++
				continue
			}
		}
		out = append(out, m)
	}
	if combined > 0 {
		sw.net.combines.Add(combined)
	}
	if rejected > 0 {
		sw.net.rejects.Add(rejected)
	}
	for _, m := range out {
		dst := sw.net.mem.HomeOf(m.req.Addr)
		port := dst >> (sw.net.k - 1 - sw.stage) & 1
		sw.fwdOut[port](m)
	}
}

// handleRev decombines a reply against the wait buffer (repeatedly, for
// k-way combines) and routes the results toward the processors.  Under a
// fault plan the reply carries its exact leaf set, and only records whose
// second request is among those leaves decombine — a retransmitted
// original must not satisfy a wait record left by a lost combined copy
// (the deprived partner recovers by its own retransmit instead).
func (sw *aswitch) handleRev(r revMsg) {
	match := func(a arec) bool { return core.CanDecombine(a.Record, r.rep) }
	if rec, ok := sw.wait.PopMatch(r.rep.ID, match); ok {
		r1, r2 := core.DecombineExact(rec.Record, r.rep)
		sw.handleRev(revMsg{rep: r1, path: r.path})
		sw.handleRev(revMsg{rep: r2, path: rec.pathSecond})
		return
	}
	port := r.path[sw.stage]
	r.path = r.path[:sw.stage]
	sw.revOut[port](r)
}
