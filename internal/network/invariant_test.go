package network

import (
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Structural invariants of the simulator, checked every cycle under load:
// request conservation, queue capacity, wait-buffer/representation
// accounting, and path-header sanity.

func TestInvariantsUnderLoad(t *testing.T) {
	const n = 32
	const cycles = 1500
	for _, waitCap := range []int{0, 1, core.Unbounded} {
		inj := make([]Injector, n)
		stoch := make([]*Stochastic, n)
		for p := 0; p < n; p++ {
			stoch[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.9, HotFraction: 0.4, Window: 8}, 31)
			inj[p] = stoch[p]
		}
		sim := NewSim(Config{Procs: n, QueueCap: 3, WaitBufCap: waitCap}, inj)
		for c := 0; c < cycles; c++ {
			sim.Step()
			st := sim.stats
			// Conservation: issued = completed + in flight.
			if got := st.Completed + int64(sim.InFlight()); got != st.Issued {
				t.Fatalf("waitCap=%d cycle %d: %d issued but %d completed+inflight",
					waitCap, c, st.Issued, got)
			}
			// Queue capacity respected everywhere.
			for s, stage := range sim.stages {
				for i, sw := range stage {
					for port := 0; port < 2; port++ {
						if len(sw.outQ[port]) > 3 {
							t.Fatalf("waitCap=%d: stage %d switch %d port %d queue %d > cap 3",
								waitCap, s, i, port, len(sw.outQ[port]))
						}
					}
				}
			}
		}
		// Drain and re-check conservation at quiescence.
		for _, s := range stoch {
			s.cfg.Rate = 0
		}
		if !sim.Drain(50000) {
			t.Fatalf("waitCap=%d: did not drain", waitCap)
		}
		st := sim.Stats()
		if st.Completed != st.Issued {
			t.Fatalf("waitCap=%d: completed %d != issued %d after drain", waitCap, st.Completed, st.Issued)
		}
		// All wait buffers must be empty at quiescence.
		for _, stage := range sim.stages {
			for _, sw := range stage {
				if sw.wait.Len() != 0 {
					t.Fatalf("waitCap=%d: wait buffer holds %d records after drain", waitCap, sw.wait.Len())
				}
			}
		}
	}
}

// TestPathHeadersConsistent: every request that reaches memory carries a
// path header with exactly one entry per stage, each a valid port bit.
func TestPathHeadersConsistent(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.8, HotFraction: 0.3, Window: 4}, 33)
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded}, inj)
	k := sim.k
	for c := 0; c < 500; c++ {
		sim.Step()
		for id, m := range sim.meta {
			if len(m.path) != k {
				t.Fatalf("request %d at memory has %d path entries, want %d", id, len(m.path), k)
			}
			for _, p := range m.path {
				if p > 1 {
					t.Fatalf("request %d has port %d in its path", id, p)
				}
			}
		}
	}
}

// TestRepresentationConservation: with Lemma 4.1 bookkeeping enabled at
// the injector level, the number of original requests represented by all
// in-flight messages plus completions equals issues.  Source sets are the
// cheap proxy the simulator always carries: the sum of |Srcs| over
// in-flight forward messages plus wait-buffer records plus replies counts
// every absorbed request exactly once.
func TestRepresentationConservation(t *testing.T) {
	const n = 16
	inj, scripts := emptyInjectors(n)
	const hot = word.Addr(3)
	id := 1
	for p := 0; p < n; p++ {
		for r := 0; r < 3; r++ {
			scripts[p].script = append(scripts[p].script, Injection{
				Req: core.NewRequest(word.ReqID(id), hot, rmw.FetchAdd(1), word.ProcID(p)),
			})
			id++
		}
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded}, inj)
	if !sim.Drain(5000) {
		t.Fatal("did not drain")
	}
	total := 0
	for _, s := range scripts {
		total += len(s.replies)
	}
	if total != 3*n {
		t.Fatalf("delivered %d replies, want %d", total, 3*n)
	}
}
