package network

import (
	"strings"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Structural invariants of the simulator, checked every cycle under load:
// request conservation, queue capacity, wait-buffer/representation
// accounting, and path-header sanity.

func TestInvariantsUnderLoad(t *testing.T) {
	const n = 32
	const cycles = 1500
	for _, waitCap := range []int{0, 1, core.Unbounded} {
		inj := make([]Injector, n)
		stoch := make([]*Stochastic, n)
		for p := 0; p < n; p++ {
			stoch[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.9, HotFraction: 0.4, Window: 8}, 31)
			inj[p] = stoch[p]
		}
		sim := NewSim(Config{Procs: n, QueueCap: 3, WaitBufCap: waitCap}, inj)
		for c := 0; c < cycles; c++ {
			sim.Step()
			st := sim.stats
			// Conservation: issued = completed + in flight.
			if got := st.Completed + int64(sim.InFlight()); got != st.Issued {
				t.Fatalf("waitCap=%d cycle %d: %d issued but %d completed+inflight",
					waitCap, c, st.Issued, got)
			}
			// Queue capacity respected everywhere.
			for s, stage := range sim.stages {
				for i, sw := range stage {
					for port := 0; port < 2; port++ {
						if len(sw.outQ[port]) > 3 {
							t.Fatalf("waitCap=%d: stage %d switch %d port %d queue %d > cap 3",
								waitCap, s, i, port, len(sw.outQ[port]))
						}
					}
				}
			}
		}
		// Drain and re-check conservation at quiescence.
		for _, s := range stoch {
			s.cfg.Rate = 0
		}
		if !sim.Drain(50000) {
			t.Fatalf("waitCap=%d: did not drain", waitCap)
		}
		st := sim.Stats()
		if st.Completed != st.Issued {
			t.Fatalf("waitCap=%d: completed %d != issued %d after drain", waitCap, st.Completed, st.Issued)
		}
		// All wait buffers must be empty at quiescence.
		for _, stage := range sim.stages {
			for _, sw := range stage {
				if sw.wait.Len() != 0 {
					t.Fatalf("waitCap=%d: wait buffer holds %d records after drain", waitCap, sw.wait.Len())
				}
			}
		}
	}
}

// TestReverseQueueBoundInvariant checks the reserved-credit bound that
// used to be a prose claim in acceptReply's comment: a reply is accepted
// only while every reverse port sits below RevQueueCap, and each extra
// decombined leaf consumes a wait-buffer record, so per-port reverse
// occupancy can never exceed RevQueueCap + WaitBufCap.  Checked every
// cycle against the live queues and at the end against the maxRev
// high-water marks folded into Stats.
func TestReverseQueueBoundInvariant(t *testing.T) {
	const (
		n       = 32
		revCap  = 2
		waitCap = 3
		bound   = revCap + waitCap
		cycles  = 3000
	)
	inj := make([]Injector, n)
	stoch := make([]*Stochastic, n)
	for p := 0; p < n; p++ {
		stoch[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.9, HotFraction: 0.6, Window: 8}, 97)
		inj[p] = stoch[p]
	}
	sim := NewSim(Config{Procs: n, QueueCap: 2, RevQueueCap: revCap, WaitBufCap: waitCap}, inj)
	for c := 0; c < cycles; c++ {
		sim.Step()
		for s, stage := range sim.stages {
			for i, sw := range stage {
				for port, q := range sw.revQ {
					if len(q) > bound {
						t.Fatalf("cycle %d: stage %d switch %d port %d reverse queue %d > bound %d",
							c, s, i, port, len(q), bound)
					}
				}
			}
		}
	}
	for _, s := range stoch {
		s.cfg.Rate = 0
	}
	if !sim.Drain(100000) {
		t.Fatalf("did not drain: %s", sim.StallReport())
	}
	st := sim.Stats()
	if st.MaxRevQueue > bound {
		t.Fatalf("MaxRevQueue = %d exceeds reserved-credit bound %d", st.MaxRevQueue, bound)
	}
	if st.MaxRevQueue == 0 {
		t.Fatal("reverse queues never held a reply — load too light to test the bound")
	}
	if st.HoldsRev == 0 {
		t.Fatal("no reverse holds recorded — credits were never exhausted, bound untested")
	}
}

// TestNegativeWindowPanics: a negative TrafficConfig.Window is a config
// error and must be rejected loudly, not silently replaced by the
// default (the old behaviour applied Window=4 for any Window ≤ 0).
func TestNegativeWindowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewStochastic accepted a negative Window")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Window must be ≥ 0") {
			t.Fatalf("panic message %v does not explain the Window contract", r)
		}
	}()
	NewStochastic(0, 8, TrafficConfig{Rate: 0.5, Window: -1}, 1)
}

// TestWatchdogTripsOnWedgedNetwork forces the one condition a correct
// network cannot reach on its own — in-flight work with a frozen
// progress signature — by planting an orphaned wait record that no reply
// will ever match (the signature of a decombining bug).  The watchdog
// must declare the livelock right after its limit, count the trip in the
// snapshot, emit a queue-snapshot report, and make Run return early.
func TestWatchdogTripsOnWedgedNetwork(t *testing.T) {
	const limit = 200
	inj, _ := emptyInjectors(8)
	sim := NewSim(Config{Procs: 8, WaitBufCap: 4, WatchdogCycles: limit}, inj)
	if !sim.stages[0][0].wait.Push(word.ReqID(999), netRecord{}) {
		t.Fatal("could not plant the orphan wait record")
	}
	steps := 0
	for ; steps < 100000 && !sim.Stalled(); steps++ {
		sim.Step()
	}
	if !sim.Stalled() {
		t.Fatal("watchdog never tripped with a permanently wedged wait record")
	}
	if steps > limit+10 {
		t.Fatalf("tripped only after %d cycles, limit %d", steps, limit)
	}
	if got := sim.Snapshot().Counters["watchdog_trips"]; got != 1 {
		t.Fatalf("watchdog_trips = %d, want exactly 1", got)
	}
	rep := sim.StallReport()
	if !strings.Contains(rep, "watchdog tripped") || !strings.Contains(rep, "wait=") {
		t.Fatalf("stall report lacks the diagnostic queue snapshot:\n%s", rep)
	}
	// Run must refuse to burn a fresh budget on a tripped machine.
	start := sim.cycle
	sim.Run(10000)
	if sim.cycle != start {
		t.Fatalf("Run stepped %d more cycles after the watchdog tripped", sim.cycle-start)
	}
}

// TestZeroWindowDefaults: the documented zero value means the default of 4.
func TestZeroWindowDefaults(t *testing.T) {
	s := NewStochastic(0, 8, TrafficConfig{Rate: 0.5}, 1)
	if got := s.Window(); got != 4 {
		t.Fatalf("zero-value Window resolved to %d, want the documented default 4", got)
	}
}

// TestPathHeadersConsistent: every request that reaches memory carries a
// path header with exactly one entry per stage, each a valid port bit.
func TestPathHeadersConsistent(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.8, HotFraction: 0.3, Window: 4}, 33)
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded}, inj)
	k := sim.k
	for c := 0; c < 500; c++ {
		sim.Step()
		for _, shard := range sim.meta {
			for id, m := range shard {
				if len(m.path) != k {
					t.Fatalf("request %d at memory has %d path entries, want %d", id, len(m.path), k)
				}
				for _, p := range m.path {
					if p > 1 {
						t.Fatalf("request %d has port %d in its path", id, p)
					}
				}
			}
		}
	}
}

// TestRepresentationConservation: with Lemma 4.1 bookkeeping enabled at
// the injector level, the number of original requests represented by all
// in-flight messages plus completions equals issues.  Source sets are the
// cheap proxy the simulator always carries: the sum of |Srcs| over
// in-flight forward messages plus wait-buffer records plus replies counts
// every absorbed request exactly once.
func TestRepresentationConservation(t *testing.T) {
	const n = 16
	inj, scripts := emptyInjectors(n)
	const hot = word.Addr(3)
	id := 1
	for p := 0; p < n; p++ {
		for r := 0; r < 3; r++ {
			scripts[p].script = append(scripts[p].script, Injection{
				Req: core.NewRequest(word.ReqID(id), hot, rmw.FetchAdd(1), word.ProcID(p)),
			})
			id++
		}
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded}, inj)
	if !sim.Drain(5000) {
		t.Fatal("did not drain")
	}
	total := 0
	for _, s := range scripts {
		total += len(s.replies)
	}
	if total != 3*n {
		t.Fatalf("delivered %d replies, want %d", total, 3*n)
	}
}
