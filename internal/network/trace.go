package network

import (
	"fmt"

	"combining/internal/word"
)

// Event tracing for the cycle simulator: every injection, hop, combine,
// decombine, memory access and delivery can be observed, which is how the
// tests audit the mechanism's bookkeeping (every combine is undone by
// exactly one decombine) and how cmd/trace renders a Figure 1 walkthrough
// on a live machine.

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvInject EventKind = iota + 1
	EvHop
	EvCombine
	EvCombineReject
	EvMemServe
	EvDecombine
	EvDeliver
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvHop:
		return "hop"
	case EvCombine:
		return "combine"
	case EvCombineReject:
		return "reject"
	case EvMemServe:
		return "memory"
	case EvDecombine:
		return "decombine"
	case EvDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one observation.
type Event struct {
	Cycle int64
	Kind  EventKind
	// ID is the (combined) message id; ID2 the absorbed or split-off
	// message for combine/decombine events.
	ID, ID2 word.ReqID
	Addr    word.Addr
	// Stage and Switch locate the event (-1 when not applicable:
	// injections carry the processor in Switch, deliveries likewise,
	// memory events carry the module).
	Stage, Switch int
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case EvInject:
		return fmt.Sprintf("c%-4d proc %-3d inject    ⟨%d⟩ @%d", e.Cycle, e.Switch, e.ID, e.Addr)
	case EvCombine:
		return fmt.Sprintf("c%-4d s%d/sw%-2d  combine   ⟨%d⟩+⟨%d⟩→⟨%d⟩ @%d", e.Cycle, e.Stage, e.Switch, e.ID, e.ID2, e.ID, e.Addr)
	case EvCombineReject:
		return fmt.Sprintf("c%-4d s%d/sw%-2d  reject    ⟨%d⟩ @%d (wait buffer full)", e.Cycle, e.Stage, e.Switch, e.ID, e.Addr)
	case EvMemServe:
		return fmt.Sprintf("c%-4d mod %-4d memory    ⟨%d⟩ @%d", e.Cycle, e.Switch, e.ID, e.Addr)
	case EvDecombine:
		return fmt.Sprintf("c%-4d s%d/sw%-2d  decombine ⟨%d⟩→⟨%d⟩,⟨%d⟩", e.Cycle, e.Stage, e.Switch, e.ID, e.ID, e.ID2)
	case EvDeliver:
		return fmt.Sprintf("c%-4d proc %-3d deliver   ⟨%d⟩", e.Cycle, e.Switch, e.ID)
	default:
		return fmt.Sprintf("c%-4d s%d/sw%-2d  %-9s ⟨%d⟩ @%d", e.Cycle, e.Stage, e.Switch, e.Kind, e.ID, e.Addr)
	}
}

// TraceLog collects events in order.
type TraceLog struct {
	Events []Event
}

// Record appends an event.
func (l *TraceLog) Record(e Event) { l.Events = append(l.Events, e) }

// Count tallies events of one kind.
func (l *TraceLog) Count(kind EventKind) int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
