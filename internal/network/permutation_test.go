package network

import (
	"testing"

	"combining/internal/word"
)

// TestPermutationBlocking pins the classic Omega-network facts: identity
// and shift permutations route conflict-free; bit-reverse and transpose
// collide on internal links and deliver roughly √N-scaled bandwidth.
func TestPermutationBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const cycles = 3000
	bw := func(n int, p Permutation) float64 {
		return RunPermutation(n, p, cycles).Bandwidth()
	}
	for _, n := range []int{64, 256} {
		id, sh := bw(n, IdentityPerm), bw(n, ShiftPerm)
		br, tr := bw(n, BitReversePerm), bw(n, TransposePerm)
		t.Logf("n=%d: identity %.2f, shift %.2f, bit-reverse %.2f, transpose %.2f", n, id, sh, br, tr)
		if id < 0.95*sh || id > 1.05*sh {
			t.Errorf("n=%d: identity (%.2f) and shift (%.2f) should both be conflict-free", n, id, sh)
		}
		if id < 2*br {
			t.Errorf("n=%d: identity %.2f not ≥2× bit-reverse %.2f (blocking missing)", n, id, br)
		}
		if br < 0.9*tr || br > 1.1*tr {
			t.Errorf("n=%d: bit-reverse %.2f and transpose %.2f should collide equally", n, br, tr)
		}
	}
	// Conflict-free traffic scales nearly linearly in N; blocked traffic
	// sub-linearly (≈ √N for bit reversal).
	id64, id256 := bw(64, IdentityPerm), bw(256, IdentityPerm)
	br64, br256 := bw(64, BitReversePerm), bw(256, BitReversePerm)
	if id256/id64 < 2.5 {
		t.Errorf("identity scaling %.2f×, want near-linear (≥2.5× for 4× procs)", id256/id64)
	}
	if br256/br64 > 2.5 {
		t.Errorf("bit-reverse scaling %.2f×, want sub-linear (≤2.5× for 4× procs)", br256/br64)
	}
}

// TestPermutationCorrect: every permutation request completes and lands
// on its own module.
func TestPermutationCorrect(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	pis := make([]*PermInjector, n)
	for p := 0; p < n; p++ {
		pis[p] = NewPermInjector(p, n, BitReversePerm, 2)
		inj[p] = pis[p]
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: 0}, inj)
	sim.Run(500)
	// Stop and drain.
	for _, pi := range pis {
		pi.window = 0
	}
	if !sim.Drain(5000) {
		t.Fatal("did not drain")
	}
	st := sim.Stats()
	if st.Completed != st.Issued {
		t.Fatalf("completed %d of %d", st.Completed, st.Issued)
	}
	// Each module's counter equals the requests its (unique) source sent.
	var total int64
	for p := 0; p < n; p++ {
		total += sim.Memory().Peek(word.Addr(BitReversePerm(p, n))).Val
	}
	if total != st.Completed {
		t.Fatalf("module counters sum to %d, want %d", total, st.Completed)
	}
}
