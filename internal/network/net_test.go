package network

import (
	"math/bits"
	"sort"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// scriptInjector issues a fixed request list in order and records replies.
type scriptInjector struct {
	script  []Injection
	next    int
	replies []core.Reply
}

var _ Injector = (*scriptInjector)(nil)

func (s *scriptInjector) Next(int64) (Injection, bool) {
	if s.next >= len(s.script) {
		return Injection{}, false
	}
	inj := s.script[s.next]
	s.next++
	return inj, true
}

func (s *scriptInjector) Deliver(rep core.Reply, _ int64) {
	s.replies = append(s.replies, rep)
}

func emptyInjectors(n int) ([]Injector, []*scriptInjector) {
	inj := make([]Injector, n)
	scripts := make([]*scriptInjector, n)
	for i := range inj {
		scripts[i] = &scriptInjector{}
		inj[i] = scripts[i]
	}
	return inj, scripts
}

// TestRoutingAllPairs checks destination-tag routing and reply retracing on
// the Omega topology: for every offset, processor p stores a distinct value
// to module (p+off) mod N; the value must land in the right module and the
// acknowledgment must return to p.
func TestRoutingAllPairs(t *testing.T) {
	const n = 8
	for off := 0; off < n; off++ {
		inj, scripts := emptyInjectors(n)
		for p := 0; p < n; p++ {
			dst := word.Addr((p + off) % n)
			val := int64(1000*off + p)
			scripts[p].script = []Injection{{
				Req: core.NewRequest(word.ReqID(p+1), dst, rmw.SwapOf(val), word.ProcID(p)),
			}}
		}
		sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded}, inj)
		if !sim.Drain(1000) {
			t.Fatalf("off=%d: network did not drain", off)
		}
		for p := 0; p < n; p++ {
			dst := word.Addr((p + off) % n)
			if got := sim.Memory().Peek(dst).Val; got != int64(1000*off+p) {
				t.Errorf("off=%d: module %d holds %d, want %d", off, dst, got, 1000*off+p)
			}
			if len(scripts[p].replies) != 1 {
				t.Fatalf("off=%d: proc %d got %d replies, want 1", off, p, len(scripts[p].replies))
			}
			if scripts[p].replies[0].ID != word.ReqID(p+1) {
				t.Errorf("off=%d: proc %d got reply %v", off, p, scripts[p].replies[0])
			}
		}
	}
}

// checkPrefixSums verifies that the replies to N simultaneous
// fetch-and-add(X, 2^p) requests witness a serial order: sorted ascending
// they must start at the initial value and each step must add exactly one
// processor's increment, ending at the total.
func checkPrefixSums(t *testing.T, replies []int64, nprocs int, final int64) {
	t.Helper()
	if len(replies) != nprocs {
		t.Fatalf("%d replies, want %d", len(replies), nprocs)
	}
	vals := append([]int64{}, replies...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if vals[0] != 0 {
		t.Fatalf("smallest reply %d, want 0 (initial value)", vals[0])
	}
	seen := int64(0)
	for i := 0; i < len(vals); i++ {
		if vals[i] != seen {
			t.Fatalf("reply %d is %d, want running sum %d: not a serialization", i, vals[i], seen)
		}
		// The increment applied at this position must be a distinct
		// power of two not yet used.
		var inc int64
		if i+1 < len(vals) {
			inc = vals[i+1] - vals[i]
		} else {
			inc = final - vals[i]
		}
		if inc <= 0 || inc&(inc-1) != 0 || seen&inc != 0 {
			t.Fatalf("step %d adds %d: not a fresh processor increment", i, inc)
		}
		seen += inc
	}
	if seen != final {
		t.Fatalf("serialization reaches %d, final memory is %d", seen, final)
	}
}

func runSimultaneousFAA(t *testing.T, nprocs, waitCap int, reversal bool) (Stats, []int64) {
	t.Helper()
	inj, scripts := emptyInjectors(nprocs)
	const hot = word.Addr(5)
	for p := 0; p < nprocs; p++ {
		scripts[p].script = []Injection{{
			Req: core.NewRequest(word.ReqID(p+1), hot, rmw.FetchAdd(1<<p), word.ProcID(p)),
			Hot: true,
		}}
	}
	sim := NewSim(Config{Procs: nprocs, WaitBufCap: waitCap, AllowReversal: reversal}, inj)
	if !sim.Drain(5000) {
		t.Fatal("network did not drain")
	}
	var replies []int64
	for p := 0; p < nprocs; p++ {
		if len(scripts[p].replies) != 1 {
			t.Fatalf("proc %d got %d replies", p, len(scripts[p].replies))
		}
		replies = append(replies, scripts[p].replies[0].Val.Val)
	}
	final := sim.Memory().Peek(hot).Val
	if final != int64(1)<<nprocs-1 {
		t.Fatalf("final value %d, want %d", final, int64(1)<<nprocs-1)
	}
	checkPrefixSums(t, replies, nprocs, final)
	return sim.Stats(), replies
}

// TestSimultaneousFAACombining is experiment E10 on the cycle simulator:
// simultaneous fetch-and-adds to one location return a valid serialization
// and the combining tree absorbs most of them.
func TestSimultaneousFAACombining(t *testing.T) {
	st, _ := runSimultaneousFAA(t, 16, core.Unbounded, false)
	if st.Combines == 0 {
		t.Error("no combining occurred on a fully aligned hot burst")
	}
	// Memory must have seen far fewer than 16 requests.
	if st.MemRequests >= 16 {
		t.Errorf("memory saw %d requests; combining should have reduced them", st.MemRequests)
	}
}

func TestSimultaneousFAANoCombining(t *testing.T) {
	st, _ := runSimultaneousFAA(t, 16, 0, false)
	if st.Combines != 0 {
		t.Errorf("combining occurred with a zero-capacity wait buffer (%d)", st.Combines)
	}
	if st.MemRequests != 16 {
		t.Errorf("memory saw %d requests, want all 16", st.MemRequests)
	}
}

// TestPartialCombiningCorrect is ablation A1: tiny wait buffers still give
// correct executions with some combining.  A single aligned burst combines
// fully even with capacity 1 (each switch merges exactly one pair), so this
// test sends several waves per processor: records pinned by outstanding
// replies then force rejections.
func TestPartialCombiningCorrect(t *testing.T) {
	const n, perProc = 16, 4
	inj, scripts := emptyInjectors(n)
	const hot = word.Addr(5)
	id := 1
	for p := 0; p < n; p++ {
		for r := 0; r < perProc; r++ {
			scripts[p].script = append(scripts[p].script, Injection{
				Req: core.NewRequest(word.ReqID(id), hot, rmw.FetchAdd(1), word.ProcID(p)),
				Hot: true,
			})
			id++
		}
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: 1}, inj)
	if !sim.Drain(20000) {
		t.Fatal("network did not drain")
	}
	if got := sim.Memory().Peek(hot).Val; got != n*perProc {
		t.Fatalf("final value %d, want %d", got, n*perProc)
	}
	// Every fetch-and-add(1) reply must be a distinct value in
	// [0, n·perProc): the pre-sums of a serialization of unit adds.
	seen := make(map[int64]bool)
	for p := 0; p < n; p++ {
		if len(scripts[p].replies) != perProc {
			t.Fatalf("proc %d got %d replies, want %d", p, len(scripts[p].replies), perProc)
		}
		for _, rep := range scripts[p].replies {
			v := rep.Val.Val
			if v < 0 || v >= n*perProc || seen[v] {
				t.Fatalf("reply value %d out of range or duplicated", v)
			}
			seen[v] = true
		}
	}
	st := sim.Stats()
	if st.Combines == 0 {
		t.Error("a capacity-1 wait buffer should still combine occasionally")
	}
	if st.Rejects == 0 {
		t.Error("multiple hot waves through capacity-1 buffers should reject some combines")
	}
}

func TestSimultaneousFAAWithReversal(t *testing.T) {
	// Reversal must not break fetch-and-add serialization.
	runSimultaneousFAA(t, 16, core.Unbounded, true)
}

// TestSameProcessorOrdering checks condition M2 through the network: two
// stores then a load from one processor to one address must be served in
// issue order, with or without combining.
func TestSameProcessorOrdering(t *testing.T) {
	for _, waitCap := range []int{0, core.Unbounded} {
		inj, scripts := emptyInjectors(4)
		const addr = word.Addr(2)
		scripts[1].script = []Injection{
			{Req: core.NewRequest(1, addr, rmw.StoreOf(1), 1)},
			{Req: core.NewRequest(2, addr, rmw.StoreOf(2), 1)},
			{Req: core.NewRequest(3, addr, rmw.Load{}, 1)},
		}
		sim := NewSim(Config{Procs: 4, WaitBufCap: waitCap}, inj)
		if !sim.Drain(1000) {
			t.Fatal("network did not drain")
		}
		if got := sim.Memory().Peek(addr).Val; got != 2 {
			t.Errorf("waitCap=%d: final value %d, want 2 (second store last)", waitCap, got)
		}
		var loadVal int64 = -1
		for _, rep := range scripts[1].replies {
			if rep.ID == 3 {
				loadVal = rep.Val.Val
			}
		}
		if loadVal != 2 {
			t.Errorf("waitCap=%d: load saw %d, want 2 (both stores precede it)", waitCap, loadVal)
		}
	}
}

// TestStochasticWindow checks the injector respects its outstanding window.
func TestStochasticWindow(t *testing.T) {
	s := NewStochastic(0, 4, TrafficConfig{Rate: 1.0, Window: 2}, 1)
	var got []Injection
	for cycle := int64(0); cycle < 10; cycle++ {
		if inj, ok := s.Next(cycle); ok {
			got = append(got, inj)
		}
	}
	if len(got) != 2 {
		t.Fatalf("issued %d with window 2 and no deliveries", len(got))
	}
	s.Deliver(core.Reply{}, 11)
	if _, ok := s.Next(12); !ok {
		t.Fatal("delivery must free a window slot")
	}
}

// TestStochasticDeterminism: same seed, same traffic.
func TestStochasticDeterminism(t *testing.T) {
	mk := func() []word.Addr {
		s := NewStochastic(3, 8, TrafficConfig{Rate: 0.7, HotFraction: 0.2, Window: 64}, 42)
		var addrs []word.Addr
		for cycle := int64(0); cycle < 200; cycle++ {
			if inj, ok := s.Next(cycle); ok {
				addrs = append(addrs, inj.Req.Addr)
			}
		}
		return addrs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestConservation: every issued request is eventually answered, and
// nothing is duplicated — run a mixed stochastic load to a drain.
func TestConservation(t *testing.T) {
	const n = 16
	for _, waitCap := range []int{0, 2, core.Unbounded} {
		inj := make([]Injector, n)
		stoch := make([]*Stochastic, n)
		for p := 0; p < n; p++ {
			stoch[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.9, HotFraction: 0.3, Window: 8}, 7)
			inj[p] = stoch[p]
		}
		sim := NewSim(Config{Procs: n, WaitBufCap: waitCap}, inj)
		sim.Run(2000)
		// Stop offering new traffic and drain.
		for _, s := range stoch {
			s.cfg.Rate = 0
		}
		if !sim.Drain(20000) {
			t.Fatalf("waitCap=%d: machine did not drain (%d in flight)", waitCap, sim.InFlight())
		}
		st := sim.Stats()
		if st.Issued == 0 {
			t.Fatal("no traffic issued")
		}
		if st.Completed != st.Issued {
			t.Errorf("waitCap=%d: completed %d of %d issued", waitCap, st.Completed, st.Issued)
		}
	}
}

// TestOmegaPermutations sanity-checks the shuffle algebra of the default
// wiring a Sim is built with.
func TestOmegaPermutations(t *testing.T) {
	sim := NewSim(Config{Procs: 16}, make16Empty())
	topo := sim.Topology()
	if topo.Name() != "omega" {
		t.Fatalf("default topology = %q, want omega", topo.Name())
	}
	for line := 0; line < 16; line++ {
		if got := topo.PrevLine(1, topo.NextLine(0, line)); got != line {
			t.Errorf("PrevLine(NextLine(%d)) = %d", line, got)
		}
		want := bits.RotateLeft8(uint8(line), 1)&0x0f | uint8(line)>>3
		_ = want // rotate within 4 bits checked via the round trip above
	}
}

func make16Empty() []Injector {
	inj, _ := emptyInjectors(16)
	return inj
}

func TestLatencyPercentiles(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.7, HotFraction: 0.2, Window: 8}, 19)
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded}, inj)
	sim.Run(2000)
	st := sim.Stats()
	p50, p99 := st.Percentile(0.5), st.Percentile(0.99)
	mean := st.MeanLatency()
	t.Logf("latency: mean %.1f, p50 %.1f, p99 %.1f", mean, p50, p99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles inconsistent: p50 %.1f, p99 %.1f", p50, p99)
	}
	// The histogram must account for every completion.
	var total int64
	for _, c := range st.Latency.Buckets {
		total += c
	}
	if total != st.Completed || st.Latency.Count != st.Completed {
		t.Fatalf("histogram holds %d (count %d) of %d completions",
			total, st.Latency.Count, st.Completed)
	}
	// Mean sits between the quartiles of a unimodal latency distribution.
	if mean < st.Percentile(0.05) || mean > st.Percentile(0.999) {
		t.Fatalf("mean %.1f outside plausible range", mean)
	}
}
