package network

import (
	"fmt"
	"sort"
	"testing"

	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Radix-k switches: the Omega construction generalizes to k×k switches
// with log_k N stages.  The paper's concrete design is 2×2; higher radix
// trades network depth for per-switch contention.

func TestRadixRoutingAllPairs(t *testing.T) {
	for _, tc := range []struct{ n, radix int }{
		{16, 4}, {64, 4}, {8, 8}, {64, 8}, {4, 4}, {27, 3},
	} {
		t.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.radix), func(t *testing.T) {
			for off := 0; off < tc.n; off += max(1, tc.n/7) {
				inj, scripts := emptyInjectors(tc.n)
				for p := 0; p < tc.n; p++ {
					dst := word.Addr((p + off) % tc.n)
					scripts[p].script = []Injection{{
						Req: core.NewRequest(word.ReqID(p+1), dst,
							rmw.SwapOf(int64(1000*off+p)), word.ProcID(p)),
					}}
				}
				sim := NewSim(Config{Procs: tc.n, Radix: tc.radix, WaitBufCap: core.Unbounded}, inj)
				if !sim.Drain(2000) {
					t.Fatalf("off=%d: did not drain", off)
				}
				for p := 0; p < tc.n; p++ {
					dst := word.Addr((p + off) % tc.n)
					if got := sim.Memory().Peek(dst).Val; got != int64(1000*off+p) {
						t.Errorf("off=%d: module %d holds %d, want %d", off, dst, got, 1000*off+p)
					}
					if len(scripts[p].replies) != 1 || scripts[p].replies[0].ID != word.ReqID(p+1) {
						t.Errorf("off=%d: proc %d replies %v", off, p, scripts[p].replies)
					}
				}
			}
		})
	}
}

func TestRadixFAASerialization(t *testing.T) {
	for _, radix := range []int{4, 8} {
		const n = 16
		if !engine.IsPowerOf(n, radix) && radix != 4 {
			continue
		}
		nn := n
		if radix == 8 {
			nn = 64
		}
		inj, scripts := emptyInjectors(nn)
		const hot = word.Addr(5)
		for p := 0; p < nn; p++ {
			scripts[p].script = []Injection{{
				Req: core.NewRequest(word.ReqID(p+1), hot, rmw.FetchAdd(1), word.ProcID(p)),
				Hot: true,
			}}
		}
		sim := NewSim(Config{Procs: nn, Radix: radix, WaitBufCap: core.Unbounded}, inj)
		if !sim.Drain(5000) {
			t.Fatalf("radix=%d: did not drain", radix)
		}
		if got := sim.Memory().Peek(hot).Val; got != int64(nn) {
			t.Fatalf("radix=%d: final %d, want %d", radix, got, nn)
		}
		var vals []int64
		for p := 0; p < nn; p++ {
			vals = append(vals, scripts[p].replies[0].Val.Val)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i, v := range vals {
			if v != int64(i) {
				t.Fatalf("radix=%d: replies not a serialization at %d (%d)", radix, i, v)
			}
		}
		if sim.Stats().Combines == 0 {
			t.Errorf("radix=%d: no combining on an aligned burst", radix)
		}
	}
}

// TestRadixAblation: with equal N, radix 4 halves the stage count (lower
// zero-load latency) and both radices recover hot-spot bandwidth with
// combining.
func TestRadixAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const n = 64
	run := func(radix int, h float64, comb bool) Stats {
		waitCap := 0
		if comb {
			waitCap = core.Unbounded
		}
		inj := make([]Injector, n)
		for p := 0; p < n; p++ {
			inj[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.5, HotFraction: h, Window: 4}, 9)
		}
		sim := NewSim(Config{Procs: n, Radix: radix, WaitBufCap: waitCap}, inj)
		sim.Run(3000)
		return sim.Stats()
	}
	lat2 := run(2, 0, false).MeanLatency()
	lat4 := run(4, 0, false).MeanLatency()
	t.Logf("uniform latency: radix 2 = %.1f, radix 4 = %.1f cycles", lat2, lat4)
	if lat4 >= lat2 {
		t.Errorf("radix 4 (3 stages) should beat radix 2 (6 stages) on uniform latency")
	}
	for _, radix := range []int{2, 4} {
		no := run(radix, 0.25, false)
		yes := run(radix, 0.25, true)
		t.Logf("radix %d h=0.25: %.2f → %.2f ops/cycle", radix, no.Bandwidth(), yes.Bandwidth())
		if yes.Bandwidth() < 2*no.Bandwidth() {
			t.Errorf("radix %d: combining did not recover hot-spot bandwidth", radix)
		}
	}
}
