// Package network implements a cycle-accurate simulator of the
// packet-switched multistage interconnection network of Section 4: an
// Omega (shuffle-exchange) network of 2×2 combining switches connecting N
// processors to N interleaved memory modules.
//
// The simulator realizes the paper's assumptions directly:
//
//   - packet switching, with bounded FIFO output queues per switch port;
//   - non-overtaking links (queues preserve order);
//   - replies retrace the request path in reverse, using a path header the
//     request builds as it ascends (Section 4.1);
//   - combining at switch output queues, with a bounded wait buffer per
//     switch (partial combining when full — always correct, Section 7).
//
// It is the instrument for the hot-spot experiments (E8, E9, A1): the
// phenomena of Pfister & Norton [20] — bandwidth collapse toward the
// single-module limit and tree saturation delaying even non-hot traffic —
// emerge from the queueing model, and combining removes them.
package network

import (
	"fmt"

	"combining/internal/core"
)

// fwdMsg is a request message in flight, carrying its path header: the
// input port used at each stage so far, pushed as it ascends.
type fwdMsg struct {
	req core.Request
	// path[s] is the switch input port (0 or 1) the message used at
	// stage s.  Replies pop these in reverse.
	path []uint8
	// issueCycle timestamps injection, for latency accounting.
	issueCycle int64
	// hot marks hot-spot traffic for the per-class latency metrics.
	hot bool
}

// revMsg is a reply message descending toward a processor.
type revMsg struct {
	rep core.Reply
	// path holds the ports for the stages not yet traversed; the entry
	// for the current stage is popped on arrival.
	path []uint8
	// issueCycle and hot are copied from the request for metrics.
	issueCycle int64
	hot        bool
	// slots is the number of data values this reply carries (0 for a
	// bare store acknowledgment), for the traffic accounting of E11.
	slots int
}

// netRecord extends the core wait-buffer record with the reply routing
// state the network needs: the second request's path header and metric
// tags for both constituents.
type netRecord struct {
	core.Record
	// pathSecond is the full path header of the request serialized
	// second (whose reply is synthesized as f(val)).
	pathSecond []uint8
	// issue2 and hot2 tag the second request's reply for metrics.
	issue2 int64
	hot2   bool
	// needs1 and needs2 record whether each constituent's reply carries
	// a value, for traffic accounting.
	needs1, needs2 bool
	// reps2 names the second request's leaves so a crash flushing this
	// record can report exactly which operations lost their reply path.
	reps2 []core.Leaf
}

// cloneForDup returns a deep copy of the reply message for network-born
// duplication: the path header and the reply's Leaves map are copied into
// fresh storage, so the original's later path truncations — and
// deliverCommon's recycling of the header into the injection pool — cannot
// corrupt the duplicate, nor vice versa.
func (r revMsg) cloneForDup() revMsg {
	c := r
	c.path = append(make([]uint8, 0, cap(r.path)), r.path...)
	c.rep = r.rep.Clone()
	return c
}

func (m fwdMsg) String() string {
	return fmt.Sprintf("%v path=%v", m.req, m.path)
}
