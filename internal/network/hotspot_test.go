package network

import (
	"testing"
)

// Experiments E8/E9: the hot-spot phenomena of Pfister & Norton [20] that
// motivate the paper, reproduced on the cycle simulator.  These tests
// assert the qualitative shape — who wins and by how much — not absolute
// cycle counts.

const hotspotCycles = 4000

// TestHotspotBandwidthCollapse (E8): without combining, hot-spot traffic
// collapses delivered bandwidth toward the single-module saturation limit
// 1/(h + (1−h)/N); combining restores most of the uniform-traffic
// bandwidth.
func TestHotspotBandwidthCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const n = 64
	const rate = 0.6
	const h = 0.125

	uniform := RunHotspot(n, rate, 0, false, hotspotCycles, 1)
	noComb := RunHotspot(n, rate, h, false, hotspotCycles, 1)
	comb := RunHotspot(n, rate, h, true, hotspotCycles, 1)

	bwUniform := uniform.Stats.Bandwidth()
	bwNo := noComb.Stats.Bandwidth()
	bwComb := comb.Stats.Bandwidth()
	t.Logf("N=%d h=%.3f: uniform %.2f, no-combining %.2f, combining %.2f ops/cycle (limit %.2f)",
		n, h, bwUniform, bwNo, bwComb, AsymptoticHotBandwidth(n, h))

	// Without combining the hot module is the bottleneck: delivered
	// bandwidth must sit near (below ~1.5×) the analytic limit and far
	// below the uniform bandwidth.
	limit := AsymptoticHotBandwidth(n, h)
	if bwNo > 1.5*limit {
		t.Errorf("no-combining bandwidth %.2f exceeds saturation limit %.2f by >50%%", bwNo, limit)
	}
	if bwNo > bwUniform/2 {
		t.Errorf("no-combining bandwidth %.2f did not collapse (uniform %.2f)", bwNo, bwUniform)
	}
	// Combining must recover a large factor.
	if bwComb < 2*bwNo {
		t.Errorf("combining bandwidth %.2f is not ≥2× the uncombined %.2f", bwComb, bwNo)
	}
	// And approach the uniform level.
	if bwComb < 0.6*bwUniform {
		t.Errorf("combining bandwidth %.2f recovers <60%% of uniform %.2f", bwComb, bwUniform)
	}
}

// TestTreeSaturation (E9): the striking Pfister–Norton result is that hot
// spots delay *everyone*: the latency of requests that never touch the hot
// module blows up, because the saturated tree of full queues backs up into
// shared links.  Combining removes the effect.
func TestTreeSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const n = 64
	const h = 0.25
	// Moderate load (so the baseline is uncongested) with windows deep
	// enough that processors keep issuing past stalled hot requests —
	// the regime where Pfister & Norton observed tree saturation.  The
	// effect is bounded in this closed-loop model: windows eventually
	// fill with stuck hot requests and throttle the sources, so cold
	// latency roughly doubles rather than diverging.
	mkTraffic := func(h float64) TrafficConfig {
		return TrafficConfig{Rate: 0.3, HotFraction: h, Window: 16}
	}
	baseline := RunHotspotTraffic(n, mkTraffic(0), false, hotspotCycles, 2)
	noComb := RunHotspotTraffic(n, mkTraffic(h), false, hotspotCycles, 2)
	comb := RunHotspotTraffic(n, mkTraffic(h), true, hotspotCycles, 2)

	base := baseline.Stats.ColdMeanLatency()
	saturated := noComb.Stats.ColdMeanLatency()
	relieved := comb.Stats.ColdMeanLatency()
	t.Logf("cold-traffic latency: baseline %.1f, hot-spot no-combining %.1f, combining %.1f cycles",
		base, saturated, relieved)

	if saturated < 1.7*base {
		t.Errorf("tree saturation missing: cold latency %.1f under hot spot vs %.1f baseline", saturated, base)
	}
	if relieved > 1.3*base {
		t.Errorf("combining failed to relieve tree saturation: cold latency %.1f vs baseline %.1f", relieved, base)
	}
}

// TestHotspotMonotoneCollapse (E8 sweep shape): without combining,
// delivered bandwidth is non-increasing as h grows through
// {0, 1/16, 1/8, 1/4}, with a substantial drop overall; with combining the
// drop is small.
func TestHotspotMonotoneCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const n = 64
	const rate = 0.6
	hs := []float64{0, 1.0 / 16, 1.0 / 8, 1.0 / 4}

	var noComb, comb []float64
	for _, h := range hs {
		noComb = append(noComb, RunHotspot(n, rate, h, false, hotspotCycles, 3).Stats.Bandwidth())
		comb = append(comb, RunHotspot(n, rate, h, true, hotspotCycles, 3).Stats.Bandwidth())
	}
	t.Logf("h=%v  no-combining=%v  combining=%v", hs, noComb, comb)

	for i := 1; i < len(hs); i++ {
		// Allow 10% simulation noise on the monotonicity check.
		if noComb[i] > noComb[i-1]*1.1 {
			t.Errorf("no-combining bandwidth rose from %.2f to %.2f as h grew to %.3f",
				noComb[i-1], noComb[i], hs[i])
		}
	}
	if noComb[len(hs)-1] > noComb[0]/3 {
		t.Errorf("no-combining bandwidth at h=1/4 (%.2f) did not collapse vs h=0 (%.2f)",
			noComb[len(hs)-1], noComb[0])
	}
	if comb[len(hs)-1] < comb[0]/2 {
		t.Errorf("combining bandwidth at h=1/4 (%.2f) collapsed vs h=0 (%.2f)",
			comb[len(hs)-1], comb[0])
	}
}

// TestTrafficReductionAtHotspot (E11 in the network): with combining, the
// number of requests reaching the hot memory module and the total value
// slots moved must not exceed the uncombined run's.
func TestTrafficReductionAtHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const n = 64
	noComb := RunHotspot(n, 0.6, 0.25, false, hotspotCycles, 4)
	comb := RunHotspot(n, 0.6, 0.25, true, hotspotCycles, 4)

	// Per completed operation, combining must reduce memory-side load.
	memPerOpNo := float64(noComb.Stats.MemRequests) / float64(noComb.Stats.Completed)
	memPerOpComb := float64(comb.Stats.MemRequests) / float64(comb.Stats.Completed)
	t.Logf("memory requests per completed op: no-combining %.3f, combining %.3f", memPerOpNo, memPerOpComb)
	if memPerOpComb >= memPerOpNo {
		t.Errorf("combining did not reduce memory traffic per op: %.3f vs %.3f", memPerOpComb, memPerOpNo)
	}
	if comb.Stats.Combines == 0 {
		t.Error("no combining events under a heavy hot spot")
	}
}
