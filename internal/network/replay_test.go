package network

import (
	"bytes"
	"strings"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

const sampleTrace = `# a tiny trace: four processors hammer cell 5, plus private traffic
0 0 5 add 1
0 1 5 add 1
0 2 5 add 1
0 3 5 add 1
2 0 8 store 42
3 1 8 load
5 2 5 add 10
5 3 9 swap 7
`

func TestParseTrace(t *testing.T) {
	entries, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("%d entries, want 8", len(entries))
	}
	if entries[4].Cycle != 2 || entries[4].Proc != 0 || entries[4].Addr != 8 {
		t.Fatalf("entry 4 = %+v", entries[4])
	}
	if _, ok := entries[5].Op.(rmw.Load); !ok {
		t.Fatalf("entry 5 op = %v, want load", entries[5].Op)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 3",             // too few fields
		"x 0 5 add 1",       // bad cycle
		"0 0 5 frob 1",      // unknown op
		"0 0 5 add notanum", // bad argument
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) succeeded", bad)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	entries, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	again, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(entries) {
		t.Fatalf("round trip lost entries: %d vs %d", len(again), len(entries))
	}
	for i := range entries {
		a, b := entries[i], again[i]
		if a.Cycle != b.Cycle || a.Proc != b.Proc || a.Addr != b.Addr {
			t.Fatalf("entry %d changed: %+v vs %+v", i, a, b)
		}
		for _, x := range []word.Word{word.W(0), word.W(13)} {
			if a.Op.Apply(x) != b.Op.Apply(x) {
				t.Fatalf("entry %d op changed semantics", i)
			}
		}
	}
}

// TestReplayThroughMachine: the sample trace replays deterministically
// and the final memory matches the serial expectation.
func TestReplayThroughMachine(t *testing.T) {
	for _, waitCap := range []int{0, core.Unbounded} {
		entries, err := ParseTrace(strings.NewReader(sampleTrace))
		if err != nil {
			t.Fatal(err)
		}
		inj, reps, err := NewReplayInjectors(entries, 4)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSim(Config{Procs: 4, WaitBufCap: waitCap}, inj)
		if !sim.Drain(5000) {
			t.Fatal("did not drain")
		}
		for p, r := range reps {
			if !r.Done() {
				t.Fatalf("proc %d trace incomplete", p)
			}
		}
		if got := sim.Memory().Peek(5).Val; got != 14 {
			t.Fatalf("cell 5 = %d, want 14 (4 adds of 1 + one add of 10)", got)
		}
		if got := sim.Memory().Peek(8).Val; got != 42 {
			t.Fatalf("cell 8 = %d, want 42", got)
		}
		if got := sim.Memory().Peek(9).Val; got != 7 {
			t.Fatalf("cell 9 = %d, want 7", got)
		}
	}
}

// TestReplayOutOfRangeProc rejects malformed traces.
func TestReplayOutOfRangeProc(t *testing.T) {
	entries := []TraceEntry{{Proc: 9, Addr: 0, Op: rmw.Load{}}}
	if _, _, err := NewReplayInjectors(entries, 4); err == nil {
		t.Fatal("out-of-range proc accepted")
	}
}
