package network

import (
	"strings"
	"testing"

	"combining/internal/engine"
)

// Regression tests for the validation drift the four hand-rolled fill()
// copies had accumulated: Config.Validate is the one non-panicking path
// (commands turn it into a one-line exit), NewSim panics with the very
// same error, and the trace-with-parallel-stepper combination is rejected
// outright instead of silently falling back to the serial stepper.

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"defaults", Config{Procs: 8}, ""},
		{"radix4", Config{Procs: 64, Radix: 4}, ""},
		{"topology adopts size", Config{Topology: engine.FatTreeOf(16, 2)}, ""},
		{"unbounded queues", Config{Procs: 8, QueueCap: -1, RevQueueCap: -1, MemQueueCap: -1}, ""},
		{"zero procs", Config{}, "must be a positive power of 2"},
		{"non power", Config{Procs: 12}, "must be a positive power of 2"},
		{"non power of radix", Config{Procs: 32, Radix: 4}, "must be a positive power of 4"},
		{"radix one", Config{Procs: 8, Radix: 1}, "Radix must be >= 2"},
		{"negative workers", Config{Procs: 8, Workers: -1}, "Workers must be >= 0"},
		{"negative service", Config{Procs: 8, MemService: -1}, "service time must be >= 0"},
		{"trace with workers", Config{Procs: 8, Workers: 2, Trace: func(Event) {}},
			"Trace requires the serial stepper"},
		{"trace serial ok", Config{Procs: 8, Workers: 1, Trace: func(Event) {}}, ""},
		{"workers no trace ok", Config{Procs: 8, Workers: 2}, ""},
		{"size disagrees with topology", Config{Procs: 32, Topology: engine.FatTreeOf(16, 2)},
			"disagrees with the topology's processor count"},
		{"radix disagrees with topology", Config{Radix: 4, Topology: engine.FatTreeOf(16, 2)},
			"disagrees with the topology's radix"},
		{"invalid topology", Config{Topology: engine.FatTreeOf(12, 2)}, "invalid topology"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: valid config rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.HasPrefix(err.Error(), "network: ") {
			t.Errorf("%s: error %q is not prefixed with the engine name", tc.name, err)
		}
	}
}

// NewSim keeps its historical panic-on-invalid contract, and the panic
// value is exactly the Validate error — no second, drifting copy of the
// checks.
func TestNewSimPanicsWithValidateError(t *testing.T) {
	cfg := Config{Procs: 8, Workers: 2, Trace: func(Event) {}}
	want := cfg.Validate()
	if want == nil {
		t.Fatal("test config unexpectedly valid")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewSim accepted a config Validate rejects")
		}
		err, ok := r.(error)
		if !ok || err.Error() != want.Error() {
			t.Fatalf("NewSim panic = %v, Validate error = %v", r, want)
		}
	}()
	NewSim(cfg, make([]Injector, 8))
}
