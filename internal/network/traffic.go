package network

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"combining/internal/core"
	"combining/internal/flow"
	"combining/internal/rmw"
	"combining/internal/word"
)

// TrafficConfig describes the synthetic hot-spot workload of Pfister &
// Norton [20], which the paper's introduction builds on: each processor
// issues requests at a given rate; a fraction h of them target one hot
// address and the rest are uniform over the address space.
type TrafficConfig struct {
	// Rate is the per-cycle issue probability while under the window.
	Rate float64
	// HotFraction is h, the fraction of requests directed at HotAddr.
	HotFraction float64
	// HotAddr is the hot-spot location.
	HotAddr word.Addr
	// Window bounds outstanding requests per processor (processors
	// pipeline accesses, Section 3.2).  The zero value means the default
	// of 4; negative windows are invalid and NewStochastic panics with a
	// clear error rather than silently substituting the default.  With
	// Adaptive set, Window is the *initial* window of the AIMD
	// controller, not a fixed bound.
	Window int
	// Adaptive turns on AIMD admission control: the effective window
	// shrinks multiplicatively when round-trip latency signals congestion
	// (tree saturation on the path to a hot module) and recovers
	// additively as the tree drains.  MinWindow/MaxWindow clamp the range
	// (defaults 1 and 4×Window).
	Adaptive  bool
	MinWindow int
	MaxWindow int
	// AddrSpace sizes the uniform address range (default 64·N).
	AddrSpace word.Addr
	// ZipfN, when positive, replaces the two-class hot/uniform split with
	// a Zipfian popularity law over ZipfN addresses: rank r (address
	// HotAddr+r) is drawn with weight 1/(r+1)^ZipfS.  Rank 0 — HotAddr
	// itself — counts as the hot class for the Hot/Cold tallies and the
	// Injection.Hot flag, so combining instrumentation keeps working.
	// HotFraction is ignored under Zipfian traffic.  ZipfS ≤ 0 with a
	// positive ZipfN means uniform over the ZipfN addresses (the s → 0
	// limit); negative ZipfN panics.
	ZipfN int
	ZipfS float64
	// BurstOn/BurstOff impose deterministic on/off bursts on the issue
	// process: the injector issues only during the first BurstOn cycles of
	// every BurstOn+BurstOff period (phase taken from the global cycle
	// count, so all injectors burst together — the worst case for the
	// network).  BurstOn == 0 means no bursting; BurstOn > 0 with
	// BurstOff == 0 is always-on; negative values panic.  The gate is
	// checked before any randomness is drawn, so the same seed produces
	// the same request stream shifted into the on-windows.
	BurstOn  int64
	BurstOff int64
	// MakeOp builds the operation for a request; nil means
	// fetch-and-add(1), the Ultracomputer hot-spot operation.
	MakeOp func(rng *rand.Rand, hot bool) rmw.Mapping
}

// Stochastic is the workload injector for one processor.
type Stochastic struct {
	proc        word.ProcID
	cfg         TrafficConfig
	rng         *rand.Rand
	ids         *word.IDGen
	nprocs      int
	outstanding int

	// aimd is the adaptive admission controller (nil unless
	// cfg.Adaptive); issued remembers each in-flight request's issue
	// cycle so Deliver can feed the controller round-trip times.
	aimd   *flow.AIMD
	issued map[word.ReqID]int64

	// zipfCDF is the normalized cumulative weight table for Zipfian
	// address draws (nil unless cfg.ZipfN > 0): rank r is chosen when a
	// uniform draw lands in (zipfCDF[r-1], zipfCDF[r]].
	zipfCDF []float64

	// faa is the default fetch-and-add(1) operation boxed once: storing a
	// 16-byte rmw.Assoc into an interface per request would otherwise
	// heap-allocate on the steady-state injection path.  srcs is likewise
	// the one-element source set every request of this injector shares —
	// safe because nothing in the machine grows a Srcs slice in place
	// (combining always merges into fresh storage; see core.mergeSrcs).
	faa  rmw.Mapping
	srcs []word.ProcID

	// Hot and Cold count issued requests by class.
	Hot, Cold int64
}

var _ Injector = (*Stochastic)(nil)

// NewStochastic builds the injector for processor proc of nprocs.  A
// negative cfg.Window is rejected with a panic; zero means the default.
func NewStochastic(proc, nprocs int, cfg TrafficConfig, seed uint64) *Stochastic {
	if cfg.Window < 0 {
		panic(fmt.Sprintf("network: TrafficConfig.Window must be ≥ 0 (0 means the default of 4), got %d", cfg.Window))
	}
	if cfg.Window == 0 {
		cfg.Window = 4
	}
	if cfg.ZipfN < 0 {
		panic(fmt.Sprintf("network: TrafficConfig.ZipfN must be ≥ 0 (0 disables Zipfian traffic), got %d", cfg.ZipfN))
	}
	if cfg.BurstOn < 0 || cfg.BurstOff < 0 {
		panic(fmt.Sprintf("network: TrafficConfig burst cycles must be ≥ 0, got on=%d off=%d", cfg.BurstOn, cfg.BurstOff))
	}
	if cfg.BurstOn == 0 && cfg.BurstOff > 0 {
		panic(fmt.Sprintf("network: TrafficConfig.BurstOff %d without BurstOn — the injector would never issue", cfg.BurstOff))
	}
	s := &Stochastic{
		proc:   word.ProcID(proc),
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(seed, uint64(proc)*0x9e3779b97f4a7c15+1)),
		ids:    word.Partition(proc, nprocs),
		nprocs: nprocs,
		faa:    rmw.FetchAdd(1),
		srcs:   []word.ProcID{word.ProcID(proc)},
	}
	if cfg.AddrSpace == 0 {
		s.cfg.AddrSpace = word.Addr(64 * nprocs)
	}
	if cfg.Adaptive {
		min, max := cfg.MinWindow, cfg.MaxWindow
		if min <= 0 {
			min = 1
		}
		if max <= 0 {
			max = 4 * cfg.Window
		}
		s.aimd = flow.NewAIMD(cfg.Window, min, max)
		s.issued = make(map[word.ReqID]int64)
	}
	if cfg.ZipfN > 0 {
		// Inverse-CDF table: weight 1/(r+1)^s for rank r, normalized so
		// the last entry is exactly 1 (no draw can fall off the end).
		s.zipfCDF = make([]float64, cfg.ZipfN)
		sum := 0.0
		for r := 0; r < cfg.ZipfN; r++ {
			sum += math.Pow(float64(r+1), -cfg.ZipfS)
			s.zipfCDF[r] = sum
		}
		for r := range s.zipfCDF {
			s.zipfCDF[r] /= sum
		}
		s.zipfCDF[cfg.ZipfN-1] = 1
	}
	return s
}

// Window returns the current admission window — fixed, or the AIMD
// controller's live value under Adaptive.
func (s *Stochastic) Window() int {
	if s.aimd != nil {
		return s.aimd.Window()
	}
	return s.cfg.Window
}

// Admission exposes the AIMD controller (nil unless Adaptive), for
// experiment reporting: mean window, decrease count.
func (s *Stochastic) Admission() *flow.AIMD { return s.aimd }

// Next draws the next request per the Bernoulli issue process, gated by
// the deterministic burst schedule when one is configured.
func (s *Stochastic) Next(cycle int64) (Injection, bool) {
	if s.cfg.BurstOn > 0 && s.cfg.BurstOff > 0 &&
		cycle%(s.cfg.BurstOn+s.cfg.BurstOff) >= s.cfg.BurstOn {
		// Off phase.  Checked before any rng draw so the burst gate only
		// delays the request stream — it never reshuffles it.
		return Injection{}, false
	}
	if s.outstanding >= s.Window() {
		return Injection{}, false
	}
	if s.rng.Float64() >= s.cfg.Rate {
		return Injection{}, false
	}
	var hot bool
	var addr word.Addr
	if s.zipfCDF != nil {
		rank := sort.SearchFloat64s(s.zipfCDF, s.rng.Float64())
		hot, addr = rank == 0, s.cfg.HotAddr+word.Addr(rank)
	} else {
		hot = s.rng.Float64() < s.cfg.HotFraction
		addr = s.cfg.HotAddr
		if !hot {
			addr = word.Addr(s.rng.Int64N(int64(s.cfg.AddrSpace)))
			if addr == s.cfg.HotAddr {
				addr++
			}
		}
	}
	op := s.faa
	if s.cfg.MakeOp != nil {
		op = s.cfg.MakeOp(s.rng, hot)
	}
	if hot {
		s.Hot++
	} else {
		s.Cold++
	}
	s.outstanding++
	id := s.ids.NextPartitioned(s.nprocs)
	if s.issued != nil {
		s.issued[id] = cycle
	}
	// Built literally rather than through core.NewRequest so the request
	// reuses the injector's shared one-element Srcs instead of allocating
	// a fresh set per request.
	return Injection{Req: core.Request{ID: id, Addr: addr, Op: op, Srcs: s.srcs}, Hot: hot}, true
}

// Deliver releases a window slot and, under Adaptive, feeds the round-trip
// time to the AIMD controller.
func (s *Stochastic) Deliver(rep core.Reply, cycle int64) {
	s.outstanding--
	if s.issued != nil {
		if at, ok := s.issued[rep.ID]; ok {
			delete(s.issued, rep.ID)
			s.aimd.OnDeliver(cycle-at, cycle)
		}
	}
}

// HotspotResult is one point of the hot-spot sweep (experiment E8/E9).
type HotspotResult struct {
	Procs       int
	HotFraction float64
	Combining   bool
	Stats       Stats
}

// RunHotspot runs one hot-spot simulation: nprocs processors, issue rate,
// hot fraction h, for the given number of cycles.  combining selects an
// unbounded wait buffer versus none.
func RunHotspot(nprocs int, rate, h float64, combining bool, cycles int, seed uint64) HotspotResult {
	traffic := TrafficConfig{Rate: rate, HotFraction: h, HotAddr: 0}
	return RunHotspotTraffic(nprocs, traffic, combining, cycles, seed)
}

// RunHotspotTraffic is RunHotspot with full control over the workload
// (window depth, operation mix, address space).
func RunHotspotTraffic(nprocs int, traffic TrafficConfig, combining bool, cycles int, seed uint64) HotspotResult {
	waitCap := 0
	if combining {
		waitCap = core.Unbounded
	}
	cfg := Config{
		Procs:      nprocs,
		QueueCap:   4,
		WaitBufCap: waitCap,
	}
	inj := make([]Injector, nprocs)
	for p := 0; p < nprocs; p++ {
		inj[p] = NewStochastic(p, nprocs, traffic, seed)
	}
	sim := NewSim(cfg, inj)
	sim.Run(cycles)
	return HotspotResult{
		Procs:       nprocs,
		HotFraction: traffic.HotFraction,
		Combining:   combining,
		Stats:       sim.Stats(),
	}
}

// AsymptoticHotBandwidth is the analytic saturation limit the sweep is
// compared against: with fraction h of references directed at one module
// and the rest spread over N modules, a non-combining memory delivers at
// most 1/(h + (1−h)/N) references per cycle — the single hot module serves
// one request per cycle and receives fraction h + (1−h)/N of all traffic.
func AsymptoticHotBandwidth(nprocs int, h float64) float64 {
	return 1 / (h + (1-h)/float64(nprocs))
}
