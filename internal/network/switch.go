package network

import (
	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// switchNode is one 2×2 combining switch.  Forward traffic enters on two
// input ports and leaves through two output FIFO queues; combining happens
// when an arriving request finds a queued request for the same address in
// its output queue.  Reverse traffic (replies) enters from the memory side,
// is decombined against the wait buffer, and leaves through two reverse
// FIFO queues toward the processors.
type switchNode struct {
	stage, index int

	outQ   [][]fwdMsg // one forward FIFO per output port (radix k)
	revQ   [][]revMsg // one reverse FIFO per input port
	wait   *core.WaitBuffer[netRecord]
	pol    core.Policy
	outCap int // forward queue capacity; <= 0 means unbounded
	revCap int // reverse base credit per port; <= 0 means unbounded
	// maxRev is the reverse-queue high-water mark across this switch's
	// ports — the observable the bounded-fan-out invariant is asserted on.
	maxRev int
	// buggyForward enables the incorrect early-reply optimization of
	// Section 5.1 (Config.BuggyLoadForwarding).
	buggyForward bool
	// trace, when non-nil, observes combine/decombine/reject events;
	// cycleRef supplies the current cycle for event timestamps.
	trace    func(Event)
	cycleRef *int64

	// CombinedHere counts requests absorbed by combining at this switch.
	CombinedHere int64
}

// fwdReq projects a queued forward message to its request for the shared
// combine scan.
func fwdReq(m *fwdMsg) *core.Request { return &m.req }

func newSwitch(stage, index, radix, outCap, revCap, waitCap int, pol core.Policy, buggyForward bool) *switchNode {
	return &switchNode{
		stage:        stage,
		index:        index,
		outQ:         make([][]fwdMsg, radix),
		revQ:         make([][]revMsg, radix),
		outCap:       outCap,
		revCap:       revCap,
		wait:         core.NewWaitBuffer[netRecord](waitCap),
		pol:          pol,
		buggyForward: buggyForward,
	}
}

// tryAccept routes a forward message into the output queue for outPort,
// stamping the input port into the path header.  It first attempts to
// combine with a queued request to the same address; failing that it
// appends to the queue if space remains.  It reports false when the
// message cannot be accepted this cycle (the upstream holds it).
func (sw *switchNode) tryAccept(m fwdMsg, outPort int, inPort uint8, st *Stats) bool {
	m.path = append(m.path, inPort)
	q := &sw.outQ[outPort]
	if sw.buggyForward {
		if _, isLoad := m.req.Op.(rmw.Load); isLoad {
			for i := range *q {
				queued := (*q)[i]
				c, isConst := queued.req.Op.(rmw.Const)
				if !isConst || queued.req.Addr != m.req.Addr {
					continue
				}
				// Answer the load NOW with the store's value, while
				// the store is still on its way to memory — the
				// incorrect optimization.  The synthesized reply
				// descends from this switch along the load's path.
				sw.acceptReply(revMsg{
					rep:        core.Reply{ID: m.req.ID, Val: word.W(c.V)},
					path:       m.path,
					issueCycle: m.issueCycle,
					hot:        m.hot,
					slots:      1,
				})
				return true
			}
		}
	}
	// Only the LAST queued request for the address is a legal combining
	// partner (M2.3) — the scan shared with the other engines via
	// core.CombineAtTail.
	tc, rejected, ok := core.CombineAtTail(*q, fwdReq, m.req, sw.pol, sw.wait.CanPush)
	if rejected {
		// A full wait buffer forfeits the combine; count the missed
		// opportunity for the partial-combining ablation.
		sw.wait.Rejections++
		if sw.trace != nil {
			sw.trace(Event{Cycle: *sw.cycleRef, Kind: EvCombineReject,
				ID: m.req.ID, Addr: m.req.Addr, Stage: sw.stage, Switch: sw.index})
		}
	}
	if ok {
		queued := &(*q)[tc.Index]
		// The message whose id the combined request carries is the
		// one serialized first; the other's routing state goes into
		// the wait-buffer record.
		first, second := *queued, m
		if tc.Swapped {
			first, second = m, *queued
		}
		nr := netRecord{
			Record:     tc.Rec,
			pathSecond: second.path,
			issue2:     second.issueCycle,
			hot2:       second.hot,
			needs1:     rmw.NeedsValue(first.req.Op),
			needs2:     rmw.NeedsValue(second.req.Op),
			reps2:      second.req.Reps,
		}
		if sw.wait.Push(tc.Rec.ID1, nr) {
			*queued = fwdMsg{
				req:        tc.Combined,
				path:       first.path,
				issueCycle: first.issueCycle,
				hot:        first.hot,
			}
			sw.CombinedHere++
			st.Combines++
			if sw.trace != nil {
				sw.trace(Event{Cycle: *sw.cycleRef, Kind: EvCombine,
					ID: tc.Rec.ID1, ID2: tc.Rec.ID2, Addr: m.req.Addr,
					Stage: sw.stage, Switch: sw.index})
			}
			return true
		}
		// Full despite CanPush — cannot happen single-threaded; fall
		// through to plain queueing.
	}
	if sw.outCap > 0 && len(*q) >= sw.outCap {
		return false
	}
	*q = append(*q, m)
	if n := len(*q); n > st.MaxOutQueue {
		st.MaxOutQueue = n
	}
	return true
}

// canAcceptReply is the reserved-credit acceptance check: a reply may enter
// this switch only while every reverse queue sits below the base credit
// revCap.  The check must cover all ports because the reply's decombining
// fan-out is unknown until the wait buffer is consulted — a combined reply
// can scatter leaves across every port.  An accepted reply then appends its
// entire fan-out unconditionally: each leaf beyond the first consumes a wait
// record this switch itself created, so the records double as reserved
// reverse credits and per-port occupancy stays ≤ revCap + wait-buffer
// capacity (the invariant TestReverseBound asserts).  Holding a reply
// upstream when the check fails cannot deadlock: reverse queues drain
// toward the processors, whose delivery ports always consume.
func (sw *switchNode) canAcceptReply() bool {
	if sw.revCap <= 0 {
		return true
	}
	for _, q := range sw.revQ {
		if len(q) >= sw.revCap {
			return false
		}
	}
	return true
}

// acceptReply processes a reply arriving from the memory side: it pops this
// stage's port from the path header, undoes every combine recorded here for
// the id (LIFO, possibly several for k-way combining), and places the
// resulting replies in the reverse queues.  The decombining fan-out restores
// exactly the messages combining removed, so total reverse traffic never
// exceeds the uncombined load — recorded as the maxRev high-water mark and
// asserted in invariant_test.go; admission is gated by canAcceptReply, which
// is why the appends below need no capacity check.
func (sw *switchNode) acceptReply(r revMsg) {
	// PopMatch skips records the reply cannot answer: under fault
	// injection a record goes stale when its combined message is dropped
	// downstream, and a later (retransmitted) reply for the same id must
	// pass through rather than synthesize a second requester's reply from
	// a combine that never reached memory.  On a healthy network every
	// record matches and this is exactly Pop.
	match := func(nr netRecord) bool { return core.CanDecombine(nr.Record, r.rep) }
	if rec, ok := sw.wait.PopMatch(r.rep.ID, match); ok {
		r1, r2 := core.DecombineExact(rec.Record, r.rep)
		if sw.trace != nil {
			sw.trace(Event{Cycle: *sw.cycleRef, Kind: EvDecombine,
				ID: r1.ID, ID2: r2.ID, Stage: sw.stage, Switch: sw.index})
		}
		sw.acceptReply(revMsg{
			rep:        r1,
			path:       r.path,
			issueCycle: r.issueCycle,
			hot:        r.hot,
			slots:      boolSlots(rec.needs1),
		})
		sw.acceptReply(revMsg{
			rep:        r2,
			path:       rec.pathSecond,
			issueCycle: rec.issue2,
			hot:        rec.hot2,
			slots:      boolSlots(rec.needs2),
		})
		return
	}
	port := r.path[sw.stage]
	r.path = r.path[:sw.stage]
	sw.revQ[port] = append(sw.revQ[port], r)
	if n := len(sw.revQ[port]); n > sw.maxRev {
		sw.maxRev = n
	}
}

// crash flushes the switch's volatile state — forward queues, reverse
// queues, and the wait buffer's combine records — returning the leaf
// request ids whose only copy here was lost.  A flushed wait record is a
// double loss: the second requester's routing state is gone, so even if the
// combined message's reply returns it passes through (PopMatch finds
// nothing) and the second requester recovers by retransmitting.
func (sw *switchNode) crash() []word.ReqID {
	var ids []word.ReqID
	addReq := func(req *core.Request) {
		if req.Reps == nil {
			ids = append(ids, req.ID)
			return
		}
		for _, lf := range req.Reps {
			ids = append(ids, lf.ID)
		}
	}
	for port := range sw.outQ {
		for i := range sw.outQ[port] {
			addReq(&sw.outQ[port][i].req)
		}
		sw.outQ[port] = nil
		for i := range sw.revQ[port] {
			rep := &sw.revQ[port][i].rep
			if rep.Leaves == nil {
				ids = append(ids, rep.ID)
				continue
			}
			for id := range rep.Leaves {
				ids = append(ids, id)
			}
		}
		sw.revQ[port] = nil
	}
	for _, rec := range sw.wait.Flush() {
		if rec.reps2 == nil {
			ids = append(ids, rec.ID2)
			continue
		}
		for _, lf := range rec.reps2 {
			ids = append(ids, lf.ID)
		}
	}
	return ids
}

func boolSlots(needs bool) int {
	if needs {
		return 1
	}
	return 0
}

// popFwd removes and returns the head of the forward queue for port.
func (sw *switchNode) popFwd(port int) fwdMsg {
	q := sw.outQ[port]
	m := q[0]
	copy(q, q[1:])
	sw.outQ[port] = q[:len(q)-1]
	return m
}

// popRev removes and returns the head of the reverse queue for port.
func (sw *switchNode) popRev(port int) revMsg {
	q := sw.revQ[port]
	m := q[0]
	copy(q, q[1:])
	sw.revQ[port] = q[:len(q)-1]
	return m
}
