package network

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"combining/internal/faults"
)

// snapshotAfter runs a seeded hot-spot workload for a fixed cycle count at
// the given worker width and returns the stable-ordered Snapshot JSON.
func snapshotAfter(workers int, plan *faults.Plan, cycles int) []byte {
	const n = 64
	inj := make([]Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = NewStochastic(p, n, TrafficConfig{
			Rate: 0.7, HotFraction: 0.4, Window: 4,
		}, 99)
	}
	sim := NewSim(Config{Procs: n, Workers: workers, Faults: plan}, inj)
	sim.Run(cycles)
	return sim.Snapshot().JSON()
}

// TestParallelStepDeterministic: the worker count must be unobservable —
// every counter, gauge and histogram bucket identical to the serial
// stepper at any width, clean and under a fault plan.
func TestParallelStepDeterministic(t *testing.T) {
	widths := []int{2, 3, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range []struct {
		name string
		plan *faults.Plan
	}{
		{"clean", nil},
		{"faults", faults.Default(21)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := snapshotAfter(1, tc.plan, 3000)
			for _, w := range widths {
				got := snapshotAfter(w, tc.plan, 3000)
				if !bytes.Equal(got, want) {
					t.Errorf("Workers=%d snapshot differs from serial:\nserial: %s\nparallel: %s",
						w, want, got)
				}
			}
		})
	}
}

// TestParallelRadix4Deterministic covers the radix-4 group shapes (strided
// forward groups with stride 4, contiguous reverse groups of 4).
func TestParallelRadix4Deterministic(t *testing.T) {
	run := func(workers int) []byte {
		const n = 64
		inj := make([]Injector, n)
		for p := 0; p < n; p++ {
			inj[p] = NewStochastic(p, n, TrafficConfig{
				Rate: 0.8, HotFraction: 0.3, Window: 4,
			}, 7)
		}
		sim := NewSim(Config{Procs: n, Radix: 4, Workers: workers}, inj)
		sim.Run(2000)
		return sim.Snapshot().JSON()
	}
	want := run(1)
	for _, w := range []int{2, 5, 8} {
		if got := run(w); !bytes.Equal(got, want) {
			t.Errorf("radix 4, Workers=%d snapshot differs from serial", w)
		}
	}
}

// TestParallelMinimumNetwork: k=1 (Procs == Radix) exercises the stage-0 ==
// last-stage corner where both per-switch paths coincide.
func TestParallelMinimumNetwork(t *testing.T) {
	run := func(workers int) []byte {
		const n = 2
		inj := make([]Injector, n)
		for p := 0; p < n; p++ {
			inj[p] = NewStochastic(p, n, TrafficConfig{Rate: 0.9, Window: 4}, 3)
		}
		sim := NewSim(Config{Procs: n, Workers: workers}, inj)
		sim.Run(500)
		return sim.Snapshot().JSON()
	}
	want := run(1)
	if got := run(4); !bytes.Equal(got, want) {
		t.Errorf("k=1, Workers=4 snapshot differs from serial")
	}
}

// BenchmarkParallelStep measures per-cycle step cost across worker widths
// under a saturating hot-spot load — the parallel_speedup numbers in
// BENCH_combining.json come from the cmd/experiments twin of this loop.
func BenchmarkParallelStep(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n%d/w%d", n, w), func(b *testing.B) {
				inj := make([]Injector, n)
				for p := 0; p < n; p++ {
					inj[p] = NewStochastic(p, n, TrafficConfig{
						Rate: 0.9, HotFraction: 0.3, Window: 4,
					}, 5)
				}
				sim := NewSim(Config{Procs: n, Workers: w}, inj)
				if sim.pool != nil {
					// Bare Step() bypasses Run's pool bracket; start the
					// workers here so the loop measures persistent dispatch,
					// not goroutine spawns.
					sim.pool.Start()
					defer sim.pool.Stop()
				}
				sim.Run(64) // fill the pipeline before timing
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sim.Step()
				}
			})
		}
	}
}
