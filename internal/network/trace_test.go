package network

import (
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// TestTraceAudit: the event stream is internally consistent — every
// injection is eventually delivered, every combine is undone by exactly
// one decombine at the same switch, and memory sees exactly the
// uncombined residue.
func TestTraceAudit(t *testing.T) {
	const n = 16
	log := &TraceLog{}
	inj, scripts := emptyInjectors(n)
	id := 1
	for p := 0; p < n; p++ {
		for r := 0; r < 3; r++ {
			scripts[p].script = append(scripts[p].script, Injection{
				Req: core.NewRequest(word.ReqID(id), 5, rmw.FetchAdd(1), word.ProcID(p)),
			})
			id++
		}
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: core.Unbounded, Trace: log.Record}, inj)
	if !sim.Drain(5000) {
		t.Fatal("did not drain")
	}

	injects := log.Count(EvInject)
	delivers := log.Count(EvDeliver)
	combines := log.Count(EvCombine)
	decombines := log.Count(EvDecombine)
	memServes := log.Count(EvMemServe)
	t.Logf("injects=%d delivers=%d combines=%d decombines=%d memory=%d",
		injects, delivers, combines, decombines, memServes)

	if injects != 3*n || delivers != 3*n {
		t.Fatalf("injects %d / delivers %d, want %d each", injects, delivers, 3*n)
	}
	if combines != decombines {
		t.Fatalf("%d combines but %d decombines", combines, decombines)
	}
	// Conservation: every request either reached memory or was absorbed
	// by a combine.
	if memServes+combines != injects {
		t.Fatalf("memory %d + combines %d != injects %d", memServes, combines, injects)
	}
	// Each combine is undone at the switch that performed it.
	type key struct {
		stage, sw int
		id1, id2  word.ReqID
	}
	open := map[key]int{}
	for _, e := range log.Events {
		switch e.Kind {
		case EvCombine:
			open[key{e.Stage, e.Switch, e.ID, e.ID2}]++
		case EvDecombine:
			k := key{e.Stage, e.Switch, e.ID, e.ID2}
			if open[k] == 0 {
				t.Fatalf("decombine without matching combine: %v", e)
			}
			open[k]--
		}
	}
	for k, c := range open {
		if c != 0 {
			t.Fatalf("combine never undone: %+v ×%d", k, c)
		}
	}
	// Events are time-ordered.
	for i := 1; i < len(log.Events); i++ {
		if log.Events[i].Cycle < log.Events[i-1].Cycle {
			t.Fatal("trace events out of cycle order")
		}
	}
}

// TestTraceRejects: a zero-capacity wait buffer logs rejects, never
// combines.
func TestTraceRejects(t *testing.T) {
	const n = 8
	log := &TraceLog{}
	inj, scripts := emptyInjectors(n)
	for p := 0; p < n; p++ {
		scripts[p].script = []Injection{{
			Req: core.NewRequest(word.ReqID(p+1), 5, rmw.FetchAdd(1), word.ProcID(p)),
		}}
	}
	sim := NewSim(Config{Procs: n, WaitBufCap: 0, Trace: log.Record}, inj)
	if !sim.Drain(2000) {
		t.Fatal("did not drain")
	}
	if log.Count(EvCombine) != 0 {
		t.Fatal("combining with zero-capacity buffer")
	}
	if log.Count(EvCombineReject) == 0 {
		t.Fatal("aligned burst produced no reject events")
	}
}
