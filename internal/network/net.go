package network

import (
	"fmt"

	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/flow"
	"combining/internal/memory"
	"combining/internal/par"
	"combining/internal/recover"
	"combining/internal/rmw"
	"combining/internal/stats"
	"combining/internal/word"
)

// Config parameterizes a simulated machine: N processors, a staged network
// of log_k N columns of k×k combining switches, and N interleaved memory
// modules.  The wiring between columns comes from Topology (omega by
// default); everything else — switches, queues, flow control, faults, the
// parallel stepper — is wiring-independent.
type Config struct {
	// Topology selects the inter-stage wiring (engine.OmegaOf,
	// engine.FatTreeOf, ...).  nil means the paper's omega network.  When
	// set, Procs and Radix may be left 0 to adopt the topology's, and must
	// agree with it otherwise.
	Topology engine.Staged
	// Procs is N, a power of Radix ≥ Radix.
	Procs int
	// Radix is the switch degree k (default 2, the paper's concrete
	// design; 4 or 8 trade stages for per-switch contention).
	Radix int
	// QueueCap bounds each switch forward output queue; this finite
	// buffering is what produces tree saturation under hot spots.
	// Values < 0 mean unbounded.  Default 4.
	QueueCap int
	// RevQueueCap is the per-port base credit of each switch reverse
	// queue: replies are admitted only while every port sits below it, and
	// wait-buffer records then act as reserved credits for the decombining
	// fan-out (per-port occupancy ≤ RevQueueCap + WaitBufCap — see
	// switchNode.canAcceptReply and DESIGN.md).  0 defaults to QueueCap;
	// negative means unbounded (the pre-flow-control behavior).
	RevQueueCap int
	// MemQueueCap bounds each memory module's input queue, including the
	// request in service; a full module holds the last network stage
	// instead of absorbing unbounded backlog.  0 defaults to QueueCap;
	// negative means unbounded.
	MemQueueCap int
	// WatchdogCycles is the progress watchdog limit: with work in flight
	// and no message movement for this many cycles the machine declares
	// livelock/deadlock (Stalled() reports it, soaks fail fast with a
	// replayable seed).  0 defaults to 10000 — comfortably above the
	// fault plans' capped retry backoff — and negative disables it.
	WatchdogCycles int64
	// WaitBufCap bounds each switch's wait buffer: 0 disables combining
	// entirely, core.Unbounded removes the limit, and small positive
	// values give partial combining (ablation A1).
	WaitBufCap int
	// AllowReversal enables the Section 5.1 order-reversal optimization.
	AllowReversal bool
	// BuggyLoadForwarding enables the *incorrect* optimization Section
	// 5.1 warns against: when a load meets a queued store to the same
	// address, the load is answered immediately with the store's value
	// while the store continues to memory.  The load can then be
	// satisfied before the store occurs in memory, breaking
	// serializability; experiment E3 demonstrates the failure.
	BuggyLoadForwarding bool
	// MemService is the memory module service time in cycles (default 1).
	MemService int
	// Workers shards each cycle's switch, memory-module and delivery work
	// across this many goroutines (see internal/par and DESIGN.md §6).
	// 0 or 1 keep the single-threaded stepper.  Worker count is
	// unobservable in the simulation: every counter, histogram and reply
	// is byte-for-byte identical at any setting.  Tracing (Trace non-nil)
	// forces the serial stepper so event order stays the serial order.
	Workers int
	// Faults, when non-nil, arms the deterministic fault plan (see
	// internal/faults) and with it the full recovery layer: requests carry
	// representation leaves, memory modules keep reply caches, processors
	// retransmit on timeout with capped backoff, and duplicate replies are
	// suppressed at the ports.
	Faults *faults.Plan
	// Trace, when non-nil, observes every inject/combine/memory/
	// decombine/deliver event (see trace.go).  Tracing a long run is
	// expensive; it is meant for audits and walkthroughs.
	Trace func(Event)
}

// Validate reports whether the configuration is usable, with the
// documented zero-value defaults applied first.  All config policing
// funnels through the engine core's one Spec path; NewSim panics with the
// same error, so commands call Validate first and turn it into a one-line
// exit instead of a stack trace.
func (c Config) Validate() error {
	return c.normalize()
}

// normalize applies the defaults in place and validates the result.
func (c *Config) normalize() error {
	if c.Topology != nil {
		if c.Radix == 0 {
			c.Radix = c.Topology.Radix()
		}
		if c.Procs == 0 {
			c.Procs = c.Topology.Procs()
		}
	}
	if c.Radix == 0 {
		c.Radix = 2
	}
	if c.Radix < 2 {
		return fmt.Errorf("network: Radix must be >= 2, got %d", c.Radix)
	}
	spec := engine.Spec{
		Engine:      "network",
		Procs:       c.Procs,
		PowerOf:     c.Radix,
		Banks:       1,
		Workers:     c.Workers,
		Service:     c.MemService,
		TraceSerial: c.Trace != nil && c.Workers > 1,
		AdversarialSerial: c.Faults != nil && c.Faults.HasAdversarial() &&
			c.Workers > 1,
	}
	if c.Topology != nil {
		spec.Topology = c.Topology
		spec.TopologySize = c.Topology.Procs()
		spec.TopologyField = "processor count"
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if c.Topology != nil && c.Radix != c.Topology.Radix() {
		return fmt.Errorf("network: Radix %d disagrees with the topology's radix (%d)",
			c.Radix, c.Topology.Radix())
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4
	}
	if c.RevQueueCap == 0 {
		c.RevQueueCap = c.QueueCap
	}
	if c.MemQueueCap == 0 {
		c.MemQueueCap = c.QueueCap
	}
	if c.MemService == 0 {
		c.MemService = 1
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = DefaultWatchdogCycles
	}
	return nil
}

// DefaultWatchdogCycles is the default no-progress limit: far above the
// fault plans' capped retransmit backoff (RetryCap defaults to 512 cycles),
// so only a genuine livelock or deadlock can trip it.
const DefaultWatchdogCycles = 10000

// Stats aggregates one simulation run.
type Stats struct {
	Cycles    int64
	Issued    int64
	Completed int64

	// Latency sums, split by traffic class for the tree-saturation
	// experiment (E9).
	LatencySum     int64
	HotCompleted   int64
	HotLatencySum  int64
	ColdCompleted  int64
	ColdLatencySum int64

	// Combines counts combine events across all switches; Rejects counts
	// combines refused because a wait buffer was full.
	Combines int64
	Rejects  int64

	// MaxOutQueue is the deepest forward queue observed; MaxRevQueue and
	// MaxMemQueue are the reverse-queue and memory-input high-water marks
	// the flow-control bounds are checked against.
	MaxOutQueue int
	MaxRevQueue int
	MaxMemQueue int

	// Backpressure accounting: HoldsRev counts replies held upstream by
	// the reserved-credit check, HoldsMem requests held at the last stage
	// by a full module, HoldsMemOut module completions held by a full
	// last-stage switch.
	HoldsRev, HoldsMem, HoldsMemOut int64

	// SaturationCycles counts cycles the queue tree was saturated end to
	// end (every stage had a full forward queue); SaturationMaxStreak is
	// the longest such run — the tree-saturation signature of E14.
	SaturationCycles    int64
	SaturationMaxStreak int64

	// WatchdogTrips is 1 if the progress watchdog declared a stall.
	WatchdogTrips int64

	// Checkpoints counts module checkpoints committed (crash plans only).
	Checkpoints int64

	// Latency is the round-trip histogram (cycles), recorded per
	// completion through the shared instrumentation subsystem.
	Latency stats.HistogramSnapshot

	// Traffic accounting (E11): link traversals and value slots moved,
	// in each direction.
	FwdHops, RevHops     int64
	FwdSlots, RevSlots   int64
	MemRequests, MemAcks int64
}

// Percentile returns the approximate q-quantile (0 < q ≤ 1) of the
// round-trip latency from the power-of-two histogram, interpolating
// within the bucket.
func (s Stats) Percentile(q float64) float64 { return s.Latency.Percentile(q) }

// MeanLatency returns average round-trip cycles over completed requests.
func (s Stats) MeanLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Completed)
}

// ColdMeanLatency returns the mean latency of non-hot traffic.
func (s Stats) ColdMeanLatency() float64 {
	if s.ColdCompleted == 0 {
		return 0
	}
	return float64(s.ColdLatencySum) / float64(s.ColdCompleted)
}

// HotMeanLatency returns the mean latency of hot-spot traffic.
func (s Stats) HotMeanLatency() float64 {
	if s.HotCompleted == 0 {
		return 0
	}
	return float64(s.HotLatencySum) / float64(s.HotCompleted)
}

// Bandwidth returns completed memory operations per cycle.
func (s Stats) Bandwidth() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Cycles)
}

// Injection is one request offered by an injector, tagged for metrics.
type Injection struct {
	Req core.Request
	Hot bool
}

// Injector supplies traffic for one processor port and consumes replies.
// Implementations need not be safe for concurrent use; the simulator calls
// them from a single goroutine.
type Injector interface {
	// Next offers the next request at the given cycle.  ok=false means
	// the processor has nothing to issue this cycle.  A request returned
	// by Next is guaranteed to be injected (possibly stalled for queue
	// space first); Next is not called again until then.
	Next(cycle int64) (Injection, bool)
	// Deliver hands a completed reply back.
	Deliver(rep core.Reply, cycle int64)
}

// heldFwd is a request deferred by link-level reordering on its terminal
// link (last-stage switch → memory module): it re-enters the module at
// release, or one cycle later per cycle the module is crashed or full.
type heldFwd struct {
	release int64
	mod     int
	m       fwdMsg
}

// heldRev is a reply deferred by link-level reordering on its terminal
// link (stage-0 switch → processor); it is delivered at release.
type heldRev struct {
	release int64
	proc    int
	r       revMsg
}

// Sim is the cycle-driven machine: processors (injectors), the forward and
// reverse Omega network, and the memory modules.
type Sim struct {
	cfg    Config
	topo   engine.Staged // the wiring; all routing arithmetic lives here
	n      int           // processors
	k      int           // stages
	radix  int           // switch degree
	stages [][]*switchNode
	mem    *memory.Array
	inj    []Injector

	// pending holds a request accepted from an injector but not yet
	// admitted into stage 0 (backpressure at the processor port);
	// hasPending marks the occupied slots.  Values, not pointers: the
	// message is copied in and out so the steady-state injection path
	// never forces a heap escape.
	pending    []fwdMsg
	hasPending []bool
	// pathFree recycles delivered replies' path headers back to the
	// injection path (getPath/putPath).  Every array holds capacity for
	// all k stages, so the appends along the forward path never regrow
	// one — the steady-state cycle path allocates nothing.  Only
	// single-goroutine phases touch it (injection, worker-0 delivery
	// commit).
	pathFree [][]uint8
	// meta preserves message metadata across the memory module, which
	// only transports core requests.  It is sharded per module: entry
	// meta[mod][id] is written by the stage-(k−1) switch feeding module
	// mod and consumed when that module's reply emerges, so under the
	// parallel stepper each shard has exactly one owner per phase.  The
	// values are boxed: fwdMsg is larger than a map's inline-value limit,
	// so storing it directly would heap-allocate a hidden box on every
	// insert — instead metaFree recycles the boxes per module (same
	// single-owner sharding as meta itself), keeping the steady-state
	// memory handoff allocation-free.
	meta     []map[word.ReqID]*fwdMsg
	metaFree [][]*fwdMsg

	cycle int64
	stats Stats
	// lat records per-completion round-trip latency in cycles.
	lat stats.Histogram

	// wd is the progress watchdog; sat the tree-saturation monitor.
	wd  *flow.Watchdog
	sat flow.Saturation

	// Fault-mode state (nil/zero on a healthy machine).
	flt *faults.Injector
	trk *faults.Tracker
	// retry queues retransmissions per processor, drained ahead of fresh
	// traffic by injectAll.
	retry [][]fwdMsg
	// stallMask caches this cycle's per-switch stall decisions so each
	// switch-cycle is counted once.
	stallMask [][]bool
	// Crash–restart state (nil/empty unless the plan has crash windows):
	// rec is the recovery ledger, crashMask/memDead this cycle's dead
	// components.  Both masks are filled serially at the top of Step with
	// edge detection — a rising edge flushes the component, a falling edge
	// counts the restore — so every Workers width sees identical crash
	// schedules.
	rec       *recover.Manager
	crashMask [][]bool
	memDead   []bool
	// orphans counts replies arriving with no request metadata — the
	// expected fate of the losing copy when an original and a retransmit
	// both reach memory (satellite of the metadata panic).
	orphans int64
	// Adversarial-delivery state (plan.HasAdversarial(); Validate rejects
	// Workers > 1 with such plans): adv arms the integrity layer on the
	// terminal links, and fwdLimbo/revLimbo hold reordered messages until
	// their release cycle (drained serially at the top of Step).
	adv      bool
	fwdLimbo []heldFwd
	revLimbo []heldRev

	// Parallel stepper state (Config.Workers > 1, nil/empty otherwise):
	// the worker pool (persistent workers bracketed by Run/Drain), the
	// phase barrier, the phase function handed to the pool each cycle
	// (bound once at construction so the cycle loop allocates no
	// closures), one cache-line-padded stats shard per worker merged
	// serially after the phases, and the per-rotation-position stage-0
	// delivery buffers replayed in serial order by worker 0.  See
	// parallel.go and DESIGN.md §6.
	pool     *par.Pool
	bar      par.Barrier
	stepFn   func(w int)
	shards   []netShard
	delivBuf [][]delivery
	// Conflict-group partitions per stage, derived from the wiring at
	// construction (nil when serial); see engine.FwdGroups/RevGroups.
	fwdGroups [][][]int
	revGroups [][][]int
}

// NewSim builds a machine; injectors must supply exactly cfg.Procs entries.
func NewSim(cfg Config, inj []Injector) *Sim {
	if err := cfg.normalize(); err != nil {
		panic(err)
	}
	if len(inj) != cfg.Procs {
		panic(fmt.Sprintf("network: got %d injectors for %d processors", len(inj), cfg.Procs))
	}
	topo := cfg.Topology
	if topo == nil {
		topo = engine.OmegaOf(cfg.Procs, cfg.Radix)
	}
	n := cfg.Procs
	radix := cfg.Radix
	k := topo.Stages()
	pol := core.Policy{AllowReversal: cfg.AllowReversal}
	stages := make([][]*switchNode, k)
	for s := range stages {
		stages[s] = make([]*switchNode, n/radix)
		for i := range stages[s] {
			stages[s][i] = newSwitch(s, i, radix, cfg.QueueCap, cfg.RevQueueCap, cfg.WaitBufCap, pol, cfg.BuggyLoadForwarding)
		}
	}
	memOpts := []memory.Option{memory.WithServiceTime(cfg.MemService)}
	if cfg.MemQueueCap > 0 {
		memOpts = append(memOpts, memory.WithQueueCap(cfg.MemQueueCap))
	}
	if cfg.Faults != nil {
		memOpts = append(memOpts, memory.WithReplyCache())
		if cfg.Faults.HasCrashes() {
			memOpts = append(memOpts, memory.WithCheckpoints())
		}
		if cfg.Faults.Canary == "nodedup" {
			memOpts = append(memOpts, memory.WithNoDedupCanary())
		}
	}
	meta := make([]map[word.ReqID]*fwdMsg, n)
	for i := range meta {
		meta[i] = make(map[word.ReqID]*fwdMsg)
	}
	s := &Sim{
		cfg:        cfg,
		topo:       topo,
		n:          n,
		k:          k,
		radix:      radix,
		stages:     stages,
		mem:        memory.NewArray(n, memOpts...),
		inj:        inj,
		pending:    make([]fwdMsg, n),
		hasPending: make([]bool, n),
		meta:       meta,
		metaFree:   make([][]*fwdMsg, n),
		wd:         flow.NewWatchdog(cfg.WatchdogCycles),
	}
	if cfg.Faults != nil {
		s.flt = faults.NewInjector(*cfg.Faults)
		s.trk = faults.NewTracker(s.flt)
		s.adv = s.flt.Plan().HasAdversarial()
		s.retry = make([][]fwdMsg, n)
		s.stallMask = make([][]bool, k)
		for i := range s.stallMask {
			s.stallMask[i] = make([]bool, n/radix)
		}
		if plan := s.flt.Plan(); plan.HasCrashes() {
			s.rec = recover.New(plan.CheckpointEvery)
			s.crashMask = make([][]bool, k)
			for i := range s.crashMask {
				s.crashMask[i] = make([]bool, n/radix)
			}
			s.memDead = make([]bool, n)
		}
	}
	if cfg.Trace != nil {
		for _, stage := range stages {
			for _, sw := range stage {
				sw.trace = cfg.Trace
				sw.cycleRef = &s.cycle
			}
		}
	}
	// Validation rejected Workers > 1 with tracing on, so reaching here
	// with a pool means the serial fallback can no longer happen silently.
	if cfg.Workers > 1 {
		s.pool = par.NewPool(cfg.Workers)
		s.bar = par.NewBarrier(s.pool.Workers())
		s.stepFn = s.phaseWorker
		s.shards = make([]netShard, s.pool.Workers())
		s.delivBuf = make([][]delivery, n/radix)
		s.fwdGroups = make([][][]int, k)
		s.revGroups = make([][][]int, k)
		for st := 0; st+1 < k; st++ {
			s.fwdGroups[st] = engine.FwdGroups(topo, st)
		}
		for st := 1; st < k; st++ {
			s.revGroups[st] = engine.RevGroups(topo, st)
		}
	}
	return s
}

// Memory exposes the module array (for initialization and inspection).
func (s *Sim) Memory() *memory.Array { return s.mem }

// Cycle returns the current cycle number.
func (s *Sim) Cycle() int64 { return s.cycle }

// Topology exposes the wiring the machine was built with.
func (s *Sim) Topology() engine.Staged { return s.topo }

// outPortFor selects the switch output port at a stage by the topology's
// destination-tag routing rule.
func (s *Sim) outPortFor(stage int, dst int) int {
	return s.topo.OutPort(stage, dst)
}

// destModule is the home module of an address.
func (s *Sim) destModule(addr word.Addr) int { return s.mem.HomeOf(addr) }

// Step advances the machine one cycle.
func (s *Sim) Step() {
	s.cycle++
	s.stats.Cycles++
	if s.flt != nil {
		for stage := range s.stallMask {
			for si := range s.stallMask[stage] {
				s.stallMask[stage][si] = s.flt.Stalled(stage, si, s.cycle)
			}
		}
		if s.rec != nil {
			s.updateCrashState()
		}
		for _, p := range s.trk.Expired(s.cycle) {
			s.retry[p.Proc] = append(s.retry[p.Proc],
				fwdMsg{req: p.Req, path: s.getPath(), issueCycle: p.IssueCycle, hot: p.Hot})
		}
		if s.adv {
			s.drainLimbo()
		}
	}
	if s.pool != nil {
		s.runPhases()
	} else {
		s.drainReverse()
		s.tickMemory()
		s.drainForward()
	}
	s.injectAll()

	s.sat.Observe(s.treeSaturated())
	s.stats.SaturationCycles = s.sat.Cycles()
	s.stats.SaturationMaxStreak = s.sat.MaxStreak()
	if s.wd.Observe(s.cycle, s.InFlight(), s.progressSig()) {
		s.stats.WatchdogTrips++
	}
}

// updateCrashState advances the crash–restart masks one cycle, serially so
// every Workers width sees the same schedule.  A rising edge (component
// entering its window) flushes the component's volatile state and records
// the lost in-flight operations; a falling edge is the restart — the
// component rejoins empty (switch) or at its last checkpoint (module).
func (s *Sim) updateCrashState() {
	for stage := range s.crashMask {
		for si := range s.crashMask[stage] {
			dead := s.flt.SwitchCrashed(stage, si, s.cycle)
			if dead && !s.crashMask[stage][si] {
				s.rec.NoteCrash()
				s.rec.NoteLost(s.trk, s.stages[stage][si].crash())
			} else if !dead && s.crashMask[stage][si] {
				s.rec.NoteRestore()
			}
			s.crashMask[stage][si] = dead
		}
	}
	for mod := 0; mod < s.n; mod++ {
		dead := s.flt.MemCrashed(mod, s.cycle)
		if dead && !s.memDead[mod] {
			s.rec.NoteCrash()
			s.rec.NoteLost(s.trk, s.mem.Module(mod).Crash())
		} else if !dead && s.memDead[mod] {
			s.rec.NoteRestore()
		}
		s.memDead[mod] = dead
	}
}

// swDead reports whether the switch at (stage, idx) is crashed this cycle.
func (s *Sim) swDead(stage, idx int) bool {
	return s.rec != nil && s.crashMask[stage][idx]
}

// modDead reports whether module mod is crashed this cycle.
func (s *Sim) modDead(mod int) bool {
	return s.rec != nil && s.memDead[mod]
}

// treeSaturated reports whether the queue tree is saturated end to end this
// cycle: every stage holds at least one forward queue at capacity.  A full
// queue at one stage is ordinary queueing; full queues at every stage mean
// hot-spot backpressure has propagated from the memory modules back to the
// injection ports — Pfister & Norton's tree saturation.
func (s *Sim) treeSaturated() bool {
	if s.cfg.QueueCap <= 0 {
		return false // unbounded queues never fill
	}
	for _, stage := range s.stages {
		full := false
		for _, sw := range stage {
			for port := 0; port < s.radix && !full; port++ {
				full = len(sw.outQ[port]) >= s.cfg.QueueCap
			}
			if full {
				break
			}
		}
		if !full {
			return false
		}
	}
	return true
}

// progressSig is the watchdog's monotone progress signature: any message
// movement — injection, a hop in either direction, a memory service cycle,
// a delivery, or a fault event that consumes a message — changes it.  If it
// freezes with work in flight, nothing is moving anywhere.
func (s *Sim) progressSig() int64 {
	sig := s.stats.Issued + s.stats.Completed + s.stats.FwdHops +
		s.stats.RevHops + s.stats.MemAcks + s.orphans
	for mod := 0; mod < s.n; mod++ {
		sig += s.mem.Module(mod).BusyCycles
	}
	if s.flt != nil {
		sig += s.flt.Injected()
	}
	return sig
}

// Stalled reports whether the progress watchdog has tripped: work was in
// flight and nothing moved for Config.WatchdogCycles cycles.
func (s *Sim) Stalled() bool { return s.wd.Tripped() }

// StallReport formats the watchdog diagnostic with a queue snapshot — the
// state dump a failing soak prints next to its replay seed.
func (s *Sim) StallReport() string {
	detail := fmt.Sprintf("pending=%d meta=%d", s.pendingCount(), s.metaCount())
	for st, stage := range s.stages {
		fwd, rev, wait := 0, 0, 0
		for _, sw := range stage {
			for port := 0; port < s.radix; port++ {
				fwd += len(sw.outQ[port])
				rev += len(sw.revQ[port])
			}
			wait += sw.wait.Len()
		}
		detail += fmt.Sprintf("\nstage %d: fwd=%d rev=%d wait=%d", st, fwd, rev, wait)
	}
	memQ := 0
	for mod := 0; mod < s.n; mod++ {
		memQ += s.mem.Module(mod).QueueLen()
	}
	detail += fmt.Sprintf("\nmemory queued=%d", memQ)
	crashed := ""
	if s.flt != nil {
		crashed = s.flt.ActiveCrashes(s.wd.TripCycle())
	}
	return flow.StallReport("network", s.wd, s.InFlight(), crashed, detail)
}

// metaInsert files a request's metadata under its module shard, reusing a
// recycled box so the steady-state insert allocates nothing.  The free
// list shares meta's ownership partition: the stage-(k−1) switch phase
// and the memory phase split over the same index range, so module mod's
// list is only ever touched by the worker owning switch mod/radix.
func (s *Sim) metaInsert(mod int, m fwdMsg) {
	var box *fwdMsg
	if free := s.metaFree[mod]; len(free) > 0 {
		box = free[len(free)-1]
		s.metaFree[mod] = free[:len(free)-1]
	} else {
		box = new(fwdMsg)
	}
	*box = m
	s.meta[mod][m.req.ID] = box
}

// metaCount sums the per-module metadata shards (requests in memory).
func (s *Sim) metaCount() int {
	n := 0
	for _, shard := range s.meta {
		n += len(shard)
	}
	return n
}

func (s *Sim) pendingCount() int {
	n := 0
	for _, occupied := range s.hasPending {
		if occupied {
			n++
		}
	}
	return n
}

// Run advances the machine the given number of cycles, stopping early if
// the progress watchdog trips (a stalled machine makes no further progress
// by definition; callers check Stalled / StallReport).  A parallel machine
// starts its persistent workers here, once per Run — not once per cycle —
// and retires them on return; a bare Step outside Run still works through
// the pool's spawn fallback.
func (s *Sim) Run(cycles int) {
	if s.pool != nil {
		s.pool.Start()
		defer s.pool.Stop()
	}
	for i := 0; i < cycles; i++ {
		if s.wd.Tripped() {
			return
		}
		s.Step()
	}
}

// drainReverse moves one reply per reverse link per cycle, destination side
// first so each reply advances at most one hop per cycle.  Switch and port
// order rotate with the cycle so contending streams share a downstream
// queue fairly (round-robin arbitration, as in real switches).
func (s *Sim) drainReverse() {
	rot := int(s.cycle)
	n0 := len(s.stages[0])
	for si := 0; si < n0; si++ {
		s.revSwitch0((si+rot)%n0, &s.stats, nil)
	}
	for stage := 1; stage < s.k; stage++ {
		ns := len(s.stages[stage])
		for si := 0; si < ns; si++ {
			s.revSwitch(stage, (si+rot)%ns, &s.stats)
		}
	}
}

// revSwitch0 makes the reverse move for one stage-0 switch: pop one reply
// per port and deliver it to its processor.  Stage 0 touches no other
// switch, so under the parallel stepper every stage-0 switch is its own
// conflict group; deliveries are appended to sink (when non-nil) for the
// serial replay instead of delivered inline, because injectors and the
// retry tracker are single-goroutine.
func (s *Sim) revSwitch0(idx int, st *Stats, sink *[]delivery) {
	if s.flt != nil && s.stallMask[0][idx] {
		return // blacked-out switch moves nothing this cycle
	}
	if s.swDead(0, idx) {
		return // crashed switch moves nothing until it restarts
	}
	sw := s.stages[0][idx]
	rot := int(s.cycle)
	for pi := 0; pi < s.radix; pi++ {
		port := (pi + rot) % s.radix
		if len(sw.revQ[port]) == 0 {
			continue
		}
		inLine := sw.index*s.radix + port
		r := sw.popRev(port)
		if s.flt != nil && (s.flt.DropReply(
			faults.Site(0, sw.index, port), r.rep.ID, r.rep.Attempt) ||
			s.flt.DropLinkRev(0, sw.index, s.cycle)) {
			continue // reply lost on the reverse link
		}
		st.RevHops++
		st.RevSlots += int64(r.slots)
		proc := s.topo.LineProc(inLine)
		if sink != nil {
			*sink = append(*sink, delivery{proc: proc, r: r})
			continue
		}
		s.deliver(proc, r)
	}
}

// revSwitch makes the reverse move for one switch of stage ≥ 1: pop one
// reply per port and hand it to the previous-stage switch when its reserved
// credits allow.  The previous-stage switches of stage-s switch idx are
// idx/radix + port·(n/radix²), so exactly the radix switches sharing
// idx/radix touch the same previous-stage set — the conflict groups the
// parallel stepper partitions on.
func (s *Sim) revSwitch(stage, idx int, st *Stats) {
	if s.flt != nil && s.stallMask[stage][idx] {
		return // blacked-out switch moves nothing this cycle
	}
	if s.swDead(stage, idx) {
		return // crashed switch moves nothing until it restarts
	}
	sw := s.stages[stage][idx]
	rot := int(s.cycle)
	for pi := 0; pi < s.radix; pi++ {
		port := (pi + rot) % s.radix
		if len(sw.revQ[port]) == 0 {
			continue
		}
		inLine := sw.index*s.radix + port
		prevLine := s.topo.PrevLine(stage, inLine)
		prev := s.stages[stage-1][prevLine/s.radix]
		if s.swDead(stage-1, prevLine/s.radix) {
			// Downstream switch is dead: hold the reply here so the crash
			// costs only the flushed state, not a stream of new losses.
			st.HoldsRev++
			continue
		}
		if !prev.canAcceptReply() {
			// Downstream reverse credits exhausted: hold the reply here.
			// Stage order is ascending, so the credits this pop would need
			// were already replenished this cycle if the downstream switch
			// moved anything.
			st.HoldsRev++
			continue
		}
		r := sw.popRev(port)
		if s.flt != nil && (s.flt.DropReply(
			faults.Site(stage, sw.index, port), r.rep.ID, r.rep.Attempt) ||
			s.flt.DropLinkRev(stage, sw.index, s.cycle)) {
			continue // reply lost on the reverse link
		}
		st.RevHops++
		st.RevSlots += int64(r.slots)
		prev.acceptReply(r)
	}
}

// memEnter crosses the adversarial terminal link into module mod: the
// request is stamped at the last trusted hop (the switch — combining has
// legitimately rewritten the op by now), possibly corrupted on the wire,
// verified, and quarantined on mismatch; the retransmit machinery then
// repairs the loss exactly-once.  The duplicate draw comes after
// verification so dup_injected counts only messages that actually entered
// the module twice.  Metadata is keyed and stored before corruption can
// strike, never after — a quarantined request leaves no shard entry.
func (s *Sim) memEnter(mod int, m fwdMsg, st *Stats) {
	m.req = core.StampRequest(m.req)
	wire := m.req
	site := faults.Site(s.k, mod, 0)
	if mask := s.flt.CorruptMask(site, m.req.ID, m.req.Attempt); mask != 0 {
		wire = core.CorruptRequest(wire, mask)
	}
	if !core.RequestOK(wire) {
		s.flt.NoteCorruptDropped()
		return // quarantined: equivalent to a detected drop on this link
	}
	st.MemRequests++
	s.metaInsert(mod, m)
	s.mem.Module(mod).Enqueue(wire)
	if s.flt.Duplicate(site, wire.ID, wire.Attempt) && s.mem.Module(mod).CanEnqueue() {
		// Network-born duplicate: the link re-emits a message the sender
		// never retransmitted.  The reply cache answers the second copy
		// from its leaf values; its reply finds no metadata and orphans.
		// The copy deep-copies its Srcs/Reps slices — a shallow second
		// enqueue would share backing arrays with the first.
		st.MemRequests++
		s.mem.Module(mod).Enqueue(wire.Clone())
	}
}

// drainLimbo releases reordered messages whose deferral has elapsed.  It
// runs serially at the top of Step — Validate rejects adversarial plans
// with Workers > 1 — so release order is defined by the serial sweep.  A
// forward release finding its module crashed or full re-holds one cycle
// (the deferral bound is on the adversarial link, not on ordinary
// backpressure), and held messages are never re-reordered, so the
// deferral is bounded by ReorderMax plus the backpressure already counted
// against every request.
func (s *Sim) drainLimbo() {
	if len(s.fwdLimbo) > 0 {
		keep := s.fwdLimbo[:0]
		for _, h := range s.fwdLimbo {
			if h.release > s.cycle {
				keep = append(keep, h)
				continue
			}
			if s.modDead(h.mod) || !s.mem.Module(h.mod).CanEnqueue() {
				h.release = s.cycle + 1
				keep = append(keep, h)
				continue
			}
			s.memEnter(h.mod, h.m, &s.stats)
		}
		s.fwdLimbo = keep
	}
	if len(s.revLimbo) > 0 {
		keep := s.revLimbo[:0]
		for _, h := range s.revLimbo {
			if h.release > s.cycle {
				keep = append(keep, h)
				continue
			}
			s.deliverVerified(h.proc, h.r)
		}
		s.revLimbo = keep
	}
}

// deliver hands a reply across the terminal link to its processor.  Under
// an adversarial plan the link may defer (reorder), duplicate, or corrupt
// it; the reply is stamped here — the last trusted hop — and verified on
// the far side by deliverVerified.
func (s *Sim) deliver(proc int, r revMsg) {
	if s.adv {
		r.rep = core.StampReply(r.rep)
		site := faults.Site(0, proc, 0)
		if d := s.flt.ReorderDelay(site, r.rep.ID, r.rep.Attempt); d > 0 {
			s.revLimbo = append(s.revLimbo,
				heldRev{release: s.cycle + d, proc: proc, r: r})
			return
		}
		s.deliverVerified(proc, r)
		return
	}
	s.deliverCommon(proc, r)
}

// deliverVerified is the processor side of the adversarial terminal link:
// corrupt on the wire, verify the checksum, quarantine on mismatch (the
// processor retransmits and the reply cache answers), and deliver — twice
// when the link duplicates, with the tracker suppressing the second copy.
func (s *Sim) deliverVerified(proc int, r revMsg) {
	site := faults.Site(0, proc, 0)
	wire := r.rep
	if mask := s.flt.CorruptMask(site, wire.ID, wire.Attempt); mask != 0 {
		wire = core.CorruptReply(wire, mask)
	}
	if !core.ReplyOK(wire) {
		s.flt.NoteCorruptDropped()
		return // quarantined: the retransmit machinery re-drives the op
	}
	r.rep = wire
	if s.flt.Duplicate(site, wire.ID, wire.Attempt) {
		// The duplicate must own its storage: a shallow copy would share
		// the path array (recycled per delivery by deliverCommon) and the
		// Leaves map with the original, so delivering the same revMsg
		// twice corrupts whichever copy is processed second.
		s.deliverCommon(proc, r.cloneForDup())
	}
	s.deliverCommon(proc, r)
}

func (s *Sim) deliverCommon(proc int, r revMsg) {
	// The reply has left the network: its path header (empty by now —
	// stage 0 popped the last entry) returns to the injection pool.  This
	// runs before the duplicate-suppression check on purpose: a suppressed
	// copy's header recycles too, and post-clone every copy owns its own
	// array.
	s.putPath(r.path)
	if s.trk != nil {
		if _, ok := s.trk.Deliver(r.rep.ID, s.cycle); !ok {
			return // duplicate of an already-delivered reply; suppressed
		}
	}
	if s.rec != nil {
		// A completion whose in-flight copy a crash flushed was re-driven
		// here by the retry machinery — count the replay.
		s.rec.NoteDelivered(r.rep.ID)
	}
	lat := s.cycle - r.issueCycle
	s.stats.Completed++
	s.stats.LatencySum += lat
	s.lat.Record(lat)
	if r.hot {
		s.stats.HotCompleted++
		s.stats.HotLatencySum += lat
	} else {
		s.stats.ColdCompleted++
		s.stats.ColdLatencySum += lat
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace(Event{Cycle: s.cycle, Kind: EvDeliver,
			ID: r.rep.ID, Stage: -1, Switch: proc})
	}
	s.inj[proc].Deliver(r.rep, s.cycle)
}

// tickMemory advances every module and feeds completed replies into the
// reverse side of the last stage.
func (s *Sim) tickMemory() {
	for mod := 0; mod < s.n; mod++ {
		s.tickModule(mod, &s.stats, &s.orphans)
	}
}

// tickModule advances one module one cycle.  A module touches only its own
// metadata shard and the last-stage switch mod/radix, so the radix modules
// behind one last-stage switch form a conflict group under the parallel
// stepper; orphans accumulate through the pointer so each worker's count
// stays on its own shard.
func (s *Sim) tickModule(mod int, st *Stats, orphans *int64) {
	if s.modDead(mod) {
		return // crashed module serves nothing until it restarts
	}
	if s.rec != nil && s.rec.CheckpointDue(s.cycle) {
		// Commit the module's recovery image: executed-but-uncommitted
		// leaves join the committed cache and withheld replies become
		// releasable (output commit) — see memory.Module.Checkpoint.
		s.mem.Module(mod).Checkpoint()
		st.Checkpoints++
	}
	if s.flt != nil && s.flt.MemStalled(mod, s.cycle) {
		return // module inside a slowdown window serves nothing
	}
	sw := s.stages[s.k-1][mod/s.radix]
	if !sw.canAcceptReply() {
		// The last-stage switch has no reverse credit: the module's
		// output port is blocked, so it holds its completed request
		// rather than emitting a reply with nowhere to go.
		st.HoldsMemOut++
		return
	}
	rep, ok := s.mem.Module(mod).Tick()
	if !ok {
		return
	}
	st.MemAcks++
	box, found := s.meta[mod][rep.ID]
	if !found {
		if s.flt != nil {
			// Expected under retransmission: when an original and a
			// retransmit both reach memory, the first reply consumes
			// the metadata and the second becomes an orphan.
			*orphans++
			return
		}
		panic(fmt.Sprintf("network: cycle %d, module %d: reply id %d (%v) with no request metadata",
			s.cycle, mod, rep.ID, rep))
	}
	m := *box
	*box = fwdMsg{}
	s.metaFree[mod] = append(s.metaFree[mod], box)
	delete(s.meta[mod], rep.ID)
	if s.cfg.Trace != nil {
		s.cfg.Trace(Event{Cycle: s.cycle, Kind: EvMemServe,
			ID: rep.ID, Addr: m.req.Addr, Stage: -1, Switch: mod})
	}
	sw.acceptReply(revMsg{
		rep:        rep,
		path:       m.path,
		issueCycle: m.issueCycle,
		hot:        m.hot,
		slots:      boolSlots(rmw.NeedsValue(m.req.Op)),
	})
}

// drainForward moves one request per forward link per cycle, memory side
// first, with round-robin switch/port arbitration as in drainReverse.
func (s *Sim) drainForward() {
	rot := int(s.cycle)
	for stage := s.k - 1; stage >= 0; stage-- {
		ns := len(s.stages[stage])
		for si := 0; si < ns; si++ {
			s.fwdSwitch(stage, (si+rot)%ns, &s.stats)
		}
	}
}

// fwdSwitch makes the forward move for one switch: one request per output
// port, into the memory modules (last stage) or the next stage.  A
// last-stage switch touches only its own radix modules and their metadata
// shards — no cross-switch sharing; an earlier-stage switch idx feeds the
// next-stage switches (idx mod n/radix²)·radix + port, so exactly the radix
// switches congruent mod n/radix² share a next-stage set — the strided
// conflict groups the parallel stepper partitions on.
func (s *Sim) fwdSwitch(stage, idx int, st *Stats) {
	if s.flt != nil && s.stallMask[stage][idx] {
		return // blacked-out switch moves nothing this cycle
	}
	if s.swDead(stage, idx) {
		return // crashed switch moves nothing until it restarts
	}
	sw := s.stages[stage][idx]
	rot := int(s.cycle)
	for pi := 0; pi < s.radix; pi++ {
		port := (pi + rot) % s.radix
		if len(sw.outQ[port]) == 0 {
			continue
		}
		m := sw.outQ[port][0]
		outLine := sw.index*s.radix + port
		if stage == s.k-1 {
			// The link into module outLine.
			if s.modDead(outLine) {
				// Dead module: hold the request in the switch — it was
				// flushed once at the crash; nothing new is fed to it.
				st.HoldsMem++
				continue
			}
			if !s.mem.Module(outLine).CanEnqueue() {
				// Bounded module input full: hold the request in
				// the switch — the backpressure that turns a hot
				// module into tree saturation instead of unbounded
				// memory-side buffering.
				st.HoldsMem++
				continue
			}
			sw.popFwd(port)
			if s.flt != nil && (s.flt.DropForward(
				faults.Site(s.k, outLine, 0), m.req.ID, m.req.Attempt) ||
				s.flt.DropLinkFwd(s.k, outLine, s.cycle)) {
				continue // request lost on the memory link
			}
			st.FwdHops++
			st.FwdSlots += int64(core.ValueSlots(m.req.Op))
			if s.adv {
				if d := s.flt.ReorderDelay(faults.Site(s.k, outLine, 0),
					m.req.ID, m.req.Attempt); d > 0 {
					s.fwdLimbo = append(s.fwdLimbo,
						heldFwd{release: s.cycle + d, mod: outLine, m: m})
					continue
				}
				s.memEnter(outLine, m, st)
				continue
			}
			st.MemRequests++
			s.metaInsert(outLine, m)
			s.mem.Module(outLine).Enqueue(m.req)
			continue
		}
		nextLine := s.topo.NextLine(stage, outLine)
		next := s.stages[stage+1][nextLine/s.radix]
		if s.swDead(stage+1, nextLine/s.radix) {
			continue // dead downstream switch: hold the request here
		}
		if s.flt != nil && (s.flt.DropForward(
			faults.Site(stage+1, nextLine/s.radix, nextLine%s.radix), m.req.ID, m.req.Attempt) ||
			s.flt.DropLinkFwd(stage+1, nextLine/s.radix, s.cycle)) {
			sw.popFwd(port)
			continue // request lost on the inter-stage link
		}
		dst := s.destModule(m.req.Addr)
		if next.tryAccept(m, s.outPortFor(stage+1, dst), uint8(nextLine%s.radix), st) {
			sw.popFwd(port)
			st.FwdHops++
			st.FwdSlots += int64(core.ValueSlots(m.req.Op))
		}
	}
}

// getPath returns an empty path header with capacity for all k stages,
// reusing storage recycled by deliverCommon: at steady state the
// inject→deliver loop cycles a fixed set of arrays and allocates nothing.
func (s *Sim) getPath() []uint8 {
	if n := len(s.pathFree); n > 0 {
		p := s.pathFree[n-1]
		s.pathFree = s.pathFree[:n-1]
		return p
	}
	return make([]uint8, 0, s.k)
}

// putPath recycles a path header whose message left the machine.
// Undersized arrays (grown by append on messages that entered without a
// pooled header) are dropped so getPath's capacity guarantee holds.
func (s *Sim) putPath(p []uint8) {
	if cap(p) < s.k {
		return
	}
	s.pathFree = append(s.pathFree, p[:0])
}

// injectAll offers each processor's next request to stage 0, in rotating
// order so no processor port permanently outranks another.
func (s *Sim) injectAll() {
	rot := int(s.cycle)
	for pi := 0; pi < s.n; pi++ {
		proc := (pi + rot) % s.n
		if s.flt != nil && len(s.retry[proc]) > 0 {
			// Retransmissions take the port's injection slot this cycle,
			// bypassing the pending slot entirely: a fresh request held
			// there (HeldBack) may be waiting on exactly the delivery
			// this retransmit recovers.
			m := s.retry[proc][0]
			line := s.topo.ProcLine(proc)
			if s.swDead(0, line/s.radix) {
				continue // dead stage-0 switch: hold the retransmit
			}
			if s.flt.DropForward(faults.Site(0, line/s.radix, line%s.radix), m.req.ID, m.req.Attempt) ||
				s.flt.DropLinkFwd(0, line/s.radix, s.cycle) {
				s.putPath(m.path)
				s.retry[proc] = s.retry[proc][1:]
				continue
			}
			sw := s.stages[0][line/s.radix]
			dst := s.destModule(m.req.Addr)
			if sw.tryAccept(m, s.outPortFor(0, dst), uint8(line%s.radix), &s.stats) {
				s.retry[proc] = s.retry[proc][1:]
				s.stats.FwdHops++
				s.stats.FwdSlots += int64(core.ValueSlots(m.req.Op))
			}
			continue
		}
		if !s.hasPending[proc] {
			inj, ok := s.inj[proc].Next(s.cycle)
			if !ok {
				continue
			}
			req := inj.Req
			if s.trk != nil {
				if req.Reps == nil && len(req.Srcs) == 1 {
					// The reply cache needs every message to name its
					// leaves exactly.
					req = req.WithReps()
				}
				s.trk.Track(proc, req, inj.Hot, s.cycle)
			}
			s.pending[proc] = fwdMsg{req: req, path: s.getPath(), issueCycle: s.cycle, hot: inj.Hot}
			s.hasPending[proc] = true
			s.stats.Issued++
			if s.cfg.Trace != nil {
				s.cfg.Trace(Event{Cycle: s.cycle, Kind: EvInject,
					ID: req.ID, Addr: req.Addr, Stage: -1, Switch: proc})
			}
		}
		m := &s.pending[proc]
		if s.trk != nil && m.req.Attempt == 0 && s.trk.HeldBack(proc, m.req.Addr) {
			// An earlier request to the same address is undelivered; hold
			// this one at the port so a drop cannot reorder the
			// processor's own accesses to the location.
			continue
		}
		line := s.topo.ProcLine(proc)
		if s.swDead(0, line/s.radix) {
			continue // dead stage-0 switch: hold the request at the port
		}
		if s.flt != nil && (s.flt.DropForward(
			faults.Site(0, line/s.radix, line%s.radix), m.req.ID, m.req.Attempt) ||
			s.flt.DropLinkFwd(0, line/s.radix, s.cycle)) {
			// Lost on the processor-to-stage-0 link; the header never
			// entered the network, so it recycles immediately.
			s.putPath(m.path)
			s.hasPending[proc] = false
			continue
		}
		sw := s.stages[0][line/s.radix]
		dst := s.destModule(m.req.Addr)
		if sw.tryAccept(*m, s.outPortFor(0, dst), uint8(line%s.radix), &s.stats) {
			s.hasPending[proc] = false
			s.stats.FwdHops++
			s.stats.FwdSlots += int64(core.ValueSlots(m.req.Op))
		}
	}
}

// Stats snapshots the run statistics, folding in per-switch counters.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.Latency = s.lat.Snapshot()
	for _, stage := range s.stages {
		for _, sw := range stage {
			st.Rejects += sw.wait.Rejections
			if sw.maxRev > st.MaxRevQueue {
				st.MaxRevQueue = sw.maxRev
			}
		}
	}
	st.MaxMemQueue = s.mem.MaxQueueDepth()
	return st
}

// Snapshot captures the run's instrumentation behind the shared
// cross-engine API (see internal/stats).
func (s *Sim) Snapshot() stats.Snapshot {
	st := s.Stats()
	snap := stats.Snapshot{
		Engine: "network",
		Counters: engine.Counters{
			Cycles:           st.Cycles,
			Issued:           st.Issued,
			Completed:        st.Completed,
			HotCompleted:     st.HotCompleted,
			ColdCompleted:    st.ColdCompleted,
			Replies:          st.Completed,
			Combines:         st.Combines,
			CombineRejects:   st.Rejects,
			FwdHops:          st.FwdHops,
			RevHops:          st.RevHops,
			FwdSlots:         st.FwdSlots,
			RevSlots:         st.RevSlots,
			MemRequests:      st.MemRequests,
			MemAcks:          st.MemAcks,
			SaturationCycles: st.SaturationCycles,
			HoldsRev:         st.HoldsRev,
			HoldsMem:         st.HoldsMem,
			HoldsMemOut:      st.HoldsMemOut,
			WatchdogTrips:    st.WatchdogTrips,
			Checkpoints:      st.Checkpoints,
		}.Map(),
		Gauges: map[string]int64{
			"max_out_queue":         int64(st.MaxOutQueue),
			"max_rev_queue":         int64(st.MaxRevQueue),
			"max_mem_queue":         int64(st.MaxMemQueue),
			"saturation_max_streak": st.SaturationMaxStreak,
		},
		Histograms: map[string]stats.HistogramSnapshot{
			"latency_cycles": st.Latency,
		},
	}
	if s.flt != nil {
		faults.AddCounters(&snap, s.flt, s.trk, s.mem.TotalDedupHits(), s.orphans, s.rec.Counters())
	}
	return snap
}

// Recovery exposes the crash–restart ledger (nil without crash windows).
func (s *Sim) Recovery() *recover.Manager { return s.rec }

// Faults exposes the fault injector (nil on a healthy machine).
func (s *Sim) Faults() *faults.Injector { return s.flt }

// Tracker exposes the exactly-once delivery ledger (nil on a healthy
// machine).
func (s *Sim) Tracker() *faults.Tracker { return s.trk }

// Orphans reports replies that arrived with no request metadata (fault mode
// only; on a healthy machine an orphan is a bug and panics instead).
func (s *Sim) Orphans() int64 { return s.orphans }

// InFlight reports requests somewhere in the machine: pending at the
// injection port, queued in switches, in memory, or replies in transit.
// Under a fault plan, physical occupancy is the wrong notion — messages
// vanish on dropped links and stale wait records linger by design — so the
// tracker's ledger answers instead: requests issued but not yet delivered.
func (s *Sim) InFlight() int {
	if s.trk != nil {
		return s.trk.Outstanding()
	}
	n := 0
	for _, occupied := range s.hasPending {
		if occupied {
			n++
		}
	}
	for _, stage := range s.stages {
		for _, sw := range stage {
			for port := 0; port < s.radix; port++ {
				n += len(sw.outQ[port]) + len(sw.revQ[port])
			}
			n += sw.wait.Len()
		}
	}
	for mod := 0; mod < s.n; mod++ {
		n += s.mem.Module(mod).QueueLen()
	}
	return n
}

// Drain runs the machine until no requests remain in flight (injectors
// willing, i.e. they stop offering traffic), up to the given cycle bound.
// It reports whether the machine fully drained.
func (s *Sim) Drain(maxCycles int) bool {
	if s.pool != nil {
		s.pool.Start()
		defer s.pool.Stop()
	}
	for i := 0; i < maxCycles; i++ {
		if s.wd.Tripped() {
			return false // stalled: no amount of further cycles drains it
		}
		s.Step()
		if s.InFlight() == 0 {
			return true
		}
	}
	return s.InFlight() == 0
}
