package network

import (
	"math/bits"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Permutation workloads — the classic evaluation patterns for multistage
// networks.  An Omega network is blocking: it routes some permutations
// conflict-free at full bandwidth and serializes others on shared links,
// which is why the hot-spot results are quoted against the uniform and
// permutation baselines.

// Permutation maps each source processor to the single module it
// addresses.
type Permutation func(proc, nprocs int) int

// IdentityPerm sends processor p to module p (conflict-free on an Omega).
func IdentityPerm(p, _ int) int { return p }

// BitReversePerm sends p to its bit-reversed index, a classically bad
// permutation for shuffle-based networks.
func BitReversePerm(p, n int) int {
	k := bits.TrailingZeros(uint(n))
	return int(bits.Reverse64(uint64(p)) >> (64 - k))
}

// TransposePerm swaps the high and low halves of the index bits (matrix
// transpose traffic).
func TransposePerm(p, n int) int {
	k := bits.TrailingZeros(uint(n))
	half := k / 2
	low := p & (1<<half - 1)
	high := p >> half
	return low<<(k-half) | high
}

// ShiftPerm sends p to (p+1) mod n.
func ShiftPerm(p, n int) int { return (p + 1) % n }

// PermInjector issues a fixed-rate stream of fetch-and-adds to one target
// module per processor.
type PermInjector struct {
	proc        word.ProcID
	target      word.Addr
	window      int
	outstanding int
	ids         *word.IDGen
	nprocs      int
}

var _ Injector = (*PermInjector)(nil)

// NewPermInjector builds the injector for proc under the permutation.
func NewPermInjector(proc, nprocs int, perm Permutation, window int) *PermInjector {
	if window <= 0 {
		window = 4
	}
	return &PermInjector{
		proc:   word.ProcID(proc),
		target: word.Addr(perm(proc, nprocs)),
		window: window,
		ids:    word.Partition(proc, nprocs),
		nprocs: nprocs,
	}
}

// Next issues whenever the window allows (full offered load).
func (p *PermInjector) Next(int64) (Injection, bool) {
	if p.outstanding >= p.window {
		return Injection{}, false
	}
	p.outstanding++
	id := p.ids.NextPartitioned(p.nprocs)
	return Injection{Req: core.NewRequest(id, p.target, rmw.FetchAdd(1), p.proc)}, true
}

// Deliver frees a window slot.
func (p *PermInjector) Deliver(core.Reply, int64) { p.outstanding-- }

// RunPermutation measures delivered bandwidth for a permutation pattern.
// Combining is disabled: each processor owns its target, so no requests
// share an address.
func RunPermutation(nprocs int, perm Permutation, cycles int) Stats {
	inj := make([]Injector, nprocs)
	for p := 0; p < nprocs; p++ {
		inj[p] = NewPermInjector(p, nprocs, perm, 4)
	}
	sim := NewSim(Config{Procs: nprocs, WaitBufCap: 0}, inj)
	sim.Run(cycles)
	return sim.Stats()
}
