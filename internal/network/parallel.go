package network

// Parallel stepper for the staged engine (Config.Workers > 1): each cycle's
// switch/module sweeps run as barrier-separated phases on an internal/par
// pool, with the work of every phase partitioned into conflict groups —
// sets of switches (or modules) that touch overlapping machine state.
// Groups are spread across workers; within a group the owning worker
// replays the exact serial rotation order, so the machine state after each
// phase is identical to the single-threaded stepper.  The group shapes per
// phase:
//
//   reverse stage 0     each switch alone (delivers only to processors;
//                       deliveries buffer per rotation slot and commit
//                       serially, because injectors are single-goroutine)
//   reverse stage ≥ 1   switches sharing a previous-stage switch —
//                       engine.RevGroups, derived from the wiring at
//                       construction (for omega, the radix contiguous
//                       switches DESIGN.md §6 derives analytically)
//   memory tick         radix modules behind one last-stage switch
//                       (wiring-independent: output line L is module L)
//   forward stage k−1   each switch alone (owns its radix modules and
//                       their metadata shards)
//   forward stage < k−1 switches sharing a next-stage switch —
//                       engine.FwdGroups (for omega, the radix switches
//                       congruent mod n/radix²)
//
// Mutable state a phase shares across groups is commutative: stats go to
// per-worker shards merged (sum / max) after the phases, and the fault
// injector's counters are atomic with purely hash-derived decisions.

import (
	"sort"

	"combining/internal/par"
)

// netShard is one worker's private slice of the per-cycle statistics,
// merged into Sim.stats by mergeShards after the phases.  The trailing
// pad keeps adjacent shards off one cache line: the shards live in a
// contiguous slice and every worker writes its own on every phase, so
// unpadded neighbors would false-share at the boundaries.
type netShard struct {
	st      Stats
	orphans int64
	_       [64]byte
}

// delivery is a stage-0 reply buffered during the parallel reverse phase
// for the serial worker-0 commit.
type delivery struct {
	proc int
	r    revMsg
}

// runPhases is the parallel equivalent of drainReverse + tickMemory +
// drainForward.  injectAll stays outside: injectors and the retry tracker
// are single-goroutine by contract.  The pool is handed the phase function
// bound once at construction (Sim.stepFn), so the cycle loop builds no
// closures; the workers themselves persist across cycles (started by
// Run/Drain), so the steady-state cost of a cycle is the channel dispatch
// and the phase barriers — nothing allocates.
func (s *Sim) runPhases() {
	s.pool.Run(s.stepFn)
	s.mergeShards()
}

// phaseWorker is the per-worker body of one parallel cycle.
func (s *Sim) phaseWorker(w int) {
	rot := int(s.cycle)
	workers := s.pool.Workers()
	sh := &s.shards[w]

	// Reverse, stage 0: split over rotation slots so each worker owns
	// its delivery buffers; each switch is its own conflict group.
	n0 := len(s.stages[0])
	lo, hi := par.Split(n0, workers, w)
	for si := lo; si < hi; si++ {
		s.delivBuf[si] = s.delivBuf[si][:0]
		s.revSwitch0((si+rot)%n0, &sh.st, &s.delivBuf[si])
	}
	s.bar.Sync(w)

	// Delivery commit: worker 0 replays the buffered deliveries in
	// serial (rotation-slot) order on the caller's goroutine.  This
	// overlaps the next phases safely — deliveries touch injectors,
	// the retry ledger and the completion stats, none of which the
	// switch sweeps read or write; TestDeliveryCommitOverlap pins the
	// claim under the race detector.
	if w == 0 {
		for si := 0; si < n0; si++ {
			for _, d := range s.delivBuf[si] {
				s.deliver(d.proc, d.r)
			}
		}
	}

	// Reverse, stages ≥ 1, in ascending stage order as in serial; the
	// barrier between stages keeps stage s+1's credit checks from
	// observing stage s mid-sweep.
	for stage := 1; stage < s.k; stage++ {
		groups := s.revGroups[stage]
		glo, ghi := par.Split(len(groups), workers, w)
		for g := glo; g < ghi; g++ {
			s.runRevGroup(stage, groups[g], rot, &sh.st)
		}
		s.bar.Sync(w)
	}

	// Memory: the radix modules behind one last-stage switch form a
	// group (they share that switch's reverse credits).
	ngm := s.n / s.radix
	mlo, mhi := par.Split(ngm, workers, w)
	for b := mlo; b < mhi; b++ {
		for j := 0; j < s.radix; j++ {
			s.tickModule(b*s.radix+j, &sh.st, &sh.orphans)
		}
	}
	s.bar.Sync(w)

	// Forward, stage k−1: each switch owns its modules and metadata
	// shards outright, so switch order is free.
	nsLast := len(s.stages[s.k-1])
	flo, fhi := par.Split(nsLast, workers, w)
	for idx := flo; idx < fhi; idx++ {
		s.fwdSwitch(s.k-1, idx, &sh.st)
	}
	if s.k > 1 {
		s.bar.Sync(w)
	}

	// Forward, stages k−2 … 0, in descending stage order as in serial.
	for stage := s.k - 2; stage >= 0; stage-- {
		groups := s.fwdGroups[stage]
		glo, ghi := par.Split(len(groups), workers, w)
		for g := glo; g < ghi; g++ {
			s.runFwdGroup(stage, groups[g], rot, &sh.st)
		}
		if stage > 0 {
			s.bar.Sync(w)
		}
	}
}

// runRevGroup processes one reverse conflict group of a stage ≥ 1 in the
// serial rotation order: switch idx sits at rotation slot (idx−rot) mod ns,
// so with ascending members the serial order is members ≥ rot mod ns first
// (they have the smaller slots), then the wrapped prefix.
func (s *Sim) runRevGroup(stage int, members []int, rot int, st *Stats) {
	ns := len(s.stages[stage])
	split := sort.SearchInts(members, ((rot%ns)+ns)%ns)
	for _, idx := range members[split:] {
		s.revSwitch(stage, idx, st)
	}
	for _, idx := range members[:split] {
		s.revSwitch(stage, idx, st)
	}
}

// runFwdGroup processes one forward conflict group of a stage < k−1 in the
// serial rotation order (same slot arithmetic as runRevGroup).
func (s *Sim) runFwdGroup(stage int, members []int, rot int, st *Stats) {
	ns := len(s.stages[stage])
	split := sort.SearchInts(members, ((rot%ns)+ns)%ns)
	for _, idx := range members[split:] {
		s.fwdSwitch(stage, idx, st)
	}
	for _, idx := range members[:split] {
		s.fwdSwitch(stage, idx, st)
	}
}

// mergeShards folds the per-worker shards into the serial stats after the
// phases.  The observation multiset equals the serial stepper's, so the
// sums add exactly and the queue high-water merges by max to the same
// value; shards reset for the next cycle.
func (s *Sim) mergeShards() {
	for i := range s.shards {
		sh := &s.shards[i]
		s.stats.Combines += sh.st.Combines
		s.stats.HoldsRev += sh.st.HoldsRev
		s.stats.HoldsMem += sh.st.HoldsMem
		s.stats.HoldsMemOut += sh.st.HoldsMemOut
		s.stats.FwdHops += sh.st.FwdHops
		s.stats.RevHops += sh.st.RevHops
		s.stats.FwdSlots += sh.st.FwdSlots
		s.stats.RevSlots += sh.st.RevSlots
		s.stats.MemRequests += sh.st.MemRequests
		s.stats.MemAcks += sh.st.MemAcks
		s.stats.Checkpoints += sh.st.Checkpoints
		if sh.st.MaxOutQueue > s.stats.MaxOutQueue {
			s.stats.MaxOutQueue = sh.st.MaxOutQueue
		}
		s.orphans += sh.orphans
		*sh = netShard{}
	}
}
