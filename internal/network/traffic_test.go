package network

import (
	"testing"

	"combining/internal/core"
	"combining/internal/word"
)

// drain pulls up to want injections from the injector over cycles,
// delivering immediately so the window never throttles the draw.
func drain(s *Stochastic, cycles int64) []Injection {
	var out []Injection
	for c := int64(0); c < cycles; c++ {
		if inj, ok := s.Next(c); ok {
			out = append(out, inj)
			s.Deliver(core.Reply{ID: inj.Req.ID}, c)
		}
	}
	return out
}

// TestZipfSkew checks the Zipfian generator actually follows a power law:
// rank 0 dominates, counts fall monotonically-ish with rank, and every
// address stays inside [HotAddr, HotAddr+ZipfN).
func TestZipfSkew(t *testing.T) {
	cfg := TrafficConfig{Rate: 1, ZipfN: 8, ZipfS: 1.2, HotAddr: 100}
	s := NewStochastic(0, 16, cfg, 7)
	counts := make(map[word.Addr]int)
	for _, inj := range drain(s, 4000) {
		a := inj.Req.Addr
		if a < 100 || a >= 108 {
			t.Fatalf("Zipfian draw %d outside [100, 108)", a)
		}
		counts[a]++
	}
	if counts[100] == 0 {
		t.Fatal("rank 0 never drawn")
	}
	// With s = 1.2 over 8 ranks, rank 0 holds ~37% of the mass; require it
	// to beat the uniform share decisively and to beat the tail rank.
	total := 0
	for _, c := range counts {
		total += c
	}
	if counts[100]*4 < total {
		t.Errorf("rank 0 drew %d of %d — no Zipfian head", counts[100], total)
	}
	if counts[100] <= counts[107] {
		t.Errorf("rank 0 (%d) not more popular than rank 7 (%d)", counts[100], counts[107])
	}
	// The head rank is the hot class.
	if s.Hot != int64(counts[100]) || s.Cold != int64(total-counts[100]) {
		t.Errorf("hot/cold tallies %d/%d disagree with rank-0 count %d of %d",
			s.Hot, s.Cold, counts[100], total)
	}
}

// TestZipfUniformLimit pins the s → 0 limit: ZipfS 0 is uniform over the
// ZipfN addresses (every rank within a loose tolerance of the mean).
func TestZipfUniformLimit(t *testing.T) {
	s := NewStochastic(0, 16, TrafficConfig{Rate: 1, ZipfN: 4, ZipfS: 0}, 9)
	counts := make(map[word.Addr]int)
	for _, inj := range drain(s, 4000) {
		counts[inj.Req.Addr]++
	}
	for a := word.Addr(0); a < 4; a++ {
		if c := counts[a]; c < 700 || c > 1300 {
			t.Errorf("rank %d drew %d of ~4000 — not uniform at s=0", a, c)
		}
	}
}

// TestBurstGate checks the deterministic on/off schedule: with Rate 1 the
// injector issues every on-phase cycle and never in an off-phase cycle.
func TestBurstGate(t *testing.T) {
	cfg := TrafficConfig{Rate: 1, BurstOn: 10, BurstOff: 30, Window: 1}
	s := NewStochastic(0, 16, cfg, 3)
	for c := int64(0); c < 200; c++ {
		inj, ok := s.Next(c)
		if on := c%40 < 10; ok != on {
			t.Fatalf("cycle %d: issued=%v, want %v (phase %d of 40)", c, ok, on, c%40)
		}
		if ok {
			s.Deliver(core.Reply{ID: inj.Req.ID}, c)
		}
	}
}

// TestBurstPreservesStream pins that the burst gate only delays the
// request stream: the same seed with and without bursting produces the
// same sequence of addresses, just issued later.
func TestBurstPreservesStream(t *testing.T) {
	plain := NewStochastic(0, 16, TrafficConfig{Rate: 0.8, HotFraction: 0.25}, 11)
	burst := NewStochastic(0, 16, TrafficConfig{Rate: 0.8, HotFraction: 0.25, BurstOn: 5, BurstOff: 5}, 11)
	a := drain(plain, 400)
	b := drain(burst, 800)
	if len(b) == 0 || len(b) > len(a) {
		t.Fatalf("burst stream has %d requests vs %d plain", len(b), len(a))
	}
	for i := range b {
		if b[i].Req.Addr != a[i].Req.Addr || b[i].Hot != a[i].Hot {
			t.Fatalf("request %d diverges under bursting: %v vs %v", i, b[i].Req, a[i].Req)
		}
	}
}

// TestTrafficConfigPanics pins the loud rejection of nonsense configs.
func TestTrafficConfigPanics(t *testing.T) {
	for name, cfg := range map[string]TrafficConfig{
		"negative window":    {Window: -1},
		"negative zipfN":     {ZipfN: -4},
		"negative burst on":  {BurstOn: -1},
		"negative burst off": {BurstOn: 2, BurstOff: -2},
		"off without on":     {BurstOff: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewStochastic did not panic", name)
				}
			}()
			NewStochastic(0, 16, cfg, 1)
		}()
	}
}
