package network

import (
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

func idOf(p, i int) word.ReqID { return word.ReqID(p*100 + i + 1) }
func addOne() rmw.Mapping      { return rmw.FetchAdd(1) }
func procOf(p int) word.ProcID { return word.ProcID(p) }

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestConfigValidation(t *testing.T) {
	mk := func(cfg Config, n int) func() {
		return func() {
			inj, _ := emptyInjectors(n)
			NewSim(cfg, inj)
		}
	}
	mustPanic(t, "procs not power of radix", mk(Config{Procs: 6}, 6))
	mustPanic(t, "procs too small", mk(Config{Procs: 1}, 1))
	mustPanic(t, "bad radix", mk(Config{Procs: 8, Radix: 1}, 8))
	mustPanic(t, "radix mismatch", mk(Config{Procs: 8, Radix: 4}, 8))
	mustPanic(t, "injector count", func() {
		inj, _ := emptyInjectors(3)
		NewSim(Config{Procs: 8}, inj)
	})
}

func TestDrainTimeout(t *testing.T) {
	// An injector that never stops issuing prevents draining.
	const n = 4
	inj := make([]Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = NewStochastic(p, n, TrafficConfig{Rate: 1, Window: 4}, 1)
	}
	sim := NewSim(Config{Procs: n}, inj)
	if sim.Drain(50) {
		t.Fatal("drained despite endless traffic")
	}
}

func TestStatsZeroValues(t *testing.T) {
	var st Stats
	if st.MeanLatency() != 0 || st.Bandwidth() != 0 ||
		st.HotMeanLatency() != 0 || st.ColdMeanLatency() != 0 {
		t.Fatal("zero stats must report zeros")
	}
	if st.Percentile(0.5) != 0 {
		t.Fatal("percentile of empty stats must be 0")
	}
}

func TestUnboundedQueueConfig(t *testing.T) {
	// QueueCap < 0 means unbounded: a burst larger than any default cap
	// still drains.
	const n = 8
	inj, scripts := emptyInjectors(n)
	for p := 0; p < n; p++ {
		for i := 0; i < 20; i++ {
			scripts[p].script = append(scripts[p].script, Injection{
				Req: core.NewRequest(idOf(p, i), 0, addOne(), procOf(p)),
			})
		}
	}
	sim := NewSim(Config{Procs: n, QueueCap: -1, WaitBufCap: 0}, inj)
	if !sim.Drain(20000) {
		t.Fatal("unbounded queues did not drain")
	}
	if got := sim.Memory().Peek(0).Val; got != n*20 {
		t.Fatalf("final %d, want %d", got, n*20)
	}
}
