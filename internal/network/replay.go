package network

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
)

// Trace-driven workloads: a plain-text format for request traces, so
// measured or generated access streams can be replayed deterministically
// through any of the engines.  One request per line:
//
//	<cycle> <proc> <addr> <op> [args...]
//
// where op is one of: load, store <v>, swap <v>, add <a>, or <a>, and <a>,
// xor <a>, min <a>, max <a>.  Lines starting with '#' are comments.
// Requests for one processor must appear in nondecreasing cycle order;
// the cycle is the earliest issue time (backpressure may delay actual
// injection).

// TraceEntry is one parsed request.
type TraceEntry struct {
	Cycle int64
	Proc  int
	Addr  word.Addr
	Op    rmw.Mapping
}

// ParseTrace reads the trace format.
func ParseTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace line %d: want at least 4 fields, got %d", lineNo, len(fields))
		}
		cycle, err1 := strconv.ParseInt(fields[0], 10, 64)
		proc, err2 := strconv.Atoi(fields[1])
		addr, err3 := strconv.ParseUint(fields[2], 10, 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("trace line %d: bad cycle/proc/addr", lineNo)
		}
		opName := fields[3]
		var arg int64
		if len(fields) >= 5 {
			arg, err1 = strconv.ParseInt(fields[4], 10, 64)
			if err1 != nil {
				return nil, fmt.Errorf("trace line %d: bad argument %q", lineNo, fields[4])
			}
		}
		var op rmw.Mapping
		switch opName {
		case "load":
			op = rmw.Load{}
		case "store":
			op = rmw.StoreOf(arg)
		case "swap":
			op = rmw.SwapOf(arg)
		case "add":
			op = rmw.FetchAdd(arg)
		case "or":
			op = rmw.FetchOr(arg)
		case "and":
			op = rmw.FetchAnd(arg)
		case "xor":
			op = rmw.FetchXor(arg)
		case "min":
			op = rmw.FetchMin(arg)
		case "max":
			op = rmw.FetchMax(arg)
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q", lineNo, opName)
		}
		out = append(out, TraceEntry{Cycle: cycle, Proc: proc, Addr: word.Addr(addr), Op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// WriteTrace emits entries in the trace format.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		var opStr string
		switch v := e.Op.(type) {
		case rmw.Load:
			opStr = "load"
		case rmw.Const:
			if v.NeedOld {
				opStr = fmt.Sprintf("swap %d", v.V)
			} else {
				opStr = fmt.Sprintf("store %d", v.V)
			}
		case rmw.Assoc:
			opStr = fmt.Sprintf("%s %d", v.Op, v.A)
		default:
			return fmt.Errorf("trace: cannot serialize op %v", e.Op)
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %s\n", e.Cycle, e.Proc, e.Addr, opStr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReplayInjector feeds one processor's slice of a trace.
type ReplayInjector struct {
	entries []TraceEntry
	next    int
	ids     *word.IDGen
	nprocs  int
	proc    word.ProcID

	// Completed counts delivered replies.
	Completed int64
}

var _ Injector = (*ReplayInjector)(nil)

// NewReplayInjectors splits a trace by processor into injectors for an
// nprocs-port engine.  Entries whose proc is out of range are an error.
func NewReplayInjectors(entries []TraceEntry, nprocs int) ([]Injector, []*ReplayInjector, error) {
	per := make([][]TraceEntry, nprocs)
	for _, e := range entries {
		if e.Proc < 0 || e.Proc >= nprocs {
			return nil, nil, fmt.Errorf("trace: proc %d out of range [0,%d)", e.Proc, nprocs)
		}
		per[e.Proc] = append(per[e.Proc], e)
	}
	inj := make([]Injector, nprocs)
	reps := make([]*ReplayInjector, nprocs)
	for p := 0; p < nprocs; p++ {
		chunk := per[p]
		sort.SliceStable(chunk, func(i, j int) bool { return chunk[i].Cycle < chunk[j].Cycle })
		reps[p] = &ReplayInjector{
			entries: chunk,
			ids:     word.Partition(p, nprocs),
			nprocs:  nprocs,
			proc:    word.ProcID(p),
		}
		inj[p] = reps[p]
	}
	return inj, reps, nil
}

// Next implements Injector.
func (r *ReplayInjector) Next(cycle int64) (Injection, bool) {
	if r.next >= len(r.entries) || r.entries[r.next].Cycle > cycle {
		return Injection{}, false
	}
	e := r.entries[r.next]
	r.next++
	id := r.ids.NextPartitioned(r.nprocs)
	return Injection{Req: core.NewRequest(id, e.Addr, e.Op, r.proc)}, true
}

// Deliver implements Injector.
func (r *ReplayInjector) Deliver(core.Reply, int64) { r.Completed++ }

// Done reports whether the whole slice has been issued and answered.
func (r *ReplayInjector) Done() bool {
	return r.next >= len(r.entries) && r.Completed == int64(len(r.entries))
}
