package network

// Regression tests for the duplicate-delivery aliasing bug: before the
// Clone/cloneForDup fixes, the dup branches shallow-copied messages, so
// the original and the duplicate shared the path header's backing array
// and the reply's Leaves map.  That was latent until path recycling
// landed — deliverCommon returns every delivered header to the injection
// pool, so a shared header was recycled twice, and two later in-flight
// requests would build their routes in the same array.

import (
	"bytes"
	"runtime"
	"testing"

	"combining/internal/core"
	"combining/internal/faults"
	"combining/internal/rmw"
	"combining/internal/word"
)

// TestCloneForDupIndependence: a duplicated reply message must own its
// path header and Leaves map outright.
func TestCloneForDupIndependence(t *testing.T) {
	r := revMsg{
		rep: core.Reply{
			ID:  7,
			Val: word.W(42),
			Leaves: map[word.ReqID]word.Word{
				7: word.W(42), 9: word.W(43),
			},
		},
		path:       append(make([]uint8, 0, 4), 1, 0),
		issueCycle: 5,
		hot:        true,
		slots:      1,
	}
	c := r.cloneForDup()
	if &c.path[0] == &r.path[0] {
		t.Fatalf("cloneForDup shares the path backing array")
	}
	c.path[0] = 9
	c.rep.Leaves[7] = word.W(99)
	if r.path[0] != 1 {
		t.Errorf("mutating the clone's path changed the original: %v", r.path)
	}
	if r.rep.Leaves[7] != word.W(42) {
		t.Errorf("mutating the clone's Leaves changed the original: %v", r.rep.Leaves)
	}
	if c.issueCycle != r.issueCycle || c.hot != r.hot || c.slots != r.slots {
		t.Errorf("cloneForDup dropped scalar fields: %+v vs %+v", c, r)
	}
}

// TestRequestCloneIndependence: a duplicated request (memory-side dup
// branch) must own its Srcs and Reps slices.
func TestRequestCloneIndependence(t *testing.T) {
	r := core.NewRequest(3, 17, rmw.FetchAdd(1), 2).WithReps()
	c := r.Clone()
	if &c.Srcs[0] == &r.Srcs[0] {
		t.Fatalf("Clone shares the Srcs backing array")
	}
	if &c.Reps[0] == &r.Reps[0] {
		t.Fatalf("Clone shares the Reps backing array")
	}
	c.Srcs[0] = 5
	c.Reps[0].Src = 5
	if r.Srcs[0] != 2 || r.Reps[0].Src != 2 {
		t.Errorf("mutating the clone changed the original: %v %v", r.Srcs, r.Reps)
	}
}

// TestDupDeliveryPathPoolIntegrity is the end-to-end regression: under a
// duplication-heavy plan, drain to quiescence and check that no path
// header was recycled into the pool twice.  With the pre-fix shallow dup
// copy, the original and the duplicate recycled the same backing array
// back to back, and the pool would hand one array to two in-flight
// requests.
func TestDupDeliveryPathPoolIntegrity(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	for p := range inj {
		inj[p] = &stopAfter{
			Stochastic: NewStochastic(p, n, TrafficConfig{
				Rate: 0.8, HotFraction: 0.5, Window: 4,
			}, 11),
			remaining: 200,
		}
	}
	plan := &faults.Plan{Seed: 5, Dup: 0.25}
	sim := NewSim(Config{Procs: n, Faults: plan}, inj)
	if !sim.Drain(50000) {
		t.Fatalf("drain did not reach quiescence")
	}
	if sim.stats.Completed == 0 {
		t.Fatalf("workload completed nothing — the dup plan never exercised delivery")
	}
	// At quiescence every delivered header is back in the pool; each entry
	// must be a distinct array.  (&p[:1][0] is legal for the zero-length
	// entries because every pooled array keeps capacity k.)
	seen := make(map[*uint8]bool, len(sim.pathFree))
	for _, p := range sim.pathFree {
		ptr := &p[:1][0]
		if seen[ptr] {
			t.Fatalf("path array %p recycled into the pool twice — a dup delivery shared its header", ptr)
		}
		seen[ptr] = true
	}
}

// stopAfter bounds a Stochastic injector to a fixed request budget, so a
// Drain can reach quiescence (the raw injector offers traffic forever).
type stopAfter struct {
	*Stochastic
	remaining int
}

func (z *stopAfter) Next(cycle int64) (Injection, bool) {
	if z.remaining <= 0 {
		return Injection{}, false
	}
	inj, ok := z.Stochastic.Next(cycle)
	if ok {
		z.remaining--
	}
	return inj, ok
}

// TestDeliveryCommitOverlap pins the claim in phaseWorker that worker 0's
// delivery commit may overlap the later phases: at width 8 and at
// GOMAXPROCS, under a lossy plan and a crash plan, the race detector sees
// the overlap on every cycle and the snapshot still matches the serial
// stepper byte for byte.
func TestDeliveryCommitOverlap(t *testing.T) {
	widths := []int{8, runtime.GOMAXPROCS(0)}
	for _, tc := range []struct {
		name string
		plan *faults.Plan
	}{
		{"faulted", faults.Default(33)},
		{"crash", faults.DefaultCrash(33)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := snapshotAfter(1, tc.plan, 2500)
			for _, w := range widths {
				if got := snapshotAfter(w, tc.plan, 2500); !bytes.Equal(got, want) {
					t.Errorf("Workers=%d snapshot differs from serial under %s plan:\nserial: %s\nparallel: %s",
						w, tc.name, want, got)
				}
			}
		})
	}
}

// TestAdversarialPlanRejectsParallel: relaxed-delivery plans pin the
// serial stepper — limbo release order is defined by the serial sweep —
// so Workers > 1 with such a plan must fail validation.
func TestAdversarialPlanRejectsParallel(t *testing.T) {
	cfg := Config{Procs: 16, Workers: 2, Faults: faults.DefaultAdversarial(1)}
	if err := cfg.Validate(); err == nil {
		t.Fatalf("adversarial plan with Workers > 1 passed validation")
	}
	cfg.Workers = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("adversarial plan with Workers = 1 rejected: %v", err)
	}
}

// fixedInjector drives the zero-allocation audit: window-4 fetch-and-add
// traffic to a per-processor private address, so no two requests ever
// combine (combining merges source sets into fresh storage, a semantic
// allocation the audit must exclude).  The operation and the one-element
// source set are cached, as in the production Stochastic injector.
type fixedInjector struct {
	ids         *word.IDGen
	nprocs      int
	addr        word.Addr
	op          rmw.Mapping
	srcs        []word.ProcID
	outstanding int
}

func newFixedInjector(proc, nprocs int) *fixedInjector {
	return &fixedInjector{
		ids:    word.Partition(proc, nprocs),
		nprocs: nprocs,
		addr:   word.Addr(proc),
		op:     rmw.FetchAdd(1),
		srcs:   []word.ProcID{word.ProcID(proc)},
	}
}

func (f *fixedInjector) Next(cycle int64) (Injection, bool) {
	if f.outstanding >= 4 {
		return Injection{}, false
	}
	f.outstanding++
	id := f.ids.NextPartitioned(f.nprocs)
	return Injection{Req: core.Request{ID: id, Addr: f.addr, Op: f.op, Srcs: f.srcs}}, true
}

func (f *fixedInjector) Deliver(core.Reply, int64) { f.outstanding-- }

// TestParallelStepZeroAlloc: after warmup — queues, delivery buffers and
// the path pool at capacity — a clean parallel cycle allocates nothing.
func TestParallelStepZeroAlloc(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	for p := range inj {
		inj[p] = newFixedInjector(p, n)
	}
	sim := NewSim(Config{Procs: n, Workers: 4}, inj)
	// Bare Step() below bypasses Run's pool bracket; keep the workers
	// persistent so the measurement covers channel dispatch, not spawns.
	sim.pool.Start()
	defer sim.pool.Stop()
	sim.Run(512)
	if allocs := testing.AllocsPerRun(200, func() { sim.Step() }); allocs != 0 {
		t.Errorf("steady-state parallel step: %.1f allocs/op, want 0", allocs)
	}
}

// TestSerialStepZeroAlloc: the serial stepper's steady state is
// allocation-free too — the path pool and value-typed pending slots are
// shared with the parallel path.
func TestSerialStepZeroAlloc(t *testing.T) {
	const n = 16
	inj := make([]Injector, n)
	for p := range inj {
		inj[p] = newFixedInjector(p, n)
	}
	sim := NewSim(Config{Procs: n}, inj)
	sim.Run(512)
	if allocs := testing.AllocsPerRun(200, func() { sim.Step() }); allocs != 0 {
		t.Errorf("steady-state serial step: %.1f allocs/op, want 0", allocs)
	}
}
