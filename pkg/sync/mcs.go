package sync

import (
	stdsync "sync"
	"sync/atomic"

	"combining/internal/par"
)

// QNode is the queue node an MCSLock waiter spins on.  Each node occupies
// its own cache line, so a waiter's spin loads hit a line that exactly one
// other goroutine — its predecessor in the queue — will ever write, and the
// write that ends the spin is the only remote reference the handoff costs.
// A QNode may be reused freely once the Acquire/Release pair that used it
// has completed, but must never be shared by two concurrent acquisitions.
type QNode struct {
	next atomic.Pointer[QNode]
	wait atomic.Uint32
	_    [par.CacheLine - 12]byte
}

// MCSLock is a Mellor-Crummey–Scott queue lock: acquisition is a single
// atomic swap on the tail pointer (the paper's combinable I_v mapping with
// the old value returned — a swap), after which the waiter spins only on
// its own QNode.  Release either clears the tail (uncontended) or performs
// one remote store into the successor's node.  Remote references per
// acquisition are O(1) no matter how many goroutines contend, where a
// test-and-set or ticket lock generates O(waiters) coherence traffic per
// handoff.
//
// The zero value is an unlocked lock.  Use Lock/Unlock for the pooled
// convenience API, or Acquire/Release with caller-owned QNodes to keep the
// queue nodes in memory the caller controls.
type MCSLock struct {
	tail atomic.Pointer[QNode]
	_    [par.CacheLine - 8]byte
	pool stdsync.Pool
}

// Acquire enqueues q and blocks until the caller holds the lock.  q must
// not be in use by any other acquisition.
func (l *MCSLock) Acquire(q *QNode) {
	q.next.Store(nil)
	q.wait.Store(1)
	pred := l.tail.Swap(q) // the one atomic RMW of the acquisition
	if pred == nil {
		return // lock was free: no predecessor, no spinning
	}
	// Link behind the predecessor, then spin on our own line until the
	// predecessor's release stores the handoff.
	pred.next.Store(q)
	bo := par.NewBackoff()
	for q.wait.Load() != 0 {
		bo.Pause()
	}
}

// Release unlocks the lock acquired with q, handing it to the successor if
// one is queued.
func (l *MCSLock) Release(q *QNode) {
	next := q.next.Load()
	if next == nil {
		// No known successor: try to close the queue.  Failure means a
		// new waiter swapped itself in after us but has not linked yet;
		// wait for the link (it is at most two instructions away on the
		// waiter's side).
		if l.tail.CompareAndSwap(q, nil) {
			return
		}
		bo := par.NewBackoff()
		for next = q.next.Load(); next == nil; next = q.next.Load() {
			bo.Pause()
		}
	}
	next.wait.Store(0) // the single remote write that ends the successor's spin
}

// Lock acquires the lock using a pooled QNode and returns it; pass the
// node to Unlock.  The pool keeps the steady state allocation-free while
// letting callers ignore queue-node management entirely.
func (l *MCSLock) Lock() *QNode {
	q, _ := l.pool.Get().(*QNode)
	if q == nil {
		q = new(QNode)
	}
	l.Acquire(q)
	return q
}

// Unlock releases the lock and recycles the QNode returned by Lock.
func (l *MCSLock) Unlock(q *QNode) {
	l.Release(q)
	l.pool.Put(q)
}
