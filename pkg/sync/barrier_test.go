package sync_test

import (
	"sort"
	stdsync "sync"
	"sync/atomic"
	"testing"

	"combining/internal/core"
	"combining/internal/par"
	"combining/internal/rmw"
	"combining/internal/word"
	csync "combining/pkg/sync"
)

// TestBarrierLockstep checks the defining property at a spread of widths,
// including non-powers-of-two (byes in the bracket): between episodes no
// participant is ever more than one phase ahead of any other, and
// everything written before an episode's Wait is visible after it.
func TestBarrierLockstep(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64} {
		const episodes = 200
		b := csync.NewBarrier(n)
		phase := make([]atomic.Int64, n)
		var wg stdsync.WaitGroup
		failed := atomic.Bool{}
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for e := int64(1); e <= episodes; e++ {
					phase[w].Store(e)
					b.Wait(w)
					for j := 0; j < n; j++ {
						p := phase[j].Load()
						if p < e || p > e+1 {
							failed.Store(true)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if failed.Load() {
			t.Fatalf("width %d: lockstep violated — a participant left an episode early", n)
		}
	}
}

// TestBarrierDifferentialFAA validates the barrier as the paper's combined
// faa-and-test: each arrival performs a fetch-and-add on one hot cell, and
// the barrier's episode structure must partition the replies exactly as
// the serial oracle partitions the trace — episode e sees replies
// [e·n, (e+1)·n), and the full sorted reply set equals
// core.SerialReplies on the same fetch-and-add chain.
func TestBarrierDifferentialFAA(t *testing.T) {
	const n, episodes = 8, 100
	b := csync.NewBarrier(n)
	var ctr atomic.Int64
	replies := make([][]int64, n)
	var wg stdsync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				r := ctr.Add(1) - 1 // fetch-and-add(1): the arrival
				replies[w] = append(replies[w], r)
				b.Wait(w)
				if r < int64(e*n) || r >= int64((e+1)*n) {
					t.Errorf("participant %d episode %d drew arrival %d outside [%d,%d)",
						w, e, r, e*n, (e+1)*n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	ops := make([]rmw.Mapping, n*episodes)
	for i := range ops {
		ops[i] = rmw.FetchAdd(1)
	}
	want, final := core.SerialReplies(word.W(0), ops)
	var all []int64
	for _, rs := range replies {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != want[i].Val {
			t.Fatalf("sorted arrival %d = %d, serial oracle says %d (lost or duplicated arrival)", i, v, want[i].Val)
		}
	}
	if got := ctr.Load(); got != final.Val {
		t.Fatalf("final arrival count %d, serial oracle says %d", got, final.Val)
	}
}

// TestBarrierWide pushes the bracket depth: 8192 participants, several
// episodes, every goroutine spinning only on its own flags.
func TestBarrierWide(t *testing.T) {
	const n, episodes = 8192, 4
	b := csync.NewBarrier(n)
	var arrived atomic.Int64
	var wg stdsync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				arrived.Add(1)
				b.Wait(w)
				if got := arrived.Load(); got < int64((e+1)*n) {
					t.Errorf("participant %d released in episode %d with only %d arrivals", w, e, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestBarrierIsParBarrier pins the interface contract: a pkg/sync Barrier
// drops into code written against the internal/par phase-barrier shape.
func TestBarrierIsParBarrier(t *testing.T) {
	var b par.Barrier = csync.NewBarrier(4)
	pool := par.NewPool(4)
	pool.Start()
	defer pool.Stop()
	var hits atomic.Int64
	pool.Run(func(w int) {
		for i := 0; i < 50; i++ {
			hits.Add(1)
			b.Sync(w)
		}
	})
	if hits.Load() != 200 {
		t.Fatalf("hits %d, want 200", hits.Load())
	}
}

// TestBarrierWidthClamp: constructor clamps to one participant, and a
// single participant never blocks.
func TestBarrierWidthClamp(t *testing.T) {
	b := csync.NewBarrier(0)
	if b.Participants() != 1 {
		t.Fatalf("participants %d, want 1", b.Participants())
	}
	for i := 0; i < 5; i++ {
		b.Wait(0)
	}
}
