package sync

import (
	"sync/atomic"

	"combining/internal/par"
)

// FECell states.  The transient feBusy state excludes the value word while
// an owner moves it; every visible state is feEmpty or feFull, matching
// the two-state tables of the paper's §5.5.
const (
	feEmpty uint32 = iota
	feFull
	feBusy
)

// FECell is a full/empty-bit synchronization cell, the software form of
// the paper's §5.5 data-level synchronization (as in the Denelcor HEP):
// one word of data plus a full/empty flag, with loads and stores
// conditioned on the flag.  Each method names the two-state table it
// implements in internal/rmw (fe-store-if-clear-and-set,
// fe-load-and-clear-if-set, fe-store-and-set), and a failed conditional
// returns false — the software image of the NAK the paper recovers from
// the old tag at decombining time.
//
// The blocking variants (Put, Take) give producer/consumer handoff without
// a lock: each value stored is consumed by exactly one Take.  Waiters use
// the GOMAXPROCS-aware backoff from internal/par, so oversubscribed
// spinners yield instead of burning the processor the producer needs.
//
// The zero value is an empty cell.
type FECell struct {
	state atomic.Uint32
	_     [par.CacheLine - 4]byte
	val   int64 // guarded by state: written only empty→full, read only full→empty
}

// TryPut is fe-store-if-clear-and-set: store v and set the flag only when
// the cell is empty; on a full cell it fails and reports false (the NAK).
func (c *FECell) TryPut(v int64) bool {
	for {
		switch c.state.Load() {
		case feFull:
			return false
		case feEmpty:
			if c.state.CompareAndSwap(feEmpty, feBusy) {
				c.val = v
				c.state.Store(feFull)
				return true
			}
		default:
			// Another owner is mid-transition; its critical section is
			// two instructions, so a bare re-read suffices.
		}
	}
}

// TryTake is fe-load-and-clear-if-set (the queueing consumer operation):
// on a full cell it returns the value and empties the cell; on an empty
// cell it fails.
func (c *FECell) TryTake() (int64, bool) {
	for {
		switch c.state.Load() {
		case feEmpty:
			return 0, false
		case feFull:
			if c.state.CompareAndSwap(feFull, feBusy) {
				v := c.val
				c.state.Store(feEmpty)
				return v, true
			}
		default:
		}
	}
}

// Set is fe-store-and-set: store v and set the flag regardless of the
// cell's previous state.
func (c *FECell) Set(v int64) {
	bo := par.NewBackoff()
	for {
		s := c.state.Load()
		if s != feBusy && c.state.CompareAndSwap(s, feBusy) {
			c.val = v
			c.state.Store(feFull)
			return
		}
		bo.Pause()
	}
}

// Put blocks until the cell is empty, then stores v and sets the flag —
// the producer half of the HEP handoff.
func (c *FECell) Put(v int64) {
	bo := par.NewBackoff()
	for !c.TryPut(v) {
		bo.Pause()
	}
}

// Take blocks until the cell is full, then returns the value and empties
// the cell — the consumer half.  Each value Put is returned by exactly one
// Take.
func (c *FECell) Take() int64 {
	bo := par.NewBackoff()
	for {
		if v, ok := c.TryTake(); ok {
			return v
		}
		bo.Pause()
	}
}

// Full reports whether the cell currently holds a value.  Like any
// flag read concurrent with producers and consumers it is advisory.
func (c *FECell) Full() bool { return c.state.Load() == feFull }
