package sync_test

import (
	stdsync "sync"
	"sync/atomic"
	"testing"

	csync "combining/pkg/sync"
)

// Stdlib-baseline benchmarks for the three primitives.  CI runs these in
// smoke mode (-benchtime=1x); cmd/experiments runs the real wall-clock
// sweeps that land in BENCH_combining.json's sync_primitives section.

func BenchmarkSyncCounterAdd(b *testing.B) {
	c := csync.NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkSyncAtomicAdd(b *testing.B) {
	var v atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.Add(1)
		}
	})
}

func BenchmarkSyncMutexCounterAdd(b *testing.B) {
	var mu stdsync.Mutex
	var v int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			v++
			mu.Unlock()
		}
	})
	_ = v
}

func BenchmarkSyncMCSLock(b *testing.B) {
	var l csync.MCSLock
	var v int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := l.Lock()
			v++
			l.Unlock(q)
		}
	})
}

func BenchmarkSyncStdMutexLock(b *testing.B) {
	var mu stdsync.Mutex
	var v int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			v++
			mu.Unlock()
		}
	})
}

func BenchmarkSyncBarrier(b *testing.B) {
	const n = 4
	bar := csync.NewBarrier(n)
	var wg stdsync.WaitGroup
	start := make(chan struct{})
	for w := 1; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < b.N; i++ {
				bar.Wait(w)
			}
		}(w)
	}
	b.ResetTimer()
	close(start)
	for i := 0; i < b.N; i++ {
		bar.Wait(0)
	}
	b.StopTimer()
	wg.Wait()
}

func BenchmarkSyncWaitGroupForkJoin(b *testing.B) {
	// The stdlib has no reusable barrier; the idiomatic equivalent of one
	// barrier episode is forking n-1 goroutines and joining them.
	const n = 4
	for i := 0; i < b.N; i++ {
		var wg stdsync.WaitGroup
		for w := 1; w < n; w++ {
			wg.Add(1)
			go func() { defer wg.Done() }()
		}
		wg.Wait()
	}
}
