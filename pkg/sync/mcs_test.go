package sync_test

import (
	stdsync "sync"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
	csync "combining/pkg/sync"
)

// TestMCSLockMutualExclusion hammers a non-atomic counter from many
// goroutines through the pooled Lock/Unlock API; any mutual-exclusion hole
// shows up as a lost update (and as a race under -race).
func TestMCSLockMutualExclusion(t *testing.T) {
	const goroutines, ops = 128, 200
	var l csync.MCSLock
	var v int64 // deliberately non-atomic: the lock is the only protection
	var wg stdsync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				q := l.Lock()
				v++
				l.Unlock(q)
			}
		}()
	}
	wg.Wait()
	if v != goroutines*ops {
		t.Fatalf("final counter %d, want %d — mutual exclusion violated", v, goroutines*ops)
	}
}

// TestMCSLockExplicitQNodes exercises the Acquire/Release API with
// caller-owned nodes, including reuse of one node across acquisitions.
func TestMCSLockExplicitQNodes(t *testing.T) {
	const goroutines, ops = 64, 100
	var l csync.MCSLock
	var v int64
	var wg stdsync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var q csync.QNode // one node, reused every acquisition
			for i := 0; i < ops; i++ {
				l.Acquire(&q)
				v++
				l.Release(&q)
			}
		}()
	}
	wg.Wait()
	if v != goroutines*ops {
		t.Fatalf("final counter %d, want %d", v, goroutines*ops)
	}
}

// TestMCSLockDifferentialSerialOracle is the paper-side validation: each
// critical section performs a split read-modify-write (read the old value,
// add a delta) and records the (delta, old) pair in acquisition order.
// Lemma 4.1 says a correct serialization behaves as if the RMWs executed
// consecutively at memory, so replaying the recorded deltas as a serial
// fetch-and-add trace through core.SerialReplies must reproduce every
// observed old value and the final cell.
func TestMCSLockDifferentialSerialOracle(t *testing.T) {
	const goroutines, ops = 64, 150
	type rec struct{ delta, old int64 }
	var (
		l    csync.MCSLock
		v    int64
		recs = make([]rec, 0, goroutines*ops)
		wg   stdsync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				delta := int64((g*31+i*7)%19 - 9)
				q := l.Lock()
				recs = append(recs, rec{delta, v}) // protected by the lock
				v += delta
				l.Unlock(q)
			}
		}(g)
	}
	wg.Wait()

	ops2 := make([]rmw.Mapping, len(recs))
	for i, r := range recs {
		ops2[i] = rmw.FetchAdd(r.delta)
	}
	replies, final := core.SerialReplies(word.W(0), ops2)
	for i, r := range recs {
		if replies[i].Val != r.old {
			t.Fatalf("critical section %d observed %d, serial oracle says %d", i, r.old, replies[i].Val)
		}
	}
	if final.Val != v {
		t.Fatalf("final value %d, serial oracle says %d", v, final.Val)
	}
}

// TestMCSLockHotSpot100k is the acceptance-scale soak: 100k goroutines,
// one critical section each, under the race detector in `make check`.
func TestMCSLockHotSpot100k(t *testing.T) {
	const goroutines = 100_000
	var l csync.MCSLock
	var v int64
	var wg stdsync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			q := l.Lock()
			v++
			l.Unlock(q)
		}()
	}
	wg.Wait()
	if v != goroutines {
		t.Fatalf("final counter %d, want %d", v, goroutines)
	}
}
