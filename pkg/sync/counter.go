package sync

import (
	"runtime"
	stdsync "sync"
	"sync/atomic"

	"combining/internal/par"
)

// shard is one leaf of the counter's combining tree: an independent
// fetch-and-add cell on its own cache line.
type shard struct {
	v atomic.Int64
	_ [par.CacheLine - 8]byte
}

// Counter is a sharded combining counter: a scalable fetch-and-add cell
// for hot-spot workloads where thousands of goroutines hammer one tally.
//
// Add lands on one of a fixed power-of-two set of cache-line-padded
// shards, so concurrent adders perform their atomic fetch-and-adds on
// lines nothing else is writing — the same decomposition the paper's
// combining network performs in hardware, where simultaneous fetch-and-adds
// to one cell are merged pairwise at the switches and the memory module
// sees one combined delta.  Shard affinity rides on a sync.Pool, whose
// per-P caches keep goroutines running on the same processor adding to the
// same shard; a pool miss falls back to round-robin assignment, never to
// allocation, so the steady-state Add path allocates nothing (asserted by
// TestCounterAddAllocFree).
//
// Read combines the shards pairwise up a binary tree, mirroring
// combine-at-switch: level by level, each surviving node absorbs its
// neighbour's partial sum, exactly the f∘g composition of two fetch-and-add
// mappings (Assoc: faa(a)∘faa(b) = faa(a+b)).  Because fetch-and-add is
// commutative and associative, the tree order is immaterial and the result
// equals the serial oracle's final memory for the same trace of adds —
// the differential test checks precisely that.
//
// The trade a sharded counter makes is the paper's own: updates scale
// contention-free, but a read is O(shards) and returns a linearizable
// value only when it does not race with concurrent adds (a racing Read
// sees some adds and not others, like any snapshot of a moving total).
// Add does not return the old global value — a global fetch-and-add is
// exactly the hot spot the shards exist to avoid; use MCSLock or FECell
// when replies must be globally ordered.
type Counter struct {
	shards []shard
	next   atomic.Uint32
	pool   stdsync.Pool
}

// NewCounter returns a counter sharded for the current GOMAXPROCS (one
// shard per processor, rounded up to a power of two).
func NewCounter() *Counter {
	return NewCounterShards(runtime.GOMAXPROCS(0))
}

// NewCounterShards returns a counter with at least k shards, rounded up to
// a power of two (k ≤ 1 gives a single shard — a plain atomic cell).
func NewCounterShards(k int) *Counter {
	n := 1
	for n < k {
		n <<= 1
	}
	return &Counter{shards: make([]shard, n)}
}

// Shards reports the shard count.
func (c *Counter) Shards() int { return len(c.shards) }

// Add adds delta to the counter.  The shard is drawn from a per-P pool
// (affine to the calling processor); a miss assigns one round-robin.
// Steady state performs one pool get, one uncontended atomic add, one pool
// put, and no allocation.
func (c *Counter) Add(delta int64) {
	s, _ := c.pool.Get().(*shard)
	if s == nil {
		s = &c.shards[c.next.Add(1)&uint32(len(c.shards)-1)]
	}
	s.v.Add(delta)
	c.pool.Put(s)
}

// Read combines the shard totals pairwise up a binary tree and returns the
// sum.  Concurrent with adders it returns a snapshot (every add is counted
// exactly once — by this read or a later one); quiescent it is exact.
func (c *Counter) Read() int64 {
	vals := make([]int64, len(c.shards))
	for i := range c.shards {
		vals[i] = c.shards[i].v.Load()
	}
	// Combine-at-switch: at each level, node i absorbs node i+stride —
	// the Assoc composition faa(x)∘faa(y) = faa(x+y) — halving the live
	// nodes until the root holds the combined delta.
	for stride := 1; stride < len(vals); stride <<= 1 {
		for i := 0; i+stride < len(vals); i += 2 * stride {
			vals[i] += vals[i+stride]
		}
	}
	return vals[0]
}
