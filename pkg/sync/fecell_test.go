package sync_test

import (
	stdsync "sync"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
	csync "combining/pkg/sync"
)

// TestFECellDifferentialTables runs a deterministic operation sequence
// against both a live FECell and a model word driven through the
// internal/rmw full/empty tables by core.Execute.  Every success/failure
// outcome and every taken value must agree: TryPut is
// fe-store-if-clear-and-set (the reply's old tag Full is the NAK), TryTake
// is fe-load-and-clear-if-set, Set is fe-store-and-set.
func TestFECellDifferentialTables(t *testing.T) {
	var cell csync.FECell
	model := word.W(0) // Tag zero value is Empty

	apply := func(op rmw.Mapping) (old word.Word) {
		r := core.Execute(&model, core.Request{Op: op})
		return r.Val
	}

	for step := 0; step < 2000; step++ {
		v := int64(step*13%101 + 1)
		switch step % 5 {
		case 0, 3: // producer attempt
			old := apply(rmw.FEStoreIfClearSet(v))
			wantOK := old.Tag == word.Empty // Full old tag = NAK
			if got := cell.TryPut(v); got != wantOK {
				t.Fatalf("step %d: TryPut(%d) = %v, table says %v", step, v, got, wantOK)
			}
		case 1, 4: // consumer attempt
			old := apply(rmw.FELoadIfSetClear())
			wantOK := old.Tag == word.Full
			gotV, gotOK := cell.TryTake()
			if gotOK != wantOK {
				t.Fatalf("step %d: TryTake ok = %v, table says %v", step, gotOK, wantOK)
			}
			if gotOK && gotV != old.Val {
				t.Fatalf("step %d: TryTake = %d, table says %d", step, gotV, old.Val)
			}
		case 2: // unconditional overwrite
			apply(rmw.FEStoreSet(v))
			cell.Set(v)
		}
		if gotFull, wantFull := cell.Full(), model.Tag == word.Full; gotFull != wantFull {
			t.Fatalf("step %d: Full() = %v, model tag says %v", step, gotFull, wantFull)
		}
	}
}

// TestFECellExactlyOnce soaks the producer/consumer handoff: many
// producers Put distinct values, many consumers Take; every value must be
// consumed exactly once.
func TestFECellExactlyOnce(t *testing.T) {
	const producers, perProducer, consumers = 8, 500, 8
	total := producers * perProducer
	var cell csync.FECell
	got := make(chan int64, total)

	var wg stdsync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/consumers; i++ {
				got <- cell.Take()
			}
		}()
	}
	var pw stdsync.WaitGroup
	for p := 0; p < producers; p++ {
		pw.Add(1)
		go func(p int) {
			defer pw.Done()
			for i := 0; i < perProducer; i++ {
				cell.Put(int64(p*perProducer + i + 1))
			}
		}(p)
	}
	pw.Wait()
	wg.Wait()
	close(got)

	seen := make(map[int64]bool, total)
	for v := range got {
		if seen[v] {
			t.Fatalf("value %d consumed twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), total)
	}
	if cell.Full() {
		t.Fatal("cell still full after all takes")
	}
}

// TestFECellTrySemantics pins the NAK behaviour on an otherwise idle cell.
func TestFECellTrySemantics(t *testing.T) {
	var cell csync.FECell
	if _, ok := cell.TryTake(); ok {
		t.Fatal("TryTake succeeded on an empty cell")
	}
	if !cell.TryPut(42) {
		t.Fatal("TryPut failed on an empty cell")
	}
	if cell.TryPut(43) {
		t.Fatal("TryPut succeeded on a full cell (no NAK)")
	}
	if v, ok := cell.TryTake(); !ok || v != 42 {
		t.Fatalf("TryTake = (%d, %v), want (42, true)", v, ok)
	}
	cell.Set(7)
	cell.Set(9) // Set overwrites regardless of state
	if v := cell.Take(); v != 9 {
		t.Fatalf("Take = %d, want 9", v)
	}
}
