package sync

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"combining/internal/par"
)

// flag is a one-word spin target on its own cache line, written by exactly
// one peer and read by exactly one owner per episode.
type flag struct {
	v atomic.Uint32
	_ [par.CacheLine - 4]byte
}

// localSense is a participant's private sense bit, padded so flipping it
// never invalidates a line another participant reads.
type localSense struct {
	v uint32
	_ [par.CacheLine - 4]byte
}

// Barrier is a tournament (combining-tree) barrier for a fixed set of n
// participants.  The bracket is static: in round r, participant w is the
// round's winner when w ≡ 0 (mod 2^(r+1)) and its opponent is w + 2^r (a
// bye when that exceeds n−1).  A loser stores its arrival into the
// winner's round flag — the software image of a combined fetch-and-add
// climbing one level of the paper's combining tree — and then spins on its
// own wakeup flag.  The undefeated participant 0 plays the memory module:
// once its last opponent arrives, the whole machine has arrived, and the
// release retraces the bracket top-down, each winner waking the losers of
// the rounds it won with one store apiece.
//
// Every flag lives on its own cache line, is written by exactly one peer
// and read by exactly one owner, so arrivals generate O(1) remote
// references per participant and nothing serializes on a central counter.
// The barrier is reusable via sense reversal: each participant flips a
// private sense bit per episode and all flags are compared against it, so
// no flag is ever reset and a fast participant re-entering the next
// episode cannot be confused with a slow one leaving the last.
//
// Barrier implements the same Sync(worker) contract as the phase barriers
// in internal/par and reuses their episode spin policy: the spin budget is
// re-evaluated against GOMAXPROCS once per episode (by participant 0), and
// collapses to zero — yield immediately — whenever the participants
// outnumber the processors.
type Barrier struct {
	par.SpinPolicy
	n       int
	rounds  int
	arrival [][]flag // arrival[w][r]: written by loser w+2^r, read by winner w
	wake    []flag   // wake[w]: written by the winner that beat w
	sense   []localSense
}

// NewBarrier returns a tournament barrier for n participants (n ≥ 1;
// smaller values clamp to 1).  Participants are identified by the fixed
// indices 0..n−1 passed to Wait.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		n = 1
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &Barrier{n: n, rounds: rounds}
	b.Init(n)
	b.arrival = make([][]flag, n)
	for w := 0; w < n; w++ {
		wins := rounds // participant 0 survives every round
		if w != 0 {
			wins = bits.TrailingZeros(uint(w))
		}
		b.arrival[w] = make([]flag, wins)
	}
	b.wake = make([]flag, n)
	b.sense = make([]localSense, n)
	return b
}

// Participants reports the barrier width n.
func (b *Barrier) Participants() int { return b.n }

// Wait blocks participant w until all n participants have called Wait for
// the current episode.  Each participant must pass its own fixed index in
// [0, n); no index may be used by two goroutines concurrently.
func (b *Barrier) Wait(w int) {
	if b.n == 1 {
		return
	}
	if w == 0 {
		b.Refresh()
	}
	s := b.sense[w].v ^ 1
	b.sense[w].v = s
	spin := b.SpinBudget()
	lost := b.rounds
	for r := 0; r < b.rounds; r++ {
		if w&((1<<(r+1))-1) == 0 {
			// Winner of round r: absorb the opponent's arrival (a bye
			// when the opponent index falls off the bracket).
			opp := w + 1<<r
			if opp < b.n {
				for spins := int32(0); b.arrival[w][r].v.Load() != s; spins++ {
					if spins >= spin {
						runtime.Gosched()
					}
				}
			}
		} else {
			// Loser of round r: combine our arrival into the winner,
			// then spin locally until the release wave reaches us.
			win := w - 1<<r
			b.arrival[win][r].v.Store(s)
			for spins := int32(0); b.wake[w].v.Load() != s; spins++ {
				if spins >= spin {
					runtime.Gosched()
				}
			}
			lost = r
			break
		}
	}
	// Release: wake the loser of every round we won, top level first —
	// the decombining walk back down the tree.  Participant 0 reaches
	// here with lost == rounds and starts the wave.
	for r := lost - 1; r >= 0; r-- {
		opp := w + 1<<r
		if opp < b.n {
			b.wake[opp].v.Store(s)
		}
	}
}

// Sync is Wait under the internal/par phase-barrier contract, so a
// Barrier can drop into any code written against that interface.
func (b *Barrier) Sync(w int) { b.Wait(w) }
