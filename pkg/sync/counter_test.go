package sync_test

import (
	stdsync "sync"
	"testing"

	"combining/internal/core"
	"combining/internal/rmw"
	"combining/internal/word"
	csync "combining/pkg/sync"
)

func TestCounterShardRounding(t *testing.T) {
	for _, tc := range []struct{ k, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		if got := csync.NewCounterShards(tc.k).Shards(); got != tc.want {
			t.Fatalf("NewCounterShards(%d).Shards() = %d, want %d", tc.k, got, tc.want)
		}
	}
}

// TestCounterDifferentialSerialOracle drives concurrent adds with
// per-operation deltas derived from a fixed formula, then replays the same
// multiset of fetch-and-adds through core.SerialReplies: because the Assoc
// family is commutative, the serial oracle's final memory must equal
// Read() no matter how the shards interleaved.  The same deltas are also
// combined pairwise up an explicit rmw.Compose tree — the literal
// combine-at-switch algebra — which must agree with both.
func TestCounterDifferentialSerialOracle(t *testing.T) {
	const goroutines, ops = 64, 500
	c := csync.NewCounterShards(16)
	var wg stdsync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				c.Add(delta(g, i))
			}
		}(g)
	}
	wg.Wait()

	trace := make([]rmw.Mapping, 0, goroutines*ops)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < ops; i++ {
			trace = append(trace, rmw.FetchAdd(delta(g, i)))
		}
	}
	_, final := core.SerialReplies(word.W(0), trace)
	if got := c.Read(); got != final.Val {
		t.Fatalf("Read() = %d, serial oracle final = %d", got, final.Val)
	}
	if got := combineTree(t, trace).Apply(word.W(0)); got.Val != final.Val {
		t.Fatalf("pairwise combining tree yields %d, serial oracle final = %d", got.Val, final.Val)
	}
}

func delta(g, i int) int64 { return int64((g*31+i*7)%23 - 11) }

// combineTree folds a trace pairwise, level by level — the shape of the
// paper's combining network rather than a serial chain.
func combineTree(t *testing.T, ops []rmw.Mapping) rmw.Mapping {
	t.Helper()
	level := ops
	for len(level) > 1 {
		next := make([]rmw.Mapping, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			m, ok := rmw.Compose(level[i], level[i+1])
			if !ok {
				t.Fatalf("fetch-and-adds failed to combine at level size %d", len(level))
			}
			next = append(next, m)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// TestCounterAddAllocFree asserts the acceptance criterion: the
// steady-state Add path performs zero allocations.
func TestCounterAddAllocFree(t *testing.T) {
	c := csync.NewCounter()
	for i := 0; i < 1000; i++ {
		c.Add(1) // warm the per-P pool caches
	}
	if avg := testing.AllocsPerRun(10000, func() { c.Add(1) }); avg != 0 {
		t.Fatalf("Add allocates %.4f objects per call, want 0", avg)
	}
}

// TestCounterHotSpot100k is the acceptance-scale soak: 100k goroutines
// hammering one counter, under the race detector in `make check`.
func TestCounterHotSpot100k(t *testing.T) {
	const goroutines = 100_000
	c := csync.NewCounter()
	var wg stdsync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			c.Add(1)
		}()
	}
	wg.Wait()
	if got := c.Read(); got != goroutines {
		t.Fatalf("Read() = %d, want %d", got, goroutines)
	}
}
