// Package sync provides contention-free synchronization primitives for
// real Go programs, built from the combinable read-modify-write vocabulary
// of Kruskal, Rudolph and Snir (PODC 1986) the rest of this repository
// simulates.
//
// The paper's combining networks make hot-spot synchronization scale by
// merging concurrent RMWs to one location inside the interconnect, so the
// hot memory module sees O(log n) traffic instead of O(n).  Mellor-Crummey
// and Scott showed the same idea lands in software: locks and barriers in
// which every waiter spins on its own locally-accessible flag, and a single
// remote write by some other processor ends the spin.  This package is that
// translation, in pure Go, with each primitive named by the combinable
// mapping it implements (DESIGN.md §9 carries the full correspondence):
//
//   - MCSLock — the queue lock built on one atomic swap per acquisition
//     (the paper's I_v constant mapping with the old value returned).  Each
//     waiter spins on its own cache-line-padded queue node; handoff is one
//     remote store.  O(1) remote references per acquisition regardless of
//     contention.
//
//   - Barrier — a tournament (combining-tree) barrier with statically
//     assigned winners.  Each arrival is the software image of a combined
//     fetch-and-add propagating up a combining tree: a loser's arrival
//     flag is "combined" into its subtree winner, the champion plays the
//     memory module and releases the tree top-down.  Local-spin flags
//     only; reusable via sense reversal.
//
//   - Counter — a sharded combining counter: adds land on per-processor
//     cache-line-padded shards (fetch-and-add on a line nothing else
//     writes), and Read software-combines the shards pairwise up a binary
//     tree, mirroring the paper's combine-at-switch semantics.  The
//     steady-state Add path is allocation-free.
//
//   - FECell — a full/empty-bit synchronization cell (the paper's §5.5
//     two-state tables, as in the Denelcor HEP): conditional stores fail
//     on a full cell, consuming loads empty it, and the blocking variants
//     give producer/consumer handoff without a lock.
//
// Every primitive is validated two ways in this repository: differentially
// against the simulator's serial oracle (core.SerialReplies on the
// equivalent RMW trace) and with race-detector soaks at 100k+ goroutines
// on hot-spot workloads (`cmd/check -synclib`).  Benchmarks against the
// stdlib baselines (sync.Mutex, sync.WaitGroup, bare atomic.AddInt64) are
// in BENCH_combining.json under sync_primitives.
package sync
