package combining_test

import (
	"fmt"
	"sort"
	"sync"

	combining "combining"
)

// The Figure 1 cycle: combine, execute once, decombine.
func ExampleCombine() {
	a := combining.NewRequest(1, 100, combining.FetchAdd(3), 0)
	b := combining.NewRequest(2, 100, combining.FetchAdd(5), 1)
	comb, rec, _ := combining.Combine(a, b, combining.Policy{})

	cell := combining.W(10)
	reply := combining.Execute(&cell, comb)
	ra, rb := combining.Decombine(rec, reply)
	fmt.Println(ra, rb, cell)
	// Output: ⟨1, 10⟩ ⟨2, 13⟩ 18
}

// Section 5.1: a load behind a store combines into a swap; with reversal
// allowed and distinct processors it becomes a plain store instead.
func ExampleCompose() {
	h, _ := combining.Compose(combining.Load{}, combining.StoreOf(7))
	fmt.Println(h)

	a := combining.NewRequest(1, 0, combining.Load{}, 0)
	b := combining.NewRequest(2, 0, combining.StoreOf(7), 1)
	comb, rec, _ := combining.Combine(a, b, combining.Policy{AllowReversal: true})
	fmt.Println(comb.Op, rec.Reversed)
	// Output:
	// swap(7)
	// store(7) true
}

// Section 5.5: full/empty operations are two-state tables; conditional
// stores fail on a full cell and the old tag is the negative ack.
func ExampleFEStoreIfClearSet() {
	cell := combining.WT(0, combining.Empty)
	op := combining.FEStoreIfClearSet(42)

	r1 := combining.Execute(&cell, combining.NewRequest(1, 0, op, 0))
	r2 := combining.Execute(&cell, combining.NewRequest(2, 0, op, 1))
	fmt.Println(cell, op.Failed(r1.Val.Tag), op.Failed(r2.Val.Tag))
	// Output: 42/s1 false true
}

// Section 6: the asynchronous prefix tree computes exclusive prefixes
// with 2n−2−⌈lg n⌉ nontrivial operations.
func ExampleRunPrefixTree() {
	prefixes, total, ops := combining.RunPrefixTree(combining.IntAdd(),
		[]int64{5, 3, 9, 1, 7, 2, 8, 4})
	fmt.Println(prefixes, total, ops.Nontrivial, combining.PaperNontrivial(8))
	// Output: [0 5 8 17 18 25 27 35] 39 11 11
}

// Section 5.6: a path expression compiles to combinable guard mappings.
func ExampleCompilePath() {
	g, _ := combining.CompilePath("(produce consume)*")
	fmt.Println(g.States(), g.Accepts("produce", "consume"), g.Accepts("consume"))
	// Output: 2 true false
}

// A live combining network: concurrent fetch-and-adds serialize exactly.
func ExampleNewAsyncNet() {
	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: 4, Combining: true})
	defer net.Close()

	var wg sync.WaitGroup
	replies := make([]int64, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			replies[p] = net.Port(p).FetchAdd(0, 1)
		}(p)
	}
	wg.Wait()
	sort.Slice(replies, func(i, j int) bool { return replies[i] < replies[j] })
	fmt.Println(replies, net.Memory().Peek(0).Val)
	// Output: [0 1 2 3] 4
}

// The hot-spot experiment in three lines.
func ExampleRunHotspot() {
	no := combining.RunHotspot(64, 0.6, 0.25, false, 2000, 1)
	yes := combining.RunHotspot(64, 0.6, 0.25, true, 2000, 1)
	fmt.Println(yes.Stats.Bandwidth() > 3*no.Stats.Bandwidth())
	// Output: true
}
