# Convenience targets; everything is plain `go` underneath.

.PHONY: all check test race bench bench-smoke gobench experiments soak parbench fmt vet cover

all: vet test

# check is the CI gate: build everything, vet, lint (when staticcheck is
# on PATH; CI installs it, local runs skip it silently otherwise), run
# the full test suite under the race detector, then the crash–restart
# soak (checkpointed recovery on every wiring, crash-only and crash+drop)
# and the chaos fuzzer (randomized adversarial fault plans on all six
# wirings, with the vacuous-pass guard).
check:
	go build ./...
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	go test -race ./...
	go run -race ./cmd/check -quick -crash
	go run -race ./cmd/check -quick -chaos

test:
	go test ./...

race:
	go test -race ./internal/asyncnet/ ./internal/coord/ ./internal/pathexpr/ ./internal/memory/ .

# bench regenerates the committed measured baseline (EXPERIMENTS.md
# §Measured baselines); bench-smoke is the same sweep at small N for CI.
bench:
	go run ./cmd/experiments -bench -out BENCH_combining.json

bench-smoke:
	go run ./cmd/experiments -bench -quick -out /tmp/BENCH_combining_smoke.json

# gobench runs the go-test microbenchmarks (formerly `make bench`).
gobench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments

soak:
	go run ./cmd/check -rounds 200 -faults -overload -parallel -crash

# parbench runs the parallel-stepper microbenchmark (E15 curve; the full
# sweep also lands in BENCH_combining.json under parallel_speedup).
parbench:
	go test -bench=BenchmarkParallelStep -benchmem ./internal/network/

fmt:
	gofmt -w .

vet:
	go vet ./...

cover:
	go test -cover ./internal/...
