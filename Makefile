# Convenience targets; everything is plain `go` underneath.

.PHONY: all check test race bench bench-smoke benchcmp gobench experiments soak syncbench parbench profile fmt vet cover

all: vet test

# check is the CI gate: build everything, vet, lint (when staticcheck is
# on PATH; CI installs it, local runs skip it silently otherwise), run
# the full test suite under the race detector, then the crash–restart
# soak (checkpointed recovery on every wiring, crash-only and crash+drop),
# the chaos fuzzer (randomized adversarial fault plans on all six
# wirings, with the vacuous-pass guard), and the pkg/sync library soak
# (MCS lock, tournament barrier, sharded counter at 100k goroutines,
# differentially checked against the serial oracle).
check:
	go build ./...
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	go test -race ./...
	go run -race ./cmd/check -quick -crash
	go run -race ./cmd/check -quick -chaos
	go run -race ./cmd/check -quick -synclib

test:
	go test ./...

race:
	go test -race ./internal/asyncnet/ ./internal/coord/ ./internal/pathexpr/ ./internal/memory/ .

# bench regenerates the committed measured baseline (EXPERIMENTS.md
# §Measured baselines); bench-smoke is the same sweep at small N for CI.
bench:
	go run ./cmd/experiments -bench -out BENCH_combining.json

bench-smoke:
	go run ./cmd/experiments -bench -quick -out /tmp/BENCH_combining_smoke.json

# benchcmp regenerates the full baseline into /tmp and diffs it against
# the committed one benchstat-style: cycle-domain metrics (bandwidth,
# latency in cycles, combines) are deterministic and should report 0%;
# wall-clock metrics are annotated and expected to wobble.
benchcmp:
	go run ./cmd/experiments -bench -out /tmp/BENCH_combining_new.json
	go run ./cmd/benchcmp BENCH_combining.json /tmp/BENCH_combining_new.json

# gobench runs the go-test microbenchmarks (formerly `make bench`).
gobench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments

soak:
	go run ./cmd/check -rounds 200 -faults -overload -parallel -crash

# syncbench runs the pkg/sync microbenchmarks against their stdlib
# baselines (sharded counter vs bare atomic vs mutex; MCS vs sync.Mutex;
# tournament barrier vs WaitGroup fork-join).  The wall-clock sweeps that
# land in BENCH_combining.json's sync_primitives section come from
# cmd/experiments (`make bench`).
syncbench:
	go test -bench=BenchmarkSync -benchmem ./pkg/sync/

# parbench runs the parallel-stepper and barrier microbenchmarks (E15
# curve; the full sweeps also land in BENCH_combining.json under
# parallel_speedup and barrier_microbench).
parbench:
	go test -bench='BenchmarkParallelStep|BenchmarkBarrier' -benchmem ./internal/network/ ./internal/par/

# profile runs a representative hot-spot sweep under the pprof hooks and
# leaves cpu.out/mem.out for `go tool pprof -top`.
profile:
	go run ./cmd/combsim -n 256 -rate 0.9 -cycles 2000 -h 0.125 -workers 4 \
		-cpuprofile cpu.out -memprofile mem.out
	@echo "profiles written: cpu.out mem.out (inspect with go tool pprof -top cpu.out)"

fmt:
	gofmt -w .

vet:
	go vet ./...

cover:
	go test -cover ./internal/...
