# Convenience targets; everything is plain `go` underneath.

.PHONY: all test race bench experiments soak fmt vet cover

all: vet test

test:
	go test ./...

race:
	go test -race ./internal/asyncnet/ ./internal/coord/ ./internal/pathexpr/ ./internal/memory/ .

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments

soak:
	go run ./cmd/check -rounds 200

fmt:
	gofmt -w .

vet:
	go vet ./...

cover:
	go test -cover ./internal/...
