package combining_test

// Section 5.5's closing claim: "An alternative mechanism is to queue a
// request at memory until it is executable.  This decreases the network
// traffic."  We run the same producer/consumer workload both ways — the
// busy-waiting model (failed conditional operations are NAKed and retried
// through the live network) versus the queueing memory (inapplicable
// requests park at the controller) — and count the requests each needs.

import (
	"sync"
	"testing"

	combining "combining"
)

func TestQueueingDecreasesTraffic(t *testing.T) {
	const items = 150
	const cell = combining.Addr(3)

	// Busy-waiting through the asynchronous combining network: every
	// retry is a full round trip.
	busyRequests := func() int64 {
		net := combining.NewAsyncNet(combining.AsyncConfig{Procs: 4, Combining: true})
		defer net.Close()
		var issued int64
		var mu sync.Mutex
		count := func(n int64) {
			mu.Lock()
			issued += n
			mu.Unlock()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			port := net.Port(0)
			var n int64
			for i := int64(1); i <= items; i++ {
				for {
					n++
					if port.RMW(cell, combining.FEStoreIfClearSet(i)).Tag == combining.Empty {
						break
					}
				}
			}
			count(n)
		}()
		go func() {
			defer wg.Done()
			port := net.Port(3)
			var n int64
			got := 0
			for got < items {
				n++
				if port.RMW(cell, combining.FELoadIfSetClear()).Tag == combining.Full {
					got++
				}
			}
			count(n)
		}()
		wg.Wait()
		return issued
	}()

	// Queueing at the controller: each operation is issued exactly once.
	qmem := combining.NewQueueingMemory()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= items; i++ {
			qmem.Do(combining.NewRequest(combining.ReqID(i), cell,
				combining.FEStoreIfClearSet(i), 0))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			qmem.Do(combining.NewRequest(combining.ReqID(1000+i), cell,
				combining.FELoadIfSetClear(), 3))
		}
	}()
	wg.Wait()
	queueRequests := qmem.Served

	t.Logf("requests issued: busy-waiting %d, queueing %d (workload minimum %d)",
		busyRequests, queueRequests, 2*items)
	if queueRequests != 2*items {
		t.Fatalf("queueing memory served %d requests, want exactly %d", queueRequests, 2*items)
	}
	if busyRequests <= queueRequests {
		t.Fatalf("busy-waiting issued %d requests, expected more than the queueing minimum %d",
			busyRequests, queueRequests)
	}
}
