// Command tables prints the composition tables of Section 5, derived from
// the mapping implementations, and checks them against the tables printed
// in the paper (experiments T1, T2, T3).
package main

import (
	"fmt"
	"os"

	combining "combining"
)

func opName(m combining.Mapping) string {
	switch v := m.(type) {
	case combining.Load:
		return "load"
	case combining.Const:
		if v.NeedOld {
			return "swap"
		}
		return "store"
	default:
		return m.String()
	}
}

func main() {
	ok := true

	fmt.Println("Section 5.1 — combining loads, stores, and swaps")
	fmt.Println("(rows: first request; columns: second request)")
	lssOps := []struct {
		name string
		mk   func() combining.Mapping
	}{
		{"load", func() combining.Mapping { return combining.Load{} }},
		{"store", func() combining.Mapping { return combining.StoreOf(1) }},
		{"swap", func() combining.Mapping { return combining.SwapOf(2) }},
	}
	wantT1 := [3][3]string{
		{"load", "swap", "swap"},
		{"store", "store", "store"},
		{"swap", "swap", "swap"},
	}
	fmt.Printf("%8s |", "")
	for _, g := range lssOps {
		fmt.Printf(" %-6s", g.name)
	}
	fmt.Println()
	for i, f := range lssOps {
		fmt.Printf("%8s |", f.name)
		for j, g := range lssOps {
			h, _ := combining.Compose(f.mk(), g.mk())
			got := opName(h)
			mark := ""
			if got != wantT1[i][j] {
				mark, ok = "  <-- MISMATCH", false
			}
			fmt.Printf(" %-6s%s", got, mark)
		}
		fmt.Println()
	}

	fmt.Println("\nSection 5.1 — with order reversal (* marks a reversed pair)")
	wantT2 := [3][3]string{
		{"load", "store*", "swap"},
		{"store", "store", "store"},
		{"swap", "store*", "swap"},
	}
	fmt.Printf("%8s |", "")
	for _, g := range lssOps {
		fmt.Printf(" %-7s", g.name)
	}
	fmt.Println()
	for i, f := range lssOps {
		fmt.Printf("%8s |", f.name)
		for j, g := range lssOps {
			a := combining.NewRequest(1, 0, f.mk(), 0)
			b := combining.NewRequest(2, 0, g.mk(), 1)
			comb, rec, _ := combining.Combine(a, b, combining.Policy{AllowReversal: true})
			got := opName(comb.Op)
			if rec.Reversed {
				got += "*"
			}
			mark := ""
			if got != wantT2[i][j] {
				mark, ok = "  <-- MISMATCH", false
			}
			fmt.Printf(" %-7s%s", got, mark)
		}
		fmt.Println()
	}

	fmt.Println("\nSection 5.3 — the four unary Boolean operations")
	bNames := []string{"load", "clear", "set", "comp"}
	bMk := []combining.Mapping{
		combining.BoolOf(combining.BLoad),
		combining.BoolOf(combining.BClear),
		combining.BoolOf(combining.BSet),
		combining.BoolOf(combining.BComp),
	}
	wantT3 := [4][4]string{
		{"load", "clear", "set", "comp"},
		{"clear", "clear", "set", "set"},
		{"set", "clear", "set", "clear"},
		{"comp", "clear", "set", "load"},
	}
	fmt.Printf("%8s |", "")
	for _, n := range bNames {
		fmt.Printf(" %-6s", n)
	}
	fmt.Println()
	for i := range bMk {
		fmt.Printf("%8s |", bNames[i])
		for j := range bMk {
			h, _ := combining.Compose(bMk[i], bMk[j])
			got := h.String()
			mark := ""
			if got != wantT3[i][j] {
				mark, ok = "  <-- MISMATCH", false
			}
			fmt.Printf(" %-6s%s", got, mark)
		}
		fmt.Println()
	}

	fmt.Println("\nSection 5.5 — closure of the full/empty operations")
	feOps := []combining.Mapping{
		combining.FELoad(),
		combining.FELoadClear(),
		combining.FEStoreSet(1),
		combining.FEStoreIfClearSet(1),
		combining.FEStoreClear(1),
		combining.FEStoreIfClearClear(1),
	}
	for _, f := range feOps {
		for _, g := range feOps {
			if _, okC := combining.Compose(f, g); !okC {
				fmt.Printf("  %v ∘ %v failed to combine  <-- MISMATCH\n", f, g)
				ok = false
			}
		}
	}
	fmt.Printf("  all %d×%d compositions stay within the six-operation semigroup ✓\n",
		len(feOps), len(feOps))

	if !ok {
		fmt.Fprintln(os.Stderr, "tables: MISMATCH against the paper")
		os.Exit(1)
	}
	fmt.Println("\nall tables match the paper ✓")
}
