// Command prefixdemo runs the Section 6 asynchronous prefix tree and
// reports its operation counts against the paper's formulas
// (experiment E7).
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	combining "combining"
)

func main() {
	n := flag.Int("n", 16, "number of leaves")
	show := flag.Bool("show", false, "print the prefixes")
	flag.Parse()

	rng := rand.New(rand.NewPCG(1, 9))
	vals := make([]int64, *n)
	for i := range vals {
		vals[i] = int64(rng.IntN(90) + 10)
	}

	prefixes, total, ops := combining.RunPrefixTree(combining.IntAdd(), vals)
	if *show {
		fmt.Println("  i   val   exclusive prefix")
		for i, v := range vals {
			fmt.Printf("%3d  %4d   %6d\n", i, v, prefixes[i])
		}
	}
	fmt.Printf("n = %d leaves, total (at the superoot) = %d\n", *n, total)
	fmt.Printf("multiplications: %d total, %d nontrivial\n", ops.Total, ops.Nontrivial)
	fmt.Printf("paper formulas:  %d total (2n−2), %d nontrivial (2n−2−⌈lg n⌉)\n",
		2*(*n-1), combining.PaperNontrivial(*n))

	s := combining.AnalyzePrefix(*n)
	fmt.Printf("synchronized makespan: %d cycles; paper: 2⌈lg n⌉−2 = %d\n",
		s.Makespan, combining.PaperCycles(*n))

	pow2 := *n > 0 && *n&(*n-1) == 0
	if pow2 && (ops.Total != int64(2*(*n-1)) ||
		ops.Nontrivial != int64(combining.PaperNontrivial(*n)) ||
		s.Makespan != combining.PaperCycles(*n)) {
		fmt.Fprintln(os.Stderr, "prefixdemo: MISMATCH against the paper's counts")
		os.Exit(1)
	}
	if pow2 {
		fmt.Println("counts match the paper ✓")
	} else {
		fmt.Println("(exact count formulas apply to power-of-two n)")
	}
}
