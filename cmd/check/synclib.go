package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	combining "combining"
	csync "combining/pkg/sync"
)

// synclibSoak is the acceptance soak for the pkg/sync primitives
// (ISSUE: contention-free synchronization library).  It runs under the
// race detector in `make check` and CI:
//
//   - MCSLock guarding a deliberately non-atomic counter at hot-spot
//     scale, with every critical section's observed old value checked
//     against the Lemma 4.1 serial oracle on the same fetch-and-add trace;
//   - the tournament Barrier holding ~hot-spot-many participants in phase
//     lockstep across episodes;
//   - the sharded Counter against combining.SerialReplies on the full
//     trace of adds.
//
// Sizes are fixed, not shrunk by -quick: the acceptance bar is 100k
// goroutines on one hot spot.
func synclibSoak(verbose bool) (checked, failed int) {
	const hotGoroutines = 100_000

	// --- MCSLock: mutual exclusion + differential serial oracle ---------
	{
		var (
			l    csync.MCSLock
			v    int64 // non-atomic: the lock is the only protection
			olds = make([]int64, 0, hotGoroutines)
			wg   sync.WaitGroup
		)
		wg.Add(hotGoroutines)
		for g := 0; g < hotGoroutines; g++ {
			go func() {
				defer wg.Done()
				q := l.Lock()
				olds = append(olds, v) // protected by the lock
				v++
				l.Unlock(q)
			}()
		}
		wg.Wait()
		checked++
		ops := make([]combining.Mapping, len(olds))
		for i := range ops {
			ops[i] = combining.FetchAdd(1)
		}
		replies, final := combining.SerialReplies(combining.W(0), ops)
		bad := false
		for i, old := range olds {
			if old != replies[i].Val {
				fmt.Printf("FAIL synclib/mcs: critical section %d observed %d, serial oracle says %d\n", i, old, replies[i].Val)
				failed++
				bad = true
				break
			}
		}
		if !bad && v != final.Val {
			fmt.Printf("FAIL synclib/mcs: final counter %d, serial oracle says %d\n", v, final.Val)
			failed++
			bad = true
		}
		if !bad && verbose {
			fmt.Printf("ok   synclib/mcs: %d critical sections match the serial oracle\n", len(olds))
		}
		fmt.Printf("%-18s %d goroutines, every critical section serial-oracle checked\n", "synclib/mcs", hotGoroutines)
	}

	// --- Barrier: phase lockstep at width 4096, plus a 100k-wide episode -
	{
		const n, episodes = 4096, 8
		b := csync.NewBarrier(n)
		phase := make([]atomic.Int64, n)
		var wg sync.WaitGroup
		var violations atomic.Int64
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for e := int64(1); e <= episodes; e++ {
					phase[w].Store(e)
					b.Wait(w)
					for j := 0; j < n; j += 37 { // sampled scan keeps the soak O(n²/37)
						if p := phase[j].Load(); p < e || p > e+1 {
							violations.Add(1)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		checked++
		if violations.Load() != 0 {
			fmt.Printf("FAIL synclib/barrier: lockstep violated at width %d\n", n)
			failed++
		} else if verbose {
			fmt.Printf("ok   synclib/barrier: width %d held lockstep for %d episodes\n", n, episodes)
		}

		// One hot-spot-scale episode: every participant arrives once; none
		// may be released before all have arrived.
		wide := csync.NewBarrier(hotGoroutines)
		var arrived atomic.Int64
		var early atomic.Int64
		var ww sync.WaitGroup
		ww.Add(hotGoroutines)
		for w := 0; w < hotGoroutines; w++ {
			go func(w int) {
				defer ww.Done()
				arrived.Add(1)
				wide.Wait(w)
				if arrived.Load() < hotGoroutines {
					early.Add(1)
				}
			}(w)
		}
		ww.Wait()
		checked++
		if early.Load() != 0 {
			fmt.Printf("FAIL synclib/barrier: %d participants released before all %d arrived\n", early.Load(), hotGoroutines)
			failed++
		}
		fmt.Printf("%-18s width %d lockstep ×%d episodes, one %d-wide episode\n", "synclib/barrier", n, episodes, hotGoroutines)
	}

	// --- Counter: hot-spot adds vs the serial oracle --------------------
	{
		c := csync.NewCounter()
		var wg sync.WaitGroup
		wg.Add(hotGoroutines)
		for g := 0; g < hotGoroutines; g++ {
			go func(g int) {
				defer wg.Done()
				c.Add(int64(g%7 + 1))
			}(g)
		}
		wg.Wait()
		checked++
		ops := make([]combining.Mapping, hotGoroutines)
		for g := range ops {
			ops[g] = combining.FetchAdd(int64(g%7 + 1))
		}
		_, final := combining.SerialReplies(combining.W(0), ops)
		if got := c.Read(); got != final.Val {
			fmt.Printf("FAIL synclib/counter: Read() = %d, serial oracle final = %d\n", got, final.Val)
			failed++
		} else if verbose {
			fmt.Printf("ok   synclib/counter: %d adds sum to the serial oracle final\n", hotGoroutines)
		}
		fmt.Printf("%-18s %d hot-spot adds vs the serial oracle\n", "synclib/counter", hotGoroutines)
	}

	return checked, failed
}
