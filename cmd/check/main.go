// Command check is a correctness soak: it runs randomized programs on the
// combining machine across configurations, seeds and operation families,
// and verifies every execution with the Theorem 4.2 serializability
// checker and the linearizability checker.  It is the long-running version
// of the test suite's E4, intended for overnight confidence runs.
//
// Usage: check [-rounds 50] [-procs 16] [-ops 20] [-addrs 4] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	combining "combining"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 50, "randomized executions per configuration")
		procs   = flag.Int("procs", 16, "processors (power of two)")
		ops     = flag.Int("ops", 20, "operations per processor")
		addrs   = flag.Int("addrs", 4, "shared addresses (smaller = hotter)")
		seed    = flag.Uint64("seed", 1, "base seed")
		verbose = flag.Bool("v", false, "log every execution")
	)
	flag.Parse()

	configs := []struct {
		name string
		cfg  combining.NetConfig
	}{
		{"no-combining", combining.NetConfig{Procs: *procs, WaitBufCap: 0}},
		{"partial-1", combining.NetConfig{Procs: *procs, WaitBufCap: 1}},
		{"partial-4", combining.NetConfig{Procs: *procs, WaitBufCap: 4}},
		{"full", combining.NetConfig{Procs: *procs, WaitBufCap: combining.Unbounded}},
		{"full+reversal", combining.NetConfig{Procs: *procs, WaitBufCap: combining.Unbounded, AllowReversal: true}},
		{"radix-4", combining.NetConfig{Procs: *procs, Radix: 4, WaitBufCap: combining.Unbounded}},
	}

	checked, failed := 0, 0
	for _, c := range configs {
		if c.cfg.Radix == 4 && !isPow(*procs, 4) {
			continue
		}
		for r := 0; r < *rounds; r++ {
			rng := rand.New(rand.NewPCG(*seed+uint64(r), 1234))
			progs := randomPrograms(rng, *procs, *ops, *addrs)
			m := combining.NewMachine(c.cfg, progs)
			if !m.Run(10_000_000) {
				fmt.Printf("FAIL %s round %d: machine did not complete\n", c.name, r)
				failed++
				continue
			}
			final := map[combining.Addr]combining.Word{}
			for a := 0; a < *addrs; a++ {
				final[combining.Addr(a)] = m.Sim().Memory().Peek(combining.Addr(a))
			}
			checked++
			if err := combining.CheckM2WithFinal(m.History(), nil, final); err != nil {
				fmt.Printf("FAIL %s round %d: %v\n", c.name, r, err)
				failed++
				continue
			}
			if err := combining.CheckLinearizable(m.TimedHistory(), nil, final); err != nil {
				fmt.Printf("FAIL %s round %d (linearizability): %v\n", c.name, r, err)
				failed++
				continue
			}
			if *verbose {
				st := m.Sim().Stats()
				fmt.Printf("ok   %s round %d: %d ops, %d combines\n", c.name, r, st.Issued, st.Combines)
			}
		}
		fmt.Printf("%-14s %d executions verified\n", c.name, *rounds)
	}
	fmt.Printf("\n%d executions checked, %d failures\n", checked, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func isPow(n, k int) bool {
	for n > 1 {
		if n%k != 0 {
			return false
		}
		n /= k
	}
	return n == 1
}

func randomPrograms(rng *rand.Rand, procs, ops, addrs int) [][]combining.Instr {
	progs := make([][]combining.Instr, procs)
	family := rng.IntN(4)
	for p := range progs {
		for i := 0; i < ops; i++ {
			addr := combining.Addr(rng.IntN(addrs))
			var op combining.Mapping
			switch {
			case family == 3:
				v := int64(rng.IntN(100))
				choices := []combining.Mapping{
					combining.FELoad(), combining.FEStoreSet(v),
					combining.FEStoreIfClearSet(v), combining.FELoadClear(),
					combining.StoreOf(v), combining.Load{},
				}
				op = choices[rng.IntN(len(choices))]
			case rng.IntN(3) == 0:
				op = combining.Load{}
			case rng.IntN(2) == 0:
				switch family {
				case 0:
					op = combining.FetchAdd(int64(rng.IntN(19) - 9))
				case 1:
					op = combining.Bool{A: rng.Uint64(), B: rng.Uint64()}
				default:
					op = combining.Affine{A: int64(rng.IntN(5) - 2), B: int64(rng.IntN(50))}
				}
			default:
				op = combining.SwapOf(int64(rng.IntN(100)))
			}
			progs[p] = append(progs[p], combining.RMW(addr, op))
		}
	}
	return progs
}
