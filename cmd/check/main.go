// Command check is a correctness soak: it runs randomized programs on the
// combining machine across configurations, seeds and operation families,
// and verifies every execution with the Theorem 4.2 serializability
// checker and the linearizability checker.  It is the long-running version
// of the test suite's E4, intended for overnight confidence runs.
//
// With -faults it additionally soaks all four engines — the staged engine
// on both the omega and fat-tree wirings, the direct engine on both the
// hypercube and torus wirings — under deterministic fault plans (link
// drops, switch blackouts, memory slowdowns) and checks that recovery
// preserves per-location serializability and exactly-once RMW semantics.
// Every failure prints the effective seed of the run, so `check -seed
// <that seed> -rounds 1` replays it exactly.
//
// With -overload it runs the deadlock-freedom soak: a pure hot spot
// driven through every engine with every queue at its minimum capacity
// (forward, reverse, and memory queues at 1; channel capacity 1 on the
// goroutine engine), clean and under fault plans, watchdog-guarded.  The
// runs must complete with zero watchdog trips and replies matching the
// serial prefix sums.
//
// With -parallel it runs the determinism soak for the sharded steppers:
// each cycle engine (again on every wiring) executes the same seeded
// workload at Workers = 1, 2 and 4, and every run must produce a
// byte-identical stats snapshot and identical per-processor reply
// sequences (DESIGN.md §6), clean and under fault plans.
//
// With -crash it runs the crash–restart soak (experiment E16): every
// cycle-engine wiring executes randomized programs while whole components
// die and come back — a switch flushing its queues, a memory module
// rolling back to its last checkpoint, a link going dark for a burst —
// first under crash windows alone, then under crashes combined with
// message drops.  Acceptance is exactly-once completion (issued ==
// completed, every crash-flushed operation replayed), per-location
// serializability, and the crash machinery demonstrably engaging
// (nonzero crashes/restores/checkpoints across the soak).
//
// With -chaos it runs the fault-plan fuzzer (experiment E17): -rounds
// sampled plans per wiring, each mixing every fault kind — drops, stalls,
// slowdowns, crashes, reordering, duplication, corruption — under seeded
// randomized programs on all six wirings.  Any invariant violation is
// shrunk to a minimal scenario (windows dropped, fault kinds zeroed,
// probabilities halved) and reported as a `cmd/replay -chaos` command
// line that replays it deterministically.  A soak in which an adversarial
// fault kind never fired is a vacuous pass and fails.  -canary arms a
// named seeded bug (e.g. "nodedup", which disables reply-cache dedup) in
// every sampled plan, to prove the fuzzer finds and shrinks real bugs.
//
// With -synclib it soaks the pkg/sync primitives at acceptance scale:
// the MCS lock guards a non-atomic counter from 100k goroutines with every
// critical section's observed old value checked against the Lemma 4.1
// serial oracle; the tournament barrier holds thousands of participants in
// phase lockstep (plus one 100k-wide episode); the sharded counter's Read
// must equal combining.SerialReplies on the full trace of adds.  Run it
// under -race (the Makefile and CI do).
//
// Usage: check [-rounds 50] [-procs 16] [-ops 20] [-addrs 4] [-seed 1]
// [-quick] [-faults] [-overload] [-parallel] [-crash] [-chaos]
// [-canary nodedup] [-synclib] [-v]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"sync"

	combining "combining"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 50, "randomized executions per configuration")
		procs    = flag.Int("procs", 16, "processors (power of two)")
		ops      = flag.Int("ops", 20, "operations per processor")
		addrs    = flag.Int("addrs", 4, "shared addresses (smaller = hotter)")
		seed     = flag.Uint64("seed", 1, "base seed; round r runs with seed+r")
		quick    = flag.Bool("quick", false, "small CI-sized soak (shrinks rounds/procs/ops)")
		doFaults = flag.Bool("faults", false, "also soak all four engines under fault plans")
		overload = flag.Bool("overload", false, "deadlock-freedom soak: every queue at capacity 1 on all four engines")
		parallel = flag.Bool("parallel", false, "determinism soak: cycle engines at Workers = 1, 2, 4 must match byte-for-byte")
		doCrash  = flag.Bool("crash", false, "crash–restart soak: checkpointed recovery on every wiring, crash-only and crash+drop")
		doChaos  = flag.Bool("chaos", false, "fault-plan fuzzer: sampled plans mixing every fault kind on all six wirings; violations shrink to a replayable reproducer")
		synclib  = flag.Bool("synclib", false, "pkg/sync soak: MCS lock, tournament barrier and sharded counter at 100k goroutines, differentially checked against the serial oracle")
		canary   = flag.String("canary", "", "arm a named seeded bug (e.g. nodedup) in every chaos plan — the fuzzer must find and shrink it")
		verbose  = flag.Bool("v", false, "log every execution")
	)
	flag.Parse()
	if *canary != "" && !*doChaos {
		fmt.Fprintf(os.Stderr, "check: -canary %s without -chaos — nothing to fuzz\n", *canary)
		os.Exit(2)
	}
	if *quick {
		*rounds, *procs, *ops = 6, 8, 12
	}
	// Engine-shape validation up front, through the one Config.Validate
	// path: a bad -procs is a one-line exit, not a stack trace from an
	// engine constructor mid-soak.
	for _, err := range []error{
		combining.NetConfig{Procs: *procs}.Validate(),
		combining.CubeConfig{Nodes: *procs}.Validate(),
		combining.BusConfig{Procs: *procs, Banks: 4}.Validate(),
	} {
		if err != nil {
			fmt.Fprintf(os.Stderr, "check: %v\n", err)
			os.Exit(2)
		}
	}

	checked, failed := healthySoak(*rounds, *procs, *ops, *addrs, *seed, *verbose)
	if *doFaults {
		fc, ff := faultSoak(*rounds, *procs, *ops, *addrs, *seed, *verbose)
		checked += fc
		failed += ff
	}
	if *overload {
		oc, of := overloadSoak(*rounds, *procs, *ops, *seed, *verbose)
		checked += oc
		failed += of
	}
	if *parallel {
		pc, pf := parallelSoak(*rounds, *procs, *ops, *addrs, *seed, *verbose)
		checked += pc
		failed += pf
	}
	if *doCrash {
		cc, cf := crashSoak(*rounds, *procs, *ops, *addrs, *seed, *verbose)
		checked += cc
		failed += cf
	}
	if *doChaos {
		hc, hf := chaosSoak(*rounds, *seed, *canary, *verbose)
		checked += hc
		failed += hf
	}
	if *synclib {
		sc, sf := synclibSoak(*verbose)
		checked += sc
		failed += sf
	}
	fmt.Printf("\n%d executions checked, %d failures\n", checked, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// healthySoak is the original no-fault soak across combining configurations.
func healthySoak(rounds, procs, ops, addrs int, seed uint64, verbose bool) (checked, failed int) {
	configs := []struct {
		name string
		cfg  combining.NetConfig
	}{
		{"no-combining", combining.NetConfig{Procs: procs, WaitBufCap: 0}},
		{"partial-1", combining.NetConfig{Procs: procs, WaitBufCap: 1}},
		{"partial-4", combining.NetConfig{Procs: procs, WaitBufCap: 4}},
		{"full", combining.NetConfig{Procs: procs, WaitBufCap: combining.Unbounded}},
		{"full+reversal", combining.NetConfig{Procs: procs, WaitBufCap: combining.Unbounded, AllowReversal: true}},
		{"radix-4", combining.NetConfig{Procs: procs, Radix: 4, WaitBufCap: combining.Unbounded}},
	}

	for _, c := range configs {
		if c.cfg.Radix == 4 && !isPow(procs, 4) {
			continue
		}
		for r := 0; r < rounds; r++ {
			eff := seed + uint64(r)
			rng := rand.New(rand.NewPCG(eff, 1234))
			progs := randomPrograms(rng, procs, ops, addrs)
			m := combining.NewMachine(c.cfg, progs)
			if !m.Run(10_000_000) {
				fmt.Printf("FAIL %s seed %d: machine did not complete (replay: -seed %d -rounds 1)\n", c.name, eff, eff)
				failed++
				continue
			}
			final := map[combining.Addr]combining.Word{}
			for a := 0; a < addrs; a++ {
				final[combining.Addr(a)] = m.Sim().Memory().Peek(combining.Addr(a))
			}
			checked++
			if err := combining.CheckM2WithFinal(m.History(), nil, final); err != nil {
				fmt.Printf("FAIL %s seed %d: %v (replay: -seed %d -rounds 1)\n", c.name, eff, err, eff)
				failed++
				continue
			}
			if err := combining.CheckLinearizable(m.TimedHistory(), nil, final); err != nil {
				fmt.Printf("FAIL %s seed %d (linearizability): %v (replay: -seed %d -rounds 1)\n", c.name, eff, err, eff)
				failed++
				continue
			}
			if verbose {
				st := m.Sim().Stats()
				fmt.Printf("ok   %s seed %d: %d ops, %d combines\n", c.name, eff, st.Issued, st.Combines)
			}
		}
		fmt.Printf("%-14s %d executions verified\n", c.name, rounds)
	}
	return checked, failed
}

// faultEngine is what the fault soak needs from a cycle-driven transport.
type faultEngine interface {
	combining.MachineEngine
	Snapshot() combining.StatsSnapshot
	Memory() *combining.MemArray
}

// faultSoak runs randomized programs under the default fault plan on the
// three cycle-driven engines, and a hot-spot soak on the goroutine engine,
// verifying M2 serializability and exactly-once completion.  Fault counts
// are aggregated per engine: a plan that injected nothing across every
// round means the injection path is disconnected, which is itself a
// failure.
func faultSoak(rounds, procs, ops, addrs int, seed uint64, verbose bool) (checked, failed int) {
	engines := []struct {
		name  string
		build func(plan *combining.FaultPlan, inj []combining.Injector) faultEngine
	}{
		{"network+faults", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewSim(combining.NetConfig{Procs: procs, WaitBufCap: 64, Faults: p}, inj)
		}},
		{"fattree+faults", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewSim(combining.NetConfig{
				Topology: combining.FatTreeTopology(procs, 2), WaitBufCap: 64, Faults: p}, inj)
		}},
		{"busnet+faults", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewBusSim(combining.BusConfig{Procs: procs, Banks: 4, WaitBufCap: 64, Faults: p}, inj)
		}},
		{"hypercube+faults", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewCubeSim(combining.CubeConfig{Nodes: procs, WaitBufCap: 64, Faults: p}, inj)
		}},
		{"torus+faults", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewCubeSim(combining.CubeConfig{
				Topology: combining.SquareTorusTopology(procs), WaitBufCap: 64, Faults: p}, inj)
		}},
	}

	for _, e := range engines {
		var injectedTotal int64
		for r := 0; r < rounds; r++ {
			eff := seed + uint64(r)
			rng := rand.New(rand.NewPCG(eff, 1234))
			progs := randomPrograms(rng, procs, ops, addrs)
			plan := combining.DefaultFaultPlan(eff)
			m, inj := combining.NewMachineInjectors(progs)
			eng := e.build(plan, inj)
			m.BindEngine(eng)
			if !m.Run(10_000_000) {
				fmt.Printf("FAIL %s seed %d: programs did not complete, %d in flight (replay: -seed %d -rounds 1 -faults)\n",
					e.name, eff, eng.InFlight(), eff)
				failed++
				continue
			}
			final := map[combining.Addr]combining.Word{}
			for a := 0; a < addrs; a++ {
				final[combining.Addr(a)] = eng.Memory().Peek(combining.Addr(a))
			}
			checked++
			snap := eng.Snapshot()
			injectedTotal += snap.Counters["faults_injected"]
			if err := combining.CheckM2WithFinal(m.History(), nil, final); err != nil {
				fmt.Printf("FAIL %s seed %d: %v (replay: -seed %d -rounds 1 -faults)\n", e.name, eff, err, eff)
				failed++
				continue
			}
			if snap.Counters["issued"] != snap.Counters["completed"] {
				fmt.Printf("FAIL %s seed %d: issued %d != completed %d (replay: -seed %d -rounds 1 -faults)\n",
					e.name, eff, snap.Counters["issued"], snap.Counters["completed"], eff)
				failed++
				continue
			}
			if n := eng.InFlight(); n != 0 {
				fmt.Printf("FAIL %s seed %d: %d requests never delivered (replay: -seed %d -rounds 1 -faults)\n",
					e.name, eff, n, eff)
				failed++
				continue
			}
			if verbose {
				fmt.Printf("ok   %s seed %d: %d faults, %d retries, %d dedup hits\n",
					e.name, eff, snap.Counters["faults_injected"], snap.Counters["retries"], snap.Counters["dedup_hits"])
			}
		}
		if injectedTotal == 0 {
			fmt.Printf("FAIL %s: no faults injected across %d rounds — injection path disconnected\n", e.name, rounds)
			failed++
		}
		fmt.Printf("%-18s %d executions verified (%d faults injected)\n", e.name, rounds, injectedTotal)
	}

	// The goroutine engine: every port hammers one counter under drops;
	// the replies must be a permutation of the serial prefix sums.
	var injectedTotal int64
	for r := 0; r < rounds; r++ {
		eff := seed + uint64(r)
		injected, err := asyncFaultRound(procs, 8*ops, eff)
		checked++
		injectedTotal += injected
		if err != nil {
			fmt.Printf("FAIL asyncnet+faults seed %d: %v (replay: -seed %d -rounds 1 -faults)\n", eff, err, eff)
			failed++
		}
	}
	if injectedTotal == 0 {
		fmt.Printf("FAIL asyncnet+faults: no faults injected across %d rounds\n", rounds)
		failed++
	}
	fmt.Printf("%-18s %d executions verified (%d faults injected)\n", "asyncnet+faults", rounds, injectedTotal)
	return checked, failed
}

// asyncFaultRound runs one exactly-once soak on the goroutine engine.
func asyncFaultRound(procs, opsPerPort int, seed uint64) (injected int64, err error) {
	plan := &combining.FaultPlan{Seed: seed, DropFwd: 0.02, DropRev: 0.02}
	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: procs, Combining: true, Faults: plan})
	defer net.Close()
	const hot = combining.Addr(1)

	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			got := make([]int64, 0, opsPerPort)
			for i := 0; i < opsPerPort; i++ {
				got = append(got, port.RMW(hot, combining.FetchAdd(1)).Val)
			}
			vals[p] = got
		}(p)
	}
	wg.Wait()

	total := procs * opsPerPort
	if got := net.Memory().Peek(hot).Val; got != int64(total) {
		return 0, fmt.Errorf("final counter %d, want %d", got, total)
	}
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			return 0, fmt.Errorf("sorted reply %d = %d, want %d (duplicate or lost RMW)", i, v, i)
		}
	}
	return net.Snapshot().Counters["faults_injected"], nil
}

// overEngine is what the overload soak needs from a cycle-driven
// transport: stepping, the shared snapshot, memory, and the watchdog.
type overEngine interface {
	combining.MachineEngine
	Snapshot() combining.StatsSnapshot
	Memory() *combining.MemArray
	Stalled() bool
	StallReport() string
}

// overloadSoak drives a pure hot spot through each engine with every
// queue at its minimum capacity — the configuration in which any flaw in
// the credit scheme deadlocks or livelocks — clean and under the default
// fault plan.  Completion with zero watchdog trips plus serial-prefix-sum
// replies is the deadlock-freedom acceptance check; a trip prints the
// engine's replayable stall report.
func overloadSoak(rounds, procs, ops int, seed uint64, verbose bool) (checked, failed int) {
	engines := []struct {
		name  string
		build func(plan *combining.FaultPlan, inj []combining.Injector) overEngine
	}{
		{"network", func(p *combining.FaultPlan, inj []combining.Injector) overEngine {
			return combining.NewSim(combining.NetConfig{
				Procs: procs, QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: 4, Faults: p,
			}, inj)
		}},
		{"busnet", func(p *combining.FaultPlan, inj []combining.Injector) overEngine {
			return combining.NewBusSim(combining.BusConfig{
				Procs: procs, Banks: 4, QueueCap: 1, BankQueueCap: 1,
				WaitBufCap: 4, Faults: p,
			}, inj)
		}},
		{"hypercube", func(p *combining.FaultPlan, inj []combining.Injector) overEngine {
			return combining.NewCubeSim(combining.CubeConfig{
				Nodes: procs, QueueCap: 1, RevQueueCap: 1, MemQueueCap: 1,
				WaitBufCap: 4, Faults: p,
			}, inj)
		}},
	}
	const hot = combining.Addr(0)
	modes := []struct {
		name string
		plan func(uint64) *combining.FaultPlan
	}{
		{"clean", func(uint64) *combining.FaultPlan { return nil }},
		{"faults", func(s uint64) *combining.FaultPlan { return combining.DefaultFaultPlan(s) }},
	}
	for _, e := range engines {
		for _, mode := range modes {
			name := e.name + "/overload-" + mode.name
			for r := 0; r < rounds; r++ {
				eff := seed + uint64(r)
				progs := make([][]combining.Instr, procs)
				for p := range progs {
					for i := 0; i < ops; i++ {
						progs[p] = append(progs[p], combining.RMW(hot, combining.FetchAdd(1)))
					}
				}
				m, inj := combining.NewMachineInjectors(progs)
				eng := e.build(mode.plan(eff), inj)
				m.BindEngine(eng)
				if !m.Run(10_000_000) {
					if eng.Stalled() {
						fmt.Printf("FAIL %s seed %d: %s\n", name, eff, eng.StallReport())
					} else {
						fmt.Printf("FAIL %s seed %d: did not complete, %d in flight (replay: -seed %d -rounds 1 -overload)\n",
							name, eff, eng.InFlight(), eff)
					}
					failed++
					continue
				}
				checked++
				total := int64(procs * ops)
				if got := eng.Memory().Peek(hot).Val; got != total {
					fmt.Printf("FAIL %s seed %d: final counter %d, want %d\n", name, eff, got, total)
					failed++
					continue
				}
				var all []int64
				for p := 0; p < procs; p++ {
					for i := 0; i < ops; i++ {
						all = append(all, m.Proc(p).Reply(i).Val)
					}
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				bad := false
				for i, v := range all {
					if v != int64(i) {
						fmt.Printf("FAIL %s seed %d: sorted reply %d = %d, want %d (lost or duplicated RMW)\n", name, eff, i, v, i)
						failed++
						bad = true
						break
					}
				}
				if bad {
					continue
				}
				snap := eng.Snapshot()
				if trips := snap.Counters["watchdog_trips"]; trips != 0 {
					fmt.Printf("FAIL %s seed %d: %d watchdog trips on a completed run\n", name, eff, trips)
					failed++
					continue
				}
				if verbose {
					fmt.Printf("ok   %s seed %d: %d ops, max rev queue %d, max mem queue %d\n",
						name, eff, total, snap.Gauges["max_rev_queue"], snap.Gauges["max_mem_queue"])
				}
			}
			fmt.Printf("%-26s %d executions verified\n", name, rounds)
		}
	}

	// The goroutine engine at channel capacity 1, clean and under drops.
	for _, mode := range modes {
		name := "asyncnet/overload-" + mode.name
		for r := 0; r < rounds; r++ {
			eff := seed + uint64(r)
			if err := asyncOverloadRound(procs, ops, mode.plan(eff)); err != nil {
				fmt.Printf("FAIL %s seed %d: %v (replay: -seed %d -rounds 1 -overload)\n", name, eff, err, eff)
				failed++
			} else {
				checked++
			}
		}
		fmt.Printf("%-26s %d executions verified\n", name, rounds)
	}
	return checked, failed
}

// asyncOverloadRound is one ChanCap=1 hot-spot soak on the goroutine
// engine: pipelined fetch-and-adds from every port, replies checked
// against the serial prefix sums.
func asyncOverloadRound(procs, opsPerPort int, plan *combining.FaultPlan) error {
	net := combining.NewAsyncNet(combining.AsyncConfig{
		Procs: procs, Combining: true, Window: 4, ChanCap: 1, Faults: plan,
	})
	defer net.Close()
	const hot = combining.Addr(1)

	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			got := make([]int64, 0, opsPerPort)
			for i := 0; i < opsPerPort; i++ {
				got = append(got, port.RMW(hot, combining.FetchAdd(1)).Val)
			}
			vals[p] = got
		}(p)
	}
	wg.Wait()

	total := procs * opsPerPort
	if got := net.Memory().Peek(hot).Val; got != int64(total) {
		return fmt.Errorf("final counter %d, want %d", got, total)
	}
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			return fmt.Errorf("sorted reply %d = %d, want %d (lost or duplicated RMW)", i, v, i)
		}
	}
	return nil
}

// crashSoak runs randomized programs on every cycle-engine wiring under
// crash–restart plans — crash windows alone, then crashes combined with the
// message-drop plan — and verifies exactly-once recovery: the run completes,
// per-location serializability holds against final memory, issued equals
// completed, and every operation a crash flushed was replayed.  Crash and
// restore counts are aggregated per engine/mode; a soak in which no
// component ever died is a vacuous pass and fails.
func crashSoak(rounds, procs, ops, addrs int, seed uint64, verbose bool) (checked, failed int) {
	engines := []struct {
		name  string
		build func(plan *combining.FaultPlan, inj []combining.Injector) faultEngine
	}{
		{"network", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewSim(combining.NetConfig{Procs: procs, WaitBufCap: 64, Faults: p}, inj)
		}},
		{"fattree", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewSim(combining.NetConfig{
				Topology: combining.FatTreeTopology(procs, 2), WaitBufCap: 64, Faults: p}, inj)
		}},
		{"busnet", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewBusSim(combining.BusConfig{Procs: procs, Banks: 4, WaitBufCap: 64, Faults: p}, inj)
		}},
		{"hypercube", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewCubeSim(combining.CubeConfig{Nodes: procs, WaitBufCap: 64, Faults: p}, inj)
		}},
		{"torus", func(p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewCubeSim(combining.CubeConfig{
				Topology: combining.SquareTorusTopology(procs), WaitBufCap: 64, Faults: p}, inj)
		}},
	}
	modes := []struct {
		name string
		plan func(uint64) *combining.FaultPlan
	}{
		{"crash", func(s uint64) *combining.FaultPlan { return combining.DefaultCrashPlan(s) }},
		{"crash+drop", func(s uint64) *combining.FaultPlan {
			p := combining.DefaultFaultPlan(s)
			c := combining.DefaultCrashPlan(s)
			p.Crashes, p.MemCrashes, p.LinkCrashes = c.Crashes, c.MemCrashes, c.LinkCrashes
			p.CheckpointEvery = c.CheckpointEvery
			return p
		}},
	}
	for _, e := range engines {
		for _, mode := range modes {
			name := e.name + "/" + mode.name
			var crashesTotal, restoresTotal, checkpointsTotal int64
			for r := 0; r < rounds; r++ {
				eff := seed + uint64(r)
				rng := rand.New(rand.NewPCG(eff, 1234))
				progs := randomPrograms(rng, procs, ops, addrs)
				// Hold each program's last operation until past the default
				// plan's final crash window, so a short run can't finish
				// before a single component has died.
				for p := range progs {
					progs[p][len(progs[p])-1].MinCycle = 1000
				}
				m, inj := combining.NewMachineInjectors(progs)
				eng := e.build(mode.plan(eff), inj)
				m.BindEngine(eng)
				if !m.Run(10_000_000) {
					fmt.Printf("FAIL %s seed %d: programs did not complete, %d in flight (replay: -seed %d -rounds 1 -crash)\n",
						name, eff, eng.InFlight(), eff)
					failed++
					continue
				}
				final := map[combining.Addr]combining.Word{}
				for a := 0; a < addrs; a++ {
					final[combining.Addr(a)] = eng.Memory().Peek(combining.Addr(a))
				}
				checked++
				snap := eng.Snapshot()
				crashesTotal += snap.Counters["crashes"]
				restoresTotal += snap.Counters["restores"]
				checkpointsTotal += snap.Counters["checkpoints"]
				if err := combining.CheckM2WithFinal(m.History(), nil, final); err != nil {
					fmt.Printf("FAIL %s seed %d: %v (replay: -seed %d -rounds 1 -crash)\n", name, eff, err, eff)
					failed++
					continue
				}
				if snap.Counters["issued"] != snap.Counters["completed"] {
					fmt.Printf("FAIL %s seed %d: issued %d != completed %d (replay: -seed %d -rounds 1 -crash)\n",
						name, eff, snap.Counters["issued"], snap.Counters["completed"], eff)
					failed++
					continue
				}
				if snap.Counters["replayed_requests"] != snap.Counters["lost_in_flight"] {
					fmt.Printf("FAIL %s seed %d: %d lost in flight but %d replayed (replay: -seed %d -rounds 1 -crash)\n",
						name, eff, snap.Counters["lost_in_flight"], snap.Counters["replayed_requests"], eff)
					failed++
					continue
				}
				if n := eng.InFlight(); n != 0 {
					fmt.Printf("FAIL %s seed %d: %d requests never delivered (replay: -seed %d -rounds 1 -crash)\n",
						name, eff, n, eff)
					failed++
					continue
				}
				if verbose {
					fmt.Printf("ok   %s seed %d: %d crashes, %d restores, %d checkpoints, %d replayed\n",
						name, eff, snap.Counters["crashes"], snap.Counters["restores"],
						snap.Counters["checkpoints"], snap.Counters["replayed_requests"])
				}
			}
			if crashesTotal == 0 || restoresTotal == 0 || checkpointsTotal == 0 {
				fmt.Printf("FAIL %s: crash machinery never engaged across %d rounds (crashes %d, restores %d, checkpoints %d)\n",
					name, rounds, crashesTotal, restoresTotal, checkpointsTotal)
				failed++
			}
			fmt.Printf("%-22s %d executions verified (%d crashes, %d restores)\n",
				name, rounds, crashesTotal, restoresTotal)
		}
	}
	return checked, failed
}

// parallelSoak verifies the determinism contract of the sharded cycle
// steppers (DESIGN.md §6): the same seeded randomized programs run on
// each cycle engine at Workers = 1, 2 and 4, clean and under the default
// fault plan, and every width must reproduce the serial run exactly —
// byte-identical stats snapshot and identical per-processor reply
// sequences.
func parallelSoak(rounds, procs, ops, addrs int, seed uint64, verbose bool) (checked, failed int) {
	engines := []struct {
		name  string
		build func(workers int, plan *combining.FaultPlan, inj []combining.Injector) faultEngine
	}{
		{"network", func(w int, p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewSim(combining.NetConfig{
				Procs: procs, WaitBufCap: 64, Faults: p, Workers: w}, inj)
		}},
		{"fattree", func(w int, p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewSim(combining.NetConfig{
				Topology: combining.FatTreeTopology(procs, 2), WaitBufCap: 64, Faults: p, Workers: w}, inj)
		}},
		{"busnet", func(w int, p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewBusSim(combining.BusConfig{
				Procs: procs, Banks: 4, WaitBufCap: 64, Faults: p, Workers: w}, inj)
		}},
		{"hypercube", func(w int, p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewCubeSim(combining.CubeConfig{
				Nodes: procs, WaitBufCap: 64, Faults: p, Workers: w}, inj)
		}},
		{"torus", func(w int, p *combining.FaultPlan, inj []combining.Injector) faultEngine {
			return combining.NewCubeSim(combining.CubeConfig{
				Topology: combining.SquareTorusTopology(procs), WaitBufCap: 64, Faults: p, Workers: w}, inj)
		}},
	}
	modes := []struct {
		name string
		plan func(uint64) *combining.FaultPlan
	}{
		{"clean", func(uint64) *combining.FaultPlan { return nil }},
		{"faults", func(s uint64) *combining.FaultPlan { return combining.DefaultFaultPlan(s) }},
	}
	type outcome struct {
		snap    []byte
		replies []int64
		ok      bool
	}
	for _, e := range engines {
		for _, mode := range modes {
			name := e.name + "/parallel-" + mode.name
			for r := 0; r < rounds; r++ {
				eff := seed + uint64(r)
				run := func(workers int) outcome {
					rng := rand.New(rand.NewPCG(eff, 1234))
					progs := randomPrograms(rng, procs, ops, addrs)
					m, inj := combining.NewMachineInjectors(progs)
					eng := e.build(workers, mode.plan(eff), inj)
					m.BindEngine(eng)
					if !m.Run(10_000_000) {
						fmt.Printf("FAIL %s seed %d workers %d: did not complete, %d in flight (replay: -seed %d -rounds 1 -parallel)\n",
							name, eff, workers, eng.InFlight(), eff)
						return outcome{}
					}
					var replies []int64
					for p := 0; p < procs; p++ {
						for i := 0; i < ops; i++ {
							replies = append(replies, m.Proc(p).Reply(i).Val)
						}
					}
					return outcome{snap: eng.Snapshot().JSON(), replies: replies, ok: true}
				}
				want := run(1)
				if !want.ok {
					failed++
					continue
				}
				checked++
				for _, w := range []int{2, 4} {
					got := run(w)
					if !got.ok {
						failed++
						continue
					}
					if !bytes.Equal(got.snap, want.snap) {
						fmt.Printf("FAIL %s seed %d: Workers=%d snapshot differs from serial (replay: -seed %d -rounds 1 -parallel)\n",
							name, eff, w, eff)
						failed++
						continue
					}
					for i := range want.replies {
						if got.replies[i] != want.replies[i] {
							fmt.Printf("FAIL %s seed %d: Workers=%d reply %d = %d, serial %d (replay: -seed %d -rounds 1 -parallel)\n",
								name, eff, w, i, got.replies[i], want.replies[i], eff)
							failed++
							break
						}
					}
				}
				if verbose {
					fmt.Printf("ok   %s seed %d: widths 1/2/4 identical\n", name, eff)
				}
			}
			fmt.Printf("%-26s %d executions verified\n", name, rounds)
		}
	}
	return checked, failed
}

// chaosSoak runs the fault-plan fuzzer (experiment E17): rounds sampled
// plans per wiring, all seven fault kinds in the mix, seeded randomized
// programs, and the full invariant battery per run.  Violations are shrunk
// to a minimal scenario and reported as a cmd/replay command line.  The
// fuzz seed is -seed, so a CI failure replays with the same flags; the
// vacuous-pass guard fails the soak if any adversarial fault kind never
// fired across the whole budget.
func chaosSoak(rounds int, seed uint64, canary string, verbose bool) (checked, failed int) {
	wirings := combining.ChaosWirings()
	total := map[string]int64{}
	violations := 0
	index := 0
	for round := 0; round < rounds; round++ {
		for _, topo := range wirings {
			sc := combining.NewChaosScenario(topo, seed, index)
			index++
			if canary != "" {
				sc.Plan.Canary = canary
			}
			counters, err := combining.RunChaos(sc)
			checked++
			for k, v := range counters {
				total[k] += v
			}
			if err != nil {
				violations++
				shrunk, runs := combining.ShrinkChaos(sc, 200)
				fmt.Printf("FAIL chaos %s #%d: %v\n", topo, index-1, err)
				fmt.Printf("     shrunk after %d reruns to %d fault window(s): %v\n",
					runs, combining.ChaosWindows(shrunk.Plan), shrunk.Plan)
				fmt.Printf("     replay: %s\n", combining.ChaosRepro(shrunk))
				failed++
				continue
			}
			if verbose {
				fmt.Printf("ok   chaos %s #%d: %d faults (%d reordered, %d dup, %d corrupt-dropped)\n",
					topo, index-1, counters["faults_injected"], counters["reordered_held"],
					counters["dup_injected"], counters["corrupt_dropped"])
			}
		}
	}
	for _, key := range []string{"faults_injected", "reordered_held", "dup_injected", "corrupt_dropped"} {
		if total[key] == 0 {
			fmt.Printf("FAIL chaos: vacuous soak — %s is zero across %d scenarios\n", key, checked)
			failed++
		}
	}
	if canary != "" && violations == 0 {
		fmt.Printf("FAIL chaos: canary %q armed but no violation found across %d scenarios\n", canary, checked)
		failed++
	}
	fmt.Printf("%-18s %d scenarios fuzzed on %d wirings (%d faults injected, %d violations)\n",
		"chaos", checked, len(wirings), total["faults_injected"], violations)
	return checked, failed
}

func isPow(n, k int) bool {
	for n > 1 {
		if n%k != 0 {
			return false
		}
		n /= k
	}
	return n == 1
}

func randomPrograms(rng *rand.Rand, procs, ops, addrs int) [][]combining.Instr {
	progs := make([][]combining.Instr, procs)
	family := rng.IntN(4)
	for p := range progs {
		for i := 0; i < ops; i++ {
			addr := combining.Addr(rng.IntN(addrs))
			var op combining.Mapping
			switch {
			case family == 3:
				v := int64(rng.IntN(100))
				choices := []combining.Mapping{
					combining.FELoad(), combining.FEStoreSet(v),
					combining.FEStoreIfClearSet(v), combining.FELoadClear(),
					combining.StoreOf(v), combining.Load{},
				}
				op = choices[rng.IntN(len(choices))]
			case rng.IntN(3) == 0:
				op = combining.Load{}
			case rng.IntN(2) == 0:
				switch family {
				case 0:
					op = combining.FetchAdd(int64(rng.IntN(19) - 9))
				case 1:
					op = combining.Bool{A: rng.Uint64(), B: rng.Uint64()}
				default:
					op = combining.Affine{A: int64(rng.IntN(5) - 2), B: int64(rng.IntN(50))}
				}
			default:
				op = combining.SwapOf(int64(rng.IntN(100)))
			}
			progs[p] = append(progs[p], combining.RMW(addr, op))
		}
	}
	return progs
}
