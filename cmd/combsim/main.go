// Command combsim runs hot-spot sweeps on the cycle-accurate combining
// network simulator (experiment E8/E9) and prints a table or CSV.
//
// Usage:
//
//	combsim [-n 64] [-rate 0.6] [-cycles 4000] [-window 4] [-seed 1]
//	        [-h 0,0.0625,0.125,0.25] [-queue 4] [-revqueue 0] [-memqueue 0]
//	        [-adaptive] [-csv] [-topology omega|fattree|hypercube|torus|bus]
//	        [-drop 0.01] [-crash 0] [-crashseed 0] [-plan <spec>] [-workers 1]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With -drop > 0 the sweep runs under a deterministic fault plan (that
// drop probability per forward and reply hop, seeded by -seed) and the
// engine's retransmit/dedup recovery layer — the E13 degradation curve
// at the command line.
//
// With -plan the sweep runs under an explicit fault plan written as the
// comma-joined key=value spec EncodeFaultPlan emits — including the
// adversarial delivery kinds (reorder, dup, corrupt) the shorthand flags
// cannot express.  -plan is exclusive with -drop and -crash, and
// adversarial plans require -workers 1 (the serial stepper defines limbo
// release order).
//
// With -crash > 0 the plan additionally schedules that many seeded
// crash–restart windows of each kind (switch, memory module, link) across
// the run, arming deterministic checkpoints and the crash-recovery layer
// (experiment E16).  -crashseed seeds the crash schedule independently of
// the workload (0 reuses -seed), so the same traffic can be replayed under
// different crash timings.
//
// -revqueue and -memqueue bound the reverse and memory-side queues (0
// takes the engine default, negative is unbounded; on the bus topology
// -memqueue sets the bank queue).  -adaptive replaces the fixed window
// with AIMD admission control (the E14 experiment): -window becomes the
// controller's initial window.  -workers shards each cycle's engine work
// across that many goroutines (output is identical at any setting; see
// DESIGN.md §6).
//
// -topology picks the machine: the paper's omega network, a fat-tree
// (k-ary butterfly) on the same staged engine, the binary hypercube, a
// near-square torus on the same direct-connection engine, or the bus
// machine.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (the CPU
// profile covers the simulation loop; the heap profile is captured after
// it, post-GC, so it shows retained state rather than transient garbage).
// `make profile` wraps a representative hot-spot run.  Inspect with
// `go tool pprof -top <file>`.
//
// Nonsense flag values are rejected at parse time with a one-line error
// and exit status 2 rather than panicking (or silently producing a bogus
// table) deep inside an engine: flag-shape checks here, everything the
// engines police through Config.Validate before any point runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	combining "combining"
)

func main() {
	var (
		n         = flag.Int("n", 64, "processors (power of two)")
		rate      = flag.Float64("rate", 0.6, "per-cycle issue probability")
		cycles    = flag.Int("cycles", 4000, "cycles per point")
		window    = flag.Int("window", 4, "outstanding requests per processor")
		seed      = flag.Uint64("seed", 1, "workload seed")
		hList     = flag.String("h", "0,0.0625,0.125,0.25", "comma-separated hot fractions")
		queue     = flag.Int("queue", 4, "switch output queue capacity")
		revQueue  = flag.Int("revqueue", 0, "reverse queue capacity (0 = engine default, negative = unbounded)")
		memQueue  = flag.Int("memqueue", 0, "memory-side queue capacity (0 = engine default, negative = unbounded; bank queue on -topology bus)")
		adaptive  = flag.Bool("adaptive", false, "AIMD admission control instead of a fixed window (-window is the initial window)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
		topo      = flag.String("topology", "omega", "omega, fattree, hypercube, torus, or bus")
		drop      = flag.Float64("drop", 0, "per-hop drop probability (arms the fault/recovery layer)")
		crash     = flag.Int("crash", 0, "crash–restart windows of each kind to schedule (0 = none)")
		crashseed = flag.Uint64("crashseed", 0, "seed for the crash schedule (0 = reuse -seed)")
		planSpec  = flag.String("plan", "", "explicit fault-plan spec (comma-joined key=value; exclusive with -drop/-crash)")
		workers   = flag.Int("workers", 1, "goroutines sharding each cycle's engine work (0/1 = serial)")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile (captured after the sweep) to this file")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "combsim: "+format+"\n", args...)
		os.Exit(2)
	}
	switch *topo {
	case "omega", "fattree", "hypercube", "torus", "bus":
	default:
		fail("unknown topology %q (want omega, fattree, hypercube, torus, or bus)", *topo)
	}
	if *rate <= 0 || *rate > 1 {
		fail("-rate must be in (0, 1], got %g", *rate)
	}
	if *cycles < 1 {
		fail("-cycles must be ≥ 1, got %d", *cycles)
	}
	if *window < 0 {
		fail("-window must be ≥ 0 (0 means the default of 4), got %d", *window)
	}
	if *drop < 0 || *drop >= 1 {
		fail("-drop must be in [0, 1) — a probability per hop, got %g", *drop)
	}
	if *workers < 0 {
		fail("-workers must be ≥ 0 (0/1 = serial), got %d", *workers)
	}
	if *crash < 0 {
		fail("-crash must be ≥ 0 — a count of crash windows, got %d", *crash)
	}
	if *crashseed != 0 && *crash == 0 {
		fail("-crashseed %d without -crash — nothing to schedule", *crashseed)
	}
	if *planSpec != "" && (*drop > 0 || *crash > 0) {
		fail("-plan is exclusive with -drop and -crash — the spec carries the whole plan")
	}

	var hs []float64
	for _, s := range strings.Split(*hList, ",") {
		h, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fail("bad hot fraction %q in -h: %v", s, err)
		}
		if h < 0 || h > 1 {
			fail("hot fraction %g in -h outside [0, 1]", h)
		}
		hs = append(hs, h)
	}
	if len(hs) == 0 {
		fail("-h lists no hot fractions")
	}

	type point struct {
		bandwidth, latency, coldLatency float64
		combines                        int64
	}
	injectors := func(h float64) []combining.Injector {
		inj := make([]combining.Injector, *n)
		for p := 0; p < *n; p++ {
			inj[p] = combining.NewStochastic(p, *n, combining.TrafficConfig{
				Rate: *rate, HotFraction: h, Window: *window, Adaptive: *adaptive,
			}, *seed)
		}
		return inj
	}
	var plan *combining.FaultPlan
	if *planSpec != "" {
		var err error
		if plan, err = combining.ParseFaultPlan(*planSpec); err != nil {
			fail("%v", err)
		}
	}
	if *drop > 0 {
		// A long base timeout keeps retransmits about real drops rather
		// than congestion delay (see the E13 bench).
		plan = &combining.FaultPlan{Seed: *seed, DropFwd: *drop, DropRev: *drop, RetryTimeout: 512}
	}
	if *crash > 0 {
		cs := *crashseed
		if cs == 0 {
			cs = *seed
		}
		// Dead time scales with the run so short sweeps still restart
		// inside the measured window.
		dead := int64(*cycles / 25)
		if dead < 20 {
			dead = 20
		}
		gen := combining.GenCrashPlan(cs, *crash, int64(*cycles), dead)
		if plan == nil {
			plan = &combining.FaultPlan{Seed: *seed, RetryTimeout: 512}
		}
		plan.Crashes = gen.Crashes
		plan.MemCrashes = gen.MemCrashes
		plan.LinkCrashes = gen.LinkCrashes
		plan.CheckpointEvery = gen.CheckpointEvery
	}
	// Config builders per topology: the staged engine runs omega and the
	// fat-tree, the direct-connection engine the hypercube and the torus —
	// new wirings are pure configuration, not new machines.
	netCfg := func(waitCap int) combining.NetConfig {
		cfg := combining.NetConfig{Procs: *n, QueueCap: *queue, RevQueueCap: *revQueue,
			MemQueueCap: *memQueue, WaitBufCap: waitCap, Faults: plan, Workers: *workers}
		if *topo == "fattree" {
			cfg.Topology = combining.FatTreeTopology(*n, 2)
		}
		return cfg
	}
	cubeCfg := func(waitCap int) combining.CubeConfig {
		cfg := combining.CubeConfig{Nodes: *n, QueueCap: *queue, RevQueueCap: *revQueue,
			MemQueueCap: *memQueue, WaitBufCap: waitCap, Faults: plan, Workers: *workers}
		if *topo == "torus" {
			cfg.Topology = combining.SquareTorusTopology(*n)
		}
		return cfg
	}
	busCfg := func(waitCap int) combining.BusConfig {
		return combining.BusConfig{Procs: *n, Banks: 8, QueueCap: *queue,
			BankQueueCap: *memQueue, WaitBufCap: waitCap, Faults: plan, Workers: *workers}
	}

	// One representative config validates the whole sweep up front (points
	// differ only in the wait-buffer capacity, which Validate never
	// rejects): a bad -n or -workers is a one-line error, not a stack
	// trace from inside an engine constructor.
	var cfgErr error
	switch *topo {
	case "omega", "fattree":
		cfgErr = netCfg(0).Validate()
	case "hypercube", "torus":
		cfgErr = cubeCfg(0).Validate()
	case "bus":
		cfgErr = busCfg(0).Validate()
	}
	if cfgErr != nil {
		fail("%v", cfgErr)
	}

	run := func(h float64, comb bool) point {
		waitCap := 0
		if comb {
			waitCap = combining.Unbounded
		}
		switch *topo {
		case "omega", "fattree":
			sim := combining.NewSim(netCfg(waitCap), injectors(h))
			sim.Run(*cycles)
			st := sim.Stats()
			return point{st.Bandwidth(), st.MeanLatency(), st.ColdMeanLatency(), st.Combines}
		case "hypercube", "torus":
			sim := combining.NewCubeSim(cubeCfg(waitCap), injectors(h))
			sim.Run(*cycles)
			st := sim.Stats()
			return point{st.Bandwidth(), st.MeanLatency(), 0, st.Combines}
		default:
			sim := combining.NewBusSim(busCfg(waitCap), injectors(h))
			sim.Run(*cycles)
			st := sim.Stats()
			return point{st.Bandwidth(), st.MeanLatency(), 0, st.Combines}
		}
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail("-cpuprofile: %v", err)
			}
		}()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fail("-memprofile: %v", err)
		}
		defer func() {
			// Post-GC snapshot: retained simulator state, not the garbage
			// the sweep happened to leave unreclaimed.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail("-memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				fail("-memprofile: %v", err)
			}
		}()
	}

	if *csv {
		fmt.Println("n,h,combining,bandwidth,mean_latency,cold_latency,combines,limit")
	} else {
		fmt.Printf("topology=%s N=%d rate=%.2f window=%d queue=%d cycles=%d\n\n",
			*topo, *n, *rate, *window, *queue, *cycles)
		fmt.Println("   h     comb |  ops/cycle   latency   cold-lat   combines |  limit")
		fmt.Println("-------------+--------------------------------------------+-------")
	}
	for _, h := range hs {
		for _, comb := range []bool{false, true} {
			pt := run(h, comb)
			limit := combining.AsymptoticHotBandwidth(*n, h)
			if *csv {
				fmt.Printf("%d,%g,%v,%.4f,%.2f,%.2f,%d,%.4f\n",
					*n, h, comb, pt.bandwidth, pt.latency,
					pt.coldLatency, pt.combines, limit)
			} else {
				fmt.Printf(" %6.4f  %-4v |  %9.2f  %8.1f  %9.1f  %9d | %6.2f\n",
					h, comb, pt.bandwidth, pt.latency,
					pt.coldLatency, pt.combines, limit)
			}
		}
	}
}
