// Command trace runs a small combining scenario on the cycle-accurate
// simulator with event tracing and prints the full life of every request:
// injection, combining (with the wait-buffer ids), the single memory
// access, the decombining fan-out, and delivery — Figure 1 observed on a
// live machine.
//
// Usage: trace [-n 8] [-per 2] [-addr 5]
package main

import (
	"flag"
	"fmt"

	combining "combining"
)

func main() {
	n := flag.Int("n", 8, "processors (power of two)")
	per := flag.Int("per", 2, "fetch-and-adds per processor")
	addr := flag.Uint("addr", 5, "target address")
	flag.Parse()

	log := &combining.NetTraceLog{}
	inj := make([]combining.Injector, *n)
	scripts := make([]*scriptInjector, *n)
	id := 1
	for p := 0; p < *n; p++ {
		scripts[p] = &scriptInjector{}
		for r := 0; r < *per; r++ {
			scripts[p].script = append(scripts[p].script, combining.Injection{
				Req: combining.NewRequest(combining.ReqID(id), combining.Addr(*addr),
					combining.FetchAdd(1), combining.ProcID(p)),
			})
			id++
		}
		inj[p] = scripts[p]
	}
	sim := combining.NewSim(combining.NetConfig{
		Procs:      *n,
		WaitBufCap: combining.Unbounded,
		Trace:      log.Record,
	}, inj)
	want := int64(*n * *per)
	for c := 0; c < 10000; c++ {
		sim.Step()
		if sim.Stats().Issued == want && sim.InFlight() == 0 {
			break
		}
	}

	for _, e := range log.Events {
		fmt.Println(e)
	}
	st := sim.Stats()
	fmt.Printf("\n%d requests issued; %d combines; memory saw %d accesses; final value %d\n",
		st.Issued, st.Combines, st.MemRequests, sim.Memory().Peek(combining.Addr(*addr)).Val)
	vals := map[int64]bool{}
	for _, s := range scripts {
		for _, r := range s.replies {
			vals[r.Val.Val] = true
		}
	}
	ok := true
	for i := 0; i < *n**per; i++ {
		ok = ok && vals[int64(i)]
	}
	fmt.Printf("replies form the exact serialization 0..%d: %v\n", *n**per-1, ok)
}

type scriptInjector struct {
	script  []combining.Injection
	next    int
	replies []combining.Reply
}

func (s *scriptInjector) Next(int64) (combining.Injection, bool) {
	if s.next >= len(s.script) {
		return combining.Injection{}, false
	}
	inj := s.script[s.next]
	s.next++
	return inj, true
}

func (s *scriptInjector) Deliver(rep combining.Reply, _ int64) {
	s.replies = append(s.replies, rep)
}
