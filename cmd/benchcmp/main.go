// Command benchcmp compares two BENCH_combining.json baselines
// benchstat-style: points are matched across files by their parameter
// fields (procs, hot_fraction, workers, …), the metric fields of matched
// pairs are diffed, and every change beyond a relative threshold is
// printed as old → new with the percentage delta.
//
// Usage:
//
//	benchcmp [-threshold 5] [-all] [-fail] old.json new.json
//
// -threshold sets the reporting cutoff in percent (default 5; metrics
// measured in wall-clock time wobble run to run, while the cycle-domain
// metrics — bandwidth, latency in cycles, combines — are deterministic
// for equal parameters and should normally move 0%).  -all prints every
// matched metric regardless of the threshold.  -fail exits with status 1
// when any change beyond the threshold was found, for use as a CI
// regression gate:
//
//	go run ./cmd/experiments -bench -out /tmp/new.json
//	go run ./cmd/benchcmp -fail BENCH_combining.json /tmp/new.json
//
// Points present in only one file (a new sweep section, a removed cell)
// are listed but never fail the comparison — schema growth is expected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// metricFields are the per-point result fields; everything else scalar in
// a point is treated as its identity.  Wall-clock metrics are marked so
// the report can annotate them (they vary across runs and hosts even when
// the simulation is unchanged).
var metricFields = map[string]bool{
	"bandwidth_ops_per_cycle": false,
	"mean_latency_cycles":     false,
	"p99_latency_cycles":      false,
	"combines":                false,
	"elapsed_ns":              true,
	"ns_per_cycle":            true,
	"speedup_vs_serial":       true,
	"ns_per_sync":             true,
	"ns_per_op":               true,
	"ops_per_sec":             true,
}

// ignoredFields are neither identity nor metric: nested objects and
// host-dependent context.
var ignoredFields = map[string]bool{
	"snapshot":  true,
	"host_cpus": true,
}

type point map[string]any

// identity renders a point's parameter fields as a stable "k=v k=v" key.
func identity(p point) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		if metricFields[k] || ignoredFields[k] {
			continue
		}
		if _, isObj := p[k].(map[string]any); isObj {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, p[k]))
	}
	return strings.Join(parts, " ")
}

func main() {
	threshold := flag.Float64("threshold", 5, "report metrics whose relative change exceeds this percentage")
	all := flag.Bool("all", false, "print every matched metric, not just changes beyond the threshold")
	failOn := flag.Bool("fail", false, "exit with status 1 if any change beyond the threshold was found")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold pct] [-all] [-fail] old.json new.json")
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: -threshold must be ≥ 0, got %g\n", *threshold)
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	sections := make([]string, 0, len(oldRep))
	for sec := range oldRep {
		sections = append(sections, sec)
	}
	for sec := range newRep {
		if _, ok := oldRep[sec]; !ok {
			sections = append(sections, sec)
		}
	}
	sort.Strings(sections)

	changed, compared := 0, 0
	for _, sec := range sections {
		oldPts, newPts := index(oldRep[sec]), index(newRep[sec])
		if oldPts == nil && newPts != nil {
			fmt.Printf("%s: section only in %s (%d points)\n", sec, flag.Arg(1), len(newPts))
			continue
		}
		if newPts == nil && oldPts != nil {
			fmt.Printf("%s: section only in %s (%d points)\n", sec, flag.Arg(0), len(oldPts))
			continue
		}
		ids := make([]string, 0, len(oldPts))
		for id := range oldPts {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			np, ok := newPts[id]
			if !ok {
				fmt.Printf("%s: point only in %s: %s\n", sec, flag.Arg(0), id)
				continue
			}
			op := oldPts[id]
			for _, metric := range sortedMetrics(op) {
				ov, ook := toFloat(op[metric])
				nv, nok := toFloat(np[metric])
				if !ook || !nok {
					continue
				}
				compared++
				delta := relDelta(ov, nv)
				beyond := math.Abs(delta) > *threshold
				if beyond {
					changed++
				}
				if beyond || *all {
					note := ""
					if metricFields[metric] {
						note = "  (wall-clock)"
					}
					fmt.Printf("%s: %s\n    %-24s %12.4f → %12.4f   %+7.2f%%%s\n",
						sec, id, metric, ov, nv, delta, note)
				}
			}
		}
		for id := range newPts {
			if _, ok := oldPts[id]; !ok {
				fmt.Printf("%s: point only in %s: %s\n", sec, flag.Arg(1), id)
			}
		}
	}
	fmt.Printf("%d metrics compared, %d beyond ±%g%%\n", compared, changed, *threshold)
	if *failOn && changed > 0 {
		os.Exit(1)
	}
}

// load reads a bench report as section → raw point list, skipping the
// scalar header fields (schema, quick).
func load(path string) (map[string][]point, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	rep := make(map[string][]point)
	for sec, body := range top {
		var pts []point
		if err := json.Unmarshal(body, &pts); err != nil {
			continue // scalar header field (schema, quick)
		}
		rep[sec] = pts
	}
	return rep, nil
}

// index keys a section's points by identity; nil input stays nil so the
// caller can distinguish a missing section from an empty one.
func index(pts []point) map[string]point {
	if pts == nil {
		return nil
	}
	idx := make(map[string]point, len(pts))
	for _, p := range pts {
		idx[identity(p)] = p
	}
	return idx
}

func sortedMetrics(p point) []string {
	ms := make([]string, 0, len(metricFields))
	for m := range metricFields {
		if _, ok := p[m]; ok {
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	return ms
}

func toFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

// relDelta is the percentage change new vs old, defined as 0 when both
// are 0 and +Inf-free when only old is 0.
func relDelta(oldV, newV float64) float64 {
	if oldV == newV {
		return 0
	}
	if oldV == 0 {
		return 100
	}
	return (newV - oldV) / math.Abs(oldV) * 100
}
