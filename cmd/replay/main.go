// Command replay runs a request trace file through the cycle-accurate
// combining machine.
//
// Usage:
//
//	replay -n 16 [-combining] [-queue 4] [-crash 0] [-crashseed 0] trace.txt
//	replay -gen -n 16 -ops 200 -h 0.25   (emit a synthetic trace to stdout)
//
// Trace format: one request per line, "#" comments:
//
//	<cycle> <proc> <addr> <op> [arg]
//	op ∈ load | store v | swap v | add a | or a | and a | xor a | min a | max a
//
// With -crash > 0 the trace replays under a deterministic crash–restart
// plan: that many seeded crash windows of each kind (switch, memory
// module, link), periodic checkpoints, and exactly-once recovery of
// everything a crash flushes.  -crashseed seeds the schedule (0 uses the
// default schedule for seed 1); the same trace under the same crash seed
// replays identically.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	combining "combining"
)

func main() {
	var (
		n         = flag.Int("n", 16, "processors (power of two)")
		comb      = flag.Bool("combining", true, "enable combining")
		queue     = flag.Int("queue", 4, "switch queue capacity")
		gen       = flag.Bool("gen", false, "generate a synthetic trace to stdout instead of replaying")
		genOps    = flag.Int("ops", 200, "requests per processor when generating")
		genHot    = flag.Float64("h", 0.25, "hot fraction when generating")
		genSeed   = flag.Uint64("seed", 1, "generation seed")
		crash     = flag.Int("crash", 0, "crash–restart windows of each kind to schedule (0 = none)")
		crashseed = flag.Uint64("crashseed", 0, "seed for the crash schedule (0 = seed 1)")
	)
	flag.Parse()

	if *crash < 0 {
		fmt.Fprintf(os.Stderr, "replay: -crash must be ≥ 0 — a count of crash windows, got %d\n", *crash)
		os.Exit(2)
	}
	if *crashseed != 0 && *crash == 0 {
		fmt.Fprintf(os.Stderr, "replay: -crashseed %d without -crash — nothing to schedule\n", *crashseed)
		os.Exit(2)
	}

	if *gen {
		generate(*n, *genOps, *genHot, *genSeed)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "replay: exactly one trace file required (or -gen)")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	entries, err := combining.ParseTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	inj, reps, err := combining.NewReplayInjectors(entries, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	waitCap := 0
	if *comb {
		waitCap = combining.Unbounded
	}
	var plan *combining.FaultPlan
	if *crash > 0 {
		cs := *crashseed
		if cs == 0 {
			cs = 1
		}
		// Spread the crash windows over the trace's issue span so they
		// actually overlap live traffic.
		horizon := int64(2000)
		for _, e := range entries {
			if e.Cycle+2000 > horizon {
				horizon = e.Cycle + 2000
			}
		}
		plan = combining.GenCrashPlan(cs, *crash, horizon, 80)
		plan.RetryTimeout = 512
	}
	sim := combining.NewSim(combining.NetConfig{Procs: *n, QueueCap: *queue, WaitBufCap: waitCap, Faults: plan}, inj)
	const maxCycles = 10_000_000
	cycles := 0
	for ; cycles < maxCycles; cycles++ {
		sim.Step()
		if sim.InFlight() == 0 && allDone(reps) {
			break
		}
	}
	st := sim.Stats()
	fmt.Printf("replayed %d requests on %d processors in %d cycles\n", st.Issued, *n, st.Cycles)
	fmt.Printf("bandwidth %.3f ops/cycle, mean latency %.1f cycles\n", st.Bandwidth(), st.MeanLatency())
	fmt.Printf("combines %d, wait-buffer rejects %d, memory accesses %d\n",
		st.Combines, st.Rejects, st.MemRequests)
	if *crash > 0 {
		c := sim.Snapshot().Counters
		fmt.Printf("crashes %d, restores %d, checkpoints %d, lost in flight %d, replayed %d\n",
			c["crashes"], c["restores"], c["checkpoints"],
			c["lost_in_flight"], c["replayed_requests"])
	}
	if !allDone(reps) {
		fmt.Fprintln(os.Stderr, "replay: trace did not complete within the cycle bound")
		os.Exit(1)
	}
}

func allDone(reps []*combining.ReplayInjector) bool {
	for _, r := range reps {
		if !r.Done() {
			return false
		}
	}
	return true
}

func generate(n, ops int, h float64, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 2*seed+1))
	var entries []combining.TraceEntry
	for p := 0; p < n; p++ {
		cycle := int64(0)
		for i := 0; i < ops; i++ {
			cycle += int64(rng.IntN(4))
			addr := combining.Addr(0)
			if rng.Float64() >= h {
				addr = combining.Addr(1 + rng.IntN(64*n))
			}
			entries = append(entries, combining.TraceEntry{
				Cycle: cycle, Proc: p, Addr: addr, Op: combining.FetchAdd(1),
			})
		}
	}
	if err := combining.WriteTrace(os.Stdout, entries); err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
}
