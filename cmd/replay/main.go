// Command replay runs a request trace file through the cycle-accurate
// combining machine, or replays one chaos-fuzzer scenario.
//
// Usage:
//
//	replay -n 16 [-topology omega] [-combining] [-queue 4] [-plan <spec>]
//	       [-crash 0] [-crashseed 0] trace.txt
//	replay -gen -n 16 -ops 200 -h 0.25   (emit a synthetic trace to stdout)
//	replay -chaos -topology torus -n 8 -ops 10 -addrs 4 -seed 7 -plan <spec>
//
// Trace format: one request per line, "#" comments:
//
//	<cycle> <proc> <addr> <op> [arg]
//	op ∈ load | store v | swap v | add a | or a | and a | xor a | min a | max a
//
// -topology picks the wiring: the radix-2 or radix-4 omega network or the
// fat-tree on the staged engine, the binary hypercube or near-square torus
// on the direct engine, or the bus machine.
//
// -plan replays under an explicit deterministic fault plan, written as the
// comma-joined key=value spec EncodeFaultPlan emits (e.g.
// "seed=7,droprev=0.01,dup=0.02,retry=256") — the form the chaos fuzzer's
// shrunk reproducers travel in.
//
// With -chaos the positional trace is replaced by one fuzzer scenario:
// the seeded randomized workload (-seed, -ops, -addrs) runs under -plan on
// -topology, the invariant battery runs (completion, per-location
// serializability against final memory, exactly-once), and a violation
// prints and exits 1 — replaying a shrunk reproducer deterministically
// reproduces the bug it was shrunk from.
//
// With -crash > 0 the trace replays under a deterministic crash–restart
// plan: that many seeded crash windows of each kind (switch, memory
// module, link), periodic checkpoints, and exactly-once recovery of
// everything a crash flushes.  -crashseed seeds the schedule (0 uses the
// default schedule for seed 1); the same trace under the same crash seed
// replays identically.
//
// Nonsense flag values and flag combinations are rejected at parse time
// with a one-line error and exit status 2.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	combining "combining"
)

func main() {
	var (
		n         = flag.Int("n", 16, "processors (power of two; power of four on -topology omega4)")
		topo      = flag.String("topology", "omega", "omega, omega4, fattree, hypercube, torus, or bus")
		comb      = flag.Bool("combining", true, "enable combining")
		queue     = flag.Int("queue", 4, "switch queue capacity")
		gen       = flag.Bool("gen", false, "generate a synthetic trace to stdout instead of replaying")
		ops       = flag.Int("ops", 200, "requests per processor (generation and -chaos workloads)")
		genHot    = flag.Float64("h", 0.25, "hot fraction when generating")
		seed      = flag.Uint64("seed", 1, "workload seed (generation and -chaos)")
		addrs     = flag.Int("addrs", 4, "shared addresses for -chaos workloads")
		chaosRun  = flag.Bool("chaos", false, "replay one chaos-fuzzer scenario instead of a trace (requires -plan)")
		planSpec  = flag.String("plan", "", "fault-plan spec (comma-joined key=value; see EncodeFaultPlan)")
		crash     = flag.Int("crash", 0, "crash–restart windows of each kind to schedule (0 = none)")
		crashseed = flag.Uint64("crashseed", 0, "seed for the crash schedule (0 = seed 1)")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "replay: "+format+"\n", args...)
		os.Exit(2)
	}
	switch *topo {
	case "omega", "omega4", "fattree", "hypercube", "torus", "bus":
	default:
		fail("unknown topology %q (want omega, omega4, fattree, hypercube, torus, or bus)", *topo)
	}
	if *crash < 0 {
		fail("-crash must be ≥ 0 — a count of crash windows, got %d", *crash)
	}
	if *crashseed != 0 && *crash == 0 {
		fail("-crashseed %d without -crash — nothing to schedule", *crashseed)
	}
	if *planSpec != "" && *crash > 0 {
		fail("-plan and -crash both specify the fault plan — pick one")
	}
	if *chaosRun {
		if *gen {
			fail("-chaos and -gen are exclusive")
		}
		if *planSpec == "" {
			fail("-chaos requires -plan — the scenario's fault plan")
		}
		if *addrs < 1 {
			fail("-addrs must be ≥ 1, got %d", *addrs)
		}
		if flag.NArg() != 0 {
			fail("-chaos takes no trace file")
		}
	}
	var plan *combining.FaultPlan
	if *planSpec != "" {
		var err error
		if plan, err = combining.ParseFaultPlan(*planSpec); err != nil {
			fail("%v", err)
		}
	}

	if *chaosRun {
		runChaos(*topo, *n, *ops, *addrs, *seed, plan)
		return
	}
	if *gen {
		generate(*n, *ops, *genHot, *seed)
		return
	}

	if flag.NArg() != 1 {
		fail("exactly one trace file required (or -gen / -chaos)")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	entries, err := combining.ParseTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	inj, reps, err := combining.NewReplayInjectors(entries, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	waitCap := 0
	if *comb {
		waitCap = combining.Unbounded
	}
	if *crash > 0 {
		cs := *crashseed
		if cs == 0 {
			cs = 1
		}
		// Spread the crash windows over the trace's issue span so they
		// actually overlap live traffic.
		horizon := int64(2000)
		for _, e := range entries {
			if e.Cycle+2000 > horizon {
				horizon = e.Cycle + 2000
			}
		}
		plan = combining.GenCrashPlan(cs, *crash, horizon, 80)
		plan.RetryTimeout = 512
	}
	eng, err := buildEngine(*topo, *n, *queue, waitCap, plan, inj)
	if err != nil {
		fail("%v", err)
	}
	const maxCycles = 10_000_000
	for cycles := 0; cycles < maxCycles; cycles++ {
		eng.Step()
		if eng.InFlight() == 0 && allDone(reps) {
			break
		}
	}
	c := eng.Snapshot().Counters
	fmt.Printf("replayed %d requests on %d processors (%s) in %d cycles\n",
		c["issued"], *n, *topo, c["cycles"])
	cycles := c["cycles"]
	if cycles == 0 {
		cycles = 1
	}
	fmt.Printf("bandwidth %.3f ops/cycle, combines %d, memory accesses %d\n",
		float64(c["completed"])/float64(cycles), c["combines"],
		c["mem_requests"]+c["mem_ops"]+c["bank_ops"])
	if sim, ok := eng.(*combining.Sim); ok {
		st := sim.Stats()
		fmt.Printf("mean latency %.1f cycles, wait-buffer rejects %d\n",
			st.MeanLatency(), st.Rejects)
	}
	if plan != nil {
		fmt.Printf("faults injected %d, retries %d, dedup hits %d\n",
			c["faults_injected"], c["retries"], c["dedup_hits"])
	}
	if *crash > 0 {
		fmt.Printf("crashes %d, restores %d, checkpoints %d, lost in flight %d, replayed %d\n",
			c["crashes"], c["restores"], c["checkpoints"],
			c["lost_in_flight"], c["replayed_requests"])
	}
	if !allDone(reps) {
		fmt.Fprintln(os.Stderr, "replay: trace did not complete within the cycle bound")
		os.Exit(1)
	}
}

// replayEngine is what trace replay needs from any wiring.
type replayEngine interface {
	combining.MachineEngine
	Snapshot() combining.StatsSnapshot
}

// buildEngine constructs the selected wiring, validating its config for a
// one-line error instead of a constructor panic.
func buildEngine(topo string, n, queue, waitCap int, plan *combining.FaultPlan, inj []combining.Injector) (replayEngine, error) {
	switch topo {
	case "omega", "omega4", "fattree":
		cfg := combining.NetConfig{Procs: n, QueueCap: queue, WaitBufCap: waitCap, Faults: plan}
		if topo == "omega4" {
			cfg.Radix = 4
		}
		if topo == "fattree" {
			cfg.Topology = combining.FatTreeTopology(n, 2)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return combining.NewSim(cfg, inj), nil
	case "hypercube", "torus":
		cfg := combining.CubeConfig{Nodes: n, QueueCap: queue, WaitBufCap: waitCap, Faults: plan}
		if topo == "torus" {
			cfg.Topology = combining.SquareTorusTopology(n)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return combining.NewCubeSim(cfg, inj), nil
	default:
		cfg := combining.BusConfig{Procs: n, Banks: 4, QueueCap: queue, WaitBufCap: waitCap, Faults: plan}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return combining.NewBusSim(cfg, inj), nil
	}
}

// runChaos replays one fuzzer scenario and reports the verdict: exit 0
// with a counter summary when every invariant holds, exit 1 with the
// violation when the scenario reproduces a bug.
func runChaos(topo string, n, ops, addrs int, seed uint64, plan *combining.FaultPlan) {
	sc := combining.ChaosScenario{
		Topology: topo, Procs: n, Ops: ops, Addrs: addrs,
		WorkloadSeed: seed, Plan: plan,
	}
	counters, err := combining.RunChaos(sc)
	if err != nil {
		fmt.Printf("chaos scenario VIOLATION: %v\n", err)
		if counters != nil {
			fmt.Printf("counters: faults %d, retries %d, reordered %d, dup %d, corrupt-dropped %d\n",
				counters["faults_injected"], counters["retries"], counters["reordered_held"],
				counters["dup_injected"], counters["corrupt_dropped"])
		}
		os.Exit(1)
	}
	fmt.Printf("chaos scenario passed on %s: %d ops exactly-once, serializable\n",
		topo, counters["completed"])
	fmt.Printf("counters: faults %d, retries %d, reordered %d, dup %d, corrupt-dropped %d\n",
		counters["faults_injected"], counters["retries"], counters["reordered_held"],
		counters["dup_injected"], counters["corrupt_dropped"])
}

func allDone(reps []*combining.ReplayInjector) bool {
	for _, r := range reps {
		if !r.Done() {
			return false
		}
	}
	return true
}

func generate(n, ops int, h float64, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 2*seed+1))
	var entries []combining.TraceEntry
	for p := 0; p < n; p++ {
		cycle := int64(0)
		for i := 0; i < ops; i++ {
			cycle += int64(rng.IntN(4))
			addr := combining.Addr(0)
			if rng.Float64() >= h {
				addr = combining.Addr(1 + rng.IntN(64*n))
			}
			entries = append(entries, combining.TraceEntry{
				Cycle: cycle, Proc: p, Addr: addr, Op: combining.FetchAdd(1),
			})
		}
	}
	if err := combining.WriteTrace(os.Stdout, entries); err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
}
